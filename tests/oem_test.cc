#include <gtest/gtest.h>

#include <vector>

#include "oem/object.h"
#include "oem/oid.h"
#include "oem/set_ops.h"
#include "oem/store.h"
#include "oem/update.h"
#include "oem/value.h"
#include "workload/person_db.h"

namespace gsv {
namespace {

// ---------------------------------------------------------------- Oid

TEST(OidTest, DefaultIsInvalid) {
  Oid oid;
  EXPECT_FALSE(oid.valid());
  EXPECT_EQ(oid.str(), "");
}

TEST(OidTest, ComparisonAndOrdering) {
  Oid a("A");
  Oid b("B");
  EXPECT_EQ(a, Oid("A"));
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(OidTest, DelegateConcatenation) {
  Oid view("MVJ");
  Oid base("P1");
  Oid delegate = Oid::Delegate(view, base);
  EXPECT_EQ(delegate.str(), "MVJ.P1");
  EXPECT_TRUE(delegate.IsDelegateOf(view));
  EXPECT_EQ(delegate.BaseIn(view), base);
}

TEST(OidTest, NestedDelegates) {
  // Views over views (§3.1): the base of a delegate may itself be one.
  Oid inner = Oid::Delegate(Oid("MV1"), Oid("P1"));
  Oid outer = Oid::Delegate(Oid("MV2"), inner);
  EXPECT_EQ(outer.str(), "MV2.MV1.P1");
  EXPECT_TRUE(outer.IsDelegateOf(Oid("MV2")));
  EXPECT_EQ(outer.BaseIn(Oid("MV2")), inner);
  EXPECT_EQ(outer.BaseIn(Oid("MV2")).BaseIn(Oid("MV1")), Oid("P1"));
}

TEST(OidTest, IsDelegateOfRejectsNonPrefixes) {
  EXPECT_FALSE(Oid("MVJ.P1").IsDelegateOf(Oid("MV")));   // prefix, no dot
  EXPECT_FALSE(Oid("MVJ").IsDelegateOf(Oid("MVJ")));     // no base part
  EXPECT_FALSE(Oid("X.P1").IsDelegateOf(Oid("MVJ")));
}

TEST(OidTest, HashConsistentWithEquality) {
  OidHash hash;
  EXPECT_EQ(hash(Oid("P1")), hash(Oid("P1")));
}

// ---------------------------------------------------------------- OidSet

TEST(OidSetTest, InsertEraseContains) {
  OidSet set;
  EXPECT_TRUE(set.Insert(Oid("B")));
  EXPECT_TRUE(set.Insert(Oid("A")));
  EXPECT_FALSE(set.Insert(Oid("A")));  // duplicate
  EXPECT_TRUE(set.Contains(Oid("A")));
  EXPECT_TRUE(set.Contains(Oid("B")));
  EXPECT_FALSE(set.Contains(Oid("C")));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Erase(Oid("A")));
  EXPECT_FALSE(set.Erase(Oid("A")));
  EXPECT_EQ(set.size(), 1u);
}

TEST(OidSetTest, ConstructorDeduplicatesAndSorts) {
  OidSet set({Oid("C"), Oid("A"), Oid("C"), Oid("B")});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.elements()[0], Oid("A"));
  EXPECT_EQ(set.elements()[2], Oid("C"));
}

TEST(OidSetTest, OrderInsensitiveEquality) {
  OidSet a({Oid("X"), Oid("Y")});
  OidSet b({Oid("Y"), Oid("X")});
  EXPECT_EQ(a, b);
}

TEST(OidSetTest, UnionAndIntersect) {
  OidSet a({Oid("A"), Oid("B")});
  OidSet b({Oid("B"), Oid("C")});
  EXPECT_EQ(OidSet::Union(a, b), OidSet({Oid("A"), Oid("B"), Oid("C")}));
  EXPECT_EQ(OidSet::Intersect(a, b), OidSet({Oid("B")}));
  EXPECT_EQ(OidSet::Intersect(a, OidSet()), OidSet());
}

// ---------------------------------------------------------------- Value

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Int(45).type(), ValueType::kInt);
  EXPECT_EQ(Value::Int(45).AsInt(), 45);
  EXPECT_EQ(Value::Real(3.5).type(), ValueType::kReal);
  EXPECT_DOUBLE_EQ(Value::Real(3.5).AsReal(), 3.5);
  EXPECT_EQ(Value::Str("John").AsString(), "John");
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_TRUE(Value::SetOf({Oid("A")}).IsSet());
  EXPECT_TRUE(Value::Int(1).IsAtomic());
  EXPECT_FALSE(Value::SetOf({}).IsAtomic());
  EXPECT_TRUE(Value().IsSet()) << "default value is the empty set";
}

TEST(ValueTest, NumericCrossTypeComparison) {
  Value::CompareResult cmp = Value::Int(2).Compare(Value::Real(2.5));
  ASSERT_TRUE(cmp.comparable);
  EXPECT_LT(cmp.order, 0);
  cmp = Value::Real(2.0).Compare(Value::Int(2));
  ASSERT_TRUE(cmp.comparable);
  EXPECT_EQ(cmp.order, 0);
}

TEST(ValueTest, StringComparison) {
  Value::CompareResult cmp = Value::Str("abc").Compare(Value::Str("abd"));
  ASSERT_TRUE(cmp.comparable);
  EXPECT_LT(cmp.order, 0);
}

TEST(ValueTest, IncomparableCombinations) {
  EXPECT_FALSE(Value::Str("x").Compare(Value::Int(1)).comparable);
  EXPECT_FALSE(Value::SetOf({}).Compare(Value::SetOf({})).comparable);
  EXPECT_FALSE(Value::Bool(true).Compare(Value::Int(1)).comparable);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int(45).ToString(), "45");
  EXPECT_EQ(Value::Str("John").ToString(), "'John'");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::SetOf({Oid("P1"), Oid("P2")}).ToString(), "{P1,P2}");
}

TEST(ObjectTest, PaperNotation) {
  Object object(Oid("A1"), "age", Value::Int(45));
  EXPECT_EQ(object.ToString(), "<A1, age, integer, 45>");
  Object set_object(Oid("P1"), "professor", Value::SetOf({Oid("N1")}));
  EXPECT_EQ(set_object.ToString(), "<P1, professor, set, {N1}>");
}

// ---------------------------------------------------------------- Store

class StoreTest : public ::testing::Test {
 protected:
  ObjectStore store_;
};

TEST_F(StoreTest, PutGetContains) {
  ASSERT_TRUE(store_.PutAtomic(Oid("A"), "age", Value::Int(1)).ok());
  EXPECT_TRUE(store_.Contains(Oid("A")));
  const Object* object = store_.Get(Oid("A"));
  ASSERT_NE(object, nullptr);
  EXPECT_EQ(object->label(), "age");
  EXPECT_EQ(store_.Get(Oid("missing")), nullptr);
}

TEST_F(StoreTest, DuplicatePutFails) {
  ASSERT_TRUE(store_.PutAtomic(Oid("A"), "age", Value::Int(1)).ok());
  Status status = store_.PutAtomic(Oid("A"), "age", Value::Int(2));
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST_F(StoreTest, PutAtomicRejectsSetValue) {
  EXPECT_EQ(store_.PutAtomic(Oid("A"), "x", Value::SetOf({})).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StoreTest, InsertCreatesEdgeAndParentIndex) {
  ASSERT_TRUE(store_.PutSet(Oid("P"), "parent").ok());
  ASSERT_TRUE(store_.PutAtomic(Oid("C"), "child", Value::Int(0)).ok());
  ASSERT_TRUE(store_.Insert(Oid("P"), Oid("C")).ok());
  EXPECT_TRUE(store_.Get(Oid("P"))->children().Contains(Oid("C")));
  EXPECT_EQ(store_.Parents(Oid("C")), std::vector<Oid>{Oid("P")});
}

TEST_F(StoreTest, InsertValidatesEndpoints) {
  ASSERT_TRUE(store_.PutSet(Oid("P"), "parent").ok());
  ASSERT_TRUE(store_.PutAtomic(Oid("A"), "leaf", Value::Int(0)).ok());
  EXPECT_EQ(store_.Insert(Oid("missing"), Oid("A")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store_.Insert(Oid("P"), Oid("missing")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store_.Insert(Oid("A"), Oid("P")).code(),
            StatusCode::kFailedPrecondition)
      << "atomic objects cannot gain children";
}

TEST_F(StoreTest, DuplicateInsertIsSilentNoOp) {
  ASSERT_TRUE(store_.PutSet(Oid("P"), "parent").ok());
  ASSERT_TRUE(store_.PutAtomic(Oid("C"), "child", Value::Int(0)).ok());
  ASSERT_TRUE(store_.Insert(Oid("P"), Oid("C")).ok());
  ASSERT_TRUE(store_.Insert(Oid("P"), Oid("C")).ok());
  EXPECT_EQ(store_.Get(Oid("P"))->children().size(), 1u);
}

TEST_F(StoreTest, DeleteRemovesEdge) {
  ASSERT_TRUE(store_.PutSet(Oid("P"), "parent").ok());
  ASSERT_TRUE(store_.PutAtomic(Oid("C"), "child", Value::Int(0)).ok());
  ASSERT_TRUE(store_.Insert(Oid("P"), Oid("C")).ok());
  ASSERT_TRUE(store_.Delete(Oid("P"), Oid("C")).ok());
  EXPECT_FALSE(store_.Get(Oid("P"))->children().Contains(Oid("C")));
  EXPECT_TRUE(store_.Parents(Oid("C")).empty());
  // The object itself survives (GC is explicit, §4.1).
  EXPECT_TRUE(store_.Contains(Oid("C")));
}

TEST_F(StoreTest, DeleteOfAbsentEdgeFails) {
  ASSERT_TRUE(store_.PutSet(Oid("P"), "parent").ok());
  ASSERT_TRUE(store_.PutAtomic(Oid("C"), "child", Value::Int(0)).ok());
  EXPECT_EQ(store_.Delete(Oid("P"), Oid("C")).code(), StatusCode::kNotFound);
}

TEST_F(StoreTest, ModifyChangesAtomicValue) {
  ASSERT_TRUE(store_.PutAtomic(Oid("A"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(store_.Modify(Oid("A"), Value::Int(41)).ok());
  EXPECT_EQ(store_.Get(Oid("A"))->value().AsInt(), 41);
}

TEST_F(StoreTest, ModifyRejectsSetObjectsAndSetValues) {
  ASSERT_TRUE(store_.PutSet(Oid("S"), "group").ok());
  ASSERT_TRUE(store_.PutAtomic(Oid("A"), "age", Value::Int(40)).ok());
  EXPECT_EQ(store_.Modify(Oid("S"), Value::Int(1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store_.Modify(Oid("A"), Value::SetOf({})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.Modify(Oid("missing"), Value::Int(1)).code(),
            StatusCode::kNotFound);
}

class RecordingListener : public UpdateListener {
 public:
  void OnUpdate(const ObjectStore& store, const Update& update) override {
    (void)store;
    updates.push_back(update);
  }
  std::vector<Update> updates;
};

TEST_F(StoreTest, ListenersSeeAppliedUpdatesInOrder) {
  RecordingListener listener;
  store_.AddListener(&listener);
  ASSERT_TRUE(store_.PutSet(Oid("P"), "parent").ok());
  ASSERT_TRUE(store_.PutAtomic(Oid("C"), "child", Value::Int(1)).ok());
  ASSERT_TRUE(store_.Insert(Oid("P"), Oid("C")).ok());
  ASSERT_TRUE(store_.Modify(Oid("C"), Value::Int(2)).ok());
  ASSERT_TRUE(store_.Delete(Oid("P"), Oid("C")).ok());
  ASSERT_EQ(listener.updates.size(), 3u);
  EXPECT_EQ(listener.updates[0].kind, UpdateKind::kInsert);
  EXPECT_EQ(listener.updates[1].kind, UpdateKind::kModify);
  EXPECT_EQ(listener.updates[1].old_value.AsInt(), 1);
  EXPECT_EQ(listener.updates[1].new_value.AsInt(), 2);
  EXPECT_EQ(listener.updates[2].kind, UpdateKind::kDelete);

  store_.RemoveListener(&listener);
  ASSERT_TRUE(store_.Insert(Oid("P"), Oid("C")).ok());
  EXPECT_EQ(listener.updates.size(), 3u) << "removed listener not notified";
}

TEST_F(StoreTest, NoOpInsertDoesNotNotify) {
  RecordingListener listener;
  store_.AddListener(&listener);
  ASSERT_TRUE(store_.PutSet(Oid("P"), "parent").ok());
  ASSERT_TRUE(store_.PutAtomic(Oid("C"), "child", Value::Int(1)).ok());
  ASSERT_TRUE(store_.Insert(Oid("P"), Oid("C")).ok());
  ASSERT_TRUE(store_.Insert(Oid("P"), Oid("C")).ok());  // duplicate: no-op
  EXPECT_EQ(listener.updates.size(), 1u);
}

TEST_F(StoreTest, RawEditsDoNotNotify) {
  RecordingListener listener;
  store_.AddListener(&listener);
  ASSERT_TRUE(store_.PutSet(Oid("P"), "parent").ok());
  ASSERT_TRUE(store_.AddChildRaw(Oid("P"), Oid("dangling")).ok());
  ASSERT_TRUE(store_.ReplaceChildRaw(Oid("P"), Oid("dangling"), Oid("x")).ok());
  ASSERT_TRUE(store_.RemoveChildRaw(Oid("P"), Oid("x")).ok());
  ASSERT_TRUE(store_.SetValueRaw(Oid("P"), Value::SetOf({Oid("y")})).ok());
  EXPECT_TRUE(listener.updates.empty());
  EXPECT_TRUE(store_.Get(Oid("P"))->children().Contains(Oid("y")));
}

TEST_F(StoreTest, RawEditsMaintainParentIndex) {
  ASSERT_TRUE(store_.PutSet(Oid("P"), "parent").ok());
  ASSERT_TRUE(store_.AddChildRaw(Oid("P"), Oid("C")).ok());
  EXPECT_EQ(store_.Parents(Oid("C")), std::vector<Oid>{Oid("P")});
  ASSERT_TRUE(store_.ReplaceChildRaw(Oid("P"), Oid("C"), Oid("D")).ok());
  EXPECT_TRUE(store_.Parents(Oid("C")).empty());
  EXPECT_EQ(store_.Parents(Oid("D")), std::vector<Oid>{Oid("P")});
}

TEST_F(StoreTest, ApplyDispatchesAllKinds) {
  ASSERT_TRUE(store_.PutSet(Oid("P"), "parent").ok());
  ASSERT_TRUE(store_.PutAtomic(Oid("C"), "child", Value::Int(1)).ok());
  ASSERT_TRUE(store_.Apply(Update::Insert(Oid("P"), Oid("C"))).ok());
  ASSERT_TRUE(
      store_.Apply(Update::Modify(Oid("C"), Value::Int(1), Value::Int(9))).ok());
  EXPECT_EQ(store_.Get(Oid("C"))->value().AsInt(), 9);
  ASSERT_TRUE(store_.Apply(Update::Delete(Oid("P"), Oid("C"))).ok());
  EXPECT_TRUE(store_.Get(Oid("P"))->children().empty());
}

TEST_F(StoreTest, ParentsWithoutIndexFallsBackToScan) {
  ObjectStore::Options options;
  options.enable_parent_index = false;
  ObjectStore store(options);
  ASSERT_TRUE(store.PutSet(Oid("P"), "parent").ok());
  ASSERT_TRUE(store.PutAtomic(Oid("C"), "child", Value::Int(0)).ok());
  ASSERT_TRUE(store.Insert(Oid("P"), Oid("C")).ok());
  store.metrics().Reset();
  EXPECT_EQ(store.Parents(Oid("C")), std::vector<Oid>{Oid("P")});
  EXPECT_GT(store.metrics().objects_scanned, 0)
      << "no inverse index: Parents() must scan (§4.4)";
}

TEST_F(StoreTest, DatabaseRegistrationAndMembership) {
  ASSERT_TRUE(BuildPersonDb(&store_).ok());
  EXPECT_EQ(store_.DatabaseOid("PERSON"), person_db::Person());
  EXPECT_TRUE(store_.InDatabase("PERSON", person_db::P1()));
  EXPECT_FALSE(store_.InDatabase("PERSON", Oid("nope")));
  EXPECT_FALSE(store_.DatabaseOid("OTHER").valid());
  EXPECT_EQ(store_.DatabaseNames(), std::vector<std::string>{"PERSON"});
}

TEST_F(StoreTest, RegisterDatabaseValidates) {
  ASSERT_TRUE(store_.PutAtomic(Oid("A"), "x", Value::Int(0)).ok());
  EXPECT_EQ(store_.RegisterDatabase("D", Oid("missing")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store_.RegisterDatabase("D", Oid("A")).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(store_.PutSet(Oid("S"), "db").ok());
  ASSERT_TRUE(store_.RegisterDatabase("D", Oid("S")).ok());
  EXPECT_EQ(store_.RegisterDatabase("D", Oid("S")).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(StoreTest, RemoveCleansIndexAndDatabases) {
  ASSERT_TRUE(store_.PutSet(Oid("S"), "db", {}).ok());
  ASSERT_TRUE(store_.PutAtomic(Oid("C"), "x", Value::Int(0)).ok());
  ASSERT_TRUE(store_.Insert(Oid("S"), Oid("C")).ok());
  ASSERT_TRUE(store_.RegisterDatabase("D", Oid("S")).ok());
  ASSERT_TRUE(store_.Remove(Oid("S")).ok());
  EXPECT_FALSE(store_.Contains(Oid("S")));
  EXPECT_FALSE(store_.DatabaseOid("D").valid());
  EXPECT_TRUE(store_.Parents(Oid("C")).empty());
  EXPECT_EQ(store_.Remove(Oid("S")).code(), StatusCode::kNotFound);
}

TEST_F(StoreTest, CollectGarbageSweepsUnreachable) {
  ASSERT_TRUE(BuildPersonDb(&store_, /*with_database=*/false).ok());
  // Nothing is registered as a database, so everything except the extra
  // root is unreachable.
  size_t collected = store_.CollectGarbage({person_db::Root()});
  EXPECT_EQ(collected, 0u) << "everything reachable from ROOT";

  ASSERT_TRUE(store_.Delete(person_db::Root(), person_db::P4()).ok());
  collected = store_.CollectGarbage({person_db::Root()});
  EXPECT_EQ(collected, 3u) << "P4, N4, A4 unreachable";
  EXPECT_FALSE(store_.Contains(person_db::P4()));
  EXPECT_TRUE(store_.Contains(person_db::P1()));
}

TEST_F(StoreTest, CollectGarbageKeepsDatabaseRoots) {
  ASSERT_TRUE(BuildPersonDb(&store_, /*with_database=*/true).ok());
  // The PERSON database object holds every object, so nothing is collected
  // even after unlinking P4 from ROOT.
  ASSERT_TRUE(store_.Delete(person_db::Root(), person_db::P4()).ok());
  EXPECT_EQ(store_.CollectGarbage(), 0u);
}

TEST_F(StoreTest, PersonDbShape) {
  ASSERT_TRUE(BuildPersonDb(&store_).ok());
  EXPECT_EQ(store_.size(), 16u);  // 15 objects + PERSON database object
  const Object* root = store_.Get(person_db::Root());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->label(), "person");
  EXPECT_EQ(root->children().size(), 4u);
  // P3 has two parents (ROOT and P1) plus the PERSON grouping object.
  std::vector<Oid> parents = store_.Parents(person_db::P3());
  EXPECT_EQ(parents.size(), 3u);
}

TEST_F(StoreTest, MetricsAccumulateAndReset) {
  ASSERT_TRUE(BuildPersonDb(&store_).ok());
  store_.metrics().Reset();
  store_.Get(person_db::P1());
  EXPECT_GT(store_.metrics().lookups, 0);
  store_.Parents(person_db::P1());
  EXPECT_GT(store_.metrics().parent_lookups, 0);
  store_.metrics().Reset();
  EXPECT_EQ(store_.metrics().lookups, 0);
}

TEST_F(StoreTest, SetOperationObjects) {
  // §2: union(S1,S2) / int(S1,S2) yield new objects with S1's label.
  ASSERT_TRUE(BuildPersonDb(&store_).ok());
  auto united = UnionObjects(&store_, person_db::Root(), person_db::P1(),
                             Oid("U1"));
  ASSERT_TRUE(united.ok());
  const Object* union_object = store_.Get(Oid("U1"));
  ASSERT_NE(union_object, nullptr);
  EXPECT_EQ(union_object->label(), "person") << "takes S1's label";
  EXPECT_EQ(union_object->children().size(), 7u) << "P3 shared";

  auto common = IntersectObjects(&store_, person_db::Root(), person_db::P1(),
                                 Oid("I1"));
  ASSERT_TRUE(common.ok());
  EXPECT_EQ(store_.Get(Oid("I1"))->children(), OidSet({person_db::P3()}));

  // Validation: operands must exist and be sets; result OID must be fresh.
  EXPECT_FALSE(
      UnionObjects(&store_, Oid("missing"), person_db::P1(), Oid("U2")).ok());
  EXPECT_FALSE(
      UnionObjects(&store_, person_db::N1(), person_db::P1(), Oid("U2")).ok());
  EXPECT_FALSE(UnionObjects(&store_, person_db::Root(), person_db::P1(),
                            Oid("U1"))
                   .ok())
      << "duplicate result OID";
}

TEST(UpdateTest, ToStringForms) {
  EXPECT_EQ(Update::Insert(Oid("P"), Oid("C")).ToString(), "insert(P, C)");
  EXPECT_EQ(Update::Delete(Oid("P"), Oid("C")).ToString(), "delete(P, C)");
  EXPECT_EQ(
      Update::Modify(Oid("A"), Value::Int(1), Value::Int(2)).ToString(),
      "modify(A, 1, 2)");
}

}  // namespace
}  // namespace gsv
