#include <gtest/gtest.h>

#include "shell/shell.h"
#include "workload/person_db.h"

namespace gsv {
namespace {

std::string Must(Shell& shell, const std::string& line) {
  Result<std::string> result = shell.ProcessLine(line);
  EXPECT_TRUE(result.ok()) << line << " -> " << result.status().ToString();
  return result.ok() ? *result : std::string();
}

TEST(ShellTest, PutShowInsertModify) {
  Shell shell;
  EXPECT_EQ(Must(shell, "put atomic A1 age int 45"),
            "created <A1, age, integer, 45>");
  Must(shell, "put set P1 professor A1");
  Must(shell, "put set ROOT person P1");
  EXPECT_EQ(Must(shell, "show P1"), "<P1, professor, set, {A1}>");
  EXPECT_EQ(Must(shell, "modify A1 int 30"),
            "modified <A1, age, integer, 30>");
  Must(shell, "put atomic N1 name string John");
  EXPECT_EQ(Must(shell, "insert P1 N1"), "insert(P1, N1) ok");
  EXPECT_EQ(Must(shell, "delete P1 N1"), "delete(P1, N1) ok");
}

TEST(ShellTest, QueryAndViews) {
  Shell shell;
  Must(shell, "put atomic A1 age int 45");
  Must(shell, "put atomic A2 age int 20");
  Must(shell, "put set P1 professor A1");
  Must(shell, "put set P2 professor A2");
  Must(shell, "put set ROOT person P1 P2");

  EXPECT_EQ(Must(shell, "query SELECT ROOT.professor X WHERE X.age > 30"),
            "<ANS1, answer, set, {P1}>");

  std::string defined = Must(
      shell, "define mview YOUNG as: SELECT ROOT.professor X WHERE "
             "X.age <= 30");
  EXPECT_NE(defined.find("{P2}"), std::string::npos);
  EXPECT_NE(defined.find("[Algorithm 1]"), std::string::npos);

  // The view maintains itself through shell updates.
  Must(shell, "modify A1 int 25");
  EXPECT_NE(Must(shell, "views").find("{P1, P2}"), std::string::npos);
  Must(shell, "modify A1 int 60");
  Must(shell, "modify A2 int 70");
  EXPECT_NE(Must(shell, "views").find("YOUNG = {}"), std::string::npos);
}

TEST(ShellTest, WildcardViewsUseGeneralMaintainer) {
  Shell shell;
  Must(shell, "put atomic N1 name string John");
  Must(shell, "put set P1 professor N1");
  Must(shell, "put set ROOT person P1");
  std::string defined = Must(
      shell, "define mview VJ as: SELECT ROOT.* X WHERE X.name = 'John'");
  EXPECT_NE(defined.find("[general maintainer]"), std::string::npos);
  EXPECT_NE(defined.find("{P1}"), std::string::npos);
  Must(shell, "modify N1 string Jane");
  EXPECT_NE(Must(shell, "views").find("VJ = {}"), std::string::npos);
}

TEST(ShellTest, VirtualViewsAndDatabases) {
  Shell shell;
  Must(shell, "put atomic A1 age int 45");
  Must(shell, "put set P1 professor A1");
  Must(shell, "put set ROOT person P1");
  EXPECT_EQ(Must(shell, "register DB ROOT"), "database DB -> ROOT");
  EXPECT_NE(Must(shell, "databases").find("DB -> ROOT"), std::string::npos);
  std::string defined =
      Must(shell, "define view OLD as: SELECT ROOT.professor X WHERE "
                  "X.age > 40");
  EXPECT_NE(defined.find("virtual view OLD = {P1}"), std::string::npos);
}

TEST(ShellTest, SaveAndLoad) {
  const std::string path = "/tmp/gsv_shell_test.gsv";
  {
    Shell shell;
    Must(shell, "put atomic A1 age int 45");
    Must(shell, "put set ROOT person A1");
    EXPECT_EQ(Must(shell, "save " + path), "saved 2 objects");
  }
  Shell shell;
  EXPECT_EQ(Must(shell, "load " + path), "loaded 2 objects");
  EXPECT_EQ(Must(shell, "show A1"), "<A1, age, integer, 45>");
}

TEST(ShellTest, GcAndStats) {
  Shell shell;
  Must(shell, "put atomic A1 age int 45");
  Must(shell, "put set ROOT person A1");
  Must(shell, "put atomic ORPHAN x int 1");
  EXPECT_EQ(Must(shell, "gc ROOT"), "collected 1 objects");
  EXPECT_NE(Must(shell, "stats").find("objects=2"), std::string::npos);
}

TEST(ShellTest, UnionAndAggregateViews) {
  Shell shell;
  Must(shell, "put atomic A1 age int 45");
  Must(shell, "put atomic A2 age int 20");
  Must(shell, "put set S1 student");
  Must(shell, "put set P1 professor A1 S1");
  Must(shell, "put set P2 secretary A2");
  Must(shell, "put set ROOT person P1 P2");

  // Union view: young people of either label.
  std::string defined = Must(
      shell,
      "define union UV as: SELECT ROOT.professor X WHERE X.age <= 50");
  EXPECT_NE(defined.find("1 branches"), std::string::npos);
  EXPECT_NE(defined.find("{P1}"), std::string::npos);
  defined = Must(shell, "branch UV as: SELECT ROOT.secretary X");
  EXPECT_NE(defined.find("2 branches"), std::string::npos);
  EXPECT_NE(defined.find("{P1, P2}"), std::string::npos);
  EXPECT_FALSE(shell.ProcessLine("branch NOPE as: SELECT ROOT.person X").ok());

  // Live maintenance across branches.
  Must(shell, "modify A1 int 99");
  EXPECT_NE(Must(shell, "views").find("UV = {P2}"), std::string::npos);

  // Aggregate view: students per professor-or-secretary.
  defined = Must(shell,
                 "define agg NSTUD count student as: SELECT ROOT.professor X");
  EXPECT_NE(defined.find("aggregate view NSTUD"), std::string::npos);
  EXPECT_EQ(Must(shell, "show NSTUD.P1"), "<NSTUD.P1, count, integer, 1>");
  Must(shell, "delete P1 S1");
  EXPECT_EQ(Must(shell, "show NSTUD.P1"), "<NSTUD.P1, count, integer, 0>");

  EXPECT_FALSE(
      shell.ProcessLine("define agg X avg student as: SELECT ROOT.person X")
          .ok())
      << "unknown aggregate kind";
  EXPECT_FALSE(shell.ProcessLine("define agg X count").ok());
}

TEST(ShellTest, Transactions) {
  Shell shell;
  Must(shell, "put atomic A1 age int 45");
  Must(shell, "put atomic A2 age int 20");
  Must(shell, "put set P1 professor A1");
  Must(shell, "put set ROOT person P1");
  Must(shell,
       "define mview YOUNG as: SELECT ROOT.professor X WHERE X.age <= 30");

  EXPECT_EQ(Must(shell, "begin"), "transaction started");
  EXPECT_EQ(Must(shell, "modify A1 int 25"), "buffered modify(A1)");
  EXPECT_EQ(Must(shell, "insert P1 A2"), "buffered insert(P1, A2)");
  // Nothing applied yet: the view is still empty.
  EXPECT_NE(Must(shell, "views").find("YOUNG = {}"), std::string::npos);
  EXPECT_FALSE(shell.ProcessLine("begin").ok()) << "no nesting";

  EXPECT_EQ(Must(shell, "commit"), "committed 2 updates");
  EXPECT_NE(Must(shell, "views").find("YOUNG = {P1}"), std::string::npos);
  EXPECT_EQ(Must(shell, "show A1"), "<A1, age, integer, 25>");

  // Abort discards.
  Must(shell, "begin");
  Must(shell, "modify A1 int 99");
  EXPECT_EQ(Must(shell, "abort"), "aborted 1 buffered updates");
  EXPECT_EQ(Must(shell, "show A1"), "<A1, age, integer, 25>");

  // A failing commit rolls back and reports the error.
  Must(shell, "begin");
  Must(shell, "modify A1 int 99");
  Must(shell, "insert P1 MISSING");
  EXPECT_FALSE(shell.ProcessLine("commit").ok());
  EXPECT_EQ(Must(shell, "show A1"), "<A1, age, integer, 25>")
      << "prefix rolled back";
  EXPECT_FALSE(shell.ProcessLine("commit").ok()) << "transaction consumed";
}

TEST(ShellTest, ErrorsAndQuit) {
  Shell shell;
  EXPECT_FALSE(shell.ProcessLine("bogus").ok());
  EXPECT_FALSE(shell.ProcessLine("show MISSING").ok());
  EXPECT_FALSE(shell.ProcessLine("put atomic").ok());
  EXPECT_FALSE(shell.ProcessLine("modify X int").ok());
  EXPECT_FALSE(shell.ProcessLine("query SELECT").ok());
  EXPECT_TRUE(shell.ProcessLine("").ok()) << "blank lines are no-ops";
  EXPECT_TRUE(shell.ProcessLine("# comment").ok());
  Result<std::string> quit = shell.ProcessLine("quit");
  EXPECT_FALSE(quit.ok());
  EXPECT_EQ(quit.status().message(), "quit");
}

TEST(ShellTest, RunScript) {
  Shell shell;
  Result<std::string> out = shell.RunScript(
      "put atomic A1 age int 45\n"
      "put set ROOT person A1\n"
      "# a comment\n"
      "query SELECT ROOT.person X\n"
      "quit\n"
      "show A1\n");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("{A1}"), std::string::npos);
  // "<A1, age" appears once (from put); the `show` after quit never ran.
  size_t first = out->find("<A1, age");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out->find("<A1, age", first + 1), std::string::npos)
      << "nothing runs after quit";

  Shell fresh;
  Result<std::string> bad =
      fresh.RunScript("put atomic A1 age int 45\nbogus\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace gsv
