// Discrimination-network (GDN) engine suite: the generalized incremental
// maintainer for the §6 view classes Algorithm 1 cannot handle. The
// randomized twin property test drives one source through tree- and
// DAG-preserving update streams and demands byte-identity between the GDN
// warehouse (K=1), the sharded coordinator (K=4), the §6 candidate-recheck
// GeneralMaintainer, and the §4.4 full-recompute oracle. Durability tests
// kill the warehouse mid-batch and restore memo images from checkpoints;
// the concurrency test (this binary carries the `gdn-paged` ctest label:
// ci.sh re-runs it under ASan, TSan, and the paged-engine stages) drains
// many networks in parallel.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/general_maintainer.h"
#include "core/materialized_view.h"
#include "core/recompute.h"
#include "core/view_definition.h"
#include "ivm/gdn_network.h"
#include "oem/paged_engine.h"
#include "oem/store.h"
#include "warehouse/sharded_warehouse.h"
#include "warehouse/sharding.h"
#include "warehouse/warehouse.h"
#include "workload/person_db.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

std::string TempDir(const std::string& tag) {
  std::string path = ::testing::TempDir() + "gsv_ivm_" + tag;
  std::filesystem::remove_all(path);
  return path;
}

// CI re-points the GDN warehouses' delegate stores at the paged engine via
// GSV_STORAGE_ENGINE=paged (ci.sh "paged" stages); unset, the factory is
// null and the memory default serves. Twins and oracles stay memory-
// resident on purpose, so under the override every byte-identity assertion
// doubles as a cross-engine check.
ObjectStore::Options DelegateStoreOptions() {
  ObjectStore::Options options;
  options.engine_factory = MakeEngineFactoryFromEnv();
  return options;
}

ShardedWarehouse::Options ShardedDelegateOptions() {
  ShardedWarehouse::Options options;
  options.engine_factory = MakeEngineFactoryFromEnv();
  return options;
}

// General (non-simple) view definitions over a generated tree: every shape
// is rejected by Algorithm 1 and exercises a different §6 relaxation.
std::string GeneralDefinition(int shape, const Oid& root,
                              const std::string& name = "GV") {
  const std::string r = root.str();
  const std::string head = "define mview " + name + " as: SELECT " + r;
  switch (shape) {
    case 0:  // '*' select path: any descendant can join or leave
      return head + ".* X WHERE X.age <= 50";
    case 1:  // '?' atoms: label-oblivious two-level select
      return head + ".?.? X WHERE X.age <= 50";
    case 2:  // OR of disjoint ranges
      return head + ".* X WHERE X.age <= 25 OR X.age > 75";
    default:  // AND window on one witness path
      return head + ".?.? X WHERE X.age > 20 AND X.age <= 70";
  }
}

// ------------------------------------------------- randomized twin suite

struct GdnParam {
  uint64_t seed;
  UpdateMode mode;
  int shape;
  size_t batches;
  size_t batch_size;
};

std::string GdnParamName(const ::testing::TestParamInfo<GdnParam>& info) {
  const GdnParam& p = info.param;
  return "seed" + std::to_string(p.seed) +
         (p.mode == UpdateMode::kDagPreserving ? "_dag" : "_tree") + "_s" +
         std::to_string(p.shape);
}

const GdnParam kGdnParams[] = {
    {1, UpdateMode::kTreePreserving, 0, 8, 15},
    {2, UpdateMode::kTreePreserving, 1, 8, 15},
    {3, UpdateMode::kTreePreserving, 2, 8, 15},
    {4, UpdateMode::kTreePreserving, 3, 8, 15},
    {5, UpdateMode::kDagPreserving, 0, 8, 15},
    {6, UpdateMode::kDagPreserving, 1, 8, 15},
    {7, UpdateMode::kDagPreserving, 2, 8, 15},
    {8, UpdateMode::kDagPreserving, 3, 8, 15},
};

class GdnPropertyTest : public ::testing::TestWithParam<GdnParam> {};

// One source, four maintainers: the GDN warehouse (level-1 events — the
// network re-reads store truth, so OIDs suffice), the 4-shard coordinator,
// the GeneralMaintainer twin, and the §4.4 recompute oracle. All four must
// agree at every batch boundary, byte for byte.
TEST_P(GdnPropertyTest, EnginesMatchOracleAndShardsByteIdentical) {
  const GdnParam& p = GetParam();
  ObjectStore source;
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 3;
  tree_options.label_variety = 2;
  tree_options.seed = p.seed;
  tree_options.oid_prefix = "ivm" + std::to_string(p.seed) + "_";
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());
  const std::string definition = GeneralDefinition(p.shape, tree->root);
  auto def = ViewDefinition::Parse(definition);
  ASSERT_TRUE(def.ok()) << def.status().ToString();

  ObjectStore w_store(DelegateStoreOptions());
  Warehouse warehouse(&w_store);
  ASSERT_TRUE(warehouse
                  .ConnectSource(&source, tree->root, ReportingLevel::kOidsOnly)
                  .ok());
  ASSERT_TRUE(warehouse.DefineView(definition).ok());
  ASSERT_EQ(warehouse.view_engine("GV"), Warehouse::EngineKind::kGdn);
  warehouse.set_deferred(true);

  ShardedWarehouse sharded(4, ShardedDelegateOptions());
  ASSERT_TRUE(sharded.init_status().ok());
  ASSERT_TRUE(sharded
                  .ConnectSource(&source, tree->root, ReportingLevel::kOidsOnly)
                  .ok());
  ASSERT_TRUE(sharded.DefineView(definition).ok());
  sharded.set_deferred(true);

  ObjectStore g_store;
  MaterializedView g_view(&g_store, *def);
  ASSERT_TRUE(g_view.Initialize(source).ok());
  GeneralMaintainer general(&g_view, &source, *def, tree->root);
  source.AddListener(&general);

  ObjectStore r_store;
  MaterializedView r_view(&r_store, *def);
  ASSERT_TRUE(r_view.Initialize(source).ok());
  RecomputeMaintainer recompute(&r_view, &source);

  UpdateGenOptions gen_options;
  gen_options.mode = p.mode;
  gen_options.seed = p.seed + 77;
  gen_options.oid_prefix = "ivm" + std::to_string(p.seed) + "_u";
  UpdateGenerator gen(&source, tree->root, gen_options);

  for (size_t batch = 0; batch < p.batches; ++batch) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    ASSERT_TRUE(gen.Run(p.batch_size).ok());
    ASSERT_TRUE(warehouse.ProcessPendingBatch().ok())
        << warehouse.last_status().ToString();
    ASSERT_TRUE(sharded.ProcessPendingBatch(4).ok());
    ASSERT_TRUE(general.last_status().ok())
        << general.last_status().ToString();
    ASSERT_TRUE(recompute.Recompute().ok());

    MaterializedView* w_view = warehouse.view("GV");
    ASSERT_NE(w_view, nullptr);
    const auto expected = ViewContentLines(r_view);
    EXPECT_EQ(ViewContentLines(*w_view), expected);
    EXPECT_EQ(sharded.ViewContents("GV"), expected);
    EXPECT_EQ(g_view.BaseMembers(), r_view.BaseMembers());
  }
  source.RemoveListener(&general);

  // The network actually propagated (no silent recompute fallback), and the
  // counters surfaced on both cost sheets.
  EXPECT_GT(warehouse.costs().gdn_propagations.load(), 0);
  EXPECT_GT(sharded.MergedCosts().gdn_propagations.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Randomized, GdnPropertyTest,
                         ::testing::ValuesIn(kGdnParams), GdnParamName);

// ------------------------------------------------------ engine selection

TEST(GdnEngineSelectionTest, SimpleViewsKeepAlgorithm1) {
  ObjectStore source;
  TreeGenOptions tree_options;
  tree_options.seed = 11;
  tree_options.oid_prefix = "sel_";
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());

  ObjectStore store;
  Warehouse warehouse(&store);
  ASSERT_TRUE(
      warehouse.ConnectSource(&source, tree->root, ReportingLevel::kWithValues)
          .ok());
  ASSERT_TRUE(
      warehouse.DefineView(TreeViewDefinition("SV", tree->root, 2, 4, 50))
          .ok());
  EXPECT_EQ(warehouse.view_engine("SV"), Warehouse::EngineKind::kAlgorithm1);
  const ShardedViewExplanation explanation = warehouse.ExplainView("SV");
  EXPECT_EQ(explanation.engine, "algorithm1");
  EXPECT_NE(explanation.ToString().find("engine: algorithm1"),
            std::string::npos);
}

TEST(GdnEngineSelectionTest, GeneralViewsGetTheNetworkAndExplainIt) {
  ObjectStore source;
  TreeGenOptions tree_options;
  tree_options.seed = 12;
  tree_options.oid_prefix = "sel2_";
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());

  ObjectStore store;
  Warehouse warehouse(&store);
  ASSERT_TRUE(
      warehouse.ConnectSource(&source, tree->root, ReportingLevel::kOidsOnly)
          .ok());
  ASSERT_TRUE(warehouse.DefineView(GeneralDefinition(0, tree->root)).ok());
  EXPECT_EQ(warehouse.view_engine("GV"), Warehouse::EngineKind::kGdn);
  const GdnEngine* engine = warehouse.gdn_engine("GV");
  ASSERT_NE(engine, nullptr);
  EXPECT_GT(engine->node_count(), 0u);

  const ShardedViewExplanation explanation = warehouse.ExplainView("GV");
  EXPECT_EQ(explanation.engine, "gdn");
  EXPECT_GT(explanation.gdn_nodes, 0u);
  EXPECT_NE(explanation.ToString().find("engine: gdn"), std::string::npos);
}

TEST(GdnEngineSelectionTest, EnvOverrideSelectsGeneralMaintainer) {
  ObjectStore source;
  TreeGenOptions tree_options;
  tree_options.seed = 13;
  tree_options.oid_prefix = "sel3_";
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());

  ::setenv("GSV_GENERAL_ENGINE", "general", 1);
  ObjectStore store;
  Warehouse warehouse(&store);
  ASSERT_TRUE(
      warehouse.ConnectSource(&source, tree->root, ReportingLevel::kOidsOnly)
          .ok());
  ASSERT_TRUE(warehouse.DefineView(GeneralDefinition(0, tree->root)).ok());
  ::unsetenv("GSV_GENERAL_ENGINE");
  EXPECT_EQ(warehouse.view_engine("GV"), Warehouse::EngineKind::kGeneral);
  EXPECT_NE(warehouse.general_maintainer("GV"), nullptr);
  EXPECT_EQ(warehouse.ExplainView("GV").engine, "general");
}

TEST(GdnEngineSelectionTest, AuxCachesRejectedForGeneralViews) {
  ObjectStore source;
  TreeGenOptions tree_options;
  tree_options.seed = 14;
  tree_options.oid_prefix = "sel4_";
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());

  ObjectStore store;
  Warehouse warehouse(&store);
  ASSERT_TRUE(
      warehouse.ConnectSource(&source, tree->root, ReportingLevel::kOidsOnly)
          .ok());
  Status status = warehouse.DefineView(GeneralDefinition(0, tree->root),
                                       Warehouse::CacheMode::kFull);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
}

// ----------------------------------------------------- engine-level units

TEST(GdnEngineTest, MemoImageRoundTripIsByteStable) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store).ok());
  auto def = ViewDefinition::Parse(
      "define mview V as: SELECT ROOT.* X WHERE X.name = 'John'");
  ASSERT_TRUE(def.ok());

  GdnEngine engine(&store, *def, Root());
  ASSERT_TRUE(engine.Initialize().ok());
  std::ostringstream first;
  engine.SaveTo(first);

  GdnEngine loaded(&store, *def, Root());
  std::istringstream in(first.str());
  ASSERT_TRUE(loaded.LoadFrom(in).ok());
  std::ostringstream second;
  loaded.SaveTo(second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(loaded.members(), engine.members());
}

TEST(GdnEngineTest, MalformedImageIsRejectedAndRebuildRecovers) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store).ok());
  auto def = ViewDefinition::Parse(
      "define mview V as: SELECT ROOT.* X WHERE X.name = 'John'");
  ASSERT_TRUE(def.ok());

  GdnEngine engine(&store, *def, Root());
  std::istringstream garbage("not a gdn memo image\n");
  EXPECT_FALSE(engine.LoadFrom(garbage).ok());
  ASSERT_TRUE(engine.Rebuild().ok());
  EXPECT_EQ(engine.members(), OidSet({P1(), P3()}));
}

TEST(GdnEngineTest, PropagationBudgetPoisonsAndRebuildHeals) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store).ok());
  auto def = ViewDefinition::Parse(
      "define mview V as: SELECT ROOT.* X WHERE X.name = 'John'");
  ASSERT_TRUE(def.ok());

  GdnEngine::Options tiny;
  tiny.max_propagations_per_update = 1;
  GdnEngine engine(&store, *def, Root(), tiny);
  // Rebuilds are exempt from the budget.
  ASSERT_TRUE(engine.Initialize().ok());

  ObjectStore view_store;
  MaterializedView view(&view_store, *def);
  ASSERT_TRUE(view.Initialize(store).ok());

  // A fresh John two levels deep touches far more than one support edge.
  ASSERT_TRUE(store.PutAtomic(Oid("N9"), "name", Value::Str("John")).ok());
  ASSERT_TRUE(store.PutSet(Oid("P9"), "advisee", {Oid("N9")}).ok());
  ASSERT_TRUE(store.Insert(P3(), Oid("P9")).ok());
  Status status =
      engine.Apply(Update::Insert(P3(), Oid("P9")), &view);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(engine.poisoned());
  // Once poisoned, every Apply refuses.
  EXPECT_EQ(engine.Apply(Update::Insert(P3(), Oid("P9")), &view).code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(engine.Rebuild().ok());
  EXPECT_FALSE(engine.poisoned());
  ASSERT_TRUE(engine.Reconcile(&view).ok());
  EXPECT_EQ(view.BaseMembers(), OidSet({P1(), P3(), Oid("P9")}));
}

TEST(GeneralMaintainerTest, SafetyCapsAreCountedWhenSearchTruncates) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store).ok());
  auto def = ViewDefinition::Parse(
      "define mview V as: SELECT ROOT.* X WHERE X.name = 'John'");
  ASSERT_TRUE(def.ok());

  ObjectStore view_store;
  MaterializedView view(&view_store, *def);
  ASSERT_TRUE(view.Initialize(store).ok());
  GeneralMaintainer::Options tiny;
  tiny.max_depth = 1;  // the person DB is deeper than one level
  GeneralMaintainer maintainer(&view, &store, *def, Root(), tiny);

  ASSERT_TRUE(store.PutAtomic(Oid("N9"), "name", Value::Str("John")).ok());
  ASSERT_TRUE(store.PutSet(Oid("P9"), "advisee", {Oid("N9")}).ok());
  ASSERT_TRUE(store.Insert(P3(), Oid("P9")).ok());
  (void)maintainer.Maintain(Update::Insert(P3(), Oid("P9")));
  EXPECT_GT(maintainer.stats().caps_hit, 0)
      << "a truncated search must be visible on the counter";
}

// ------------------------------------------------------------ WITHIN flips

// Scope-database membership changes are ordinary basic updates on the
// database object; the network's filter refresh must flip members in and
// out without a recompute.
TEST(GdnWithinTest, ScopeFlipsPropagateThroughTheNetwork) {
  ObjectStore source;
  ASSERT_TRUE(source.PutSet(Oid("WR"), "root").ok());
  ASSERT_TRUE(source.PutSet(Oid("WP1"), "person").ok());
  ASSERT_TRUE(source.PutSet(Oid("WP2"), "person").ok());
  ASSERT_TRUE(source.PutAtomic(Oid("WA1"), "age", Value::Int(30)).ok());
  ASSERT_TRUE(source.PutAtomic(Oid("WA2"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(source.Insert(Oid("WR"), Oid("WP1")).ok());
  ASSERT_TRUE(source.Insert(Oid("WR"), Oid("WP2")).ok());
  ASSERT_TRUE(source.Insert(Oid("WP1"), Oid("WA1")).ok());
  ASSERT_TRUE(source.Insert(Oid("WP2"), Oid("WA2")).ok());
  // D covers everything except WA2.
  ASSERT_TRUE(
      source.PutSet(Oid("WD"), "database",
                    {Oid("WR"), Oid("WP1"), Oid("WP2"), Oid("WA1")})
          .ok());
  ASSERT_TRUE(source.RegisterDatabase("D", Oid("WD")).ok());

  ObjectStore store;
  Warehouse warehouse(&store);
  ASSERT_TRUE(
      warehouse.ConnectSource(&source, Oid("WR"), ReportingLevel::kOidsOnly)
          .ok());
  ASSERT_TRUE(warehouse
                  .DefineView(
                      "define mview WV as: SELECT WR.person X "
                      "WHERE X.age <= 100 WITHIN D")
                  .ok());
  ASSERT_EQ(warehouse.view_engine("WV"), Warehouse::EngineKind::kGdn);
  MaterializedView* view = warehouse.view("WV");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->BaseMembers(), OidSet({Oid("WP1")}))
      << "WA2 is outside the scope";

  // WA2 joins the scope: WP2's condition witness becomes visible.
  ASSERT_TRUE(source.Insert(Oid("WD"), Oid("WA2")).ok());
  ASSERT_TRUE(warehouse.last_status().ok())
      << warehouse.last_status().ToString();
  EXPECT_EQ(view->BaseMembers(), OidSet({Oid("WP1"), Oid("WP2")}));

  // WA1 leaves the scope: WP1 drops out.
  ASSERT_TRUE(source.Delete(Oid("WD"), Oid("WA1")).ok());
  EXPECT_EQ(view->BaseMembers(), OidSet({Oid("WP2")}));
}

// ----------------------------------------------------------- durability

struct GdnTwinRig {
  ObjectStore source_durable;
  ObjectStore source_twin;
  Oid root;
  std::string definition;
  ObjectStore twin_store;
  std::unique_ptr<Warehouse> twin;
  std::unique_ptr<UpdateGenerator> gen_durable;
  std::unique_ptr<UpdateGenerator> gen_twin;

  void Init(uint64_t tree_seed, uint64_t update_seed) {
    TreeGenOptions tree_options;
    tree_options.levels = 3;
    tree_options.fanout = 3;
    tree_options.label_variety = 2;
    tree_options.seed = tree_seed;
    tree_options.oid_prefix = "ivmk_";
    auto tree_d = GenerateTree(&source_durable, tree_options);
    auto tree_t = GenerateTree(&source_twin, tree_options);
    ASSERT_TRUE(tree_d.ok());
    ASSERT_TRUE(tree_t.ok());
    root = tree_d->root;
    definition = GeneralDefinition(0, root);

    twin = std::make_unique<Warehouse>(&twin_store);
    ASSERT_TRUE(
        twin->ConnectSource(&source_twin, root, ReportingLevel::kOidsOnly)
            .ok());
    ASSERT_TRUE(twin->DefineView(definition).ok());
    twin->set_deferred(true);

    UpdateGenOptions gen_options;
    gen_options.seed = update_seed;
    gen_options.oid_prefix = "ivmk_u";
    gen_durable =
        std::make_unique<UpdateGenerator>(&source_durable, root, gen_options);
    gen_twin =
        std::make_unique<UpdateGenerator>(&source_twin, root, gen_options);
  }
};

// Kill the warehouse at arbitrary WAL bytes mid-batch; recovery must
// restore (clean) or rebuild (torn) the network memos, replay the tail
// convergently, and finish the workload byte-identical to the live twin.
TEST(GdnDurabilityTest, RandomizedKillMidBatchConvergesByteIdentical) {
  constexpr size_t kUpdates = 100;
  constexpr size_t kDrainEvery = 5;

  int64_t total_bytes = 0;
  {
    std::string dir = TempDir("kill_probe");
    GdnTwinRig rig;
    ASSERT_NO_FATAL_FAILURE(rig.Init(/*tree_seed=*/31, /*update_seed=*/601));
    ObjectStore store_d(DelegateStoreOptions());
    Warehouse durable(&store_d);
    ASSERT_TRUE(durable
                    .ConnectSource(&rig.source_durable, rig.root,
                                   ReportingLevel::kOidsOnly)
                    .ok());
    durable.set_deferred(true);
    Warehouse::DurabilityOptions options;
    options.dir = dir;
    ASSERT_TRUE(durable.EnableDurability(options).ok());
    ASSERT_TRUE(durable.DefineView(rig.definition).ok());
    for (size_t i = 0; i < kUpdates; ++i) {
      ASSERT_TRUE(rig.gen_durable->Step().ok());
      if ((i + 1) % kDrainEvery == 0) {
        ASSERT_TRUE(durable.ProcessPendingBatch().ok());
      }
    }
    ASSERT_TRUE(durable.ProcessPendingBatch().ok());
    total_bytes = durable.wal()->bytes_written();
    std::filesystem::remove_all(dir);
  }
  ASSERT_GT(total_bytes, 0);

  for (int iteration = 0; iteration < 6; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));
    int64_t budget =
        total_bytes * (2 * iteration + 1) / 12 + 3 * iteration + 1;
    std::string dir = TempDir("kill_" + std::to_string(iteration));

    GdnTwinRig rig;
    ASSERT_NO_FATAL_FAILURE(rig.Init(/*tree_seed=*/31, /*update_seed=*/601));

    Warehouse::DurabilityOptions options;
    options.dir = dir;
    options.fsync = FsyncPolicy::kCommit;
    options.checkpoint_interval_events = 30;

    size_t applied = 0;
    {
      ObjectStore store_d(DelegateStoreOptions());
      Warehouse durable(&store_d);
      ASSERT_TRUE(durable
                      .ConnectSource(&rig.source_durable, rig.root,
                                     ReportingLevel::kOidsOnly)
                      .ok());
      durable.set_deferred(true);
      ASSERT_TRUE(durable.EnableDurability(options).ok());
      ASSERT_TRUE(durable.DefineView(rig.definition).ok());
      durable.wal()->set_crash_after_bytes(budget);
      while (applied < kUpdates) {
        ASSERT_TRUE(rig.gen_durable->Step().ok());
        ++applied;
        if (durable.wal()->crashed()) break;
        if (applied % kDrainEvery == 0) {
          durable.ProcessPendingBatch();  // errors surface via last_status_
          if (durable.wal()->crashed()) break;
        }
      }
      // Abandoned exactly as a process death would leave it.
    }

    for (size_t i = 0; i < kUpdates; ++i) {
      ASSERT_TRUE(rig.gen_twin->Step().ok());
      if ((i + 1) % kDrainEvery == 0) {
        ASSERT_TRUE(rig.twin->ProcessPendingBatch().ok());
      }
    }
    ASSERT_TRUE(rig.twin->ProcessPendingBatch().ok());

    ObjectStore store_r(DelegateStoreOptions());
    Warehouse recovered(&store_r);
    ASSERT_TRUE(recovered
                    .ConnectSource(&rig.source_durable, rig.root,
                                   ReportingLevel::kOidsOnly)
                    .ok());
    recovered.set_deferred(true);
    ASSERT_TRUE(recovered.EnableDurability(options).ok())
        << recovered.last_status().ToString();
    EXPECT_EQ(recovered.view_engine("GV"), Warehouse::EngineKind::kGdn);
    while (applied < kUpdates) {
      ASSERT_TRUE(rig.gen_durable->Step().ok());
      ++applied;
      if (applied % kDrainEvery == 0) {
        ASSERT_TRUE(recovered.ProcessPendingBatch().ok())
            << recovered.last_status().ToString();
      }
    }
    ASSERT_TRUE(recovered.ProcessPendingBatch().ok());
    ASSERT_EQ(recovered.stale_view_count(), 0u);

    MaterializedView* recovered_view = recovered.view("GV");
    MaterializedView* twin_view = rig.twin->view("GV");
    ASSERT_NE(recovered_view, nullptr);
    ASSERT_NE(twin_view, nullptr);
    EXPECT_EQ(ViewContentLines(*recovered_view), ViewContentLines(*twin_view));
  }
}

// A clean restart restores the checkpointed memo image and the warehouse
// keeps maintaining correctly from it — including a committed WAL tail
// past the checkpoint, which must replay convergently over the memos.
TEST(GdnDurabilityTest, CheckpointRestoresNetworkStateAcrossRestart) {
  const std::string dir = TempDir("ckpt");
  GdnTwinRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Init(/*tree_seed=*/37, /*update_seed=*/701));

  Warehouse::DurabilityOptions options;
  options.dir = dir;

  {
    ObjectStore store_d(DelegateStoreOptions());
    Warehouse durable(&store_d);
    ASSERT_TRUE(durable
                    .ConnectSource(&rig.source_durable, rig.root,
                                   ReportingLevel::kOidsOnly)
                    .ok());
    durable.set_deferred(true);
    ASSERT_TRUE(durable.EnableDurability(options).ok());
    ASSERT_TRUE(durable.DefineView(rig.definition).ok());
    for (int burst = 0; burst < 3; ++burst) {
      ASSERT_TRUE(rig.gen_durable->Run(20).ok());
      ASSERT_TRUE(durable.ProcessPendingBatch().ok());
      ASSERT_TRUE(rig.gen_twin->Run(20).ok());
      ASSERT_TRUE(rig.twin->ProcessPendingBatch().ok());
    }
    ASSERT_TRUE(durable.WriteCheckpoint().ok());
    // Committed tail past the checkpoint.
    ASSERT_TRUE(rig.gen_durable->Run(15).ok());
    ASSERT_TRUE(durable.ProcessPendingBatch().ok());
    ASSERT_TRUE(rig.gen_twin->Run(15).ok());
    ASSERT_TRUE(rig.twin->ProcessPendingBatch().ok());
  }

  ObjectStore store_r(DelegateStoreOptions());
  Warehouse recovered(&store_r);
  ASSERT_TRUE(recovered
                  .ConnectSource(&rig.source_durable, rig.root,
                                 ReportingLevel::kOidsOnly)
                  .ok());
  recovered.set_deferred(true);
  ASSERT_TRUE(recovered.EnableDurability(options).ok())
      << recovered.last_status().ToString();
  EXPECT_TRUE(recovered.recovery_report().recovered_checkpoint);
  EXPECT_EQ(recovered.view_engine("GV"), Warehouse::EngineKind::kGdn);

  MaterializedView* recovered_view = recovered.view("GV");
  MaterializedView* twin_view = rig.twin->view("GV");
  ASSERT_NE(recovered_view, nullptr);
  ASSERT_NE(twin_view, nullptr);
  EXPECT_EQ(ViewContentLines(*recovered_view), ViewContentLines(*twin_view));

  // The restored network must keep maintaining, not just read back.
  ASSERT_TRUE(rig.gen_durable->Run(20).ok());
  ASSERT_TRUE(recovered.ProcessPendingBatch().ok());
  ASSERT_TRUE(rig.gen_twin->Run(20).ok());
  ASSERT_TRUE(rig.twin->ProcessPendingBatch().ok());
  EXPECT_EQ(ViewContentLines(*recovered.view("GV")),
            ViewContentLines(*rig.twin->view("GV")));
}

// Sharded durability with a coordinator-owned network: restart rebuilds
// the coordinator engine from the recovered shard metadata, reconciles the
// slices, and the fleet keeps converging with a live 1-shard twin.
TEST(GdnDurabilityTest, ShardedRestartRebuildsCoordinatorEngine) {
  const std::string dir = TempDir("sharded");
  constexpr uint32_t kShards = 4;

  ObjectStore source;
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 3;
  tree_options.label_variety = 2;
  tree_options.seed = 41;
  tree_options.oid_prefix = "ivms_";
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());
  const std::string definition = GeneralDefinition(2, tree->root);

  ObjectStore twin_store;
  Warehouse twin(&twin_store);
  ASSERT_TRUE(
      twin.ConnectSource(&source, tree->root, ReportingLevel::kOidsOnly).ok());
  ASSERT_TRUE(twin.DefineView(definition).ok());
  twin.set_deferred(true);

  UpdateGenOptions gen_options;
  gen_options.seed = 811;
  gen_options.oid_prefix = "ivms_u";
  UpdateGenerator gen(&source, tree->root, gen_options);

  {
    ShardedWarehouse durable(kShards, ShardedDelegateOptions());
    ASSERT_TRUE(durable.init_status().ok());
    ASSERT_TRUE(durable
                    .ConnectSource(&source, tree->root,
                                   ReportingLevel::kOidsOnly)
                    .ok());
    durable.set_deferred(true);
    ShardedWarehouse::DurabilityOptions options;
    options.dir = dir;
    ASSERT_TRUE(durable.EnableDurability(options).ok());
    ASSERT_TRUE(durable.DefineView(definition).ok());
    EXPECT_EQ(durable.ExplainView("GV").engine, "gdn");

    for (int burst = 0; burst < 3; ++burst) {
      ASSERT_TRUE(gen.Run(25).ok());
      ASSERT_TRUE(twin.ProcessPendingBatch().ok());
      ASSERT_TRUE(durable.ProcessPendingBatch(kShards).ok());
    }
    MaterializedView* view = twin.view("GV");
    ASSERT_NE(view, nullptr);
    ASSERT_EQ(durable.ViewContents("GV"), ViewContentLines(*view));
  }

  ShardedWarehouse recovered(kShards, ShardedDelegateOptions());
  ASSERT_TRUE(recovered.init_status().ok());
  ASSERT_TRUE(
      recovered.ConnectSource(&source, tree->root, ReportingLevel::kOidsOnly)
          .ok());
  recovered.set_deferred(true);
  ShardedWarehouse::DurabilityOptions options;
  options.dir = dir;
  ASSERT_TRUE(recovered.EnableDurability(options).ok());
  EXPECT_EQ(recovered.ExplainView("GV").engine, "gdn");
  EXPECT_EQ(recovered.ViewContents("GV"), ViewContentLines(*twin.view("GV")));

  ASSERT_TRUE(gen.Run(30).ok());
  ASSERT_TRUE(twin.ProcessPendingBatch().ok());
  ASSERT_TRUE(recovered.ProcessPendingBatch(kShards).ok());
  EXPECT_EQ(recovered.stale_view_count(), 0u);
  EXPECT_EQ(recovered.ViewContents("GV"), ViewContentLines(*twin.view("GV")));
}

// ----------------------------------------------------------- concurrency

// Many networks, one frozen source, parallel batch workers: engines of
// different views run concurrently during a drain (the TSan stage vets
// this binary). Every view must still match its recompute oracle.
TEST(GdnConcurrencyTest, ParallelDrainMaintainsManyNetworksRaceFree) {
  ObjectStore source;
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 4;
  tree_options.label_variety = 2;
  tree_options.seed = 53;
  tree_options.oid_prefix = "ivmc_";
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());

  ObjectStore store;
  Warehouse warehouse(&store);
  ASSERT_TRUE(
      warehouse.ConnectSource(&source, tree->root, ReportingLevel::kOidsOnly)
          .ok());
  warehouse.set_deferred(true);

  constexpr int kViews = 4;
  std::vector<std::unique_ptr<ObjectStore>> oracle_stores;
  std::vector<std::unique_ptr<MaterializedView>> oracle_views;
  std::vector<std::unique_ptr<RecomputeMaintainer>> oracles;
  for (int shape = 0; shape < kViews; ++shape) {
    const std::string name = "GV" + std::to_string(shape);
    ASSERT_TRUE(
        warehouse.DefineView(GeneralDefinition(shape, tree->root, name)).ok());
    ASSERT_EQ(warehouse.view_engine(name), Warehouse::EngineKind::kGdn);
    auto def = ViewDefinition::Parse(GeneralDefinition(shape, tree->root, name));
    ASSERT_TRUE(def.ok());
    oracle_stores.push_back(std::make_unique<ObjectStore>());
    oracle_views.push_back(std::make_unique<MaterializedView>(
        oracle_stores.back().get(), *def));
    ASSERT_TRUE(oracle_views.back()->Initialize(source).ok());
    oracles.push_back(std::make_unique<RecomputeMaintainer>(
        oracle_views.back().get(), &source));
  }

  UpdateGenOptions gen_options;
  gen_options.seed = 907;
  gen_options.oid_prefix = "ivmc_u";
  UpdateGenerator gen(&source, tree->root, gen_options);

  Warehouse::BatchOptions batch;
  batch.threads = 4;
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    ASSERT_TRUE(gen.Run(40).ok());
    ASSERT_TRUE(warehouse.ProcessPendingBatch(batch).ok())
        << warehouse.last_status().ToString();
    for (int shape = 0; shape < kViews; ++shape) {
      ASSERT_TRUE(oracles[shape]->Recompute().ok());
      MaterializedView* view = warehouse.view("GV" + std::to_string(shape));
      ASSERT_NE(view, nullptr);
      EXPECT_EQ(view->BaseMembers(), oracle_views[shape]->BaseMembers())
          << "view GV" << shape;
    }
  }
}

}  // namespace
}  // namespace gsv
