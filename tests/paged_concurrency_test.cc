// Concurrency suite for the paged engine's background writeback thread
// (§4i), built to run under TSan (ctest label "tsan"): a foreground
// mutator races the writeback thread through every seam — job enqueue on
// eviction, fault-time steals from queued jobs, copies from running jobs,
// the Flush ticket barrier, the full-queue inline fallback, and both
// destructor modes (drain and abandoned-queue kill). Correctness is
// checked against a memory-engine twin so the races TSan watches are the
// ones the real store exercises.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <utility>

#include "oem/paged_engine.h"
#include "oem/serialize.h"
#include "oem/store.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

std::string TempDir(const std::string& tag) {
  std::string path = ::testing::TempDir() + "gsv_paged_conc_" + tag;
  std::filesystem::remove_all(path);
  return path;
}

// The nastiest configuration: two frames, a two-deep queue (constant
// steals and inline fallbacks), compression on the writeback thread.
PagedEngineOptions HotOptions(const std::string& tag) {
  PagedEngineOptions options;
  options.dir = TempDir(tag);
  options.page_bytes = 512;
  options.pool_pages = 2;
  options.writeback_queue = 2;
  options.codec = "compressed";
  options.wipe_on_close = true;
  return options;
}

ObjectStore::Options StoreOptions(PagedEngineOptions engine_options) {
  ObjectStore::Options options;
  options.engine_factory = MakePagedEngineFactory(std::move(engine_options));
  return options;
}

// Foreground churn vs the writeback thread: puts, modifies, removes, point
// reads, safe points (eviction bursts) and periodic flush barriers, with a
// memory twin asserting content at every barrier.
TEST(PagedConcurrencyTest, WritebackRacesMutatorAndStaysByteIdentical) {
  ObjectStore memory_store;
  ObjectStore paged_store(StoreOptions(HotOptions("churn")));

  TreeGenOptions tree_options;
  tree_options.levels = 4;
  tree_options.fanout = 3;
  tree_options.seed = 97;
  auto tree_m = GenerateTree(&memory_store, tree_options);
  auto tree_p = GenerateTree(&paged_store, tree_options);
  ASSERT_TRUE(tree_m.ok());
  ASSERT_TRUE(tree_p.ok());

  UpdateGenOptions gen_options;
  gen_options.seed = 101;
  UpdateGenerator gen_m(&memory_store, tree_m->root, gen_options);
  UpdateGenerator gen_p(&paged_store, tree_p->root, gen_options);

  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(gen_m.Step().ok());
    ASSERT_TRUE(gen_p.Step().ok());
    if (i % 10 == 9) paged_store.StorageSafePoint();
    if (i % 100 == 99) {
      ASSERT_TRUE(paged_store.FlushStorage().ok());
      ASSERT_EQ(StoreToString(paged_store), StoreToString(memory_store))
          << "diverged at step " << i;
    }
  }
  paged_store.StorageSafePoint();
  ASSERT_TRUE(paged_store.FlushStorage().ok());
  ASSERT_EQ(StoreToString(paged_store), StoreToString(memory_store));

  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(paged_store.storage_engine(), &status));
  ASSERT_TRUE(status.io_error.ok()) << status.io_error.ToString();
  // The configuration actually exercised the contested paths.
  EXPECT_GT(status.writeback_queue_peak, 0u);
  // And the quiescent on-disk image is coherent.
  EXPECT_TRUE(VerifyPagedImage(status.dir, nullptr).ok());
}

// Faulting pages whose jobs are queued or running: tiny pool, reads
// sweeping behind the writeback thread. Steals (cancel a queued job, take
// the map back) and copies (from a started job) both land here.
TEST(PagedConcurrencyTest, FaultsStealFromAndCopyOutOfInflightJobs) {
  ObjectStore store(StoreOptions(HotOptions("steal")));
  constexpr int kObjects = 150;
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(
        store.PutAtomic(Oid("s" + std::to_string(i)), "age", Value::Int(i))
            .ok());
  }
  for (int round = 0; round < 20; ++round) {
    store.StorageSafePoint();  // evicts dirty frames into the queue
    // Immediately read back a stride — some targets' jobs are still in
    // flight, so the fault path must serve them from the queue.
    for (int i = round % 7; i < kObjects; i += 7) {
      const Object* object = store.Get(Oid("s" + std::to_string(i)));
      ASSERT_NE(object, nullptr) << "s" << i;
      ASSERT_EQ(object->value().AsInt(), i);
    }
    // Dirty a stride again so the next round has fresh jobs.
    for (int i = round % 5; i < kObjects; i += 5) {
      ASSERT_TRUE(store.Modify(Oid("s" + std::to_string(i)),
                               Value::Int(i))
                      .ok());
    }
  }
  store.StorageSafePoint();
  ASSERT_TRUE(store.FlushStorage().ok());
  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));
  ASSERT_TRUE(status.io_error.ok()) << status.io_error.ToString();
}

// Destruction races: a store dying while its queue is busy, in both modes.
// The drain mode must finish every queued job before the thread exits; the
// abandon mode (simulated kill) must tear down without touching freed
// state. Several iterations to vary the queue depth at death.
TEST(PagedConcurrencyTest, DestructorDrainsOrAbandonsBusyQueue) {
  for (int iteration = 0; iteration < 6; ++iteration) {
    for (bool abandon : {false, true}) {
      PagedEngineOptions options =
          HotOptions("dtor_" + std::to_string(iteration) +
                     (abandon ? "_kill" : "_drain"));
      options.abandon_queue_on_close = abandon;
      ObjectStore store(StoreOptions(std::move(options)));
      for (int i = 0; i < 60 + iteration * 10; ++i) {
        ASSERT_TRUE(store
                        .PutAtomic(Oid("d" + std::to_string(i)), "age",
                                   Value::Int(i))
                        .ok());
      }
      store.StorageSafePoint();  // stack the queue...
      // ...and destroy immediately, with jobs plausibly still in flight.
    }
  }
}

}  // namespace
}  // namespace gsv
