#include <gtest/gtest.h>

#include "oem/store.h"
#include "query/condition.h"
#include "query/evaluator.h"
#include "query/explain.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "workload/person_db.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

// ----------------------------------------------------------------- Lexer

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select WHERE Within ans INT and OR");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 8u);  // 7 + end
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kSelect);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kWhere);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kWithin);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kAns);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kAnd);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kOr);
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("42 -7 3.5 'John' \"Palo Alto\" `Sally'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIntLit);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].int_value, -7);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kRealLit);
  EXPECT_DOUBLE_EQ((*tokens)[2].real_value, 3.5);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kStringLit);
  EXPECT_EQ((*tokens)[3].text, "John");
  EXPECT_EQ((*tokens)[4].text, "Palo Alto");
  EXPECT_EQ((*tokens)[5].text, "Sally") << "paper-style `...' quoting";
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = Tokenize(". * ? : ( ) = == != <> < <= > >=");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kDot, TokenKind::kStar, TokenKind::kQuestion,
                       TokenKind::kColon, TokenKind::kLParen,
                       TokenKind::kRParen, TokenKind::kEq, TokenKind::kEq,
                       TokenKind::kNe, TokenKind::kNe, TokenKind::kLt,
                       TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                       TokenKind::kEnd}));
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("!x").ok());
}

// ----------------------------------------------------------------- Parser

TEST(ParserTest, PaperQuery21) {
  auto query = ParseQuery("SELECT ROOT.professor X WHERE X.age > 40");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->entry, "ROOT");
  EXPECT_EQ(query->select_path.ToString(), "professor");
  EXPECT_EQ(query->binder, "X");
  ASSERT_TRUE(query->where.IsSimple());
  const Predicate& pred = query->where.simple_predicate();
  EXPECT_EQ(pred.path.ToString(), "age");
  EXPECT_EQ(pred.op, CompareOp::kGt);
  EXPECT_EQ(pred.literal.AsInt(), 40);
  EXPECT_FALSE(query->within_db.has_value());
  EXPECT_FALSE(query->ans_int_db.has_value());
  EXPECT_TRUE(query->IsSimple());
}

TEST(ParserTest, WithinAndAnsInt) {
  auto query = ParseQuery(
      "SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON ANS INT D1");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->select_path.ToString(), "*");
  EXPECT_EQ(query->within_db.value(), "PERSON");
  EXPECT_EQ(query->ans_int_db.value(), "D1");
  EXPECT_FALSE(query->IsSimple()) << "wildcard select path is not simple";
}

TEST(ParserTest, BinderOptionalWithoutWhere) {
  auto query = ParseQuery("SELECT VJ.?.age");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->entry, "VJ");
  EXPECT_EQ(query->select_path.ToString(), "?.age");
  EXPECT_EQ(query->binder, "X");
}

TEST(ParserTest, EmptySelectPath) {
  auto query = ParseQuery("SELECT ROOT X");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->select_path.size(), 0u);
}

TEST(ParserTest, AndOrConditionTree) {
  auto query = ParseQuery(
      "SELECT ROOT.professor X WHERE X.age > 30 AND "
      "(X.name = 'John' OR X.name = 'Sally')");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(query->where.IsTrivial());
  EXPECT_FALSE(query->where.IsSimple());
  EXPECT_EQ(query->where.Predicates().size(), 3u);
  EXPECT_FALSE(query->IsSimple());
}

TEST(ParserTest, ConditionOnBinderItself) {
  auto query = ParseQuery("SELECT ROOT.professor.age X WHERE X >= 45");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(query->where.IsSimple());
  EXPECT_EQ(query->where.simple_predicate().path.size(), 0u);
}

TEST(ParserTest, BinderMismatchRejected) {
  EXPECT_FALSE(ParseQuery("SELECT ROOT.professor X WHERE Y.age > 40").ok());
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT").ok());
  EXPECT_FALSE(ParseQuery("SELECT ROOT.").ok());
  EXPECT_FALSE(ParseQuery("SELECT ROOT.professor X WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT ROOT.professor X WHERE X.age >").ok());
  EXPECT_FALSE(ParseQuery("SELECT ROOT.professor X ANS PERSON").ok());
  EXPECT_FALSE(ParseQuery("SELECT ROOT.professor X trailing junk").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ROOT.professor X WHERE (X.age > 4").ok());
}

TEST(ParserTest, DefineStatements) {
  auto def = ParseDefine(
      "define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' "
      "WITHIN PERSON");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->name, "VJ");
  EXPECT_FALSE(def->materialized);
  EXPECT_EQ(def->query.entry, "ROOT");

  auto mdef = ParseDefine("define mview YP as SELECT ROOT.professor X "
                          "WHERE X.age <= 45");
  ASSERT_TRUE(mdef.ok());
  EXPECT_TRUE(mdef->materialized);
  EXPECT_EQ(mdef->name, "YP");

  EXPECT_FALSE(ParseDefine("define YP as SELECT ROOT.professor X").ok());
  EXPECT_FALSE(ParseDefine("SELECT ROOT.professor X").ok());
}

TEST(ParserTest, ToStringRoundTrip) {
  const char* text =
      "SELECT ROOT.professor X WHERE X.age > 40 WITHIN PERSON ANS INT D1";
  auto query = ParseQuery(text);
  ASSERT_TRUE(query.ok());
  auto reparsed = ParseQuery(query->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToString(), query->ToString());
}

// ------------------------------------------------------------- Condition

TEST(ConditionTest, CompareValuesSemantics) {
  EXPECT_TRUE(CompareValues(Value::Int(45), CompareOp::kGe, Value::Int(45)));
  EXPECT_TRUE(CompareValues(Value::Int(41), CompareOp::kGt, Value::Int(40)));
  EXPECT_FALSE(CompareValues(Value::Int(40), CompareOp::kGt, Value::Int(40)));
  EXPECT_TRUE(
      CompareValues(Value::Str("John"), CompareOp::kEq, Value::Str("John")));
  EXPECT_TRUE(
      CompareValues(Value::Real(2.5), CompareOp::kLt, Value::Int(3)));
  // Incomparable: only != holds (for atomic operands).
  EXPECT_TRUE(
      CompareValues(Value::Str("x"), CompareOp::kNe, Value::Int(1)));
  EXPECT_FALSE(
      CompareValues(Value::Str("x"), CompareOp::kEq, Value::Int(1)));
  EXPECT_FALSE(CompareValues(Value::SetOf({}), CompareOp::kNe, Value::Int(1)));
}

TEST(ConditionTest, TrivialConditionIsTrue) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store).ok());
  Condition trivial;
  EXPECT_TRUE(trivial.IsTrivial());
  EXPECT_TRUE(trivial.Evaluate(store, P1()));
}

TEST(ConditionTest, AnySemantics) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store).ok());
  // P1 has both name=John (N1) and a student with name=John (N3): the
  // wildcard path ?.name also reaches N3. Any match suffices (§2).
  Predicate pred{*PathExpression::Parse("name"), CompareOp::kEq,
                 Value::Str("John")};
  Condition cond = Condition::MakePredicate(pred);
  EXPECT_TRUE(cond.Evaluate(store, P1()));
  EXPECT_FALSE(cond.Evaluate(store, P2()));
}

TEST(ConditionTest, AndOrEvaluation) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store).ok());
  auto pred = [](const char* path, CompareOp op, Value v) {
    return Condition::MakePredicate(
        Predicate{*PathExpression::Parse(path), op, std::move(v)});
  };
  Condition name_john = pred("name", CompareOp::kEq, Value::Str("John"));
  Condition age_50 = pred("age", CompareOp::kGt, Value::Int(50));
  Condition age_40 = pred("age", CompareOp::kGt, Value::Int(40));

  EXPECT_TRUE(
      Condition::And(name_john, age_40).Evaluate(store, P1()));  // 45 > 40
  EXPECT_FALSE(Condition::And(name_john, age_50).Evaluate(store, P1()));
  EXPECT_TRUE(Condition::Or(name_john, age_50).Evaluate(store, P1()));
  EXPECT_FALSE(Condition::Or(age_50, age_50).Evaluate(store, P2()))
      << "P2 has no age at all";
}

TEST(ConditionTest, SetObjectsNeverSatisfyPredicates) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store).ok());
  // ROOT.professor reaches set objects P1/P2; only atomic values count.
  Predicate pred{*PathExpression::Parse("professor"), CompareOp::kNe,
                 Value::Int(0)};
  EXPECT_FALSE(Condition::MakePredicate(pred).Evaluate(store, Root()));
}

// ------------------------------------------------------------- Evaluator

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(BuildPersonDb(&store_).ok()); }

  OidSet Eval(const std::string& text) {
    Result<OidSet> result = EvaluateQueryText(store_, text);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << " for " << text;
    return result.ok() ? *result : OidSet();
  }

  ObjectStore store_;
};

TEST_F(EvaluatorTest, PaperSection2Query) {
  // "SELECT ROOT.professor X WHERE X.age > 40 will return <ANS, answer,
  //  set, {P1}>" (§2).
  EXPECT_EQ(Eval("SELECT ROOT.professor X WHERE X.age > 40"),
            OidSet({P1()}));
}

TEST_F(EvaluatorTest, DatabaseNameAsEntry) {
  // DB.? starts at all objects in DB (§2).
  OidSet top = Eval("SELECT PERSON.? X");
  EXPECT_EQ(top.size(), 15u) << "every member of PERSON matches ?";
}

TEST_F(EvaluatorTest, UnknownEntryIsError) {
  EXPECT_FALSE(EvaluateQueryText(store_, "SELECT NOPE.professor X").ok());
}

TEST_F(EvaluatorTest, UnknownWithinOrAnsIntIsError) {
  EXPECT_FALSE(
      EvaluateQueryText(store_, "SELECT ROOT.professor X WITHIN NOPE").ok());
  EXPECT_FALSE(
      EvaluateQueryText(store_, "SELECT ROOT.professor X ANS INT NOPE").ok());
}

TEST_F(EvaluatorTest, WithinHidesOutOfDatabaseObjects) {
  // Split the data: D1 = everything except A1 (paper §2's example).
  OidSet members;
  store_.ForEach([&](const Object& object) {
    if (object.oid() != A1() && object.oid() != Person()) {
      members.Insert(object.oid());
    }
  });
  ASSERT_TRUE(store_.PutSet(Oid("D1obj"), "database").ok());
  ASSERT_TRUE(store_.SetValueRaw(Oid("D1obj"), Value::Set(members)).ok());
  ASSERT_TRUE(store_.RegisterDatabase("D1", Oid("D1obj")).ok());

  // Without the clause, P1 qualifies through A1.
  EXPECT_EQ(Eval("SELECT ROOT.professor X WHERE X.age > 40"), OidSet({P1()}));
  // WITHIN D1 ignores A1 entirely: empty result (paper §2).
  EXPECT_EQ(Eval("SELECT ROOT.professor X WHERE X.age > 40 WITHIN D1"),
            OidSet());
  // ANS INT D1 allows the condition to use A1 but keeps only answers in D1:
  // P1 is in D1, so it stays (paper §2).
  EXPECT_EQ(Eval("SELECT ROOT.professor X WHERE X.age > 40 ANS INT D1"),
            OidSet({P1()}));

  // Now make D2 = everything except P1: same query ANS INT D2 is empty
  // (paper §2: "if all nodes except P1 are in D1 ... empty set").
  OidSet members2;
  store_.ForEach([&](const Object& object) {
    if (object.oid() != P1() && object.oid() != Person() &&
        object.oid() != Oid("D1obj")) {
      members2.Insert(object.oid());
    }
  });
  ASSERT_TRUE(store_.PutSet(Oid("D2obj"), "database").ok());
  ASSERT_TRUE(store_.SetValueRaw(Oid("D2obj"), Value::Set(members2)).ok());
  ASSERT_TRUE(store_.RegisterDatabase("D2", Oid("D2obj")).ok());
  EXPECT_EQ(Eval("SELECT ROOT.professor X WHERE X.age > 40 ANS INT D2"),
            OidSet());
}

TEST_F(EvaluatorTest, AnswerObjectShape) {
  OidSet answer = Eval("SELECT ROOT.professor X WHERE X.age > 40");
  Object ans = MakeAnswerObject(Oid("ANS"), answer);
  EXPECT_EQ(ans.ToString(), "<ANS, answer, set, {P1}>");
}

TEST_F(EvaluatorTest, StoreAnswerAsEnablesFollowOnQueries) {
  OidSet answer = Eval("SELECT ROOT.professor X WHERE X.age > 40");
  ASSERT_TRUE(StoreAnswerAs(store_, "RICH", Oid("ANS1"), answer).ok());
  // Follow-on query uses the stored answer as entry point (§3.1).
  EXPECT_EQ(Eval("SELECT RICH.? X"), OidSet({P1()}));
  EXPECT_EQ(Eval("SELECT RICH.?.age X"), OidSet({A1()}));
  EXPECT_EQ(Eval("SELECT RICH.?.? X"), OidSet({N1(), A1(), S1(), P3()}));
  // And as an ANS INT restriction.
  EXPECT_EQ(Eval("SELECT ROOT.professor X ANS INT RICH"), OidSet({P1()}));
}

TEST_F(EvaluatorTest, ExplainMatchesEvaluateAndTracesSteps) {
  const char* text = "SELECT ROOT.professor X WHERE X.age > 40";
  auto explanation = ExplainQueryText(store_, text);
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  EXPECT_EQ(explanation->answer, Eval(text));
  EXPECT_EQ(explanation->entry_oid, Root());
  EXPECT_FALSE(explanation->entry_was_database);
  ASSERT_EQ(explanation->steps.size(), 1u);
  EXPECT_EQ(explanation->steps[0].atom, "professor");
  EXPECT_EQ(explanation->steps[0].frontier_before, 1u);
  EXPECT_EQ(explanation->steps[0].frontier_after, 2u);
  EXPECT_EQ(explanation->candidates, 2u);
  EXPECT_EQ(explanation->passed_condition, 1u);
  // Index on (the default): the select stage is answered by posting probes,
  // not edge walks.
  EXPECT_EQ(explanation->plan.select, QueryPlan::Select::kIndexProbe);
  EXPECT_GT(explanation->plan.index_probes, 0);
  EXPECT_NE(explanation->ToString().find("plan: index-probe"),
            std::string::npos);
  EXPECT_NE(explanation->ToString().find(".professor: 1 -> 2"),
            std::string::npos);
}

TEST_F(EvaluatorTest, ExplainReportsTraversalPlanWithoutIndex) {
  ObjectStore store(
      ObjectStore::Options{.enable_parent_index = true,
                           .enable_label_index = false});
  ASSERT_TRUE(BuildPersonDb(&store).ok());
  auto explanation =
      ExplainQueryText(store, "SELECT ROOT.professor X WHERE X.age > 40");
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  EXPECT_EQ(explanation->plan.select, QueryPlan::Select::kTraversal);
  EXPECT_EQ(explanation->plan.index_probes, 0);
  EXPECT_GT(explanation->plan.index_fallbacks, 0);
  EXPECT_GT(explanation->total_edges, 0);
  EXPECT_NE(explanation->ToString().find("plan: traversal"),
            std::string::npos);
}

TEST_F(EvaluatorTest, ExplainWildcardAndScopes) {
  auto explanation = ExplainQueryText(
      store_, "SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON");
  ASSERT_TRUE(explanation.ok());
  EXPECT_TRUE(explanation->scoped);
  ASSERT_EQ(explanation->steps.size(), 1u);
  EXPECT_EQ(explanation->steps[0].atom, "*");
  EXPECT_EQ(explanation->answer, OidSet({P1(), P3()}));

  auto db_entry = ExplainQueryText(store_, "SELECT PERSON.? X");
  ASSERT_TRUE(db_entry.ok());
  EXPECT_TRUE(db_entry->entry_was_database);

  EXPECT_FALSE(ExplainQueryText(store_, "SELECT NOPE.x X").ok());
  EXPECT_FALSE(
      ExplainQueryText(store_, "SELECT ROOT.professor X WITHIN NOPE").ok());
  EXPECT_FALSE(
      ExplainQueryText(store_, "SELECT ROOT.professor X ANS INT NOPE").ok());
}

TEST_F(EvaluatorTest, EmptySelectPathReturnsEntryIfConditionHolds) {
  EXPECT_EQ(Eval("SELECT P1 X WHERE X.age = 45"), OidSet({P1()}));
  EXPECT_EQ(Eval("SELECT P1 X WHERE X.age = 46"), OidSet());
}

}  // namespace
}  // namespace gsv
