// Replication suite (§4g): WAL shipping over a faulty transport, follower
// convergence at commit watermarks, staleness policies, divergence
// self-heal, follower crash recovery, and fenced failover. The headline
// property: a follower is byte-identical with its primary at every commit
// watermark no matter how badly the channel misbehaves — and a promoted
// follower's fence cuts the old primary off at its next log write.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "oem/paged_engine.h"
#include "oem/serialize.h"
#include "oem/store.h"
#include "replication/checksums.h"
#include "replication/log_transport.h"
#include "replication/replica.h"
#include "replication/transport_fault.h"
#include "storage/checkpoint.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "warehouse/sharded_warehouse.h"
#include "warehouse/sharding.h"
#include "warehouse/warehouse.h"
#include "workload/dag_gen.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

std::string TempDir(const std::string& tag) {
  std::string path = ::testing::TempDir() + "gsv_replication_" + tag;
  std::filesystem::remove_all(path);
  return path;
}

// CI re-points the primaries' delegate stores and every follower at the
// paged engine via GSV_STORAGE_ENGINE=paged (ci.sh "paged" stage); unset,
// the factories are null and the memory default serves.
ObjectStore::Options DelegateStoreOptions() {
  ObjectStore::Options options;
  options.engine_factory = MakeEngineFactoryFromEnv();
  return options;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void PutU32Le(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// A raw CRC-framed record, exactly as Wal::WriteFrame lays it down.
std::string RawFrame(const WalRecord& record) {
  std::string payload = EncodeWalPayload(record);
  std::string frame;
  PutU32Le(&frame, static_cast<uint32_t>(payload.size()));
  PutU32Le(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

// ------------------------------------------------------------- transport

TEST(LogTransportTest, FileTransportListsReadsAndFetches) {
  std::string dir = TempDir("transport_basics");
  {
    Wal::Options wal_options;
    wal_options.fsync = FsyncPolicy::kNever;
    auto wal = Wal::Open(dir, wal_options, 1);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(wal.value()->Append(WalRecord::Commit({{"s", 1}})).ok());
    ASSERT_TRUE(wal.value()->Roll().ok());
    ASSERT_TRUE(wal.value()->Append(WalRecord::Commit({{"s", 2}})).ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
  }

  FileLogTransport transport(dir);
  auto listing = transport.ListSegments();
  ASSERT_TRUE(listing.ok()) << listing.status().ToString();
  ASSERT_EQ(listing.value().size(), 2u);
  EXPECT_EQ(listing.value()[0].first_lsn, 1u);
  EXPECT_EQ(listing.value()[1].first_lsn, 2u);
  EXPECT_GT(listing.value()[0].size, 0u);

  // Ranged reads: a prefix, the remainder, and a read past the end.
  const TransportSegment& seg = listing.value()[0];
  auto head = transport.ReadSegment(seg.name, 0, 4);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head.value().offset, 0u);
  EXPECT_EQ(head.value().data.size(), 4u);
  EXPECT_FALSE(head.value().at_end);
  auto rest = transport.ReadSegment(seg.name, 4, 1 << 20);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest.value().offset, 4u);
  EXPECT_EQ(rest.value().data.size(), seg.size - 4);
  EXPECT_TRUE(rest.value().at_end);
  auto past = transport.ReadSegment(seg.name, seg.size, 64);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past.value().data.empty());
  EXPECT_TRUE(past.value().at_end);
  EXPECT_EQ(head.value().data + rest.value().data,
            ReadFileBytes(dir + "/" + seg.name));

  // Whole-file fetches and their error surface.
  EXPECT_EQ(transport.FetchFile("CURRENT").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(transport.ReadSegment("wal-999999999999.log", 0, 64)
                .status()
                .code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(transport.FetchFile("../escape").ok());

  // Fences: absent reads as epoch 0; publishing never lowers.
  auto fence = transport.FetchFence();
  ASSERT_TRUE(fence.ok());
  EXPECT_EQ(fence.value().epoch, 0u);
  ASSERT_TRUE(transport.PublishFence(3, "new-primary").ok());
  EXPECT_EQ(transport.PublishFence(2, "usurper").code(),
            StatusCode::kFailedPrecondition);
  fence = transport.FetchFence();
  ASSERT_TRUE(fence.ok());
  EXPECT_EQ(fence.value().epoch, 3u);
  EXPECT_EQ(fence.value().owner, "new-primary");
}

TEST(LogTransportTest, FaultInjectorTearsDuplicatesAndFlips) {
  std::string dir = TempDir("transport_faults");
  {
    Wal::Options wal_options;
    wal_options.fsync = FsyncPolicy::kNever;
    auto wal = Wal::Open(dir, wal_options, 1);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          wal.value()->Append(WalRecord::Commit({{"s", uint64_t(i)}})).ok());
    }
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  TransportFaultProfile profile;
  profile.seed = 7;
  profile.fail_rate = 0.2;
  profile.fail_burst = 2;
  profile.torn_read_rate = 0.3;
  profile.duplicate_rate = 0.3;
  profile.flip_rate = 0.3;
  FaultInjectedTransport transport(std::make_unique<FileLogTransport>(dir),
                                   profile);

  std::string clean;
  {
    auto listing = FileLogTransport(dir).ListSegments();
    ASSERT_TRUE(listing.ok());
    clean = ReadFileBytes(dir + "/" + listing.value()[0].name);
  }

  int flips_seen = 0;
  for (int round = 0; round < 200; ++round) {
    auto listing = transport.ListSegments();
    if (!listing.ok()) {
      EXPECT_EQ(listing.status().code(), StatusCode::kUnavailable);
      continue;
    }
    ASSERT_EQ(listing.value().size(), 1u);
    auto chunk =
        transport.ReadSegment(listing.value()[0].name, 16, 1 << 20);
    if (!chunk.ok()) {
      EXPECT_EQ(chunk.status().code(), StatusCode::kUnavailable);
      continue;
    }
    // Duplicated reads start early, torn reads stop short — but what
    // arrives is always a contiguous run of the real file unless a bit
    // flipped.
    ASSERT_LE(chunk.value().offset, 16u);
    ASSERT_LE(chunk.value().offset + chunk.value().data.size(),
              clean.size());
    if (chunk.value().data !=
        clean.substr(chunk.value().offset, chunk.value().data.size())) {
      ++flips_seen;
    }
  }
  EXPECT_GT(transport.ops_failed(), 0);
  EXPECT_GT(transport.reads_torn(), 0);
  EXPECT_GT(transport.reads_duplicated(), 0);
  EXPECT_GT(transport.bits_flipped(), 0);
  EXPECT_GT(flips_seen, 0);

  // Scripted faults override the profile; Heal makes the channel perfect.
  transport.set_down(true);
  EXPECT_EQ(transport.ListSegments().status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(transport.FetchFence().status().code(),
            StatusCode::kUnavailable);
  transport.set_down(false);
  transport.Heal();
  for (int i = 0; i < 50; ++i) {
    auto listing = transport.ListSegments();
    ASSERT_TRUE(listing.ok());
    auto chunk = transport.ReadSegment(listing.value()[0].name, 0, 1 << 20);
    ASSERT_TRUE(chunk.ok());
    EXPECT_EQ(chunk.value().data, clean);
  }
}

// ------------------------------------------------------- WAL hardening

TEST(WalHardeningTest, EpochRecordRoundTripsAndStampsSegments) {
  WalRecord record = WalRecord::Epoch(42, "primary-b");
  record.lsn = 9;
  auto decoded = DecodeWalPayload(EncodeWalPayload(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, WalRecordType::kEpoch);
  EXPECT_EQ(decoded.value().lsn, 9u);
  EXPECT_EQ(decoded.value().epoch, 42u);
  EXPECT_EQ(decoded.value().owner, "primary-b");

  // An epoch-bearing WAL leads every segment with its header record.
  std::string dir = TempDir("epoch_headers");
  {
    Wal::Options options;
    options.fsync = FsyncPolicy::kNever;
    options.writer_epoch = 4;
    options.owner = "p";
    auto wal = Wal::Open(dir, options, 1);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(wal.value()->Append(WalRecord::Commit({{"s", 1}})).ok());
    ASSERT_TRUE(wal.value()->Roll().ok());
    ASSERT_TRUE(wal.value()->Append(WalRecord::Commit({{"s", 2}})).ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  auto scan = ScanWal(dir);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan.value().records.size(), 4u);
  EXPECT_EQ(scan.value().records[0].type, WalRecordType::kEpoch);
  EXPECT_EQ(scan.value().records[0].epoch, 4u);
  EXPECT_EQ(scan.value().records[2].type, WalRecordType::kEpoch);

  auto fence = ReadFence(dir);
  ASSERT_TRUE(fence.ok());
  EXPECT_EQ(fence.value().epoch, 4u);
  EXPECT_EQ(fence.value().owner, "p");
}

TEST(WalHardeningTest, RaisedFenceRejectsStaleWriter) {
  std::string dir = TempDir("fence_reject");
  Wal::Options options;
  options.fsync = FsyncPolicy::kNever;
  options.writer_epoch = 1;
  options.owner = "old-primary";
  auto wal = Wal::Open(dir, options, 1);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE(wal.value()->Append(WalRecord::Commit({{"s", 1}})).ok());

  // A promoted follower raises the fence out from under the old writer.
  ASSERT_TRUE(WriteFence(dir, 2, "new-primary").ok());
  Status append = wal.value()->Append(WalRecord::Commit({{"s", 2}}));
  EXPECT_EQ(append.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(IsFencedStatus(append)) << append.ToString();
  EXPECT_TRUE(IsFencedStatus(wal.value()->Roll()));

  // A writer at the standing epoch may keep the directory.
  Wal::Options resume = options;
  resume.writer_epoch = 2;
  resume.owner = "new-primary";
  auto scan = ScanWal(dir);
  ASSERT_TRUE(scan.ok());
  auto reopened = Wal::Open(dir, resume, scan.value().next_lsn);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened.value()->Append(WalRecord::Commit({{"s", 3}})).ok());

  // ...and a lower-epoch open is refused outright.
  auto stale = Wal::Open(dir, options, scan.value().next_lsn);
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(IsFencedStatus(stale.status()));
}

TEST(WalHardeningTest, TornTailInNonFinalSegmentIsCorruption) {
  std::string dir = TempDir("nonfinal_torn");
  {
    Wal::Options wal_options;
    wal_options.fsync = FsyncPolicy::kNever;
    auto wal = Wal::Open(dir, wal_options, 1);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(WalRecord::Commit({{"s", 1}})).ok());
    ASSERT_TRUE(wal.value()->Roll().ok());
    ASSERT_TRUE(wal.value()->Append(WalRecord::Commit({{"s", 2}})).ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  auto segments = ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments.value().size(), 2u);

  // A torn final tail is the normal crash shape: silently truncatable.
  {
    const std::string last =
        dir + "/" + segments.value().back().name;
    std::string bytes = ReadFileBytes(last);
    std::ofstream(last, std::ios::binary | std::ios::trunc)
        << bytes.substr(0, bytes.size() - 3);
    auto scan = ScanWal(dir);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    EXPECT_TRUE(scan.value().torn);
    EXPECT_EQ(scan.value().records.size(), 1u);
    std::ofstream(last, std::ios::binary | std::ios::trunc) << bytes;
  }

  // The same tear in a *non-final* segment cannot be a crash artifact —
  // later segments exist, so these bytes were once whole. That is data
  // loss, not truncation.
  const std::string first = dir + "/" + segments.value().front().name;
  std::string bytes = ReadFileBytes(first);
  std::ofstream(first, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() - 3);
  auto scan = ScanWal(dir);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(scan.status().message().find("non-final"), std::string::npos)
      << scan.status().ToString();
}

TEST(WalHardeningTest, ListSkipsStrangersWithWarnings) {
  std::string dir = TempDir("list_strangers");
  {
    Wal::Options wal_options;
    wal_options.fsync = FsyncPolicy::kNever;
    auto wal = Wal::Open(dir, wal_options, 1);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(WalRecord::Commit({{"s", 1}})).ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  std::ofstream(dir + "/notes.txt") << "not a segment\n";
  std::ofstream(dir + "/wal-abc.log") << "bad lsn digits\n";
  std::ofstream(dir + "/wal-000000000009.tmp") << "bad suffix\n";
  std::filesystem::create_directory(dir + "/wal-000000000007.log");

  std::vector<std::string> warnings;
  auto segments = ListWalSegments(dir, &warnings);
  ASSERT_TRUE(segments.ok()) << segments.status().ToString();
  ASSERT_EQ(segments.value().size(), 1u);
  EXPECT_EQ(segments.value()[0].first_lsn, 1u);
  // Only wal-prefixed strangers warn; unrelated files (CURRENT, CHECKSUMS,
  // notes.txt) are silently legitimate residents of a durability home.
  ASSERT_EQ(warnings.size(), 3u);
}

// ------------------------------------------------------------ replica rig

// One primary warehouse over a generated tree, durable in `primary_dir`.
// Sharded replication gets its own rig below; this one drives the
// single-home Replica through every lifecycle test.
struct PrimaryRig {
  TreeGenOptions tree_options;
  std::string definition;
  Oid root;
  std::string primary_dir;

  ObjectStore source;
  ObjectStore store{DelegateStoreOptions()};
  std::unique_ptr<Warehouse> warehouse;
  std::unique_ptr<UpdateGenerator> gen;

  void Init(const std::string& dir_tag, uint64_t seed, uint64_t epoch = 0,
            const std::string& owner = "") {
    primary_dir = TempDir(dir_tag);
    tree_options.levels = 3;
    tree_options.fanout = 3;
    tree_options.seed = seed;
    auto tree = GenerateTree(&source, tree_options);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    root = tree->root;
    definition = TreeViewDefinition("WV", root, 2, 3, 50);

    warehouse = std::make_unique<Warehouse>(&store);
    ASSERT_TRUE(
        warehouse->ConnectSource(&source, root, ReportingLevel::kWithValues)
            .ok());
    warehouse->set_deferred(true);
    Warehouse::DurabilityOptions options;
    options.dir = primary_dir;
    options.fsync = FsyncPolicy::kCommit;
    options.epoch = epoch;
    options.owner = owner;
    ASSERT_TRUE(warehouse->EnableDurability(options).ok());
    ASSERT_TRUE(warehouse->DefineView(definition).ok());

    UpdateGenOptions gen_options;
    gen_options.seed = seed + 1;
    gen = std::make_unique<UpdateGenerator>(&source, root, gen_options);
  }

  // Applies `n` source updates and drains them into one commit group.
  void Advance(size_t n) {
    for (size_t i = 0; i < n; ++i) ASSERT_TRUE(gen->Step().ok());
    ASSERT_TRUE(warehouse->ProcessPending().ok());
  }

  uint64_t committed_lsn() const {
    return warehouse->wal()->next_lsn() - 1;
  }

  void ExpectConverged(const Replica& replica) {
    const MaterializedView* primary_view = warehouse->view("WV");
    const MaterializedView* replica_view = replica.view("WV");
    ASSERT_NE(primary_view, nullptr);
    ASSERT_NE(replica_view, nullptr);
    EXPECT_EQ(ViewContentLines(*replica_view),
              ViewContentLines(*primary_view));
    EXPECT_EQ(StoreToString(replica.store()), StoreToString(store));
    EXPECT_EQ(replica.applied_lsn(), committed_lsn());
  }
};

ReplicaOptions DefaultReplicaOptions(const std::string& dir_tag) {
  ReplicaOptions options;
  options.dir = TempDir(dir_tag);
  options.engine_factory = MakeEngineFactoryFromEnv();
  return options;
}

// --------------------------------------------------------- clean channel

TEST(ReplicaTest, ConvergesByteIdenticalOverCleanChannel) {
  PrimaryRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Init("clean_primary", 11));

  Replica replica(std::make_unique<FileLogTransport>(rig.primary_dir),
                  DefaultReplicaOptions("clean_replica"));
  ASSERT_TRUE(replica.Start().ok());

  for (int round = 0; round < 4; ++round) {
    ASSERT_NO_FATAL_FAILURE(rig.Advance(25));
    Status caught = replica.CatchUp();
    ASSERT_TRUE(caught.ok()) << caught.ToString();
    ASSERT_NO_FATAL_FAILURE(rig.ExpectConverged(replica));
  }
  EXPECT_GT(replica.stats().deltas_applied, 0);
  EXPECT_GT(replica.stats().commits_applied, 0);
  EXPECT_EQ(replica.stats().self_heals, 0);

  // The local mirror is byte-identical with the primary's log — the
  // follower's home is itself a valid durability directory.
  auto segments = ListWalSegments(rig.primary_dir);
  ASSERT_TRUE(segments.ok());
  for (const auto& segment : segments.value()) {
    EXPECT_EQ(ReadFileBytes(replica.dir() + "/" + segment.name),
              ReadFileBytes(rig.primary_dir + "/" + segment.name))
        << segment.name;
  }

  // The read surface carries its watermark.
  auto read = replica.ReadView("WV");
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read.value().served_stale);
  EXPECT_FALSE(read.value().staleness.stale);
  EXPECT_EQ(read.value().staleness.applied_lsn, rig.committed_lsn());
  EXPECT_EQ(read.value().staleness.lag_bytes, 0u);
  EXPECT_EQ(read.value().lines,
            ViewContentLines(*rig.warehouse->view("WV")));
  EXPECT_TRUE(replica.ReadView("nope").status().code() ==
              StatusCode::kNotFound);
}

TEST(ReplicaTest, SeedsFromPrimaryCheckpointThenTails) {
  PrimaryRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Init("seed_primary", 13));
  ASSERT_NO_FATAL_FAILURE(rig.Advance(40));
  ASSERT_TRUE(rig.warehouse->WriteCheckpoint().ok());
  ASSERT_NO_FATAL_FAILURE(rig.Advance(30));

  Replica replica(std::make_unique<FileLogTransport>(rig.primary_dir),
                  DefaultReplicaOptions("seed_replica"));
  ASSERT_TRUE(replica.Start().ok());
  EXPECT_EQ(replica.stats().reseeds, 1);
  // The seed already carries the checkpointed state + definitions...
  EXPECT_EQ(replica.view_names(), std::vector<std::string>{"WV"});
  // ...and tailing replays only the post-checkpoint tail.
  ASSERT_TRUE(replica.CatchUp().ok());
  ASSERT_NO_FATAL_FAILURE(rig.ExpectConverged(replica));
  EXPECT_EQ(replica.stats().reseeds, 1);
}

// ------------------------------------------------------------- staleness

TEST(ReplicaTest, StalenessPolicyServesStaleOrRefuses) {
  PrimaryRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Init("stale_primary", 17));

  auto make_transport = [&rig]() {
    return std::make_unique<FaultInjectedTransport>(
        std::make_unique<FileLogTransport>(rig.primary_dir),
        TransportFaultProfile{});
  };
  auto serve_transport = make_transport();
  auto refuse_transport = make_transport();
  FaultInjectedTransport* serve_channel = serve_transport.get();
  FaultInjectedTransport* refuse_channel = refuse_transport.get();

  ReplicaOptions serve_options = DefaultReplicaOptions("stale_serve");
  serve_options.max_failed_polls = 2;
  Replica serving(std::move(serve_transport), serve_options);

  ReplicaOptions refuse_options = DefaultReplicaOptions("stale_refuse");
  refuse_options.max_failed_polls = 2;
  refuse_options.staleness = StalenessPolicy::kRefuse;
  Replica refusing(std::move(refuse_transport), refuse_options);

  ASSERT_TRUE(serving.Start().ok());
  ASSERT_TRUE(refusing.Start().ok());
  ASSERT_NO_FATAL_FAILURE(rig.Advance(25));
  ASSERT_TRUE(serving.CatchUp().ok());
  ASSERT_TRUE(refusing.CatchUp().ok());
  const auto caught_up_lines = serving.ReadView("WV").value().lines;

  // Channel down, primary keeps committing: after max_failed_polls the
  // watermark flips stale.
  serve_channel->set_down(true);
  refuse_channel->set_down(true);
  ASSERT_NO_FATAL_FAILURE(rig.Advance(25));
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(serving.Poll().ok());
    EXPECT_FALSE(refusing.Poll().ok());
  }
  EXPECT_TRUE(serving.staleness().stale);
  EXPECT_TRUE(refusing.staleness().stale);

  // kServeStaleWithStatus: the read succeeds, flagged, with the old lines.
  auto stale_read = serving.ReadView("WV");
  ASSERT_TRUE(stale_read.ok());
  EXPECT_TRUE(stale_read.value().served_stale);
  EXPECT_TRUE(stale_read.value().staleness.stale);
  EXPECT_EQ(stale_read.value().lines, caught_up_lines);

  // kRefuse: reads fail until the follower catches back up.
  EXPECT_EQ(refusing.ReadView("WV").status().code(),
            StatusCode::kUnavailable);

  serve_channel->set_down(false);
  refuse_channel->set_down(false);
  ASSERT_TRUE(serving.CatchUp().ok());
  ASSERT_TRUE(refusing.CatchUp().ok());
  EXPECT_FALSE(serving.staleness().stale);
  auto fresh = refusing.ReadView("WV");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value().served_stale);
  ASSERT_NO_FATAL_FAILURE(rig.ExpectConverged(refusing));
}

// ------------------------------------------------- follower crash recovery

TEST(ReplicaTest, FollowerRestartsFromItsOwnHome) {
  PrimaryRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Init("restart_primary", 19));
  std::string replica_dir = TempDir("restart_replica");

  uint64_t lsn_at_crash = 0;
  {
    ReplicaOptions options;
    options.dir = replica_dir;
    options.engine_factory = MakeEngineFactoryFromEnv();
    Replica replica(std::make_unique<FileLogTransport>(rig.primary_dir),
                    options);
    ASSERT_TRUE(replica.Start().ok());
    ASSERT_NO_FATAL_FAILURE(rig.Advance(30));
    ASSERT_TRUE(replica.CatchUp().ok());
    ASSERT_TRUE(replica.WriteLocalCheckpoint().ok());
    ASSERT_NO_FATAL_FAILURE(rig.Advance(20));
    ASSERT_TRUE(replica.CatchUp().ok());
    lsn_at_crash = replica.applied_lsn();
    EXPECT_EQ(replica.stats().checkpoints_written, 1);
  }  // follower dies

  ASSERT_NO_FATAL_FAILURE(rig.Advance(20));  // primary keeps going

  ReplicaOptions options;
  options.dir = replica_dir;
  options.engine_factory = MakeEngineFactoryFromEnv();
  Replica reborn(std::make_unique<FileLogTransport>(rig.primary_dir),
                 options);
  ASSERT_TRUE(reborn.Start().ok()) << "local recovery";
  // Local recovery, not a transport re-seed: checkpoint + mirrored tail.
  EXPECT_EQ(reborn.stats().reseeds, 0);
  EXPECT_EQ(reborn.applied_lsn(), lsn_at_crash);
  ASSERT_TRUE(reborn.CatchUp().ok());
  ASSERT_NO_FATAL_FAILURE(rig.ExpectConverged(reborn));
}

// ------------------------------------------------------------- self-heal

TEST(ReplicaTest, ChecksumDivergenceTriggersSelfHeal) {
  PrimaryRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Init("heal_primary", 23));
  ASSERT_NO_FATAL_FAILURE(rig.Advance(30));
  ASSERT_TRUE(rig.warehouse->WriteCheckpoint().ok());
  ASSERT_NO_FATAL_FAILURE(rig.Advance(20));

  Replica replica(std::make_unique<FileLogTransport>(rig.primary_dir),
                  DefaultReplicaOptions("heal_replica"));
  ASSERT_TRUE(replica.Start().ok());
  ASSERT_TRUE(replica.CatchUp().ok());
  const int64_t seeds_before = replica.stats().reseeds;

  // An honest stamp at the current watermark verifies quietly.
  ASSERT_TRUE(PublishChecksums(*rig.warehouse).ok());
  ASSERT_TRUE(replica.Poll().ok());
  EXPECT_EQ(replica.stats().checksum_checks, 1);
  EXPECT_EQ(replica.stats().self_heals, 0);

  // A stamp that disagrees at a matching watermark is proof of divergence:
  // the follower discards its state and re-seeds. (It must sit on a *new*
  // watermark — an already-verified LSN is skipped, by design.)
  ASSERT_NO_FATAL_FAILURE(rig.Advance(10));
  ASSERT_TRUE(replica.CatchUp().ok());
  ChecksumStamp bogus;
  bogus.lsn = rig.committed_lsn();
  bogus.views.push_back({"WV", /*crc=*/0xdeadbeef, /*members=*/1});
  std::ofstream(rig.primary_dir + "/" + ChecksumFileName())
      << EncodeChecksumStamp(bogus);
  ASSERT_TRUE(replica.Poll().ok());
  EXPECT_EQ(replica.stats().self_heals, 1);
  EXPECT_GT(replica.stats().reseeds, seeds_before);

  // With the real stamp restored the healed follower converges again.
  ASSERT_TRUE(PublishChecksums(*rig.warehouse).ok());
  ASSERT_TRUE(replica.CatchUp().ok());
  ASSERT_NO_FATAL_FAILURE(rig.ExpectConverged(replica));
  EXPECT_EQ(replica.stats().self_heals, 1);
}

TEST(ReplicaTest, PersistentMirrorCorruptionSelfHeals) {
  PrimaryRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Init("corrupt_primary", 29));
  ASSERT_NO_FATAL_FAILURE(rig.Advance(30));
  ASSERT_TRUE(rig.warehouse->WriteCheckpoint().ok());

  ReplicaOptions options = DefaultReplicaOptions("corrupt_replica");
  options.max_corrupt_rounds = 3;
  Replica replica(std::make_unique<FileLogTransport>(rig.primary_dir),
                  options);
  ASSERT_TRUE(replica.Start().ok());
  ASSERT_TRUE(replica.CatchUp().ok());

  // Flip a byte *in the primary's own segment* past the replica's applied
  // point: every refetch sees the same bad CRC — persistent corruption,
  // not a transport blip — so the bounded retry gives up and re-seeds.
  ASSERT_NO_FATAL_FAILURE(rig.Advance(20));
  ASSERT_TRUE(rig.warehouse->WriteCheckpoint().ok());  // heal target
  // The second checkpoint's roll leaves an empty newest segment; the
  // replica's unapplied bytes live in the last non-empty one.
  auto segments = ListWalSegments(rig.primary_dir);
  ASSERT_TRUE(segments.ok());
  std::string last;
  std::string bytes;
  for (auto it = segments.value().rbegin(); it != segments.value().rend();
       ++it) {
    last = rig.primary_dir + "/" + it->name;
    bytes = ReadFileBytes(last);
    if (!bytes.empty()) break;
  }
  ASSERT_GT(bytes.size(), 12u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  std::ofstream(last, std::ios::binary | std::ios::trunc) << bytes;

  for (int i = 0; i < 6 && replica.stats().self_heals == 0; ++i) {
    (void)replica.Poll();
  }
  EXPECT_EQ(replica.stats().self_heals, 1);
  EXPECT_GE(replica.stats().corrupt_rounds, options.max_corrupt_rounds);
  // The re-seed lands past the corruption (the checkpoint covers it), so
  // the follower converges without ever needing those bytes again.
  ASSERT_TRUE(replica.CatchUp().ok());
  ASSERT_NO_FATAL_FAILURE(rig.ExpectConverged(replica));
}

// -------------------------------------------------------------- failover

TEST(ReplicaTest, PromotionFencesOldPrimaryAndResumesWrites) {
  PrimaryRig rig;
  ASSERT_NO_FATAL_FAILURE(
      rig.Init("failover_primary", 31, /*epoch=*/1, "primary-a"));
  ASSERT_NO_FATAL_FAILURE(rig.Advance(30));

  Replica replica(std::make_unique<FileLogTransport>(rig.primary_dir),
                  DefaultReplicaOptions("failover_replica"));
  ASSERT_TRUE(replica.Start().ok());
  ASSERT_TRUE(replica.CatchUp().ok());
  EXPECT_EQ(replica.epoch(), 1u);

  auto promoted = replica.Promote("primary-b");
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(promoted.value(), 2u);
  EXPECT_TRUE(replica.promoted());
  EXPECT_FALSE(replica.Poll().ok());  // tailing is over

  // The old primary is cut off at its very next log write — no split
  // brain: it cannot certify another commit group.
  Status stale_append =
      rig.warehouse->wal()->Append(WalRecord::Commit({{"s", 999}}));
  EXPECT_TRUE(IsFencedStatus(stale_append)) << stale_append.ToString();

  // The follower's home now opens as the next primary's durability dir:
  // same sources, epoch = the granted fence — and accepts writes.
  ObjectStore store_b(DelegateStoreOptions());
  Warehouse primary_b(&store_b);
  ASSERT_TRUE(
      primary_b.ConnectSource(&rig.source, rig.root,
                              ReportingLevel::kWithValues)
          .ok());
  primary_b.set_deferred(true);
  Warehouse::DurabilityOptions options;
  options.dir = replica.dir();
  options.fsync = FsyncPolicy::kCommit;
  options.epoch = promoted.value();
  options.owner = "primary-b";
  ASSERT_TRUE(primary_b.EnableDurability(options).ok());
  EXPECT_EQ(StoreToString(store_b), StoreToString(rig.store));

  for (size_t i = 0; i < 20; ++i) ASSERT_TRUE(rig.gen->Step().ok());
  ASSERT_TRUE(primary_b.ProcessPending().ok());
  EXPECT_GT(primary_b.wal()->next_lsn(), replica.applied_lsn() + 1);

  // An old-epoch ghost segment is refused by any follower of the new
  // primary: its kEpoch header regresses below the epoch already seen.
  Replica follower_b(std::make_unique<FileLogTransport>(replica.dir()),
                     DefaultReplicaOptions("failover_follower_b"));
  ASSERT_TRUE(follower_b.Start().ok());
  ASSERT_TRUE(follower_b.CatchUp().ok());
  EXPECT_EQ(follower_b.epoch(), 2u);
  auto new_segments = ListWalSegments(replica.dir());
  ASSERT_TRUE(new_segments.ok());
  WalRecord ghost = WalRecord::Epoch(1, "primary-a");
  ghost.lsn = primary_b.wal()->next_lsn();
  {
    std::ofstream out(
        replica.dir() + "/" + new_segments.value().back().name,
        std::ios::binary | std::ios::app);
    out << RawFrame(ghost);
  }
  Status rejected = follower_b.Poll();
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition)
      << rejected.ToString();
  EXPECT_EQ(follower_b.stats().stale_epoch_rejections, 1);
}

// --------------------------------------- the kill-mid-ship twin property

// The tentpole property test: a sharded primary commits rounds of updates
// while a sharded follower tails it over a channel that fails, delays,
// tears, duplicates, and bit-flips — and the follower process is killed
// and restarted mid-ship. At every commit watermark the follower's merged
// view reads are byte-identical with the primary's.
struct ShipConfig {
  const char* tag;
  bool dag;
  uint32_t shards;
};

class ReplicationPropertyTest : public ::testing::TestWithParam<ShipConfig> {
};

TEST_P(ReplicationPropertyTest, KillMidShipFollowerStaysByteIdentical) {
  const ShipConfig config = GetParam();
  std::string primary_dir = TempDir(std::string("ship_p_") + config.tag);
  std::string replica_dir = TempDir(std::string("ship_r_") + config.tag);

  ObjectStore source;
  Oid root;
  std::string definition;
  UpdateGenOptions gen_options;
  if (config.dag) {
    DagGenOptions dag_options;
    dag_options.levels = 3;
    dag_options.width = 6;
    dag_options.seed = 5;
    auto dag = GenerateDag(&source, dag_options);
    ASSERT_TRUE(dag.ok()) << dag.status().ToString();
    root = dag->root;
    definition = DagViewDefinition("WV", root, 2, 3, 50);
    gen_options.mode = UpdateMode::kDagPreserving;
  } else {
    TreeGenOptions tree_options;
    tree_options.levels = 3;
    tree_options.fanout = 3;
    tree_options.seed = 5;
    auto tree = GenerateTree(&source, tree_options);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    root = tree->root;
    definition = TreeViewDefinition("WV", root, 2, 3, 50);
  }
  gen_options.seed = 77;

  ShardedWarehouse::Options primary_options;
  primary_options.engine_factory = MakeEngineFactoryFromEnv();
  ShardedWarehouse primary(config.shards, primary_options);
  ASSERT_TRUE(primary.init_status().ok());
  ASSERT_TRUE(
      primary.ConnectSource(&source, root, ReportingLevel::kWithValues)
          .ok());
  primary.set_deferred(true);
  ShardedWarehouse::DurabilityOptions durability;
  durability.dir = primary_dir;
  durability.fsync = FsyncPolicy::kCommit;
  durability.epoch = 1;
  durability.owner = "primary";
  ASSERT_TRUE(primary.EnableDurability(durability).ok());
  ASSERT_TRUE(primary.DefineView(definition).ok());
  UpdateGenerator gen(&source, root, gen_options);

  TransportFaultProfile profile;
  profile.fail_rate = 0.10;
  profile.fail_burst = 2;
  profile.stale_list_rate = 0.10;
  profile.torn_read_rate = 0.15;
  profile.duplicate_rate = 0.15;
  profile.flip_rate = 0.10;

  auto make_replica = [&](uint64_t seed) {
    std::vector<std::unique_ptr<LogTransport>> transports;
    for (uint32_t i = 0; i < config.shards; ++i) {
      TransportFaultProfile shard_profile = profile;
      shard_profile.seed = seed + i;
      transports.push_back(std::make_unique<FaultInjectedTransport>(
          std::make_unique<FileLogTransport>(primary_dir + "/shard-" +
                                             std::to_string(i)),
          shard_profile));
    }
    ReplicaOptions options;
    options.dir = replica_dir;
    options.engine_factory = MakeEngineFactoryFromEnv();
    // Small chunks force many reads through the fault gauntlet.
    options.read_chunk_bytes = 512;
    return std::make_unique<ShardedReplica>(std::move(transports), options);
  };

  // A seed over a faulty channel can fail transiently; Start is retryable.
  auto start_replica = [](ShardedReplica& fleet) {
    Status status = Status::Unavailable("not attempted");
    for (int attempt = 0; attempt < 20 && !status.ok(); ++attempt) {
      status = fleet.Start();
    }
    return status;
  };

  auto replica = make_replica(1);
  {
    Status started = start_replica(*replica);
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  const int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(gen.Step().ok());
    ASSERT_TRUE(primary.ProcessPendingBatch(2).ok());
    ASSERT_TRUE(PublishChecksums(primary).ok());
    // The commit watermark per shard, captured before the checkpoint roll
    // below parks an uncommitted kEpoch header at the tip of a fresh
    // segment (a follower applies only committed records).
    std::vector<uint64_t> commit_lsns;
    for (uint32_t i = 0; i < config.shards; ++i) {
      commit_lsns.push_back(primary.shard(i).wal()->next_lsn() - 1);
    }
    if (round == 2) {
      ASSERT_TRUE(primary.WriteCheckpoint().ok());
    }

    if (round % 2 == 1) {
      // Kill mid-ship: a few fault-ridden polls move partial state into
      // the mirror, then the follower process dies and a new one recovers
      // from whatever the old one had durably committed.
      for (int i = 0; i < 3; ++i) (void)replica->Poll();
      if (round == 3) {
        for (uint32_t i = 0; i < config.shards; ++i) {
          ASSERT_TRUE(replica->shard(i).WriteLocalCheckpoint().ok());
        }
      }
      replica.reset();
      replica = make_replica(100 * (round + 1));
      Status restarted = start_replica(*replica);
      ASSERT_TRUE(restarted.ok()) << "round " << round << ": "
                                  << restarted.ToString();
    }

    Status caught = replica->CatchUp(400);
    ASSERT_TRUE(caught.ok()) << "round " << round << ": "
                             << caught.ToString();

    // Byte-identical at the commit watermark, shard-merged.
    auto read = replica->ReadView("WV");
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_FALSE(read.value().served_stale);
    EXPECT_EQ(read.value().lines, primary.ViewContents("WV"))
        << "round " << round;
    for (uint32_t i = 0; i < config.shards; ++i) {
      EXPECT_EQ(replica->shard(i).applied_lsn(), commit_lsns[i])
          << "shard " << i << " round " << round;
      EXPECT_EQ(replica->shard(i).epoch(), 1u)
          << "shard " << i << " round " << round;
    }
  }

  // Finale: fenced failover of the whole fleet at one common epoch.
  auto promoted = replica->Promote("replica");
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(promoted.value(), 2u);
  for (uint32_t i = 0; i < config.shards; ++i) {
    Status fenced =
        primary.shard(i).wal()->Append(WalRecord::Commit({{"s", 1}}));
    EXPECT_TRUE(IsFencedStatus(fenced)) << "shard " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Bases, ReplicationPropertyTest,
    ::testing::Values(ShipConfig{"tree_k1", false, 1},
                      ShipConfig{"tree_k4", false, 4},
                      ShipConfig{"dag_k1", true, 1},
                      ShipConfig{"dag_k4", true, 4}),
    [](const ::testing::TestParamInfo<ShipConfig>& info) {
      return std::string(info.param.tag);
    });

}  // namespace
}  // namespace gsv
