#include <gtest/gtest.h>

#include <memory>

#include "core/aggregate_view.h"
#include "core/consistency.h"
#include "core/general_maintainer.h"
#include "core/materialized_view.h"
#include "core/partial_materialization.h"
#include "core/recompute.h"
#include "core/union_view.h"
#include "core/view_cluster.h"
#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "oem/store.h"
#include "query/evaluator.h"
#include "workload/dag_gen.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"
#include "workload/person_db.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

// ------------------------------------------------------ GeneralMaintainer

class GeneralMaintainerTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(BuildPersonDb(&store_).ok()); }

  void MakeView(const std::string& definition, const Oid& root) {
    auto def = ViewDefinition::Parse(definition);
    ASSERT_TRUE(def.ok()) << def.status().ToString();
    view_ = std::make_unique<MaterializedView>(&store_, *def);
    ASSERT_TRUE(view_->Initialize(store_).ok());
    maintainer_ =
        std::make_unique<GeneralMaintainer>(view_.get(), &store_, *def, root);
    store_.AddListener(maintainer_.get());
  }

  void ExpectConsistent() {
    ASSERT_TRUE(maintainer_->last_status().ok())
        << maintainer_->last_status().ToString();
    ConsistencyReport report = CheckViewConsistency(*view_, store_);
    EXPECT_TRUE(report.consistent) << report.ToString();
  }

  ObjectStore store_;
  std::unique_ptr<MaterializedView> view_;
  std::unique_ptr<GeneralMaintainer> maintainer_;
};

// Wildcard select path ("ROOT.*"): §6's first relaxation. An insertion of
// any descendant can change the view.
TEST_F(GeneralMaintainerTest, WildcardSelectPath) {
  MakeView("define view VJ as: SELECT ROOT.* X WHERE X.name = 'John'",
           Root());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), P3()}));

  // A new person named John, three levels deep.
  ASSERT_TRUE(store_.PutAtomic(Oid("N9"), "name", Value::Str("John")).ok());
  ASSERT_TRUE(store_.PutSet(Oid("P9"), "advisee", {Oid("N9")}).ok());
  ASSERT_TRUE(store_.Insert(P3(), Oid("P9")).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), P3(), Oid("P9")}));

  // Rename: P9 leaves, others stay.
  ASSERT_TRUE(store_.Modify(Oid("N9"), Value::Str("Jane")).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), P3()}));
  ExpectConsistent();
}

TEST_F(GeneralMaintainerTest, WildcardDeleteDisconnectsSubtree) {
  MakeView("define view VJ as: SELECT ROOT.* X WHERE X.name = 'John'",
           Root());
  // Unlink P1 from ROOT: P1 is gone, but P3 stays (direct child of ROOT).
  ASSERT_TRUE(store_.Delete(Root(), P1()).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P3()}));
  ExpectConsistent();
}

TEST_F(GeneralMaintainerTest, MultiPredicateConditions) {
  MakeView(
      "define view V as: SELECT ROOT.professor X WHERE "
      "X.age <= 45 AND X.name = 'John'",
      Root());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));

  // Give P2 an age: still fails the name conjunct.
  ASSERT_TRUE(store_.PutAtomic(Oid("A2"), "age", Value::Int(30)).ok());
  ASSERT_TRUE(store_.Insert(P2(), Oid("A2")).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));

  // Rename Sally to John: now both conjuncts hold.
  ASSERT_TRUE(store_.Modify(N2(), Value::Str("John")).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), P2()}));

  // Break the age conjunct.
  ASSERT_TRUE(store_.Modify(Oid("A2"), Value::Int(80)).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));
  ExpectConsistent();
}

TEST_F(GeneralMaintainerTest, OrConditions) {
  MakeView(
      "define view V as: SELECT ROOT.professor X WHERE "
      "X.name = 'Sally' OR X.age > 44",
      Root());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), P2()}));
  // Drop A1 below the bound: P1 leaves (no Sally name either).
  ASSERT_TRUE(store_.Modify(A1(), Value::Int(30)).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P2()}));
  ExpectConsistent();
}

TEST_F(GeneralMaintainerTest, WithinScopedView) {
  // D1 = everything except A1. The view ignores A1 entirely.
  OidSet members;
  store_.ForEach([&](const Object& object) {
    if (object.oid() != A1() && object.oid() != Person()) {
      members.Insert(object.oid());
    }
  });
  ASSERT_TRUE(store_.PutSet(Oid("D1obj"), "database").ok());
  ASSERT_TRUE(store_.SetValueRaw(Oid("D1obj"), Value::Set(members)).ok());
  ASSERT_TRUE(store_.RegisterDatabase("D1", Oid("D1obj")).ok());

  MakeView(
      "define view V as: SELECT ROOT.professor X WHERE X.age > 10 WITHIN D1",
      Root());
  EXPECT_EQ(view_->BaseMembers(), OidSet()) << "A1 is invisible";

  // An in-database age makes P2 qualify... but fresh objects are not in D1,
  // so the view must NOT change until D1 includes them.
  ASSERT_TRUE(store_.PutAtomic(Oid("A2"), "age", Value::Int(30)).ok());
  ASSERT_TRUE(store_.Insert(P2(), Oid("A2")).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet());
  ExpectConsistent();
}

// DAG base (§6's second relaxation): multiple derivations per object.
TEST_F(GeneralMaintainerTest, DagBaseMultipleDerivations) {
  ObjectStore store;
  DagGenOptions options;
  options.levels = 3;
  options.width = 6;
  options.min_parents = 1;
  options.max_parents = 3;
  options.seed = 7;
  auto dag = GenerateDag(&store, options);
  ASSERT_TRUE(dag.ok());

  auto def = ViewDefinition::Parse(
      DagViewDefinition("DV", dag->root, /*sel_levels=*/2, /*levels=*/3, 50));
  ASSERT_TRUE(def.ok());
  MaterializedView view(&store, *def);
  ASSERT_TRUE(view.Initialize(store).ok());
  GeneralMaintainer maintainer(&view, &store, *def, dag->root);
  store.AddListener(&maintainer);

  // Churn: delete and re-insert edges between layer 0 and layer 1, and
  // flip leaf values; the view must track the recomputed truth throughout.
  const auto& layer0 = dag->layers[0];
  const auto& layer1 = dag->layers[1];
  const auto& leaves = dag->layers[2];
  for (int round = 0; round < 10; ++round) {
    const Oid& parent = layer0[round % layer0.size()];
    const Oid& child = layer1[(round * 2) % layer1.size()];
    const Object* parent_obj = store.Get(parent);
    ASSERT_NE(parent_obj, nullptr);
    if (parent_obj->children().Contains(child)) {
      ASSERT_TRUE(store.Delete(parent, child).ok());
    } else {
      ASSERT_TRUE(store.Insert(parent, child).ok());
    }
    const Oid& leaf = leaves[(round * 3) % leaves.size()];
    ASSERT_TRUE(store.Modify(leaf, Value::Int(round * 11 % 100)).ok());

    ASSERT_TRUE(maintainer.last_status().ok());
    auto expected = EvaluateView(store, *def);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(view.BaseMembers(), *expected) << "round " << round;
  }
  EXPECT_GT(maintainer.stats().candidates_checked, 0);
}

// --------------------------------------------------------------- Cluster

TEST(ViewClusterTest, SharedDelegatesAreRefCounted) {
  ObjectStore base;
  ASSERT_TRUE(BuildPersonDb(&base).ok());
  ObjectStore warehouse;
  ViewCluster cluster(&warehouse, "CL");
  ASSERT_TRUE(cluster.Bootstrap().ok());

  // Two views sharing P1: all Johns, and all professors.
  auto johns = ViewDefinition::Parse(
      "define mview VJOHN as: SELECT ROOT.* X WHERE X.name = 'John'");
  auto profs =
      ViewDefinition::Parse("define mview VPROF as: SELECT ROOT.professor X");
  ASSERT_TRUE(johns.ok());
  ASSERT_TRUE(profs.ok());
  auto johns_storage = cluster.AddView(*johns);
  auto profs_storage = cluster.AddView(*profs);
  ASSERT_TRUE(johns_storage.ok());
  ASSERT_TRUE(profs_storage.ok());
  ASSERT_TRUE(cluster.InitializeAll(base).ok());

  // Members: VJOHN = {P1, P3}, VPROF = {P1, P2}; delegates: P1,P2,P3 only.
  EXPECT_EQ((*johns_storage)->BaseMembers(), OidSet({P1(), P3()}));
  EXPECT_EQ((*profs_storage)->BaseMembers(), OidSet({P1(), P2()}));
  EXPECT_EQ(cluster.delegate_count(), 3u)
      << "P1 shared: 3 delegates for 4 memberships (§3.2 view cluster)";
  EXPECT_EQ(cluster.RefCount(P1()), 2);
  EXPECT_EQ(cluster.RefCount(P3()), 1);
  EXPECT_TRUE(warehouse.Contains(Oid("CL.P1")));

  // Each view is queryable and lists shared delegates.
  auto result = EvaluateQueryText(warehouse, "SELECT VJOHN.? X");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, OidSet({Oid("CL.P1"), Oid("CL.P3")}));

  // Dropping P1 from one view keeps the shared delegate alive.
  ASSERT_TRUE((*johns_storage)->VDelete(P1()).ok());
  EXPECT_EQ(cluster.RefCount(P1()), 1);
  EXPECT_TRUE(warehouse.Contains(Oid("CL.P1")));
  // Dropping it from the second view frees it.
  ASSERT_TRUE((*profs_storage)->VDelete(P1()).ok());
  EXPECT_EQ(cluster.RefCount(P1()), 0);
  EXPECT_FALSE(warehouse.Contains(Oid("CL.P1")));
  EXPECT_EQ(cluster.delegate_count(), 2u);
}

TEST(ViewClusterTest, SyncIsIdempotentAcrossMembers) {
  ObjectStore base;
  ASSERT_TRUE(BuildPersonDb(&base).ok());
  ObjectStore warehouse;
  ViewCluster cluster(&warehouse, "CL");
  ASSERT_TRUE(cluster.Bootstrap().ok());
  auto a = cluster.AddView(*ViewDefinition::Parse(
      "define mview VA as: SELECT ROOT.professor X"));
  auto b = cluster.AddView(*ViewDefinition::Parse(
      "define mview VB as: SELECT ROOT.professor X WHERE X.age <= 45"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(cluster.InitializeAll(base).ok());

  ASSERT_TRUE(base.Insert(P1(), N4()).ok());
  Update update = Update::Insert(P1(), N4());
  ASSERT_TRUE((*a)->SyncUpdate(update).ok());
  ASSERT_TRUE((*b)->SyncUpdate(update).ok());  // second apply: no-op
  EXPECT_TRUE(warehouse.Get(Oid("CL.P1"))->children().Contains(N4()));
  EXPECT_EQ(warehouse.Get(Oid("CL.P1"))->children().size(), 5u);
}

TEST(ViewClusterTest, BootstrapValidation) {
  ObjectStore warehouse;
  ViewCluster bad(&warehouse, "A.B");
  EXPECT_FALSE(bad.Bootstrap().ok());

  ViewCluster cluster(&warehouse, "CL");
  auto def =
      ViewDefinition::Parse("define mview V as: SELECT ROOT.professor X");
  EXPECT_FALSE(cluster.AddView(*def).ok()) << "AddView before Bootstrap";
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_FALSE(cluster.Bootstrap().ok());
}

// ------------------------------------------------ AggregateView (§6)

class AggregateViewTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(BuildPersonDb(&base_).ok()); }

  std::unique_ptr<AggregateView> Make(AggregateView::Kind kind,
                                      const char* agg_path,
                                      const std::string& name = "AG") {
    auto def = ViewDefinition::Parse("define mview " + name +
                                     " as: SELECT ROOT.professor X");
    EXPECT_TRUE(def.ok());
    auto view = std::make_unique<AggregateView>(
        &base_, &warehouse_, name, *def, Root(), *Path::Parse(agg_path),
        kind);
    EXPECT_TRUE(view->Initialize().ok());
    base_.AddListener(view->listener());
    return view;
  }

  ObjectStore base_;
  ObjectStore warehouse_;
};

TEST_F(AggregateViewTest, CountStudentsPerProfessor) {
  auto view = Make(AggregateView::Kind::kCount, "student");
  EXPECT_EQ(view->Members(), OidSet({P1(), P2()}));
  EXPECT_EQ(view->AggregateOf(P1())->AsInt(), 1);
  EXPECT_EQ(view->AggregateOf(P2())->AsInt(), 0);
  // The delegate is a real queryable object.
  const Object* delegate = warehouse_.Get(Oid("AG.P1"));
  ASSERT_NE(delegate, nullptr);
  EXPECT_EQ(delegate->label(), "count");

  // P2 gains a student: its count updates.
  ASSERT_TRUE(base_.PutSet(Oid("P9"), "student").ok());
  ASSERT_TRUE(base_.Insert(P2(), Oid("P9")).ok());
  EXPECT_EQ(view->AggregateOf(P2())->AsInt(), 1);

  // P1 loses its student.
  ASSERT_TRUE(base_.Delete(P1(), P3()).ok());
  EXPECT_EQ(view->AggregateOf(P1())->AsInt(), 0);
  EXPECT_TRUE(view->last_status().ok());
}

TEST_F(AggregateViewTest, SumAndExtremaOfSalaries) {
  auto sum = Make(AggregateView::Kind::kSum, "salary");
  EXPECT_EQ(sum->AggregateOf(P1())->AsInt(), 100000);
  EXPECT_EQ(sum->AggregateOf(P2())->AsInt(), 0);

  // A raise propagates into the aggregate (deep value change).
  ASSERT_TRUE(base_.Modify(S1(), Value::Int(120000)).ok());
  EXPECT_EQ(sum->AggregateOf(P1())->AsInt(), 120000);

  // Second salary for P1: sum adds up; min/max views see both.
  ASSERT_TRUE(base_.PutAtomic(Oid("S1b"), "salary", Value::Int(5000)).ok());
  ASSERT_TRUE(base_.Insert(P1(), Oid("S1b")).ok());
  EXPECT_EQ(sum->AggregateOf(P1())->AsInt(), 125000);
  EXPECT_TRUE(sum->last_status().ok());
}

TEST_F(AggregateViewTest, MinMax) {
  ASSERT_TRUE(base_.PutAtomic(Oid("S2"), "salary", Value::Int(70000)).ok());
  ASSERT_TRUE(base_.Insert(P2(), Oid("S2")).ok());
  auto min = Make(AggregateView::Kind::kMin, "salary", "AGMIN");
  auto max = Make(AggregateView::Kind::kMax, "salary", "AGMAX");
  EXPECT_EQ(min->AggregateOf(P1())->AsInt(), 100000);
  EXPECT_EQ(max->AggregateOf(P2())->AsInt(), 70000);
  ASSERT_TRUE(base_.PutAtomic(Oid("S1b"), "salary", Value::Int(1000)).ok());
  ASSERT_TRUE(base_.Insert(P1(), Oid("S1b")).ok());
  EXPECT_EQ(min->AggregateOf(P1())->AsInt(), 1000);
  EXPECT_EQ(max->AggregateOf(P1())->AsInt(), 100000);
}

TEST_F(AggregateViewTest, MembershipChangesCreateAndDropDelegates) {
  auto view = Make(AggregateView::Kind::kCount, "student");
  // New professor joins with a student already attached.
  ASSERT_TRUE(base_.PutSet(Oid("ST"), "student").ok());
  ASSERT_TRUE(base_.PutSet(Oid("P9"), "professor", {Oid("ST")}).ok());
  ASSERT_TRUE(base_.Insert(Root(), Oid("P9")).ok());
  EXPECT_TRUE(view->Members().Contains(Oid("P9")));
  EXPECT_EQ(view->AggregateOf(Oid("P9"))->AsInt(), 1)
      << "fresh members compute their aggregate on insertion";

  ASSERT_TRUE(base_.Delete(Root(), Oid("P9")).ok());
  EXPECT_FALSE(view->Members().Contains(Oid("P9")));
  EXPECT_FALSE(warehouse_.Contains(Oid("AG.P9")));
  EXPECT_FALSE(view->AggregateOf(Oid("P9")).ok());
  EXPECT_TRUE(view->last_status().ok());
}

// ------------------------------------------------- UnionView (§6)

class UnionViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(BuildPersonDb(&base_).ok());
    accessor_ = std::make_unique<LocalAccessor>(&base_);
    union_view_ =
        std::make_unique<UnionView>(&warehouse_, "UV", accessor_.get());
    ASSERT_TRUE(union_view_->Bootstrap().ok());
  }

  Status AddBranch(const std::string& definition) {
    auto def = ViewDefinition::Parse(definition);
    if (!def.ok()) return def.status();
    return union_view_->AddBranch(*def, base_, Root());
  }

  ObjectStore base_;
  ObjectStore warehouse_;
  std::unique_ptr<LocalAccessor> accessor_;
  std::unique_ptr<UnionView> union_view_;
};

TEST_F(UnionViewTest, MultipleSelectPaths) {
  // §6: "handling views with more than one select path ... is
  // straightforward" — young professors ∪ secretaries of any age.
  ASSERT_TRUE(AddBranch("define mview UVa as: SELECT ROOT.professor X "
                        "WHERE X.age <= 45")
                  .ok());
  ASSERT_TRUE(AddBranch("define mview UVb as: SELECT ROOT.secretary X").ok());
  base_.AddListener(union_view_->listener());

  EXPECT_EQ(union_view_->Members(), OidSet({P1(), P4()}));
  EXPECT_TRUE(warehouse_.Contains(Oid("UV.P1")));
  EXPECT_TRUE(warehouse_.Contains(Oid("UV.P4")));

  // The union view is queryable as a database.
  auto result = EvaluateQueryText(warehouse_, "SELECT UV.? X");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);

  // Branch-local change: P1 ages out of the professor branch.
  ASSERT_TRUE(base_.Modify(A1(), Value::Int(70)).ok());
  EXPECT_EQ(union_view_->Members(), OidSet({P4()}));
  EXPECT_FALSE(warehouse_.Contains(Oid("UV.P1")));
  EXPECT_TRUE(union_view_->last_status().ok());
}

TEST_F(UnionViewTest, SharedMembersAreRefCounted) {
  // Two branches that both select professors (one with, one without a
  // condition): P1 has refcount 2 until the condition branch drops it.
  ASSERT_TRUE(AddBranch("define mview UVa as: SELECT ROOT.professor X "
                        "WHERE X.age <= 45")
                  .ok());
  ASSERT_TRUE(AddBranch("define mview UVb as: SELECT ROOT.professor X").ok());
  base_.AddListener(union_view_->listener());

  EXPECT_EQ(union_view_->RefCount(P1()), 2);
  EXPECT_EQ(union_view_->RefCount(P2()), 1);
  EXPECT_EQ(union_view_->Members(), OidSet({P1(), P2()}));

  ASSERT_TRUE(base_.Modify(A1(), Value::Int(70)).ok());
  EXPECT_EQ(union_view_->RefCount(P1()), 1) << "still a professor";
  EXPECT_TRUE(warehouse_.Contains(Oid("UV.P1")));

  ASSERT_TRUE(base_.Delete(Root(), P1()).ok());
  EXPECT_EQ(union_view_->RefCount(P1()), 0);
  EXPECT_FALSE(warehouse_.Contains(Oid("UV.P1")));
  EXPECT_TRUE(union_view_->last_status().ok());
}

TEST_F(UnionViewTest, Validation) {
  EXPECT_FALSE(AddBranch("define mview B as: SELECT ROOT.* X").ok())
      << "branches must be simple views";
  UnionView bad(&warehouse_, "A.B", accessor_.get());
  EXPECT_FALSE(bad.Bootstrap().ok());
  UnionView unboot(&warehouse_, "OK", accessor_.get());
  auto def =
      ViewDefinition::Parse("define mview B as: SELECT ROOT.professor X");
  EXPECT_FALSE(unboot.AddBranch(*def, base_, Root()).ok())
      << "AddBranch before Bootstrap";
}

// ------------------------------------------- Partial materialization (§6)

TEST(PartialMaterializationTest, ExpandsLevelsAndKeepsFrontierPointers) {
  ObjectStore base;
  ASSERT_TRUE(BuildPersonDb(&base).ok());
  ObjectStore warehouse;
  auto def = ViewDefinition::Parse(
      "define mview PM as: SELECT ROOT.professor X WHERE X.name = 'John'");
  ASSERT_TRUE(def.ok());
  MaterializedView view(&warehouse, *def);
  ASSERT_TRUE(view.Initialize(base).ok());
  EXPECT_EQ(view.BaseMembers(), OidSet({P1()}));

  PartialMaterialization partial(&view, /*depth=*/1);
  ASSERT_TRUE(partial.Expand(base).ok());
  // Level 1 below P1: N1, A1, S1, P3 materialized; P3's own children are
  // NOT (they stay pointers back to base).
  EXPECT_EQ(partial.expanded_count(), 4u);
  EXPECT_TRUE(warehouse.Contains(Oid("PM.N1")));
  EXPECT_TRUE(warehouse.Contains(Oid("PM.P3")));
  EXPECT_FALSE(warehouse.Contains(Oid("PM.N3")));

  // Member edges are swizzled toward materialized children...
  EXPECT_TRUE(warehouse.Get(Oid("PM.P1"))->children().Contains(Oid("PM.N1")));
  // ...while the frontier keeps base OIDs ("pointers back to base data").
  EXPECT_TRUE(warehouse.Get(Oid("PM.P3"))->children().Contains(N3()));

  // A local query can now traverse one level without base access.
  auto ages = EvaluateQueryText(warehouse, "SELECT PM.professor.age");
  ASSERT_TRUE(ages.ok());
  EXPECT_EQ(*ages, OidSet({Oid("PM.A1")}));
}

// Property: after Expand/Refresh, exactly the BFS-truth set of base
// objects within `depth` of a member is materialized, edges between local
// objects are swizzled, and frontier edges keep base OIDs.
TEST(PartialMaterializationTest, ExpansionMatchesBfsTruth) {
  for (uint64_t seed : {3u, 4u, 5u}) {
    ObjectStore base;
    TreeGenOptions options;
    options.levels = 3;
    options.fanout = 3;
    options.seed = seed;
    auto tree = GenerateTree(&base, options);
    ASSERT_TRUE(tree.ok());

    ObjectStore warehouse;
    auto def = ViewDefinition::Parse("define mview PM as: SELECT " +
                                     tree->root.str() + ".n1_0 X");
    MaterializedView view(&warehouse, *def);
    ASSERT_TRUE(view.Initialize(base).ok());
    const size_t depth = 1 + seed % 2;
    PartialMaterialization partial(&view, depth);
    ASSERT_TRUE(partial.Expand(base).ok());

    // Churn the base, then refresh and verify the invariant.
    UpdateGenOptions gen_options;
    gen_options.seed = seed + 100;
    UpdateGenerator generator(&base, tree->root, gen_options);
    ASSERT_TRUE(generator.Run(60).ok());
    // Recompute-style: the member set itself is refreshed by a fresh
    // evaluation before re-expanding.
    RecomputeMaintainer recompute(&view, &base);
    ASSERT_TRUE(recompute.Recompute().ok());
    ASSERT_TRUE(partial.Refresh(base).ok());

    // BFS truth of what should be local.
    OidSet local_truth = view.BaseMembers();
    std::vector<std::pair<Oid, size_t>> frontier;
    const OidSet members = view.BaseMembers();
    for (const Oid& member : members) frontier.emplace_back(member, 0);
    for (size_t i = 0; i < frontier.size(); ++i) {
      auto [oid, level] = frontier[i];
      if (level >= depth) continue;
      const Object* object = base.Get(oid);
      if (object == nullptr || !object->IsSet()) continue;
      for (const Oid& child : object->children()) {
        if (base.Contains(child) && local_truth.Insert(child)) {
          frontier.emplace_back(child, level + 1);
        }
      }
    }
    for (const Oid& oid : local_truth) {
      ASSERT_TRUE(warehouse.Contains(view.DelegateOid(oid)))
          << oid.str() << " seed " << seed;
    }
    // Edge discipline: local targets swizzled, frontier targets base.
    for (const Oid& oid : local_truth) {
      const Object* delegate = warehouse.Get(view.DelegateOid(oid));
      if (!delegate->IsSet()) continue;
      for (const Oid& child : delegate->children()) {
        if (child.IsDelegateOf(view.view_oid())) {
          ASSERT_TRUE(local_truth.Contains(child.BaseIn(view.view_oid())));
        } else {
          ASSERT_FALSE(local_truth.Contains(child))
              << "edge to local object " << child.str() << " not swizzled";
        }
      }
    }
  }
}

TEST(PartialMaterializationTest, DepthTwoAndRefresh) {
  ObjectStore base;
  ASSERT_TRUE(BuildPersonDb(&base).ok());
  ObjectStore warehouse;
  auto def = ViewDefinition::Parse(
      "define mview PM as: SELECT ROOT.professor X WHERE X.name = 'John'");
  MaterializedView view(&warehouse, *def);
  ASSERT_TRUE(view.Initialize(base).ok());
  PartialMaterialization partial(&view, /*depth=*/2);
  ASSERT_TRUE(partial.Expand(base).ok());
  EXPECT_EQ(partial.expanded_count(), 7u);  // +N3, A3, M3
  EXPECT_TRUE(warehouse.Contains(Oid("PM.N3")));

  // Base changes; Refresh re-derives the expansion.
  ASSERT_TRUE(base.PutAtomic(Oid("H1"), "hobby", Value::Str("go")).ok());
  ASSERT_TRUE(base.Insert(P1(), Oid("H1")).ok());
  ASSERT_TRUE(view.SyncUpdate(Update::Insert(P1(), Oid("H1"))).ok());
  ASSERT_TRUE(partial.Refresh(base).ok());
  EXPECT_TRUE(warehouse.Contains(Oid("PM.H1")));
  EXPECT_EQ(partial.expanded_count(), 8u);
  EXPECT_TRUE(
      warehouse.Get(Oid("PM.P1"))->children().Contains(Oid("PM.H1")));
}

}  // namespace
}  // namespace gsv
