#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/consistency.h"
#include "core/virtual_view.h"
#include "query/evaluator.h"
#include "oem/store.h"
#include "warehouse/aux_cache.h"
#include "warehouse/fault_injector.h"
#include "warehouse/monitor.h"
#include "warehouse/path_knowledge.h"
#include "warehouse/update_event.h"
#include "warehouse/sharded_warehouse.h"
#include "warehouse/sharding.h"
#include "warehouse/source_wrapper_gsdb.h"
#include "warehouse/warehouse.h"
#include "warehouse/wrapper.h"
#include "workload/person_db.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

// ---------------------------------------------------------------- Monitor

class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(BuildPersonDb(&source_, /*with_database=*/false).ok());
  }

  std::vector<UpdateEvent> Capture(ReportingLevel level,
                                   const std::function<void()>& mutate) {
    std::vector<UpdateEvent> events;
    SourceMonitor monitor(level, Root(),
                          [&](const UpdateEvent& e) { events.push_back(e); });
    source_.AddListener(&monitor);
    mutate();
    source_.RemoveListener(&monitor);
    return events;
  }

  ObjectStore source_;
};

TEST_F(MonitorTest, Level1CarriesOidsOnly) {
  auto events = Capture(ReportingLevel::kOidsOnly, [&] {
    ASSERT_TRUE(source_.Modify(A1(), Value::Int(50)).ok());
  });
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, UpdateKind::kModify);
  EXPECT_EQ(events[0].parent, A1());
  EXPECT_FALSE(events[0].parent_object.has_value());
  EXPECT_FALSE(events[0].new_value.has_value());
  EXPECT_FALSE(events[0].root_path.has_value());
}

TEST_F(MonitorTest, Level2CarriesSnapshotsAndValues) {
  ASSERT_TRUE(source_.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  auto events = Capture(ReportingLevel::kWithValues, [&] {
    ASSERT_TRUE(source_.Insert(P2(), Oid("A2")).ok());
    ASSERT_TRUE(source_.Modify(Oid("A2"), Value::Int(41)).ok());
  });
  ASSERT_EQ(events.size(), 2u);
  ASSERT_TRUE(events[0].child_object.has_value());
  EXPECT_EQ(events[0].child_object->label(), "age");
  ASSERT_TRUE(events[0].parent_object.has_value());
  EXPECT_TRUE(events[0].parent_object->children().Contains(Oid("A2")))
      << "snapshot taken after the update";
  ASSERT_TRUE(events[1].old_value.has_value());
  EXPECT_EQ(events[1].old_value->AsInt(), 40);
  EXPECT_EQ(events[1].new_value->AsInt(), 41);
}

TEST_F(MonitorTest, Level3CarriesRootPath) {
  auto events = Capture(ReportingLevel::kWithRootPath, [&] {
    ASSERT_TRUE(source_.Modify(A1(), Value::Int(50)).ok());
  });
  ASSERT_EQ(events.size(), 1u);
  ASSERT_TRUE(events[0].root_path.has_value());
  EXPECT_EQ(events[0].root_path->labels.ToString(), "professor.age");
  ASSERT_EQ(events[0].root_path->oids.size(), 3u);
  EXPECT_EQ(events[0].root_path->oids[0], Root());
  EXPECT_EQ(events[0].root_path->oids[1], P1());
  EXPECT_EQ(events[0].root_path->oids[2], A1());
}

TEST_F(MonitorTest, Level3PathAbsentForUnreachableObject) {
  ASSERT_TRUE(source_.PutSet(Oid("ORPHAN"), "loose").ok());
  ASSERT_TRUE(source_.PutAtomic(Oid("L1"), "x", Value::Int(1)).ok());
  auto events = Capture(ReportingLevel::kWithRootPath, [&] {
    ASSERT_TRUE(source_.Insert(Oid("ORPHAN"), Oid("L1")).ok());
  });
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].root_path.has_value());
}

TEST_F(MonitorTest, LevelCanBeSwitchedLive) {
  std::vector<UpdateEvent> events;
  SourceMonitor monitor(ReportingLevel::kOidsOnly, Root(),
                        [&](const UpdateEvent& e) { events.push_back(e); });
  source_.AddListener(&monitor);
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(46)).ok());
  monitor.set_level(ReportingLevel::kWithValues);
  EXPECT_EQ(monitor.level(), ReportingLevel::kWithValues);
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(47)).ok());
  source_.RemoveListener(&monitor);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].new_value.has_value());
  ASSERT_TRUE(events[1].new_value.has_value());
  EXPECT_EQ(events[1].new_value->AsInt(), 47);
}

TEST_F(MonitorTest, EventAndCostFormatting) {
  auto events = Capture(ReportingLevel::kWithRootPath, [&] {
    ASSERT_TRUE(source_.Modify(A1(), Value::Int(50)).ok());
    ASSERT_TRUE(source_.Delete(Root(), P4()).ok());
  });
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ToString(),
            "modify(A1) [with-root-path] path=professor.age");
  // N1 is ROOT itself: its root path is the empty path, still reported.
  EXPECT_EQ(events[1].ToString(), "delete(ROOT, P4) [with-root-path] path=");

  WarehouseCosts costs;
  costs.events_received = 3;
  costs.source_queries = 2;
  std::string text = costs.ToString();
  EXPECT_NE(text.find("events=3"), std::string::npos);
  EXPECT_NE(text.find("queries=2"), std::string::npos);
}

// ---------------------------------------------------------------- Wrapper

TEST(WrapperTest, MetersEveryInteraction) {
  ObjectStore source;
  ASSERT_TRUE(BuildPersonDb(&source, /*with_database=*/false).ok());
  WarehouseCosts costs;
  SourceWrapper wrapper(&source, &costs);

  auto object = wrapper.FetchObject(A1());
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(object->value().AsInt(), 45);
  EXPECT_EQ(costs.source_queries, 1);
  EXPECT_EQ(costs.objects_shipped, 1);
  EXPECT_EQ(costs.values_shipped, 1);

  EXPECT_FALSE(wrapper.FetchObject(Oid("missing")).ok());
  EXPECT_EQ(costs.source_queries, 2);

  auto ancestors = wrapper.FetchAncestors(A1(), *Path::Parse("age"));
  ASSERT_TRUE(ancestors.ok());
  EXPECT_EQ(*ancestors, std::vector<Oid>{P1()});
  EXPECT_EQ(costs.source_queries, 3);

  auto objects = wrapper.FetchPathObjects(Root(), *Path::Parse("professor"));
  ASSERT_TRUE(objects.ok());
  EXPECT_EQ(objects->size(), 2u);
  EXPECT_EQ(costs.objects_shipped, 1 + 1 + 2);

  auto paths = wrapper.FetchPathsFromRoot(Root(), A1());
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 1u);
  auto verified = wrapper.VerifyPath(Root(), P1(), *Path::Parse("professor"));
  ASSERT_TRUE(verified.ok());
  EXPECT_TRUE(*verified);
  EXPECT_EQ(costs.source_queries, 6);
}

// ----------------------------------------------------------- PathKnowledge

TEST(PathKnowledgeTest, OpenAndClosedWorlds) {
  PathKnowledge knowledge;
  EXPECT_TRUE(knowledge.MayHaveChild("student", "salary")) << "open world";
  knowledge.SetChildLabels("student", {"name", "age", "major"});
  EXPECT_TRUE(knowledge.HasKnowledgeFor("student"));
  EXPECT_FALSE(knowledge.MayHaveChild("student", "salary"));
  EXPECT_TRUE(knowledge.MayHaveChild("student", "age"));
}

TEST(PathKnowledgeTest, FeasiblePrefix) {
  PathKnowledge knowledge;
  knowledge.SetChildLabels("person", {"professor", "student"});
  knowledge.SetChildLabels("student", {"name", "age", "major"});
  EXPECT_EQ(knowledge.FeasiblePrefix("person", *Path::Parse("student.age")),
            2u);
  EXPECT_EQ(
      knowledge.FeasiblePrefix("person", *Path::Parse("student.salary")), 1u);
  EXPECT_EQ(knowledge.FeasiblePrefix("person", *Path::Parse("secretary")),
            0u);
  // Unknown labels stay open.
  EXPECT_EQ(
      knowledge.FeasiblePrefix("person", *Path::Parse("professor.salary")),
      2u);
}

// ----------------------------------------------------------- AuxiliaryCache

class AuxCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(BuildPersonDb(&source_, /*with_database=*/false).ok());
    wrapper_ = std::make_unique<SourceWrapper>(&source_, &costs_);
  }

  UpdateEvent MakeEvent(const Update& update, ReportingLevel level) {
    UpdateEvent event;
    SourceMonitor monitor(level, Root(),
                          [&](const UpdateEvent& e) { event = e; });
    // Build the event the way a monitor would, from the post-update state.
    monitor.OnUpdate(source_, update);
    return event;
  }

  ObjectStore source_;
  WarehouseCosts costs_;
  std::unique_ptr<SourceWrapper> wrapper_;
};

TEST_F(AuxCacheTest, InitializeLoadsCorridor) {
  // Corridor for YP: professor.age.
  AuxiliaryCache cache(AuxiliaryCache::Mode::kFull, Root(),
                       *Path::Parse("professor.age"));
  ASSERT_TRUE(cache.Initialize(wrapper_.get()).ok());
  // ROOT, P1, P2, A1 are on the corridor; P3/P4/names are not.
  EXPECT_TRUE(cache.OnCorridor(Root()));
  EXPECT_TRUE(cache.OnCorridor(P1()));
  EXPECT_TRUE(cache.OnCorridor(P2()));
  EXPECT_TRUE(cache.OnCorridor(A1()));
  EXPECT_FALSE(cache.OnCorridor(P3()));
  EXPECT_FALSE(cache.OnCorridor(N1()));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_GT(costs_.cache_maintenance_queries, 0);

  // Corridor answers.
  auto paths = cache.CorridorPathsFromRoot(P1());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].ToString(), "professor");
  EXPECT_TRUE(cache.VerifyPath(P1(), *Path::Parse("professor")));
  EXPECT_FALSE(cache.VerifyPath(P1(), *Path::Parse("professor.age")));
  EXPECT_EQ(cache.Ancestors(A1(), *Path::Parse("age")),
            std::vector<Oid>{P1()});

  // Full mode: values cached.
  auto objects = cache.EvalObjects(P1(), *Path::Parse("age"));
  ASSERT_TRUE(objects.has_value());
  ASSERT_EQ(objects->size(), 1u);
  EXPECT_EQ((*objects)[0].value().AsInt(), 45);
  ASSERT_TRUE(cache.Fetch(P1()).ok());
  ASSERT_TRUE(cache.Fetch(A1()).ok());
}

TEST_F(AuxCacheTest, LabelsOnlyModeWithholdsValues) {
  AuxiliaryCache cache(AuxiliaryCache::Mode::kLabelsOnly, Root(),
                       *Path::Parse("professor.age"));
  ASSERT_TRUE(cache.Initialize(wrapper_.get()).ok());
  EXPECT_TRUE(cache.OnCorridor(A1()));
  EXPECT_FALSE(cache.EvalObjects(P1(), *Path::Parse("age")).has_value())
      << "atomic value not cached: caller must query the source";
  EXPECT_FALSE(cache.Fetch(A1()).ok());
  EXPECT_TRUE(cache.Fetch(P1()).ok()) << "set values are always tracked";
}

TEST_F(AuxCacheTest, InsertExtendsCorridorViaEventOrQuery) {
  AuxiliaryCache cache(AuxiliaryCache::Mode::kFull, Root(),
                       *Path::Parse("professor.age"));
  ASSERT_TRUE(cache.Initialize(wrapper_.get()).ok());

  // Example 10's case: a new professor P9 (with an age child) under ROOT.
  ASSERT_TRUE(source_.PutAtomic(Oid("A9"), "age", Value::Int(30)).ok());
  ASSERT_TRUE(source_.PutSet(Oid("P9"), "professor", {Oid("A9")}).ok());
  ASSERT_TRUE(source_.Insert(Root(), Oid("P9")).ok());
  UpdateEvent event = MakeEvent(Update::Insert(Root(), Oid("P9")),
                                ReportingLevel::kWithValues);
  int64_t queries_before = costs_.cache_maintenance_queries;
  ASSERT_TRUE(cache.OnEvent(event, wrapper_.get()).ok());
  EXPECT_TRUE(cache.OnCorridor(Oid("P9")));
  EXPECT_TRUE(cache.OnCorridor(Oid("A9")));
  EXPECT_GT(costs_.cache_maintenance_queries, queries_before)
      << "the subobjects of P9 had to be pulled from the source";
  auto objects = cache.EvalObjects(Oid("P9"), *Path::Parse("age"));
  ASSERT_TRUE(objects.has_value());
  EXPECT_EQ((*objects)[0].value().AsInt(), 30);
}

TEST_F(AuxCacheTest, DeletePrunesAndModifyRefreshes) {
  AuxiliaryCache cache(AuxiliaryCache::Mode::kFull, Root(),
                       *Path::Parse("professor.age"));
  ASSERT_TRUE(cache.Initialize(wrapper_.get()).ok());

  // Modify A1 with a level-2 event: value refreshed locally, no query.
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(50)).ok());
  UpdateEvent modify_event =
      MakeEvent(Update::Modify(A1(), Value::Int(45), Value::Int(50)),
                ReportingLevel::kWithValues);
  int64_t queries_before = costs_.cache_maintenance_queries;
  ASSERT_TRUE(cache.OnEvent(modify_event, wrapper_.get()).ok());
  EXPECT_EQ(costs_.cache_maintenance_queries, queries_before);
  EXPECT_EQ(cache.Fetch(A1())->value().AsInt(), 50);

  // Delete P1 from ROOT: P1 and A1 leave the corridor.
  ASSERT_TRUE(source_.Delete(Root(), P1()).ok());
  UpdateEvent delete_event =
      MakeEvent(Update::Delete(Root(), P1()), ReportingLevel::kWithValues);
  ASSERT_TRUE(cache.OnEvent(delete_event, wrapper_.get()).ok());
  EXPECT_FALSE(cache.OnCorridor(P1()));
  EXPECT_FALSE(cache.OnCorridor(A1()));
  EXPECT_TRUE(cache.OnCorridor(P2()));
  // Until Prune() the detached objects stay readable (the maintainer's
  // delete case evaluates them); afterwards they are gone.
  EXPECT_TRUE(cache.Fetch(P1()).ok());
  cache.Prune();
  EXPECT_FALSE(cache.Fetch(P1()).ok());
  EXPECT_TRUE(cache.Fetch(P2()).ok());
}

TEST_F(AuxCacheTest, OffCorridorEventsAreFreeNoOps) {
  AuxiliaryCache cache(AuxiliaryCache::Mode::kFull, Root(),
                       *Path::Parse("professor.age"));
  ASSERT_TRUE(cache.Initialize(wrapper_.get()).ok());
  int64_t queries_before = costs_.cache_maintenance_queries;
  size_t size_before = cache.size();

  ASSERT_TRUE(source_.Modify(N3(), Value::Str("Jon")).ok());
  UpdateEvent event =
      MakeEvent(Update::Modify(N3(), Value::Str("John"), Value::Str("Jon")),
                ReportingLevel::kWithValues);
  ASSERT_TRUE(cache.OnEvent(event, wrapper_.get()).ok());
  EXPECT_EQ(costs_.cache_maintenance_queries, queries_before);
  EXPECT_EQ(cache.size(), size_before);
}

// ---------------------------------------------------------- Warehouse e2e

class WarehouseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(BuildPersonDb(&source_, /*with_database=*/false).ok());
  }

  void Connect(ReportingLevel level,
               Warehouse::CacheMode cache = Warehouse::CacheMode::kNone) {
    warehouse_ = std::make_unique<Warehouse>(&warehouse_store_);
    ASSERT_TRUE(warehouse_->ConnectSource(&source_, Root(), level).ok());
    ASSERT_TRUE(
        warehouse_
            ->DefineView(
                "define mview YP as: SELECT ROOT.professor X "
                "WHERE X.age <= 45",
                cache)
            .ok());
    warehouse_->costs().Reset();  // exclude setup from maintenance costs
  }

  void ExpectViewCorrect() {
    ASSERT_TRUE(warehouse_->last_status().ok())
        << warehouse_->last_status().ToString();
    MaterializedView* view = warehouse_->view("YP");
    ASSERT_NE(view, nullptr);
    ConsistencyReport report = CheckViewConsistency(*view, source_);
    EXPECT_TRUE(report.consistent) << report.ToString();
  }

  void RunExample5Workload() {
    ASSERT_TRUE(source_.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
    ASSERT_TRUE(source_.Insert(P2(), Oid("A2")).ok());       // P2 joins
    ASSERT_TRUE(source_.Modify(A1(), Value::Int(50)).ok());  // P1 leaves
    ASSERT_TRUE(source_.Modify(A1(), Value::Int(40)).ok());  // P1 returns
    ASSERT_TRUE(source_.Delete(Root(), P2()).ok());          // P2 leaves
    ASSERT_TRUE(source_.Insert(Root(), P2()).ok());          // P2 returns
    // Irrelevant noise: names, a student insert.
    ASSERT_TRUE(source_.Modify(N1(), Value::Str("Jon")).ok());
    ASSERT_TRUE(source_.PutAtomic(Oid("H"), "hobby", Value::Str("go")).ok());
    ASSERT_TRUE(source_.Insert(P1(), Oid("H")).ok());
  }

  ObjectStore source_;
  ObjectStore warehouse_store_;
  std::unique_ptr<Warehouse> warehouse_;
};

TEST_F(WarehouseTest, RequiresSourceBeforeViews) {
  Warehouse warehouse(&warehouse_store_);
  EXPECT_EQ(warehouse.DefineView("define mview V as: SELECT ROOT.professor X")
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(warehouse.ConnectSource(&source_, Oid("nope"),
                                    ReportingLevel::kOidsOnly)
                .code(),
            StatusCode::kNotFound);
}

TEST_F(WarehouseTest, RejectsNonRootEntryButAcceptsGeneralViews) {
  Connect(ReportingLevel::kWithValues);
  EXPECT_FALSE(
      warehouse_->DefineView("define mview V2 as: SELECT P1.student X").ok());
  // Non-simple definitions are no longer rejected: they bypass Algorithm 1
  // and get the discrimination-network engine instead.
  ASSERT_TRUE(
      warehouse_
          ->DefineView("define mview V3 as: SELECT ROOT.* X WHERE X.age > 1")
          .ok());
  EXPECT_EQ(warehouse_->view_engine("V3"), Warehouse::EngineKind::kGdn);
}

TEST_F(WarehouseTest, MaintainsCorrectlyAtEveryLevel) {
  for (ReportingLevel level :
       {ReportingLevel::kOidsOnly, ReportingLevel::kWithValues,
        ReportingLevel::kWithRootPath}) {
    SCOPED_TRACE(ReportingLevelName(level));
    ObjectStore fresh_source;
    ASSERT_TRUE(BuildPersonDb(&fresh_source, false).ok());
    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    ASSERT_TRUE(warehouse.ConnectSource(&fresh_source, Root(), level).ok());
    ASSERT_TRUE(warehouse
                    .DefineView(
                        "define mview YP as: SELECT ROOT.professor X "
                        "WHERE X.age <= 45")
                    .ok());

    ASSERT_TRUE(fresh_source.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
    ASSERT_TRUE(fresh_source.Insert(P2(), Oid("A2")).ok());
    ASSERT_TRUE(fresh_source.Modify(A1(), Value::Int(50)).ok());
    ASSERT_TRUE(fresh_source.Delete(Root(), P2()).ok());
    ASSERT_TRUE(fresh_source.Insert(Root(), P2()).ok());
    ASSERT_TRUE(fresh_source.Modify(Oid("A2"), Value::Int(99)).ok());

    ASSERT_TRUE(warehouse.last_status().ok())
        << warehouse.last_status().ToString();
    MaterializedView* view = warehouse.view("YP");
    ASSERT_NE(view, nullptr);
    ConsistencyReport report = CheckViewConsistency(*view, fresh_source);
    EXPECT_TRUE(report.consistent) << report.ToString();
    EXPECT_EQ(view->BaseMembers(), OidSet());
  }
}

TEST_F(WarehouseTest, HigherReportingLevelsCostFewerQueries) {
  int64_t queries[4] = {0, 0, 0, 0};
  for (int level = 1; level <= 3; ++level) {
    ObjectStore fresh_source;
    ASSERT_TRUE(BuildPersonDb(&fresh_source, false).ok());
    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    ASSERT_TRUE(warehouse
                    .ConnectSource(&fresh_source, Root(),
                                   static_cast<ReportingLevel>(level))
                    .ok());
    ASSERT_TRUE(warehouse
                    .DefineView(
                        "define mview YP as: SELECT ROOT.professor X "
                        "WHERE X.age <= 45")
                    .ok());
    warehouse.costs().Reset();

    ASSERT_TRUE(fresh_source.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
    ASSERT_TRUE(fresh_source.Insert(P2(), Oid("A2")).ok());
    ASSERT_TRUE(fresh_source.Modify(A1(), Value::Int(50)).ok());
    ASSERT_TRUE(fresh_source.Modify(N1(), Value::Str("Jon")).ok());
    ASSERT_TRUE(warehouse.last_status().ok());
    queries[level] = warehouse.costs().source_queries;
  }
  EXPECT_GT(queries[1], queries[2])
      << "level 2 screens the name modify locally";
  EXPECT_GE(queries[2], queries[3]);
}

TEST_F(WarehouseTest, ScreeningCountsIrrelevantEvents) {
  Connect(ReportingLevel::kWithValues);
  ASSERT_TRUE(source_.Modify(N1(), Value::Str("Jon")).ok());
  ASSERT_TRUE(source_.Modify(M3(), Value::Str("math")).ok());
  EXPECT_EQ(warehouse_->costs().events_screened_out, 2);
  EXPECT_EQ(warehouse_->costs().source_queries, 0);
  EXPECT_EQ(warehouse_->costs().events_local_only, 2);
  ExpectViewCorrect();
}

TEST_F(WarehouseTest, FullCacheMakesMaintenanceLocal) {
  Connect(ReportingLevel::kWithValues, Warehouse::CacheMode::kFull);
  RunExample5Workload();
  EXPECT_EQ(warehouse_->costs().source_queries,
            warehouse_->costs().cache_maintenance_queries)
      << "all non-cache-upkeep work is local (§5.2 Example 10)";
  EXPECT_EQ(warehouse_->view("YP")->BaseMembers(), OidSet({P1(), P2()}));
  ExpectViewCorrect();
}

TEST_F(WarehouseTest, PartialCacheQueriesOnlyForValues) {
  Connect(ReportingLevel::kWithValues, Warehouse::CacheMode::kLabelsOnly);
  RunExample5Workload();
  ExpectViewCorrect();
  // Structure questions were answered locally, some value fetches remain.
  EXPECT_GT(warehouse_->costs().cache_hits, 0);
}

TEST_F(WarehouseTest, CacheModesAgreeWithNoCache) {
  for (auto mode :
       {Warehouse::CacheMode::kNone, Warehouse::CacheMode::kLabelsOnly,
        Warehouse::CacheMode::kFull}) {
    ObjectStore fresh_source;
    ASSERT_TRUE(BuildPersonDb(&fresh_source, false).ok());
    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    ASSERT_TRUE(warehouse
                    .ConnectSource(&fresh_source, Root(),
                                   ReportingLevel::kWithValues)
                    .ok());
    ASSERT_TRUE(warehouse
                    .DefineView(
                        "define mview YP as: SELECT ROOT.professor X "
                        "WHERE X.age <= 45",
                        mode)
                    .ok());
    ASSERT_TRUE(fresh_source.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
    ASSERT_TRUE(fresh_source.Insert(P2(), Oid("A2")).ok());
    ASSERT_TRUE(fresh_source.Modify(A1(), Value::Int(50)).ok());
    ASSERT_TRUE(fresh_source.Delete(P2(), Oid("A2")).ok());
    ASSERT_TRUE(warehouse.last_status().ok())
        << warehouse.last_status().ToString();
    EXPECT_EQ(warehouse.view("YP")->BaseMembers(), OidSet());
  }
}

TEST_F(WarehouseTest, PathKnowledgeSkipsImpossibleUpdates) {
  // The paper's example: students have no salary children. A view on
  // ROOT.secretary.salary can never be affected by updates below students.
  Connect(ReportingLevel::kWithValues);
  ASSERT_TRUE(warehouse_
                  ->DefineView(
                      "define mview SS as: SELECT ROOT.secretary X "
                      "WHERE X.salary > 0")
                  .ok());
  warehouse_->costs().Reset();

  // Without knowledge: a salary insert under a student matches the label
  // filter of SS (salary is on its corridor) and triggers queries.
  ASSERT_TRUE(source_.PutAtomic(Oid("SAL"), "salary", Value::Int(1)).ok());
  ASSERT_TRUE(source_.Insert(P3(), Oid("SAL")).ok());
  int64_t queries_without = warehouse_->costs().source_queries;
  EXPECT_GT(queries_without, 0);
  ASSERT_TRUE(source_.Delete(P3(), Oid("SAL")).ok());

  PathKnowledge knowledge;
  knowledge.SetChildLabels("person", {"professor", "student", "secretary"});
  knowledge.SetChildLabels("student", {"name", "age", "major"});
  knowledge.SetChildLabels("secretary", {"name", "age", "salary"});
  warehouse_->SetPathKnowledge(knowledge);
  warehouse_->costs().Reset();

  // With knowledge, modifying a salary under a student... the event label
  // is still "salary" which IS feasible under secretary — so insert events
  // under students still pass label screening. The decisive case from the
  // paper: a view over students can never see salary events at all.
  ASSERT_TRUE(warehouse_
                  ->DefineView(
                      "define mview ST as: SELECT ROOT.student X "
                      "WHERE X.salary > 0")
                  .ok());
  warehouse_->costs().Reset();
  ASSERT_TRUE(source_.Insert(P3(), Oid("SAL")).ok());
  ASSERT_TRUE(source_.Modify(Oid("SAL"), Value::Int(2)).ok());
  // ST screened both events without queries (salary impossible below
  // student), SS still processed them.
  EXPECT_GT(warehouse_->costs().events_screened_out, 0);
  ASSERT_TRUE(warehouse_->last_status().ok());
  EXPECT_EQ(warehouse_->view("ST")->BaseMembers(), OidSet());
}

TEST_F(WarehouseTest, Level1ModifyRecheckHandlesBothDirections) {
  Connect(ReportingLevel::kOidsOnly);
  // P1 leaves on modify (45 -> 50) even though the event carries no values.
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(50)).ok());
  EXPECT_EQ(warehouse_->view("YP")->BaseMembers(), OidSet());
  // And returns on 50 -> 45.
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(45)).ok());
  EXPECT_EQ(warehouse_->view("YP")->BaseMembers(), OidSet({P1()}));
  ExpectViewCorrect();
}

// Deferred processing: events queue while the source races ahead; after a
// drain the view converges to the source's current state.
TEST_F(WarehouseTest, DeferredProcessingConverges) {
  Connect(ReportingLevel::kWithValues);
  warehouse_->set_deferred(true);

  // The source changes several times before the warehouse looks at any
  // event; some intermediate states contradict the final one.
  ASSERT_TRUE(source_.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(source_.Insert(P2(), Oid("A2")).ok());      // P2 would join
  ASSERT_TRUE(source_.Modify(Oid("A2"), Value::Int(99)).ok());  // ...but ages
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(50)).ok()); // P1 leaves
  ASSERT_TRUE(source_.Delete(Root(), P2()).ok());
  ASSERT_TRUE(source_.Insert(Root(), P2()).ok());
  EXPECT_EQ(warehouse_->pending_events(), 5u);
  EXPECT_EQ(warehouse_->view("YP")->BaseMembers(), OidSet({P1()}))
      << "nothing applied yet";

  ASSERT_TRUE(warehouse_->ProcessPending().ok());
  EXPECT_EQ(warehouse_->pending_events(), 0u);
  EXPECT_EQ(warehouse_->view("YP")->BaseMembers(), OidSet());
  ExpectViewCorrect();

  // A second batch that reverses everything.
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(45)).ok());
  ASSERT_TRUE(source_.Modify(Oid("A2"), Value::Int(30)).ok());
  ASSERT_TRUE(warehouse_->ProcessPending().ok());
  EXPECT_EQ(warehouse_->view("YP")->BaseMembers(), OidSet({P1(), P2()}));
  ExpectViewCorrect();
}

// Queue compaction: cancelling pairs vanish, modify chains merge, and the
// compacted drain lands on the same view.
TEST_F(WarehouseTest, CompactPendingPreservesNetEffect) {
  Connect(ReportingLevel::kWithValues);
  warehouse_->set_deferred(true);

  ASSERT_TRUE(source_.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(source_.Insert(P2(), Oid("A2")).ok());   // insert ...
  ASSERT_TRUE(source_.Delete(P2(), Oid("A2")).ok());   // ...cancelled
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(50)).ok());
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(60)).ok());
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(44)).ok());  // merge to one
  ASSERT_TRUE(source_.Delete(Root(), P4()).ok());      // delete ...
  ASSERT_TRUE(source_.Insert(Root(), P4()).ok());      // ...cancelled
  EXPECT_EQ(warehouse_->pending_events(), 7u);

  size_t removed = warehouse_->CompactPending();
  EXPECT_EQ(removed, 6u);
  EXPECT_EQ(warehouse_->pending_events(), 1u)
      << "only the merged modify chain survives";

  ASSERT_TRUE(warehouse_->ProcessPending().ok());
  EXPECT_EQ(warehouse_->view("YP")->BaseMembers(), OidSet({P1()}));
  ExpectViewCorrect();
}

// Compacted deferred drains converge on random streams.
TEST_F(WarehouseTest, CompactedDeferredStreamsConverge) {
  ObjectStore source;
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 3;
  tree_options.seed = 53;
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());

  ObjectStore warehouse_store;
  Warehouse warehouse(&warehouse_store);
  ASSERT_TRUE(warehouse
                  .ConnectSource(&source, tree->root,
                                 ReportingLevel::kWithValues)
                  .ok());
  ASSERT_TRUE(
      warehouse.DefineView(TreeViewDefinition("TV", tree->root, 2, 3, 50))
          .ok());
  warehouse.set_deferred(true);

  UpdateGenOptions gen_options;
  gen_options.seed = 59;
  gen_options.p_modify = 0.6;  // modify-heavy: plenty to merge
  gen_options.p_insert = 0.2;
  gen_options.p_delete = 0.2;
  UpdateGenerator generator(&source, tree->root, gen_options);
  size_t total_removed = 0;
  for (int batch = 0; batch < 10; ++batch) {
    ASSERT_TRUE(generator.Run(30).ok());
    total_removed += warehouse.CompactPending();
    ASSERT_TRUE(warehouse.ProcessPending().ok());
    auto def = ViewDefinition::Parse(
        TreeViewDefinition("TV", tree->root, 2, 3, 50));
    auto truth = EvaluateView(source, *def);
    ASSERT_TRUE(truth.ok());
    ASSERT_EQ(warehouse.view("TV")->BaseMembers(), *truth)
        << "batch " << batch;
  }
  EXPECT_GT(total_removed, 0u) << "the modify-heavy stream must compact";
  ConsistencyReport report =
      CheckViewConsistency(*warehouse.view("TV"), source);
  EXPECT_TRUE(report.consistent) << report.ToString();
}

// Deferred drains converge on random streams at every level / cache mode.
// Long drains over wide, modify-heavy streams are exactly what exposed the
// two staleness holes this suite pins down (witness-based deletes and
// path-broken skips); keep the shapes aggressive.
TEST_F(WarehouseTest, DeferredRandomStreamsConverge) {
  struct Config {
    ReportingLevel level;
    Warehouse::CacheMode cache;
    uint64_t tree_seed;
    uint64_t stream_seed;
    size_t fanout;
  };
  const Config configs[] = {
      {ReportingLevel::kOidsOnly, Warehouse::CacheMode::kNone, 29, 71, 3},
      {ReportingLevel::kWithValues, Warehouse::CacheMode::kNone, 61, 67, 5},
      {ReportingLevel::kWithValues, Warehouse::CacheMode::kFull, 61, 67, 5},
      {ReportingLevel::kWithValues, Warehouse::CacheMode::kLabelsOnly, 13,
       91, 4},
      {ReportingLevel::kWithRootPath, Warehouse::CacheMode::kFull, 17, 37,
       4},
  };
  for (const Config& config : configs) {
    SCOPED_TRACE(std::string(ReportingLevelName(config.level)) + "/seed" +
                 std::to_string(config.tree_seed));
    ObjectStore source;
    TreeGenOptions tree_options;
    tree_options.levels = 3;
    tree_options.fanout = config.fanout;
    tree_options.seed = config.tree_seed;
    auto tree = GenerateTree(&source, tree_options);
    ASSERT_TRUE(tree.ok());

    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    ASSERT_TRUE(
        warehouse.ConnectSource(&source, tree->root, config.level).ok());
    ASSERT_TRUE(warehouse
                    .DefineView(TreeViewDefinition("TV", tree->root, 2, 3, 50),
                                config.cache)
                    .ok());
    warehouse.set_deferred(true);

    UpdateGenOptions gen_options;
    gen_options.seed = config.stream_seed;
    gen_options.p_modify = 0.6;
    gen_options.p_insert = 0.2;
    gen_options.p_delete = 0.2;
    UpdateGenerator generator(&source, tree->root, gen_options);
    Random batch_rng(5);
    for (int batch = 0; batch < 12; ++batch) {
      size_t burst = 1 + batch_rng.Uniform(100);
      ASSERT_TRUE(generator.Run(burst).ok());
      ASSERT_TRUE(warehouse.ProcessPending().ok())
          << warehouse.last_status().ToString();
      auto truth = EvaluateView(source, *ViewDefinition::Parse(TreeViewDefinition(
                                            "TV", tree->root, 2, 3, 50)));
      ASSERT_TRUE(truth.ok());
      ASSERT_EQ(warehouse.view("TV")->BaseMembers(), *truth)
          << "batch " << batch;
      ConsistencyReport report =
          CheckViewConsistency(*warehouse.view("TV"), source);
      ASSERT_TRUE(report.consistent) << report.ToString();
    }
  }
}

TEST_F(WarehouseTest, RandomStreamStaysConsistentAcrossConfigs) {
  struct Config {
    ReportingLevel level;
    Warehouse::CacheMode cache;
  };
  const Config configs[] = {
      {ReportingLevel::kOidsOnly, Warehouse::CacheMode::kNone},
      {ReportingLevel::kWithValues, Warehouse::CacheMode::kNone},
      {ReportingLevel::kWithValues, Warehouse::CacheMode::kLabelsOnly},
      {ReportingLevel::kWithValues, Warehouse::CacheMode::kFull},
      {ReportingLevel::kWithRootPath, Warehouse::CacheMode::kFull},
  };
  for (const Config& config : configs) {
    SCOPED_TRACE(ReportingLevelName(config.level));
    ObjectStore source;
    TreeGenOptions tree_options;
    tree_options.levels = 3;
    tree_options.fanout = 3;
    tree_options.seed = 17;
    auto tree = GenerateTree(&source, tree_options);
    ASSERT_TRUE(tree.ok());

    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    ASSERT_TRUE(
        warehouse.ConnectSource(&source, tree->root, config.level).ok());
    ASSERT_TRUE(warehouse
                    .DefineView(TreeViewDefinition("TV", tree->root, 2, 3, 50),
                                config.cache)
                    .ok());

    UpdateGenOptions gen_options;
    gen_options.seed = 23;
    UpdateGenerator generator(&source, tree->root, gen_options);
    ASSERT_TRUE(generator.Run(120).ok());

    ASSERT_TRUE(warehouse.last_status().ok())
        << warehouse.last_status().ToString();
    MaterializedView* view = warehouse.view("TV");
    ASSERT_NE(view, nullptr);
    ConsistencyReport report = CheckViewConsistency(*view, source);
    EXPECT_TRUE(report.consistent) << report.ToString();
  }
}

// ------------------------------------------------- Sequenced delivery

TEST_F(MonitorTest, EventsCarryMonotoneSequence) {
  auto events = Capture(ReportingLevel::kOidsOnly, [&] {
    ASSERT_TRUE(source_.Modify(A1(), Value::Int(50)).ok());
    ASSERT_TRUE(source_.Modify(A1(), Value::Int(40)).ok());
    ASSERT_TRUE(source_.Modify(A1(), Value::Int(30)).ok());
  });
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].sequence, 1u);
  EXPECT_EQ(events[1].sequence, 2u);
  EXPECT_EQ(events[2].sequence, 3u);
}

TEST_F(WarehouseTest, DuplicateDeliveriesAreIdempotentAtEveryLevel) {
  for (ReportingLevel level :
       {ReportingLevel::kOidsOnly, ReportingLevel::kWithValues,
        ReportingLevel::kWithRootPath}) {
    SCOPED_TRACE(ReportingLevelName(level));
    ObjectStore fresh_source;
    ASSERT_TRUE(BuildPersonDb(&fresh_source, false).ok());
    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    ASSERT_TRUE(warehouse.ConnectSource(&fresh_source, Root(), level).ok());
    ASSERT_TRUE(warehouse
                    .DefineView(
                        "define mview YP as: SELECT ROOT.professor X "
                        "WHERE X.age <= 45")
                    .ok());

    FaultInjector injector(FaultProfile{});
    ASSERT_TRUE(warehouse.SetFaultInjector("source1", &injector).ok());
    injector.DuplicateNextEvents(100);  // every delivery arrives twice

    ASSERT_TRUE(fresh_source.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
    ASSERT_TRUE(fresh_source.Insert(P2(), Oid("A2")).ok());
    ASSERT_TRUE(fresh_source.Modify(A1(), Value::Int(50)).ok());
    ASSERT_TRUE(fresh_source.Delete(Root(), P2()).ok());

    // PutAtomic does not notify: three monitored updates, each duplicated.
    EXPECT_EQ(warehouse.costs().events_duplicate_dropped, 3);
    EXPECT_EQ(warehouse.costs().events_gap_detected, 0);
    EXPECT_EQ(warehouse.stale_view_count(), 0u);
    ASSERT_TRUE(warehouse.last_status().ok())
        << warehouse.last_status().ToString();
    ConsistencyReport report =
        CheckViewConsistency(*warehouse.view("YP"), fresh_source);
    EXPECT_TRUE(report.consistent) << report.ToString();
  }
}

TEST_F(WarehouseTest, LostDeliveryQuarantinesThenResyncsAtEveryLevel) {
  for (ReportingLevel level :
       {ReportingLevel::kOidsOnly, ReportingLevel::kWithValues,
        ReportingLevel::kWithRootPath}) {
    SCOPED_TRACE(ReportingLevelName(level));
    ObjectStore fresh_source;
    ASSERT_TRUE(BuildPersonDb(&fresh_source, false).ok());
    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    ASSERT_TRUE(warehouse.ConnectSource(&fresh_source, Root(), level).ok());
    ASSERT_TRUE(warehouse
                    .DefineView(
                        "define mview YP as: SELECT ROOT.professor X "
                        "WHERE X.age <= 45")
                    .ok());

    FaultInjector injector(FaultProfile{});
    ASSERT_TRUE(warehouse.SetFaultInjector("source1", &injector).ok());
    injector.DropNextEvents(1);
    injector.set_down(true);  // query-backs fail too: no immediate resync

    // This update's delivery is lost; nothing observable yet.
    ASSERT_TRUE(fresh_source.Modify(A1(), Value::Int(50)).ok());
    EXPECT_EQ(warehouse.stale_view_count(), 0u);

    // The next delivery reveals the gap and quarantines the view; with the
    // source down, the resync attempt fails and the event buffers.
    ASSERT_TRUE(fresh_source.Modify(A1(), Value::Int(40)).ok());
    EXPECT_EQ(warehouse.costs().events_gap_detected, 1);
    EXPECT_EQ(warehouse.stale_view_count(), 1u);
    EXPECT_EQ(warehouse.view_health("YP"), Warehouse::ViewHealth::kStale);
    EXPECT_EQ(warehouse.buffered_stale_events(), 1u);
    ASSERT_TRUE(warehouse.last_status().ok())
        << "quarantine is graceful: " << warehouse.last_status().ToString();

    // Reads are still served from the last consistent state.
    MaterializedView* view = warehouse.view("YP");
    ASSERT_NE(view, nullptr);
    EXPECT_TRUE(view->BaseMembers().Contains(P1()));

    // Recovery: heal the channel and resync explicitly.
    injector.Heal();
    ASSERT_TRUE(warehouse.ResyncStaleViews().ok());
    EXPECT_EQ(warehouse.stale_view_count(), 0u);
    EXPECT_EQ(warehouse.view_health("YP"), Warehouse::ViewHealth::kFresh);
    EXPECT_EQ(warehouse.buffered_stale_events(), 0u);
    EXPECT_GE(warehouse.costs().view_resyncs, 1);
    ConsistencyReport report = CheckViewConsistency(*view, fresh_source);
    EXPECT_TRUE(report.consistent) << report.ToString();
  }
}

TEST_F(WarehouseTest, RecoveredSourceResyncsOnNextEventWithoutExplicitCall) {
  Connect(ReportingLevel::kWithValues);
  FaultInjector injector(FaultProfile{});
  ASSERT_TRUE(warehouse_->SetFaultInjector("source1", &injector).ok());

  injector.DropNextEvents(1);
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(50)).ok());  // lost
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(44)).ok());  // reveals the gap
  // The channel is healthy apart from the drop, so the dispatch of the
  // gap-revealing event resyncs inline: quarantine lasted one delivery.
  EXPECT_EQ(warehouse_->costs().events_gap_detected, 1);
  EXPECT_GE(warehouse_->costs().views_quarantined, 1);
  EXPECT_GE(warehouse_->costs().view_resyncs, 1);
  EXPECT_EQ(warehouse_->stale_view_count(), 0u);
  ExpectViewCorrect();
}

TEST_F(WarehouseTest, UnsequencedEventsBypassGapDetection) {
  Connect(ReportingLevel::kWithValues);
  // Events constructed directly (sequence 0) — the pre-sequencing pattern
  // used by tests and batch helpers — must not trip duplicate/gap logic.
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(50)).ok());  // sequence 1
  UpdateEvent manual;
  manual.kind = UpdateKind::kModify;
  manual.parent = A1();
  manual.level = ReportingLevel::kOidsOnly;
  // Not delivered through the monitor, so no sequence stamp.
  EXPECT_EQ(manual.sequence, 0u);
  ASSERT_TRUE(source_.Modify(A1(), Value::Int(40)).ok());  // sequence 2
  EXPECT_EQ(warehouse_->costs().events_gap_detected, 0);
  EXPECT_EQ(warehouse_->costs().events_duplicate_dropped, 0);
  EXPECT_EQ(warehouse_->stale_view_count(), 0u);
  ExpectViewCorrect();
}

// ------------------------------------------- non-OEM source translation

// Figure 6's wrapper role: a relational source is translated into the OEM
// model, and the whole warehouse stack runs over it unchanged.
TEST(SourceWrapperGsdbTest, RelationalSourceBecomesGsdb) {
  RelationalSource relational;
  ASSERT_TRUE(relational.CreateTable("emp", {"name", "salary"}).ok());
  auto joe = relational.InsertRow(
      "emp", {Value::Str("Joe"), Value::Int(50000)});
  ASSERT_TRUE(joe.ok());

  ObjectStore store;
  GsdbSourceAdapter adapter(&store, &relational, "REL");
  ASSERT_TRUE(adapter.Initialize().ok());

  // The §2 record example: <name:'Joe', salary:50k> as an OEM subtree.
  const Object* tuple = store.Get(adapter.TupleOid("emp", *joe));
  ASSERT_NE(tuple, nullptr);
  EXPECT_EQ(tuple->label(), "tuple");
  auto answer = EvaluateQueryText(
      store, "SELECT REL.emp.tuple X WHERE X.name = 'Joe'");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(*answer, OidSet({adapter.TupleOid("emp", *joe)}));
}

TEST(SourceWrapperGsdbTest, RowOperationsBecomeBasicUpdates) {
  RelationalSource relational;
  ASSERT_TRUE(relational.CreateTable("emp", {"name", "salary"}).ok());
  ObjectStore store;
  GsdbSourceAdapter adapter(&store, &relational, "REL");
  ASSERT_TRUE(adapter.Initialize().ok());

  // Record the basic updates the translation produces.
  struct Recorder : UpdateListener {
    void OnUpdate(const ObjectStore&, const Update& update) override {
      kinds.push_back(update.kind);
    }
    std::vector<UpdateKind> kinds;
  } recorder;
  store.AddListener(&recorder);

  auto row = relational.InsertRow("emp", {Value::Str("Ada"), Value::Int(1)});
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(relational.UpdateRow("emp", *row, "salary", Value::Int(2)).ok());
  ASSERT_TRUE(relational.DeleteRow("emp", *row).ok());
  ASSERT_TRUE(relational.last_translation_status().ok());
  EXPECT_EQ(recorder.kinds,
            (std::vector<UpdateKind>{UpdateKind::kInsert, UpdateKind::kModify,
                                     UpdateKind::kDelete}));
}

TEST(SourceWrapperGsdbTest, WarehouseOverWrappedRelationalSource) {
  RelationalSource relational;
  ASSERT_TRUE(relational.CreateTable("emp", {"name", "salary"}).ok());
  ObjectStore source;
  GsdbSourceAdapter adapter(&source, &relational, "REL");
  ASSERT_TRUE(adapter.Initialize().ok());

  ObjectStore warehouse_store;
  Warehouse warehouse(&warehouse_store);
  ASSERT_TRUE(warehouse
                  .ConnectSource(&source, Oid("REL"),
                                 ReportingLevel::kWithValues)
                  .ok());
  ASSERT_TRUE(warehouse
                  .DefineView(
                      "define mview RICH as: SELECT REL.emp.tuple X "
                      "WHERE X.salary >= 100000")
                  .ok());

  auto low = relational.InsertRow("emp", {Value::Str("Lo"), Value::Int(1)});
  auto high = relational.InsertRow(
      "emp", {Value::Str("Hi"), Value::Int(150000)});
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(warehouse.view("RICH")->BaseMembers(),
            OidSet({adapter.TupleOid("emp", *high)}));

  // A raise promotes Lo into the view; a row delete evicts Hi.
  ASSERT_TRUE(
      relational.UpdateRow("emp", *low, "salary", Value::Int(200000)).ok());
  ASSERT_TRUE(relational.DeleteRow("emp", *high).ok());
  ASSERT_TRUE(warehouse.last_status().ok())
      << warehouse.last_status().ToString();
  EXPECT_EQ(warehouse.view("RICH")->BaseMembers(),
            OidSet({adapter.TupleOid("emp", *low)}));
  EXPECT_TRUE(
      CheckViewConsistency(*warehouse.view("RICH"), source).consistent);
}

TEST(SourceWrapperGsdbTest, Validation) {
  RelationalSource relational;
  EXPECT_FALSE(relational.CreateTable("a.b", {"x"}).ok());
  EXPECT_FALSE(relational.CreateTable("t", {"x", "x"}).ok());
  ASSERT_TRUE(relational.CreateTable("t", {"x"}).ok());
  EXPECT_FALSE(relational.CreateTable("t", {"y"}).ok());
  EXPECT_FALSE(relational.InsertRow("nope", {Value::Int(1)}).ok());
  EXPECT_FALSE(relational.InsertRow("t", {}).ok()) << "arity";
  EXPECT_FALSE(relational.InsertRow("t", {Value::SetOf({})}).ok());
  EXPECT_FALSE(relational.DeleteRow("t", 99).ok());
  EXPECT_FALSE(relational.UpdateRow("t", 0, "x", Value::Int(1)).ok());
}

// ------------------------------------------------------ sharded warehouse

// Small twin rig for the sharded tests: one source tree observed by both a
// plain warehouse and a K-shard coordinator. `prefix` keeps the interned
// OIDs (and so the shard split) unique per test.
struct ShardedRig {
  ObjectStore source;
  ObjectStore plain_store;
  std::unique_ptr<Warehouse> plain;
  std::unique_ptr<ShardedWarehouse> sharded;
  std::unique_ptr<UpdateGenerator> gen;
  Oid root;
  std::string definition;

  void Build(uint32_t shards, const std::string& prefix, bool deferred) {
    TreeGenOptions tree_options;
    tree_options.levels = 3;
    tree_options.fanout = 4;
    tree_options.seed = 101;
    tree_options.oid_prefix = prefix;
    auto tree = GenerateTree(&source, tree_options);
    ASSERT_TRUE(tree.ok());
    root = tree->root;
    definition = TreeViewDefinition("SWV", root, 2, 3, 50);

    plain = std::make_unique<Warehouse>(&plain_store);
    ASSERT_TRUE(
        plain->ConnectSource(&source, root, ReportingLevel::kWithValues).ok());
    ASSERT_TRUE(plain->DefineView(definition).ok());
    plain->set_deferred(deferred);

    sharded = std::make_unique<ShardedWarehouse>(shards);
    ASSERT_TRUE(sharded->init_status().ok());
    ASSERT_TRUE(
        sharded->ConnectSource(&source, root, ReportingLevel::kWithValues)
            .ok());
    ASSERT_TRUE(sharded->DefineView(definition).ok());
    sharded->set_deferred(deferred);

    UpdateGenOptions gen_options;
    gen_options.seed = 211;
    gen_options.oid_prefix = prefix + "u";
    gen = std::make_unique<UpdateGenerator>(&source, root, gen_options);
  }

  void ExpectTwinsIdentical() {
    MaterializedView* view = plain->view("SWV");
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(sharded->ViewMembers("SWV"), view->BaseMembers().elements());
    EXPECT_EQ(sharded->ViewContents("SWV"), ViewContentLines(*view));
  }
};

TEST(ShardedWarehouseTest, RejectsNonPowerOfTwoShardCounts) {
  ShardedWarehouse bad(3);
  EXPECT_FALSE(bad.init_status().ok());
  ShardedWarehouse good(4);
  EXPECT_TRUE(good.init_status().ok());
  EXPECT_EQ(good.shard_count(), 4u);
}

TEST(ShardedWarehouseTest, ShardsRejectAuxCaches) {
  // The §5.2 corridor cuts across the partition, so a bound shard only
  // accepts cache-less views; the coordinator always defines them that way.
  ShardedRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Build(2, "shc_", /*deferred=*/false));
  Status status = rig.sharded->shard(0).DefineView(
      TreeViewDefinition("SWV2", rig.root, 2, 3, 50),
      Warehouse::CacheMode::kFull);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CacheMode::kNone"), std::string::npos)
      << status.ToString();
}

TEST(ShardedWarehouseTest, InlineModeConvergesAfterEveryEvent) {
  ShardedRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Build(4, "shi_", /*deferred=*/false));
  ASSERT_NO_FATAL_FAILURE(rig.ExpectTwinsIdentical());
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(rig.gen->Step().ok());
    // Inline dispatch maintains on arrival and redistributes cross-shard
    // ops per event — the twins may never drift, even between drains.
    ASSERT_NO_FATAL_FAILURE(rig.ExpectTwinsIdentical()) << "event " << i;
  }
  const WarehouseCosts costs = rig.sharded->MergedCosts();
  EXPECT_GT(costs.cross_shard_exports + costs.cross_shard_applies +
                costs.cross_shard_probes,
            0);
}

TEST(ShardedWarehouseTest, DroppedShardDeliveryQuarantinesAndResyncHeals) {
  ShardedRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Build(4, "shq_", /*deferred=*/true));

  // Healthy warm-up drain.
  ASSERT_TRUE(rig.gen->Run(40).ok());
  ASSERT_TRUE(rig.plain->ProcessPendingBatch().ok());
  ASSERT_TRUE(rig.sharded->ProcessPendingBatch(4).ok());
  ASSERT_NO_FATAL_FAILURE(rig.ExpectTwinsIdentical());

  // Lose one delivery on shard 1's channel while its wrapper is down, so
  // the gap quarantines that shard's slice and the drain cannot resync it.
  FaultInjector injector(FaultProfile{});
  ASSERT_TRUE(rig.sharded->SetFaultInjector("source1", 1, &injector).ok());
  injector.DropNextEvents(1);
  injector.set_down(true);
  ASSERT_TRUE(rig.gen->Run(60).ok());
  ASSERT_TRUE(rig.plain->ProcessPendingBatch().ok());
  ASSERT_TRUE(rig.sharded->ProcessPendingBatch(4).ok());
  EXPECT_GT(rig.sharded->stale_view_count(), 0u);

  // Heal the channel: the coordinated resync recomputes the quarantined
  // slice, re-exports its foreign members, and sweeps the peers, so the
  // twins are byte-identical again.
  injector.Heal();
  ASSERT_TRUE(rig.sharded->ResyncStaleViews().ok());
  EXPECT_EQ(rig.sharded->stale_view_count(), 0u);
  ASSERT_NO_FATAL_FAILURE(rig.ExpectTwinsIdentical());

  // The healed coordinator keeps converging on later drains.
  ASSERT_TRUE(rig.gen->Run(40).ok());
  ASSERT_TRUE(rig.plain->ProcessPendingBatch().ok());
  ASSERT_TRUE(rig.sharded->ProcessPendingBatch(4).ok());
  ASSERT_NO_FATAL_FAILURE(rig.ExpectTwinsIdentical());
}

TEST(ShardedWarehouseTest, ExplainReportsSlicesAndMergedTotals) {
  ShardedRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Build(4, "she_", /*deferred=*/true));
  ASSERT_TRUE(rig.gen->Run(60).ok());
  ASSERT_TRUE(rig.sharded->ProcessPendingBatch(4).ok());

  const ShardedViewExplanation explain = rig.sharded->ExplainView("SWV");
  EXPECT_EQ(explain.view, "SWV");
  EXPECT_EQ(explain.shards, 4u);
  ASSERT_EQ(explain.members_per_shard.size(), 4u);
  size_t total = 0;
  for (size_t count : explain.members_per_shard) total += count;
  EXPECT_EQ(explain.total_members, total);
  EXPECT_EQ(explain.total_members, rig.sharded->ViewMembers("SWV").size());
  const std::string text = explain.ToString();
  EXPECT_NE(text.find("sharded view 'SWV'"), std::string::npos) << text;
  EXPECT_NE(text.find("cross-shard traffic"), std::string::npos) << text;
}

TEST(ShardedWarehouseTest, DrainTimingsDecomposeTheCriticalPath) {
  ShardedRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Build(4, "sht_", /*deferred=*/true));
  ASSERT_TRUE(rig.gen->Run(50).ok());
  ASSERT_TRUE(rig.sharded->ProcessPendingBatch(4).ok());
  ASSERT_EQ(rig.sharded->drain_timings().size(), 1u);
  const ShardedWarehouse::DrainTiming& timing =
      rig.sharded->drain_timings()[0];
  EXPECT_GE(timing.serial_micros, 0);
  EXPECT_EQ(timing.eval_micros.size(), 4u);
  rig.sharded->clear_drain_timings();
  EXPECT_TRUE(rig.sharded->drain_timings().empty());
}

TEST(WarehouseCostsTest, MergeAddsEveryCounterIntoTheTarget) {
  WarehouseCosts a;
  WarehouseCosts b;
  a.events_received = 3;
  b.events_received = 4;
  b.source_queries = 7;
  a.view_resyncs = 2;
  b.cross_shard_exports = 5;
  a.cross_shard_probes = 1;
  b.cross_shard_probes = 2;
  a.Merge(b);
  EXPECT_EQ(a.events_received.load(), 7);
  EXPECT_EQ(a.source_queries.load(), 7);
  EXPECT_EQ(a.view_resyncs.load(), 2);
  EXPECT_EQ(a.cross_shard_exports.load(), 5);
  EXPECT_EQ(a.cross_shard_probes.load(), 3);
  EXPECT_EQ(b.events_received.load(), 4) << "merge must not mutate source";
}

TEST(StoreMetricsTest, MergeAddsEveryCounterIntoTheTarget) {
  StoreMetrics a;
  StoreMetrics b;
  a.edges_traversed = 10;
  b.edges_traversed = 5;
  b.parent_lookups = 3;
  a.objects_scanned = 1;
  b.lookups = 8;
  a.index_probes = 2;
  b.index_fallbacks = 6;
  a.Merge(b);
  EXPECT_EQ(a.edges_traversed.load(), 15);
  EXPECT_EQ(a.parent_lookups.load(), 3);
  EXPECT_EQ(a.objects_scanned.load(), 1);
  EXPECT_EQ(a.lookups.load(), 8);
  EXPECT_EQ(a.index_probes.load(), 2);
  EXPECT_EQ(a.index_fallbacks.load(), 6);
  EXPECT_EQ(b.edges_traversed.load(), 5) << "merge must not mutate source";
}

}  // namespace
}  // namespace gsv
