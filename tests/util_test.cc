#include <gtest/gtest.h>

#include "util/random.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace gsv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("object X missing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "object X missing");
  EXPECT_EQ(status.ToString(), "NotFound: object X missing");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("m").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("m").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
}

TEST(StatusTest, TransientCodesForFaultTolerance) {
  Status unavailable = Status::Unavailable("source down");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "Unavailable: source down");
  Status deadline = Status::DeadlineExceeded("retries spent");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: retries spent");

  EXPECT_TRUE(IsSourceFailure(unavailable));
  EXPECT_TRUE(IsSourceFailure(deadline));
  EXPECT_FALSE(IsSourceFailure(Status::Ok()));
  EXPECT_FALSE(IsSourceFailure(Status::NotFound("definitive answer")));
}

#ifdef NDEBUG
TEST(StatusTest, OkCodedErrorCoercesToInternalInRelease) {
  // With asserts compiled out, an error Status mistakenly built with kOk
  // must not read as success downstream.
  Status status(StatusCode::kOk, "mistake");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "mistake");
}
#endif

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = ParsePositive(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_EQ(result.value_or(-1), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = ParsePositive(-3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(-1), -1);
}

Result<int> Doubled(int x) {
  GSV_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

Status CheckAll(int a, int b) {
  GSV_RETURN_IF_ERROR(ParsePositive(a).ok() ? Status::Ok()
                                            : ParsePositive(a).status());
  GSV_RETURN_IF_ERROR(ParsePositive(b).ok() ? Status::Ok()
                                            : ParsePositive(b).status());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_FALSE(CheckAll(1, -2).ok());
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotonic) {
  Stopwatch watch;
  double t1 = watch.ElapsedSeconds();
  double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_GE(watch.ElapsedMicros(), 0);
}

TEST(StringUtilTest, SplitBasics) {
  EXPECT_EQ(Split("a.b.c", '.'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", '.'), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, JoinBasics) {
  EXPECT_EQ(Join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(Join({}, "."), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("abc").has_value());
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("1.5").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999").has_value()) << "overflow";
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2"), -2.0);
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("x").has_value());
  EXPECT_FALSE(ParseDouble("1.5garbage").has_value());
}

TEST(StringUtilTest, Affixes) {
  EXPECT_TRUE(StartsWith("professor.student", "professor"));
  EXPECT_FALSE(StartsWith("pro", "professor"));
  EXPECT_TRUE(EndsWith("professor.student", "student"));
  EXPECT_FALSE(EndsWith("dent", "student"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

// ------------------------------------------------------------------ Retry

TEST(RetryTest, FirstAttemptSuccessIssuesOneCall) {
  RetryOutcome outcome;
  Status status = RetryWithBackoff(
      RetryPolicy{}, [] { return Status::Ok(); }, &outcome);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.backoff_us, 0);
}

TEST(RetryTest, RetriesUnavailableUntilSuccess) {
  int calls = 0;
  RetryOutcome outcome;
  Status status = RetryWithBackoff(
      RetryPolicy{},
      [&] {
        return ++calls < 3 ? Status::Unavailable("blip") : Status::Ok();
      },
      &outcome);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.backoff_us, 100 + 200) << "exponential from 100us";
}

TEST(RetryTest, NonRetryableCodeReturnsImmediately) {
  int calls = 0;
  Status status = RetryWithBackoff(RetryPolicy{}, [&] {
    ++calls;
    return Status::NotFound("definitive");
  });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, AttemptBudgetExhaustionKeepsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  Status status = RetryWithBackoff(policy, [&] {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, DeadlineCutsRetriesShort) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_us = 1000;
  policy.deadline_us = 2500;  // room for one backoff; 1000 + 2000 > 2500
  int calls = 0;
  Status status = RetryWithBackoff(policy, [&] {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 2) << "third attempt would overrun the deadline";
}

TEST(RetryTest, BackoffIsCappedAtMax) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_us = 100;
  policy.max_backoff_us = 300;
  policy.deadline_us = 1'000'000;
  RetryOutcome outcome;
  Status status = RetryWithBackoff(
      policy, [] { return Status::Unavailable("down"); }, &outcome);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // 100 + 200 + 300 + 300 + 300: growth stops at the cap.
  EXPECT_EQ(outcome.backoff_us, 1200);
}

// ---------------------------------------------------------- CircuitBreaker

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreaker breaker(CircuitBreaker::Options{3, 2});
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_TRUE(breaker.RecordFailure()) << "third consecutive failure trips";
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker(CircuitBreaker::Options{2, 2});
  EXPECT_FALSE(breaker.RecordFailure());
  breaker.RecordSuccess();
  EXPECT_FALSE(breaker.RecordFailure()) << "streak restarted";
  EXPECT_TRUE(breaker.RecordFailure());
}

TEST(CircuitBreakerTest, OpenFailsFastThenHalfOpens) {
  CircuitBreaker breaker(CircuitBreaker::Options{1, 3});
  EXPECT_TRUE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_TRUE(breaker.AllowRequest()) << "third rejection admits a probe";
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, HalfOpenProbeDecidesTheState) {
  CircuitBreaker breaker(CircuitBreaker::Options{1, 1});
  EXPECT_TRUE(breaker.RecordFailure());
  EXPECT_TRUE(breaker.AllowRequest());  // half-open probe
  EXPECT_TRUE(breaker.RecordFailure()) << "failed probe re-opens (a trip)";
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
}

}  // namespace
}  // namespace gsv
