#include <gtest/gtest.h>

#include <memory>

#include "core/algorithm1.h"
#include "core/consistency.h"
#include "core/materialized_view.h"
#include "core/recompute.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "workload/person_db.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

// Fixture owning a base store, a centralized materialized view over it, and
// an Algorithm 1 maintainer wired as a store listener.
class Algorithm1Test : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(BuildPersonDb(&store_).ok()); }

  void MakeView(const std::string& definition) {
    auto def = ViewDefinition::Parse(definition);
    ASSERT_TRUE(def.ok()) << def.status().ToString();
    ASSERT_TRUE(Algorithm1Maintainer::ValidateDefinition(*def).ok());
    view_ = std::make_unique<MaterializedView>(&store_, *def);
    ASSERT_TRUE(view_->Initialize(store_).ok());
    accessor_ = std::make_unique<LocalAccessor>(&store_);
    maintainer_ = std::make_unique<Algorithm1Maintainer>(
        view_.get(), accessor_.get(), *def, Root());
    store_.AddListener(maintainer_.get());
  }

  void ExpectConsistent() {
    ASSERT_TRUE(maintainer_->last_status().ok())
        << maintainer_->last_status().ToString();
    ConsistencyReport report = CheckViewConsistency(*view_, store_);
    EXPECT_TRUE(report.consistent) << report.ToString();
  }

  ObjectStore store_;
  std::unique_ptr<MaterializedView> view_;
  std::unique_ptr<LocalAccessor> accessor_;
  std::unique_ptr<Algorithm1Maintainer> maintainer_;
};

TEST_F(Algorithm1Test, ValidateDefinitionRejectsNonSimple) {
  auto wild = ViewDefinition::Parse(
      "define mview V as: SELECT ROOT.* X WHERE X.name = 'John'");
  ASSERT_TRUE(wild.ok());
  EXPECT_EQ(Algorithm1Maintainer::ValidateDefinition(*wild).code(),
            StatusCode::kInvalidArgument);
}

// Example 5 / Example 6 / Figure 4: insert(P2, A2) with A2 = <age, 40>
// brings P2 into YP = professors with age <= 45.
TEST_F(Algorithm1Test, PaperExample5InsertBringsP2In) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));

  ASSERT_TRUE(store_.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(store_.Insert(P2(), Oid("A2")).ok());

  // Figure 4 (right): YP now holds YP.P1 and YP.P2. (The paper's Example 6
  // step 4 prints "YP.N2" — a typo for YP.P2, per Figure 4.)
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), P2()}));
  EXPECT_TRUE(store_.Contains(Oid("YP.P2")));
  EXPECT_EQ(maintainer_->stats().matched, 1);
  ExpectConsistent();
}

// Example 6 continued: delete(ROOT, P1) removes YP.P1 (select-region case).
TEST_F(Algorithm1Test, PaperExample6DeleteRemovesP1) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  ASSERT_TRUE(store_.Delete(Root(), P1()).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet());
  EXPECT_FALSE(store_.Contains(Oid("YP.P1")));
  ExpectConsistent();
}

// Label mismatch screening: inserting a non-age child of P2 is irrelevant.
TEST_F(Algorithm1Test, IrrelevantLabelIsScreenedOut) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  ASSERT_TRUE(store_.PutAtomic(Oid("H2"), "hobby", Value::Str("golf")).ok());
  ASSERT_TRUE(store_.Insert(P2(), Oid("H2")).ok());
  EXPECT_EQ(maintainer_->stats().matched, 0)
      << "path test fails on label(N2) != age (§5.1 screening)";
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));
  ExpectConsistent();
}

// Inserting a whole subtree at the select level: a new professor object
// with a satisfying age arrives with one edge insert.
TEST_F(Algorithm1Test, InsertSubtreeAtSelectLevel) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  ASSERT_TRUE(store_.PutAtomic(Oid("A9"), "age", Value::Int(30)).ok());
  ASSERT_TRUE(store_.PutSet(Oid("P9"), "professor", {Oid("A9")}).ok());
  ASSERT_TRUE(store_.Insert(Root(), Oid("P9")).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), Oid("P9")}));
  ExpectConsistent();
}

// Condition-region delete with a second witness: P1 has two age children;
// deleting one must NOT remove P1 (the paper's non-unique-label point).
TEST_F(Algorithm1Test, ConditionRegionDeleteKeepsSecondWitness) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  ASSERT_TRUE(store_.PutAtomic(Oid("A1b"), "age", Value::Int(44)).ok());
  ASSERT_TRUE(store_.Insert(P1(), Oid("A1b")).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));

  // Delete the original witness A1: A1b still satisfies, P1 stays.
  ASSERT_TRUE(store_.Delete(P1(), A1()).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));
  EXPECT_GT(maintainer_->stats().rechecks, 0)
      << "the algorithm must re-examine eval(Y, cond_path, cond)";

  // Delete the second witness too: P1 leaves.
  ASSERT_TRUE(store_.Delete(P1(), Oid("A1b")).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet());
  ExpectConsistent();
}

// Modify flips the condition both ways (the modify() case of Algorithm 1).
TEST_F(Algorithm1Test, ModifyTogglesMembership) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  // 45 -> 50: P1 leaves.
  ASSERT_TRUE(store_.Modify(A1(), Value::Int(50)).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet());
  // 50 -> 45: P1 returns.
  ASSERT_TRUE(store_.Modify(A1(), Value::Int(45)).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));
  ExpectConsistent();
}

TEST_F(Algorithm1Test, ModifyIrrelevantValueDoesNothing) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  int64_t matched_before = maintainer_->stats().matched;
  ASSERT_TRUE(store_.Modify(N1(), Value::Str("Johnny")).ok());
  EXPECT_EQ(maintainer_->stats().matched, matched_before)
      << "name is not on professor.age";
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));
  ExpectConsistent();
}

TEST_F(Algorithm1Test, ModifyWithSecondWitnessDoesNotDelete) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  ASSERT_TRUE(store_.PutAtomic(Oid("A1b"), "age", Value::Int(44)).ok());
  ASSERT_TRUE(store_.Insert(P1(), Oid("A1b")).ok());
  // Flip A1 to violating: A1b still supports P1.
  ASSERT_TRUE(store_.Modify(A1(), Value::Int(99)).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));
  ExpectConsistent();
}

// A two-label condition path: deletes can land at either depth of the
// condition region, exercising both q-prefix lengths of the delete case.
TEST_F(Algorithm1Test, DeepConditionRegion) {
  // Professors with a young student: cond path student.age.
  MakeView(
      "define mview YS as: SELECT ROOT.professor X "
      "WHERE X.student.age <= 21");
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));

  // Delete at condition depth 2 (edge P3 -> A3, q = "student"): P1 loses
  // its only witness.
  ASSERT_TRUE(store_.Delete(P3(), A3()).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet());
  // Reinsert: witness returns.
  ASSERT_TRUE(store_.Insert(P3(), A3()).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));

  // Delete at condition depth 1 (edge P1 -> P3, q = empty): same result,
  // different sub-case.
  ASSERT_TRUE(store_.Delete(P1(), P3()).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet());
  ASSERT_TRUE(store_.Insert(P1(), P3()).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));
  ExpectConsistent();
}

// Inserting a subtree into the middle of the condition region: the new
// child carries the witness below it.
TEST_F(Algorithm1Test, InsertSubtreeIntoConditionRegion) {
  MakeView(
      "define mview YS as: SELECT ROOT.professor X "
      "WHERE X.student.age <= 21");
  // P2 has no student; give it one (with a qualifying age) in one insert.
  ASSERT_TRUE(store_.PutAtomic(Oid("A8"), "age", Value::Int(19)).ok());
  ASSERT_TRUE(store_.PutSet(Oid("P8"), "student", {Oid("A8")}).ok());
  ASSERT_TRUE(store_.Insert(P2(), Oid("P8")).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), P2()}));
  ExpectConsistent();
}

// An edge insert that is a silent no-op (duplicate) must not notify and
// must leave the view untouched.
TEST_F(Algorithm1Test, DuplicateEdgeInsertIsInvisible) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  int64_t updates_before = maintainer_->stats().updates;
  ASSERT_TRUE(store_.Insert(Root(), P1()).ok());  // already a child
  EXPECT_EQ(maintainer_->stats().updates, updates_before);
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));
  ExpectConsistent();
}

// Equal-value modifies still notify (the store cannot know whether the
// value is observationally different) but must not change membership.
TEST_F(Algorithm1Test, NoOpModifyKeepsView) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  ASSERT_TRUE(store_.Modify(A1(), Value::Int(45)).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1()}));
  ExpectConsistent();
}

// Views with no WHERE clause: membership tracks reachability only.
TEST_F(Algorithm1Test, TrivialConditionViews) {
  MakeView("define mview PROFS as: SELECT ROOT.professor X");
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), P2()}));

  ASSERT_TRUE(store_.PutSet(Oid("P9"), "professor").ok());
  ASSERT_TRUE(store_.Insert(Root(), Oid("P9")).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), P2(), Oid("P9")}));

  ASSERT_TRUE(store_.Delete(Root(), P2()).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), Oid("P9")}));

  // Modifying any atomic value never changes membership.
  ASSERT_TRUE(store_.Modify(A1(), Value::Int(99)).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), Oid("P9")}));
  ExpectConsistent();
}

// Two-level select path: the select-region cases of insert/delete.
TEST_F(Algorithm1Test, TwoLevelSelectPath) {
  MakeView(
      "define mview YS as: SELECT ROOT.professor.student X "
      "WHERE X.age <= 21");
  EXPECT_EQ(view_->BaseMembers(), OidSet({P3()}));

  // Unlink P1 from ROOT: P3 is no longer reachable via professor.student.
  ASSERT_TRUE(store_.Delete(Root(), P1()).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet());

  // Relink: P3 returns (insert in the select region, witness deep below).
  ASSERT_TRUE(store_.Insert(Root(), P1()).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P3()}));
  ExpectConsistent();
}

// The same object selected through the edge that is deleted, while another
// derivation remains: P3 is a student under ROOT.professor.student via P1.
// Give it a second professor parent, then unlink one.
TEST_F(Algorithm1Test, AlternateDerivationSurvivesDelete) {
  MakeView(
      "define mview YS as: SELECT ROOT.professor.student X "
      "WHERE X.age <= 21");
  ASSERT_TRUE(store_.PutSet(Oid("P8"), "professor", {P3()}).ok());
  ASSERT_TRUE(store_.Insert(Root(), Oid("P8")).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P3()}));

  // Remove P3 from P1: still a student of P8.
  ASSERT_TRUE(store_.Delete(P1(), P3()).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet({P3()}))
      << "candidate verification must notice the surviving derivation";

  // Remove the second derivation too.
  ASSERT_TRUE(store_.Delete(Oid("P8"), P3()).ok());
  EXPECT_EQ(view_->BaseMembers(), OidSet());
  ExpectConsistent();
}

// The PERSON grouping object gives every node a second parent; the
// maintainer must not be fooled into selecting it (candidate verification).
TEST_F(Algorithm1Test, GroupingObjectIsNeverSelected) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  ASSERT_TRUE(store_.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(store_.Insert(P2(), Oid("A2")).ok());
  EXPECT_FALSE(view_->ContainsBase(Person()))
      << "PERSON is an ancestor of A2 via path 'age' but fails "
         "path(ROOT,Y)=sel_path";
  EXPECT_EQ(view_->BaseMembers(), OidSet({P1(), P2()}));
  ExpectConsistent();
}

// Example 7 / Figure 5: the relational-style GSDB.
TEST_F(Algorithm1Test, PaperExample7RelationalStyleInsert) {
  ObjectStore store;
  ASSERT_TRUE(store.PutSet(Oid("REL"), "relations").ok());
  ASSERT_TRUE(store.PutSet(Oid("R"), "r").ok());
  ASSERT_TRUE(store.PutSet(Oid("S"), "s").ok());
  ASSERT_TRUE(store.Insert(Oid("REL"), Oid("R")).ok());
  ASSERT_TRUE(store.Insert(Oid("REL"), Oid("S")).ok());

  auto def = ViewDefinition::Parse(
      "define mview SEL as: SELECT REL.r.tuple X WHERE X.age > 30");
  ASSERT_TRUE(def.ok());
  MaterializedView view(&store, *def);
  ASSERT_TRUE(view.Initialize(store).ok());
  LocalAccessor accessor(&store);
  Algorithm1Maintainer maintainer(&view, &accessor, *def, Oid("REL"));
  store.AddListener(&maintainer);

  // Insert tuple T = <tuple, {A}>, A = <age, 40> into R.
  ASSERT_TRUE(store.PutAtomic(Oid("A"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(store.PutSet(Oid("T"), "tuple", {Oid("A")}).ok());
  ASSERT_TRUE(store.Insert(Oid("R"), Oid("T")).ok());
  EXPECT_EQ(view.BaseMembers(), OidSet({Oid("T")}));
  EXPECT_TRUE(store.Contains(Oid("SEL.T")));

  // Example 7's second update: a tuple inserted into relation s — the
  // algorithm "stops processing after it finds out that path(REL,S) does
  // not match the first label in sel_path".
  ASSERT_TRUE(store.PutAtomic(Oid("A2"), "age", Value::Int(50)).ok());
  ASSERT_TRUE(store.PutSet(Oid("T2"), "tuple", {Oid("A2")}).ok());
  int64_t matched_before = maintainer.stats().matched;
  ASSERT_TRUE(store.Insert(Oid("S"), Oid("T2")).ok());
  EXPECT_EQ(maintainer.stats().matched, matched_before);
  EXPECT_EQ(view.BaseMembers(), OidSet({Oid("T")}));
  EXPECT_TRUE(maintainer.last_status().ok());
  EXPECT_TRUE(CheckViewConsistency(view, store).consistent);
}

// Sync keeps delegate values fresh while membership is maintained.
TEST_F(Algorithm1Test, DelegateValuesStaySynced) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  ASSERT_TRUE(store_.PutAtomic(Oid("H1"), "hobby", Value::Str("chess")).ok());
  ASSERT_TRUE(store_.Insert(P1(), Oid("H1")).ok());
  EXPECT_TRUE(store_.Get(Oid("YP.P1"))->children().Contains(Oid("H1")));
  ASSERT_TRUE(store_.Modify(Oid("H1"), Value::Str("go")).ok());
  // H1 itself has no delegate; only membership-relevant values copy.
  ASSERT_TRUE(store_.Delete(P1(), Oid("H1")).ok());
  EXPECT_FALSE(store_.Get(Oid("YP.P1"))->children().Contains(Oid("H1")));
  ExpectConsistent();
}

// Algorithm 1 against the recompute oracle over a scripted update sequence.
TEST_F(Algorithm1Test, AgreesWithRecomputeOverScriptedSequence) {
  MakeView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");

  ObjectStore oracle_base;
  ASSERT_TRUE(BuildPersonDb(&oracle_base).ok());
  auto def = ViewDefinition::Parse(
      "define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  ObjectStore oracle_store;
  MaterializedView oracle_view(&oracle_store, *def);
  ASSERT_TRUE(oracle_view.Initialize(oracle_base).ok());
  RecomputeMaintainer oracle(&oracle_view, &oracle_base);
  oracle_base.AddListener(&oracle);

  auto apply_both = [&](const Update& update) {
    ASSERT_TRUE(store_.Apply(update).ok());
    ASSERT_TRUE(oracle_base.Apply(update).ok());
  };

  ASSERT_TRUE(store_.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(oracle_base.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  apply_both(Update::Insert(P2(), Oid("A2")));
  apply_both(Update::Modify(A1(), Value::Int(45), Value::Int(50)));
  apply_both(Update::Delete(Root(), P2()));
  apply_both(Update::Modify(A1(), Value::Int(50), Value::Int(20)));
  apply_both(Update::Insert(Root(), P2()));
  apply_both(Update::Delete(P2(), Oid("A2")));

  ASSERT_TRUE(oracle.last_status().ok());
  EXPECT_EQ(view_->BaseMembers(), oracle_view.BaseMembers());
  ExpectConsistent();
}

}  // namespace
}  // namespace gsv
