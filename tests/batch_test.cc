#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/buffered_view.h"
#include "core/consistency.h"
#include "core/virtual_view.h"
#include "oem/oid_table.h"
#include "oem/store.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "warehouse/fault_injector.h"
#include "warehouse/sharded_warehouse.h"
#include "warehouse/sharding.h"
#include "warehouse/update_batch.h"
#include "warehouse/warehouse.h"
#include "workload/dag_gen.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

// ------------------------------------------------------------ OID interning

TEST(OidInterningTest, SameSpellingSameId) {
  Oid a("batch_intern_x");
  Oid b(std::string("batch_intern_x"));
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.str(), "batch_intern_x");
}

TEST(OidInterningTest, OrderingIsLexicographic) {
  // Intern deliberately out of order: ids ascend, spellings do not.
  Oid z("batch_order_z");
  Oid a("batch_order_a");
  EXPECT_LT(a, z);
  EXPECT_FALSE(z < a);
  EXPECT_FALSE(a < a);
}

TEST(OidInterningTest, DelegateAndBaseView) {
  Oid view("MV_intern");
  Oid base("B_intern7");
  Oid delegate = Oid::Delegate(view, base);
  EXPECT_EQ(delegate.str(), "MV_intern.B_intern7");
  EXPECT_TRUE(delegate.IsDelegateOf(view));
  EXPECT_EQ(delegate.BaseView(view), "B_intern7");
  EXPECT_EQ(delegate.BaseIn(view), base);
  EXPECT_FALSE(base.IsDelegateOf(view));
}

TEST(OidInterningTest, ConcurrentInterningIsConsistent) {
  constexpr int kThreads = 8;
  constexpr int kStrings = 500;
  std::vector<std::vector<uint32_t>> ids(kThreads,
                                         std::vector<uint32_t>(kStrings));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &ids] {
      for (int i = 0; i < kStrings; ++i) {
        // Every thread interns the same kStrings spellings.
        Oid oid("batch_conc_" + std::to_string(i));
        ids[t][i] = oid.id();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]) << "thread " << t;
  }
  for (int i = 0; i < kStrings; ++i) {
    EXPECT_EQ(OidTable::Global().String(ids[0][i]),
              "batch_conc_" + std::to_string(i));
  }
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0u);  // no workers: Submit executes inline
  int counter = 0;
  pool.Submit([&counter] { ++counter; });
  EXPECT_EQ(counter, 1);
  pool.Wait();
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { ++counter; });
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

// ------------------------------------------------------------- UpdateBatch

UpdateEvent Insert(const std::string& parent, const std::string& child) {
  UpdateEvent event;
  event.kind = UpdateKind::kInsert;
  event.parent = Oid(parent);
  event.child = Oid(child);
  return event;
}

UpdateEvent Delete(const std::string& parent, const std::string& child) {
  UpdateEvent event = Insert(parent, child);
  event.kind = UpdateKind::kDelete;
  return event;
}

UpdateEvent Modify(const std::string& target, int64_t old_value,
                   int64_t new_value) {
  UpdateEvent event;
  event.kind = UpdateKind::kModify;
  event.parent = Oid(target);
  event.old_value = Value::Int(old_value);
  event.new_value = Value::Int(new_value);
  return event;
}

TEST(UpdateBatchTest, InsertThenDeleteCancels) {
  UpdateBatch batch;
  batch.Add(0, Insert("P", "C"));
  batch.Add(0, Modify("X", 1, 2));  // unrelated event in between
  batch.Add(0, Delete("P", "C"));
  EXPECT_EQ(batch.Coalesce(), 2u);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.events()[0].second.kind, UpdateKind::kModify);
}

TEST(UpdateBatchTest, DeleteThenInsertCancels) {
  UpdateBatch batch;
  batch.Add(0, Delete("P", "C"));
  batch.Add(0, Insert("P", "C"));
  EXPECT_EQ(batch.Coalesce(), 2u);
  EXPECT_TRUE(batch.empty());
}

TEST(UpdateBatchTest, DifferentEdgesDoNotCancel) {
  UpdateBatch batch;
  batch.Add(0, Insert("P", "C1"));
  batch.Add(0, Delete("P", "C2"));
  EXPECT_EQ(batch.Coalesce(), 0u);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(UpdateBatchTest, ModifiesMergeLastWriterWins) {
  UpdateBatch batch;
  batch.Add(0, Modify("X", 1, 2));
  batch.Add(0, Insert("P", "C"));
  batch.Add(0, Modify("X", 2, 3));
  batch.Add(0, Modify("X", 3, 4));
  EXPECT_EQ(batch.Coalesce(), 2u);
  ASSERT_EQ(batch.size(), 2u);
  // The survivor sits where the last modify sat, after the insert.
  EXPECT_EQ(batch.events()[0].second.kind, UpdateKind::kInsert);
  const UpdateEvent& merged = batch.events()[1].second;
  EXPECT_EQ(merged.kind, UpdateKind::kModify);
  ASSERT_TRUE(merged.old_value.has_value());
  ASSERT_TRUE(merged.new_value.has_value());
  EXPECT_EQ(*merged.old_value, Value::Int(1));  // earliest old value
  EXPECT_EQ(*merged.new_value, Value::Int(4));  // latest new value
}

TEST(UpdateBatchTest, CrossSourceEventsNeverInteract) {
  UpdateBatch batch;
  batch.Add(0, Insert("P", "C"));
  batch.Add(1, Delete("P", "C"));
  batch.Add(0, Modify("X", 1, 2));
  batch.Add(1, Modify("X", 2, 3));
  EXPECT_EQ(batch.Coalesce(), 0u);
  EXPECT_EQ(batch.size(), 4u);
}

TEST(UpdateBatchTest, SurvivorOrderIsPreserved) {
  UpdateBatch batch;
  batch.Add(0, Insert("A", "B"));
  batch.Add(0, Insert("P", "C"));
  batch.Add(0, Insert("D", "E"));
  batch.Add(0, Delete("P", "C"));
  batch.Add(0, Insert("F", "G"));
  EXPECT_EQ(batch.Coalesce(), 2u);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.events()[0].second.child, Oid("B"));
  EXPECT_EQ(batch.events()[1].second.child, Oid("E"));
  EXPECT_EQ(batch.events()[2].second.child, Oid("G"));
}

TEST(UpdateBatchTest, ReinsertedEdgeCancelsPairwise) {
  // insert, delete, insert: the first pair cancels, the last insert stays —
  // the net effect (edge present) is preserved.
  UpdateBatch batch;
  batch.Add(0, Insert("P", "C"));
  batch.Add(0, Delete("P", "C"));
  batch.Add(0, Insert("P", "C"));
  EXPECT_EQ(batch.Coalesce(), 2u);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.events()[0].second.kind, UpdateKind::kInsert);
}

// ------------------------------------------------- batched == sequential

struct DeterminismConfig {
  std::string name;
  ReportingLevel level = ReportingLevel::kWithValues;
  Warehouse::CacheMode cache = Warehouse::CacheMode::kNone;
  size_t threads = 4;
  bool coalesce = true;
  bool split_subtrees = true;
};

// Drives two warehouses over identical sources with the identical update
// stream: one inline (per-event Maintain, the §4.3 baseline), one deferred
// through the batch engine. After every drain the views must be
// byte-identical — same members, same delegate labels and values, same view
// object value.
void RunDeterminismCheck(const DeterminismConfig& config) {
  SCOPED_TRACE(config.name);
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 4;
  tree_options.seed = 101;

  ObjectStore source_a;
  ObjectStore source_b;
  auto tree_a = GenerateTree(&source_a, tree_options);
  auto tree_b = GenerateTree(&source_b, tree_options);
  ASSERT_TRUE(tree_a.ok());
  ASSERT_TRUE(tree_b.ok());
  ASSERT_EQ(tree_a->root, tree_b->root);

  const std::string definition =
      TreeViewDefinition("WV", tree_a->root, 2, 3, 50);

  ObjectStore store_a;
  Warehouse inline_wh(&store_a);
  ASSERT_TRUE(
      inline_wh.ConnectSource(&source_a, tree_a->root, config.level).ok());
  ASSERT_TRUE(inline_wh.DefineView(definition, config.cache).ok());

  ObjectStore store_b;
  Warehouse batch_wh(&store_b);
  ASSERT_TRUE(
      batch_wh.ConnectSource(&source_b, tree_b->root, config.level).ok());
  ASSERT_TRUE(batch_wh.DefineView(definition, config.cache).ok());
  batch_wh.set_deferred(true);

  Warehouse::BatchOptions options;
  options.threads = config.threads;
  options.coalesce = config.coalesce;
  options.split_subtrees = config.split_subtrees;

  UpdateGenOptions gen_options;
  gen_options.seed = 211;
  UpdateGenerator gen_a(&source_a, tree_a->root, gen_options);
  UpdateGenerator gen_b(&source_b, tree_b->root, gen_options);

  const size_t kUpdates = 1000;
  const size_t kDrainEvery = 64;
  for (size_t applied = 0; applied < kUpdates; applied += kDrainEvery) {
    size_t burst = std::min(kDrainEvery, kUpdates - applied);
    ASSERT_TRUE(gen_a.Run(burst).ok());
    ASSERT_TRUE(gen_b.Run(burst).ok());
    ASSERT_TRUE(batch_wh.ProcessPendingBatch(options).ok())
        << batch_wh.last_status().ToString();

    MaterializedView* view_a = inline_wh.view("WV");
    MaterializedView* view_b = batch_wh.view("WV");
    ASSERT_NE(view_a, nullptr);
    ASSERT_NE(view_b, nullptr);
    OidSet members_a = view_a->BaseMembers();
    ASSERT_EQ(members_a, view_b->BaseMembers()) << "after " << applied + burst;

    // Delegate-for-delegate equality of the two warehouse stores.
    const Object* object_a = store_a.Get(view_a->view_oid());
    const Object* object_b = store_b.Get(view_b->view_oid());
    ASSERT_NE(object_a, nullptr);
    ASSERT_NE(object_b, nullptr);
    ASSERT_EQ(object_a->value(), object_b->value());
    for (const Oid& member : members_a) {
      Oid delegate = Oid::Delegate(view_a->view_oid(), member);
      const Object* delegate_a = store_a.Get(delegate);
      const Object* delegate_b = store_b.Get(delegate);
      ASSERT_NE(delegate_a, nullptr) << delegate.str();
      ASSERT_NE(delegate_b, nullptr) << delegate.str();
      ASSERT_EQ(delegate_a->label(), delegate_b->label()) << delegate.str();
      ASSERT_EQ(delegate_a->value(), delegate_b->value()) << delegate.str();
    }

    // Both must also equal the truth over the current source.
    auto def = ViewDefinition::Parse(definition);
    ASSERT_TRUE(def.ok());
    auto truth = EvaluateView(source_b, *def);
    ASSERT_TRUE(truth.ok());
    ASSERT_EQ(view_b->BaseMembers(), *truth);
    ConsistencyReport report = CheckViewConsistency(*view_b, source_b);
    ASSERT_TRUE(report.consistent) << report.ToString();
  }
}

TEST(BatchDeterminismTest, Level2NoCache) {
  RunDeterminismCheck({"level2_nocache", ReportingLevel::kWithValues,
                       Warehouse::CacheMode::kNone, 4, true, true});
}

TEST(BatchDeterminismTest, Level2FullCache) {
  RunDeterminismCheck({"level2_full", ReportingLevel::kWithValues,
                       Warehouse::CacheMode::kFull, 4, true, true});
}

TEST(BatchDeterminismTest, Level3FullCache) {
  RunDeterminismCheck({"level3_full", ReportingLevel::kWithRootPath,
                       Warehouse::CacheMode::kFull, 4, true, true});
}

TEST(BatchDeterminismTest, Level1NoCache) {
  RunDeterminismCheck({"level1_nocache", ReportingLevel::kOidsOnly,
                       Warehouse::CacheMode::kNone, 4, true, true});
}

TEST(BatchDeterminismTest, SingleThreadNoCoalesceNoSplit) {
  RunDeterminismCheck({"plain", ReportingLevel::kWithValues,
                       Warehouse::CacheMode::kNone, 1, false, false});
}

TEST(BatchDeterminismTest, EightThreads) {
  RunDeterminismCheck({"threads8", ReportingLevel::kWithValues,
                       Warehouse::CacheMode::kLabelsOnly, 8, true, true});
}

// Thread counts must not change the outcome: run the same stream at 1, 2
// and 4 workers and require identical members.
TEST(BatchDeterminismTest, ThreadCountInvariant) {
  std::vector<OidSet> results;
  for (size_t threads : {1u, 2u, 4u}) {
    TreeGenOptions tree_options;
    tree_options.levels = 3;
    tree_options.fanout = 3;
    tree_options.seed = 7;
    ObjectStore source;
    auto tree = GenerateTree(&source, tree_options);
    ASSERT_TRUE(tree.ok());
    ObjectStore store;
    Warehouse warehouse(&store);
    ASSERT_TRUE(warehouse
                    .ConnectSource(&source, tree->root,
                                   ReportingLevel::kWithValues)
                    .ok());
    ASSERT_TRUE(
        warehouse.DefineView(TreeViewDefinition("WV", tree->root, 2, 3, 50))
            .ok());
    warehouse.set_deferred(true);
    UpdateGenOptions gen_options;
    gen_options.seed = 17;
    UpdateGenerator generator(&source, tree->root, gen_options);
    ASSERT_TRUE(generator.Run(400).ok());
    Warehouse::BatchOptions options;
    options.threads = threads;
    ASSERT_TRUE(warehouse.ProcessPendingBatch(options).ok());
    results.push_back(warehouse.view("WV")->BaseMembers());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(BatchDeterminismTest, CoalescingIsCounted) {
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 3;
  tree_options.seed = 23;
  ObjectStore source;
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());
  ObjectStore store;
  Warehouse warehouse(&store);
  ASSERT_TRUE(
      warehouse
          .ConnectSource(&source, tree->root, ReportingLevel::kWithValues)
          .ok());
  ASSERT_TRUE(
      warehouse.DefineView(TreeViewDefinition("WV", tree->root, 2, 3, 50))
          .ok());
  warehouse.set_deferred(true);
  UpdateGenOptions gen_options;
  gen_options.seed = 31;
  gen_options.p_modify = 0.7;  // modify-heavy: plenty to merge
  gen_options.p_insert = 0.15;
  gen_options.p_delete = 0.15;
  UpdateGenerator generator(&source, tree->root, gen_options);
  ASSERT_TRUE(generator.Run(500).ok());
  ASSERT_TRUE(warehouse.ProcessPendingBatch().ok());
  EXPECT_GT(warehouse.costs().events_coalesced.load(), 0);
}

// ------------------------------------------------- fault tolerance

namespace {

struct BatchFaultRig {
  ObjectStore source;
  ObjectStore store;
  std::unique_ptr<Warehouse> warehouse;
  std::string definition;
  Oid root;

  void Build(ReportingLevel level,
             Warehouse::CacheMode cache = Warehouse::CacheMode::kNone) {
    TreeGenOptions tree_options;
    tree_options.levels = 3;
    tree_options.fanout = 4;
    tree_options.seed = 101;
    auto tree = GenerateTree(&source, tree_options);
    ASSERT_TRUE(tree.ok());
    root = tree->root;
    definition = TreeViewDefinition("WV", root, 2, 3, 50);
    warehouse = std::make_unique<Warehouse>(&store);
    ASSERT_TRUE(warehouse->ConnectSource(&source, root, level).ok());
    ASSERT_TRUE(warehouse->DefineView(definition, cache).ok());
    warehouse->set_deferred(true);
  }

  void ExpectMatchesTruth() {
    auto def = ViewDefinition::Parse(definition);
    ASSERT_TRUE(def.ok());
    auto truth = EvaluateView(source, *def);
    ASSERT_TRUE(truth.ok());
    MaterializedView* view = warehouse->view("WV");
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->BaseMembers(), *truth);
    ConsistencyReport report = CheckViewConsistency(*view, source);
    EXPECT_TRUE(report.consistent) << report.ToString();
  }
};

}  // namespace

TEST(BatchFaultToleranceTest, DuplicateDeliveriesAreIdempotentInBatchDrain) {
  BatchFaultRig rig;
  rig.Build(ReportingLevel::kWithValues);
  FaultInjector injector(FaultProfile{});
  ASSERT_TRUE(rig.warehouse->SetFaultInjector("source1", &injector).ok());
  injector.DuplicateNextEvents(1000);  // every delivery arrives twice

  UpdateGenOptions gen_options;
  gen_options.seed = 211;
  UpdateGenerator gen(&rig.source, rig.root, gen_options);
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(gen.Run(100).ok());
    ASSERT_TRUE(rig.warehouse->ProcessPendingBatch().ok())
        << rig.warehouse->last_status().ToString();
  }
  EXPECT_GT(rig.warehouse->costs().events_duplicate_dropped, 0);
  EXPECT_EQ(rig.warehouse->costs().events_gap_detected, 0);
  EXPECT_EQ(rig.warehouse->stale_view_count(), 0u);
  rig.ExpectMatchesTruth();
}

TEST(BatchFaultToleranceTest, GapQuarantinesAndBatchLeavesViewUntouched) {
  BatchFaultRig rig;
  rig.Build(ReportingLevel::kWithValues, Warehouse::CacheMode::kFull);
  FaultInjector injector(FaultProfile{});
  ASSERT_TRUE(rig.warehouse->SetFaultInjector("source1", &injector).ok());

  // Healthy warm-up drain, then snapshot the consistent state.
  UpdateGenOptions gen_options;
  gen_options.seed = 211;
  UpdateGenerator gen(&rig.source, rig.root, gen_options);
  ASSERT_TRUE(gen.Run(50).ok());
  ASSERT_TRUE(rig.warehouse->ProcessPendingBatch().ok());
  const OidSet before = rig.warehouse->view("WV")->BaseMembers();

  // Lose the next delivery while the source is unreachable: the gap
  // quarantines the view and the drain must not half-apply the batch.
  injector.DropNextEvents(1);
  injector.set_down(true);
  ASSERT_TRUE(gen.Run(60).ok());
  ASSERT_TRUE(rig.warehouse->ProcessPendingBatch().ok())
      << "quarantine is graceful";
  EXPECT_GE(rig.warehouse->costs().events_gap_detected, 1);
  EXPECT_EQ(rig.warehouse->view_health("WV"), Warehouse::ViewHealth::kStale);
  EXPECT_GT(rig.warehouse->buffered_stale_events(), 0u);
  EXPECT_EQ(rig.warehouse->view("WV")->BaseMembers(), before)
      << "stale view must keep its last consistent contents";

  // Recovery: once the channel heals, the next drain's prologue resyncs.
  injector.Heal();
  ASSERT_TRUE(rig.warehouse->ProcessPendingBatch().ok());
  EXPECT_EQ(rig.warehouse->stale_view_count(), 0u);
  EXPECT_EQ(rig.warehouse->buffered_stale_events(), 0u);
  EXPECT_GE(rig.warehouse->costs().view_resyncs, 1);
  rig.ExpectMatchesTruth();
}

TEST(BatchFaultToleranceTest, MidBatchSourceOutageBuffersTheWholeSlice) {
  // kOidsOnly makes every relevant event query back, so an outage that
  // starts after delivery but before the drain is guaranteed to surface
  // inside phase 2 — the all-or-nothing replay path.
  BatchFaultRig rig;
  rig.Build(ReportingLevel::kOidsOnly);
  FaultInjector injector(FaultProfile{});
  ASSERT_TRUE(rig.warehouse->SetFaultInjector("source1", &injector).ok());

  UpdateGenOptions gen_options;
  gen_options.seed = 211;
  UpdateGenerator gen(&rig.source, rig.root, gen_options);
  ASSERT_TRUE(gen.Run(50).ok());
  ASSERT_TRUE(rig.warehouse->ProcessPendingBatch().ok());
  const OidSet before = rig.warehouse->view("WV")->BaseMembers();

  ASSERT_TRUE(gen.Run(40).ok());   // delivered in full, sequence intact
  injector.set_down(true);         // ...but the source dies before the drain
  ASSERT_TRUE(rig.warehouse->ProcessPendingBatch().ok());
  EXPECT_EQ(rig.warehouse->view_health("WV"), Warehouse::ViewHealth::kStale);
  EXPECT_EQ(rig.warehouse->view("WV")->BaseMembers(), before)
      << "a failed batch must not half-apply";
  EXPECT_GT(rig.warehouse->buffered_stale_events(), 0u);
  EXPECT_GT(rig.warehouse->costs().wrapper_failures, 0);

  // The outage tripped the circuit breaker, so the gentle drain-prologue
  // probe fails fast; the explicit resync forces through it.
  injector.Heal();
  ASSERT_TRUE(rig.warehouse->ResyncStaleViews().ok());
  EXPECT_EQ(rig.warehouse->stale_view_count(), 0u);
  rig.ExpectMatchesTruth();
}

// ----------------------------------------------- sharded == single shard

namespace {

// Twin rig: one source store feeds both a plain warehouse and a K-shard
// ShardedWarehouse, each through its own monitor, so both observe the
// identical update stream. After every drain the sharded read path
// (fan-out + K-way merge) must reproduce the plain warehouse's view byte
// for byte — same members in the same order, same delegate content lines.
struct ShardedTwinConfig {
  std::string name;
  uint32_t shards = 4;
  size_t threads = 4;
  bool dag = false;         // §6 DAG workload instead of a tree
  uint64_t seed = 1;
  size_t updates = 300;
  size_t drain_every = 50;
};

void ExpectShardedMatchesPlain(ShardedWarehouse& sharded, Warehouse& plain,
                               const std::string& view_name) {
  MaterializedView* view = plain.view(view_name);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(sharded.ViewMembers(view_name), view->BaseMembers().elements());
  const auto plain_lines = ViewContentLines(*view);
  const auto sharded_lines = sharded.ViewContents(view_name);
  ASSERT_EQ(sharded_lines.size(), plain_lines.size());
  for (size_t i = 0; i < plain_lines.size(); ++i) {
    ASSERT_EQ(sharded_lines[i].first, plain_lines[i].first) << "member " << i;
    ASSERT_EQ(sharded_lines[i].second, plain_lines[i].second)
        << sharded_lines[i].first.str();
  }
}

void RunShardedTwinCheck(const ShardedTwinConfig& config) {
  SCOPED_TRACE(config.name);
  ObjectStore source;
  Oid root;
  std::string definition;
  UpdateGenOptions gen_options;
  gen_options.seed = config.seed + 7;
  // Distinct OID prefixes per config keep the interned id assignment (and
  // hence the shard split) independent of test execution order.
  const std::string prefix = "tw_" + config.name + "_";
  if (config.dag) {
    DagGenOptions dag_options;
    dag_options.levels = 4;
    dag_options.width = 12;
    dag_options.max_parents = 3;
    dag_options.seed = config.seed;
    dag_options.oid_prefix = prefix;
    auto dag = GenerateDag(&source, dag_options);
    ASSERT_TRUE(dag.ok());
    root = dag->root;
    definition = DagViewDefinition("WV", root, 2, 4, 60);
    gen_options.mode = UpdateMode::kDagPreserving;
  } else {
    TreeGenOptions tree_options;
    tree_options.levels = 4;
    tree_options.fanout = 4;
    tree_options.seed = config.seed;
    tree_options.oid_prefix = prefix;
    auto tree = GenerateTree(&source, tree_options);
    ASSERT_TRUE(tree.ok());
    root = tree->root;
    definition = TreeViewDefinition("WV", root, 2, 4, 60);
  }
  gen_options.oid_prefix = prefix + "u";

  ObjectStore plain_store;
  Warehouse plain(&plain_store);
  ASSERT_TRUE(
      plain.ConnectSource(&source, root, ReportingLevel::kWithValues).ok());
  ASSERT_TRUE(plain.DefineView(definition).ok());
  plain.set_deferred(true);

  ShardedWarehouse sharded(config.shards);
  ASSERT_TRUE(sharded.init_status().ok());
  ASSERT_TRUE(
      sharded.ConnectSource(&source, root, ReportingLevel::kWithValues).ok());
  ASSERT_TRUE(sharded.DefineView(definition).ok());
  sharded.set_deferred(true);

  // The initial materializations must already agree.
  ExpectShardedMatchesPlain(sharded, plain, "WV");

  UpdateGenerator gen(&source, root, gen_options);
  for (size_t applied = 0; applied < config.updates;
       applied += config.drain_every) {
    size_t burst = std::min(config.drain_every, config.updates - applied);
    ASSERT_TRUE(gen.Run(burst).ok());
    ASSERT_TRUE(plain.ProcessPendingBatch().ok())
        << plain.last_status().ToString();
    ASSERT_TRUE(sharded.ProcessPendingBatch(config.threads).ok());
    ExpectShardedMatchesPlain(sharded, plain, "WV");

    // Both twins must equal the query over current source state.
    auto def = ViewDefinition::Parse(definition);
    ASSERT_TRUE(def.ok());
    auto truth = EvaluateView(source, *def);
    ASSERT_TRUE(truth.ok());
    EXPECT_EQ(sharded.ViewMembers("WV"), truth->elements())
        << "after " << applied + burst;
  }

  if (config.shards > 1) {
    // The split is real: members land on more than one shard, and the
    // maintenance ran through the cross-shard machinery.
    const ShardedViewExplanation explain = sharded.ExplainView("WV");
    size_t populated = 0;
    for (size_t count : explain.members_per_shard) populated += count > 0;
    EXPECT_GT(populated, 1u) << explain.ToString();
    const WarehouseCosts costs = sharded.MergedCosts();
    EXPECT_GT(costs.cross_shard_exports + costs.cross_shard_applies +
                  costs.cross_shard_probes,
              0)
        << "twin never exercised a cross-shard edge";
  }
}

}  // namespace

TEST(ShardedTwinTest, TreeOneShardDegenerate) {
  RunShardedTwinCheck({"tree_k1", 1, 1, false, 11});
}

TEST(ShardedTwinTest, TreeTwoShards) {
  RunShardedTwinCheck({"tree_k2", 2, 2, false, 12});
}

TEST(ShardedTwinTest, TreeFourShards) {
  RunShardedTwinCheck({"tree_k4", 4, 4, false, 13});
}

TEST(ShardedTwinTest, TreeEightShardsEightThreads) {
  RunShardedTwinCheck({"tree_k8", 8, 8, false, 14});
}

TEST(ShardedTwinTest, DagTwoShards) {
  RunShardedTwinCheck({"dag_k2", 2, 2, true, 15});
}

TEST(ShardedTwinTest, DagFourShards) {
  RunShardedTwinCheck({"dag_k4", 4, 4, true, 16});
}

TEST(ShardedTwinTest, RandomSeedsStayByteIdentical) {
  for (uint64_t seed = 20; seed < 24; ++seed) {
    RunShardedTwinCheck({"tree_rand" + std::to_string(seed), 4, 4, false,
                         seed, 150, 30});
    RunShardedTwinCheck({"dag_rand" + std::to_string(seed), 4, 4, true, seed,
                         150, 30});
  }
}

TEST(ShardedTwinTest, ThreadCountDoesNotChangeResults) {
  // Same events, different drain parallelism: contents must not depend on
  // how many workers the coordinator uses.
  RunShardedTwinCheck({"tree_k4_t1", 4, 1, false, 31});
  RunShardedTwinCheck({"tree_k4_t8", 4, 8, false, 31});
}

}  // namespace
}  // namespace gsv
