#include <gtest/gtest.h>

#include "oem/store.h"
#include "path/navigate.h"
#include "path/path.h"
#include "path/path_expression.h"
#include "workload/person_db.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

// ---------------------------------------------------------------- Path

TEST(PathTest, ParseBasics) {
  Result<Path> path = Path::Parse("professor.student");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->size(), 2u);
  EXPECT_EQ(path->label(0), "professor");
  EXPECT_EQ(path->label(1), "student");
  EXPECT_EQ(path->ToString(), "professor.student");
}

TEST(PathTest, EmptyPathIsValid) {
  Result<Path> path = Path::Parse("");
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->empty());
  EXPECT_EQ(path->ToString(), "");
}

TEST(PathTest, ParseRejectsBadLabels) {
  EXPECT_FALSE(Path::Parse("a..b").ok());
  EXPECT_FALSE(Path::Parse(".a").ok());
  EXPECT_FALSE(Path::Parse("a.").ok());
  EXPECT_FALSE(Path::Parse("a.*").ok()) << "wildcards are not plain paths";
  EXPECT_FALSE(Path::Parse("a.?").ok());
  EXPECT_FALSE(Path::Parse("a b").ok());
}

TEST(PathTest, PrefixSuffixConcat) {
  Path path = *Path::Parse("a.b.c");
  EXPECT_EQ(path.Prefix(2).ToString(), "a.b");
  EXPECT_EQ(path.Suffix(1).ToString(), "b.c");
  EXPECT_EQ(path.Prefix(0).ToString(), "");
  EXPECT_EQ(path.Suffix(3).ToString(), "");
  EXPECT_EQ(path.Prefix(99).ToString(), "a.b.c") << "clamped";
  EXPECT_EQ(path.Prefix(1).Concat(path.Suffix(1)).ToString(), "a.b.c");
}

TEST(PathTest, StartsEndsWith) {
  Path path = *Path::Parse("a.b.c");
  EXPECT_TRUE(path.StartsWith(*Path::Parse("a.b")));
  EXPECT_TRUE(path.StartsWith(Path()));
  EXPECT_TRUE(path.StartsWith(path));
  EXPECT_FALSE(path.StartsWith(*Path::Parse("b")));
  EXPECT_TRUE(path.EndsWith(*Path::Parse("b.c")));
  EXPECT_FALSE(path.EndsWith(*Path::Parse("a.c")));
  EXPECT_FALSE(Path().StartsWith(path));
}

// ------------------------------------------------------ PathExpression

TEST(PathExpressionTest, ParseForms) {
  EXPECT_TRUE(PathExpression::Parse("*").ok());
  EXPECT_TRUE(PathExpression::Parse("professor.*").ok());
  EXPECT_TRUE(PathExpression::Parse("professor.?").ok());
  EXPECT_TRUE(PathExpression::Parse("a.?.b.*").ok());
  EXPECT_TRUE(PathExpression::Parse("").ok());
  EXPECT_FALSE(PathExpression::Parse("a..b").ok());
}

TEST(PathExpressionTest, ConstantDetection) {
  EXPECT_TRUE(PathExpression::Parse("a.b")->IsConstant());
  EXPECT_FALSE(PathExpression::Parse("a.*")->IsConstant());
  EXPECT_FALSE(PathExpression::Parse("a.?")->IsConstant());
  EXPECT_EQ(PathExpression::Parse("a.b")->ToPath().ToString(), "a.b");
}

TEST(PathExpressionTest, RoundTripToString) {
  for (const char* text : {"*", "a.*.b", "a.?.b", "", "x"}) {
    EXPECT_EQ(PathExpression::Parse(text)->ToString(), text);
  }
}

TEST(PathExpressionTest, MatchesConstant) {
  PathExpression expr = *PathExpression::Parse("a.b");
  EXPECT_TRUE(expr.Matches(*Path::Parse("a.b")));
  EXPECT_FALSE(expr.Matches(*Path::Parse("a")));
  EXPECT_FALSE(expr.Matches(*Path::Parse("a.b.c")));
}

TEST(PathExpressionTest, MatchesAnyLabel) {
  PathExpression expr = *PathExpression::Parse("a.?");
  EXPECT_TRUE(expr.Matches(*Path::Parse("a.b")));
  EXPECT_TRUE(expr.Matches(*Path::Parse("a.z")));
  EXPECT_FALSE(expr.Matches(*Path::Parse("a")));
  EXPECT_FALSE(expr.Matches(*Path::Parse("a.b.c")));
}

TEST(PathExpressionTest, MatchesAnyPath) {
  PathExpression star = *PathExpression::Parse("*");
  EXPECT_TRUE(star.Matches(Path()));
  EXPECT_TRUE(star.Matches(*Path::Parse("a.b.c")));

  PathExpression expr = *PathExpression::Parse("a.*.c");
  EXPECT_TRUE(expr.Matches(*Path::Parse("a.c")));
  EXPECT_TRUE(expr.Matches(*Path::Parse("a.b.c")));
  EXPECT_TRUE(expr.Matches(*Path::Parse("a.x.y.c")));
  EXPECT_FALSE(expr.Matches(*Path::Parse("a.b")));
  EXPECT_FALSE(expr.Matches(*Path::Parse("b.c")));
}

TEST(PathExpressionTest, EmptyExpressionMatchesOnlyEmptyPath) {
  PathExpression expr = *PathExpression::Parse("");
  EXPECT_TRUE(expr.Matches(Path()));
  EXPECT_FALSE(expr.Matches(*Path::Parse("a")));
}

TEST(PathExpressionTest, MinMaxLength) {
  EXPECT_EQ(PathExpression::Parse("a.?.b")->MinLength(), 3u);
  EXPECT_EQ(PathExpression::Parse("a.?.b")->MaxLength(), 3);
  EXPECT_EQ(PathExpression::Parse("a.*.b")->MinLength(), 2u);
  EXPECT_EQ(PathExpression::Parse("a.*.b")->MaxLength(), -1);
  EXPECT_EQ(PathExpression::Parse("*")->MinLength(), 0u);
}

TEST(PathExpressionTest, ContainmentBasics) {
  auto star = *PathExpression::Parse("*");
  auto a = *PathExpression::Parse("a");
  auto a_star = *PathExpression::Parse("a.*");
  auto a_q = *PathExpression::Parse("a.?");
  auto a_b = *PathExpression::Parse("a.b");

  // * contains everything (§6: "any path p is contained in *").
  EXPECT_TRUE(star.Contains(a));
  EXPECT_TRUE(star.Contains(a_star));
  EXPECT_TRUE(star.Contains(star));
  EXPECT_FALSE(a.Contains(star));

  EXPECT_TRUE(a_star.Contains(a_b));
  EXPECT_TRUE(a_star.Contains(a)) << "* matches the empty path";
  EXPECT_TRUE(a_star.Contains(a_q));
  EXPECT_FALSE(a_q.Contains(a_star));
  EXPECT_TRUE(a_q.Contains(a_b));
  EXPECT_FALSE(a_b.Contains(a_q));
  EXPECT_TRUE(a_b.Contains(a_b));
  EXPECT_FALSE(a_b.Contains(a));
}

TEST(PathExpressionTest, ContainmentTricky) {
  auto star_a_star = *PathExpression::Parse("*.a.*");
  auto b_a = *PathExpression::Parse("b.a");
  auto a = *PathExpression::Parse("a");
  auto b = *PathExpression::Parse("b");
  EXPECT_TRUE(star_a_star.Contains(b_a));
  EXPECT_TRUE(star_a_star.Contains(a));
  EXPECT_FALSE(star_a_star.Contains(b));

  auto q_q = *PathExpression::Parse("?.?");
  auto star_star = *PathExpression::Parse("*.*");
  EXPECT_TRUE(star_star.Contains(q_q));
  EXPECT_FALSE(q_q.Contains(star_star));
  // *.* is equivalent to *.
  auto star = *PathExpression::Parse("*");
  EXPECT_TRUE(star.Contains(star_star));
  EXPECT_TRUE(star_star.Contains(star));
}

// ------------------------------------------------------------ Navigate

class NavigateTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(BuildPersonDb(&store_).ok()); }
  ObjectStore store_;
};

TEST_F(NavigateTest, EvalPathFollowsLabels) {
  // A1 ∈ ROOT.professor.age (paper §2 example).
  OidSet ages = EvalPath(store_, Root(), *Path::Parse("professor.age"));
  EXPECT_TRUE(ages.Contains(A1()));
  EXPECT_EQ(ages.size(), 1u);

  OidSet profs = EvalPath(store_, Root(), *Path::Parse("professor"));
  EXPECT_EQ(profs, OidSet({P1(), P2()}));
}

TEST_F(NavigateTest, EvalEmptyPathIsSelf) {
  EXPECT_EQ(EvalPath(store_, P1(), Path()), OidSet({P1()}));
  EXPECT_TRUE(EvalPath(store_, Oid("missing"), Path()).empty());
}

TEST_F(NavigateTest, EvalPathHonorsFilter) {
  // Hide A1: the professor.age path then finds nothing.
  auto filter = [](const Oid& oid) { return oid != A1(); };
  OidSet ages =
      EvalPath(store_, Root(), *Path::Parse("professor.age"), filter);
  EXPECT_TRUE(ages.empty());
}

TEST_F(NavigateTest, EvalExpressionStar) {
  // ROOT.* reaches every descendant (and ROOT itself via the empty path).
  OidSet all = EvalExpression(store_, Root(), *PathExpression::Parse("*"));
  EXPECT_TRUE(all.Contains(Root()));
  EXPECT_TRUE(all.Contains(P1()));
  EXPECT_TRUE(all.Contains(A3()));
  EXPECT_EQ(all.size(), 15u);
}

TEST_F(NavigateTest, EvalExpressionDotted) {
  // ROOT.*.professor = professors at any depth = {P1, P2} (§3.1 PROF view).
  OidSet profs =
      EvalExpression(store_, Root(), *PathExpression::Parse("*.professor"));
  EXPECT_EQ(profs, OidSet({P1(), P2()}));

  // professor.? = all direct children of professors.
  OidSet children =
      EvalExpression(store_, Root(), *PathExpression::Parse("professor.?"));
  EXPECT_EQ(children,
            OidSet({N1(), A1(), S1(), P3(), N2(), Add2()}));
}

TEST_F(NavigateTest, EvalExpressionOnCycleTerminates) {
  ObjectStore store;
  ASSERT_TRUE(store.PutSet(Oid("X"), "node").ok());
  ASSERT_TRUE(store.PutSet(Oid("Y"), "node").ok());
  ASSERT_TRUE(store.Insert(Oid("X"), Oid("Y")).ok());
  ASSERT_TRUE(store.Insert(Oid("Y"), Oid("X")).ok());
  OidSet all = EvalExpression(store, Oid("X"), *PathExpression::Parse("*"));
  EXPECT_EQ(all, OidSet({Oid("X"), Oid("Y")}));
}

TEST_F(NavigateTest, AncestorsByPath) {
  // ancestor(A1, "age") = P1 plus the PERSON grouping object (A1 is a
  // direct child of both and has label age).
  std::vector<Oid> ancestors =
      AncestorsByPath(store_, A1(), *Path::Parse("age"));
  EXPECT_EQ(OidSet(ancestors), OidSet({P1(), Person()}));

  // ancestor(A3, "student.age") = ROOT and P1 (P3 is a child of both),
  // plus PERSON (P3 is also a member of the database object).
  ancestors = AncestorsByPath(store_, A3(), *Path::Parse("student.age"));
  EXPECT_EQ(OidSet(ancestors), OidSet({Root(), P1(), Person()}));

  // Label mismatch at the target: no ancestors.
  EXPECT_TRUE(AncestorsByPath(store_, A1(), *Path::Parse("name")).empty());
  // Empty path: the object itself.
  EXPECT_EQ(AncestorsByPath(store_, A1(), Path()), std::vector<Oid>{A1()});
}

TEST_F(NavigateTest, PathsFromTo) {
  std::vector<Path> paths = PathsFromTo(store_, Root(), A1());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].ToString(), "professor.age");

  // P3 is reachable from ROOT directly and through P1.
  paths = PathsFromTo(store_, Root(), P3());
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].ToString(), "professor.student");
  EXPECT_EQ(paths[1].ToString(), "student");

  // Self path.
  paths = PathsFromTo(store_, Root(), Root());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].empty());

  EXPECT_TRUE(PathsFromTo(store_, A1(), Root()).empty()) << "wrong direction";
}

TEST_F(NavigateTest, HasPathFromTo) {
  EXPECT_TRUE(HasPathFromTo(store_, Root(), A1(), *Path::Parse("professor.age")));
  EXPECT_FALSE(HasPathFromTo(store_, Root(), A1(), *Path::Parse("age")));
  EXPECT_TRUE(HasPathFromTo(store_, Root(), P3(), *Path::Parse("student")));
  EXPECT_TRUE(
      HasPathFromTo(store_, Root(), P3(), *Path::Parse("professor.student")));
  EXPECT_TRUE(HasPathFromTo(store_, Root(), Root(), Path()));
  EXPECT_FALSE(HasPathFromTo(store_, Root(), P1(), Path()));
}

TEST_F(NavigateTest, PathsFromToRespectsMaxPaths) {
  std::vector<Path> paths = PathsFromTo(store_, Root(), P3(), /*max_paths=*/1);
  EXPECT_EQ(paths.size(), 1u);
}

TEST_F(NavigateTest, PathsFromToHonorsFilter) {
  // Hide P1: the professor.student derivation of P3 disappears, the direct
  // one remains (WITHIN-scoped reverse navigation).
  auto filter = [](const Oid& oid) { return oid != P1(); };
  std::vector<Path> paths =
      PathsFromTo(store_, Root(), P3(), 16, 256, filter);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].ToString(), "student");

  // Hiding the target itself yields nothing.
  auto hide_target = [](const Oid& oid) { return oid != P3(); };
  EXPECT_TRUE(PathsFromTo(store_, Root(), P3(), 16, 256, hide_target).empty());
}

TEST_F(NavigateTest, EvalExpressionHonorsFilter) {
  auto filter = [](const Oid& oid) { return oid != P1(); };
  OidSet reachable =
      EvalExpression(store_, Root(), *PathExpression::Parse("*"), filter);
  EXPECT_FALSE(reachable.Contains(P1()));
  EXPECT_FALSE(reachable.Contains(A1())) << "A1 only reachable through P1";
  EXPECT_TRUE(reachable.Contains(P3())) << "still a direct child of ROOT";
}

}  // namespace
}  // namespace gsv
