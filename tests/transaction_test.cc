#include <gtest/gtest.h>

#include <memory>

#include "core/algorithm1.h"
#include "core/consistency.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "oem/serialize.h"
#include "oem/transaction.h"
#include "workload/person_db.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

class TransactionTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(BuildPersonDb(&store_).ok()); }
  ObjectStore store_;
};

TEST_F(TransactionTest, CommitAppliesAllUpdatesInOrder) {
  ASSERT_TRUE(store_.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  Transaction txn(&store_);
  txn.Insert(P2(), Oid("A2"));
  txn.Modify(Oid("A2"), Value::Int(41));
  txn.Delete(Root(), P4());
  EXPECT_EQ(txn.size(), 3u);

  // Nothing happens until Commit.
  EXPECT_FALSE(store_.Get(P2())->children().Contains(Oid("A2")));

  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(txn.committed());
  EXPECT_TRUE(store_.Get(P2())->children().Contains(Oid("A2")));
  EXPECT_EQ(store_.Get(Oid("A2"))->value().AsInt(), 41);
  EXPECT_FALSE(store_.Get(Root())->children().Contains(P4()));

  EXPECT_EQ(txn.Commit().code(), StatusCode::kFailedPrecondition)
      << "no reuse after commit";
}

TEST_F(TransactionTest, AbortDiscardsBuffer) {
  Transaction txn(&store_);
  txn.Delete(Root(), P1());
  txn.Abort();
  EXPECT_EQ(txn.size(), 0u);
  ASSERT_TRUE(txn.Commit().ok()) << "empty commit is fine";
  EXPECT_TRUE(store_.Get(Root())->children().Contains(P1()));
}

TEST_F(TransactionTest, LaterUpdatesSeeEarlierOnes) {
  // Insert a fresh subtree: the second insert relies on the first.
  ASSERT_TRUE(store_.PutSet(Oid("P9"), "professor").ok());
  ASSERT_TRUE(store_.PutAtomic(Oid("A9"), "age", Value::Int(30)).ok());
  Transaction txn(&store_);
  txn.Insert(Root(), Oid("P9"));
  txn.Insert(Oid("P9"), Oid("A9"));
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(store_.Get(Oid("P9"))->children().Contains(Oid("A9")));
}

TEST_F(TransactionTest, FailureRollsBackPrefix) {
  ASSERT_TRUE(store_.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  Transaction txn(&store_);
  txn.Insert(P2(), Oid("A2"));                    // would succeed
  txn.Modify(A1(), Value::Int(50));               // would succeed
  txn.Insert(P2(), Oid("MISSING"));               // fails: child absent
  Status status = txn.Commit();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(txn.committed());

  // The applied prefix was undone.
  EXPECT_FALSE(store_.Get(P2())->children().Contains(Oid("A2")));
  EXPECT_EQ(store_.Get(A1())->value().AsInt(), 45);
}

TEST_F(TransactionTest, ModifyOldValueCapturedAtCommit) {
  class Recorder : public UpdateListener {
   public:
    void OnUpdate(const ObjectStore&, const Update& update) override {
      updates.push_back(update);
    }
    std::vector<Update> updates;
  };
  Recorder recorder;
  Transaction txn(&store_);
  txn.Modify(A1(), Value::Int(50));
  // The value changes after buffering but before commit.
  ASSERT_TRUE(store_.Modify(A1(), Value::Int(47)).ok());
  store_.AddListener(&recorder);
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_EQ(recorder.updates.size(), 1u);
  EXPECT_EQ(recorder.updates[0].old_value.AsInt(), 47)
      << "old value reflects commit-time state";
}

TEST_F(TransactionTest, DuplicateInsertInBatchIsSkippedNotInverted) {
  // P1 is already a child of ROOT; a batch that re-inserts it and then
  // fails must NOT delete the pre-existing edge during rollback.
  Transaction txn(&store_);
  txn.Insert(Root(), P1());                 // no-op (already a child)
  txn.Insert(P2(), Oid("MISSING"));         // fails
  EXPECT_FALSE(txn.Commit().ok());
  EXPECT_TRUE(store_.Get(Root())->children().Contains(P1()))
      << "rollback must not remove the pre-existing edge";
}

TEST_F(TransactionTest, MaintainersSeeCommitAndRollbackConsistently) {
  auto def = ViewDefinition::Parse(
      "define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  MaterializedView view(&store_, *def);
  ASSERT_TRUE(view.Initialize(store_).ok());
  LocalAccessor accessor(&store_);
  Algorithm1Maintainer maintainer(&view, &accessor, *def, Root());
  store_.AddListener(&maintainer);

  // Committed batch: P1 leaves, P2 joins — the view sees both.
  ASSERT_TRUE(store_.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  Transaction good(&store_);
  good.Modify(A1(), Value::Int(70));
  good.Insert(P2(), Oid("A2"));
  ASSERT_TRUE(good.Commit().ok());
  EXPECT_EQ(view.BaseMembers(), OidSet({P2()}));
  EXPECT_TRUE(CheckViewConsistency(view, store_).consistent);

  // Failing batch: its prefix (P1 returns) is rolled back; the view ends
  // where it started.
  Transaction bad(&store_);
  bad.Modify(A1(), Value::Int(45));
  bad.Delete(P4(), Oid("MISSING"));
  EXPECT_FALSE(bad.Commit().ok());
  EXPECT_EQ(view.BaseMembers(), OidSet({P2()}));
  EXPECT_TRUE(CheckViewConsistency(view, store_).consistent);
  EXPECT_TRUE(maintainer.last_status().ok());
}

// Property: committing a random valid batch leaves the same store state as
// applying the same updates directly; a batch poisoned with an invalid
// update leaves the store byte-identical to its pre-commit state.
TEST(TransactionPropertyTest, CommitEquivalenceAndRollbackExactness) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    // Two identical stores: one updated directly, one through transactions.
    ObjectStore direct;
    ObjectStore transacted;
    ASSERT_TRUE(BuildPersonDb(&direct).ok());
    ASSERT_TRUE(BuildPersonDb(&transacted).ok());

    // Use the generator on `direct` to produce a valid stream, replayed
    // through a transaction on `transacted`. Skip streams that create
    // fresh objects (Put is not a basic update and lives outside
    // transactions), so only modifies and edge ops are compared.
    UpdateGenOptions options;
    options.seed = seed;
    options.p_insert = 0.0;  // avoid fresh-object creation
    options.p_delete = 0.4;
    options.p_modify = 0.6;
    UpdateGenerator generator(&direct, person_db::Root(), options);
    auto updates = generator.Run(40);
    ASSERT_TRUE(updates.ok());

    Transaction txn(&transacted);
    for (const Update& update : *updates) {
      // The generator may create fresh leaf objects (Put is not a basic
      // update); mirror them so the replayed edge inserts are valid.
      if (update.kind == UpdateKind::kInsert &&
          !transacted.Contains(update.child)) {
        const Object* fresh = direct.Get(update.child);
        ASSERT_NE(fresh, nullptr);
        ASSERT_TRUE(transacted.Put(*fresh).ok());
      }
      txn.Add(update);
    }
    Status commit = txn.Commit();
    ASSERT_TRUE(commit.ok()) << commit.ToString();

    // Compare full store contents.
    direct.ForEach([&](const Object& object) {
      const Object* other = transacted.Get(object.oid());
      ASSERT_NE(other, nullptr) << object.oid().str();
      ASSERT_EQ(*other, object);
    });
    ASSERT_EQ(direct.size(), transacted.size());

    // Rollback exactness: poison a new batch, snapshot, commit, compare.
    std::string before = StoreToString(transacted);
    UpdateGenerator more(&direct, person_db::Root(), options);
    auto extra = more.Run(10);
    ASSERT_TRUE(extra.ok());
    Transaction poisoned(&transacted);
    for (const Update& update : *extra) poisoned.Add(update);
    poisoned.Insert(Oid("NOPE"), Oid("ALSO_NOPE"));
    ASSERT_FALSE(poisoned.Commit().ok());
    EXPECT_EQ(StoreToString(transacted), before) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gsv
