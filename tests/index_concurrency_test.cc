// Snapshot publication vs. parallel readers. Carries the `tsan` label:
// ci.sh re-runs it from a -fsanitize=thread build to prove that Acquire()
// really is safe against a writer mutating live shards and publishing the
// next epoch.
//
// Protocol under test (label_index.h): readers hold only the immutable
// snapshot — they never touch the store's object table — while one writer
// thread drives random basic updates through the store, each of which
// mutates live shards and publishes a fresh epoch. Readers assert that
// epochs only move forward and that every probe yields structurally valid
// (sorted, unique) frontiers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "oem/label_index.h"
#include "oem/store.h"
#include "path/navigate.h"
#include "path/path.h"
#include "path/path_index.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

bool SortedUnique(const std::vector<uint32_t>& ids) {
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i - 1] >= ids[i]) return false;
  }
  return true;
}

TEST(IndexConcurrencyTest, ReadersProbeWhileWriterPublishes) {
  ObjectStore store;
  TreeGenOptions tree;
  tree.levels = 4;
  tree.fanout = 4;
  tree.label_variety = 2;
  tree.seed = 42;
  auto generated = GenerateTree(&store, tree);
  ASSERT_TRUE(generated.ok());

  // Everything a reader needs is materialized up front: interned ids and
  // parsed paths only — readers must never intern strings or call into the
  // store while the writer owns it.
  const uint32_t root_id = generated->root.id();
  auto deep = Path::Parse("n1_0.n2_0.n3_0.age");
  auto shallow = Path::Parse("n1_0");
  ASSERT_TRUE(deep.ok());
  ASSERT_TRUE(shallow.ok());
  const Path deep_path = *deep;
  const Path shallow_path = *shallow;
  const std::string root_label = "root";

  const uint64_t start_epoch = store.AcquireIndexSnapshot()->epoch;
  constexpr int kReaders = 3;
  constexpr size_t kWriterSteps = 2000;

  std::atomic<bool> done{false};
  std::atomic<bool> reader_failed{false};
  std::atomic<int64_t> probes{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        LabelIndexSnapshotPtr snapshot = store.AcquireIndexSnapshot();
        if (snapshot == nullptr || snapshot->epoch < last_epoch) {
          reader_failed.store(true, std::memory_order_relaxed);
          return;
        }
        last_epoch = snapshot->epoch;
        std::vector<uint32_t> down = IndexEvalPathIds(
            *snapshot, root_id, root_label, deep_path, nullptr, nullptr);
        std::vector<uint32_t> wave = IndexEvalPathIds(
            *snapshot, root_id, root_label, shallow_path, nullptr, nullptr);
        if (!SortedUnique(down) || !SortedUnique(wave)) {
          reader_failed.store(true, std::memory_order_relaxed);
          return;
        }
        // Climb back up from every reached leaf: within one frozen snapshot
        // the down and up posting directions must agree.
        for (uint32_t leaf : down) {
          std::vector<uint32_t> up =
              IndexAncestorIds(*snapshot, leaf, deep_path, nullptr);
          if (!SortedUnique(up) ||
              !IndexHasPathFromTo(*snapshot, root_id, leaf, deep_path,
                                  nullptr)) {
            reader_failed.store(true, std::memory_order_relaxed);
            return;
          }
        }
        probes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  UpdateGenOptions gen;
  gen.seed = 4242;
  UpdateGenerator writer(&store, generated->root, gen);
  for (size_t i = 0; i < kWriterSteps; ++i) {
    ASSERT_TRUE(writer.Step().ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(reader_failed.load());
  EXPECT_GT(probes.load(), 0);
  LabelIndexSnapshotPtr final_snapshot = store.AcquireIndexSnapshot();
  ASSERT_NE(final_snapshot, nullptr);
  EXPECT_GT(final_snapshot->epoch, start_epoch);

  // Quiesced: the final snapshot answers exactly like traversal.
  ObjectStore::Options scan_options;
  scan_options.enable_label_index = false;
  std::vector<uint32_t> ids = IndexEvalPathIds(
      *final_snapshot, root_id, root_label, deep_path, nullptr, nullptr);
  OidSet via_store = EvalPath(store, generated->root, deep_path);
  std::vector<Oid> via_index;
  via_index.reserve(ids.size());
  for (uint32_t id : ids) via_index.push_back(Oid::FromId(id));
  std::sort(via_index.begin(), via_index.end());
  EXPECT_EQ(via_index, via_store.elements());
}

// A tight Put/Remove churn loop on one OID: the worst case for epoch
// publication frequency (every mutation dirties the same shards).
TEST(IndexConcurrencyTest, ChurnOnOneOidKeepsEpochsMonotonic) {
  ObjectStore store;
  ASSERT_TRUE(store.PutSet(Oid("R"), "root").ok());
  const uint32_t root_id = Oid("R").id();
  Oid hot("HOT");
  auto path = Path::Parse("flicker");
  ASSERT_TRUE(path.ok());
  const Path flicker = *path;
  const std::string root_label = "root";

  std::atomic<bool> done{false};
  std::atomic<bool> reader_failed{false};
  std::thread reader([&] {
    uint64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      LabelIndexSnapshotPtr snapshot = store.AcquireIndexSnapshot();
      if (snapshot == nullptr || snapshot->epoch < last_epoch) {
        reader_failed.store(true, std::memory_order_relaxed);
        return;
      }
      last_epoch = snapshot->epoch;
      std::vector<uint32_t> reached = IndexEvalPathIds(
          *snapshot, root_id, root_label, flicker, nullptr, nullptr);
      // The child either is or is not there — never anything else.
      if (reached.size() > 1 ||
          (reached.size() == 1 && reached[0] != hot.id())) {
        reader_failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });

  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(store.PutAtomic(hot, "flicker", Value::Int(i)).ok());
    ASSERT_TRUE(store.Insert(Oid("R"), hot).ok());
    ASSERT_TRUE(store.Delete(Oid("R"), hot).ok());
    ASSERT_TRUE(store.Remove(hot).ok());
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(reader_failed.load());
}

}  // namespace
}  // namespace gsv
