// Robustness: fuzz-style inputs must never crash — they either parse/apply
// or return a Status — plus larger-scale stress runs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/algorithm1.h"
#include "core/consistency.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "oem/serialize.h"
#include "oem/store.h"
#include "path/navigate.h"
#include "path/path_expression.h"
#include "query/evaluator.h"
#include "query/explain.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "util/random.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

TEST(FuzzTest, ParserNeverCrashesOnTokenSoup) {
  const std::vector<std::string> vocabulary = {
      "SELECT", "WHERE",  "WITHIN", "ANS",  "INT",  "AND",   "OR",
      "define", "view",   "mview",  "as",   "X",    "ROOT",  "age",
      ".",      "*",      "?",      "(",    ")",    "=",     "!=",
      "<",      "<=",     ">",      ">=",   ":",    "42",    "3.5",
      "'str'",  "\"q\"",  "true",   "false", "-7",  "_id",   "a-b",
  };
  Random rng(1234);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string text;
    size_t tokens = rng.Uniform(12);
    for (size_t i = 0; i < tokens; ++i) {
      text += vocabulary[rng.Uniform(vocabulary.size())];
      text += ' ';
    }
    // Must not crash; either parses or reports an error.
    (void)ParseQuery(text);
    (void)ParseDefine(text);
  }
}

TEST(FuzzTest, LexerNeverCrashesOnRandomBytes) {
  Random rng(99);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string text;
    size_t length = rng.Uniform(40);
    for (size_t i = 0; i < length; ++i) {
      // Printable-ish ASCII plus a few controls.
      text += static_cast<char>(32 + rng.Uniform(96));
    }
    (void)Tokenize(text);
  }
}

TEST(FuzzTest, SerializerNeverCrashesOnMangledRecords) {
  const std::vector<std::string> pieces = {
      "obj", "db",   "A",     "lab", "int",  "real",   "string", "bool",
      "set", "42",   "x.y",   "\"", "\\\"", "true",   "#",      "",
      "-1",  "3.5",  "\"s\"", "obj A lab int 1",
  };
  Random rng(7);
  for (int iteration = 0; iteration < 1000; ++iteration) {
    std::string text;
    size_t lines = rng.Uniform(6);
    for (size_t line = 0; line < lines; ++line) {
      size_t tokens = rng.Uniform(7);
      for (size_t i = 0; i < tokens; ++i) {
        text += pieces[rng.Uniform(pieces.size())];
        text += ' ';
      }
      text += '\n';
    }
    ObjectStore store;
    (void)StoreFromString(text, &store);
  }
}

TEST(FuzzTest, RandomQueriesOverRandomTreesEvaluateSafely) {
  ObjectStore store;
  TreeGenOptions options;
  options.levels = 3;
  options.fanout = 3;
  options.label_variety = 2;
  auto tree = GenerateTree(&store, options);
  ASSERT_TRUE(tree.ok());

  const std::vector<std::string> paths = {"n1_0", "n1_1", "n2_0", "age", "*",
                                          "?", "n1_0.n2_0", "*.age", "?.?"};
  const std::vector<std::string> ops = {"=", "!=", "<", "<=", ">", ">="};
  Random rng(5);
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::string text = "SELECT " + tree->root.str() + "." +
                       paths[rng.Uniform(paths.size())] + " X";
    if (rng.Bernoulli(0.7)) {
      text += " WHERE X." + paths[rng.Uniform(paths.size())] + " " +
              ops[rng.Uniform(ops.size())] + " " +
              std::to_string(rng.UniformInt(-5, 105));
    }
    Result<OidSet> result = EvaluateQueryText(store, text);
    ASSERT_TRUE(result.ok()) << text;
    for (const Oid& oid : *result) {
      ASSERT_TRUE(store.Contains(oid)) << "answers must be store objects";
    }
    // The explain path computes the same answer.
    Result<QueryExplanation> explanation = ExplainQueryText(store, text);
    ASSERT_TRUE(explanation.ok()) << text;
    ASSERT_EQ(explanation->answer, *result) << text;
  }
}

TEST(RobustnessTest, DeepChainsDoNotOverflow) {
  // A 300-deep chain: parsing, evaluation and upward climbs all bounded.
  ObjectStore store;
  const int kDepth = 300;
  ASSERT_TRUE(store.PutAtomic(Oid("leaf"), "age", Value::Int(1)).ok());
  Oid child("leaf");
  for (int i = 0; i < kDepth; ++i) {
    Oid node("c" + std::to_string(i));
    ASSERT_TRUE(store.PutSet(node, "link", {child}).ok());
    child = node;
  }
  // Downward evaluation over 300 links.
  std::string path_text;
  for (int i = 0; i < kDepth - 1; ++i) path_text += "link.";
  path_text += "age";
  auto path = Path::Parse(path_text);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(EvalPath(store, child, *path).size(), 1u);
  // Wildcard traversal visits the whole chain.
  EXPECT_EQ(
      EvalExpression(store, child, *PathExpression::Parse("*")).size(),
      static_cast<size_t>(kDepth) + 1);
  // Upward climb (capped at max_depth=256 by default: returns nothing
  // rather than recursing forever).
  EXPECT_TRUE(PathsFromTo(store, child, Oid("leaf")).empty());
  EXPECT_EQ(PathsFromTo(store, child, Oid("leaf"), 16, 1024).size(), 1u);
}

TEST(RobustnessTest, PathologicalContainmentTerminates) {
  // Alternating wildcards: subset construction stays small for the linear
  // NFAs this class produces.
  auto a = PathExpression::Parse("*.a.*.a.*.a.*");
  auto b = PathExpression::Parse("a.?.a.?.a.?.a");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->Contains(*b));
  EXPECT_FALSE(b->Contains(*a));
}

TEST(StressTest, LargeTreeLongStreamStaysConsistent) {
  ObjectStore store;
  TreeGenOptions options;
  options.levels = 4;
  options.fanout = 6;
  options.label_variety = 2;
  options.seed = 1001;
  auto tree = GenerateTree(&store, options);
  ASSERT_TRUE(tree.ok());
  ASSERT_GT(store.size(), 1500u);

  auto def = ViewDefinition::Parse(
      TreeViewDefinition("BIG", tree->root, 2, 4, 60));
  ObjectStore view_store;
  MaterializedView view(&view_store, *def);
  ASSERT_TRUE(view.Initialize(store).ok());
  LocalAccessor accessor(&store);
  Algorithm1Maintainer maintainer(&view, &accessor, *def, tree->root);
  store.AddListener(&maintainer);

  UpdateGenOptions gen_options;
  gen_options.seed = 2002;
  UpdateGenerator generator(&store, tree->root, gen_options);
  ASSERT_TRUE(generator.Run(2000).ok());
  ASSERT_TRUE(maintainer.last_status().ok());

  ConsistencyReport report = CheckViewConsistency(view, store);
  EXPECT_TRUE(report.consistent) << report.ToString();
  EXPECT_GT(maintainer.stats().updates, 0);
}

}  // namespace
}  // namespace gsv
