#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/aggregate_view.h"
#include "core/algorithm1.h"
#include "core/consistency.h"
#include "core/union_view.h"
#include "core/general_maintainer.h"
#include "core/materialized_view.h"
#include "core/recompute.h"
#include "core/swizzle.h"
#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "oem/store.h"
#include "relational/counting.h"
#include "relational/flatten.h"
#include "relational/spj_view.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

// Shared parameter space: RNG seed × tree shape × view shape.
struct PropertyParam {
  uint64_t seed;
  size_t levels;
  size_t fanout;
  size_t label_variety;
  size_t sel_levels;
  int64_t bound;
  size_t updates;
};

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  const PropertyParam& p = info.param;
  return "seed" + std::to_string(p.seed) + "_l" + std::to_string(p.levels) +
         "_f" + std::to_string(p.fanout) + "_v" +
         std::to_string(p.label_variety) + "_s" +
         std::to_string(p.sel_levels) + "_b" + std::to_string(p.bound);
}

const PropertyParam kParams[] = {
    {1, 3, 3, 1, 1, 50, 150},  {2, 3, 3, 1, 2, 50, 150},
    {3, 4, 2, 1, 2, 30, 150},  {4, 4, 2, 1, 3, 70, 150},
    {5, 3, 4, 2, 1, 50, 150},  {6, 3, 4, 2, 2, 20, 150},
    {7, 2, 5, 1, 1, 90, 200},  {8, 4, 3, 2, 2, 50, 120},
    {9, 5, 2, 1, 3, 40, 120},  {10, 3, 3, 3, 2, 60, 150},
};

class MaintainerPropertyTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  // Builds two identical base stores (subject + oracle) from the param.
  void BuildBases() {
    const PropertyParam& p = GetParam();
    TreeGenOptions options;
    options.levels = p.levels;
    options.fanout = p.fanout;
    options.label_variety = p.label_variety;
    options.seed = p.seed;
    auto subject_tree = GenerateTree(&subject_base_, options);
    auto oracle_tree = GenerateTree(&oracle_base_, options);
    ASSERT_TRUE(subject_tree.ok());
    ASSERT_TRUE(oracle_tree.ok());
    root_ = subject_tree->root;
    definition_ = TreeViewDefinition("PV", root_, GetParam().sel_levels,
                                     GetParam().levels, GetParam().bound);
  }

  ViewDefinition Def() {
    auto def = ViewDefinition::Parse(definition_);
    EXPECT_TRUE(def.ok()) << def.status().ToString();
    return *def;
  }

  ObjectStore subject_base_;
  ObjectStore oracle_base_;
  Oid root_;
  std::string definition_;
};

// Algorithm 1 equals full recomputation after every update of a random
// tree-preserving stream (the §4.3 correctness criterion).
TEST_P(MaintainerPropertyTest, Algorithm1MatchesRecomputeOracle) {
  BuildBases();
  ViewDefinition def = Def();

  ObjectStore subject_store;
  MaterializedView subject_view(&subject_store, def);
  ASSERT_TRUE(subject_view.Initialize(subject_base_).ok());
  LocalAccessor accessor(&subject_base_);
  Algorithm1Maintainer maintainer(&subject_view, &accessor, def, root_);
  subject_base_.AddListener(&maintainer);

  ObjectStore oracle_store;
  MaterializedView oracle_view(&oracle_store, def);
  ASSERT_TRUE(oracle_view.Initialize(oracle_base_).ok());
  RecomputeMaintainer oracle(&oracle_view, &oracle_base_);
  oracle_base_.AddListener(&oracle);

  UpdateGenOptions gen_options;
  gen_options.seed = GetParam().seed + 1000;
  UpdateGenerator subject_gen(&subject_base_, root_, gen_options);
  UpdateGenerator oracle_gen(&oracle_base_, root_, gen_options);

  for (size_t i = 0; i < GetParam().updates; ++i) {
    auto subject_update = subject_gen.Step();
    auto oracle_update = oracle_gen.Step();
    ASSERT_TRUE(subject_update.ok());
    ASSERT_TRUE(oracle_update.ok());
    ASSERT_EQ(subject_update->ToString(), oracle_update->ToString())
        << "generators must stay in lockstep";
    ASSERT_TRUE(maintainer.last_status().ok());
    ASSERT_TRUE(oracle.last_status().ok());
    ASSERT_EQ(subject_view.BaseMembers(), oracle_view.BaseMembers())
        << "diverged after " << subject_update->ToString();
  }
  ConsistencyReport report =
      CheckViewConsistency(subject_view, subject_base_);
  EXPECT_TRUE(report.consistent) << report.ToString();
}

// The generalized candidate-recheck maintainer agrees with Algorithm 1 on
// simple views (they implement the same specification).
TEST_P(MaintainerPropertyTest, GeneralMaintainerMatchesAlgorithm1) {
  BuildBases();
  ViewDefinition def = Def();

  ObjectStore a1_store;
  MaterializedView a1_view(&a1_store, def);
  ASSERT_TRUE(a1_view.Initialize(subject_base_).ok());
  LocalAccessor accessor(&subject_base_);
  Algorithm1Maintainer algo1(&a1_view, &accessor, def, root_);
  subject_base_.AddListener(&algo1);

  ObjectStore general_store;
  MaterializedView general_view(&general_store, def);
  ASSERT_TRUE(general_view.Initialize(subject_base_).ok());
  GeneralMaintainer general(&general_view, &subject_base_, def, root_);
  subject_base_.AddListener(&general);

  UpdateGenOptions gen_options;
  gen_options.seed = GetParam().seed + 2000;
  UpdateGenerator generator(&subject_base_, root_, gen_options);
  for (size_t i = 0; i < GetParam().updates; ++i) {
    ASSERT_TRUE(generator.Step().ok());
    ASSERT_TRUE(algo1.last_status().ok());
    ASSERT_TRUE(general.last_status().ok());
    ASSERT_EQ(a1_view.BaseMembers(), general_view.BaseMembers());
  }
}

// On DAG-shaped streams (multiple parents), the general maintainer tracks
// the recomputed truth (§6's DAG relaxation).
TEST_P(MaintainerPropertyTest, GeneralMaintainerHandlesDagStreams) {
  BuildBases();
  ViewDefinition def = Def();

  ObjectStore view_store;
  MaterializedView view(&view_store, def);
  ASSERT_TRUE(view.Initialize(subject_base_).ok());
  GeneralMaintainer general(&view, &subject_base_, def, root_);
  subject_base_.AddListener(&general);

  UpdateGenOptions gen_options;
  gen_options.mode = UpdateMode::kDagPreserving;
  gen_options.seed = GetParam().seed + 3000;
  UpdateGenerator generator(&subject_base_, root_, gen_options);
  for (size_t i = 0; i < GetParam().updates; ++i) {
    ASSERT_TRUE(generator.Step().ok());
    ASSERT_TRUE(general.last_status().ok());
    if (i % 10 == 0) {
      auto truth = EvaluateView(subject_base_, def);
      ASSERT_TRUE(truth.ok());
      ASSERT_EQ(view.BaseMembers(), *truth) << "after update " << i;
    }
  }
  auto truth = EvaluateView(subject_base_, def);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(view.BaseMembers(), *truth);
}

// The relational counting maintainer over the flattened representation
// computes the same view as the GSDB machinery (§4.4's equivalence).
TEST_P(MaintainerPropertyTest, CountingMatchesGsdbTruth) {
  BuildBases();
  ViewDefinition def = Def();

  RelationalMirror mirror;
  ASSERT_TRUE(mirror.SyncFromStore(subject_base_).ok());
  subject_base_.AddListener(&mirror);
  auto spec = ChainSpec::FromDefinition(def);
  ASSERT_TRUE(spec.ok());
  CountingViewMaintainer counting(&mirror, *spec);
  ASSERT_TRUE(counting.Initialize().ok());

  UpdateGenOptions gen_options;
  gen_options.seed = GetParam().seed + 4000;
  UpdateGenerator generator(&subject_base_, root_, gen_options);
  for (size_t i = 0; i < GetParam().updates; ++i) {
    ASSERT_TRUE(generator.Step().ok());
    ASSERT_TRUE(mirror.last_status().ok());
    ASSERT_TRUE(counting.last_status().ok());
    if (i % 25 == 0) {
      auto truth = EvaluateView(subject_base_, def);
      ASSERT_TRUE(truth.ok());
      ASSERT_EQ(counting.Members(), *truth) << "after update " << i;
      // Counts must also equal a fresh bag evaluation (not just support).
      auto recomputed = EvaluateChain(mirror, *spec);
      for (const auto& [y, count] : recomputed) {
        ASSERT_EQ(counting.CountOf(Oid(y)), count);
      }
    }
  }
  auto truth = EvaluateView(subject_base_, def);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(counting.Members(), *truth);
}

// Swizzling must never affect view consistency or maintenance (§3.2:
// "swizzling should not affect the results of queries").
TEST_P(MaintainerPropertyTest, SwizzledViewsStayConsistent) {
  BuildBases();
  ViewDefinition def = Def();

  MaterializedView::Options options;
  options.swizzle = true;
  ObjectStore view_store;
  MaterializedView view(&view_store, def, options);
  ASSERT_TRUE(view.Initialize(subject_base_).ok());
  LocalAccessor accessor(&subject_base_);
  Algorithm1Maintainer maintainer(&view, &accessor, def, root_);
  subject_base_.AddListener(&maintainer);

  UpdateGenOptions gen_options;
  gen_options.seed = GetParam().seed + 5000;
  UpdateGenerator generator(&subject_base_, root_, gen_options);
  for (size_t i = 0; i < GetParam().updates; ++i) {
    ASSERT_TRUE(generator.Step().ok());
    ASSERT_TRUE(maintainer.last_status().ok());
  }
  ConsistencyReport report = CheckViewConsistency(view, subject_base_);
  EXPECT_TRUE(report.consistent) << report.ToString();

  // Every swizzled edge must point at a live delegate of this view.
  const Oid& view_oid = view.view_oid();
  for (const Oid& member : view.BaseMembers()) {
    const Object* delegate = view_store.Get(view.DelegateOid(member));
    ASSERT_NE(delegate, nullptr);
    if (!delegate->IsSet()) continue;
    for (const Oid& child : delegate->children()) {
      if (child.IsDelegateOf(view_oid)) {
        EXPECT_TRUE(view.ContainsBase(child.BaseIn(view_oid)))
            << "dangling swizzled edge " << child.str();
      } else {
        EXPECT_FALSE(view.ContainsBase(child))
            << "unswizzled edge to in-view object " << child.str();
      }
    }
  }
}

// The warehouse, at every reporting level and cache mode, converges to the
// same view as centralized maintenance.
TEST_P(MaintainerPropertyTest, WarehouseMatchesTruthAcrossConfigs) {
  struct Config {
    ReportingLevel level;
    Warehouse::CacheMode cache;
  };
  const Config configs[] = {
      {ReportingLevel::kOidsOnly, Warehouse::CacheMode::kNone},
      {ReportingLevel::kWithValues, Warehouse::CacheMode::kLabelsOnly},
      {ReportingLevel::kWithRootPath, Warehouse::CacheMode::kFull},
  };
  for (const Config& config : configs) {
    SCOPED_TRACE(ReportingLevelName(config.level));
    ObjectStore source;
    TreeGenOptions options;
    options.levels = GetParam().levels;
    options.fanout = GetParam().fanout;
    options.label_variety = GetParam().label_variety;
    options.seed = GetParam().seed;
    auto tree = GenerateTree(&source, options);
    ASSERT_TRUE(tree.ok());
    std::string definition =
        TreeViewDefinition("PV", tree->root, GetParam().sel_levels,
                           GetParam().levels, GetParam().bound);

    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    ASSERT_TRUE(
        warehouse.ConnectSource(&source, tree->root, config.level).ok());
    ASSERT_TRUE(warehouse.DefineView(definition, config.cache).ok());

    UpdateGenOptions gen_options;
    gen_options.seed = GetParam().seed + 6000;
    UpdateGenerator generator(&source, tree->root, gen_options);
    ASSERT_TRUE(generator.Run(GetParam().updates).ok());

    ASSERT_TRUE(warehouse.last_status().ok())
        << warehouse.last_status().ToString();
    MaterializedView* view = warehouse.view("PV");
    ASSERT_NE(view, nullptr);
    ConsistencyReport report = CheckViewConsistency(*view, source);
    EXPECT_TRUE(report.consistent) << report.ToString();
  }
}

// Union views: membership always equals the union of the branch queries'
// answers, delegates exist exactly for the union, refcounts = #selecting
// branches.
TEST_P(MaintainerPropertyTest, UnionViewMatchesBranchUnion) {
  BuildBases();
  // Branch A: the parameterized view; branch B: a shallower one.
  std::string def_a_text = definition_;
  std::string def_b_text =
      TreeViewDefinition("UVb", root_, 1, GetParam().levels,
                         GetParam().bound / 2);
  auto def_a = ViewDefinition::Parse(def_a_text);
  auto def_b = ViewDefinition::Parse(def_b_text);
  ASSERT_TRUE(def_a.ok());
  ASSERT_TRUE(def_b.ok());

  ObjectStore view_store;
  LocalAccessor accessor(&subject_base_);
  UnionView union_view(&view_store, "UV", &accessor);
  ASSERT_TRUE(union_view.Bootstrap().ok());
  ASSERT_TRUE(union_view.AddBranch(*def_a, subject_base_, root_).ok());
  ASSERT_TRUE(union_view.AddBranch(*def_b, subject_base_, root_).ok());
  subject_base_.AddListener(union_view.listener());

  UpdateGenOptions gen_options;
  gen_options.seed = GetParam().seed + 7000;
  UpdateGenerator generator(&subject_base_, root_, gen_options);
  for (size_t i = 0; i < GetParam().updates; ++i) {
    ASSERT_TRUE(generator.Step().ok());
    ASSERT_TRUE(union_view.last_status().ok());
    if (i % 25 != 0) continue;
    auto truth_a = EvaluateView(subject_base_, *def_a);
    auto truth_b = EvaluateView(subject_base_, *def_b);
    ASSERT_TRUE(truth_a.ok());
    ASSERT_TRUE(truth_b.ok());
    OidSet expected = OidSet::Union(*truth_a, *truth_b);
    ASSERT_EQ(union_view.Members(), expected) << "after update " << i;
    for (const Oid& member : expected) {
      int expected_refs = (truth_a->Contains(member) ? 1 : 0) +
                          (truth_b->Contains(member) ? 1 : 0);
      ASSERT_EQ(union_view.RefCount(member), expected_refs);
      ASSERT_TRUE(view_store.Contains(Oid::Delegate(Oid("UV"), member)));
    }
  }
}

// Aggregate views: every member's delegate equals a from-scratch aggregate
// over the current base.
TEST_P(MaintainerPropertyTest, AggregateViewTracksTruth) {
  BuildBases();
  // Members: level-1 nodes (no condition); aggregate: count of their "age"
  // leaves when the tree is 2 levels deep, else count of next-level nodes.
  std::string agg_label = GetParam().levels >= 3 ? "n2_0" : "age";
  std::string member_def_text =
      "define mview AGV as: SELECT " + root_.str() + ".n1_0 X";
  auto member_def = ViewDefinition::Parse(member_def_text);
  ASSERT_TRUE(member_def.ok());

  ObjectStore view_store;
  AggregateView aggregate(&subject_base_, &view_store, "AGV", *member_def,
                          root_, *Path::Parse(agg_label),
                          AggregateView::Kind::kCount);
  ASSERT_TRUE(aggregate.Initialize().ok());
  subject_base_.AddListener(aggregate.listener());

  UpdateGenOptions gen_options;
  gen_options.seed = GetParam().seed + 8000;
  UpdateGenerator generator(&subject_base_, root_, gen_options);
  for (size_t i = 0; i < GetParam().updates; ++i) {
    ASSERT_TRUE(generator.Step().ok());
    ASSERT_TRUE(aggregate.last_status().ok());
    if (i % 25 != 0) continue;
    auto truth = EvaluateView(subject_base_, *member_def);
    ASSERT_TRUE(truth.ok());
    ASSERT_EQ(aggregate.Members(), *truth) << "after update " << i;
    for (const Oid& member : *truth) {
      int64_t expected = static_cast<int64_t>(
          EvalPath(subject_base_, member, *Path::Parse(agg_label)).size());
      auto actual = aggregate.AggregateOf(member);
      ASSERT_TRUE(actual.ok());
      ASSERT_EQ(actual->AsInt(), expected)
          << member.str() << " after update " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MaintainerPropertyTest,
                         ::testing::ValuesIn(kParams), ParamName);

}  // namespace
}  // namespace gsv
