#include <gtest/gtest.h>

#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "oem/store.h"
#include "relational/counting.h"
#include "relational/flatten.h"
#include "relational/spj_view.h"
#include "relational/table.h"
#include "workload/person_db.h"
#include "workload/relational_gen.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

// ------------------------------------------------------------------ Table

TEST(TableTest, ApplyCountsAndDrops) {
  RelationalMetrics metrics;
  Table table("T", {"a", "b"}, &metrics);
  RelTuple t{{Value::Str("x"), Value::Int(1)}};
  ASSERT_TRUE(table.Apply(t, 1).ok());
  ASSERT_TRUE(table.Apply(t, 2).ok());
  EXPECT_EQ(table.Count(t), 3);
  EXPECT_EQ(table.DistinctSize(), 1u);
  ASSERT_TRUE(table.Apply(t, -3).ok());
  EXPECT_EQ(table.Count(t), 0);
  EXPECT_EQ(table.DistinctSize(), 0u);
  EXPECT_GT(metrics.table_updates, 0);
}

TEST(TableTest, ArityChecked) {
  RelationalMetrics metrics;
  Table table("T", {"a", "b"}, &metrics);
  EXPECT_FALSE(table.Apply(RelTuple{{Value::Int(1)}}, 1).ok());
}

TEST(TableTest, IndexedLookup) {
  RelationalMetrics metrics;
  Table table("T", {"a", "b"}, &metrics);
  table.AddIndex(0);
  ASSERT_TRUE(
      table.Apply(RelTuple{{Value::Str("x"), Value::Int(1)}}, 1).ok());
  ASSERT_TRUE(
      table.Apply(RelTuple{{Value::Str("x"), Value::Int(2)}}, 1).ok());
  ASSERT_TRUE(
      table.Apply(RelTuple{{Value::Str("y"), Value::Int(3)}}, 1).ok());
  EXPECT_EQ(table.Lookup(0, Value::Str("x")).size(), 2u);
  EXPECT_EQ(table.Lookup(0, Value::Str("y")).size(), 1u);
  EXPECT_EQ(table.Lookup(0, Value::Str("z")).size(), 0u);
  // Unindexed column falls back to a scan.
  EXPECT_EQ(table.Lookup(1, Value::Int(3)).size(), 1u);
}

TEST(TableTest, IndexBuiltAfterRows) {
  RelationalMetrics metrics;
  Table table("T", {"a"}, &metrics);
  ASSERT_TRUE(table.Apply(RelTuple{{Value::Str("x")}}, 1).ok());
  table.AddIndex(0);
  EXPECT_EQ(table.Lookup(0, Value::Str("x")).size(), 1u);
}

// ----------------------------------------------------------------- Mirror

TEST(RelationalMirrorTest, Example8ThreeTableRepresentation) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store, /*with_database=*/false).ok());
  RelationalMirror mirror;
  ASSERT_TRUE(mirror.SyncFromStore(store).ok());

  EXPECT_EQ(mirror.oid_label().DistinctSize(), 15u);
  // Edges: ROOT(4) + P1(4) + P2(2) + P3(3) + P4(2).
  EXPECT_EQ(mirror.parent_child().DistinctSize(), 15u);
  // Atomic objects: 10.
  EXPECT_EQ(mirror.oid_value().DistinctSize(), 10u);

  EXPECT_EQ(mirror.oid_label().Count(
                RelationalMirror::OidLabelRow(P1(), "professor")),
            1);
  EXPECT_EQ(mirror.parent_child().Count(
                RelationalMirror::EdgeRow(Root(), P1())),
            1);
  EXPECT_EQ(
      mirror.oid_value().Count(RelationalMirror::ValueRow(A1(), Value::Int(45))),
      1);
}

TEST(RelationalMirrorTest, SingleObjectUpdateTouchesMultipleTables) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store, /*with_database=*/false).ok());
  RelationalMirror mirror;
  ASSERT_TRUE(mirror.SyncFromStore(store).ok());
  store.AddListener(&mirror);

  // Attaching a fresh atomic object = OID_LABEL + OID_VALUE + PARENT_CHILD
  // rows (the paper's multi-table point).
  mirror.metrics().Reset();
  ASSERT_TRUE(store.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(store.Insert(P2(), Oid("A2")).ok());
  EXPECT_TRUE(mirror.last_status().ok());
  EXPECT_EQ(mirror.metrics().table_updates, 3);

  // A modify touches OID_VALUE twice (retract + assert).
  mirror.metrics().Reset();
  ASSERT_TRUE(store.Modify(Oid("A2"), Value::Int(41)).ok());
  EXPECT_EQ(mirror.metrics().table_updates, 2);

  // A delete touches one table.
  mirror.metrics().Reset();
  ASSERT_TRUE(store.Delete(P2(), Oid("A2")).ok());
  EXPECT_EQ(mirror.metrics().table_updates, 1);
  EXPECT_EQ(mirror.parent_child().Count(
                RelationalMirror::EdgeRow(P2(), Oid("A2"))),
            0);
}

// ---------------------------------------------------------------- SPJ view

class ChainViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(BuildPersonDb(&store_, /*with_database=*/false).ok());
    ASSERT_TRUE(mirror_.SyncFromStore(store_).ok());
    store_.AddListener(&mirror_);
  }

  ChainSpec Spec(const std::string& definition) {
    auto def = ViewDefinition::Parse(definition);
    EXPECT_TRUE(def.ok());
    auto spec = ChainSpec::FromDefinition(*def);
    EXPECT_TRUE(spec.ok());
    return *spec;
  }

  ObjectStore store_;
  RelationalMirror mirror_;
};

TEST_F(ChainViewTest, SpecFromDefinition) {
  ChainSpec spec = Spec(
      "define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  EXPECT_EQ(spec.root, Root());
  EXPECT_EQ(spec.labels, (std::vector<std::string>{"professor", "age"}));
  EXPECT_EQ(spec.sel_len, 1u);
  ASSERT_TRUE(spec.pred.has_value());

  auto bad = ViewDefinition::Parse(
      "define mview V as: SELECT ROOT.* X WHERE X.age <= 45");
  EXPECT_FALSE(ChainSpec::FromDefinition(*bad).ok());
}

TEST_F(ChainViewTest, FullEvaluationMatchesGsdbView) {
  ChainSpec spec = Spec(
      "define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  auto counts = EvaluateChain(mirror_, spec);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.at("P1"), 1);

  // Trivial condition: every professor.
  ChainSpec all = Spec("define mview PR as: SELECT ROOT.professor X");
  auto all_counts = EvaluateChain(mirror_, all);
  EXPECT_EQ(all_counts.size(), 2u);
}

TEST_F(ChainViewTest, MultipleDerivationsCounted) {
  // P3 is a student under both ROOT.professor.student (via P1) and — after
  // this insert — via a second professor. P8 is created with its P3 edge
  // and enters the mirror through the live insert (fresh-subtree case).
  ASSERT_TRUE(store_.PutSet(Oid("P8"), "professor", {P3()}).ok());
  ASSERT_TRUE(store_.Insert(Root(), Oid("P8")).ok());

  ChainSpec spec = Spec(
      "define mview YS as: SELECT ROOT.professor.student X "
      "WHERE X.age <= 21");
  auto counts = EvaluateChain(mirror_, spec);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.at("P3"), 2) << "two derivations through P1 and P8";
}

// ----------------------------------------------------------------- Counting

class CountingTest : public ::testing::Test {
 protected:
  void Init(const std::string& definition, bool with_database = false) {
    ASSERT_TRUE(BuildPersonDb(&store_, with_database).ok());
    ASSERT_TRUE(mirror_.SyncFromStore(store_).ok());
    store_.AddListener(&mirror_);
    auto def = ViewDefinition::Parse(definition);
    ASSERT_TRUE(def.ok());
    def_ = std::make_unique<ViewDefinition>(*def);
    auto spec = ChainSpec::FromDefinition(*def);
    ASSERT_TRUE(spec.ok());
    counting_ = std::make_unique<CountingViewMaintainer>(&mirror_, *spec);
    ASSERT_TRUE(counting_->Initialize().ok());
  }

  void ExpectMatchesGsdbTruth() {
    auto truth = EvaluateView(store_, *def_);
    ASSERT_TRUE(truth.ok());
    EXPECT_EQ(counting_->Members(), *truth);
  }

  ObjectStore store_;
  RelationalMirror mirror_;
  std::unique_ptr<ViewDefinition> def_;
  std::unique_ptr<CountingViewMaintainer> counting_;
};

TEST_F(CountingTest, TracksInsertDeleteModify) {
  Init("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  EXPECT_EQ(counting_->Members(), OidSet({P1()}));

  // Example 5's insert.
  ASSERT_TRUE(store_.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(store_.Insert(P2(), Oid("A2")).ok());
  EXPECT_EQ(counting_->Members(), OidSet({P1(), P2()}));
  ExpectMatchesGsdbTruth();

  // Modify across the bound, both directions.
  ASSERT_TRUE(store_.Modify(Oid("A2"), Value::Int(80)).ok());
  EXPECT_EQ(counting_->Members(), OidSet({P1()}));
  ASSERT_TRUE(store_.Modify(Oid("A2"), Value::Int(10)).ok());
  EXPECT_EQ(counting_->Members(), OidSet({P1(), P2()}));

  // Example 6's delete.
  ASSERT_TRUE(store_.Delete(Root(), P1()).ok());
  EXPECT_EQ(counting_->Members(), OidSet({P2()}));
  ExpectMatchesGsdbTruth();
  EXPECT_TRUE(counting_->last_status().ok());
}

TEST_F(CountingTest, CountsSurviveRedundantDerivations) {
  Init(
      "define mview YS as: SELECT ROOT.professor.student X "
      "WHERE X.age <= 21");
  EXPECT_EQ(counting_->CountOf(P3()), 1);

  // Second professor parent for P3: count rises to 2.
  ASSERT_TRUE(store_.PutSet(Oid("P8"), "professor").ok());
  ASSERT_TRUE(store_.Insert(Root(), Oid("P8")).ok());
  ASSERT_TRUE(store_.Insert(Oid("P8"), P3()).ok());
  EXPECT_EQ(counting_->CountOf(P3()), 2);
  EXPECT_EQ(counting_->Members(), OidSet({P3()}));

  // Remove one derivation: still a member (count 1) — the counting
  // algorithm's reason for existing.
  ASSERT_TRUE(store_.Delete(P1(), P3()).ok());
  EXPECT_EQ(counting_->CountOf(P3()), 1);
  EXPECT_EQ(counting_->Members(), OidSet({P3()}));
  ASSERT_TRUE(store_.Delete(Oid("P8"), P3()).ok());
  EXPECT_EQ(counting_->CountOf(P3()), 0);
  EXPECT_EQ(counting_->Members(), OidSet());
  ExpectMatchesGsdbTruth();
}

TEST_F(CountingTest, DeltaTermsScaleWithChainLength) {
  Init(
      "define mview YS as: SELECT ROOT.professor.student X "
      "WHERE X.age <= 21");
  int64_t terms_before = counting_->stats().delta_terms;
  ASSERT_TRUE(store_.PutAtomic(Oid("Z"), "zzz", Value::Int(0)).ok());
  ASSERT_TRUE(store_.Insert(P4(), Oid("Z")).ok());
  // Chain length 3 (professor, student, age): 3 delta terms per edge delta,
  // even for this entirely irrelevant update — §4.4's hidden-path-semantics
  // cost.
  EXPECT_EQ(counting_->stats().delta_terms - terms_before, 3);
}

TEST_F(CountingTest, RandomStreamAgreesWithGsdbTruth) {
  Init("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  UpdateGenOptions options;
  options.seed = 21;
  options.leaf_labels = {"age", "note"};
  UpdateGenerator generator(&store_, Root(), options);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(generator.Step().ok());
    ASSERT_TRUE(mirror_.last_status().ok());
    ASSERT_TRUE(counting_->last_status().ok());
  }
  ExpectMatchesGsdbTruth();
}

// On DAG-shaped streams (multiple parents, hence multiple derivations),
// the first-order delta terms remain exact — the correctness argument in
// counting.h relies on acyclicity, and this pins it empirically: counts
// (not just membership) must equal a full bag re-evaluation throughout.
TEST_F(CountingTest, DagStreamsKeepExactCounts) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    ObjectStore store;
    TreeGenOptions tree_options;
    tree_options.levels = 3;
    tree_options.fanout = 3;
    tree_options.seed = seed;
    auto tree = GenerateTree(&store, tree_options);
    ASSERT_TRUE(tree.ok());

    RelationalMirror mirror;
    ASSERT_TRUE(mirror.SyncFromStore(store).ok());
    store.AddListener(&mirror);
    auto def = ViewDefinition::Parse(
        TreeViewDefinition("DAGV", tree->root, 2, 3, 50));
    ASSERT_TRUE(def.ok());
    auto spec = ChainSpec::FromDefinition(*def);
    ASSERT_TRUE(spec.ok());
    CountingViewMaintainer counting(&mirror, *spec);
    ASSERT_TRUE(counting.Initialize().ok());

    UpdateGenOptions gen_options;
    gen_options.mode = UpdateMode::kDagPreserving;
    gen_options.p_insert = 0.5;
    gen_options.p_delete = 0.2;
    gen_options.p_modify = 0.3;
    gen_options.seed = seed + 500;
    UpdateGenerator generator(&store, tree->root, gen_options);
    for (int i = 0; i < 120; ++i) {
      ASSERT_TRUE(generator.Step().ok());
      ASSERT_TRUE(mirror.last_status().ok());
      ASSERT_TRUE(counting.last_status().ok());
      if (i % 20 != 0) continue;
      auto recomputed = EvaluateChain(mirror, *spec);
      size_t positive = 0;
      for (const auto& [y, count] : recomputed) {
        ASSERT_EQ(counting.CountOf(Oid(y)), count)
            << y << " after update " << i << " seed " << seed;
        if (count > 0) ++positive;
      }
      ASSERT_EQ(counting.Members().size(), positive);
      auto truth = EvaluateView(store, *def);
      ASSERT_TRUE(truth.ok());
      ASSERT_EQ(counting.Members(), *truth) << "seed " << seed;
    }
  }
}

TEST_F(CountingTest, RelationalGenWorkload) {
  ObjectStore store;
  RelationalGenOptions gen_options;
  gen_options.relations = 2;
  gen_options.tuples_per_relation = 50;
  auto rel = GenerateRelationalGsdb(&store, gen_options);
  ASSERT_TRUE(rel.ok());

  RelationalMirror mirror;
  ASSERT_TRUE(mirror.SyncFromStore(store).ok());
  store.AddListener(&mirror);

  auto def = ViewDefinition::Parse(
      RelationalViewDefinition("SEL", rel->root, /*bound=*/50));
  ASSERT_TRUE(def.ok());
  auto spec = ChainSpec::FromDefinition(*def);
  ASSERT_TRUE(spec.ok());
  CountingViewMaintainer counting(&mirror, *spec);
  ASSERT_TRUE(counting.Initialize().ok());

  // Example 7's workload: insert new tuples into r0 and s-like relations.
  size_t counter = 100000;
  for (int i = 0; i < 20; ++i) {
    auto tuple = MakeTuple(&store, "X", &counter, 30 + i * 5, 2);
    ASSERT_TRUE(tuple.ok());
    const Oid& target = rel->relation_oids[i % 2];
    ASSERT_TRUE(store.Insert(target, *tuple).ok());
  }
  auto truth = EvaluateView(store, *def);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(counting.Members(), *truth);
  EXPECT_TRUE(counting.last_status().ok());
}

}  // namespace
}  // namespace gsv
