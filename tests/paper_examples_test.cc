// End-to-end assertions of every worked example in the paper, in order.
// Each test cites the example it reproduces.

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithm1.h"
#include "core/consistency.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "oem/store.h"
#include "query/evaluator.h"
#include "relational/counting.h"
#include "relational/flatten.h"
#include "relational/spj_view.h"
#include "warehouse/warehouse.h"
#include "workload/person_db.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(BuildPersonDb(&store_).ok()); }
  ObjectStore store_;
};

// Example 1 / Figure 1: a graph-structured database is a collection of
// objects with pointer edges users can traverse from any entry point.
TEST_F(PaperExamplesTest, Example1GraphTraversal) {
  ObjectStore graph;
  for (const char* oid : {"A", "B", "C", "D", "E", "F", "G"}) {
    ASSERT_TRUE(graph.PutSet(Oid(oid), "node").ok());
  }
  // Figure 1's shape (edges as drawn: A->B, A->E, B->C, B->D, E->F, E->G).
  for (auto [from, to] : std::initializer_list<std::pair<const char*, const char*>>{
           {"A", "B"}, {"A", "E"}, {"B", "C"}, {"B", "D"}, {"E", "F"}, {"E", "G"}}) {
    ASSERT_TRUE(graph.Insert(Oid(from), Oid(to)).ok());
  }
  OidSet reachable =
      EvalExpression(graph, Oid("A"), *PathExpression::Parse("*"));
  EXPECT_EQ(reachable.size(), 7u) << "all nodes reachable from A";
  OidSet from_b = EvalExpression(graph, Oid("B"), *PathExpression::Parse("*"));
  EXPECT_EQ(from_b, OidSet({Oid("B"), Oid("C"), Oid("D")}));
}

// Example 2 / Figure 2: the PERSON database.
TEST_F(PaperExamplesTest, Example2PersonDatabase) {
  // label(P2) = professor and value(P2) = {N2, ADD2} (§2).
  const Object* p2 = store_.Get(P2());
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->label(), "professor");
  EXPECT_EQ(p2->children(), OidSet({N2(), Add2()}));

  // A1 ∈ ROOT.professor.age (§2's path example).
  EXPECT_TRUE(
      EvalPath(store_, Root(), *Path::Parse("professor.age")).Contains(A1()));

  // The database object groups all 15 objects.
  const Object* person = store_.Get(Person());
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(person->children().size(), 15u);

  // The paper's object notation.
  EXPECT_EQ(store_.Get(N1())->ToString(), "<N1, name, string, 'John'>");
  EXPECT_EQ(store_.Get(A1())->ToString(), "<A1, age, integer, 45>");
}

// §2's multi-field record representation: <name:'Joe', salary:50k>.
TEST_F(PaperExamplesTest, Section2RecordRepresentation) {
  ObjectStore records;
  ASSERT_TRUE(records.PutAtomic(Oid("RN1"), "name", Value::Str("Joe")).ok());
  ASSERT_TRUE(
      records.PutAtomic(Oid("RS1"), "salary", Value::Int(50000)).ok());
  ASSERT_TRUE(
      records.PutSet(Oid("E1"), "employee", {Oid("RN1"), Oid("RS1")}).ok());
  auto joes = EvaluateQueryText(
      records, "SELECT E1 X WHERE X.name = 'Joe'");
  ASSERT_TRUE(joes.ok());
  EXPECT_EQ(*joes, OidSet({Oid("E1")}));
}

// §2's set operations: union(S1,S2) and int(S1,S2).
TEST_F(PaperExamplesTest, Section2SetOperations) {
  const OidSet& root_children = store_.Get(Root())->children();
  const OidSet& p1_children = store_.Get(P1())->children();
  OidSet united = OidSet::Union(root_children, p1_children);
  EXPECT_EQ(united.size(), 7u) << "P3 is shared";
  OidSet common = OidSet::Intersect(root_children, p1_children);
  EXPECT_EQ(common, OidSet({P3()}));
}

// §2's query: SELECT ROOT.professor X WHERE X.age > 40 -> {P1}; the same
// query is location-insensitive but WITHIN/ANS INT scope it.
TEST_F(PaperExamplesTest, Section2QueryAndScoping) {
  auto answer =
      EvaluateQueryText(store_, "SELECT ROOT.professor X WHERE X.age > 40");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(*answer, OidSet({P1()}));
}

// Example 3: the virtual view VJ and both of its §3.1 usage modes.
TEST_F(PaperExamplesTest, Example3VirtualViewVJ) {
  auto def = ViewDefinition::Parse(
      "define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' "
      "WITHIN PERSON");
  ASSERT_TRUE(def.ok());
  ASSERT_TRUE(RegisterVirtualView(store_, *def).ok());
  EXPECT_EQ(store_.Get(Oid("VJ"))->children(), OidSet({P1(), P3()}));

  // Query 3.3: constrain with ANS INT.
  auto constrained =
      EvaluateQueryText(store_, "SELECT ROOT.professor X ANS INT VJ");
  ASSERT_TRUE(constrained.ok());
  EXPECT_EQ(*constrained, OidSet({P1()}));

  // Starting point: SELECT VJ.?.age.
  auto ages = EvaluateQueryText(store_, "SELECT VJ.?.age");
  ASSERT_TRUE(ages.ok());
  EXPECT_EQ(*ages, OidSet({A1(), A3()}));
}

// Views 3.4: PROF and STUDENT — views on views restructure access.
TEST_F(PaperExamplesTest, Views34ProfStudentHierarchy) {
  ASSERT_TRUE(RegisterVirtualView(
                  store_, *ViewDefinition::Parse(
                              "define view PROF as: SELECT ROOT.*.professor X"))
                  .ok());
  ASSERT_TRUE(
      RegisterVirtualView(store_,
                          *ViewDefinition::Parse(
                              "define view STUDENT as: SELECT PROF.?.student X"))
          .ok());
  EXPECT_EQ(store_.Get(Oid("PROF"))->children(), OidSet({P1(), P2()}));
  EXPECT_EQ(store_.Get(Oid("STUDENT"))->children(), OidSet({P3()}))
      << "a student who is not a subobject of some professor is excluded";
}

// Example 4 / Figure 3: the materialized view MVJ with delegate objects
// MVJ.P1, MVJ.P3 and semantic OIDs.
TEST_F(PaperExamplesTest, Example4MaterializedViewMVJ) {
  auto def = ViewDefinition::Parse(
      "define mview MVJ as: SELECT ROOT.* X WHERE X.name = 'John' "
      "WITHIN PERSON");
  ASSERT_TRUE(def.ok());
  MaterializedView view(&store_, *def);
  ASSERT_TRUE(view.Initialize(store_).ok());

  const Object* d1 = store_.Get(Oid("MVJ.P1"));
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d1->label(), "professor");
  EXPECT_EQ(d1->children(), OidSet({N1(), A1(), S1(), P3()}));
  const Object* d3 = store_.Get(Oid("MVJ.P3"));
  ASSERT_NE(d3, nullptr);
  EXPECT_EQ(d3->label(), "student");
  EXPECT_EQ(store_.Get(Oid("MVJ"))->children(),
            OidSet({Oid("MVJ.P1"), Oid("MVJ.P3")}));

  // §3.2: a query posed to MVJ returns the same results as posed to VJ.
  auto over_view =
      EvaluateQueryText(store_, "SELECT MVJ.professor.student X");
  ASSERT_TRUE(over_view.ok());
  EXPECT_EQ(*over_view, OidSet({P3()}));
}

// Examples 5 and 6 / Figure 4: Algorithm 1 on YP.
TEST_F(PaperExamplesTest, Examples5And6AlgorithmOne) {
  auto def = ViewDefinition::Parse(
      "define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  ASSERT_TRUE(def.ok());
  MaterializedView view(&store_, *def);
  ASSERT_TRUE(view.Initialize(store_).ok());
  LocalAccessor accessor(&store_);
  Algorithm1Maintainer maintainer(&view, &accessor, *def, Root());
  store_.AddListener(&maintainer);

  // Figure 4 left: YP.P1 only.
  EXPECT_EQ(view.BaseMembers(), OidSet({P1()}));

  // Example 5/6: insert(P2, A2) with <A2, age, 40> brings in YP.P2.
  ASSERT_TRUE(store_.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(store_.Insert(P2(), Oid("A2")).ok());
  EXPECT_EQ(view.BaseMembers(), OidSet({P1(), P2()}));
  EXPECT_TRUE(store_.Contains(Oid("YP.P2")));

  // Example 6 continued: delete(ROOT, P1) removes YP.P1.
  ASSERT_TRUE(store_.Delete(Root(), P1()).ok());
  EXPECT_EQ(view.BaseMembers(), OidSet({P2()}));
  EXPECT_FALSE(store_.Contains(Oid("YP.P1")));
  EXPECT_TRUE(maintainer.last_status().ok());
  EXPECT_TRUE(CheckViewConsistency(view, store_).consistent);
}

// Example 7 / Figure 5: incremental maintenance versus recomputation on the
// relational-style GSDB; see also exp1 in bench/.
TEST_F(PaperExamplesTest, Example7IncrementalVsRecomputation) {
  ObjectStore rel;
  ASSERT_TRUE(rel.PutSet(Oid("REL"), "relations").ok());
  ASSERT_TRUE(rel.PutSet(Oid("R"), "r").ok());
  ASSERT_TRUE(rel.PutSet(Oid("S"), "s").ok());
  ASSERT_TRUE(rel.Insert(Oid("REL"), Oid("R")).ok());
  ASSERT_TRUE(rel.Insert(Oid("REL"), Oid("S")).ok());
  auto def = ViewDefinition::Parse(
      "define mview SEL as: SELECT REL.r.tuple X WHERE X.age > 30");
  ASSERT_TRUE(def.ok());
  MaterializedView view(&rel, *def);
  ASSERT_TRUE(view.Initialize(rel).ok());
  LocalAccessor accessor(&rel);
  Algorithm1Maintainer maintainer(&view, &accessor, *def, Oid("REL"));
  rel.AddListener(&maintainer);

  // Insert tuple T with <A, age, 40>: SEL gains SEL.T, and the maintenance
  // work (metered in StoreMetrics) is tiny because the tree is shallow.
  ASSERT_TRUE(rel.PutAtomic(Oid("A"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(rel.PutSet(Oid("T"), "tuple", {Oid("A")}).ok());
  rel.metrics().Reset();
  ASSERT_TRUE(rel.Insert(Oid("R"), Oid("T")).ok());
  EXPECT_TRUE(view.ContainsBase(Oid("T")));
  int64_t incremental_work = rel.metrics().edges_traversed;

  // The irrelevant insert into s is screened by the first path label.
  ASSERT_TRUE(rel.PutAtomic(Oid("A2"), "age", Value::Int(50)).ok());
  ASSERT_TRUE(rel.PutSet(Oid("T2"), "tuple", {Oid("A2")}).ok());
  int64_t matched_before = maintainer.stats().matched;
  ASSERT_TRUE(rel.Insert(Oid("S"), Oid("T2")).ok());
  EXPECT_EQ(maintainer.stats().matched, matched_before);
  EXPECT_FALSE(view.ContainsBase(Oid("T2")));

  // Full recomputation touches the whole r-subtree.
  rel.metrics().Reset();
  auto recomputed = EvaluateView(rel, *def);
  ASSERT_TRUE(recomputed.ok());
  int64_t recompute_work = rel.metrics().edges_traversed;
  EXPECT_GE(recompute_work, incremental_work);
}

// Example 8: the three-table relational representation.
TEST_F(PaperExamplesTest, Example8RelationalRepresentation) {
  ObjectStore base;
  ASSERT_TRUE(BuildPersonDb(&base, /*with_database=*/false).ok());
  RelationalMirror mirror;
  ASSERT_TRUE(mirror.SyncFromStore(base).ok());
  EXPECT_EQ(mirror.oid_label().Count(
                RelationalMirror::OidLabelRow(Root(), "person")),
            1);
  EXPECT_EQ(
      mirror.parent_child().Count(RelationalMirror::EdgeRow(Root(), P1())), 1);
  EXPECT_EQ(mirror.oid_value().Count(
                RelationalMirror::ValueRow(N1(), Value::Str("John"))),
            1);
  // The paper's caveat: "an insertion of an atomic object needs to modify
  // all three tables."
  base.AddListener(&mirror);
  mirror.metrics().Reset();
  ASSERT_TRUE(base.PutAtomic(Oid("A2"), "age", Value::Int(40)).ok());
  ASSERT_TRUE(base.Insert(P2(), Oid("A2")).ok());
  EXPECT_EQ(mirror.metrics().table_updates, 3);
}

// Example 9: realizing eval() through source queries — fetch all objects in
// N.p, then test the condition locally at the warehouse.
TEST_F(PaperExamplesTest, Example9SourceQueryRealization) {
  WarehouseCosts costs;
  SourceWrapper wrapper(&store_, &costs);
  auto objects = wrapper.FetchPathObjects(P1(), *Path::Parse("age"));
  ASSERT_TRUE(objects.ok());
  ASSERT_EQ(objects->size(), 1u);
  Predicate pred{*PathExpression::Parse(""), CompareOp::kLe, Value::Int(45)};
  EXPECT_TRUE(pred.Holds((*objects)[0].value()));
  EXPECT_EQ(costs.source_queries, 1);

  auto ancestors = wrapper.FetchAncestors(A1(), *Path::Parse("age"));
  ASSERT_TRUE(ancestors.ok());
  EXPECT_EQ(OidSet(*ancestors), OidSet({P1(), Person()}));
}

// Example 10: with the cached auxiliary structure, view maintenance for any
// base update is local (no query-backs beyond cache upkeep).
TEST_F(PaperExamplesTest, Example10CachingMakesMaintenanceLocal) {
  ObjectStore source;
  ASSERT_TRUE(BuildPersonDb(&source, /*with_database=*/false).ok());
  ObjectStore warehouse_store;
  Warehouse warehouse(&warehouse_store);
  ASSERT_TRUE(warehouse
                  .ConnectSource(&source, Root(), ReportingLevel::kWithValues)
                  .ok());
  ASSERT_TRUE(warehouse
                  .DefineView(
                      "define mview YP as: SELECT ROOT.professor X "
                      "WHERE X.age <= 45",
                      Warehouse::CacheMode::kFull)
                  .ok());
  warehouse.costs().Reset();

  // "View maintenance corresponding to any base update can be done locally
  // at the warehouse given the directly affected objects and, if the update
  // is an insertion of a professor P into ROOT, the direct subobjects of P."
  ASSERT_TRUE(source.Modify(A1(), Value::Int(50)).ok());
  EXPECT_EQ(warehouse.costs().source_queries, 0);
  EXPECT_EQ(warehouse.view("YP")->BaseMembers(), OidSet());

  ASSERT_TRUE(source.PutAtomic(Oid("A9"), "age", Value::Int(30)).ok());
  ASSERT_TRUE(source.PutSet(Oid("P9"), "professor", {Oid("A9")}).ok());
  ASSERT_TRUE(source.Insert(Root(), Oid("P9")).ok());
  EXPECT_EQ(warehouse.costs().source_queries,
            warehouse.costs().cache_maintenance_queries)
      << "only the direct-subobjects pull hit the source";
  EXPECT_EQ(warehouse.view("YP")->BaseMembers(), OidSet({Oid("P9")}));
  EXPECT_TRUE(warehouse.last_status().ok());
}

}  // namespace
}  // namespace gsv
