#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/base_accessor.h"
#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "query/condition.h"
#include "oem/label_index.h"
#include "oem/oid_table.h"
#include "oem/store.h"
#include "path/navigate.h"
#include "path/path.h"
#include "path/path_index.h"
#include "query/evaluator.h"
#include "workload/dag_gen.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

ObjectStore::Options ScanOptions() {
  ObjectStore::Options options;
  options.enable_label_index = false;
  return options;
}

Path P(const std::string& text) {
  auto path = Path::Parse(text);
  EXPECT_TRUE(path.ok()) << text;
  return *path;
}

std::vector<std::string> Strs(const std::vector<Oid>& oids) {
  std::vector<std::string> out;
  out.reserve(oids.size());
  for (const Oid& oid : oids) out.push_back(oid.str());
  return out;
}

// ---------------------------------------------------------------------------
// Postings: the LSM-lite list must behave exactly like a sorted set under
// arbitrary interleavings of adds and erases, across compactions.
// ---------------------------------------------------------------------------

TEST(PostingsTest, MatchesReferenceSetUnderRandomOps) {
  std::mt19937_64 rng(7);
  Postings postings;
  std::set<uint64_t> reference;
  // A small value domain forces duplicate adds, erase-of-absent, and many
  // compactions (threshold 64) over 4000 operations.
  std::uniform_int_distribution<uint64_t> value_dist(0, 299);
  std::uniform_int_distribution<int> op_dist(0, 2);
  for (int i = 0; i < 4000; ++i) {
    uint64_t v = value_dist(rng);
    if (op_dist(rng) != 0) {
      EXPECT_EQ(postings.Add(v), reference.insert(v).second);
    } else {
      EXPECT_EQ(postings.Erase(v), reference.erase(v) > 0);
    }
    if (i % 97 == 0) {
      EXPECT_EQ(postings.Size(), reference.size());
      EXPECT_EQ(postings.Contains(v), reference.count(v) > 0);
    }
  }
  EXPECT_EQ(postings.Size(), reference.size());
  std::vector<uint64_t> scanned;
  postings.Scan([&](uint64_t v) { scanned.push_back(v); });
  EXPECT_EQ(scanned, std::vector<uint64_t>(reference.begin(), reference.end()));
  // Range scans agree with the reference on random windows.
  for (int i = 0; i < 20; ++i) {
    uint64_t lo = value_dist(rng);
    uint64_t hi = lo + value_dist(rng) % 50;
    std::vector<uint64_t> got;
    postings.ScanRange(lo, hi, [&](uint64_t v) { got.push_back(v); });
    std::vector<uint64_t> want(reference.lower_bound(lo),
                               reference.lower_bound(hi));
    EXPECT_EQ(got, want) << "[" << lo << ", " << hi << ")";
  }
}

TEST(PostingsTest, EraseFromBaseThenReAdd) {
  Postings postings;
  for (uint64_t v = 0; v < 200; v += 2) postings.Add(v);  // compacts into base
  for (uint64_t v = 0; v < 200; v += 4) EXPECT_TRUE(postings.Erase(v));
  for (uint64_t v = 0; v < 200; v += 4) EXPECT_FALSE(postings.Contains(v));
  for (uint64_t v = 0; v < 200; v += 4) EXPECT_TRUE(postings.Add(v));
  std::vector<uint64_t> scanned;
  postings.Scan([&](uint64_t v) { scanned.push_back(v); });
  std::vector<uint64_t> want;
  for (uint64_t v = 0; v < 200; v += 2) want.push_back(v);
  EXPECT_EQ(scanned, want);
}

// ---------------------------------------------------------------------------
// Snapshots: epochs advance monotonically and published snapshots are frozen.
// ---------------------------------------------------------------------------

TEST(LabelIndexSnapshotTest, EpochsAdvanceAndOldSnapshotsStayFrozen) {
  ObjectStore store;
  ASSERT_TRUE(store.PutSet(Oid("R"), "root").ok());
  ASSERT_TRUE(store.PutAtomic(Oid("A1"), "age", Value::Int(1)).ok());
  ASSERT_TRUE(store.Insert(Oid("R"), Oid("A1")).ok());

  LabelIndexSnapshotPtr before = store.AcquireIndexSnapshot();
  ASSERT_NE(before, nullptr);
  const Postings* ages_before = before->Labels("age");
  ASSERT_NE(ages_before, nullptr);
  EXPECT_EQ(ages_before->Size(), 1u);

  ASSERT_TRUE(store.PutAtomic(Oid("A2"), "age", Value::Int(2)).ok());
  ASSERT_TRUE(store.Insert(Oid("R"), Oid("A2")).ok());

  LabelIndexSnapshotPtr after = store.AcquireIndexSnapshot();
  ASSERT_NE(after, nullptr);
  EXPECT_GT(after->epoch, before->epoch);
  // The old snapshot still answers with the old world.
  EXPECT_EQ(before->Labels("age")->Size(), 1u);
  EXPECT_EQ(after->Labels("age")->Size(), 2u);
  EXPECT_FALSE(before->Labels("age")->Contains(Oid("A2").id()));
  EXPECT_TRUE(after->Labels("age")->Contains(Oid("A2").id()));

  // Step postings: both directions carry the new edge only in `after`.
  const StepBucket* step = after->Step("root", "age");
  ASSERT_NE(step, nullptr);
  EXPECT_TRUE(step->down.Contains(PackPair(Oid("R").id(), Oid("A2").id())));
  EXPECT_TRUE(step->up.Contains(PackPair(Oid("A2").id(), Oid("R").id())));
  const StepBucket* step_before = before->Step("root", "age");
  ASSERT_NE(step_before, nullptr);
  EXPECT_FALSE(
      step_before->down.Contains(PackPair(Oid("R").id(), Oid("A2").id())));
}

TEST(LabelIndexSnapshotTest, DisabledIndexYieldsNullSnapshot) {
  ObjectStore store(ScanOptions());
  ASSERT_TRUE(store.PutSet(Oid("R"), "root").ok());
  EXPECT_EQ(store.AcquireIndexSnapshot(), nullptr);
}

TEST(LabelIndexSnapshotTest, IndexRequiresParentIndex) {
  ObjectStore::Options options;
  options.enable_parent_index = false;
  options.enable_label_index = true;  // overridden by the dependency rule
  ObjectStore store(options);
  EXPECT_FALSE(store.options().enable_label_index);
  EXPECT_EQ(store.AcquireIndexSnapshot(), nullptr);
}

// ---------------------------------------------------------------------------
// Primitive equivalence on a hand-built graph (tree + diamond DAG), checked
// against a scan-configured twin receiving the identical mutation sequence.
// ---------------------------------------------------------------------------

class TwinStoreTest : public ::testing::Test {
 protected:
  // Applies `fn` to both stores and requires identical status.
  void Both(const std::function<Status(ObjectStore&)>& fn) {
    Status a = fn(indexed_);
    Status b = fn(scan_);
    ASSERT_EQ(a.ToString(), b.ToString());
  }

  void ExpectPrimitivesAgree(const Oid& start,
                             const std::vector<std::string>& paths) {
    for (const std::string& text : paths) {
      Path path = P(text);
      OidSet via_index = EvalPath(indexed_, start, path);
      OidSet via_scan = EvalPath(scan_, start, path);
      EXPECT_EQ(Strs(via_index.elements()), Strs(via_scan.elements()))
          << "EvalPath " << text;
      for (const Oid& n : via_scan) {
        EXPECT_EQ(Strs(AncestorsByPath(indexed_, n, path)),
                  Strs(AncestorsByPath(scan_, n, path)))
            << "ancestor(" << n.str() << ", " << text << ")";
        EXPECT_EQ(HasPathFromTo(indexed_, start, n, path),
                  HasPathFromTo(scan_, start, n, path))
            << "haspath(" << n.str() << ", " << text << ")";
      }
    }
  }

  ObjectStore indexed_;
  ObjectStore scan_{ScanOptions()};
};

TEST_F(TwinStoreTest, HandBuiltTreeAndDiamond) {
  Both([](ObjectStore& s) { return s.PutSet(Oid("R"), "root"); });
  Both([](ObjectStore& s) { return s.PutSet(Oid("G1"), "grp"); });
  Both([](ObjectStore& s) { return s.PutSet(Oid("G2"), "grp"); });
  Both([](ObjectStore& s) { return s.PutSet(Oid("M"), "mid"); });
  Both([](ObjectStore& s) {
    return s.PutAtomic(Oid("L1"), "age", Value::Int(10));
  });
  Both([](ObjectStore& s) {
    return s.PutAtomic(Oid("L2"), "age", Value::Int(20));
  });
  Both([](ObjectStore& s) { return s.Insert(Oid("R"), Oid("G1")); });
  Both([](ObjectStore& s) { return s.Insert(Oid("R"), Oid("G2")); });
  // Diamond: both groups share M; M has two age leaves.
  Both([](ObjectStore& s) { return s.Insert(Oid("G1"), Oid("M")); });
  Both([](ObjectStore& s) { return s.Insert(Oid("G2"), Oid("M")); });
  Both([](ObjectStore& s) { return s.Insert(Oid("M"), Oid("L1")); });
  Both([](ObjectStore& s) { return s.Insert(Oid("M"), Oid("L2")); });

  ExpectPrimitivesAgree(Oid("R"), {"grp", "grp.mid", "grp.mid.age"});

  // Delete one diamond arm; the primitives keep agreeing.
  Both([](ObjectStore& s) { return s.Delete(Oid("G2"), Oid("M")); });
  ExpectPrimitivesAgree(Oid("R"), {"grp", "grp.mid", "grp.mid.age"});

  // Modify keeps the label index untouched but must not desync anything.
  Both([](ObjectStore& s) { return s.Modify(Oid("L1"), Value::Int(99)); });
  ExpectPrimitivesAgree(Oid("R"), {"grp.mid.age"});
}

TEST_F(TwinStoreTest, MissingStartAndAbsentLabels) {
  Both([](ObjectStore& s) { return s.PutSet(Oid("R"), "root"); });
  EXPECT_TRUE(EvalPath(indexed_, Oid("nope"), P("grp")).empty());
  EXPECT_TRUE(EvalPath(scan_, Oid("nope"), P("grp")).empty());
  EXPECT_TRUE(EvalPath(indexed_, Oid("R"), P("absent.label")).empty());
  EXPECT_TRUE(AncestorsByPath(indexed_, Oid("R"), P("absent")).empty());
  EXPECT_FALSE(HasPathFromTo(indexed_, Oid("R"), Oid("R"), P("absent")));
}

TEST_F(TwinStoreTest, FilterAppliesToIndexPath) {
  Both([](ObjectStore& s) { return s.PutSet(Oid("R"), "root"); });
  Both([](ObjectStore& s) { return s.PutSet(Oid("G1"), "grp"); });
  Both([](ObjectStore& s) { return s.PutSet(Oid("G2"), "grp"); });
  Both([](ObjectStore& s) { return s.Insert(Oid("R"), Oid("G1")); });
  Both([](ObjectStore& s) { return s.Insert(Oid("R"), Oid("G2")); });
  OidFilter filter = [](const Oid& oid) { return oid != Oid("G2"); };
  OidSet via_index = EvalPath(indexed_, Oid("R"), P("grp"), filter);
  OidSet via_scan = EvalPath(scan_, Oid("R"), P("grp"), filter);
  EXPECT_EQ(Strs(via_index.elements()), Strs(via_scan.elements()));
  EXPECT_EQ(via_index.size(), 1u);
  EXPECT_TRUE(via_index.Contains(Oid("G1")));
}

// Remove() leaves edges dangling; the index must skip them exactly as
// traversal skips unresolvable children, and a re-Put must re-index the
// surviving edges (parent_index_ entries outlive the child).
TEST_F(TwinStoreTest, DanglingEdgesSkippedAndReindexedOnRePut) {
  Both([](ObjectStore& s) { return s.PutSet(Oid("R"), "root"); });
  Both([](ObjectStore& s) { return s.PutSet(Oid("G1"), "grp"); });
  Both([](ObjectStore& s) { return s.PutSet(Oid("G2"), "grp"); });
  Both([](ObjectStore& s) { return s.Insert(Oid("R"), Oid("G1")); });
  Both([](ObjectStore& s) { return s.Insert(Oid("R"), Oid("G2")); });
  Both([](ObjectStore& s) {
    return s.PutAtomic(Oid("L1"), "age", Value::Int(5));
  });
  Both([](ObjectStore& s) { return s.Insert(Oid("G1"), Oid("L1")); });

  // Remove G1 outright: R -> G1 dangles, G1 -> L1 dies with it.
  Both([](ObjectStore& s) { return s.Remove(Oid("G1")); });
  ExpectPrimitivesAgree(Oid("R"), {"grp", "grp.age"});
  EXPECT_EQ(EvalPath(indexed_, Oid("R"), P("grp")).size(), 1u);

  // Re-Put under the same OID with a different label: the dangling R -> G1
  // edge springs back to life under the new label in both stores.
  Both([](ObjectStore& s) { return s.PutSet(Oid("G1"), "team"); });
  ExpectPrimitivesAgree(Oid("R"), {"grp", "team"});
  EXPECT_EQ(EvalPath(indexed_, Oid("R"), P("team")).size(), 1u);
}

TEST_F(TwinStoreTest, SetValueRawTransitionsKeepIndexInLockstep) {
  Both([](ObjectStore& s) { return s.PutSet(Oid("R"), "root"); });
  Both([](ObjectStore& s) { return s.PutSet(Oid("X"), "box"); });
  Both([](ObjectStore& s) { return s.Insert(Oid("R"), Oid("X")); });
  Both([](ObjectStore& s) {
    return s.PutAtomic(Oid("L1"), "age", Value::Int(3));
  });
  Both([](ObjectStore& s) { return s.Insert(Oid("X"), Oid("L1")); });
  ExpectPrimitivesAgree(Oid("R"), {"box", "box.age"});

  // set -> atomic drops the outgoing edge.
  Both([](ObjectStore& s) { return s.SetValueRaw(Oid("X"), Value::Int(1)); });
  ExpectPrimitivesAgree(Oid("R"), {"box", "box.age"});
  EXPECT_TRUE(EvalPath(indexed_, Oid("R"), P("box.age")).empty());

  // atomic -> set with a fresh child list restores edges.
  Both([](ObjectStore& s) {
    return s.SetValueRaw(Oid("X"), Value::Set(OidSet({Oid("L1")})));
  });
  ExpectPrimitivesAgree(Oid("R"), {"box", "box.age"});
  EXPECT_EQ(EvalPath(indexed_, Oid("R"), P("box.age")).size(), 1u);
}

// ---------------------------------------------------------------------------
// Dangling-edge accounting: the Remove-time log and the full audit.
// ---------------------------------------------------------------------------

TEST(DanglingTest, RemoveLogsDanglingParentsWhenEnabled) {
  ObjectStore::Options options;
  options.check_dangling = true;
  ObjectStore store(options);
  ASSERT_TRUE(store.PutSet(Oid("P1"), "grp").ok());
  ASSERT_TRUE(store.PutSet(Oid("P2"), "grp").ok());
  ASSERT_TRUE(store.PutAtomic(Oid("C"), "age", Value::Int(1)).ok());
  ASSERT_TRUE(store.Insert(Oid("P1"), Oid("C")).ok());
  ASSERT_TRUE(store.Insert(Oid("P2"), Oid("C")).ok());

  ASSERT_TRUE(store.Remove(Oid("C")).ok());
  ASSERT_EQ(store.dangling_log().size(), 2u);
  EXPECT_TRUE(store.dangling_log()[0] ==
              (DanglingEdge{Oid("P1"), Oid("C")}));
  EXPECT_TRUE(store.dangling_log()[1] ==
              (DanglingEdge{Oid("P2"), Oid("C")}));

  // The audit finds the same edges from the graph alone.
  std::vector<DanglingEdge> audit = store.AuditDanglingEdges();
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_TRUE(audit[0] == store.dangling_log()[0]);
  EXPECT_TRUE(audit[1] == store.dangling_log()[1]);

  // Re-Put heals the graph: the audit comes back clean, the log persists
  // until cleared (it is a history, not a live view).
  ASSERT_TRUE(store.PutAtomic(Oid("C"), "age", Value::Int(2)).ok());
  EXPECT_TRUE(store.AuditDanglingEdges().empty());
  EXPECT_EQ(store.dangling_log().size(), 2u);
  store.ClearDanglingLog();
  EXPECT_TRUE(store.dangling_log().empty());
}

TEST(DanglingTest, RemoveDoesNotLogByDefault) {
  ObjectStore store;
  ASSERT_TRUE(store.PutSet(Oid("P"), "grp").ok());
  ASSERT_TRUE(store.PutAtomic(Oid("C"), "age", Value::Int(1)).ok());
  ASSERT_TRUE(store.Insert(Oid("P"), Oid("C")).ok());
  ASSERT_TRUE(store.Remove(Oid("C")).ok());
  EXPECT_TRUE(store.dangling_log().empty());
  EXPECT_EQ(store.AuditDanglingEdges().size(), 1u);
}

// ---------------------------------------------------------------------------
// Metrics: the index-backed plan does no edge traversal, counts probes; the
// scan plan counts fallbacks.
// ---------------------------------------------------------------------------

TEST(IndexMetricsTest, ProbesAndFallbacksAreAttributed) {
  ObjectStore indexed;
  ObjectStore scan(ScanOptions());
  TreeGenOptions tree;
  tree.levels = 3;
  tree.fanout = 3;
  ASSERT_TRUE(GenerateTree(&indexed, tree).ok());
  auto scan_tree = GenerateTree(&scan, tree);
  ASSERT_TRUE(scan_tree.ok());
  Oid root = scan_tree->root;

  indexed.metrics().Reset();
  scan.metrics().Reset();
  Path path = P("n1_0.n2_0.age");
  OidSet a = EvalPath(indexed, root, path);
  OidSet b = EvalPath(scan, root, path);
  EXPECT_EQ(Strs(a.elements()), Strs(b.elements()));

  EXPECT_GT(indexed.metrics().index_probes.load(), 0);
  EXPECT_EQ(indexed.metrics().index_fallbacks.load(), 0);
  EXPECT_EQ(indexed.metrics().edges_traversed.load(), 0);
  EXPECT_EQ(scan.metrics().index_probes.load(), 0);
  EXPECT_GT(scan.metrics().index_fallbacks.load(), 0);
  EXPECT_GT(scan.metrics().edges_traversed.load(), 0);
}

// ---------------------------------------------------------------------------
// Randomized property suite: index-backed results must be byte-identical to
// scan-backed results over mixed update streams, on trees and DAGs.
// ---------------------------------------------------------------------------

struct IndexPropertyParam {
  uint64_t seed;
  size_t levels;
  size_t fanout;
  size_t label_variety;
  size_t sel_levels;
  int64_t bound;
  size_t updates;
};

std::string IndexParamName(
    const ::testing::TestParamInfo<IndexPropertyParam>& info) {
  const IndexPropertyParam& p = info.param;
  return "seed" + std::to_string(p.seed) + "_l" + std::to_string(p.levels) +
         "_f" + std::to_string(p.fanout) + "_v" +
         std::to_string(p.label_variety) + "_s" +
         std::to_string(p.sel_levels) + "_b" + std::to_string(p.bound);
}

const IndexPropertyParam kIndexParams[] = {
    {11, 3, 3, 1, 1, 50, 120}, {12, 3, 3, 1, 2, 50, 120},
    {13, 4, 2, 1, 2, 30, 120}, {14, 4, 2, 2, 3, 70, 100},
    {15, 3, 4, 2, 1, 50, 120}, {16, 5, 2, 1, 3, 40, 100},
    {17, 2, 5, 1, 1, 90, 150}, {18, 4, 3, 3, 2, 60, 100},
};

class IndexPropertyTest
    : public ::testing::TestWithParam<IndexPropertyParam> {
 protected:
  // Paths "n1_0", "n1_0.n2_0", ..., down to the age leaves — the probe set
  // compared after every update.
  std::vector<Path> TreePaths(size_t levels) {
    std::vector<Path> paths;
    std::string text;
    for (size_t d = 1; d < levels; ++d) {
      if (!text.empty()) text += ".";
      text += "n" + std::to_string(d) + "_0";
      paths.push_back(P(text));
    }
    paths.push_back(P(text.empty() ? "age" : text + ".age"));
    return paths;
  }

  void ExpectStoresAgree(const ObjectStore& indexed, const ObjectStore& scan,
                         const Oid& root, const std::vector<Path>& paths,
                         const ViewDefinition& def, size_t step) {
    QueryPlan plan;
    auto via_index = EvaluateView(indexed, def, &plan);
    auto via_scan = EvaluateView(scan, def);
    ASSERT_TRUE(via_index.ok());
    ASSERT_TRUE(via_scan.ok());
    ASSERT_EQ(Strs(via_index->elements()), Strs(via_scan->elements()))
        << "query diverged after update " << step;
    EXPECT_EQ(plan.select, QueryPlan::Select::kIndexProbe);

    for (const Path& path : paths) {
      OidSet reached_index = EvalPath(indexed, root, path);
      OidSet reached_scan = EvalPath(scan, root, path);
      ASSERT_EQ(Strs(reached_index.elements()), Strs(reached_scan.elements()))
          << "EvalPath diverged after update " << step;
      // Sample a few reached nodes for the inverse primitives; checking all
      // of them on every step would be quadratic in tree size.
      const std::vector<Oid>& nodes = reached_scan.elements();
      for (size_t i = 0; i < nodes.size(); i += (nodes.size() / 4) + 1) {
        const Oid& n = nodes[i];
        ASSERT_EQ(Strs(AncestorsByPath(indexed, n, path)),
                  Strs(AncestorsByPath(scan, n, path)))
            << "ancestor diverged at " << n.str() << " after " << step;
        ASSERT_EQ(HasPathFromTo(indexed, root, n, path),
                  HasPathFromTo(scan, root, n, path))
            << "haspath diverged at " << n.str() << " after " << step;
        ASSERT_EQ(Strs(indexed.Parents(n)), Strs(scan.Parents(n)))
            << "parents diverged at " << n.str() << " after " << step;
      }
    }
  }
};

TEST_P(IndexPropertyTest, TreeStreamsStayByteIdentical) {
  const IndexPropertyParam& p = GetParam();
  ObjectStore indexed;
  ObjectStore scan(ScanOptions());
  TreeGenOptions tree;
  tree.levels = p.levels;
  tree.fanout = p.fanout;
  tree.label_variety = p.label_variety;
  tree.seed = p.seed;
  auto indexed_tree = GenerateTree(&indexed, tree);
  auto scan_tree = GenerateTree(&scan, tree);
  ASSERT_TRUE(indexed_tree.ok());
  ASSERT_TRUE(scan_tree.ok());
  Oid root = indexed_tree->root;
  auto def = ViewDefinition::Parse(
      TreeViewDefinition("PV", root, p.sel_levels, p.levels, p.bound));
  ASSERT_TRUE(def.ok());
  std::vector<Path> paths = TreePaths(p.levels);

  UpdateGenOptions gen;
  gen.seed = p.seed + 9000;
  UpdateGenerator indexed_gen(&indexed, root, gen);
  UpdateGenerator scan_gen(&scan, root, gen);
  for (size_t i = 0; i < p.updates; ++i) {
    auto a = indexed_gen.Step();
    auto b = scan_gen.Step();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->ToString(), b->ToString()) << "lockstep broke at " << i;
    ExpectStoresAgree(indexed, scan, root, paths, *def, i);
    if (HasFatalFailure()) return;
  }
}

TEST_P(IndexPropertyTest, DagStreamsStayByteIdentical) {
  const IndexPropertyParam& p = GetParam();
  ObjectStore indexed;
  ObjectStore scan(ScanOptions());
  DagGenOptions dag;
  dag.levels = std::max<size_t>(p.levels, 2);
  dag.width = p.fanout * 3;
  dag.seed = p.seed;
  auto indexed_dag = GenerateDag(&indexed, dag);
  auto scan_dag = GenerateDag(&scan, dag);
  ASSERT_TRUE(indexed_dag.ok());
  ASSERT_TRUE(scan_dag.ok());
  Oid root = indexed_dag->root;
  size_t sel = std::min<size_t>(p.sel_levels, dag.levels - 1);
  if (sel == 0) sel = 1;
  auto def = ViewDefinition::Parse(
      DagViewDefinition("DV", root, sel, dag.levels, p.bound));
  ASSERT_TRUE(def.ok());

  std::vector<Path> paths;
  std::string text;
  for (size_t d = 1; d < dag.levels; ++d) {
    if (!text.empty()) text += ".";
    text += "d" + std::to_string(d);
    paths.push_back(P(text));
  }
  paths.push_back(P(text.empty() ? "age" : text + ".age"));

  UpdateGenOptions gen;
  gen.mode = UpdateMode::kDagPreserving;
  gen.seed = p.seed + 9500;
  UpdateGenerator indexed_gen(&indexed, root, gen);
  UpdateGenerator scan_gen(&scan, root, gen);
  for (size_t i = 0; i < p.updates; ++i) {
    auto a = indexed_gen.Step();
    auto b = scan_gen.Step();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->ToString(), b->ToString()) << "lockstep broke at " << i;
    ExpectStoresAgree(indexed, scan, root, paths, *def, i);
    if (HasFatalFailure()) return;
  }
}

// Remove + re-Put interleaved with the stream: the hard case for dangling
// re-indexing under randomized shapes.
TEST_P(IndexPropertyTest, RemoveRePutKeepsStoresIdentical) {
  const IndexPropertyParam& p = GetParam();
  ObjectStore indexed;
  ObjectStore scan(ScanOptions());
  TreeGenOptions tree;
  tree.levels = p.levels;
  tree.fanout = p.fanout;
  tree.label_variety = p.label_variety;
  tree.seed = p.seed;
  auto indexed_tree = GenerateTree(&indexed, tree);
  auto scan_tree = GenerateTree(&scan, tree);
  ASSERT_TRUE(indexed_tree.ok());
  ASSERT_TRUE(scan_tree.ok());
  Oid root = indexed_tree->root;
  std::vector<Path> paths = TreePaths(p.levels);
  auto def = ViewDefinition::Parse(
      TreeViewDefinition("PV", root, p.sel_levels, p.levels, p.bound));
  ASSERT_TRUE(def.ok());

  // Repeatedly Remove() a random leaf outright (leaving its edge dangling),
  // run a few stream updates, then re-Put it.
  std::mt19937_64 rng(p.seed + 77);
  UpdateGenOptions gen;
  gen.seed = p.seed + 9900;
  UpdateGenerator indexed_gen(&indexed, root, gen);
  UpdateGenerator scan_gen(&scan, root, gen);
  const std::vector<Oid>& leaves = indexed_tree->leaves;
  ASSERT_FALSE(leaves.empty());
  for (int round = 0; round < 10; ++round) {
    const Oid& victim = leaves[rng() % leaves.size()];
    if (indexed.Contains(victim)) {
      ASSERT_TRUE(indexed.Remove(victim).ok());
      ASSERT_TRUE(scan.Remove(victim).ok());
    }
    ExpectStoresAgree(indexed, scan, root, paths, *def, round);
    if (HasFatalFailure()) return;
    for (int i = 0; i < 5; ++i) {
      auto a = indexed_gen.Step();
      auto b = scan_gen.Step();
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(a->ToString(), b->ToString());
    }
    if (!indexed.Contains(victim)) {
      Value value = Value::Int(static_cast<int64_t>(rng() % 100));
      ASSERT_TRUE(indexed.PutAtomic(victim, "age", value).ok());
      ASSERT_TRUE(scan.PutAtomic(victim, "age", value).ok());
    }
    ExpectStoresAgree(indexed, scan, root, paths, *def, round);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IndexPropertyTest,
                         ::testing::ValuesIn(kIndexParams), IndexParamName);

// ---------------------------------------------------------------------------
// Batched predicate recheck: AnyCandidateSatisfies must agree with the
// per-candidate Get+Holds loop for every predicate shape and value mix.
// ---------------------------------------------------------------------------

TEST(ValuePostingsTest, AnyCandidateSatisfiesMatchesReferenceLoop) {
  ObjectStore store;
  ASSERT_TRUE(store.PutSet(Oid("vp_R"), "root").ok());

  // A value mix that exercises every posting path: bucketable ints,
  // out-of-bucket-range ints, reals, strings, booleans.
  std::mt19937_64 rng(42);
  std::vector<Oid> atoms;
  for (int i = 0; i < 200; ++i) {
    Value value;
    switch (rng() % 8) {
      case 0:
        value = Value::Real(static_cast<double>(rng() % 100) / 3.0);
        break;
      case 1:
        value = Value::Str("s" + std::to_string(rng() % 50));
        break;
      case 2:
        value = Value::Int(static_cast<int64_t>(rng() % 7) * 3000000000LL -
                           9000000000LL);  // beyond the int32 buckets
        break;
      case 3:
        value = Value::Bool(rng() % 2 == 0);
        break;
      default:
        value = Value::Int(static_cast<int64_t>(rng() % 200) - 50);
        break;
    }
    Oid oid("vp_A" + std::to_string(i));
    ASSERT_TRUE(store.PutAtomic(oid, "age", std::move(value)).ok());
    ASSERT_TRUE(store.Insert(Oid("vp_R"), oid).ok());
    atoms.push_back(oid);
  }

  LabelIndexSnapshotPtr snapshot = store.AcquireIndexSnapshot();
  ASSERT_NE(snapshot, nullptr);

  const std::vector<Value> literals = {
      Value::Int(0),    Value::Int(60),   Value::Int(-50),
      Value::Int(149),  Value::Int(500),  Value::Int(-9000000000LL),
      Value::Real(7.5), Value::Str("s7"), Value::Bool(true)};
  const std::vector<CompareOp> ops = {CompareOp::kEq, CompareOp::kNe,
                                      CompareOp::kLt, CompareOp::kLe,
                                      CompareOp::kGt, CompareOp::kGe};

  for (int round = 0; round < 200; ++round) {
    // Random sorted unique candidate frontier (sometimes empty).
    std::vector<uint32_t> ids;
    for (const Oid& oid : atoms) {
      if (rng() % 4 == 0) ids.push_back(oid.id());
    }
    std::sort(ids.begin(), ids.end());

    Predicate pred;
    pred.op = ops[rng() % ops.size()];
    pred.literal = literals[rng() % literals.size()];

    bool expected = false;
    for (uint32_t id : ids) {
      const Object* object = store.Get(Oid(OidTable::Global().String(id)));
      ASSERT_NE(object, nullptr);
      if (pred.Holds(object->value())) {
        expected = true;
        break;
      }
    }

    StoreMetrics metrics;
    EXPECT_EQ(AnyCandidateSatisfies(store, *snapshot, ids, "age", pred,
                                    &metrics),
              expected)
        << "round " << round << ": " << pred.ToString();
  }
}

TEST(ValuePostingsTest, ModifyMovesValuesBetweenBuckets) {
  ObjectStore store;
  ASSERT_TRUE(store.PutSet(Oid("vm_R"), "root").ok());
  ASSERT_TRUE(store.PutAtomic(Oid("vm_A"), "age", Value::Int(10)).ok());
  ASSERT_TRUE(store.Insert(Oid("vm_R"), Oid("vm_A")).ok());

  StoreMetrics metrics;
  Predicate pred;
  pred.op = CompareOp::kGt;
  pred.literal = Value::Int(50);
  const std::vector<uint32_t> ids = {Oid("vm_A").id()};

  LabelIndexSnapshotPtr snapshot = store.AcquireIndexSnapshot();
  EXPECT_FALSE(AnyCandidateSatisfies(store, *snapshot, ids, "age", pred,
                                     &metrics));

  // Modify republishes the value postings; the sweep sees the new bucket.
  ASSERT_TRUE(store.Modify(Oid("vm_A"), Value::Int(80)).ok());
  snapshot = store.AcquireIndexSnapshot();
  EXPECT_TRUE(AnyCandidateSatisfies(store, *snapshot, ids, "age", pred,
                                    &metrics));

  // And a swap to a non-bucketable value falls back to the store, exactly.
  ASSERT_TRUE(store.Modify(Oid("vm_A"), Value::Real(80.5)).ok());
  snapshot = store.AcquireIndexSnapshot();
  EXPECT_TRUE(AnyCandidateSatisfies(store, *snapshot, ids, "age", pred,
                                    &metrics));
  pred.op = CompareOp::kLt;
  EXPECT_FALSE(AnyCandidateSatisfies(store, *snapshot, ids, "age", pred,
                                     &metrics));
}

}  // namespace
}  // namespace gsv
