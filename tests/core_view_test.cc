#include <gtest/gtest.h>

#include "core/consistency.h"
#include "core/materialized_view.h"
#include "core/swizzle.h"
#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "oem/store.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "workload/person_db.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

// --------------------------------------------------------- ViewDefinition

TEST(ViewDefinitionTest, ParseAndAccessors) {
  auto def = ViewDefinition::Parse(
      "define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->name(), "YP");
  EXPECT_EQ(def->view_oid(), Oid("YP"));
  EXPECT_TRUE(def->materialized());
  ASSERT_TRUE(def->IsSimple());
  EXPECT_EQ(def->sel_path().ToString(), "professor");
  EXPECT_EQ(def->cond_path().ToString(), "age");
  EXPECT_EQ(def->full_path().ToString(), "professor.age");
  ASSERT_TRUE(def->predicate().has_value());
  EXPECT_EQ(def->predicate()->op, CompareOp::kLe);
}

TEST(ViewDefinitionTest, TrivialConditionAccessors) {
  auto def =
      ViewDefinition::Parse("define mview ALL as: SELECT ROOT.professor X");
  ASSERT_TRUE(def.ok());
  ASSERT_TRUE(def->IsSimple());
  EXPECT_TRUE(def->cond_path().empty());
  EXPECT_FALSE(def->predicate().has_value());
  EXPECT_EQ(def->full_path().ToString(), "professor");
}

TEST(ViewDefinitionTest, RejectsDottedAndEmptyNames) {
  auto query = ParseQuery("SELECT ROOT.professor X");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(ViewDefinition::Create("A.B", true, *query).ok());
  EXPECT_FALSE(ViewDefinition::Create("", true, *query).ok());
}

TEST(ViewDefinitionTest, NonSimpleShapes) {
  auto wild = ViewDefinition::Parse(
      "define view V as: SELECT ROOT.* X WHERE X.name = 'John'");
  ASSERT_TRUE(wild.ok());
  EXPECT_FALSE(wild->IsSimple());

  auto multi = ViewDefinition::Parse(
      "define view V as: SELECT ROOT.professor X WHERE X.age > 1 AND "
      "X.name = 'John'");
  ASSERT_TRUE(multi.ok());
  EXPECT_FALSE(multi->IsSimple());
}

// ------------------------------------------------------------ VirtualView

class VirtualViewTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(BuildPersonDb(&store_).ok()); }
  ObjectStore store_;
};

TEST_F(VirtualViewTest, PaperExample3) {
  // define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON
  // -> value(VJ) = {P1, P3}.
  auto def = ViewDefinition::Parse(
      "define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' "
      "WITHIN PERSON");
  ASSERT_TRUE(def.ok());
  auto members = EvaluateView(store_, *def);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(*members, OidSet({P1(), P3()}));

  ASSERT_TRUE(RegisterVirtualView(store_, *def).ok());
  const Object* view_object = store_.Get(Oid("VJ"));
  ASSERT_NE(view_object, nullptr);
  EXPECT_EQ(view_object->label(), "view");
  EXPECT_EQ(view_object->children(), OidSet({P1(), P3()}));

  // Query 3.3: SELECT ROOT.professor X ANS INT VJ -> {P1}.
  auto constrained =
      EvaluateQueryText(store_, "SELECT ROOT.professor X ANS INT VJ");
  ASSERT_TRUE(constrained.ok());
  EXPECT_EQ(*constrained, OidSet({P1()}));

  // Follow-on query over the view: SELECT VJ.?.age (§3.1).
  auto ages = EvaluateQueryText(store_, "SELECT VJ.?.age");
  ASSERT_TRUE(ages.ok());
  EXPECT_EQ(*ages, OidSet({A1(), A3()}));
}

TEST_F(VirtualViewTest, PaperViews34ViewsOnViews) {
  // define view PROF as: SELECT ROOT.*.professor X
  // define view STUDENT as: SELECT PROF.?.student X
  auto prof = ViewDefinition::Parse(
      "define view PROF as: SELECT ROOT.*.professor X");
  ASSERT_TRUE(prof.ok());
  ASSERT_TRUE(RegisterVirtualView(store_, *prof).ok());
  EXPECT_EQ(store_.Get(Oid("PROF"))->children(), OidSet({P1(), P2()}));

  auto student = ViewDefinition::Parse(
      "define view STUDENT as: SELECT PROF.?.student X");
  ASSERT_TRUE(student.ok());
  ASSERT_TRUE(RegisterVirtualView(store_, *student).ok());
  EXPECT_EQ(store_.Get(Oid("STUDENT"))->children(), OidSet({P3()}));
}

TEST_F(VirtualViewTest, RefreshTracksBaseChanges) {
  auto def = ViewDefinition::Parse(
      "define view V as: SELECT ROOT.professor X WHERE X.age > 40");
  ASSERT_TRUE(def.ok());
  ASSERT_TRUE(RegisterVirtualView(store_, *def).ok());
  EXPECT_EQ(store_.Get(Oid("V"))->children(), OidSet({P1()}));

  ASSERT_TRUE(store_.Modify(A1(), Value::Int(30)).ok());
  ASSERT_TRUE(RefreshVirtualView(store_, *def).ok());
  EXPECT_EQ(store_.Get(Oid("V"))->children(), OidSet());

  EXPECT_FALSE(RefreshVirtualView(
                   store_, *ViewDefinition::Parse(
                               "define view NOPE as: SELECT ROOT.professor X"))
                   .ok());
}

// ------------------------------------------------------- MaterializedView

class MaterializedViewTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(BuildPersonDb(&store_).ok()); }

  ViewDefinition MvjDef() {
    auto def = ViewDefinition::Parse(
        "define mview MVJ as: SELECT ROOT.* X WHERE X.name = 'John' "
        "WITHIN PERSON");
    EXPECT_TRUE(def.ok());
    return *def;
  }

  ObjectStore store_;
};

TEST_F(MaterializedViewTest, PaperExample4Initialization) {
  // Centralized: delegates live in the same store as the base.
  MaterializedView view(&store_, MvjDef());
  ASSERT_TRUE(view.Initialize(store_).ok());
  EXPECT_EQ(view.size(), 2u);
  EXPECT_TRUE(view.ContainsBase(P1()));
  EXPECT_TRUE(view.ContainsBase(P3()));

  // Figure 3: <MVJ.P1, professor, {N1,A1,S1,P3}>, <MVJ.P3, student, {...}>.
  const Object* d1 = store_.Get(Oid("MVJ.P1"));
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d1->label(), "professor");
  EXPECT_EQ(d1->children(), OidSet({N1(), A1(), S1(), P3()}))
      << "delegate values hold base OIDs (unswizzled)";
  const Object* d3 = store_.Get(Oid("MVJ.P3"));
  ASSERT_NE(d3, nullptr);
  EXPECT_EQ(d3->label(), "student");

  // The view object <MVJ, mview, set, {MVJ.P1, MVJ.P3}> is a database.
  const Object* mv = store_.Get(Oid("MVJ"));
  ASSERT_NE(mv, nullptr);
  EXPECT_EQ(mv->children(), OidSet({Oid("MVJ.P1"), Oid("MVJ.P3")}));
  EXPECT_EQ(store_.DatabaseOid("MVJ"), Oid("MVJ"));

  EXPECT_TRUE(CheckViewConsistency(view, store_).consistent);
}

TEST_F(MaterializedViewTest, SeparateDelegateStore) {
  ObjectStore warehouse;
  MaterializedView view(&warehouse, MvjDef());
  ASSERT_TRUE(view.Initialize(store_).ok());
  EXPECT_EQ(warehouse.size(), 3u);  // MVJ + two delegates
  EXPECT_TRUE(warehouse.Contains(Oid("MVJ.P1")));
  EXPECT_FALSE(warehouse.Contains(P1())) << "base objects stay at the source";
  EXPECT_TRUE(CheckViewConsistency(view, store_).consistent);
}

TEST_F(MaterializedViewTest, QueryOverMaterializedViewMatchesVirtual) {
  // §3.2: "a query posed to MVJ should return the same results as when the
  // query is posed to VJ" — modulo the delegate OID mapping.
  MaterializedView view(&store_, MvjDef());
  ASSERT_TRUE(view.Initialize(store_).ok());
  // MVJ.professor.student: follows MVJ.P1 (professor), then its child P3
  // (base OID, unswizzled) which is a student.
  auto result = EvaluateQueryText(store_, "SELECT MVJ.professor.student X");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, OidSet({P3()}));
}

TEST_F(MaterializedViewTest, DuplicateVInsertAndAbsentVDeleteAreNoOps) {
  MaterializedView view(&store_, MvjDef());
  ASSERT_TRUE(view.Initialize(store_).ok());
  ASSERT_TRUE(view.VInsert(*store_.Get(P1())).ok());
  EXPECT_EQ(view.stats().ignored_inserts, 1);
  ASSERT_TRUE(view.VDelete(P4()).ok());
  EXPECT_EQ(view.stats().ignored_deletes, 1);
  EXPECT_EQ(view.size(), 2u);
}

TEST_F(MaterializedViewTest, VDeleteRemovesDelegate) {
  MaterializedView view(&store_, MvjDef());
  ASSERT_TRUE(view.Initialize(store_).ok());
  ASSERT_TRUE(view.VDelete(P3()).ok());
  EXPECT_FALSE(store_.Contains(Oid("MVJ.P3")));
  EXPECT_EQ(store_.Get(Oid("MVJ"))->children(), OidSet({Oid("MVJ.P1")}));
  EXPECT_FALSE(view.ContainsBase(P3()));
}

TEST_F(MaterializedViewTest, BootstrapTwiceFails) {
  MaterializedView view(&store_, MvjDef());
  ASSERT_TRUE(view.Bootstrap().ok());
  EXPECT_EQ(view.Bootstrap().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MaterializedViewTest, VInsertBeforeBootstrapFails) {
  MaterializedView view(&store_, MvjDef());
  EXPECT_EQ(view.VInsert(*store_.Get(P1())).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(MaterializedViewTest, SyncUpdatePropagatesValues) {
  ObjectStore warehouse;
  MaterializedView view(&warehouse, MvjDef());
  ASSERT_TRUE(view.Initialize(store_).ok());

  // insert(P1, N4): P1's delegate gains the child.
  ASSERT_TRUE(store_.Insert(P1(), N4()).ok());
  ASSERT_TRUE(view.SyncUpdate(Update::Insert(P1(), N4())).ok());
  EXPECT_TRUE(warehouse.Get(Oid("MVJ.P1"))->children().Contains(N4()));

  // delete it again.
  ASSERT_TRUE(store_.Delete(P1(), N4()).ok());
  ASSERT_TRUE(view.SyncUpdate(Update::Delete(P1(), N4())).ok());
  EXPECT_FALSE(warehouse.Get(Oid("MVJ.P1"))->children().Contains(N4()));

  // Updates to out-of-view objects are ignored.
  ASSERT_TRUE(view.SyncUpdate(Update::Insert(P4(), N4())).ok());
  EXPECT_TRUE(CheckViewConsistency(view, store_).consistent);
}

TEST_F(MaterializedViewTest, SyncDisabledLeavesValuesStale) {
  MaterializedView::Options options;
  options.sync_values = false;
  ObjectStore warehouse;
  MaterializedView view(&warehouse, MvjDef(), options);
  ASSERT_TRUE(view.Initialize(store_).ok());
  ASSERT_TRUE(view.SyncUpdate(Update::Insert(P1(), N4())).ok());
  EXPECT_FALSE(warehouse.Get(Oid("MVJ.P1"))->children().Contains(N4()));
}

// ---------------------------------------------------------------- Swizzle

TEST_F(MaterializedViewTest, IncrementalSwizzleOnInsert) {
  MaterializedView::Options options;
  options.swizzle = true;
  ObjectStore warehouse;
  MaterializedView view(&warehouse, MvjDef(), options);
  ASSERT_TRUE(view.Initialize(store_).ok());
  // P3 is in the view, and P1's delegate references it: swizzled.
  EXPECT_TRUE(
      warehouse.Get(Oid("MVJ.P1"))->children().Contains(Oid("MVJ.P3")));
  EXPECT_FALSE(warehouse.Get(Oid("MVJ.P1"))->children().Contains(P3()));
  // N1 is not in the view: stays a base reference.
  EXPECT_TRUE(warehouse.Get(Oid("MVJ.P1"))->children().Contains(N1()));

  // Queries are unaffected (§3.2): MVJ.professor.student finds the
  // delegate of P3 now.
  auto result =
      EvaluateQueryText(warehouse, "SELECT MVJ.professor.student X");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, OidSet({Oid("MVJ.P3")}));

  // Consistency holds modulo swizzling.
  EXPECT_TRUE(CheckViewConsistency(view, store_).consistent);
}

TEST_F(MaterializedViewTest, VDeleteUnswizzlesReferences) {
  MaterializedView::Options options;
  options.swizzle = true;
  ObjectStore warehouse;
  MaterializedView view(&warehouse, MvjDef(), options);
  ASSERT_TRUE(view.Initialize(store_).ok());
  ASSERT_TRUE(view.VDelete(P3()).ok());
  EXPECT_TRUE(warehouse.Get(Oid("MVJ.P1"))->children().Contains(P3()))
      << "edge reverted to the base OID";
  EXPECT_FALSE(warehouse.Contains(Oid("MVJ.P3")));
}

TEST_F(MaterializedViewTest, BulkSwizzleAndUnswizzle) {
  ObjectStore warehouse;
  MaterializedView view(&warehouse, MvjDef());
  ASSERT_TRUE(view.Initialize(store_).ok());

  ReferenceCounts before = CountReferences(view);
  EXPECT_EQ(before.delegate_refs, 0);
  EXPECT_EQ(before.base_refs, 7);  // P1: N1,A1,S1,P3; P3: N3,A3,M3

  auto swizzled = SwizzleAll(view);
  ASSERT_TRUE(swizzled.ok());
  EXPECT_EQ(*swizzled, 1) << "only P1 -> P3 is view-internal";
  ReferenceCounts after = CountReferences(view);
  EXPECT_EQ(after.delegate_refs, 1);
  EXPECT_EQ(after.base_refs, 6);
  EXPECT_TRUE(CheckViewConsistency(view, store_).consistent)
      << "swizzling must not break value consistency";

  auto unswizzled = UnswizzleAll(view);
  ASSERT_TRUE(unswizzled.ok());
  EXPECT_EQ(*unswizzled, 1);
  EXPECT_EQ(CountReferences(view).delegate_refs, 0);
}

TEST_F(MaterializedViewTest, StripBaseReferencesForAccessControl) {
  ObjectStore warehouse;
  MaterializedView view(&warehouse, MvjDef());
  ASSERT_TRUE(view.Initialize(store_).ok());
  ASSERT_TRUE(SwizzleAll(view).ok());
  auto removed = StripBaseReferences(view);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 6);
  EXPECT_EQ(CountReferences(view).base_refs, 0)
      << "queries inside the view can no longer reach base data (§3.2)";
  // The view is now intentionally value-inconsistent with the base.
  EXPECT_FALSE(CheckViewConsistency(view, store_).consistent);
}

// ------------------------------------------------------------ Consistency

TEST_F(MaterializedViewTest, ConsistencyDetectsDrift) {
  MaterializedView view(&store_, MvjDef());
  ASSERT_TRUE(view.Initialize(store_).ok());
  ASSERT_TRUE(CheckViewConsistency(view, store_).consistent);

  // Make N3 no longer 'John': P3 leaves the expected member set.
  ASSERT_TRUE(store_.Modify(N3(), Value::Str("Jane")).ok());
  ConsistencyReport report = CheckViewConsistency(view, store_);
  EXPECT_FALSE(report.consistent);
  EXPECT_FALSE(report.problems.empty());
  EXPECT_NE(report.ToString(), "consistent");
}

}  // namespace
}  // namespace gsv
