#include <gtest/gtest.h>

#include "core/virtual_view.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "path/navigate.h"
#include "workload/dag_gen.h"
#include "workload/relational_gen.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"
#include "workload/web_gen.h"

namespace gsv {
namespace {

TEST(TreeGenTest, ShapeAndDeterminism) {
  ObjectStore store;
  TreeGenOptions options;
  options.levels = 3;
  options.fanout = 3;
  options.seed = 5;
  auto tree = GenerateTree(&store, options);
  ASSERT_TRUE(tree.ok());
  // 1 root + 3 + 9 internals + 27 leaves.
  EXPECT_EQ(tree->object_count, 40u);
  EXPECT_EQ(tree->leaves.size(), 27u);
  EXPECT_EQ(tree->internal.size(), 12u);
  EXPECT_EQ(store.size(), 40u);

  // Every leaf is an atomic "age"; every internal node is a set.
  for (const Oid& leaf : tree->leaves) {
    const Object* object = store.Get(leaf);
    ASSERT_NE(object, nullptr);
    EXPECT_TRUE(object->IsAtomic());
    EXPECT_EQ(object->label(), "age");
    EXPECT_GE(object->value().AsInt(), 0);
    EXPECT_LT(object->value().AsInt(), options.max_value);
  }

  // Same seed reproduces the same values.
  ObjectStore store2;
  auto tree2 = GenerateTree(&store2, options);
  ASSERT_TRUE(tree2.ok());
  for (const Oid& leaf : tree->leaves) {
    EXPECT_EQ(store.Get(leaf)->value(), store2.Get(leaf)->value());
  }
}

TEST(TreeGenTest, ViewDefinitionSelectsExpectedLevel) {
  ObjectStore store;
  TreeGenOptions options;
  options.levels = 3;
  options.fanout = 2;
  options.label_variety = 1;
  auto tree = GenerateTree(&store, options);
  ASSERT_TRUE(tree.ok());

  // All labels are n<d>_0, so the view selects every depth-2 node whose
  // leaf children pass the bound.
  auto def = ViewDefinition::Parse(
      TreeViewDefinition("TV", tree->root, /*sel_levels=*/2, /*levels=*/3,
                         /*bound=*/options.max_value));
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  ASSERT_TRUE(def->IsSimple());
  auto members = EvaluateView(store, *def);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), 4u) << "all depth-2 nodes (bound is maximal)";

  auto empty_def = ViewDefinition::Parse(
      TreeViewDefinition("TV2", tree->root, 2, 3, /*bound=*/-1));
  auto none = EvaluateView(store, *empty_def);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(TreeGenTest, RejectsDegenerateOptions) {
  ObjectStore store;
  TreeGenOptions options;
  options.levels = 0;
  EXPECT_FALSE(GenerateTree(&store, options).ok());
}

TEST(DagGenTest, NodesHaveMultipleParents) {
  ObjectStore store;
  DagGenOptions options;
  options.levels = 3;
  options.width = 10;
  options.min_parents = 2;
  options.max_parents = 3;
  auto dag = GenerateDag(&store, options);
  ASSERT_TRUE(dag.ok());
  ASSERT_EQ(dag->layers.size(), 3u);

  bool some_multi_parent = false;
  for (const Oid& node : dag->layers[1]) {
    if (store.Parents(node).size() > 1) some_multi_parent = true;
  }
  EXPECT_TRUE(some_multi_parent);
  EXPECT_GE(dag->edge_count, 10u * 3u * 1u);

  // Multiple derivation paths exist for some node.
  bool some_multi_path = false;
  for (const Oid& leaf : dag->layers[2]) {
    if (PathsFromTo(store, dag->root, leaf, 8).size() > 1) {
      some_multi_path = true;
      break;
    }
  }
  EXPECT_TRUE(some_multi_path);
}

TEST(RelationalGenTest, Example7Shape) {
  ObjectStore store;
  RelationalGenOptions options;
  options.relations = 3;
  options.tuples_per_relation = 10;
  options.extra_fields = 2;
  auto rel = GenerateRelationalGsdb(&store, options);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->relation_oids.size(), 3u);
  EXPECT_EQ(rel->tuple_oids.size(), 30u);
  // 1 root + 3 relations + 30 tuples * (1 + 1 age + 2 fields).
  EXPECT_EQ(store.size(), 1u + 3u + 30u * 4u);

  // r0 tuples reachable via the Example 7 path.
  OidSet tuples = EvalPath(store, rel->root, *Path::Parse("r0.tuple"));
  EXPECT_EQ(tuples.size(), 10u);

  auto def = ViewDefinition::Parse(
      RelationalViewDefinition("SEL", rel->root, /*bound=*/-1));
  ASSERT_TRUE(def.ok());
  auto members = EvaluateView(store, *def);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), 10u) << "bound -1 selects every r0 tuple";
}

TEST(WebGenTest, FlowerPagesAndCycles) {
  ObjectStore store;
  WebGenOptions options;
  options.pages = 40;
  options.flower_fraction = 0.3;
  options.seed = 11;
  auto web = GenerateWeb(&store, options);
  ASSERT_TRUE(web.ok());
  EXPECT_EQ(web->pages.size(), 40u);
  EXPECT_GT(web->flower_pages.size(), 0u);
  EXPECT_TRUE(store.DatabaseOid("WEB").valid());

  // The flower view definition finds exactly the flower pages.
  auto def =
      ViewDefinition::Parse(FlowerViewDefinition("FLOWERS", web->root));
  ASSERT_TRUE(def.ok());
  auto members = EvaluateView(store, *def);
  ASSERT_TRUE(members.ok());
  OidSet expected;
  for (const Oid& page : web->flower_pages) expected.Insert(page);
  EXPECT_EQ(*members, expected);

  // Link graph may contain cycles; expression evaluation must terminate.
  OidSet reachable =
      EvalExpression(store, web->pages[0], *PathExpression::Parse("*"));
  EXPECT_GT(reachable.size(), 1u);
}

TEST(UpdateGenTest, TreePreservingStreamKeepsTreeShape) {
  ObjectStore store;
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 3;
  auto tree = GenerateTree(&store, tree_options);
  ASSERT_TRUE(tree.ok());

  UpdateGenOptions options;
  options.mode = UpdateMode::kTreePreserving;
  options.seed = 3;
  UpdateGenerator generator(&store, tree->root, options);
  auto updates = generator.Run(200);
  ASSERT_TRUE(updates.ok()) << updates.status().ToString();
  EXPECT_EQ(updates->size(), 200u);

  // Every reachable node still has at most one reachable parent (tree).
  OidSet reachable = EvalExpression(store, tree->root,
                                    *PathExpression::Parse("*"));
  for (const Oid& oid : reachable) {
    if (oid == tree->root) continue;
    size_t reachable_parents = 0;
    for (const Oid& parent : store.Parents(oid)) {
      if (reachable.Contains(parent)) ++reachable_parents;
    }
    EXPECT_LE(reachable_parents, 1u) << oid.str();
  }
}

TEST(UpdateGenTest, DeterministicStreams) {
  auto run = [](uint64_t seed) {
    ObjectStore store;
    TreeGenOptions tree_options;
    auto tree = GenerateTree(&store, tree_options);
    UpdateGenOptions options;
    options.seed = seed;
    UpdateGenerator generator(&store, tree->root, options);
    auto updates = generator.Run(50);
    std::string log;
    for (const Update& update : *updates) log += update.ToString() + "\n";
    return log;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(UpdateGenTest, DagModeCreatesMultipleParentsButNoCycles) {
  ObjectStore store;
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 3;
  auto tree = GenerateTree(&store, tree_options);
  ASSERT_TRUE(tree.ok());

  UpdateGenOptions options;
  options.mode = UpdateMode::kDagPreserving;
  options.p_insert = 0.8;
  options.p_delete = 0.1;
  options.p_modify = 0.1;
  options.seed = 13;
  UpdateGenerator generator(&store, tree->root, options);
  ASSERT_TRUE(generator.Run(200).ok());

  // No cycle: a DFS from the root must terminate and no node may reach
  // itself. EvalExpression's visited set would hide a cycle, so check by
  // looking for any node reachable from one of its children.
  OidSet reachable =
      EvalExpression(store, tree->root, *PathExpression::Parse("*"));
  for (const Oid& oid : reachable) {
    const Object* object = store.Get(oid);
    if (object == nullptr || !object->IsSet()) continue;
    for (const Oid& child : object->children()) {
      OidSet below = EvalExpression(store, child, *PathExpression::Parse("*"));
      EXPECT_FALSE(below.Contains(oid))
          << "cycle through " << oid.str() << " -> " << child.str();
    }
  }
}

}  // namespace
}  // namespace gsv
