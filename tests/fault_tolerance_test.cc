// Fault-tolerance suite: the deterministic fault injector, the wrapper's
// admission control (retry + circuit breaker), the quarantine lifecycle,
// and the end-to-end convergence guarantee — under seeded channel faults a
// warehouse that heals and resyncs ends byte-identical to one that never
// saw a fault.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/consistency.h"
#include "core/virtual_view.h"
#include "oem/store.h"
#include "query/evaluator.h"
#include "util/retry.h"
#include "warehouse/fault_injector.h"
#include "warehouse/warehouse.h"
#include "warehouse/wrapper.h"
#include "workload/person_db.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

// ---------------------------------------------------------- FaultInjector

TEST(FaultInjectorTest, SameSeedSameFaultSchedule) {
  FaultProfile profile;
  profile.seed = 42;
  profile.wrapper_fail_rate = 0.3;
  profile.event_drop_rate = 0.2;
  profile.event_duplicate_rate = 0.2;
  FaultInjector a(profile);
  FaultInjector b(profile);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.OnWrapperCall("op").ok(), b.OnWrapperCall("op").ok()) << i;
    EXPECT_EQ(a.DropEvent(), b.DropEvent()) << i;
    EXPECT_EQ(a.DuplicateEvent(), b.DuplicateEvent()) << i;
  }
  EXPECT_EQ(a.wrapper_faults(), b.wrapper_faults());
  EXPECT_EQ(a.events_dropped(), b.events_dropped());
  EXPECT_EQ(a.events_duplicated(), b.events_duplicated());
  EXPECT_GT(a.wrapper_faults(), 0);
  EXPECT_GT(a.events_dropped(), 0);
}

TEST(FaultInjectorTest, FaultsArriveInBursts) {
  FaultProfile profile;
  profile.seed = 7;
  profile.wrapper_fail_rate = 0.05;
  profile.wrapper_fail_burst = 4;
  FaultInjector injector(profile);
  // Scan for the first fault; the next three attempts must fail too.
  int i = 0;
  while (injector.OnWrapperCall("op").ok()) {
    ASSERT_LT(++i, 10000) << "profile should eventually fault";
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_FALSE(injector.OnWrapperCall("op").ok()) << "burst position " << j;
  }
}

TEST(FaultInjectorTest, ScriptedControlsOverrideTheProfile) {
  FaultInjector injector(FaultProfile{});  // all rates zero
  EXPECT_TRUE(injector.OnWrapperCall("op").ok());
  EXPECT_FALSE(injector.DropEvent());

  injector.FailNextCalls(2);
  EXPECT_EQ(injector.OnWrapperCall("op").code(), StatusCode::kUnavailable);
  EXPECT_FALSE(injector.OnWrapperCall("op").ok());
  EXPECT_TRUE(injector.OnWrapperCall("op").ok());

  injector.DropNextEvents(1);
  EXPECT_TRUE(injector.DropEvent());
  EXPECT_FALSE(injector.DropEvent());

  injector.DuplicateNextEvents(1);
  EXPECT_TRUE(injector.DuplicateEvent());
  EXPECT_FALSE(injector.DuplicateEvent());

  injector.set_down(true);
  EXPECT_FALSE(injector.OnWrapperCall("op").ok());
  injector.Heal();
  EXPECT_TRUE(injector.OnWrapperCall("op").ok());
}

TEST(FaultInjectorTest, HealZeroesScriptedAndProbabilisticFaults) {
  FaultProfile profile;
  profile.seed = 3;
  profile.wrapper_fail_rate = 1.0;
  profile.event_drop_rate = 1.0;
  profile.event_duplicate_rate = 1.0;
  FaultInjector injector(profile);
  injector.FailNextCalls(5);
  injector.DropNextEvents(5);
  EXPECT_FALSE(injector.OnWrapperCall("op").ok());
  EXPECT_TRUE(injector.DropEvent());
  injector.Heal();
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(injector.OnWrapperCall("op").ok());
    EXPECT_FALSE(injector.DropEvent());
    EXPECT_FALSE(injector.DuplicateEvent());
  }
}

// ------------------------------------------------------- Wrapper admission

class WrapperFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(BuildPersonDb(&source_, /*with_database=*/false).ok());
    wrapper_ = std::make_unique<SourceWrapper>(&source_, &costs_);
    wrapper_->set_fault_injector(&injector_);
  }

  ObjectStore source_;
  WarehouseCosts costs_;
  FaultInjector injector_{FaultProfile{}};
  std::unique_ptr<SourceWrapper> wrapper_;
};

TEST_F(WrapperFaultTest, TransientFaultsAreRetriedAway) {
  // Two injected failures, then success: one call, two retries, an answer.
  injector_.FailNextCalls(2);
  auto object = wrapper_->FetchObject(P1());
  ASSERT_TRUE(object.ok()) << object.status().ToString();
  EXPECT_EQ(costs_.wrapper_retries, 2);
  EXPECT_EQ(costs_.wrapper_failures, 0);
  EXPECT_EQ(wrapper_->breaker_state(), CircuitBreaker::State::kClosed);
}

TEST_F(WrapperFaultTest, ExhaustedRetriesSurfaceAsFailure) {
  injector_.FailNextCalls(100);
  auto object = wrapper_->FetchObject(P1());
  ASSERT_FALSE(object.ok());
  EXPECT_TRUE(IsSourceFailure(object.status()))
      << object.status().ToString();
  EXPECT_EQ(costs_.wrapper_failures, 1);
  EXPECT_EQ(costs_.wrapper_retries, wrapper_->retry_policy().max_attempts - 1);
}

TEST_F(WrapperFaultTest, BreakerTripsThenFailsFastThenRecovers) {
  injector_.set_down(true);
  CircuitBreaker::Options breaker_options;
  // Every fetch exhausts its retries and counts one breaker failure.
  for (int i = 0; i < breaker_options.failure_threshold; ++i) {
    EXPECT_FALSE(wrapper_->FetchObject(P1()).ok());
  }
  EXPECT_EQ(costs_.breaker_trips, 1);
  EXPECT_EQ(wrapper_->breaker_state(), CircuitBreaker::State::kOpen);

  // While open, calls are rejected without consulting the source: the
  // injector sees no new attempts.
  const int64_t faults_before = injector_.wrapper_faults();
  EXPECT_FALSE(wrapper_->FetchObject(P1()).ok());
  EXPECT_EQ(injector_.wrapper_faults(), faults_before);
  EXPECT_GT(costs_.breaker_rejections, 0);

  // A forced probe bypasses the open breaker; once the source heals it
  // succeeds and closes the breaker again.
  injector_.Heal();
  ASSERT_TRUE(wrapper_->Probe(/*force=*/true).ok());
  EXPECT_EQ(wrapper_->breaker_state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(wrapper_->FetchObject(P1()).ok());
}

TEST_F(WrapperFaultTest, OpenBreakerHalfOpensAfterEnoughRejections) {
  injector_.set_down(true);
  CircuitBreaker::Options breaker_options;
  for (int i = 0; i < breaker_options.failure_threshold; ++i) {
    EXPECT_FALSE(wrapper_->Probe().ok());
  }
  ASSERT_EQ(wrapper_->breaker_state(), CircuitBreaker::State::kOpen);

  // The source recovers while the breaker is open. After open_rejections
  // fail-fast calls the breaker lets one probe through, which succeeds and
  // closes the circuit — no forced probe needed.
  injector_.Heal();
  Status last = Status::Ok();
  for (int i = 0; i < breaker_options.open_rejections + 1; ++i) {
    last = wrapper_->Probe();
    if (last.ok()) break;
  }
  EXPECT_TRUE(last.ok());
  EXPECT_EQ(wrapper_->breaker_state(), CircuitBreaker::State::kClosed);
}

// ------------------------------------------------- e2e fault convergence

// The acceptance test of the fault-tolerance layer: drive two warehouses
// with the identical seeded update stream, one over a perfect channel, one
// over a channel that drops deliveries, duplicates deliveries and fails
// query-backs in bursts. After the faulty channel heals and stale views
// resync, both warehouses must hold byte-identical views — same members,
// same delegate labels and values — and match a from-scratch evaluation.
struct ConvergenceConfig {
  std::string name;
  Warehouse::CacheMode cache = Warehouse::CacheMode::kNone;
  bool batched = false;
};

void RunConvergenceCheck(const ConvergenceConfig& config) {
  SCOPED_TRACE(config.name);
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 4;
  tree_options.seed = 101;

  ObjectStore source_a;  // perfect channel
  ObjectStore source_b;  // faulty channel
  auto tree_a = GenerateTree(&source_a, tree_options);
  auto tree_b = GenerateTree(&source_b, tree_options);
  ASSERT_TRUE(tree_a.ok());
  ASSERT_TRUE(tree_b.ok());
  ASSERT_EQ(tree_a->root, tree_b->root);
  const std::string definition =
      TreeViewDefinition("WV", tree_a->root, 2, 3, 50);

  ObjectStore store_a;
  Warehouse clean(&store_a);
  ASSERT_TRUE(
      clean.ConnectSource(&source_a, tree_a->root, ReportingLevel::kWithValues)
          .ok());
  ASSERT_TRUE(clean.DefineView(definition, config.cache).ok());

  ObjectStore store_b;
  Warehouse faulty(&store_b);
  ASSERT_TRUE(
      faulty
          .ConnectSource(&source_b, tree_b->root, ReportingLevel::kWithValues)
          .ok());
  ASSERT_TRUE(faulty.DefineView(definition, config.cache).ok());

  FaultProfile profile;
  profile.seed = 97;
  profile.wrapper_fail_rate = 0.05;
  profile.wrapper_fail_burst = 6;  // longer than the retry budget
  profile.event_drop_rate = 0.05;
  profile.event_duplicate_rate = 0.05;
  FaultInjector injector(profile);
  ASSERT_TRUE(faulty.SetFaultInjector("source1", &injector).ok());

  if (config.batched) {
    clean.set_deferred(true);
    faulty.set_deferred(true);
  }

  UpdateGenOptions gen_options;
  gen_options.seed = 211;
  UpdateGenerator gen_a(&source_a, tree_a->root, gen_options);
  UpdateGenerator gen_b(&source_b, tree_b->root, gen_options);

  const size_t kUpdates = 600;
  const size_t kDrainEvery = 50;
  for (size_t applied = 0; applied < kUpdates; applied += kDrainEvery) {
    ASSERT_TRUE(gen_a.Run(kDrainEvery).ok());
    ASSERT_TRUE(gen_b.Run(kDrainEvery).ok());
    if (config.batched) {
      ASSERT_TRUE(clean.ProcessPendingBatch().ok());
      ASSERT_TRUE(faulty.ProcessPendingBatch().ok())
          << faulty.last_status().ToString();
    }
    // Faults never abort maintenance — they quarantine.
    ASSERT_TRUE(faulty.last_status().ok())
        << faulty.last_status().ToString();
  }

  // The faulty run must actually have seen faults, or this test is vacuous.
  EXPECT_GT(injector.events_dropped() + injector.events_duplicated() +
                injector.wrapper_faults(),
            0);

  // Recovery: heal the channel, resync whatever quarantined.
  injector.Heal();
  ASSERT_TRUE(faulty.ResyncStaleViews().ok());
  EXPECT_EQ(faulty.stale_view_count(), 0u);
  EXPECT_EQ(faulty.buffered_stale_events(), 0u);

  // Byte-identical convergence with the fault-free warehouse.
  MaterializedView* view_a = clean.view("WV");
  MaterializedView* view_b = faulty.view("WV");
  ASSERT_NE(view_a, nullptr);
  ASSERT_NE(view_b, nullptr);
  const OidSet members = view_a->BaseMembers();
  ASSERT_EQ(members, view_b->BaseMembers());
  const Object* object_a = store_a.Get(view_a->view_oid());
  const Object* object_b = store_b.Get(view_b->view_oid());
  ASSERT_NE(object_a, nullptr);
  ASSERT_NE(object_b, nullptr);
  EXPECT_EQ(object_a->value(), object_b->value());
  for (const Oid& member : members) {
    Oid delegate = Oid::Delegate(view_a->view_oid(), member);
    const Object* delegate_a = store_a.Get(delegate);
    const Object* delegate_b = store_b.Get(delegate);
    ASSERT_NE(delegate_a, nullptr) << delegate.str();
    ASSERT_NE(delegate_b, nullptr) << delegate.str();
    EXPECT_EQ(delegate_a->label(), delegate_b->label()) << delegate.str();
    EXPECT_EQ(delegate_a->value(), delegate_b->value()) << delegate.str();
  }

  // And with the ground truth over the final source state.
  auto def = ViewDefinition::Parse(definition);
  ASSERT_TRUE(def.ok());
  auto truth = EvaluateView(source_b, *def);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(view_b->BaseMembers(), *truth);
  ConsistencyReport report = CheckViewConsistency(*view_b, source_b);
  EXPECT_TRUE(report.consistent) << report.ToString();
}

TEST(FaultConvergenceTest, PerEventNoCache) {
  RunConvergenceCheck({"per-event/no-cache", Warehouse::CacheMode::kNone,
                       /*batched=*/false});
}

TEST(FaultConvergenceTest, PerEventFullCache) {
  RunConvergenceCheck({"per-event/full-cache", Warehouse::CacheMode::kFull,
                       /*batched=*/false});
}

TEST(FaultConvergenceTest, BatchedNoCache) {
  RunConvergenceCheck({"batched/no-cache", Warehouse::CacheMode::kNone,
                       /*batched=*/true});
}

TEST(FaultConvergenceTest, BatchedFullCache) {
  RunConvergenceCheck({"batched/full-cache", Warehouse::CacheMode::kFull,
                       /*batched=*/true});
}

}  // namespace
}  // namespace gsv
