// Durability suite: WAL framing/scan/truncation, crash injection, checkpoint
// round trips and fallback, the recovery planner's three zones, and the
// end-to-end guarantee — a warehouse killed at an arbitrary point in a
// batched drain recovers to a state byte-identical to a twin that never
// crashed.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/virtual_view.h"
#include "oem/paged_engine.h"
#include "oem/serialize.h"
#include "oem/store.h"
#include "query/evaluator.h"
#include "storage/checkpoint.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "warehouse/aux_cache.h"
#include "warehouse/sharded_warehouse.h"
#include "warehouse/sharding.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

std::string TempDir(const std::string& tag) {
  std::string path = ::testing::TempDir() + "gsv_recovery_" + tag;
  std::filesystem::remove_all(path);
  return path;
}

// CI re-points this suite's durable/recovered warehouse delegate stores at
// the paged engine via GSV_STORAGE_ENGINE=paged (ci.sh "paged" stage);
// unset, the factory is null and the memory default serves. The twin
// warehouses stay memory-resident on purpose, so under the env override
// every byte-identity assertion below doubles as a cross-engine check.
ObjectStore::Options DelegateStoreOptions() {
  ObjectStore::Options options;
  options.engine_factory = MakeEngineFactoryFromEnv();
  return options;
}

ShardedWarehouse::Options ShardedDelegateOptions() {
  ShardedWarehouse::Options options;
  options.engine_factory = MakeEngineFactoryFromEnv();
  return options;
}

UpdateEvent MakeInsertEvent(uint64_t sequence) {
  UpdateEvent event;
  event.kind = UpdateKind::kInsert;
  event.parent = Oid("p1");
  event.child = Oid("c1");
  event.level = ReportingLevel::kWithValues;
  event.sequence = sequence;
  OidSet children;
  children.Insert(Oid("c1"));
  event.parent_object = Object(Oid("p1"), "folder", Value::Set(children));
  event.child_object = Object(Oid("c1"), "age", Value::Int(41));
  RootPathInfo info;
  info.oids = {Oid("r"), Oid("p1")};
  info.labels = Path(std::vector<std::string>{"folder"});
  event.root_path = info;
  return event;
}

// ------------------------------------------------------------------ codec

TEST(WalCodecTest, AllRecordTypesRoundTrip) {
  std::vector<WalRecord> records;
  records.push_back(WalRecord::Event("source1", MakeInsertEvent(7)));
  records.push_back(
      WalRecord::VInsert("WV", Object(Oid("x"), "age", Value::Int(3))));
  records.push_back(WalRecord::VDelete("WV", Oid("x")));
  records.push_back(WalRecord::Sync(
      "WV", Update::Modify(Oid("x"), Value::Int(3), Value::Int(4))));
  records.push_back(
      WalRecord::Refresh("WV", Object(Oid("y"), "name",
                                      Value::Str("a \"quoted\" name\n"))));
  records.push_back(WalRecord::Commit({{"source1", 7}, {"source2", 0}}));
  records.push_back(
      WalRecord::ViewDef("define mview WV as: SELECT r.a X", 2, "source1"));

  uint64_t lsn = 1;
  for (WalRecord& record : records) {
    record.lsn = lsn++;
    auto decoded = DecodeWalPayload(EncodeWalPayload(record));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(WalRecordToString(decoded.value()), WalRecordToString(record));
    EXPECT_EQ(decoded.value().type, record.type);
    EXPECT_EQ(decoded.value().lsn, record.lsn);
  }

  // Spot checks beyond the string form.
  auto event = DecodeWalPayload(EncodeWalPayload(records[0]));
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event.value().source, "source1");
  EXPECT_EQ(event.value().event.sequence, 7u);
  ASSERT_TRUE(event.value().event.child_object.has_value());
  EXPECT_EQ(event.value().event.child_object->value(), Value::Int(41));
  ASSERT_TRUE(event.value().event.root_path.has_value());
  EXPECT_EQ(event.value().event.root_path->oids.size(), 2u);

  auto commit = DecodeWalPayload(EncodeWalPayload(records[5]));
  ASSERT_TRUE(commit.ok());
  ASSERT_EQ(commit.value().watermarks.size(), 2u);
  EXPECT_EQ(commit.value().watermarks[0].source, "source1");
  EXPECT_EQ(commit.value().watermarks[0].last_sequence, 7u);
}

// ------------------------------------------------------------- append/scan

TEST(WalTest, AppendScanRoundTripAcrossSegments) {
  std::string dir = TempDir("append_scan");
  {
    auto wal = Wal::Open(dir, Wal::Options{FsyncPolicy::kNever}, 1);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          wal.value()->Append(WalRecord::Event("s", MakeInsertEvent(i + 1)))
              .ok());
    }
    ASSERT_TRUE(wal.value()->Roll().ok());
    ASSERT_TRUE(wal.value()->Append(WalRecord::Commit({{"s", 5}})).ok());
    EXPECT_EQ(wal.value()->next_lsn(), 7u);
  }

  auto segments = ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments.value().size(), 2u);
  EXPECT_EQ(segments.value()[0].first_lsn, 1u);
  EXPECT_EQ(segments.value()[1].first_lsn, 6u);

  auto scan = ScanWal(dir);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan.value().torn);
  ASSERT_EQ(scan.value().records.size(), 6u);
  EXPECT_EQ(scan.value().next_lsn, 7u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(scan.value().records[i].lsn, i + 1);
  }
  EXPECT_EQ(scan.value().records[5].type, WalRecordType::kCommit);

  // Reopen continues the newest segment and the LSN sequence.
  auto reopened = Wal::Open(dir, Wal::Options{FsyncPolicy::kNever},
                            scan.value().next_lsn);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(
      reopened.value()->Append(WalRecord::VDelete("WV", Oid("x"))).ok());
  auto rescan = ScanWal(dir);
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan.value().records.size(), 7u);
  EXPECT_EQ(rescan.value().records.back().lsn, 7u);
}

TEST(WalTest, ScanDetectsTornTailAndTruncateRepairs) {
  std::string dir = TempDir("torn");
  {
    auto wal = Wal::Open(dir, Wal::Options{FsyncPolicy::kNever}, 1);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          wal.value()->Append(WalRecord::VDelete("WV", Oid("x"))).ok());
    }
  }
  // A power loss mid-write: garbage bytes that are not a complete frame.
  auto segments = ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments.value().size(), 1u);
  {
    std::ofstream out(segments.value()[0].path,
                      std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00\x00junk", 8);
  }

  auto scan = ScanWal(dir);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().torn);
  EXPECT_EQ(scan.value().records.size(), 3u);
  EXPECT_EQ(scan.value().next_lsn, 4u);
  EXPECT_EQ(scan.value().torn_bytes, 8u);

  ASSERT_TRUE(TruncateWal(dir, scan.value().torn_segment,
                          scan.value().torn_offset)
                  .ok());
  auto rescan = ScanWal(dir);
  ASSERT_TRUE(rescan.ok());
  EXPECT_FALSE(rescan.value().torn);
  EXPECT_EQ(rescan.value().records.size(), 3u);
}

TEST(WalTest, CrashInjectionTearsTheTailAndSticks) {
  std::string dir = TempDir("crash");
  auto wal = Wal::Open(dir, Wal::Options{FsyncPolicy::kNever}, 1);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(WalRecord::VDelete("WV", Oid("x"))).ok());
  int64_t clean_bytes = wal.value()->bytes_written();

  wal.value()->set_crash_after_bytes(5);  // mid-frame of the next record
  Status torn = wal.value()->Append(WalRecord::VDelete("WV", Oid("y")));
  EXPECT_EQ(torn.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(wal.value()->crashed());
  // Sticky: the log stays dead.
  EXPECT_EQ(wal.value()->Append(WalRecord::Commit({})).code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(wal.value()->Sync().code(), StatusCode::kDataLoss);

  auto scan = ScanWal(dir);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().torn);
  ASSERT_EQ(scan.value().records.size(), 1u);
  EXPECT_EQ(static_cast<int64_t>(scan.value().torn_offset), clean_bytes);
}

// ------------------------------------------------------------- checkpoints

CheckpointCapture MakeCapture(uint64_t id, const std::string& marker) {
  CheckpointCapture capture;
  capture.manifest.id = id;
  capture.manifest.wal_lsn = id * 10;
  capture.manifest.watermarks = {{"source1", id * 10}};
  CheckpointViewState view;
  view.name = "WV";
  view.source = "source1";
  view.cache_mode = 2;
  view.stale = false;
  view.definition = "define mview WV as: SELECT r.a X WHERE X.age <= 50";
  capture.manifest.views.push_back(view);
  capture.store_text = "# store " + marker + "\n";
  capture.cache_texts.emplace_back("WV", "# cache " + marker + "\n");
  return capture;
}

TEST(CheckpointTest, PersistLoadRoundTrip) {
  std::string dir = TempDir("ckpt_roundtrip");
  ASSERT_TRUE(PersistCheckpoint(dir, MakeCapture(1, "one")).ok());

  auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().manifest.id, 1u);
  EXPECT_EQ(loaded.value().manifest.wal_lsn, 10u);
  ASSERT_EQ(loaded.value().manifest.watermarks.size(), 1u);
  EXPECT_EQ(loaded.value().manifest.watermarks[0].last_sequence, 10u);
  ASSERT_EQ(loaded.value().manifest.views.size(), 1u);
  EXPECT_EQ(loaded.value().manifest.views[0].definition,
            "define mview WV as: SELECT r.a X WHERE X.age <= 50");
  EXPECT_EQ(loaded.value().store_text, "# store one\n");
  ASSERT_EQ(loaded.value().cache_texts.count("WV"), 1u);
  EXPECT_EQ(loaded.value().cache_texts.at("WV"), "# cache one\n");
}

TEST(CheckpointTest, CorruptNewestFallsBackToPrevious) {
  std::string dir = TempDir("ckpt_fallback");
  ASSERT_TRUE(PersistCheckpoint(dir, MakeCapture(1, "one")).ok());
  ASSERT_TRUE(PersistCheckpoint(dir, MakeCapture(2, "two")).ok());

  // Flip the newest checkpoint's store file: CRC mismatch.
  {
    std::ofstream out(dir + "/checkpoint-000002/store.gsv",
                      std::ios::binary | std::ios::trunc);
    out << "# corrupted\n";
  }
  auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().manifest.id, 1u);
  EXPECT_EQ(loaded.value().store_text, "# store one\n");
}

TEST(CheckpointTest, RetentionKeepsTheTwoNewest) {
  std::string dir = TempDir("ckpt_retention");
  for (uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(
        PersistCheckpoint(dir, MakeCapture(id, std::to_string(id))).ok());
  }
  auto list = ListCheckpoints(dir);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.value().size(), 2u);
  EXPECT_EQ(list.value()[0].id, 3u);
  EXPECT_EQ(list.value()[1].id, 4u);
}

// ---------------------------------------------------------------- planner

TEST(RecoveryPlanTest, PartitionsCommittedAndUncommittedTail) {
  std::string dir = TempDir("plan");
  {
    auto wal = Wal::Open(dir, Wal::Options{FsyncPolicy::kNever}, 1);
    ASSERT_TRUE(wal.ok());
    Wal& w = *wal.value();
    ASSERT_TRUE(w.Append(WalRecord::Event("source1", MakeInsertEvent(1))).ok());
    ASSERT_TRUE(
        w.Append(WalRecord::VInsert("WV", Object(Oid("p1"), "folder",
                                                 Value::Set(OidSet()))))
            .ok());
    ASSERT_TRUE(w.Append(WalRecord::Commit({{"source1", 1}})).ok());
    // Interrupted group: an event and a delta, no commit.
    ASSERT_TRUE(w.Append(WalRecord::Event("source1", MakeInsertEvent(2))).ok());
    ASSERT_TRUE(w.Append(WalRecord::VDelete("WV", Oid("p1"))).ok());
  }

  auto plan = PlanRecovery(dir);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan.value().have_checkpoint);
  ASSERT_EQ(plan.value().committed.size(), 3u);
  EXPECT_EQ(plan.value().committed[2].type, WalRecordType::kCommit);
  ASSERT_EQ(plan.value().watermarks.size(), 1u);
  EXPECT_EQ(plan.value().watermarks[0].last_sequence, 1u);
  ASSERT_EQ(plan.value().tail.size(), 1u);
  EXPECT_EQ(plan.value().tail[0].type, WalRecordType::kEvent);
  EXPECT_EQ(plan.value().tail[0].event.sequence, 2u);
  EXPECT_EQ(plan.value().tail_deltas_dropped, 1u);
  EXPECT_TRUE(plan.value().need_truncate);
  EXPECT_FALSE(plan.value().log_torn);
  EXPECT_EQ(plan.value().next_lsn, 4u);

  // The truncation physically drops the uncommitted group.
  ASSERT_TRUE(ApplyLogTruncation(dir, plan.value()).ok());
  auto scan = ScanWal(dir);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan.value().torn);
  EXPECT_EQ(scan.value().records.size(), 3u);
}

// ---------------------------------------------------------- ApplyFromLog

TEST(ApplyFromLogTest, IdempotentRedoOfBasicUpdates) {
  ObjectStore store;
  ASSERT_TRUE(store.Put(Object(Oid("r"), "root", Value::Set(OidSet()))).ok());
  ASSERT_TRUE(store.Put(Object(Oid("a"), "age", Value::Int(1))).ok());

  Update insert = Update::Insert(Oid("r"), Oid("a"));
  auto first = store.ApplyFromLog(insert);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value());
  auto again = store.ApplyFromLog(insert);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value());  // edge already present: skipped

  Update modify = Update::Modify(Oid("a"), Value::Int(1), Value::Int(2));
  ASSERT_TRUE(store.ApplyFromLog(modify).value());
  EXPECT_FALSE(store.ApplyFromLog(modify).value());  // value already 2

  Update remove = Update::Delete(Oid("r"), Oid("a"));
  ASSERT_TRUE(store.ApplyFromLog(remove).value());
  EXPECT_FALSE(store.ApplyFromLog(remove).value());  // edge already gone

  // Preconditions gone entirely: skip, never error.
  auto orphan = store.ApplyFromLog(Update::Insert(Oid("ghost"), Oid("a")));
  ASSERT_TRUE(orphan.ok());
  EXPECT_FALSE(orphan.value());
}

// ------------------------------------------------------- aux cache images

TEST(AuxCachePersistenceTest, SaveLoadRoundTripIsByteStable) {
  ObjectStore source;
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 3;
  tree_options.seed = 5;
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());

  WarehouseCosts costs;
  SourceWrapper wrapper(&source, &costs);
  Path corridor(std::vector<std::string>{"n1_0", "n2_0", "age"});
  AuxiliaryCache cache(AuxiliaryCache::Mode::kFull, tree->root, corridor);
  ASSERT_TRUE(cache.Initialize(&wrapper).ok());
  ASSERT_GT(cache.size(), 1u);

  std::ostringstream saved;
  ASSERT_TRUE(cache.SaveTo(saved).ok());

  AuxiliaryCache reloaded(AuxiliaryCache::Mode::kFull, tree->root, corridor);
  std::istringstream in(saved.str());
  ASSERT_TRUE(reloaded.LoadFrom(in).ok());
  EXPECT_EQ(reloaded.size(), cache.size());

  std::ostringstream resaved;
  ASSERT_TRUE(reloaded.SaveTo(resaved).ok());
  EXPECT_EQ(resaved.str(), saved.str());

  // A fresh (non-empty) cache refuses to load over itself.
  std::istringstream again(saved.str());
  EXPECT_EQ(reloaded.LoadFrom(again).code(), StatusCode::kFailedPrecondition);
}

// ----------------------------------------------------- warehouse end-to-end

struct TwinRig {
  TreeGenOptions tree_options;
  std::string definition;
  Oid root;

  ObjectStore source_twin;
  ObjectStore source_durable;
  ObjectStore store_twin;
  std::unique_ptr<Warehouse> twin;

  std::unique_ptr<UpdateGenerator> gen_twin;
  std::unique_ptr<UpdateGenerator> gen_durable;

  void Init(uint64_t tree_seed, uint64_t update_seed) {
    tree_options.levels = 3;
    tree_options.fanout = 3;
    tree_options.seed = tree_seed;
    auto tree_t = GenerateTree(&source_twin, tree_options);
    auto tree_d = GenerateTree(&source_durable, tree_options);
    ASSERT_TRUE(tree_t.ok());
    ASSERT_TRUE(tree_d.ok());
    ASSERT_EQ(tree_t->root, tree_d->root);
    root = tree_t->root;
    definition = TreeViewDefinition("WV", root, 2, 3, 50);

    twin = std::make_unique<Warehouse>(&store_twin);
    ASSERT_TRUE(
        twin->ConnectSource(&source_twin, root, ReportingLevel::kWithValues)
            .ok());
    twin->set_deferred(true);
    ASSERT_TRUE(twin->DefineView(definition, Warehouse::CacheMode::kFull).ok());

    UpdateGenOptions gen_options;
    gen_options.seed = update_seed;
    gen_twin =
        std::make_unique<UpdateGenerator>(&source_twin, root, gen_options);
    gen_durable =
        std::make_unique<UpdateGenerator>(&source_durable, root, gen_options);
  }

  // Byte-identical convergence between the twin and a recovered warehouse.
  void ExpectConverged(Warehouse& recovered, ObjectStore& store_recovered) {
    EXPECT_EQ(StoreToString(source_durable), StoreToString(source_twin));
    EXPECT_EQ(StoreToString(store_recovered), StoreToString(store_twin));
    const AuxiliaryCache* cache_t = twin->cache("WV");
    const AuxiliaryCache* cache_r = recovered.cache("WV");
    ASSERT_NE(cache_t, nullptr);
    ASSERT_NE(cache_r, nullptr);
    std::ostringstream bytes_t;
    std::ostringstream bytes_r;
    ASSERT_TRUE(cache_t->SaveTo(bytes_t).ok());
    ASSERT_TRUE(cache_r->SaveTo(bytes_r).ok());
    EXPECT_EQ(bytes_r.str(), bytes_t.str());

    auto def = ViewDefinition::Parse(definition);
    ASSERT_TRUE(def.ok());
    auto truth = EvaluateView(source_durable, def.value());
    ASSERT_TRUE(truth.ok());
    MaterializedView* view = recovered.view("WV");
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->BaseMembers(), truth.value());
  }
};

TEST(WarehouseDurabilityTest, CleanRestartRestoresByteIdenticalState) {
  std::string dir = TempDir("clean_restart");
  TwinRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Init(/*tree_seed=*/11, /*update_seed=*/201));

  uint64_t twin_watermark = 0;
  {
    ObjectStore store_d(DelegateStoreOptions());
    Warehouse durable(&store_d);
    ASSERT_TRUE(durable
                    .ConnectSource(&rig.source_durable, rig.root,
                                   ReportingLevel::kWithValues)
                    .ok());
    durable.set_deferred(true);
    Warehouse::DurabilityOptions options;
    options.dir = dir;
    options.fsync = FsyncPolicy::kCommit;
    ASSERT_TRUE(durable.EnableDurability(options).ok());
    ASSERT_TRUE(
        durable.DefineView(rig.definition, Warehouse::CacheMode::kFull).ok());

    for (size_t i = 0; i < 120; ++i) {
      ASSERT_TRUE(rig.gen_twin->Step().ok());
      ASSERT_TRUE(rig.gen_durable->Step().ok());
      if ((i + 1) % 25 == 0) {
        ASSERT_TRUE(rig.twin->ProcessPendingBatch().ok());
        ASSERT_TRUE(durable.ProcessPendingBatch().ok());
      }
    }
    ASSERT_TRUE(rig.twin->ProcessPendingBatch().ok());
    ASSERT_TRUE(durable.ProcessPendingBatch().ok());
    EXPECT_GT(durable.durability_stats().events_logged, 0);
    EXPECT_GT(durable.durability_stats().deltas_logged, 0);
    EXPECT_GT(durable.durability_stats().commits_logged, 0);

    // Graceful shutdown: checkpoint at a quiescent point, then destroy.
    ASSERT_TRUE(durable.WriteCheckpoint().ok());
    EXPECT_EQ(StoreToString(store_d), StoreToString(rig.store_twin));
    twin_watermark = rig.twin->monitor()->last_sequence();
    EXPECT_EQ(durable.monitor()->last_sequence(), twin_watermark);
  }

  // Recover into a fresh warehouse over the same (surviving) source.
  ObjectStore store_r(DelegateStoreOptions());
  Warehouse recovered(&store_r);
  ASSERT_TRUE(recovered
                  .ConnectSource(&rig.source_durable, rig.root,
                                 ReportingLevel::kWithValues)
                  .ok());
  recovered.set_deferred(true);
  Warehouse::DurabilityOptions options;
  options.dir = dir;
  ASSERT_TRUE(recovered.EnableDurability(options).ok());

  const Warehouse::RecoveryReport& report = recovered.recovery_report();
  EXPECT_TRUE(report.recovered_checkpoint);
  EXPECT_EQ(report.views_restored, 1u);
  EXPECT_EQ(report.deltas_redone, 0u);     // checkpoint was the last action
  EXPECT_EQ(report.events_replayed, 0u);
  EXPECT_TRUE(report.caches_reloaded);     // clean path: image bytes reused
  EXPECT_FALSE(report.log_torn);
  // The clean fast path recovers without a single source query.
  EXPECT_EQ(recovered.costs().source_queries.load(), 0);
  EXPECT_EQ(recovered.costs().cache_maintenance_queries.load(), 0);

  ASSERT_NO_FATAL_FAILURE(rig.ExpectConverged(recovered, store_r));
  EXPECT_EQ(recovered.monitor()->last_sequence(), twin_watermark);

  // Watermark continuity: post-recovery events keep integrating seamlessly.
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(rig.gen_twin->Step().ok());
    ASSERT_TRUE(rig.gen_durable->Step().ok());
  }
  ASSERT_TRUE(rig.twin->ProcessPendingBatch().ok());
  ASSERT_TRUE(recovered.ProcessPendingBatch().ok());
  EXPECT_EQ(recovered.costs().events_duplicate_dropped.load(), 0);
  EXPECT_EQ(recovered.costs().events_gap_detected.load(), 0);
  ASSERT_NO_FATAL_FAILURE(rig.ExpectConverged(recovered, store_r));
}

TEST(WarehouseDurabilityTest, UncommittedTailReplaysThroughLiveMaintenance) {
  std::string dir = TempDir("tail_replay");
  TwinRig rig;
  ASSERT_NO_FATAL_FAILURE(rig.Init(/*tree_seed=*/13, /*update_seed=*/307));

  {
    ObjectStore store_d(DelegateStoreOptions());
    Warehouse durable(&store_d);
    ASSERT_TRUE(durable
                    .ConnectSource(&rig.source_durable, rig.root,
                                   ReportingLevel::kWithValues)
                    .ok());
    durable.set_deferred(true);
    Warehouse::DurabilityOptions options;
    options.dir = dir;
    ASSERT_TRUE(durable.EnableDurability(options).ok());
    ASSERT_TRUE(
        durable.DefineView(rig.definition, Warehouse::CacheMode::kFull).ok());
    for (size_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(rig.gen_durable->Step().ok());
    }
    ASSERT_TRUE(durable.ProcessPendingBatch().ok());
    // Ten more accepted (and logged) events, never drained: the process
    // "dies" with an uncommitted tail in the log.
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(rig.gen_durable->Step().ok());
    }
    EXPECT_EQ(durable.pending_events(), 10u);
  }
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(rig.gen_twin->Step().ok());
  }
  ASSERT_TRUE(rig.twin->ProcessPendingBatch().ok());

  ObjectStore store_r(DelegateStoreOptions());
  Warehouse recovered(&store_r);
  ASSERT_TRUE(recovered
                  .ConnectSource(&rig.source_durable, rig.root,
                                 ReportingLevel::kWithValues)
                  .ok());
  recovered.set_deferred(true);
  Warehouse::DurabilityOptions options;
  options.dir = dir;
  ASSERT_TRUE(recovered.EnableDurability(options).ok());

  const Warehouse::RecoveryReport& report = recovered.recovery_report();
  EXPECT_FALSE(report.log_torn);
  EXPECT_EQ(report.views_redefined, 1u);  // no checkpoint: kViewDef redo
  EXPECT_GT(report.deltas_redone, 0u);
  EXPECT_EQ(report.events_replayed, 10u);
  ASSERT_NO_FATAL_FAILURE(rig.ExpectConverged(recovered, store_r));
}

// The headline property test: kill the warehouse at an arbitrary byte of
// its WAL stream — mid-event, mid-delta, mid-commit, mid-batch — recover,
// finish the workload, and the result is byte-identical to the twin.
TEST(WarehouseDurabilityTest, RandomizedKillMidBatchConvergesByteIdentical) {
  constexpr size_t kUpdates = 150;
  constexpr size_t kDrainEvery = 7;

  // Probe run: how many WAL bytes does the full workload produce?
  int64_t total_bytes = 0;
  {
    std::string dir = TempDir("kill_probe");
    TwinRig rig;
    ASSERT_NO_FATAL_FAILURE(rig.Init(/*tree_seed=*/17, /*update_seed=*/501));
    ObjectStore store_d(DelegateStoreOptions());
    Warehouse durable(&store_d);
    ASSERT_TRUE(durable
                    .ConnectSource(&rig.source_durable, rig.root,
                                   ReportingLevel::kWithValues)
                    .ok());
    durable.set_deferred(true);
    Warehouse::DurabilityOptions options;
    options.dir = dir;
    ASSERT_TRUE(durable.EnableDurability(options).ok());
    ASSERT_TRUE(
        durable.DefineView(rig.definition, Warehouse::CacheMode::kFull).ok());
    for (size_t i = 0; i < kUpdates; ++i) {
      ASSERT_TRUE(rig.gen_durable->Step().ok());
      if ((i + 1) % kDrainEvery == 0) {
        ASSERT_TRUE(durable.ProcessPendingBatch().ok());
      }
    }
    ASSERT_TRUE(durable.ProcessPendingBatch().ok());
    total_bytes = durable.wal()->bytes_written();
    std::filesystem::remove_all(dir);
  }
  ASSERT_GT(total_bytes, 0);

  for (int iteration = 0; iteration < 10; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));
    // Odd twentieths plus a small skew: crash points spread across the
    // whole stream and land at varying offsets within records.
    int64_t budget =
        total_bytes * (2 * iteration + 1) / 20 + 3 * iteration + 1;
    std::string dir = TempDir("kill_" + std::to_string(iteration));

    TwinRig rig;
    ASSERT_NO_FATAL_FAILURE(rig.Init(/*tree_seed=*/17, /*update_seed=*/501));

    Warehouse::DurabilityOptions options;
    options.dir = dir;
    options.fsync = FsyncPolicy::kCommit;
    options.checkpoint_interval_events = 40;

    size_t applied = 0;
    bool crashed = false;
    {
      ObjectStore store_d(DelegateStoreOptions());
      Warehouse durable(&store_d);
      ASSERT_TRUE(durable
                      .ConnectSource(&rig.source_durable, rig.root,
                                     ReportingLevel::kWithValues)
                      .ok());
      durable.set_deferred(true);
      ASSERT_TRUE(durable.EnableDurability(options).ok());
      ASSERT_TRUE(
          durable.DefineView(rig.definition, Warehouse::CacheMode::kFull)
              .ok());
      durable.wal()->set_crash_after_bytes(budget);
      while (applied < kUpdates) {
        ASSERT_TRUE(rig.gen_durable->Step().ok());
        ++applied;
        if (durable.wal()->crashed()) {
          crashed = true;
          break;
        }
        if (applied % kDrainEvery == 0) {
          durable.ProcessPendingBatch();  // errors surface via last_status_
          if (durable.wal()->crashed()) {
            crashed = true;
            break;
          }
        }
      }
      // The dead warehouse is simply abandoned here (destructor only
      // detaches the monitor — exactly what a process death would leave).
    }

    // Twin processes the identical full workload, uninterrupted.
    for (size_t i = 0; i < kUpdates; ++i) {
      ASSERT_TRUE(rig.gen_twin->Step().ok());
      if ((i + 1) % kDrainEvery == 0) {
        ASSERT_TRUE(rig.twin->ProcessPendingBatch().ok());
      }
    }
    ASSERT_TRUE(rig.twin->ProcessPendingBatch().ok());

    // Recover and finish the workload.
    ObjectStore store_r(DelegateStoreOptions());
    Warehouse recovered(&store_r);
    ASSERT_TRUE(recovered
                    .ConnectSource(&rig.source_durable, rig.root,
                                   ReportingLevel::kWithValues)
                    .ok());
    recovered.set_deferred(true);
    Warehouse::DurabilityOptions resume = options;
    ASSERT_TRUE(recovered.EnableDurability(resume).ok())
        << recovered.last_status().ToString();
    if (crashed) {
      // A crash mid-write must be visible as a torn log (and trigger the
      // quarantine+resync fallback) unless it cut exactly between records.
      SCOPED_TRACE(recovered.recovery_report().log_torn ? "torn" : "clean");
    }
    while (applied < kUpdates) {
      ASSERT_TRUE(rig.gen_durable->Step().ok());
      ++applied;
      if (applied % kDrainEvery == 0) {
        ASSERT_TRUE(recovered.ProcessPendingBatch().ok())
            << recovered.last_status().ToString();
      }
    }
    ASSERT_TRUE(recovered.ProcessPendingBatch().ok());
    ASSERT_EQ(recovered.stale_view_count(), 0u);

    ASSERT_NO_FATAL_FAILURE(rig.ExpectConverged(recovered, store_r));
  }
}

// ---------------------------------------------------------------------------
// Sharded durability: each shard persists under <dir>/shard-<i>; a restart
// recovers every shard, restores the router's per-shard sequence counters,
// and the coordinator keeps converging byte-identically with a live twin.
// ---------------------------------------------------------------------------

TEST(ShardedDurabilityTest, RestartRestoresEveryShardAndRouterWatermarks) {
  const std::string dir = TempDir("sharded_restart");
  constexpr uint32_t kShards = 4;

  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 4;
  tree_options.seed = 23;
  tree_options.oid_prefix = "sdr_";
  ObjectStore source;
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());
  const std::string definition =
      TreeViewDefinition("SDV", tree->root, 2, 3, 50);

  // Live twin: a plain warehouse that survives the "crash".
  ObjectStore twin_store;
  Warehouse twin(&twin_store);
  ASSERT_TRUE(
      twin.ConnectSource(&source, tree->root, ReportingLevel::kWithValues)
          .ok());
  ASSERT_TRUE(twin.DefineView(definition).ok());
  twin.set_deferred(true);

  UpdateGenOptions gen_options;
  gen_options.seed = 307;
  gen_options.oid_prefix = "sdr_u";
  UpdateGenerator gen(&source, tree->root, gen_options);

  {
    ShardedWarehouse durable(kShards, ShardedDelegateOptions());
    ASSERT_TRUE(durable.init_status().ok());
    ASSERT_TRUE(durable
                    .ConnectSource(&source, tree->root,
                                   ReportingLevel::kWithValues)
                    .ok());
    durable.set_deferred(true);
    ShardedWarehouse::DurabilityOptions options;
    options.dir = dir;
    options.fsync = FsyncPolicy::kCommit;
    ASSERT_TRUE(durable.EnableDurability(options).ok());
    ASSERT_TRUE(durable.DefineView(definition).ok());

    for (int burst = 0; burst < 4; ++burst) {
      ASSERT_TRUE(gen.Run(30).ok());
      ASSERT_TRUE(twin.ProcessPendingBatch().ok());
      ASSERT_TRUE(durable.ProcessPendingBatch(kShards).ok());
    }
    ASSERT_TRUE(durable.WriteCheckpoint().ok());

    // A tail past the checkpoint, committed but not checkpointed: recovery
    // must replay it from the per-shard logs.
    ASSERT_TRUE(gen.Run(30).ok());
    ASSERT_TRUE(twin.ProcessPendingBatch().ok());
    ASSERT_TRUE(durable.ProcessPendingBatch(kShards).ok());

    MaterializedView* view = twin.view("SDV");
    ASSERT_NE(view, nullptr);
    ASSERT_EQ(durable.ViewContents("SDV"), ViewContentLines(*view));
    // Destructor detaches the monitors — the rest is what a process death
    // would leave on disk.
  }

  // Every shard directory exists and holds its own log.
  for (uint32_t i = 0; i < kShards; ++i) {
    EXPECT_TRUE(std::filesystem::is_directory(dir + "/shard-" +
                                              std::to_string(i)))
        << "shard " << i;
  }

  ShardedWarehouse recovered(kShards, ShardedDelegateOptions());
  ASSERT_TRUE(recovered.init_status().ok());
  ASSERT_TRUE(
      recovered
          .ConnectSource(&source, tree->root, ReportingLevel::kWithValues)
          .ok());
  recovered.set_deferred(true);
  ShardedWarehouse::DurabilityOptions options;
  options.dir = dir;
  ASSERT_TRUE(recovered.EnableDurability(options).ok());

  MaterializedView* view = twin.view("SDV");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(recovered.ViewContents("SDV"), ViewContentLines(*view));

  // Watermark continuity: the router resumes each shard's sequence domain
  // where the recovered logs end — no duplicates dropped, no gaps.
  ASSERT_TRUE(gen.Run(40).ok());
  ASSERT_TRUE(twin.ProcessPendingBatch().ok());
  ASSERT_TRUE(recovered.ProcessPendingBatch(kShards).ok());
  const WarehouseCosts costs = recovered.MergedCosts();
  EXPECT_EQ(costs.events_duplicate_dropped.load(), 0);
  EXPECT_EQ(costs.events_gap_detected.load(), 0);
  EXPECT_EQ(recovered.stale_view_count(), 0u);
  EXPECT_EQ(recovered.ViewContents("SDV"), ViewContentLines(*twin.view("SDV")));
}

}  // namespace
}  // namespace gsv
