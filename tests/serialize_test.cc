#include <gtest/gtest.h>

#include "oem/serialize.h"
#include "oem/store.h"
#include "workload/person_db.h"
#include "workload/tree_gen.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

TEST(SerializeTest, RoundTripsPersonDb) {
  ObjectStore original;
  ASSERT_TRUE(BuildPersonDb(&original).ok());
  std::string text = StoreToString(original);

  ObjectStore loaded;
  ASSERT_TRUE(StoreFromString(text, &loaded).ok());
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.DatabaseNames(), original.DatabaseNames());
  original.ForEach([&](const Object& object) {
    const Object* copy = loaded.Get(object.oid());
    ASSERT_NE(copy, nullptr) << object.oid().str();
    EXPECT_EQ(*copy, object);
  });
  // A second round trip is byte-identical (canonical ordering).
  EXPECT_EQ(StoreToString(loaded), text);
}

TEST(SerializeTest, RoundTripsAllValueTypes) {
  ObjectStore store;
  ASSERT_TRUE(store.PutAtomic(Oid("I"), "i", Value::Int(-42)).ok());
  ASSERT_TRUE(store.PutAtomic(Oid("R"), "r", Value::Real(3.25)).ok());
  ASSERT_TRUE(store.PutAtomic(Oid("B"), "b", Value::Bool(true)).ok());
  ASSERT_TRUE(store
                  .PutAtomic(Oid("S"), "s",
                             Value::Str("line\nwith \"quotes\" and \\slash"))
                  .ok());
  ASSERT_TRUE(store.PutSet(Oid("SET"), "set", {Oid("I"), Oid("R")}).ok());

  ObjectStore loaded;
  ASSERT_TRUE(StoreFromString(StoreToString(store), &loaded).ok());
  EXPECT_EQ(loaded.Get(Oid("I"))->value().AsInt(), -42);
  EXPECT_DOUBLE_EQ(loaded.Get(Oid("R"))->value().AsReal(), 3.25);
  EXPECT_TRUE(loaded.Get(Oid("B"))->value().AsBool());
  EXPECT_EQ(loaded.Get(Oid("S"))->value().AsString(),
            "line\nwith \"quotes\" and \\slash");
  EXPECT_EQ(loaded.Get(Oid("SET"))->children(), OidSet({Oid("I"), Oid("R")}));
}

TEST(SerializeTest, RoundTripsGeneratedTree) {
  ObjectStore store;
  TreeGenOptions options;
  options.levels = 4;
  options.fanout = 3;
  ASSERT_TRUE(GenerateTree(&store, options).ok());
  ObjectStore loaded;
  ASSERT_TRUE(StoreFromString(StoreToString(store), &loaded).ok());
  EXPECT_EQ(loaded.size(), store.size());
}

TEST(SerializeTest, RoundTripsDagWithSharedChildren) {
  // A diamond: two parents share a child, and a deeper node is reachable
  // along both arms — serialization must preserve the sharing, not expand
  // it into a tree.
  ObjectStore store;
  ASSERT_TRUE(store.PutAtomic(Oid("D.leaf"), "age", Value::Int(9)).ok());
  ASSERT_TRUE(store.PutSet(Oid("D.l"), "left", {Oid("D.leaf")}).ok());
  ASSERT_TRUE(store.PutSet(Oid("D.r"), "right", {Oid("D.leaf")}).ok());
  ASSERT_TRUE(store.PutSet(Oid("D"), "root", {Oid("D.l"), Oid("D.r")}).ok());
  ASSERT_TRUE(store.RegisterDatabase("diamond", Oid("D")).ok());

  std::string text = StoreToString(store);
  ObjectStore loaded;
  ASSERT_TRUE(StoreFromString(text, &loaded).ok());
  EXPECT_EQ(loaded.size(), 4u);
  EXPECT_TRUE(loaded.Get(Oid("D.l"))->children().Contains(Oid("D.leaf")));
  EXPECT_TRUE(loaded.Get(Oid("D.r"))->children().Contains(Oid("D.leaf")));
  // Both arms resolve to the SAME object, and the canonical form is stable.
  EXPECT_EQ(loaded.Get(Oid("D.leaf")), loaded.Get(Oid("D.leaf")));
  EXPECT_EQ(StoreToString(loaded), text);
}

TEST(SerializeTest, RoundTripsCyclicStore) {
  // OEM graphs may contain cycles (§2); the writer emits plain edge lists,
  // so a cycle must survive a round trip without recursion or expansion.
  ObjectStore store;
  ASSERT_TRUE(store.PutSet(Oid("C.a"), "a").ok());
  ASSERT_TRUE(store.PutSet(Oid("C.b"), "b").ok());
  ASSERT_TRUE(store.AddChildRaw(Oid("C.a"), Oid("C.b")).ok());
  ASSERT_TRUE(store.AddChildRaw(Oid("C.b"), Oid("C.a")).ok());  // back edge
  ASSERT_TRUE(store.AddChildRaw(Oid("C.a"), Oid("C.a")).ok());  // self loop

  std::string text = StoreToString(store);
  ObjectStore loaded;
  ASSERT_TRUE(StoreFromString(text, &loaded).ok());
  EXPECT_TRUE(loaded.Get(Oid("C.a"))->children().Contains(Oid("C.b")));
  EXPECT_TRUE(loaded.Get(Oid("C.a"))->children().Contains(Oid("C.a")));
  EXPECT_TRUE(loaded.Get(Oid("C.b"))->children().Contains(Oid("C.a")));
  EXPECT_EQ(StoreToString(loaded), text);
}

TEST(SerializeTest, RoundTripsDelegateOids) {
  // Delegate OIDs ("MV.P1" style, from Oid::Delegate) are ordinary interned
  // strings; a serialized view store must restore them verbatim, including
  // edges from the view object to its delegates.
  ObjectStore store;
  Oid member = Oid("P1");
  Oid delegate = Oid::Delegate(Oid("MV"), member);
  ASSERT_TRUE(store.PutAtomic(delegate, "person", Value::Int(30)).ok());
  ASSERT_TRUE(store.PutSet(Oid("MV"), "mview", {delegate}).ok());
  ASSERT_TRUE(store.RegisterDatabase("MV", Oid("MV")).ok());

  std::string text = StoreToString(store);
  ObjectStore loaded;
  ASSERT_TRUE(StoreFromString(text, &loaded).ok());
  const Object* copy = loaded.Get(Oid::Delegate(Oid("MV"), member));
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->value().AsInt(), 30);
  EXPECT_TRUE(loaded.Get(Oid("MV"))->children().Contains(delegate));
  EXPECT_EQ(StoreToString(loaded), text);
}

TEST(SerializeTest, IgnoresCommentsAndBlankLines) {
  ObjectStore store;
  ASSERT_TRUE(StoreFromString("# header\n\nobj A lab int 1\n\n", &store).ok());
  EXPECT_EQ(store.size(), 1u);
}

TEST(SerializeTest, RejectsMalformedRecords) {
  ObjectStore store;
  EXPECT_FALSE(StoreFromString("nonsense A B\n", &store).ok());
  EXPECT_FALSE(StoreFromString("obj A lab\n", &store).ok());
  EXPECT_FALSE(StoreFromString("obj A lab int\n", &store).ok());
  EXPECT_FALSE(StoreFromString("obj A lab float 1\n", &store).ok());
  EXPECT_FALSE(StoreFromString("obj A lab string noquotes\n", &store).ok());
  EXPECT_FALSE(StoreFromString("obj A lab string \"open\n", &store).ok());
  EXPECT_FALSE(StoreFromString("db X\n", &store).ok());
  EXPECT_FALSE(StoreFromString("db X MISSING\n", &store).ok())
      << "database OIDs must exist";
}

TEST(SerializeTest, DuplicateOidFails) {
  ObjectStore store;
  EXPECT_FALSE(
      StoreFromString("obj A lab int 1\nobj A lab int 2\n", &store).ok());
}

TEST(SerializeTest, FileRoundTrip) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store).ok());
  const std::string path = "/tmp/gsv_serialize_test.gsv";
  ASSERT_TRUE(SaveStoreToFile(store, path).ok());
  ObjectStore loaded;
  ASSERT_TRUE(LoadStoreFromFile(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), store.size());
  EXPECT_FALSE(LoadStoreFromFile("/nonexistent/nope", &loaded).ok());
}

}  // namespace
}  // namespace gsv
