// Storage-engine suite (§4h): the StorageEngine contract on both shipped
// engines, PagedEngine residency/eviction bounds, oversized-object
// extents, offline image verification, the GSV_STORAGE_ENGINE env seam —
// and the headline twin property: a store/warehouse/replica on the paged
// engine under a pool small enough to force constant eviction is
// byte-identical with a memory-engine twin at every commit watermark,
// through checkpoints and crash recovery included.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/virtual_view.h"
#include "oem/paged_engine.h"
#include "oem/serialize.h"
#include "oem/storage_engine.h"
#include "oem/store.h"
#include "query/evaluator.h"
#include "replication/log_transport.h"
#include "replication/replica.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "warehouse/aux_cache.h"
#include "warehouse/sharding.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

std::string TempDir(const std::string& tag) {
  std::string path = ::testing::TempDir() + "gsv_engine_" + tag;
  std::filesystem::remove_all(path);
  return path;
}

// A paged engine small enough that any non-trivial graph overflows the
// pool: 512-byte pages, three frames. wipe_on_close keeps TempDir clean.
PagedEngineOptions TinyPagedOptions(const std::string& tag,
                                    uint64_t pool_pages = 3,
                                    uint64_t page_bytes = 512) {
  PagedEngineOptions options;
  options.dir = TempDir(tag);
  options.page_bytes = page_bytes;
  options.pool_pages = pool_pages;
  options.wipe_on_close = true;
  return options;
}

ObjectStore::Options PagedStoreOptions(PagedEngineOptions engine_options) {
  ObjectStore::Options options;
  options.engine_factory = MakePagedEngineFactory(std::move(engine_options));
  return options;
}

// ------------------------------------------------------- engine contract

void ExerciseEngineContract(StorageEngine* engine) {
  EXPECT_EQ(engine->Size(), 0u);
  // Inserted out of lexicographic order on purpose.
  ASSERT_TRUE(engine->Put(Object(Oid("m"), "age", Value::Int(7))).ok());
  ASSERT_TRUE(engine->Put(Object(Oid("a:2"), "name", Value::Str("x"))).ok());
  OidSet children;
  children.Insert(Oid("m"));
  ASSERT_TRUE(engine->Put(Object(Oid("a:10"), "set", Value::Set(children)))
                  .ok());
  EXPECT_EQ(engine->Size(), 3u);

  // Duplicate put refused; the original survives.
  EXPECT_EQ(engine->Put(Object(Oid("m"), "age", Value::Int(9))).code(),
            StatusCode::kAlreadyExists);
  const Object* got = engine->Get(Oid("m"));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->value().AsInt(), 7);
  EXPECT_EQ(engine->Get(Oid("absent")), nullptr);

  // Mutation through GetMutable sticks.
  Object* mut = engine->GetMutable(Oid("m"));
  ASSERT_NE(mut, nullptr);
  mut->mutable_value() = Value::Int(41);
  EXPECT_EQ(engine->Get(Oid("m"))->value().AsInt(), 41);

  // Ordered scan yields canonical lexicographic OID order.
  std::vector<std::string> order;
  engine->ScanInOrder([&](const Object& object) {
    order.push_back(object.oid().str());
  });
  EXPECT_EQ(order, (std::vector<std::string>{"a:10", "a:2", "m"}));

  // Unordered scan visits the same set.
  size_t visited = 0;
  engine->ScanUnordered([&](const Object&) { ++visited; });
  EXPECT_EQ(visited, 3u);

  // Erase, then re-put under the same OID.
  EXPECT_EQ(engine->Erase(Oid("absent")).code(), StatusCode::kNotFound);
  ASSERT_TRUE(engine->Erase(Oid("m")).ok());
  EXPECT_EQ(engine->Size(), 2u);
  EXPECT_EQ(engine->Get(Oid("m")), nullptr);
  ASSERT_TRUE(engine->Put(Object(Oid("m"), "age", Value::Int(5))).ok());
  EXPECT_EQ(engine->Get(Oid("m"))->value().AsInt(), 5);

  // Safe points and flushes must not disturb contents.
  engine->SafePoint();
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->Size(), 3u);
  EXPECT_EQ(engine->Get(Oid("a:2"))->value().AsString(), "x");
}

TEST(StorageEngineContractTest, InMemoryEngine) {
  auto engine = MakeInMemoryEngine();
  EXPECT_STREQ(engine->EngineName(), "memory");
  ExerciseEngineContract(engine.get());
}

TEST(StorageEngineContractTest, PagedEngine) {
  auto engine = MakePagedEngine(TinyPagedOptions("contract"));
  EXPECT_STREQ(engine->EngineName(), "paged");
  ExerciseEngineContract(engine.get());
}

// A store built without a factory runs on the memory engine; with the
// paged factory it reports the paged engine.
TEST(StorageEngineContractTest, StoreReportsItsEngine) {
  ObjectStore memory_store;
  EXPECT_STREQ(memory_store.engine_name(), "memory");
  ObjectStore paged_store(PagedStoreOptions(TinyPagedOptions("report")));
  EXPECT_STREQ(paged_store.engine_name(), "paged");
}

// --------------------------------------------------- residency / bounds

TEST(PagedEngineTest, BeyondRamStoreStaysWithinPoolBudget) {
  ObjectStore store(PagedStoreOptions(TinyPagedOptions("bounds")));
  // ~200 atoms at ~30 bytes each over 512-byte pages: well past 4x the
  // three-frame budget.
  for (int i = 0; i < 200; ++i) {
    std::ostringstream oid;
    oid << "o" << i;
    ASSERT_TRUE(store.PutAtomic(Oid(oid.str()), "age", Value::Int(i)).ok());
    if (i % 25 == 24) store.StorageSafePoint();
  }
  store.StorageSafePoint();

  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));
  ASSERT_TRUE(status.io_error.ok()) << status.io_error.ToString();
  EXPECT_EQ(status.objects, 200u);
  EXPECT_GE(status.pages_total, 4 * status.pool_pages);  // beyond-RAM
  EXPECT_LE(status.pages_resident, status.pool_pages);   // post-safe-point

  // Every object reads back despite constant eviction.
  for (int i = 0; i < 200; ++i) {
    std::ostringstream oid;
    oid << "o" << i;
    const Object* object = store.Get(Oid(oid.str()));
    ASSERT_NE(object, nullptr) << oid.str();
    EXPECT_EQ(object->value().AsInt(), i);
  }
  EXPECT_GT(store.metrics().page_faults.load(), 0);
  EXPECT_GT(store.metrics().page_evictions.load(), 0);

  // A full ordered scan of the beyond-RAM store ends within budget again.
  store.StorageSafePoint();
  size_t scanned = 0;
  std::string previous;
  store.ScanInOrder([&](const Object& object) {
    EXPECT_LT(previous, object.oid().str());
    previous = object.oid().str();
    ++scanned;
  });
  EXPECT_EQ(scanned, 200u);
  store.StorageSafePoint();
  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));
  EXPECT_LE(status.pages_resident, status.pool_pages);
}

TEST(PagedEngineTest, OversizedObjectOccupiesMultiSlotExtent) {
  ObjectStore store(
      PagedStoreOptions(TinyPagedOptions("extent", 3, 256)));
  ASSERT_TRUE(store.PutAtomic(Oid("small"), "age", Value::Int(1)).ok());
  // One record several times the 256-byte slot size.
  ASSERT_TRUE(store
                  .PutAtomic(Oid("huge"), "blob",
                             Value::Str(std::string(2000, 'z')))
                  .ok());
  store.StorageSafePoint();
  ASSERT_TRUE(store.FlushStorage().ok());

  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));
  auto directory = ReadPageDirectory(status.dir);
  ASSERT_TRUE(directory.ok()) << directory.status().ToString();
  bool saw_extent = false;
  for (const PageDirEntry& page : directory.value().pages) {
    if (page.slot_count > 1) saw_extent = true;
  }
  EXPECT_TRUE(saw_extent);
  EXPECT_TRUE(VerifyPagedImage(status.dir, nullptr).ok());

  // The oversized object reads back intact after eviction pressure.
  store.StorageSafePoint();
  const Object* huge = store.Get(Oid("huge"));
  ASSERT_NE(huge, nullptr);
  EXPECT_EQ(huge->value().AsString(), std::string(2000, 'z'));
}

TEST(PagedEngineTest, VerifyPagedImageCatchesCorruption) {
  ObjectStore store(PagedStoreOptions(TinyPagedOptions("corrupt")));
  for (int i = 0; i < 40; ++i) {
    std::ostringstream oid;
    oid << "c" << i;
    ASSERT_TRUE(store.PutAtomic(Oid(oid.str()), "age", Value::Int(i)).ok());
  }
  store.StorageSafePoint();
  ASSERT_TRUE(store.FlushStorage().ok());
  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));

  std::ostringstream report;
  ASSERT_TRUE(VerifyPagedImage(status.dir, &report).ok());
  EXPECT_NE(report.str().find("all CRCs ok"), std::string::npos);

  // Flip one payload byte of the first non-empty page in pages.gsp.
  auto directory = ReadPageDirectory(status.dir);
  ASSERT_TRUE(directory.ok());
  const PageDirEntry* victim = nullptr;
  for (const PageDirEntry& page : directory.value().pages) {
    if (page.payload_bytes > 0) {
      victim = &page;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  {
    std::fstream file(status.dir + "/pages.gsp",
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(static_cast<std::streamoff>(victim->slot_start *
                                           directory.value().page_bytes));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(victim->slot_start *
                                           directory.value().page_bytes));
    file.put(static_cast<char>(byte ^ 0x40));
  }
  EXPECT_EQ(VerifyPagedImage(status.dir, nullptr).code(),
            StatusCode::kDataLoss);
}

// ------------------------------------------------------------- env seam

TEST(PagedEngineTest, EngineFactoryFromEnv) {
  const char* saved = std::getenv("GSV_STORAGE_ENGINE");
  std::string saved_value = saved != nullptr ? saved : "";

  ::unsetenv("GSV_STORAGE_ENGINE");
  EXPECT_EQ(MakeEngineFactoryFromEnv(), nullptr);
  ::setenv("GSV_STORAGE_ENGINE", "memory", 1);
  EXPECT_EQ(MakeEngineFactoryFromEnv(), nullptr);

  ::setenv("GSV_STORAGE_ENGINE", "paged:4:1024", 1);
  StorageEngineFactory factory = MakeEngineFactoryFromEnv();
  ASSERT_NE(factory, nullptr);
  {
    auto engine = factory();
    ASSERT_NE(engine, nullptr);
    EXPECT_STREQ(engine->EngineName(), "paged");
    ASSERT_TRUE(engine->Put(Object(Oid("e"), "age", Value::Int(1))).ok());
    EXPECT_EQ(engine->Size(), 1u);
  }

  if (saved != nullptr) {
    ::setenv("GSV_STORAGE_ENGINE", saved_value.c_str(), 1);
  } else {
    ::unsetenv("GSV_STORAGE_ENGINE");
  }
}

// ------------------------------------------------------- twin: raw store

// The same generated tree and the same random update stream applied to a
// memory-engine store and a paged-engine store (pool so small every batch
// evicts): contents, checkpoint images, and the on-disk page image are
// byte-identical at every watermark.
void RunTwinStoreStream(UpdateMode mode, const std::string& tag,
                        uint64_t seed) {
  ObjectStore memory_store;
  ObjectStore paged_store(PagedStoreOptions(TinyPagedOptions(tag)));

  TreeGenOptions tree_options;
  tree_options.levels = 4;
  tree_options.fanout = 3;
  tree_options.seed = seed;
  auto tree_m = GenerateTree(&memory_store, tree_options);
  auto tree_p = GenerateTree(&paged_store, tree_options);
  ASSERT_TRUE(tree_m.ok());
  ASSERT_TRUE(tree_p.ok());
  ASSERT_EQ(tree_m->root, tree_p->root);

  UpdateGenOptions gen_options;
  gen_options.mode = mode;
  gen_options.seed = seed + 1;
  UpdateGenerator gen_m(&memory_store, tree_m->root, gen_options);
  UpdateGenerator gen_p(&paged_store, tree_p->root, gen_options);

  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(gen_m.Step().ok());
    ASSERT_TRUE(gen_p.Step().ok());
    if (i % 50 == 49) {
      paged_store.StorageSafePoint();
      ASSERT_EQ(StoreToString(paged_store), StoreToString(memory_store))
          << "diverged at step " << i;
    }
  }
  paged_store.StorageSafePoint();
  EXPECT_GT(paged_store.metrics().page_evictions.load(), 0)
      << "pool never overflowed; twin proves nothing";

  // The checkpoint image round-trips identically through both engines.
  auto image_m = ExportStoreImage(&memory_store);
  auto image_p = ExportStoreImage(&paged_store);
  ASSERT_TRUE(image_m.ok());
  ASSERT_TRUE(image_p.ok());
  EXPECT_EQ(image_p.value(), image_m.value());

  // Bulk-load the image into a fresh paged store: same bytes again.
  ObjectStore reloaded(PagedStoreOptions(TinyPagedOptions(tag + "_reload")));
  ASSERT_TRUE(ImportStoreImage(image_m.value(), &reloaded).ok());
  reloaded.StorageSafePoint();
  EXPECT_EQ(StoreToString(reloaded), StoreToString(memory_store));

  // And the flushed on-disk image passes offline verification.
  ASSERT_TRUE(paged_store.FlushStorage().ok());
  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(paged_store.storage_engine(), &status));
  EXPECT_TRUE(VerifyPagedImage(status.dir, nullptr).ok());
}

TEST(EngineTwinTest, TreeStreamByteIdentical) {
  RunTwinStoreStream(UpdateMode::kTreePreserving, "twin_tree", 17);
}

TEST(EngineTwinTest, DagStreamByteIdentical) {
  RunTwinStoreStream(UpdateMode::kDagPreserving, "twin_dag", 23);
}

// -------------------------------------------------- twin: full warehouse

// Two warehouses over identical sources and update streams; one runs its
// delegate store AND its §5.2 corridor caches on the paged engine under a
// two-frame pool. A warehouse's delegate store holds the view members, so
// the views select whole tree levels (high bound, depths 3 and 4 of a
// level-5 tree: ~320 members, dozens of pages) to push it beyond RAM.
// Views, cache images, and checkpoint bytes must match the memory twin at
// every drain watermark, and a restart from the paged warehouse's
// durability home must land byte-identical too.
TEST(EngineTwinTest, WarehouseViewsCachesAndRecoveryByteIdentical) {
  const std::string wal_dir = TempDir("twin_wh_wal");

  TreeGenOptions tree_options;
  tree_options.levels = 5;
  tree_options.fanout = 4;
  tree_options.seed = 29;
  ObjectStore source_m;
  ObjectStore source_p;
  auto tree_m = GenerateTree(&source_m, tree_options);
  auto tree_p = GenerateTree(&source_p, tree_options);
  ASSERT_TRUE(tree_m.ok());
  ASSERT_TRUE(tree_p.ok());
  const Oid root = tree_m->root;
  const std::vector<std::string> definitions = {
      TreeViewDefinition("WV3", root, 3, 5, 1000),
      TreeViewDefinition("WV4", root, 4, 5, 1000)};
  const std::vector<std::string> view_names = {"WV3", "WV4"};

  ObjectStore store_m;
  Warehouse warehouse_m(&store_m);
  ASSERT_TRUE(
      warehouse_m.ConnectSource(&source_m, root, ReportingLevel::kWithValues)
          .ok());
  warehouse_m.set_deferred(true);
  for (const std::string& definition : definitions) {
    ASSERT_TRUE(
        warehouse_m.DefineView(definition, Warehouse::CacheMode::kFull).ok());
  }

  ObjectStore store_p(
      PagedStoreOptions(TinyPagedOptions("twin_wh_store", 2)));
  Warehouse::Options warehouse_options;
  warehouse_options.aux_engine_factory =
      MakePagedEngineFactory(TinyPagedOptions("twin_wh_aux", 2));
  Warehouse warehouse_p(&store_p, warehouse_options);
  ASSERT_TRUE(
      warehouse_p.ConnectSource(&source_p, root, ReportingLevel::kWithValues)
          .ok());
  warehouse_p.set_deferred(true);
  Warehouse::DurabilityOptions durability;
  durability.dir = wal_dir;
  durability.fsync = FsyncPolicy::kCommit;
  ASSERT_TRUE(warehouse_p.EnableDurability(durability).ok());
  for (const std::string& definition : definitions) {
    ASSERT_TRUE(
        warehouse_p.DefineView(definition, Warehouse::CacheMode::kFull).ok());
  }

  UpdateGenOptions gen_options;
  gen_options.seed = 31;
  UpdateGenerator gen_m(&source_m, root, gen_options);
  UpdateGenerator gen_p(&source_p, root, gen_options);

  auto expect_converged = [&](Warehouse& paged, ObjectStore& paged_store) {
    ASSERT_EQ(StoreToString(paged_store), StoreToString(store_m));
    for (size_t v = 0; v < view_names.size(); ++v) {
      const AuxiliaryCache* cache_m = warehouse_m.cache(view_names[v]);
      const AuxiliaryCache* cache_p = paged.cache(view_names[v]);
      ASSERT_NE(cache_m, nullptr);
      ASSERT_NE(cache_p, nullptr);
      std::ostringstream bytes_m;
      std::ostringstream bytes_p;
      ASSERT_TRUE(cache_m->SaveTo(bytes_m).ok());
      ASSERT_TRUE(cache_p->SaveTo(bytes_p).ok());
      EXPECT_EQ(bytes_p.str(), bytes_m.str()) << view_names[v];

      auto def = ViewDefinition::Parse(definitions[v]);
      ASSERT_TRUE(def.ok());
      auto truth = EvaluateView(source_m, def.value());
      ASSERT_TRUE(truth.ok());
      MaterializedView* view = paged.view(view_names[v]);
      ASSERT_NE(view, nullptr);
      EXPECT_EQ(view->BaseMembers(), truth.value()) << view_names[v];
    }
  };

  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(gen_m.Step().ok());
    ASSERT_TRUE(gen_p.Step().ok());
    if (i % 25 == 24) {
      ASSERT_TRUE(warehouse_m.ProcessPendingBatch().ok());
      ASSERT_TRUE(warehouse_p.ProcessPendingBatch().ok());
      ASSERT_NO_FATAL_FAILURE(expect_converged(warehouse_p, store_p));
    }
  }
  // The paged delegate store is genuinely beyond its two-frame pool, and
  // its paging showed up on the warehouse cost sheet (flushed at the
  // drain quiescent points) — on the paged twin only.
  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(store_p.storage_engine(), &status));
  EXPECT_GT(status.pages_total, status.pool_pages);
  EXPECT_GT(warehouse_p.costs().store_page_faults.load(), 0);
  EXPECT_EQ(warehouse_m.costs().store_page_faults.load(), 0);

  // Checkpoint, accept a never-drained tail, "crash", recover on a fresh
  // paged store: the tail replays and the twins converge again.
  ASSERT_TRUE(warehouse_p.WriteCheckpoint().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(gen_m.Step().ok());
    ASSERT_TRUE(gen_p.Step().ok());
  }
  EXPECT_EQ(warehouse_p.pending_events(), 10u);

  ObjectStore store_r(
      PagedStoreOptions(TinyPagedOptions("twin_wh_rec", 2)));
  Warehouse::Options recovered_options;
  recovered_options.aux_engine_factory =
      MakePagedEngineFactory(TinyPagedOptions("twin_wh_rec_aux", 2));
  Warehouse recovered(&store_r, recovered_options);
  ASSERT_TRUE(
      recovered.ConnectSource(&source_p, root, ReportingLevel::kWithValues)
          .ok());
  recovered.set_deferred(true);
  Warehouse::DurabilityOptions recovery_options;
  recovery_options.dir = wal_dir;
  ASSERT_TRUE(recovered.EnableDurability(recovery_options).ok());
  EXPECT_TRUE(recovered.recovery_report().recovered_checkpoint);

  ASSERT_TRUE(warehouse_m.ProcessPendingBatch().ok());
  ASSERT_TRUE(recovered.ProcessPendingBatch().ok());
  ASSERT_NO_FATAL_FAILURE(expect_converged(recovered, store_r));
}

// ----------------------------------------------------- twin: replication

// A follower whose delegate store runs on the paged engine seeds from the
// primary's checkpoint through the bulk-load seam and stays byte-identical
// with a memory-engine primary at every commit watermark. The views select
// whole tree levels so the follower's store overflows its two-frame pool.
TEST(EngineTwinTest, ReplicaCatchesUpOnPagedEngine) {
  const std::string primary_dir = TempDir("twin_rep_primary");

  TreeGenOptions tree_options;
  tree_options.levels = 5;
  tree_options.fanout = 4;
  tree_options.seed = 37;
  ObjectStore source;
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());
  const Oid root = tree->root;
  const std::vector<std::string> definitions = {
      TreeViewDefinition("WV3", root, 3, 5, 1000),
      TreeViewDefinition("WV4", root, 4, 5, 1000)};
  const std::vector<std::string> view_names = {"WV3", "WV4"};

  ObjectStore store;
  Warehouse warehouse(&store);
  ASSERT_TRUE(
      warehouse.ConnectSource(&source, root, ReportingLevel::kWithValues)
          .ok());
  warehouse.set_deferred(true);
  Warehouse::DurabilityOptions durability;
  durability.dir = primary_dir;
  durability.fsync = FsyncPolicy::kCommit;
  ASSERT_TRUE(warehouse.EnableDurability(durability).ok());
  for (const std::string& definition : definitions) {
    ASSERT_TRUE(warehouse.DefineView(definition).ok());
  }

  ReplicaOptions replica_options;
  replica_options.dir = TempDir("twin_rep_follower");
  replica_options.engine_factory =
      MakePagedEngineFactory(TinyPagedOptions("twin_rep_engine", 2));
  Replica replica(std::make_unique<FileLogTransport>(primary_dir),
                  std::move(replica_options));
  ASSERT_TRUE(replica.Start().ok());
  EXPECT_STREQ(replica.store().engine_name(), "paged");

  UpdateGenOptions gen_options;
  gen_options.seed = 41;
  UpdateGenerator gen(&source, root, gen_options);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 25; ++i) ASSERT_TRUE(gen.Step().ok());
    ASSERT_TRUE(warehouse.ProcessPending().ok());
    Status caught = replica.CatchUp();
    ASSERT_TRUE(caught.ok()) << caught.ToString();
    EXPECT_EQ(StoreToString(replica.store()), StoreToString(store))
        << "round " << round;
    for (const std::string& name : view_names) {
      const MaterializedView* primary_view = warehouse.view(name);
      const MaterializedView* replica_view = replica.view(name);
      ASSERT_NE(primary_view, nullptr);
      ASSERT_NE(replica_view, nullptr);
      EXPECT_EQ(ViewContentLines(*replica_view),
                ViewContentLines(*primary_view))
          << name;
    }
  }
  EXPECT_GT(replica.store().metrics().page_faults.load(), 0);
  EXPECT_EQ(replica.stats().self_heals, 0);
}

}  // namespace
}  // namespace gsv
