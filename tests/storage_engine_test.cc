// Storage-engine suite (§4h): the StorageEngine contract on both shipped
// engines, PagedEngine residency/eviction bounds, oversized-object
// extents, offline image verification, the GSV_STORAGE_ENGINE env seam —
// and the headline twin property: a store/warehouse/replica on the paged
// engine under a pool small enough to force constant eviction is
// byte-identical with a memory-engine twin at every commit watermark,
// through checkpoints and crash recovery included.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/virtual_view.h"
#include "oem/page_codec.h"
#include "oem/paged_engine.h"
#include "oem/serialize.h"
#include "oem/storage_engine.h"
#include "oem/store.h"
#include "query/evaluator.h"
#include "replication/log_transport.h"
#include "replication/replica.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "warehouse/aux_cache.h"
#include "warehouse/sharded_warehouse.h"
#include "warehouse/sharding.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

std::string TempDir(const std::string& tag) {
  std::string path = ::testing::TempDir() + "gsv_engine_" + tag;
  std::filesystem::remove_all(path);
  return path;
}

// A paged engine small enough that any non-trivial graph overflows the
// pool: 512-byte pages, three frames. wipe_on_close keeps TempDir clean.
PagedEngineOptions TinyPagedOptions(const std::string& tag,
                                    uint64_t pool_pages = 3,
                                    uint64_t page_bytes = 512) {
  PagedEngineOptions options;
  options.dir = TempDir(tag);
  options.page_bytes = page_bytes;
  options.pool_pages = pool_pages;
  options.wipe_on_close = true;
  return options;
}

ObjectStore::Options PagedStoreOptions(PagedEngineOptions engine_options) {
  ObjectStore::Options options;
  options.engine_factory = MakePagedEngineFactory(std::move(engine_options));
  return options;
}

// ------------------------------------------------------- engine contract

void ExerciseEngineContract(StorageEngine* engine) {
  EXPECT_EQ(engine->Size(), 0u);
  // Inserted out of lexicographic order on purpose.
  ASSERT_TRUE(engine->Put(Object(Oid("m"), "age", Value::Int(7))).ok());
  ASSERT_TRUE(engine->Put(Object(Oid("a:2"), "name", Value::Str("x"))).ok());
  OidSet children;
  children.Insert(Oid("m"));
  ASSERT_TRUE(engine->Put(Object(Oid("a:10"), "set", Value::Set(children)))
                  .ok());
  EXPECT_EQ(engine->Size(), 3u);

  // Duplicate put refused; the original survives.
  EXPECT_EQ(engine->Put(Object(Oid("m"), "age", Value::Int(9))).code(),
            StatusCode::kAlreadyExists);
  const Object* got = engine->Get(Oid("m"));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->value().AsInt(), 7);
  EXPECT_EQ(engine->Get(Oid("absent")), nullptr);

  // Mutation through GetMutable sticks.
  Object* mut = engine->GetMutable(Oid("m"));
  ASSERT_NE(mut, nullptr);
  mut->mutable_value() = Value::Int(41);
  EXPECT_EQ(engine->Get(Oid("m"))->value().AsInt(), 41);

  // Ordered scan yields canonical lexicographic OID order.
  std::vector<std::string> order;
  engine->ScanInOrder([&](const Object& object) {
    order.push_back(object.oid().str());
  });
  EXPECT_EQ(order, (std::vector<std::string>{"a:10", "a:2", "m"}));

  // Unordered scan visits the same set.
  size_t visited = 0;
  engine->ScanUnordered([&](const Object&) { ++visited; });
  EXPECT_EQ(visited, 3u);

  // Erase, then re-put under the same OID.
  EXPECT_EQ(engine->Erase(Oid("absent")).code(), StatusCode::kNotFound);
  ASSERT_TRUE(engine->Erase(Oid("m")).ok());
  EXPECT_EQ(engine->Size(), 2u);
  EXPECT_EQ(engine->Get(Oid("m")), nullptr);
  ASSERT_TRUE(engine->Put(Object(Oid("m"), "age", Value::Int(5))).ok());
  EXPECT_EQ(engine->Get(Oid("m"))->value().AsInt(), 5);

  // Safe points and flushes must not disturb contents.
  engine->SafePoint();
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->Size(), 3u);
  EXPECT_EQ(engine->Get(Oid("a:2"))->value().AsString(), "x");
}

TEST(StorageEngineContractTest, InMemoryEngine) {
  auto engine = MakeInMemoryEngine();
  EXPECT_STREQ(engine->EngineName(), "memory");
  ExerciseEngineContract(engine.get());
}

TEST(StorageEngineContractTest, PagedEngine) {
  auto engine = MakePagedEngine(TinyPagedOptions("contract"));
  EXPECT_STREQ(engine->EngineName(), "paged");
  ExerciseEngineContract(engine.get());
}

// A store built without a factory runs on the memory engine; with the
// paged factory it reports the paged engine.
TEST(StorageEngineContractTest, StoreReportsItsEngine) {
  ObjectStore memory_store;
  EXPECT_STREQ(memory_store.engine_name(), "memory");
  ObjectStore paged_store(PagedStoreOptions(TinyPagedOptions("report")));
  EXPECT_STREQ(paged_store.engine_name(), "paged");
}

// --------------------------------------------------- residency / bounds

TEST(PagedEngineTest, BeyondRamStoreStaysWithinPoolBudget) {
  ObjectStore store(PagedStoreOptions(TinyPagedOptions("bounds")));
  // ~200 atoms at ~30 bytes each over 512-byte pages: well past 4x the
  // three-frame budget.
  for (int i = 0; i < 200; ++i) {
    std::ostringstream oid;
    oid << "o" << i;
    ASSERT_TRUE(store.PutAtomic(Oid(oid.str()), "age", Value::Int(i)).ok());
    if (i % 25 == 24) store.StorageSafePoint();
  }
  store.StorageSafePoint();

  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));
  ASSERT_TRUE(status.io_error.ok()) << status.io_error.ToString();
  EXPECT_EQ(status.objects, 200u);
  EXPECT_GE(status.pages_total, 4 * status.pool_pages);  // beyond-RAM
  EXPECT_LE(status.pages_resident, status.pool_pages);   // post-safe-point

  // Every object reads back despite constant eviction.
  for (int i = 0; i < 200; ++i) {
    std::ostringstream oid;
    oid << "o" << i;
    const Object* object = store.Get(Oid(oid.str()));
    ASSERT_NE(object, nullptr) << oid.str();
    EXPECT_EQ(object->value().AsInt(), i);
  }
  EXPECT_GT(store.metrics().page_faults.load(), 0);
  EXPECT_GT(store.metrics().page_evictions.load(), 0);

  // A full ordered scan of the beyond-RAM store ends within budget again.
  store.StorageSafePoint();
  size_t scanned = 0;
  std::string previous;
  store.ScanInOrder([&](const Object& object) {
    EXPECT_LT(previous, object.oid().str());
    previous = object.oid().str();
    ++scanned;
  });
  EXPECT_EQ(scanned, 200u);
  store.StorageSafePoint();
  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));
  EXPECT_LE(status.pages_resident, status.pool_pages);
}

TEST(PagedEngineTest, OversizedObjectOccupiesMultiSlotExtent) {
  ObjectStore store(
      PagedStoreOptions(TinyPagedOptions("extent", 3, 256)));
  ASSERT_TRUE(store.PutAtomic(Oid("small"), "age", Value::Int(1)).ok());
  // One record several times the 256-byte slot size.
  ASSERT_TRUE(store
                  .PutAtomic(Oid("huge"), "blob",
                             Value::Str(std::string(2000, 'z')))
                  .ok());
  store.StorageSafePoint();
  ASSERT_TRUE(store.FlushStorage().ok());

  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));
  auto directory = ReadPageDirectory(status.dir);
  ASSERT_TRUE(directory.ok()) << directory.status().ToString();
  bool saw_extent = false;
  for (const PageDirEntry& page : directory.value().pages) {
    if (page.slot_count > 1) saw_extent = true;
  }
  EXPECT_TRUE(saw_extent);
  EXPECT_TRUE(VerifyPagedImage(status.dir, nullptr).ok());

  // The oversized object reads back intact after eviction pressure.
  store.StorageSafePoint();
  const Object* huge = store.Get(Oid("huge"));
  ASSERT_NE(huge, nullptr);
  EXPECT_EQ(huge->value().AsString(), std::string(2000, 'z'));
}

TEST(PagedEngineTest, VerifyPagedImageCatchesCorruption) {
  ObjectStore store(PagedStoreOptions(TinyPagedOptions("corrupt")));
  for (int i = 0; i < 40; ++i) {
    std::ostringstream oid;
    oid << "c" << i;
    ASSERT_TRUE(store.PutAtomic(Oid(oid.str()), "age", Value::Int(i)).ok());
  }
  store.StorageSafePoint();
  ASSERT_TRUE(store.FlushStorage().ok());
  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));

  std::ostringstream report;
  ASSERT_TRUE(VerifyPagedImage(status.dir, &report).ok());
  EXPECT_NE(report.str().find("all pages verify"), std::string::npos);
  // Per-page codec id and stored/raw ratio appear in the dump.
  EXPECT_NE(report.str().find("codec 0(identity)"), std::string::npos);
  EXPECT_NE(report.str().find("ratio"), std::string::npos);

  // Flip one payload byte of the first non-empty page in pages.gsp.
  auto directory = ReadPageDirectory(status.dir);
  ASSERT_TRUE(directory.ok());
  const PageDirEntry* victim = nullptr;
  for (const PageDirEntry& page : directory.value().pages) {
    if (page.payload_bytes > 0) {
      victim = &page;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  {
    std::fstream file(status.dir + "/pages.gsp",
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(static_cast<std::streamoff>(victim->slot_start *
                                           directory.value().page_bytes));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(victim->slot_start *
                                           directory.value().page_bytes));
    file.put(static_cast<char>(byte ^ 0x40));
  }
  EXPECT_EQ(VerifyPagedImage(status.dir, nullptr).code(),
            StatusCode::kDataLoss);
}

// ----------------------------------------------------------- page codec

TEST(PageCodecTest, RegistryRoundTrips) {
  EXPECT_EQ(PageCodecById(0), IdentityPageCodec());
  EXPECT_EQ(PageCodecById(1), GsvzPageCodec());
  EXPECT_EQ(PageCodecById(7), nullptr);
  auto identity = PageCodecByName("identity");
  ASSERT_TRUE(identity.ok());
  EXPECT_EQ(identity.value()->id(), 0);
  auto gsvz = PageCodecByName("gsvz");
  auto compressed = PageCodecByName("compressed");
  ASSERT_TRUE(gsvz.ok());
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(gsvz.value(), compressed.value());
  EXPECT_EQ(PageCodecByName("zstd").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PageCodecTest, GsvzRoundTripsArbitraryPayloads) {
  const PageCodec* codec = GsvzPageCodec();
  std::vector<std::string> payloads = {
      "",
      "x",
      "ab",
      "abc",
      std::string(5000, 'z'),                    // long self-overlap run
      "obj o1 age int 1\nobj o2 age int 2\n",    // checkpoint-like text
  };
  // Pseudo-random binary including high bytes and NULs.
  std::string binary;
  uint32_t state = 0x2545F491u;
  for (int i = 0; i < 4096; ++i) {
    state = state * 1664525u + 1013904223u;
    binary.push_back(static_cast<char>(state >> 24));
  }
  payloads.push_back(binary);
  for (const std::string& raw : payloads) {
    std::string stored = codec->Encode(raw);
    auto decoded = codec->Decode(stored);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value(), raw) << "payload size " << raw.size();
  }
}

TEST(PageCodecTest, GsvzCompressesCheckpointText) {
  // A realistic page payload: repetitive record keywords and OID prefixes.
  std::string raw;
  for (int i = 0; i < 200; ++i) {
    raw += "obj warehouse:member:" + std::to_string(i) +
           " folder set { child:" + std::to_string(i) + " }\n";
  }
  const std::string stored = GsvzPageCodec()->Encode(raw);
  EXPECT_LT(stored.size(), raw.size() * 6 / 10)
      << "stored " << stored.size() << " raw " << raw.size();
  auto decoded = GsvzPageCodec()->Decode(stored);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), raw);
}

TEST(PageCodecTest, GsvzRejectsMalformedStreams) {
  const PageCodec* codec = GsvzPageCodec();
  std::string stored = codec->Encode("the quick brown fox the quick brown");
  // Truncations at every prefix either decode to the full payload or fail
  // cleanly — never crash, never return a wrong payload silently.
  for (size_t cut = 0; cut < stored.size(); ++cut) {
    auto decoded = codec->Decode(stored.substr(0, cut));
    if (decoded.ok()) {
      FAIL() << "truncated stream at " << cut << " decoded";
    } else {
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
    }
  }
  EXPECT_EQ(codec->Decode("").status().code(), StatusCode::kDataLoss);
  // Trailing garbage after the declared size is data loss too.
  EXPECT_EQ(codec->Decode(stored + "x").status().code(),
            StatusCode::kDataLoss);
}

// ------------------------------------------------- free-extent coalescing

// Growing pages into multi-slot extents and then shrinking them back frees
// adjacent extents; the free list must merge them and trim runs that reach
// the file tail, so a long-lived home stops fragmenting.
TEST(PagedEngineTest, FreedExtentsCoalesceAndTailTrims) {
  ObjectStore store(PagedStoreOptions(TinyPagedOptions("coalesce", 3, 256)));
  // Ten objects of ~1000 bytes: every page becomes a multi-slot extent.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store
                    .PutAtomic(Oid("h" + std::to_string(i)), "blob",
                               Value::Str(std::string(1000, 'a' + i % 26)))
                    .ok());
  }
  store.StorageSafePoint();
  ASSERT_TRUE(store.FlushStorage().ok());
  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));
  const uint64_t fat_slots = status.disk_slots;
  EXPECT_GT(fat_slots, 10u);

  // Shrink every object to a few bytes: each page's next writeback drops
  // to a 1-slot extent, freeing its old multi-slot run.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Modify(Oid("h" + std::to_string(i)), Value::Int(i)).ok());
  }
  store.StorageSafePoint();
  ASSERT_TRUE(store.FlushStorage().ok());

  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));
  ASSERT_TRUE(status.io_error.ok()) << status.io_error.ToString();
  EXPECT_GT(status.extent_merges, 0u) << "no adjacent frees merged";
  EXPECT_GT(status.slots_reclaimed, 0u) << "tail run never trimmed";
  EXPECT_LT(status.disk_slots, fat_slots) << "file never shrank";
  // The shrunken image still verifies offline.
  EXPECT_TRUE(VerifyPagedImage(status.dir, nullptr).ok());
  // And everything still reads back.
  for (int i = 0; i < 10; ++i) {
    const Object* object = store.Get(Oid("h" + std::to_string(i)));
    ASSERT_NE(object, nullptr);
    EXPECT_EQ(object->value().AsInt(), i);
  }
}

// ------------------------------------------------------------ swizzling

TEST(PagedEngineTest, SwizzledReadsHitAfterFirstTouch) {
  ObjectStore store(PagedStoreOptions(TinyPagedOptions("swizzle", 4)));
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        store.PutAtomic(Oid("s" + std::to_string(i)), "age", Value::Int(i))
            .ok());
  }
  store.StorageSafePoint();

  // First read of an object takes the routed slow path (a miss); repeats
  // are direct-pointer hits.
  const int64_t hits_before = store.metrics().swizzle_hits.load();
  const Object* first = store.Get(Oid("s7"));
  ASSERT_NE(first, nullptr);
  const Object* second = store.Get(Oid("s7"));
  ASSERT_EQ(first, second);  // same address: served from the swizzle table
  EXPECT_GT(store.metrics().swizzle_hits.load(), hits_before);
  EXPECT_GT(store.metrics().swizzle_misses.load(), 0);

  // A swizzled-path mutation marks the frame dirty for real: the change
  // survives writeback and a full eviction round trip.
  ASSERT_TRUE(store.Modify(Oid("s7"), Value::Int(700)).ok());
  store.StorageSafePoint();
  ASSERT_TRUE(store.FlushStorage().ok());
  store.StorageSafePoint();
  EXPECT_EQ(store.Get(Oid("s7"))->value().AsInt(), 700);

  // Erase drops the entry — the OID resolves to null, not a stale pointer.
  ASSERT_TRUE(store.Remove(Oid("s7")).ok());
  EXPECT_EQ(store.Get(Oid("s7")), nullptr);

  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));
  EXPECT_GT(status.swizzle_entries, 0u);
}

// ---------------------------------------------------- eviction under pin

// A scan whose callback issues point reads forces faults (and evictions)
// while the cursor frame is pinned: the pinned frame must never be
// evicted out from under the scan, and every nested read must be correct.
TEST(PagedEngineTest, EvictionUnderPinStress) {
  PagedEngineOptions options = TinyPagedOptions("pin_stress", 2);
  options.codec = "compressed";
  options.writeback_queue = 2;  // force steals and fallbacks too
  ObjectStore store(PagedStoreOptions(std::move(options)));
  constexpr int kObjects = 120;
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(
        store.PutAtomic(Oid("p" + std::to_string(i)), "age", Value::Int(i))
            .ok());
  }
  store.StorageSafePoint();

  size_t visited = 0;
  store.ScanInOrder([&](const Object& object) {
    // Read a spread of other objects mid-scan; most live on other pages,
    // so this churns the two-frame pool under the scan's pin.
    const int base = static_cast<int>(visited * 37);
    for (int k = 0; k < 3; ++k) {
      const int target = (base + k * 41) % kObjects;
      const Object* other = store.Get(Oid("p" + std::to_string(target)));
      ASSERT_NE(other, nullptr) << "p" << target;
      EXPECT_EQ(other->value().AsInt(), target);
    }
    // The cursor object stays addressable after the nested faults.
    EXPECT_FALSE(object.oid().str().empty());
    ++visited;
  });
  EXPECT_EQ(visited, static_cast<size_t>(kObjects));

  store.StorageSafePoint();
  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(store.storage_engine(), &status));
  ASSERT_TRUE(status.io_error.ok()) << status.io_error.ToString();
  EXPECT_LE(status.pages_resident, status.pool_pages);
  EXPECT_GT(store.metrics().page_faults.load(), 0);
}

// ------------------------------------------------------------- env seam

TEST(PagedEngineTest, StrictSpecParsing) {
  // Well-formed specs.
  auto unset = ParseStorageEngineSpec("");
  ASSERT_TRUE(unset.ok());
  EXPECT_EQ(unset.value(), nullptr);
  auto memory = ParseStorageEngineSpec("memory");
  ASSERT_TRUE(memory.ok());
  EXPECT_EQ(memory.value(), nullptr);
  for (const char* spec :
       {"paged", "paged:8", "paged:8:4096", "paged:8:4096:compressed",
        "paged:8:4096:gsvz", "paged:8:4096:identity"}) {
    auto parsed = ParseStorageEngineSpec(spec);
    ASSERT_TRUE(parsed.ok()) << spec << ": " << parsed.status().ToString();
    ASSERT_NE(parsed.value(), nullptr) << spec;
    auto engine = parsed.value()();
    ASSERT_NE(engine, nullptr) << spec;
    EXPECT_STREQ(engine->EngineName(), "paged");
    ASSERT_TRUE(engine->Put(Object(Oid("e"), "age", Value::Int(1))).ok());
    ASSERT_TRUE(engine->Flush().ok()) << spec;
  }

  // Malformed specs are kInvalidArgument naming the offense — never a
  // silent fall-back to defaults.
  for (const char* spec :
       {"pagedd", "Paged", "paged:", "paged:0", "paged:-2", "paged:x",
        "paged:8:", "paged:8:0", "paged:8:bytes", "paged:8:4096:zstd",
        "paged:8:4096:compressed:extra", "memory:1"}) {
    auto parsed = ParseStorageEngineSpec(spec);
    EXPECT_FALSE(parsed.ok()) << spec << " parsed";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << spec;
    }
  }
}

TEST(PagedEngineTest, EngineFactoryFromEnv) {
  const char* saved = std::getenv("GSV_STORAGE_ENGINE");
  std::string saved_value = saved != nullptr ? saved : "";

  ::unsetenv("GSV_STORAGE_ENGINE");
  EXPECT_EQ(MakeEngineFactoryFromEnv(), nullptr);
  ::setenv("GSV_STORAGE_ENGINE", "memory", 1);
  EXPECT_EQ(MakeEngineFactoryFromEnv(), nullptr);

  ::setenv("GSV_STORAGE_ENGINE", "paged:4:1024", 1);
  StorageEngineFactory factory = MakeEngineFactoryFromEnv();
  ASSERT_NE(factory, nullptr);
  {
    auto engine = factory();
    ASSERT_NE(engine, nullptr);
    EXPECT_STREQ(engine->EngineName(), "paged");
    ASSERT_TRUE(engine->Put(Object(Oid("e"), "age", Value::Int(1))).ok());
    EXPECT_EQ(engine->Size(), 1u);
  }

  // The 4-field form selects the page codec (what the ci.sh
  // paged:8:4096:compressed stage runs the whole paged suite under).
  ::setenv("GSV_STORAGE_ENGINE", "paged:4:1024:compressed", 1);
  StorageEngineFactory compressed = MakeEngineFactoryFromEnv();
  ASSERT_NE(compressed, nullptr);
  {
    auto engine = compressed();
    ASSERT_TRUE(engine->Put(Object(Oid("e"), "age", Value::Int(1))).ok());
    ASSERT_TRUE(engine->Flush().ok());
    PagedEngineStatus status;
    ASSERT_TRUE(QueryPagedEngineStatus(engine.get(), &status));
    EXPECT_EQ(status.codec, "gsvz");
  }

  if (saved != nullptr) {
    ::setenv("GSV_STORAGE_ENGINE", saved_value.c_str(), 1);
  } else {
    ::unsetenv("GSV_STORAGE_ENGINE");
  }
}

// ------------------------------------------------------- twin: raw store

// The same generated tree and the same random update stream applied to a
// memory-engine store and a paged-engine store (pool so small every batch
// evicts): contents, checkpoint images, and the on-disk page image are
// byte-identical at every watermark. `engine_options` selects the paged
// configuration under test (codec, background writeback, swizzling).
void RunTwinStoreStream(UpdateMode mode, const std::string& tag,
                        uint64_t seed,
                        PagedEngineOptions engine_options) {
  ObjectStore memory_store;
  ObjectStore paged_store(PagedStoreOptions(engine_options));

  TreeGenOptions tree_options;
  tree_options.levels = 4;
  tree_options.fanout = 3;
  tree_options.seed = seed;
  auto tree_m = GenerateTree(&memory_store, tree_options);
  auto tree_p = GenerateTree(&paged_store, tree_options);
  ASSERT_TRUE(tree_m.ok());
  ASSERT_TRUE(tree_p.ok());
  ASSERT_EQ(tree_m->root, tree_p->root);

  UpdateGenOptions gen_options;
  gen_options.mode = mode;
  gen_options.seed = seed + 1;
  UpdateGenerator gen_m(&memory_store, tree_m->root, gen_options);
  UpdateGenerator gen_p(&paged_store, tree_p->root, gen_options);

  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(gen_m.Step().ok());
    ASSERT_TRUE(gen_p.Step().ok());
    if (i % 50 == 49) {
      paged_store.StorageSafePoint();
      ASSERT_EQ(StoreToString(paged_store), StoreToString(memory_store))
          << "diverged at step " << i;
    }
  }
  paged_store.StorageSafePoint();
  EXPECT_GT(paged_store.metrics().page_evictions.load(), 0)
      << "pool never overflowed; twin proves nothing";

  // The checkpoint image round-trips identically through both engines.
  auto image_m = ExportStoreImage(&memory_store);
  auto image_p = ExportStoreImage(&paged_store);
  ASSERT_TRUE(image_m.ok());
  ASSERT_TRUE(image_p.ok());
  EXPECT_EQ(image_p.value(), image_m.value());

  // Bulk-load the image into a fresh paged store (same engine config):
  // same bytes again.
  PagedEngineOptions reload_options = engine_options;
  reload_options.dir = TempDir(tag + "_reload");
  ObjectStore reloaded(PagedStoreOptions(std::move(reload_options)));
  ASSERT_TRUE(ImportStoreImage(image_m.value(), &reloaded).ok());
  reloaded.StorageSafePoint();
  EXPECT_EQ(StoreToString(reloaded), StoreToString(memory_store));

  // And the flushed on-disk image passes offline verification.
  ASSERT_TRUE(paged_store.FlushStorage().ok());
  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(paged_store.storage_engine(), &status));
  EXPECT_TRUE(VerifyPagedImage(status.dir, nullptr).ok());
}

TEST(EngineTwinTest, TreeStreamByteIdentical) {
  RunTwinStoreStream(UpdateMode::kTreePreserving, "twin_tree", 17,
                     TinyPagedOptions("twin_tree"));
}

TEST(EngineTwinTest, DagStreamByteIdentical) {
  RunTwinStoreStream(UpdateMode::kDagPreserving, "twin_dag", 23,
                     TinyPagedOptions("twin_dag"));
}

// The same twins with every hot-path feature engaged at once: background
// writeback draining through a 2-deep queue (forcing steals and sync
// fallbacks), the compressed codec on every page, swizzled reads.
void RunHotPathTwin(UpdateMode mode, const std::string& tag, uint64_t seed) {
  PagedEngineOptions options = TinyPagedOptions(tag);
  options.codec = "compressed";
  options.writeback_queue = 2;
  RunTwinStoreStream(mode, tag, seed, std::move(options));
}

TEST(EngineTwinTest, CompressedHotPathTreeStreamByteIdentical) {
  RunHotPathTwin(UpdateMode::kTreePreserving, "twin_hot_tree", 43);
}

TEST(EngineTwinTest, CompressedHotPathDagStreamByteIdentical) {
  RunHotPathTwin(UpdateMode::kDagPreserving, "twin_hot_dag", 47);
}

// The PR 7 baseline configuration (synchronous writeback, no swizzle
// table) must keep producing the same bytes too — E20 uses it as its
// comparison arm.
TEST(EngineTwinTest, SynchronousBaselineTreeStreamByteIdentical) {
  PagedEngineOptions options = TinyPagedOptions("twin_sync_tree");
  options.background_writeback = false;
  options.enable_swizzle = false;
  RunTwinStoreStream(UpdateMode::kTreePreserving, "twin_sync_tree", 17,
                     std::move(options));
}

// -------------------------------------------------- twin: full warehouse

// Two warehouses over identical sources and update streams; one runs its
// delegate store AND its §5.2 corridor caches on the paged engine under a
// two-frame pool. A warehouse's delegate store holds the view members, so
// the views select whole tree levels (high bound, depths 3 and 4 of a
// level-5 tree: ~320 members, dozens of pages) to push it beyond RAM.
// Views, cache images, and checkpoint bytes must match the memory twin at
// every drain watermark, and a restart from the paged warehouse's
// durability home must land byte-identical too.
TEST(EngineTwinTest, WarehouseViewsCachesAndRecoveryByteIdentical) {
  const std::string wal_dir = TempDir("twin_wh_wal");

  TreeGenOptions tree_options;
  tree_options.levels = 5;
  tree_options.fanout = 4;
  tree_options.seed = 29;
  ObjectStore source_m;
  ObjectStore source_p;
  auto tree_m = GenerateTree(&source_m, tree_options);
  auto tree_p = GenerateTree(&source_p, tree_options);
  ASSERT_TRUE(tree_m.ok());
  ASSERT_TRUE(tree_p.ok());
  const Oid root = tree_m->root;
  const std::vector<std::string> definitions = {
      TreeViewDefinition("WV3", root, 3, 5, 1000),
      TreeViewDefinition("WV4", root, 4, 5, 1000)};
  const std::vector<std::string> view_names = {"WV3", "WV4"};

  ObjectStore store_m;
  Warehouse warehouse_m(&store_m);
  ASSERT_TRUE(
      warehouse_m.ConnectSource(&source_m, root, ReportingLevel::kWithValues)
          .ok());
  warehouse_m.set_deferred(true);
  for (const std::string& definition : definitions) {
    ASSERT_TRUE(
        warehouse_m.DefineView(definition, Warehouse::CacheMode::kFull).ok());
  }

  ObjectStore store_p(
      PagedStoreOptions(TinyPagedOptions("twin_wh_store", 2)));
  Warehouse::Options warehouse_options;
  warehouse_options.aux_engine_factory =
      MakePagedEngineFactory(TinyPagedOptions("twin_wh_aux", 2));
  Warehouse warehouse_p(&store_p, warehouse_options);
  ASSERT_TRUE(
      warehouse_p.ConnectSource(&source_p, root, ReportingLevel::kWithValues)
          .ok());
  warehouse_p.set_deferred(true);
  Warehouse::DurabilityOptions durability;
  durability.dir = wal_dir;
  durability.fsync = FsyncPolicy::kCommit;
  ASSERT_TRUE(warehouse_p.EnableDurability(durability).ok());
  for (const std::string& definition : definitions) {
    ASSERT_TRUE(
        warehouse_p.DefineView(definition, Warehouse::CacheMode::kFull).ok());
  }

  UpdateGenOptions gen_options;
  gen_options.seed = 31;
  UpdateGenerator gen_m(&source_m, root, gen_options);
  UpdateGenerator gen_p(&source_p, root, gen_options);

  auto expect_converged = [&](Warehouse& paged, ObjectStore& paged_store) {
    ASSERT_EQ(StoreToString(paged_store), StoreToString(store_m));
    for (size_t v = 0; v < view_names.size(); ++v) {
      const AuxiliaryCache* cache_m = warehouse_m.cache(view_names[v]);
      const AuxiliaryCache* cache_p = paged.cache(view_names[v]);
      ASSERT_NE(cache_m, nullptr);
      ASSERT_NE(cache_p, nullptr);
      std::ostringstream bytes_m;
      std::ostringstream bytes_p;
      ASSERT_TRUE(cache_m->SaveTo(bytes_m).ok());
      ASSERT_TRUE(cache_p->SaveTo(bytes_p).ok());
      EXPECT_EQ(bytes_p.str(), bytes_m.str()) << view_names[v];

      auto def = ViewDefinition::Parse(definitions[v]);
      ASSERT_TRUE(def.ok());
      auto truth = EvaluateView(source_m, def.value());
      ASSERT_TRUE(truth.ok());
      MaterializedView* view = paged.view(view_names[v]);
      ASSERT_NE(view, nullptr);
      EXPECT_EQ(view->BaseMembers(), truth.value()) << view_names[v];
    }
  };

  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(gen_m.Step().ok());
    ASSERT_TRUE(gen_p.Step().ok());
    if (i % 25 == 24) {
      ASSERT_TRUE(warehouse_m.ProcessPendingBatch().ok());
      ASSERT_TRUE(warehouse_p.ProcessPendingBatch().ok());
      ASSERT_NO_FATAL_FAILURE(expect_converged(warehouse_p, store_p));
    }
  }
  // The paged delegate store is genuinely beyond its two-frame pool, and
  // its paging showed up on the warehouse cost sheet (flushed at the
  // drain quiescent points) — on the paged twin only.
  PagedEngineStatus status;
  ASSERT_TRUE(QueryPagedEngineStatus(store_p.storage_engine(), &status));
  EXPECT_GT(status.pages_total, status.pool_pages);
  EXPECT_GT(warehouse_p.costs().store_page_faults.load(), 0);
  EXPECT_EQ(warehouse_m.costs().store_page_faults.load(), 0);

  // Checkpoint, accept a never-drained tail, "crash", recover on a fresh
  // paged store: the tail replays and the twins converge again.
  ASSERT_TRUE(warehouse_p.WriteCheckpoint().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(gen_m.Step().ok());
    ASSERT_TRUE(gen_p.Step().ok());
  }
  EXPECT_EQ(warehouse_p.pending_events(), 10u);

  ObjectStore store_r(
      PagedStoreOptions(TinyPagedOptions("twin_wh_rec", 2)));
  Warehouse::Options recovered_options;
  recovered_options.aux_engine_factory =
      MakePagedEngineFactory(TinyPagedOptions("twin_wh_rec_aux", 2));
  Warehouse recovered(&store_r, recovered_options);
  ASSERT_TRUE(
      recovered.ConnectSource(&source_p, root, ReportingLevel::kWithValues)
          .ok());
  recovered.set_deferred(true);
  Warehouse::DurabilityOptions recovery_options;
  recovery_options.dir = wal_dir;
  ASSERT_TRUE(recovered.EnableDurability(recovery_options).ok());
  EXPECT_TRUE(recovered.recovery_report().recovered_checkpoint);

  ASSERT_TRUE(warehouse_m.ProcessPendingBatch().ok());
  ASSERT_TRUE(recovered.ProcessPendingBatch().ok());
  ASSERT_NO_FATAL_FAILURE(expect_converged(recovered, store_r));
}

// ----------------------------------------------------- twin: replication

// A follower whose delegate store runs on the paged engine seeds from the
// primary's checkpoint through the bulk-load seam and stays byte-identical
// with a memory-engine primary at every commit watermark. The views select
// whole tree levels so the follower's store overflows its two-frame pool.
TEST(EngineTwinTest, ReplicaCatchesUpOnPagedEngine) {
  const std::string primary_dir = TempDir("twin_rep_primary");

  TreeGenOptions tree_options;
  tree_options.levels = 5;
  tree_options.fanout = 4;
  tree_options.seed = 37;
  ObjectStore source;
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());
  const Oid root = tree->root;
  const std::vector<std::string> definitions = {
      TreeViewDefinition("WV3", root, 3, 5, 1000),
      TreeViewDefinition("WV4", root, 4, 5, 1000)};
  const std::vector<std::string> view_names = {"WV3", "WV4"};

  ObjectStore store;
  Warehouse warehouse(&store);
  ASSERT_TRUE(
      warehouse.ConnectSource(&source, root, ReportingLevel::kWithValues)
          .ok());
  warehouse.set_deferred(true);
  Warehouse::DurabilityOptions durability;
  durability.dir = primary_dir;
  durability.fsync = FsyncPolicy::kCommit;
  ASSERT_TRUE(warehouse.EnableDurability(durability).ok());
  for (const std::string& definition : definitions) {
    ASSERT_TRUE(warehouse.DefineView(definition).ok());
  }

  ReplicaOptions replica_options;
  replica_options.dir = TempDir("twin_rep_follower");
  replica_options.engine_factory =
      MakePagedEngineFactory(TinyPagedOptions("twin_rep_engine", 2));
  Replica replica(std::make_unique<FileLogTransport>(primary_dir),
                  std::move(replica_options));
  ASSERT_TRUE(replica.Start().ok());
  EXPECT_STREQ(replica.store().engine_name(), "paged");

  UpdateGenOptions gen_options;
  gen_options.seed = 41;
  UpdateGenerator gen(&source, root, gen_options);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 25; ++i) ASSERT_TRUE(gen.Step().ok());
    ASSERT_TRUE(warehouse.ProcessPending().ok());
    Status caught = replica.CatchUp();
    ASSERT_TRUE(caught.ok()) << caught.ToString();
    EXPECT_EQ(StoreToString(replica.store()), StoreToString(store))
        << "round " << round;
    for (const std::string& name : view_names) {
      const MaterializedView* primary_view = warehouse.view(name);
      const MaterializedView* replica_view = replica.view(name);
      ASSERT_NE(primary_view, nullptr);
      ASSERT_NE(replica_view, nullptr);
      EXPECT_EQ(ViewContentLines(*replica_view),
                ViewContentLines(*primary_view))
          << name;
    }
  }
  EXPECT_GT(replica.store().metrics().page_faults.load(), 0);
  EXPECT_EQ(replica.stats().self_heals, 0);
}

// ------------------------------------------- twin: kill mid-writeback

// The writeback queue is scratch state: killing the process while jobs are
// still queued (simulated by abandon_queue_on_close — queued pages never
// reach pages.gsp) must not perturb recovery, because durable truth is the
// WAL + checkpoints and the engine home is rebuilt by bulk load. A sharded
// warehouse whose shard delegate stores run the full hot path (background
// writeback through a 2-deep queue, compressed codec, 2-frame pools) is
// killed with a committed-but-not-checkpointed tail, recovered, and must
// match a memory-engine twin that never died — then keep matching as new
// events flow. Randomized over seeds per mode/shard-count.
void RunKillMidWritebackRecovery(UpdateMode mode, uint32_t shards,
                                 uint64_t seed, const std::string& tag) {
  const std::string wal_dir = TempDir(tag + "_wal");

  TreeGenOptions tree_options;
  tree_options.levels = 4;
  tree_options.fanout = 3;
  tree_options.seed = seed;
  ObjectStore source;
  auto tree = GenerateTree(&source, tree_options);
  ASSERT_TRUE(tree.ok());
  const Oid root = tree->root;
  const std::string definition = TreeViewDefinition("KWV", root, 3, 4, 500);

  ObjectStore twin_store;
  Warehouse twin(&twin_store);
  ASSERT_TRUE(
      twin.ConnectSource(&source, root, ReportingLevel::kWithValues).ok());
  twin.set_deferred(true);
  ASSERT_TRUE(twin.DefineView(definition).ok());

  auto paged_factory = [&](const std::string& suffix) {
    PagedEngineOptions options = TinyPagedOptions(tag + suffix, 2);
    options.codec = "compressed";
    options.writeback_queue = 2;
    options.abandon_queue_on_close = true;  // the "kill"
    return MakePagedEngineFactory(std::move(options));
  };

  UpdateGenOptions gen_options;
  gen_options.mode = mode;
  gen_options.seed = seed + 1;
  UpdateGenerator gen(&source, root, gen_options);

  {
    ShardedWarehouse::Options options;
    options.engine_factory = paged_factory("_live");
    ShardedWarehouse durable(shards, options);
    ASSERT_TRUE(durable.init_status().ok());
    ASSERT_TRUE(
        durable.ConnectSource(&source, root, ReportingLevel::kWithValues)
            .ok());
    durable.set_deferred(true);
    ShardedWarehouse::DurabilityOptions durability;
    durability.dir = wal_dir;
    durability.fsync = FsyncPolicy::kCommit;
    ASSERT_TRUE(durable.EnableDurability(durability).ok());
    ASSERT_TRUE(durable.DefineView(definition).ok());

    for (int burst = 0; burst < 3; ++burst) {
      ASSERT_TRUE(gen.Run(25).ok());
      ASSERT_TRUE(twin.ProcessPendingBatch().ok());
      ASSERT_TRUE(durable.ProcessPendingBatch(shards).ok());
    }
    ASSERT_TRUE(durable.WriteCheckpoint().ok());
    // A committed tail past the checkpoint: recovery must replay it.
    ASSERT_TRUE(gen.Run(25).ok());
    ASSERT_TRUE(twin.ProcessPendingBatch().ok());
    ASSERT_TRUE(durable.ProcessPendingBatch(shards).ok());
    MaterializedView* view = twin.view("KWV");
    ASSERT_NE(view, nullptr);
    ASSERT_EQ(durable.ViewContents("KWV"), ViewContentLines(*view));
    // Destructor: engines drop whatever writeback jobs are still queued —
    // on-disk pages.gsp is torn mid-writeback, exactly like a kill.
  }

  ShardedWarehouse::Options recovered_options;
  recovered_options.engine_factory = paged_factory("_rec");
  ShardedWarehouse recovered(shards, recovered_options);
  ASSERT_TRUE(recovered.init_status().ok());
  ASSERT_TRUE(
      recovered.ConnectSource(&source, root, ReportingLevel::kWithValues)
          .ok());
  recovered.set_deferred(true);
  ShardedWarehouse::DurabilityOptions durability;
  durability.dir = wal_dir;
  ASSERT_TRUE(recovered.EnableDurability(durability).ok());

  MaterializedView* view = twin.view("KWV");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(recovered.ViewContents("KWV"), ViewContentLines(*view));

  // The recovered warehouse keeps pace with the twin on fresh events.
  ASSERT_TRUE(gen.Run(25).ok());
  ASSERT_TRUE(twin.ProcessPendingBatch().ok());
  ASSERT_TRUE(recovered.ProcessPendingBatch(shards).ok());
  EXPECT_EQ(recovered.ViewContents("KWV"), ViewContentLines(*twin.view("KWV")));
  const WarehouseCosts costs = recovered.MergedCosts();
  EXPECT_EQ(costs.events_duplicate_dropped.load(), 0);
  EXPECT_EQ(costs.events_gap_detected.load(), 0);
}

TEST(KillMidWritebackTest, TreeK1) {
  for (uint64_t seed : {59u, 61u}) {
    ASSERT_NO_FATAL_FAILURE(RunKillMidWritebackRecovery(
        UpdateMode::kTreePreserving, 1, seed,
        "kill_tree_k1_" + std::to_string(seed)));
  }
}

TEST(KillMidWritebackTest, TreeK4) {
  for (uint64_t seed : {67u, 71u}) {
    ASSERT_NO_FATAL_FAILURE(RunKillMidWritebackRecovery(
        UpdateMode::kTreePreserving, 4, seed,
        "kill_tree_k4_" + std::to_string(seed)));
  }
}

TEST(KillMidWritebackTest, DagK1) {
  for (uint64_t seed : {73u, 79u}) {
    ASSERT_NO_FATAL_FAILURE(RunKillMidWritebackRecovery(
        UpdateMode::kDagPreserving, 1, seed,
        "kill_dag_k1_" + std::to_string(seed)));
  }
}

TEST(KillMidWritebackTest, DagK4) {
  for (uint64_t seed : {83u, 89u}) {
    ASSERT_NO_FATAL_FAILURE(RunKillMidWritebackRecovery(
        UpdateMode::kDagPreserving, 4, seed,
        "kill_dag_k4_" + std::to_string(seed)));
  }
}

}  // namespace
}  // namespace gsv
