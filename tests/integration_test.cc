// Cross-module integration scenarios: views on views, clusters under live
// maintenance, GC interplay, multi-source warehouses, DataGuide-derived
// knowledge, and query equivalence across view representations.

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithm1.h"
#include "core/consistency.h"
#include "core/materialized_view.h"
#include "core/view_cluster.h"
#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "oem/serialize.h"
#include "oem/store.h"
#include "oem/transaction.h"
#include "query/evaluator.h"
#include "util/random.h"
#include "warehouse/path_knowledge.h"
#include "warehouse/source_wrapper_gsdb.h"
#include "warehouse/warehouse.h"
#include "workload/person_db.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

using namespace person_db;  // NOLINT(build/namespaces): OID helpers

// A materialized view defined over another materialized view: the §3.1
// composition property carried over to stored views. Delegate OIDs nest
// ("OUTER.INNER.P1").
TEST(IntegrationTest, MaterializedViewOverMaterializedView) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store).ok());

  auto inner_def = ViewDefinition::Parse(
      "define mview INNER as: SELECT ROOT.professor X");
  ASSERT_TRUE(inner_def.ok());
  MaterializedView inner(&store, *inner_def);
  ASSERT_TRUE(inner.Initialize(store).ok());

  // The outer view selects, from the inner view's delegates, those with a
  // young age — the inner view is just a database named INNER.
  auto outer_def = ViewDefinition::Parse(
      "define mview OUTER as: SELECT INNER.professor X WHERE X.age <= 45");
  ASSERT_TRUE(outer_def.ok());
  MaterializedView outer(&store, *outer_def);
  ASSERT_TRUE(outer.Initialize(store).ok());

  // INNER.P1 is the qualifying delegate; its own delegate nests the OIDs.
  EXPECT_EQ(outer.BaseMembers(), OidSet({Oid("INNER.P1")}));
  const Object* nested = store.Get(Oid("OUTER.INNER.P1"));
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->label(), "professor");
  EXPECT_EQ(Oid("OUTER.INNER.P1").BaseIn(Oid("OUTER")), Oid("INNER.P1"));

  // Maintain both: base update flows through inner (Algorithm 1), whose
  // delegate-value sync is a raw edit — so the outer view is refreshed
  // with its own maintainer run on the inner store's contents.
  LocalAccessor accessor(&store);
  Algorithm1Maintainer inner_maintainer(&inner, &accessor, *inner_def,
                                        Root());
  store.AddListener(&inner_maintainer);
  ASSERT_TRUE(store.PutSet(Oid("P9"), "professor").ok());
  ASSERT_TRUE(store.Insert(Root(), Oid("P9")).ok());
  EXPECT_TRUE(inner.ContainsBase(Oid("P9")));
  EXPECT_TRUE(CheckViewConsistency(inner, store).consistent);
}

// Live stacked views: the inner view emits its delegate edits as basic
// updates, so the outer view's maintainer keeps up automatically — §3.1's
// views-on-views, materialized end to end.
TEST(IntegrationTest, StackedViewsMaintainLive) {
  ObjectStore store;  // centralized: base, inner and outer share the store
  ASSERT_TRUE(BuildPersonDb(&store).ok());

  auto inner_def = ViewDefinition::Parse(
      "define mview INNER as: SELECT ROOT.professor X");
  MaterializedView::Options inner_options;
  inner_options.emit_basic_updates = true;
  MaterializedView inner(&store, *inner_def, inner_options);
  ASSERT_TRUE(inner.Initialize(store).ok());
  LocalAccessor accessor(&store);
  Algorithm1Maintainer inner_maintainer(&inner, &accessor, *inner_def,
                                        Root());
  store.AddListener(&inner_maintainer);

  auto outer_def = ViewDefinition::Parse(
      "define mview OUTER as: SELECT INNER.professor X WHERE X.age <= 45");
  MaterializedView outer(&store, *outer_def);
  ASSERT_TRUE(outer.Initialize(store).ok());
  Algorithm1Maintainer outer_maintainer(&outer, &accessor, *outer_def,
                                        Oid("INNER"));
  store.AddListener(&outer_maintainer);

  EXPECT_EQ(outer.BaseMembers(), OidSet({Oid("INNER.P1")}));

  // A new young professor flows through both levels on one base insert.
  ASSERT_TRUE(store.PutAtomic(Oid("A9"), "age", Value::Int(30)).ok());
  ASSERT_TRUE(store.PutSet(Oid("P9"), "professor", {Oid("A9")}).ok());
  ASSERT_TRUE(store.Insert(Root(), Oid("P9")).ok());
  EXPECT_TRUE(inner.ContainsBase(Oid("P9")));
  EXPECT_TRUE(outer.ContainsBase(Oid("INNER.P9")));
  EXPECT_TRUE(store.Contains(Oid("OUTER.INNER.P9")));

  // Aging out: P9 leaves the outer view but stays in the inner one.
  ASSERT_TRUE(store.Modify(Oid("A9"), Value::Int(70)).ok());
  EXPECT_TRUE(inner.ContainsBase(Oid("P9")));
  EXPECT_FALSE(outer.ContainsBase(Oid("INNER.P9")));

  // Unlinking from ROOT empties both levels for P9.
  ASSERT_TRUE(store.Delete(Root(), Oid("P9")).ok());
  EXPECT_FALSE(inner.ContainsBase(Oid("P9")));
  EXPECT_FALSE(store.Contains(Oid("INNER.P9")));

  ASSERT_TRUE(inner_maintainer.last_status().ok())
      << inner_maintainer.last_status().ToString();
  ASSERT_TRUE(outer_maintainer.last_status().ok())
      << outer_maintainer.last_status().ToString();

  // Oracle: both levels equal their recomputed truth.
  auto inner_truth = EvaluateView(store, *inner_def);
  auto outer_truth = EvaluateView(store, *outer_def);
  ASSERT_TRUE(inner_truth.ok());
  ASSERT_TRUE(outer_truth.ok());
  EXPECT_EQ(inner.BaseMembers(), *inner_truth);
  EXPECT_EQ(outer.BaseMembers(), *outer_truth);
}

// Stacked views under a random update stream stay equal to recomputation
// at both levels.
TEST(IntegrationTest, StackedViewsSurviveRandomStreams) {
  ObjectStore store;
  TreeGenOptions options;
  options.levels = 3;
  options.fanout = 4;
  options.seed = 19;
  auto tree = GenerateTree(&store, options);
  ASSERT_TRUE(tree.ok());

  // Inner: all depth-1 nodes; outer: those whose depth-2 child has a
  // qualifying age leaf.
  auto inner_def = ViewDefinition::Parse(
      "define mview L1V as: SELECT " + tree->root.str() + ".n1_0 X");
  MaterializedView::Options inner_options;
  inner_options.emit_basic_updates = true;
  MaterializedView inner(&store, *inner_def, inner_options);
  ASSERT_TRUE(inner.Initialize(store).ok());
  LocalAccessor accessor(&store);
  Algorithm1Maintainer inner_maintainer(&inner, &accessor, *inner_def,
                                        tree->root);
  store.AddListener(&inner_maintainer);

  auto outer_def = ViewDefinition::Parse(
      "define mview L2V as: SELECT L1V.n1_0 X WHERE X.n2_0.age <= 50");
  MaterializedView outer(&store, *outer_def);
  ASSERT_TRUE(outer.Initialize(store).ok());
  Algorithm1Maintainer outer_maintainer(&outer, &accessor, *outer_def,
                                        Oid("L1V"));
  store.AddListener(&outer_maintainer);

  UpdateGenOptions gen_options;
  gen_options.seed = 23;
  UpdateGenerator generator(&store, tree->root, gen_options);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(generator.Step().ok());
    ASSERT_TRUE(inner_maintainer.last_status().ok());
    ASSERT_TRUE(outer_maintainer.last_status().ok());
    if (i % 25 != 0) continue;
    auto inner_truth = EvaluateView(store, *inner_def);
    auto outer_truth = EvaluateView(store, *outer_def);
    ASSERT_TRUE(inner_truth.ok());
    ASSERT_TRUE(outer_truth.ok());
    ASSERT_EQ(inner.BaseMembers(), *inner_truth) << "after update " << i;
    ASSERT_EQ(outer.BaseMembers(), *outer_truth) << "after update " << i;
  }
}

// A cluster whose member views are driven by live Algorithm 1 maintainers.
TEST(IntegrationTest, ClusterUnderLiveMaintenance) {
  ObjectStore base;
  ASSERT_TRUE(BuildPersonDb(&base).ok());
  ObjectStore warehouse;
  ViewCluster cluster(&warehouse, "CL");
  ASSERT_TRUE(cluster.Bootstrap().ok());

  auto young_def = ViewDefinition::Parse(
      "define mview YOUNG as: SELECT ROOT.professor X WHERE X.age <= 45");
  auto rich_def = ViewDefinition::Parse(
      "define mview RICH as: SELECT ROOT.professor X WHERE "
      "X.salary >= 100000");
  auto young_storage = cluster.AddView(*young_def);
  auto rich_storage = cluster.AddView(*rich_def);
  ASSERT_TRUE(young_storage.ok());
  ASSERT_TRUE(rich_storage.ok());
  ASSERT_TRUE(cluster.InitializeAll(base).ok());
  EXPECT_EQ(cluster.RefCount(P1()), 2) << "P1 is young and rich";

  LocalAccessor accessor(&base);
  Algorithm1Maintainer young_maintainer(*young_storage, &accessor,
                                        *young_def, Root());
  Algorithm1Maintainer rich_maintainer(*rich_storage, &accessor, *rich_def,
                                       Root());
  base.AddListener(&young_maintainer);
  base.AddListener(&rich_maintainer);

  // P1 ages out of YOUNG: the shared delegate must survive via RICH.
  ASSERT_TRUE(base.Modify(A1(), Value::Int(70)).ok());
  EXPECT_FALSE((*young_storage)->ContainsBase(P1()));
  EXPECT_TRUE((*rich_storage)->ContainsBase(P1()));
  EXPECT_EQ(cluster.RefCount(P1()), 1);
  EXPECT_TRUE(warehouse.Contains(Oid("CL.P1")));

  // And out of RICH too: now the delegate goes away.
  ASSERT_TRUE(base.Modify(S1(), Value::Int(10)).ok());
  EXPECT_EQ(cluster.RefCount(P1()), 0);
  EXPECT_FALSE(warehouse.Contains(Oid("CL.P1")));
  EXPECT_TRUE(young_maintainer.last_status().ok());
  EXPECT_TRUE(rich_maintainer.last_status().ok());
}

// Garbage collection after view-driven deletes: delegates dropped by
// V_delete leave no garbage behind, and GC never touches live delegates.
TEST(IntegrationTest, GarbageCollectionRespectsViews) {
  ObjectStore store;  // centralized: base and view share the store
  ASSERT_TRUE(BuildPersonDb(&store).ok());
  auto def = ViewDefinition::Parse(
      "define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  MaterializedView view(&store, *def);
  ASSERT_TRUE(view.Initialize(store).ok());
  LocalAccessor accessor(&store);
  Algorithm1Maintainer maintainer(&view, &accessor, *def, Root());
  store.AddListener(&maintainer);

  // The view object is a registered database, so GC keeps the delegates.
  size_t collected = store.CollectGarbage();
  EXPECT_EQ(collected, 0u);
  EXPECT_TRUE(store.Contains(Oid("YP.P1")));

  // P1 leaves the view; its delegate is removed by V_delete, and a GC
  // sweep finds nothing extra.
  ASSERT_TRUE(store.Modify(A1(), Value::Int(99)).ok());
  EXPECT_FALSE(store.Contains(Oid("YP.P1")));
  EXPECT_EQ(store.CollectGarbage(), 0u);
}

// Query equivalence: virtual view, unswizzled materialized view, and
// swizzled materialized view answer follow-on queries identically (modulo
// the delegate OID mapping), per §3.2/§3.3.
TEST(IntegrationTest, QueryEquivalenceAcrossRepresentations) {
  ObjectStore store;
  ASSERT_TRUE(BuildPersonDb(&store).ok());

  auto vdef = ViewDefinition::Parse(
      "define view V as: SELECT ROOT.* X WHERE X.name = 'John' "
      "WITHIN PERSON");
  ASSERT_TRUE(RegisterVirtualView(store, *vdef).ok());

  auto mdef = ViewDefinition::Parse(
      "define mview MV as: SELECT ROOT.* X WHERE X.name = 'John' "
      "WITHIN PERSON");
  MaterializedView plain(&store, *mdef);
  ASSERT_TRUE(plain.Initialize(store).ok());

  auto sdef = ViewDefinition::Parse(
      "define mview SW as: SELECT ROOT.* X WHERE X.name = 'John' "
      "WITHIN PERSON");
  MaterializedView::Options options;
  options.swizzle = true;
  MaterializedView swizzled(&store, *sdef, options);
  ASSERT_TRUE(swizzled.Initialize(store).ok());

  // Follow-on: the majors of everyone in the view.
  auto via_virtual = EvaluateQueryText(store, "SELECT V.?.major");
  auto via_plain = EvaluateQueryText(store, "SELECT MV.?.major");
  auto via_swizzled = EvaluateQueryText(store, "SELECT SW.?.major");
  ASSERT_TRUE(via_virtual.ok());
  ASSERT_TRUE(via_plain.ok());
  ASSERT_TRUE(via_swizzled.ok());
  EXPECT_EQ(*via_virtual, OidSet({M3()}));
  EXPECT_EQ(*via_plain, OidSet({M3()}))
      << "unswizzled delegates point at base objects";
  // Swizzled: P3's delegate is local, so the traversal finds the base M3
  // through SW.P3's (unswizzled leaf) edge.
  EXPECT_EQ(*via_swizzled, OidSet({M3()}));
}

// Multi-source warehouse (Figure 6 has Source 1..N): independent views on
// independent sources, events routed to the right maintainer.
TEST(IntegrationTest, MultiSourceWarehouse) {
  ObjectStore people;
  ASSERT_TRUE(BuildPersonDb(&people, /*with_database=*/false).ok());

  ObjectStore inventory;
  ASSERT_TRUE(inventory.PutAtomic(Oid("PRICE1"), "price", Value::Int(5)).ok());
  ASSERT_TRUE(inventory.PutSet(Oid("ITEM1"), "item", {Oid("PRICE1")}).ok());
  ASSERT_TRUE(inventory.PutSet(Oid("SHOP"), "shop", {Oid("ITEM1")}).ok());

  ObjectStore warehouse_store;
  Warehouse warehouse(&warehouse_store);
  ASSERT_TRUE(warehouse
                  .ConnectSource(&people, Root(), ReportingLevel::kWithValues,
                                 "people")
                  .ok());
  ASSERT_TRUE(warehouse
                  .ConnectSource(&inventory, Oid("SHOP"),
                                 ReportingLevel::kWithValues, "shop")
                  .ok());
  EXPECT_EQ(warehouse.source_count(), 2u);
  EXPECT_EQ(warehouse.monitor(), nullptr) << "ambiguous with two sources";

  // DefineView must name a source when several are connected.
  EXPECT_FALSE(warehouse
                   .DefineView("define mview YP as: SELECT ROOT.professor X "
                               "WHERE X.age <= 45")
                   .ok());
  ASSERT_TRUE(warehouse
                  .DefineView(
                      "define mview YP as: SELECT ROOT.professor X "
                      "WHERE X.age <= 45",
                      Warehouse::CacheMode::kNone, "people")
                  .ok());
  ASSERT_TRUE(warehouse
                  .DefineView(
                      "define mview CHEAP as: SELECT SHOP.item X "
                      "WHERE X.price <= 10",
                      Warehouse::CacheMode::kFull, "shop")
                  .ok());
  EXPECT_FALSE(warehouse
                   .DefineView("define mview BAD as: SELECT SHOP.item X",
                               Warehouse::CacheMode::kNone, "people")
                   .ok())
      << "entry must match the named source's root";

  // Updates on each source maintain only that source's views.
  ASSERT_TRUE(people.Modify(A1(), Value::Int(99)).ok());
  ASSERT_TRUE(inventory.Modify(Oid("PRICE1"), Value::Int(50)).ok());
  ASSERT_TRUE(warehouse.last_status().ok())
      << warehouse.last_status().ToString();
  EXPECT_EQ(warehouse.view("YP")->BaseMembers(), OidSet());
  EXPECT_EQ(warehouse.view("CHEAP")->BaseMembers(), OidSet());

  ASSERT_TRUE(inventory.Modify(Oid("PRICE1"), Value::Int(3)).ok());
  EXPECT_EQ(warehouse.view("CHEAP")->BaseMembers(), OidSet({Oid("ITEM1")}));
  EXPECT_TRUE(
      CheckViewConsistency(*warehouse.view("YP"), people).consistent);
  EXPECT_TRUE(
      CheckViewConsistency(*warehouse.view("CHEAP"), inventory).consistent);

  // Duplicate names / roots rejected.
  EXPECT_EQ(warehouse
                .ConnectSource(&people, Root(), ReportingLevel::kOidsOnly,
                               "people2")
                .code(),
            StatusCode::kAlreadyExists)
      << "same root";
}

// DataGuide-derived knowledge plugs straight into the warehouse screen.
TEST(IntegrationTest, BuiltPathKnowledgeScreens) {
  ObjectStore source;
  ASSERT_TRUE(BuildPersonDb(&source, /*with_database=*/false).ok());
  PathKnowledge knowledge = BuildPathKnowledge(source, Root());

  // Derived facts from Example 2's data.
  EXPECT_TRUE(knowledge.HasKnowledgeFor("person"));
  EXPECT_TRUE(knowledge.MayHaveChild("professor", "age"));
  EXPECT_FALSE(knowledge.MayHaveChild("student", "salary"));
  EXPECT_EQ(knowledge.FeasiblePrefix("person", *Path::Parse("student.salary")),
            1u);

  ObjectStore warehouse_store;
  Warehouse warehouse(&warehouse_store);
  ASSERT_TRUE(warehouse
                  .ConnectSource(&source, Root(), ReportingLevel::kWithValues)
                  .ok());
  ASSERT_TRUE(warehouse
                  .DefineView(
                      "define mview SS as: SELECT ROOT.student X "
                      "WHERE X.salary > 0")
                  .ok());
  warehouse.SetPathKnowledge(knowledge);
  warehouse.costs().Reset();

  // Salary churn under a professor: impossible below students, screened.
  ASSERT_TRUE(source.Modify(S1(), Value::Int(1)).ok());
  EXPECT_EQ(warehouse.costs().source_queries, 0);
  EXPECT_EQ(warehouse.costs().events_screened_out, 1);
  EXPECT_TRUE(warehouse.last_status().ok());
}

// Kitchen-sink soak: a warehouse over two sources — a native OEM tree fed
// by transactions, and a legacy relational source behind the GSDB adapter —
// with deferred, compacted drains. Everything must converge.
TEST(IntegrationTest, FullStackSoak) {
  // Source 1: a native OEM tree.
  ObjectStore tree_source;
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 4;
  tree_options.seed = 47;
  auto tree = GenerateTree(&tree_source, tree_options);
  ASSERT_TRUE(tree.ok());

  // Source 2: a relational database translated to OEM (Figure 6 wrapper).
  RelationalSource relational;
  ASSERT_TRUE(relational.CreateTable("emp", {"name", "salary"}).ok());
  ObjectStore rel_source;
  GsdbSourceAdapter adapter(&rel_source, &relational, "REL");
  ASSERT_TRUE(adapter.Initialize().ok());

  ObjectStore warehouse_store;
  Warehouse warehouse(&warehouse_store);
  ASSERT_TRUE(warehouse
                  .ConnectSource(&tree_source, tree->root,
                                 ReportingLevel::kWithValues, "tree")
                  .ok());
  ASSERT_TRUE(warehouse
                  .ConnectSource(&rel_source, Oid("REL"),
                                 ReportingLevel::kWithValues, "erp")
                  .ok());
  std::string tree_view_def = TreeViewDefinition("TV", tree->root, 2, 3, 50);
  ASSERT_TRUE(warehouse
                  .DefineView(tree_view_def, Warehouse::CacheMode::kFull,
                              "tree")
                  .ok());
  ASSERT_TRUE(warehouse
                  .DefineView(
                      "define mview RICH as: SELECT REL.emp.tuple X "
                      "WHERE X.salary >= 5000",
                      Warehouse::CacheMode::kNone, "erp")
                  .ok());
  warehouse.set_deferred(true);

  UpdateGenOptions gen_options;
  gen_options.seed = 83;
  UpdateGenerator generator(&tree_source, tree->root, gen_options);
  Random rng(7);
  std::vector<int64_t> rows;
  for (int round = 0; round < 8; ++round) {
    // Tree churn, partly through transactions.
    ASSERT_TRUE(generator.Run(20).ok());
    {
      Transaction txn(&tree_source);
      const Oid leaf = tree->leaves[rng.Uniform(tree->leaves.size())];
      if (tree_source.Contains(leaf) && tree_source.Get(leaf)->IsAtomic()) {
        txn.Modify(leaf, Value::Int(rng.UniformInt(0, 99)));
        txn.Modify(leaf, Value::Int(rng.UniformInt(0, 99)));
        ASSERT_TRUE(txn.Commit().ok());
      }
    }
    // Relational churn.
    auto row = relational.InsertRow(
        "emp", {Value::Str("e" + std::to_string(round)),
                Value::Int(rng.UniformInt(1000, 9000))});
    ASSERT_TRUE(row.ok());
    rows.push_back(*row);
    if (rows.size() > 2 && rng.Bernoulli(0.5)) {
      int64_t victim = rows[rng.Uniform(rows.size())];
      (void)relational.DeleteRow("emp", victim);  // may already be gone
    }
    if (!rows.empty()) {
      (void)relational.UpdateRow("emp", rows[rng.Uniform(rows.size())],
                                 "salary",
                                 Value::Int(rng.UniformInt(1000, 9000)));
    }
    ASSERT_TRUE(relational.last_translation_status().ok());

    // Compacted deferred drain, then both views must equal truth.
    warehouse.CompactPending();
    ASSERT_TRUE(warehouse.ProcessPending().ok())
        << warehouse.last_status().ToString();
    auto tree_truth =
        EvaluateView(tree_source, *ViewDefinition::Parse(tree_view_def));
    ASSERT_TRUE(tree_truth.ok());
    ASSERT_EQ(warehouse.view("TV")->BaseMembers(), *tree_truth)
        << "round " << round;
    auto rich_truth = EvaluateView(
        rel_source, *ViewDefinition::Parse(
                        "define mview RICH as: SELECT REL.emp.tuple X "
                        "WHERE X.salary >= 5000"));
    ASSERT_TRUE(rich_truth.ok());
    ASSERT_EQ(warehouse.view("RICH")->BaseMembers(), *rich_truth)
        << "round " << round;
  }
  EXPECT_TRUE(
      CheckViewConsistency(*warehouse.view("TV"), tree_source).consistent);
  EXPECT_TRUE(
      CheckViewConsistency(*warehouse.view("RICH"), rel_source).consistent);
}

// End-to-end: generated tree serialized, reloaded, re-materialized — views
// over the reloaded store equal views over the original.
TEST(IntegrationTest, ViewsSurviveSerializationRoundTrip) {
  ObjectStore original;
  TreeGenOptions options;
  options.levels = 3;
  options.fanout = 3;
  options.seed = 77;
  auto tree = GenerateTree(&original, options);
  ASSERT_TRUE(tree.ok());
  auto def = ViewDefinition::Parse(
      TreeViewDefinition("TV", tree->root, 2, 3, 50));
  auto original_members = EvaluateView(original, *def);
  ASSERT_TRUE(original_members.ok());

  // Round trip through the text format (see serialize_test for details).
  ObjectStore reloaded;
  ASSERT_TRUE(StoreFromString(StoreToString(original), &reloaded).ok());
  auto reloaded_members = EvaluateView(reloaded, *def);
  ASSERT_TRUE(reloaded_members.ok());
  EXPECT_EQ(*reloaded_members, *original_members);
}

}  // namespace
}  // namespace gsv
