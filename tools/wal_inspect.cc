// Inspects a warehouse durability directory (WAL segments + checkpoints).
//
// Usage:
//   wal_inspect dump <dir>          print every valid log record, one per line
//   wal_inspect verify <dir>        validate frames/CRCs/LSNs; report tears
//   wal_inspect checkpoints <dir>   list checkpoints and the newest manifest
//   wal_inspect apply <dir> <out>   replay the logged base updates into an
//                                   empty store and save it as <out> (text)
//
// A ShardedWarehouse durability directory holds one sub-directory per shard
// (shard-0, shard-1, ...), each a complete WAL+checkpoint home of its own.
// When <dir> looks like one, every command enumerates the shard
// sub-directories, runs against each under a "=== shard-<i> ===" banner
// (apply writes <out>.shard-<i> per shard — the routed slices are not
// totally ordered against each other, so they are not merged), and exits
// with the worst per-shard status.
//
// Exit status: 0 clean, 1 when verify finds a torn/corrupt tail, 2 on error.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "oem/serialize.h"
#include "oem/store.h"
#include "storage/checkpoint.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s dump|verify|checkpoints <dir>\n"
               "       %s apply <dir> <out.gsv>\n",
               argv0, argv0);
  return 2;
}

int Dump(const std::string& dir) {
  auto scan = gsv::ScanWal(dir);
  if (!scan.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", scan.status().ToString().c_str());
    return 2;
  }
  for (const gsv::WalRecord& record : scan.value().records) {
    std::printf("%s\n", gsv::WalRecordToString(record).c_str());
  }
  return 0;
}

int Verify(const std::string& dir) {
  auto segments = gsv::ListWalSegments(dir);
  if (!segments.ok()) {
    std::fprintf(stderr, "%s\n", segments.status().ToString().c_str());
    return 2;
  }
  auto scan = gsv::ScanWal(dir);
  if (!scan.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", scan.status().ToString().c_str());
    return 2;
  }
  const gsv::WalScan& result = scan.value();
  std::printf("%zu segment(s), %zu valid record(s), next lsn %llu\n",
              segments.value().size(), result.records.size(),
              static_cast<unsigned long long>(result.next_lsn));
  if (!result.torn) {
    std::printf("log is clean\n");
    return 0;
  }
  std::printf("TORN at %s offset %llu (%llu byte(s) past the valid prefix)\n",
              result.torn_segment.c_str(),
              static_cast<unsigned long long>(result.torn_offset),
              static_cast<unsigned long long>(result.torn_bytes));
  return 1;
}

int Checkpoints(const std::string& dir) {
  auto list = gsv::ListCheckpoints(dir);
  if (!list.ok()) {
    std::fprintf(stderr, "%s\n", list.status().ToString().c_str());
    return 2;
  }
  for (const gsv::CheckpointInfo& info : list.value()) {
    std::printf("%s\n", info.name.c_str());
  }
  auto latest = gsv::LoadLatestCheckpoint(dir);
  if (!latest.ok()) {
    std::printf("no usable checkpoint: %s\n",
                latest.status().ToString().c_str());
    return 0;
  }
  const gsv::CheckpointManifest& manifest = latest.value().manifest;
  std::printf("latest: %s (id %llu, wal_lsn %llu)\n",
              latest.value().dir_name.c_str(),
              static_cast<unsigned long long>(manifest.id),
              static_cast<unsigned long long>(manifest.wal_lsn));
  for (const gsv::WalWatermark& mark : manifest.watermarks) {
    std::printf("  source %s last_sequence %llu\n", mark.source.c_str(),
                static_cast<unsigned long long>(mark.last_sequence));
  }
  for (const gsv::CheckpointViewState& view : manifest.views) {
    std::printf("  view %s (source %s, cache_mode %d%s): %s\n",
                view.name.c_str(), view.source.c_str(), view.cache_mode,
                view.stale ? ", STALE" : "", view.definition.c_str());
  }
  return 0;
}

int Apply(const std::string& dir, const std::string& out_path) {
  auto scan = gsv::ScanWal(dir);
  if (!scan.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", scan.status().ToString().c_str());
    return 2;
  }
  gsv::ObjectStore store;
  auto applied = gsv::ReplayEventsInto(scan.value().records, &store);
  if (!applied.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 applied.status().ToString().c_str());
    return 2;
  }
  gsv::Status saved = gsv::SaveStoreToFile(store, out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 2;
  }
  std::printf("applied %zu update(s), %zu object(s) -> %s\n", applied.value(),
              store.size(), out_path.c_str());
  return 0;
}

// Shard homes of a ShardedWarehouse durability directory: shard-0..shard-K
// in index order. Empty when `dir` is a plain single-warehouse home.
std::vector<std::string> ShardDirs(const std::string& dir) {
  std::vector<std::string> dirs;
  for (uint32_t i = 0;; ++i) {
    std::string sub = dir + "/shard-" + std::to_string(i);
    std::error_code ec;
    if (!std::filesystem::is_directory(sub, ec)) break;
    dirs.push_back(std::move(sub));
  }
  return dirs;
}

int RunCommand(const std::string& command, const std::string& dir,
               const char* out) {
  if (command == "dump") return Dump(dir);
  if (command == "verify") return Verify(dir);
  if (command == "checkpoints") return Checkpoints(dir);
  if (command == "apply") return Apply(dir, out);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  std::string command = argv[1];
  std::string dir = argv[2];
  bool takes_out = command == "apply";
  if (command != "dump" && command != "verify" && command != "checkpoints" &&
      !takes_out) {
    return Usage(argv[0]);
  }
  if (argc != (takes_out ? 4 : 3)) return Usage(argv[0]);

  std::vector<std::string> shard_dirs = ShardDirs(dir);
  if (shard_dirs.empty()) {
    return RunCommand(command, dir, takes_out ? argv[3] : nullptr);
  }
  int worst = 0;
  for (size_t i = 0; i < shard_dirs.size(); ++i) {
    std::printf("=== shard-%zu ===\n", i);
    std::string out;
    if (takes_out) out = std::string(argv[3]) + ".shard-" + std::to_string(i);
    int status =
        RunCommand(command, shard_dirs[i], takes_out ? out.c_str() : nullptr);
    if (status > worst) worst = status;
  }
  return worst;
}
