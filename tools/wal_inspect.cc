// Inspects a warehouse durability directory (WAL segments + checkpoints).
//
// Usage:
//   wal_inspect dump <dir>          print every valid log record, one per line
//   wal_inspect verify <dir>        validate frames/CRCs/LSNs; report tears
//   wal_inspect checkpoints <dir>   list checkpoints and the newest manifest
//   wal_inspect apply <dir> <out>   replay the logged base updates into an
//                                   empty store and save it as <out> (text)
//   wal_inspect diff <dirA> <dirB>  compare two durability homes: segment
//                                   LSN ranges/bytes and the view-content
//                                   checksums of their committed states
//                                   (primary vs replica divergence check)
//   wal_inspect pages <dir>         dump a paged storage engine's page
//                                   directory — per-page codec id and
//                                   stored/raw compression ratio included —
//                                   and audit every on-disk page: CRC over
//                                   the stored bytes, then a decode check
//                                   for known codecs; <dir> is an engine
//                                   home (holds PAGEDIR) or a parent whose
//                                   subdirectories are engine homes
//
// A ShardedWarehouse durability directory holds one sub-directory per shard
// (shard-0, shard-1, ...), each a complete WAL+checkpoint home of its own.
// When <dir> looks like one, every command enumerates the shard
// sub-directories, runs against each under a "=== shard-<i> ===" banner
// (apply writes <out>.shard-<i> per shard — the routed slices are not
// totally ordered against each other, so they are not merged), and exits
// with the worst per-shard status.
//
// Exit status: 0 clean, 1 when verify finds a torn/corrupt tail or diff
// finds divergence, 2 on error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "oem/paged_engine.h"
#include "oem/serialize.h"
#include "oem/store.h"
#include "replication/checksums.h"
#include "storage/checkpoint.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s dump|verify|checkpoints|pages <dir>\n"
               "       %s apply <dir> <out.gsv>\n"
               "       %s diff <dirA> <dirB>\n",
               argv0, argv0, argv0);
  return 2;
}

void PrintWarnings(const std::vector<std::string>& warnings) {
  for (const std::string& warning : warnings) {
    std::fprintf(stderr, "warning: %s\n", warning.c_str());
  }
}

int Dump(const std::string& dir) {
  auto scan = gsv::ScanWal(dir);
  if (!scan.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", scan.status().ToString().c_str());
    return 2;
  }
  for (const gsv::WalRecord& record : scan.value().records) {
    std::printf("%s\n", gsv::WalRecordToString(record).c_str());
  }
  return 0;
}

int Verify(const std::string& dir) {
  std::vector<std::string> warnings;
  auto segments = gsv::ListWalSegments(dir, &warnings);
  PrintWarnings(warnings);
  if (!segments.ok()) {
    std::fprintf(stderr, "%s\n", segments.status().ToString().c_str());
    return 2;
  }
  auto scan = gsv::ScanWal(dir);
  if (!scan.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", scan.status().ToString().c_str());
    return 2;
  }
  const gsv::WalScan& result = scan.value();
  std::printf("%zu segment(s), %zu valid record(s), next lsn %llu\n",
              segments.value().size(), result.records.size(),
              static_cast<unsigned long long>(result.next_lsn));
  if (!result.torn) {
    std::printf("log is clean\n");
    return 0;
  }
  std::printf("TORN at %s offset %llu (%llu byte(s) past the valid prefix)\n",
              result.torn_segment.c_str(),
              static_cast<unsigned long long>(result.torn_offset),
              static_cast<unsigned long long>(result.torn_bytes));
  return 1;
}

// Prints the per-view data images a checkpoint carries (§5.2 auxiliary
// caches, discrimination-network memos): header line, size, line count —
// enough to see what recovery will adopt without flooding the terminal.
void DumpImages(const char* kind,
                const std::unordered_map<std::string, std::string>& images) {
  std::vector<std::string> names;
  names.reserve(images.size());
  for (const auto& [name, text] : images) names.push_back(name);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const std::string& text = images.at(name);
    const size_t newline = text.find('\n');
    const std::string header =
        newline == std::string::npos ? text : text.substr(0, newline);
    const size_t lines =
        static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
    std::printf("  %s %s: \"%s\", %zu byte(s), %zu line(s)\n", kind,
                name.c_str(), header.c_str(), text.size(), lines);
  }
}

int Checkpoints(const std::string& dir) {
  auto list = gsv::ListCheckpoints(dir);
  if (!list.ok()) {
    std::fprintf(stderr, "%s\n", list.status().ToString().c_str());
    return 2;
  }
  for (const gsv::CheckpointInfo& info : list.value()) {
    std::printf("%s\n", info.name.c_str());
  }
  auto latest = gsv::LoadLatestCheckpoint(dir);
  if (!latest.ok()) {
    std::printf("no usable checkpoint: %s\n",
                latest.status().ToString().c_str());
    return 0;
  }
  const gsv::CheckpointManifest& manifest = latest.value().manifest;
  std::printf("latest: %s (id %llu, wal_lsn %llu)\n",
              latest.value().dir_name.c_str(),
              static_cast<unsigned long long>(manifest.id),
              static_cast<unsigned long long>(manifest.wal_lsn));
  for (const gsv::WalWatermark& mark : manifest.watermarks) {
    std::printf("  source %s last_sequence %llu\n", mark.source.c_str(),
                static_cast<unsigned long long>(mark.last_sequence));
  }
  for (const gsv::CheckpointViewState& view : manifest.views) {
    std::printf("  view %s (source %s, cache_mode %d%s): %s\n",
                view.name.c_str(), view.source.c_str(), view.cache_mode,
                view.stale ? ", STALE" : "", view.definition.c_str());
  }
  DumpImages("cache image", latest.value().cache_texts);
  DumpImages("gdn memo", latest.value().gdn_texts);
  return 0;
}

int Apply(const std::string& dir, const std::string& out_path) {
  auto scan = gsv::ScanWal(dir);
  if (!scan.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", scan.status().ToString().c_str());
    return 2;
  }
  gsv::ObjectStore store;
  auto applied = gsv::ReplayEventsInto(scan.value().records, &store);
  if (!applied.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 applied.status().ToString().c_str());
    return 2;
  }
  gsv::Status saved = gsv::SaveStoreToFile(store, out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 2;
  }
  std::printf("applied %zu update(s), %zu object(s) -> %s\n", applied.value(),
              store.size(), out_path.c_str());
  return 0;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Compares two durability homes. Divergence — shared segment bytes that
// disagree, or view content that differs — exits 1. One home simply being
// *behind* the other (shorter segment files, older watermark: the normal
// state of a lagging replica) is reported but is still divergence for the
// purposes of the exit status: the caller asked whether the homes match.
int Diff(const std::string& dir_a, const std::string& dir_b) {
  std::vector<std::string> warnings;
  auto segments_a = gsv::ListWalSegments(dir_a, &warnings);
  auto segments_b = gsv::ListWalSegments(dir_b, &warnings);
  PrintWarnings(warnings);
  if (!segments_a.ok() || !segments_b.ok()) {
    std::fprintf(stderr, "%s\n",
                 (segments_a.ok() ? segments_b.status() : segments_a.status())
                     .ToString()
                     .c_str());
    return 2;
  }

  int divergences = 0;
  std::map<std::string, int> sides;  // 1 = A, 2 = B, 3 = both
  for (const auto& info : segments_a.value()) sides[info.name] |= 1;
  for (const auto& info : segments_b.value()) sides[info.name] |= 2;
  for (const auto& [name, side] : sides) {
    if (side != 3) {
      // Segment sets may legitimately differ: checkpoints retire covered
      // segments independently on each side. Report, don't flag.
      std::printf("segment %s: only in %s\n", name.c_str(),
                  side == 1 ? dir_a.c_str() : dir_b.c_str());
      continue;
    }
    const std::string bytes_a = ReadFileBytes(dir_a + "/" + name);
    const std::string bytes_b = ReadFileBytes(dir_b + "/" + name);
    const size_t shared = std::min(bytes_a.size(), bytes_b.size());
    if (bytes_a.compare(0, shared, bytes_b, 0, shared) != 0) {
      std::printf("segment %s: DIVERGED (shared %zu-byte prefix differs)\n",
                  name.c_str(), shared);
      ++divergences;
    } else if (bytes_a.size() != bytes_b.size()) {
      std::printf("segment %s: %s is behind by %zu byte(s)\n", name.c_str(),
                  bytes_a.size() < bytes_b.size() ? dir_a.c_str()
                                                  : dir_b.c_str(),
                  bytes_a.size() > bytes_b.size()
                      ? bytes_a.size() - bytes_b.size()
                      : bytes_b.size() - bytes_a.size());
      ++divergences;
    } else {
      std::printf("segment %s: identical (%zu byte(s))\n", name.c_str(),
                  bytes_a.size());
    }
  }

  auto stamp_a = gsv::ChecksumDurabilityHome(dir_a);
  auto stamp_b = gsv::ChecksumDurabilityHome(dir_b);
  if (!stamp_a.ok() || !stamp_b.ok()) {
    std::fprintf(stderr, "%s\n",
                 (stamp_a.ok() ? stamp_b.status() : stamp_a.status())
                     .ToString()
                     .c_str());
    return 2;
  }
  std::printf("committed lsn: %llu vs %llu\n",
              static_cast<unsigned long long>(stamp_a.value().lsn),
              static_cast<unsigned long long>(stamp_b.value().lsn));
  if (stamp_a.value().lsn != stamp_b.value().lsn) ++divergences;

  std::map<std::string, std::pair<const gsv::ViewChecksum*,
                                  const gsv::ViewChecksum*>>
      by_view;
  for (const auto& view : stamp_a.value().views) {
    by_view[view.view].first = &view;
  }
  for (const auto& view : stamp_b.value().views) {
    by_view[view.view].second = &view;
  }
  for (const auto& [name, pair] : by_view) {
    if (pair.first == nullptr || pair.second == nullptr) {
      std::printf("view %s: only in %s\n", name.c_str(),
                  pair.first != nullptr ? dir_a.c_str() : dir_b.c_str());
      ++divergences;
    } else if (pair.first->crc != pair.second->crc ||
               pair.first->members != pair.second->members) {
      std::printf("view %s: DIVERGED (crc %u/%llu vs %u/%llu)\n",
                  name.c_str(), pair.first->crc,
                  static_cast<unsigned long long>(pair.first->members),
                  pair.second->crc,
                  static_cast<unsigned long long>(pair.second->members));
      ++divergences;
    } else {
      std::printf("view %s: identical (crc %u, %llu member(s))\n",
                  name.c_str(), pair.first->crc,
                  static_cast<unsigned long long>(pair.first->members));
    }
  }

  if (divergences == 0) {
    std::printf("homes match\n");
    return 0;
  }
  std::printf("%d divergence(s)\n", divergences);
  return 1;
}

// Dumps and audits a paged storage engine image (oem/paged_engine.h):
// every PAGEDIR entry is printed (with its codec and stored/raw ratio),
// each page's extent is read back from pages.gsp, CRC-checked against the
// directory, and decode-checked when the codec is known. Exit 1 on
// corruption (trailer/page CRC mismatch, failed decode) or a codec id this
// build does not recognize; 2 when no image exists at all.
int PagesOne(const std::string& home) {
  std::ostringstream out;
  gsv::Status status = gsv::VerifyPagedImage(home, &out);
  std::fputs(out.str().c_str(), stdout);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.message().c_str());
    return status.code() == gsv::StatusCode::kDataLoss ? 1 : 2;
  }
  return 0;
}

int Pages(const std::string& dir) {
  std::error_code ec;
  if (std::filesystem::exists(dir + "/PAGEDIR", ec)) return PagesOne(dir);
  // A parent of engine homes (eng-<n> scratch dirs, one per store): verify
  // each child that holds a directory file, in sorted order.
  std::vector<std::string> homes;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::error_code child_ec;
    if (entry.is_directory(child_ec) &&
        std::filesystem::exists(entry.path() / "PAGEDIR", child_ec)) {
      homes.push_back(entry.path().string());
    }
  }
  if (homes.empty()) {
    std::fprintf(stderr, "no paged-engine image (PAGEDIR) under %s\n",
                 dir.c_str());
    return 2;
  }
  std::sort(homes.begin(), homes.end());
  int worst = 0;
  for (const std::string& home : homes) {
    std::printf("=== %s ===\n", home.c_str());
    int status = PagesOne(home);
    if (status > worst) worst = status;
  }
  return worst;
}

// Shard homes of a ShardedWarehouse durability directory: shard-0..shard-K
// in index order. Empty when `dir` is a plain single-warehouse home.
std::vector<std::string> ShardDirs(const std::string& dir) {
  std::vector<std::string> dirs;
  for (uint32_t i = 0;; ++i) {
    std::string sub = dir + "/shard-" + std::to_string(i);
    std::error_code ec;
    if (!std::filesystem::is_directory(sub, ec)) break;
    dirs.push_back(std::move(sub));
  }
  return dirs;
}

int RunCommand(const std::string& command, const std::string& dir,
               const char* out) {
  if (command == "dump") return Dump(dir);
  if (command == "verify") return Verify(dir);
  if (command == "checkpoints") return Checkpoints(dir);
  if (command == "apply") return Apply(dir, out);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  std::string command = argv[1];
  std::string dir = argv[2];
  if (command == "diff") {
    if (argc != 4) return Usage(argv[0]);
    std::string dir_b = argv[3];
    std::vector<std::string> shards_a = ShardDirs(dir);
    std::vector<std::string> shards_b = ShardDirs(dir_b);
    if (shards_a.size() != shards_b.size()) {
      std::fprintf(stderr,
                   "shard layout mismatch: %zu shard home(s) vs %zu\n",
                   shards_a.size(), shards_b.size());
      return 1;
    }
    if (shards_a.empty()) return Diff(dir, dir_b);
    int worst = 0;
    for (size_t i = 0; i < shards_a.size(); ++i) {
      std::printf("=== shard-%zu ===\n", i);
      int status = Diff(shards_a[i], shards_b[i]);
      if (status > worst) worst = status;
    }
    return worst;
  }
  if (command == "pages") {
    // Paged-engine homes are not durability homes; Pages does its own
    // child-directory enumeration instead of the shard-<i> convention.
    if (argc != 3) return Usage(argv[0]);
    return Pages(dir);
  }
  bool takes_out = command == "apply";
  if (command != "dump" && command != "verify" && command != "checkpoints" &&
      !takes_out) {
    return Usage(argv[0]);
  }
  if (argc != (takes_out ? 4 : 3)) return Usage(argv[0]);

  std::vector<std::string> shard_dirs = ShardDirs(dir);
  if (shard_dirs.empty()) {
    return RunCommand(command, dir, takes_out ? argv[3] : nullptr);
  }
  int worst = 0;
  for (size_t i = 0; i < shard_dirs.size(); ++i) {
    std::printf("=== shard-%zu ===\n", i);
    std::string out;
    if (takes_out) out = std::string(argv[3]) + ".shard-" + std::to_string(i);
    int status =
        RunCommand(command, shard_dirs[i], takes_out ? out.c_str() : nullptr);
    if (status > worst) worst = status;
  }
  return worst;
}
