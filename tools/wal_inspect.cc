// Inspects a warehouse durability directory (WAL segments + checkpoints).
//
// Usage:
//   wal_inspect dump <dir>          print every valid log record, one per line
//   wal_inspect verify <dir>        validate frames/CRCs/LSNs; report tears
//   wal_inspect checkpoints <dir>   list checkpoints and the newest manifest
//   wal_inspect apply <dir> <out>   replay the logged base updates into an
//                                   empty store and save it as <out> (text)
//
// Exit status: 0 clean, 1 when verify finds a torn/corrupt tail, 2 on error.

#include <cstdio>
#include <cstring>
#include <string>

#include "oem/serialize.h"
#include "oem/store.h"
#include "storage/checkpoint.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s dump|verify|checkpoints <dir>\n"
               "       %s apply <dir> <out.gsv>\n",
               argv0, argv0);
  return 2;
}

int Dump(const std::string& dir) {
  auto scan = gsv::ScanWal(dir);
  if (!scan.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", scan.status().ToString().c_str());
    return 2;
  }
  for (const gsv::WalRecord& record : scan.value().records) {
    std::printf("%s\n", gsv::WalRecordToString(record).c_str());
  }
  return 0;
}

int Verify(const std::string& dir) {
  auto segments = gsv::ListWalSegments(dir);
  if (!segments.ok()) {
    std::fprintf(stderr, "%s\n", segments.status().ToString().c_str());
    return 2;
  }
  auto scan = gsv::ScanWal(dir);
  if (!scan.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", scan.status().ToString().c_str());
    return 2;
  }
  const gsv::WalScan& result = scan.value();
  std::printf("%zu segment(s), %zu valid record(s), next lsn %llu\n",
              segments.value().size(), result.records.size(),
              static_cast<unsigned long long>(result.next_lsn));
  if (!result.torn) {
    std::printf("log is clean\n");
    return 0;
  }
  std::printf("TORN at %s offset %llu (%llu byte(s) past the valid prefix)\n",
              result.torn_segment.c_str(),
              static_cast<unsigned long long>(result.torn_offset),
              static_cast<unsigned long long>(result.torn_bytes));
  return 1;
}

int Checkpoints(const std::string& dir) {
  auto list = gsv::ListCheckpoints(dir);
  if (!list.ok()) {
    std::fprintf(stderr, "%s\n", list.status().ToString().c_str());
    return 2;
  }
  for (const gsv::CheckpointInfo& info : list.value()) {
    std::printf("%s\n", info.name.c_str());
  }
  auto latest = gsv::LoadLatestCheckpoint(dir);
  if (!latest.ok()) {
    std::printf("no usable checkpoint: %s\n",
                latest.status().ToString().c_str());
    return 0;
  }
  const gsv::CheckpointManifest& manifest = latest.value().manifest;
  std::printf("latest: %s (id %llu, wal_lsn %llu)\n",
              latest.value().dir_name.c_str(),
              static_cast<unsigned long long>(manifest.id),
              static_cast<unsigned long long>(manifest.wal_lsn));
  for (const gsv::WalWatermark& mark : manifest.watermarks) {
    std::printf("  source %s last_sequence %llu\n", mark.source.c_str(),
                static_cast<unsigned long long>(mark.last_sequence));
  }
  for (const gsv::CheckpointViewState& view : manifest.views) {
    std::printf("  view %s (source %s, cache_mode %d%s): %s\n",
                view.name.c_str(), view.source.c_str(), view.cache_mode,
                view.stale ? ", STALE" : "", view.definition.c_str());
  }
  return 0;
}

int Apply(const std::string& dir, const std::string& out_path) {
  auto scan = gsv::ScanWal(dir);
  if (!scan.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", scan.status().ToString().c_str());
    return 2;
  }
  gsv::ObjectStore store;
  auto applied = gsv::ReplayEventsInto(scan.value().records, &store);
  if (!applied.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 applied.status().ToString().c_str());
    return 2;
  }
  gsv::Status saved = gsv::SaveStoreToFile(store, out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 2;
  }
  std::printf("applied %zu update(s), %zu object(s) -> %s\n", applied.value(),
              store.size(), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  std::string command = argv[1];
  std::string dir = argv[2];
  if (command == "dump" && argc == 3) return Dump(dir);
  if (command == "verify" && argc == 3) return Verify(dir);
  if (command == "checkpoints" && argc == 3) return Checkpoints(dir);
  if (command == "apply" && argc == 4) return Apply(dir, argv[3]);
  return Usage(argv[0]);
}
