// gsvsh — an interactive shell over a graph-structured database with live
// materialized views.
//
//   $ ./tools/gsvsh                # REPL on stdin
//   $ ./tools/gsvsh script.gsv     # run a script, then exit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "shell/shell.h"

int main(int argc, char** argv) {
  gsv::Shell shell;

  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    gsv::Result<std::string> result = shell.RunScript(script.str());
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::fputs(result->c_str(), stdout);
    return 0;
  }

  std::printf("gsvsh — graph-structured views shell (try: help)\n");
  std::string line;
  while (true) {
    std::printf("gsv> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    gsv::Result<std::string> result = shell.ProcessLine(line);
    if (!result.ok()) {
      if (result.status().message() == "quit") break;
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (!result->empty()) std::printf("%s\n", result->c_str());
  }
  return 0;
}
