// Audits a serialized store for dangling edges: set-object children whose
// OID no longer resolves to an object. The paper leaves such edges in place
// after a delete of the target (GC is out of scope, §4.1); the label index
// deliberately omits them, so an audit is how an operator checks a store
// whose history is unknown.
//
// Usage: dangling_audit <store.gsv>
// Exit status: 0 when clean, 1 when dangling edges were found, 2 on error.

#include <cstdio>

#include "oem/serialize.h"
#include "oem/store.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <store.gsv>\n", argv[0]);
    return 2;
  }
  gsv::ObjectStore store;
  gsv::Status loaded = gsv::LoadStoreFromFile(argv[1], &store);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                 loaded.ToString().c_str());
    return 2;
  }

  std::vector<gsv::DanglingEdge> dangling = store.AuditDanglingEdges();
  std::printf("%s: %zu objects, %zu dangling edge(s)\n", argv[1],
              store.size(), dangling.size());
  for (const gsv::DanglingEdge& edge : dangling) {
    std::printf("  %s -> %s (child missing)\n", edge.parent.str().c_str(),
                edge.child.str().c_str());
  }
  return dangling.empty() ? 0 : 1;
}
