// Audits a serialized store for dangling edges: set-object children whose
// OID no longer resolves to an object. The paper leaves such edges in place
// after a delete of the target (GC is out of scope, §4.1); the label index
// deliberately omits them, so an audit is how an operator checks a store
// whose history is unknown.
//
// Usage: dangling_audit [--quiet] <store.gsv> [<store.gsv> ...]
// Exit status: 0 when every store is clean, 1 when any store has dangling
// edges, 2 on error — so a CI stage can gate on the audit directly. With
// --quiet only failing stores print.

#include <cstdio>
#include <cstring>

#include "oem/serialize.h"
#include "oem/store.h"

namespace {

// 0 clean, 1 dangling, 2 load error.
int AuditOne(const char* path, bool quiet) {
  gsv::ObjectStore store;
  gsv::Status loaded = gsv::LoadStoreFromFile(path, &store);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", path,
                 loaded.ToString().c_str());
    return 2;
  }

  std::vector<gsv::DanglingEdge> dangling = store.AuditDanglingEdges();
  if (!quiet || !dangling.empty()) {
    std::printf("%s: %zu objects, %zu dangling edge(s)\n", path, store.size(),
                dangling.size());
  }
  for (const gsv::DanglingEdge& edge : dangling) {
    std::printf("  %s -> %s (child missing)\n", edge.parent.str().c_str(),
                edge.child.str().c_str());
  }
  return dangling.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  int first = 1;
  if (first < argc && std::strcmp(argv[first], "--quiet") == 0) {
    quiet = true;
    ++first;
  }
  if (first >= argc) {
    std::fprintf(stderr, "usage: %s [--quiet] <store.gsv> [<store.gsv> ...]\n",
                 argv[0]);
    return 2;
  }
  int worst = 0;
  for (int i = first; i < argc; ++i) {
    int result = AuditOne(argv[i], quiet);
    if (result > worst) worst = result;
  }
  return worst;
}
