// E2 — GSDB-native incremental maintenance vs the relational flattening
// baseline (§4.4 question 2, Example 8).
//
// Paper claim: flattening the graph into OID_LABEL / PARENT_CHILD /
// OID_VALUE and using relational incremental view maintenance is "not very
// effective": one object update becomes several table updates, the view
// needs a chain of self-joins, and "the path semantics are hidden in the
// relations" so every edge delta pays one delta term per join position.
//
// Workload: Example 7's relational-style GSDB; the same update stream is
// maintained by (a) Algorithm 1 on the graph, (b) counting-based IVM over
// the flattened tables, and (c) full relational re-evaluation.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/algorithm1.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "relational/counting.h"
#include "relational/flatten.h"
#include "relational/spj_view.h"
#include "util/stopwatch.h"
#include "workload/relational_gen.h"

namespace gsv {
namespace {

// One shared workload driver: applies `updates` mixed updates.
template <typename Fn>
void ApplyWorkload(ObjectStore* store, const GeneratedRelational& rel,
                   size_t updates, Fn per_update) {
  size_t counter = 2000000;
  for (size_t i = 0; i < updates; ++i) {
    switch (i % 3) {
      case 0: {
        auto tuple = MakeTuple(store, "N", &counter, (i * 13) % 100, 3);
        bench::Check(tuple.status().ok() ? Status::Ok() : tuple.status());
        bench::Check(store->Insert(rel.relation_oids[i % 2], *tuple));
        break;
      }
      case 1: {
        const Oid& tuple = rel.tuple_oids[i % rel.tuple_oids.size()];
        const Object* tuple_obj = store->Get(tuple);
        for (const Oid& field : tuple_obj->children()) {
          const Object* field_obj = store->Get(field);
          if (field_obj != nullptr && field_obj->label() == "age") {
            bench::Check(store->Modify(field, Value::Int((i * 37) % 100)));
            break;
          }
        }
        break;
      }
      default: {
        const Oid& tuple = rel.tuple_oids[i % rel.tuple_oids.size()];
        if (store->Get(rel.relation_oids[0])->children().Contains(tuple)) {
          bench::Check(store->Delete(rel.relation_oids[0], tuple));
          bench::Check(store->Insert(rel.relation_oids[0], tuple));
        }
        break;
      }
    }
    per_update();
  }
}

}  // namespace
}  // namespace gsv

int main() {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  std::printf(
      "E2: graph-native Algorithm 1 vs relational flattening (Example 8)\n"
      "updates: 150 per trial\n\n");

  TablePrinter table({"tuples", "gsdb us/upd", "cnt us/upd", "rel-rec us",
                      "cnt tuples", "cnt terms", "tbl updates"});

  for (size_t tuples : {100, 1000, 5000}) {
    const size_t updates = 150;

    // (a) GSDB-native Algorithm 1.
    double gsdb_us = 0;
    {
      ObjectStore store;
      RelationalGenOptions options;
      options.tuples_per_relation = tuples;
      options.seed = 7;
      auto rel = GenerateRelationalGsdb(&store, options);
      auto def = ViewDefinition::Parse(
          RelationalViewDefinition("SEL", rel->root, 50));
      ObjectStore view_store;
      MaterializedView view(&view_store, *def);
      bench::Check(view.Initialize(store));
      LocalAccessor accessor(&store);
      Algorithm1Maintainer maintainer(&view, &accessor, *def, rel->root);
      store.AddListener(&maintainer);
      Stopwatch watch;
      ApplyWorkload(&store, *rel, updates, [] {});
      gsdb_us = static_cast<double>(watch.ElapsedMicros()) / updates;
      bench::Check(maintainer.last_status());
    }

    // (b) Relational counting IVM over the flattened tables.
    double counting_us = 0;
    int64_t tuples_examined = 0;
    int64_t delta_terms = 0;
    int64_t table_updates = 0;
    {
      ObjectStore store;
      RelationalGenOptions options;
      options.tuples_per_relation = tuples;
      options.seed = 7;
      auto rel = GenerateRelationalGsdb(&store, options);
      RelationalMirror mirror;
      bench::Check(mirror.SyncFromStore(store));
      store.AddListener(&mirror);
      auto def = ViewDefinition::Parse(
          RelationalViewDefinition("SEL", rel->root, 50));
      auto spec = ChainSpec::FromDefinition(*def);
      CountingViewMaintainer counting(&mirror, *spec);
      bench::Check(counting.Initialize());
      mirror.metrics().Reset();
      Stopwatch watch;
      ApplyWorkload(&store, *rel, updates, [] {});
      counting_us = static_cast<double>(watch.ElapsedMicros()) / updates;
      tuples_examined = mirror.metrics().tuples_examined;
      delta_terms = counting.stats().delta_terms;
      table_updates = mirror.metrics().table_updates;
      bench::Check(counting.last_status());
    }

    // (c) Relational full re-evaluation per update.
    double rel_recompute_us = 0;
    {
      ObjectStore store;
      RelationalGenOptions options;
      options.tuples_per_relation = tuples;
      options.seed = 7;
      auto rel = GenerateRelationalGsdb(&store, options);
      RelationalMirror mirror;
      bench::Check(mirror.SyncFromStore(store));
      store.AddListener(&mirror);
      auto def = ViewDefinition::Parse(
          RelationalViewDefinition("SEL", rel->root, 50));
      auto spec = ChainSpec::FromDefinition(*def);
      Stopwatch watch;
      ApplyWorkload(&store, *rel, updates,
                    [&] { EvaluateChain(mirror, *spec); });
      rel_recompute_us = static_cast<double>(watch.ElapsedMicros()) / updates;
    }

    table.Row({Num(tuples), Micros(gsdb_us), Micros(counting_us),
               Micros(rel_recompute_us), Num(tuples_examined),
               Num(delta_terms), Num(table_updates)});
  }

  std::printf(
      "\nExpected shape (paper §4.4): the graph-native maintainer beats the\n"
      "counting baseline (delta terms per update = chain length, multiple\n"
      "table updates per object update), and both beat per-update\n"
      "relational re-evaluation, whose cost scales with the data size.\n");
  return 0;
}
