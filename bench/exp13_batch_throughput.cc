// E13 — Batched parallel maintenance throughput.
//
// Sweeps drain batch size x worker threads over a modify-heavy tree stream
// fanned across several views and reports maintenance throughput
// (updates/second). Batch size is the dominant axis: one drain amortizes
// the convergence sweep, coalesces redundant events, and resolves §5.1
// screening once per distinct label instead of once per event. Threads fan
// independent views / root subtrees across the pool (a wash on a single
// hardware core, a gain on real ones).
//
// Emits one newline-delimited JSON record per configuration; --json=PATH
// redirects the records to a file. The acceptance bar for this experiment:
// batch=256/threads=4 must clear 3x the batch=1/threads=1 throughput.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

int main(int argc, char** argv) {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const size_t kTotalUpdates = 4096;
  const size_t kViews = 8;
  const size_t kBatchSizes[] = {1, 16, 256, 4096};
  const size_t kThreadCounts[] = {1, 2, 4, 8};

  std::printf(
      "E13: batched parallel maintenance throughput\n"
      "%zu updates, %zu views, level-2 events, drain every <batch> updates\n\n",
      kTotalUpdates, kViews);

  JsonLines json(json_path, "gsv.exp13.v1", /*seed=*/131);
  TablePrinter table({"batch", "threads", "drain_us", "upd/sec", "coalesced",
                      "screened", "speedup"});

  double baseline_rate = 0.0;
  double target_rate = 0.0;
  for (size_t batch_size : kBatchSizes) {
    for (size_t threads : kThreadCounts) {
      // Fresh, identically-seeded world per configuration.
      ObjectStore source;
      TreeGenOptions tree_options;
      tree_options.levels = 4;
      tree_options.fanout = 5;
      tree_options.seed = 131;
      auto tree = GenerateTree(&source, tree_options);
      Check(tree.status());

      ObjectStore warehouse_store;
      Warehouse warehouse(&warehouse_store);
      Check(warehouse.ConnectSource(&source, tree->root,
                                    ReportingLevel::kWithValues));
      // Views share the corridor but differ by bound, so every event fans
      // out to all of them and the drains have real per-view work.
      for (size_t v = 0; v < kViews; ++v) {
        Check(warehouse.DefineView(TreeViewDefinition(
            "WV" + std::to_string(v), tree->root, 2, 4,
            static_cast<int64_t>(10 + v * 10))));
      }
      warehouse.costs().Reset();
      warehouse.set_deferred(true);

      Warehouse::BatchOptions options;
      options.threads = threads;

      UpdateGenOptions gen_options;
      gen_options.seed = 137;
      gen_options.p_modify = 0.6;
      gen_options.p_insert = 0.2;
      gen_options.p_delete = 0.2;
      UpdateGenerator generator(&source, tree->root, gen_options);

      int64_t drain_micros = 0;
      for (size_t applied = 0; applied < kTotalUpdates;
           applied += batch_size) {
        size_t burst = std::min(batch_size, kTotalUpdates - applied);
        Check(generator.Run(burst).status());
        Stopwatch drain;
        Check(warehouse.ProcessPendingBatch(options));
        drain_micros += drain.ElapsedMicros();
      }

      // The drains must have produced the correct views.
      for (size_t v = 0; v < kViews; ++v) {
        ConsistencyReport report = CheckViewConsistency(
            *warehouse.view("WV" + std::to_string(v)), source);
        if (!report.consistent) {
          std::fprintf(stderr, "WV%zu inconsistent: %s\n", v,
                       report.ToString().c_str());
          return 1;
        }
      }

      double rate = drain_micros > 0
                        ? kTotalUpdates * 1e6 / static_cast<double>(drain_micros)
                        : 0.0;
      if (batch_size == 1 && threads == 1) baseline_rate = rate;
      if (batch_size == 256 && threads == 4) target_rate = rate;
      double speedup = baseline_rate > 0 ? rate / baseline_rate : 1.0;
      int64_t coalesced = warehouse.costs().events_coalesced;
      int64_t screened = warehouse.costs().events_screened_out;

      table.Row({Num(batch_size), Num(threads), Num(drain_micros),
                 Num(static_cast<int64_t>(rate)), Num(coalesced),
                 Num(screened), Ratio(speedup)});
      json.Record({{"exp", Quoted("exp13_batch_throughput")},
                   {"batch", Num(batch_size)},
                   {"threads", Num(threads)},
                   {"updates", Num(kTotalUpdates)},
                   {"views", Num(kViews)},
                   {"drain_micros", Num(drain_micros)},
                   {"updates_per_sec", Micros(rate)},
                   {"events_coalesced", Num(coalesced)},
                   {"events_screened_out", Num(screened)},
                   {"speedup_vs_serial", Micros(speedup)}});
    }
  }

  std::printf("\nbatch=256/threads=4 vs batch=1/threads=1: %s\n",
              Ratio(baseline_rate > 0 ? target_rate / baseline_rate : 0.0)
                  .c_str());
  return 0;
}
