// E4 — Auxiliary-structure caching (§5.2, Example 10).
//
// Paper claim: caching "all objects and labels reachable from OBJ along
// sel_path.cond_path" lets the warehouse maintain the view locally for any
// base update; partial caching (structure without atomic values) trades
// residual value queries for memory.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "oem/store.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

int main() {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  const size_t kUpdates = 1000;
  std::printf(
      "E4: warehouse maintenance cost by cache mode (level-2 events)\n"
      "source: random tree (levels=3, fanout=5), view: depth-2 selection,\n"
      "%zu random updates\n\n",
      kUpdates);

  struct Mode {
    const char* name;
    Warehouse::CacheMode cache;
  };
  const Mode modes[] = {
      {"none", Warehouse::CacheMode::kNone},
      {"labels-only", Warehouse::CacheMode::kLabelsOnly},
      {"full", Warehouse::CacheMode::kFull},
  };

  TablePrinter table({"cache", "queries", "upkeep q", "hits", "misses",
                      "local evts", "cache objs"});

  for (const Mode& mode : modes) {
    ObjectStore source;
    TreeGenOptions tree_options;
    tree_options.levels = 3;
    tree_options.fanout = 5;
    tree_options.seed = 31;
    auto tree = GenerateTree(&source, tree_options);
    bench::Check(tree.status().ok() ? Status::Ok() : tree.status());

    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    bench::Check(warehouse.ConnectSource(&source, tree->root,
                                         ReportingLevel::kWithValues));
    bench::Check(warehouse.DefineView(
        TreeViewDefinition("WV", tree->root, 2, 3, 50), mode.cache));
    warehouse.costs().Reset();

    UpdateGenOptions gen_options;
    gen_options.seed = 77;
    UpdateGenerator generator(&source, tree->root, gen_options);
    bench::Check(generator.Run(kUpdates).status().ok()
                     ? Status::Ok()
                     : Status::Internal("update stream failed"));
    bench::Check(warehouse.last_status());

    ConsistencyReport report =
        CheckViewConsistency(*warehouse.view("WV"), source);
    if (!report.consistent) {
      std::fprintf(stderr, "INCONSISTENT with cache=%s: %s\n", mode.name,
                   report.ToString().c_str());
      return 1;
    }

    const WarehouseCosts& costs = warehouse.costs();
    const AuxiliaryCache* cache = warehouse.cache("WV");
    table.Row({mode.name, Num(costs.source_queries),
               Num(costs.cache_maintenance_queries), Num(costs.cache_hits),
               Num(costs.cache_misses), Num(costs.events_local_only),
               Num(cache != nullptr ? cache->size() : 0)});
  }

  std::printf(
      "\nExpected shape (paper §5.2): the full cache reduces query-backs to\n"
      "cache upkeep only (inserted subtrees' corridor content); the partial\n"
      "cache answers structure locally but still ships condition values.\n");
  return 0;
}
