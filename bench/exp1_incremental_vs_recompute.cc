// E1 — Incremental maintenance vs full recomputation (§4.4 question 1,
// Example 7 / Figure 5).
//
// Paper claim: "incremental maintenance will be superior to recomputing the
// entire view if the view contains many delegate objects ... and updates
// only impact a few, easily identifiable objects."
//
// Workload: the relational-style GSDB of Example 7 (REL -> r0,r1 -> tuples
// -> fields), sweeping the tuple count. Each trial applies the same update
// mix (tuple inserts into r0, screened inserts into r1, field modifies)
// under (a) Algorithm 1 and (b) per-update full recomputation, and reports
// per-update wall time plus base-store work.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/algorithm1.h"
#include "core/materialized_view.h"
#include "core/recompute.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "workload/relational_gen.h"

namespace gsv {
namespace {

struct TrialResult {
  double micros_per_update = 0;
  int64_t store_ops = 0;  // edges traversed + parent lookups + oid lookups
  size_t final_view_size = 0;
};

int64_t StoreOps(const ObjectStore& store) {
  const StoreMetrics& m = store.metrics();
  return m.edges_traversed + m.parent_lookups + m.lookups +
         m.objects_scanned;
}

// Applies the standard update mix; `updates` counts applied base updates.
template <typename SetupFn>
TrialResult RunTrial(size_t tuples, size_t updates, SetupFn setup) {
  ObjectStore store;
  RelationalGenOptions options;
  options.relations = 2;
  options.tuples_per_relation = tuples;
  options.seed = 7;
  auto rel = GenerateRelationalGsdb(&store, options);
  bench::Check(rel.status().ok() ? Status::Ok() : rel.status());

  auto def = ViewDefinition::Parse(
      RelationalViewDefinition("SEL", rel->root, /*bound=*/50));
  bench::Check(def.status().ok() ? Status::Ok() : def.status());
  ObjectStore view_store;
  MaterializedView view(&view_store, *def);
  bench::Check(view.Initialize(store));

  auto teardown = setup(&store, &view, *def, rel->root);

  size_t counter = 1000000;
  store.metrics().Reset();
  Stopwatch watch;
  for (size_t i = 0; i < updates; ++i) {
    switch (i % 4) {
      case 0: {  // relevant tuple insert into r0
        auto tuple = MakeTuple(&store, "N", &counter, (i * 13) % 100, 3);
        bench::Check(tuple.status().ok() ? Status::Ok() : tuple.status());
        bench::Check(store.Insert(rel->relation_oids[0], *tuple));
        break;
      }
      case 1: {  // screened tuple insert into r1
        auto tuple = MakeTuple(&store, "N", &counter, (i * 13) % 100, 3);
        bench::Check(store.Insert(rel->relation_oids[1], *tuple));
        break;
      }
      case 2: {  // age modify of an existing r0 tuple (membership flip)
        const Oid& tuple = rel->tuple_oids[i % rel->tuple_oids.size()];
        const Object* tuple_obj = store.Get(tuple);
        for (const Oid& field : tuple_obj->children()) {
          const Object* field_obj = store.Get(field);
          if (field_obj != nullptr && field_obj->label() == "age") {
            bench::Check(store.Modify(field, Value::Int((i * 37) % 100)));
            break;
          }
        }
        break;
      }
      default: {  // delete + re-insert an edge in r0
        const Oid& tuple = rel->tuple_oids[i % rel->tuple_oids.size()];
        if (store.Get(rel->relation_oids[0])->children().Contains(tuple)) {
          bench::Check(store.Delete(rel->relation_oids[0], tuple));
          bench::Check(store.Insert(rel->relation_oids[0], tuple));
        }
        break;
      }
    }
  }
  TrialResult result;
  result.micros_per_update =
      static_cast<double>(watch.ElapsedMicros()) / static_cast<double>(updates);
  result.store_ops = StoreOps(store);
  result.final_view_size = view.size();
  teardown();
  return result;
}

}  // namespace
}  // namespace gsv

int main() {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  std::printf(
      "E1: incremental (Algorithm 1) vs full recomputation, Example 7 "
      "workload\n"
      "updates: 200 per trial (50%% view-relevant)\n\n");

  TablePrinter table({"tuples", "inc us/upd", "rec us/upd", "speedup",
                      "inc ops", "rec ops", "view size"});

  for (size_t tuples : {10, 100, 1000, 10000}) {
    const size_t updates = 200;

    TrialResult incremental = RunTrial(
        tuples, updates,
        [](ObjectStore* store, MaterializedView* view,
           const ViewDefinition& def, const Oid& root) {
          auto* accessor = new LocalAccessor(store);
          auto* maintainer =
              new Algorithm1Maintainer(view, accessor, def, root);
          store->AddListener(maintainer);
          return [store, accessor, maintainer]() {
            store->RemoveListener(maintainer);
            delete maintainer;
            delete accessor;
          };
        });

    TrialResult recompute = RunTrial(
        tuples, updates,
        [](ObjectStore* store, MaterializedView* view,
           const ViewDefinition& def, const Oid& root) {
          (void)def;
          (void)root;
          auto* maintainer = new RecomputeMaintainer(view, store);
          store->AddListener(maintainer);
          return [store, maintainer]() {
            store->RemoveListener(maintainer);
            delete maintainer;
          };
        });

    table.Row({Num(tuples), Micros(incremental.micros_per_update),
               Micros(recompute.micros_per_update),
               Ratio(recompute.micros_per_update /
                     incremental.micros_per_update),
               Num(incremental.store_ops), Num(recompute.store_ops),
               Num(incremental.final_view_size)});
  }

  std::printf(
      "\nExpected shape (paper §4.4): recomputation cost grows with the view\n"
      "size while incremental cost stays flat; the speedup factor grows\n"
      "roughly linearly in the number of tuples.\n");
  return 0;
}
