// E18 — Replication: WAL-shipped read replicas (DESIGN.md §4g).
//
// Runs a durable primary (WAL + checkpoints, epoch 1) through a
// modify-heavy stream, then measures the follower side of the shipping
// protocol:
//
//   catch-up     a fresh follower seeds from the primary's checkpoint and
//                tails the committed log to the watermark — records/sec,
//                over a clean channel and over a fault-injected one
//                (outages, torn reads, duplicated chunks, bit flips).
//                The floor compares the clean catch-up against the §4.4
//                baseline of defining every view from scratch over the
//                live source: the replica must be cheaper than recompute,
//                or the serving tier has no reason to exist.
//   steady-state a caught-up follower polls once per primary commit; the
//                per-round shipped bytes, apply latency, and the residual
//                lag after the poll (must be zero — the follower is
//                byte-current at every commit watermark).
//   promotion    fence the old primary, open the follower's home as the
//                new primary's WAL (epoch 2), accept the first write —
//                wall-clock from Promote() to the write being durable,
//                split into fence / takeover / first-write. The old
//                primary's next append must die on the fence.
//
// Every phase cross-checks follower view content byte-for-byte against
// the primary. Exit 1 when a cross-check fails or the catch-up ratio
// drops below the floor: 2x full, 1.5x --smoke (CI-sized).
//
// Emits one newline-delimited JSON record per measurement; --json=PATH
// redirects the records to a file.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/materialized_view.h"
#include "oem/serialize.h"
#include "oem/store.h"
#include "replication/checksums.h"
#include "replication/log_transport.h"
#include "replication/replica.h"
#include "replication/transport_fault.h"
#include "storage/wal.h"
#include "util/stopwatch.h"
#include "warehouse/sharding.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace {

using namespace gsv;         // NOLINT(build/namespaces)
using namespace gsv::bench;  // NOLINT(build/namespaces)

// Follower view content must match the primary's byte-for-byte.
bool ContentMatches(const Replica& replica, Warehouse& primary,
                    const std::vector<std::string>& names,
                    const char* phase) {
  for (const std::string& name : names) {
    auto read = replica.ReadView(name);
    if (!read.ok()) {
      std::fprintf(stderr, "%s: ReadView(%s): %s\n", phase, name.c_str(),
                   read.status().ToString().c_str());
      return false;
    }
    if (read->lines != ViewContentLines(*primary.view(name))) {
      std::fprintf(stderr, "%s: follower %s diverged from primary\n", phase,
                   name.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const size_t kLevels = smoke ? 5 : 6;
  const size_t kFanout = 6;
  const size_t kViews = smoke ? 2 : 4;
  const size_t kUpdates = smoke ? 400 : 2000;
  const size_t kDrainEvery = 32;
  // A mid-stream checkpoint splits catch-up into its two real costs: seed
  // (checkpoint image fetch + adopt) and tail (committed delta redo).
  const uint64_t kCheckpointInterval = kUpdates / 2;
  const size_t kRounds = smoke ? 10 : 50;
  const size_t kRoundBatch = 10;
  const double kFloor = smoke ? 1.5 : 2.0;
  const uint64_t kTreeSeed = 233;
  const uint64_t kUpdateSeed = 239;

  std::printf(
      "E18: replication — WAL-shipped follower catch-up, staleness, "
      "promotion (%s)\n"
      "tree levels=%zu fanout=%zu, %zu views, %zu updates, floor %.1fx\n\n",
      smoke ? "smoke" : "full", kLevels, kFanout, kViews, kUpdates, kFloor);

  JsonLines json(json_path, "gsv.exp18.v1", kTreeSeed);

  const std::string primary_dir = "/tmp/gsv_exp18_primary";
  std::filesystem::remove_all(primary_dir);

  ObjectStore source;
  TreeGenOptions tree_options;
  tree_options.levels = kLevels;
  tree_options.fanout = kFanout;
  tree_options.seed = kTreeSeed;
  auto tree = GenerateTree(&source, tree_options);
  Check(tree.status());

  std::vector<std::string> names;
  std::vector<std::string> definitions;
  for (size_t v = 0; v < kViews; ++v) {
    names.push_back("WV" + std::to_string(v));
    definitions.push_back(TreeViewDefinition(
        names.back(), tree->root, 2, kLevels,
        static_cast<int64_t>(10 + v * 20)));
  }

  // ---- The primary: durable, epoch-fenced, checkpointing mid-stream.
  ObjectStore primary_store;
  Warehouse primary(&primary_store);
  Check(primary.ConnectSource(&source, tree->root,
                              ReportingLevel::kWithValues));
  primary.set_deferred(true);
  Warehouse::DurabilityOptions durability;
  durability.dir = primary_dir;
  durability.fsync = FsyncPolicy::kNever;  // timing the follower, not the disk
  durability.checkpoint_interval_events = kCheckpointInterval;
  durability.epoch = 1;
  durability.owner = "primary";
  Check(primary.EnableDurability(durability));
  for (const std::string& definition : definitions) {
    Check(primary.DefineView(definition));
  }

  UpdateGenOptions gen_options;
  gen_options.seed = kUpdateSeed;
  gen_options.p_modify = 0.6;
  gen_options.p_insert = 0.2;
  gen_options.p_delete = 0.2;
  UpdateGenerator generator(&source, tree->root, gen_options);
  for (size_t applied = 0; applied < kUpdates; applied += kDrainEvery) {
    Check(generator.Run(std::min(kDrainEvery, kUpdates - applied)).status());
    Check(primary.ProcessPendingBatch());
  }
  Check(PublishChecksums(primary));

  // ---- §4.4 baseline: the read-scale alternative is another warehouse
  // recomputing every view over the live source (index-free, as E16).
  ObjectStore::Options plain_options;
  plain_options.enable_label_index = false;
  ObjectStore source_plain(plain_options);
  Check(StoreFromString(StoreToString(source), &source_plain));
  const int kReps = 3;
  int64_t recompute_micros = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    ObjectStore store_full;
    Warehouse full(&store_full);
    Check(full.ConnectSource(&source_plain, tree->root,
                             ReportingLevel::kWithValues));
    Stopwatch recompute;
    for (const std::string& definition : definitions) {
      Check(full.DefineView(definition));
    }
    int64_t micros = recompute.ElapsedMicros();
    if (rep == 0 || micros < recompute_micros) recompute_micros = micros;
  }

  // ---- Catch-up: fresh follower, clean channel vs faulted channel.
  std::printf("catch-up (seed from checkpoint + tail %zu committed rounds)\n",
              kUpdates / kDrainEvery);
  TablePrinter catchup_table(
      {"channel", "records", "reseeds", "catchup_us", "recomp_us", "rec/sec"});
  int64_t clean_catchup_micros = 0;
  for (const bool faulted : {false, true}) {
    const char* label = faulted ? "faulted" : "clean";
    int64_t catchup_micros = 0;
    int64_t records = 0;
    int64_t reseeds = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const std::string dir =
          std::string("/tmp/gsv_exp18_catchup_") + label;
      std::filesystem::remove_all(dir);
      std::unique_ptr<LogTransport> transport =
          std::make_unique<FileLogTransport>(primary_dir);
      if (faulted) {
        TransportFaultProfile profile;
        profile.seed = 77 + static_cast<uint64_t>(rep);
        profile.fail_rate = 0.05;
        profile.fail_burst = 2;
        profile.stale_list_rate = 0.05;
        profile.torn_read_rate = 0.10;
        profile.duplicate_rate = 0.10;
        profile.flip_rate = 0.05;
        transport = std::make_unique<FaultInjectedTransport>(
            std::move(transport), profile);
      }
      ReplicaOptions options;
      options.dir = dir;
      Replica replica(std::move(transport), options);
      Stopwatch catchup;
      Status started = replica.Start();
      for (int attempt = 0; !started.ok() && attempt < 50; ++attempt) {
        started = replica.Start();  // transient seed failures are retryable
      }
      Check(started);
      Check(replica.CatchUp(/*max_polls=*/400));
      int64_t micros = catchup.ElapsedMicros();
      if (rep == 0 || micros < catchup_micros) catchup_micros = micros;
      records = replica.stats().records_applied;
      reseeds = replica.stats().reseeds;
      if (!ContentMatches(replica, primary, names, label)) return 1;
      std::filesystem::remove_all(dir);
    }
    if (!faulted) clean_catchup_micros = catchup_micros;
    double rate = catchup_micros > 0
                      ? static_cast<double>(records) * 1e6 /
                            static_cast<double>(catchup_micros)
                      : 0.0;
    catchup_table.Row({label, Num(records), Num(reseeds), Num(catchup_micros),
                       Num(recompute_micros),
                       Num(static_cast<int64_t>(rate))});
    json.Record({{"exp", Quoted("exp18_catchup")},
                 {"mode", Quoted(smoke ? "smoke" : "full")},
                 {"channel", Quoted(label)},
                 {"levels", Num(kLevels)},
                 {"views", Num(kViews)},
                 {"updates", Num(kUpdates)},
                 {"records_applied", Num(records)},
                 {"reseeds", Num(reseeds)},
                 {"catchup_micros", Num(catchup_micros)},
                 {"recompute_micros", Num(recompute_micros)},
                 {"records_per_sec", Micros(rate)}});
  }

  // ---- Steady state: one poll per primary commit; residual lag must be
  // zero (the follower is byte-current at every commit watermark).
  const std::string steady_dir = "/tmp/gsv_exp18_steady";
  std::filesystem::remove_all(steady_dir);
  ReplicaOptions steady_options;
  steady_options.dir = steady_dir;
  Replica follower(std::make_unique<FileLogTransport>(primary_dir),
                   steady_options);
  Check(follower.Start());
  Check(follower.CatchUp(/*max_polls=*/64));

  int64_t total_poll_micros = 0;
  int64_t max_poll_micros = 0;
  int64_t total_shipped = 0;
  uint64_t max_residual_lag = 0;
  for (size_t round = 0; round < kRounds; ++round) {
    Check(generator.Run(kRoundBatch).status());
    Check(primary.ProcessPendingBatch());
    int64_t before = follower.stats().bytes_mirrored;
    Stopwatch poll;
    Check(follower.Poll());
    int64_t micros = poll.ElapsedMicros();
    total_poll_micros += micros;
    if (micros > max_poll_micros) max_poll_micros = micros;
    total_shipped += follower.stats().bytes_mirrored - before;
    if (follower.staleness().lag_bytes > max_residual_lag) {
      max_residual_lag = follower.staleness().lag_bytes;
    }
  }
  if (max_residual_lag != 0) {
    std::fprintf(stderr,
                 "steady-state: residual lag %llu bytes after poll\n",
                 static_cast<unsigned long long>(max_residual_lag));
    return 1;
  }
  if (follower.applied_lsn() != primary.wal()->next_lsn() - 1) {
    std::fprintf(stderr, "steady-state: follower behind the commit mark\n");
    return 1;
  }
  if (!ContentMatches(follower, primary, names, "steady-state")) return 1;
  double avg_poll = static_cast<double>(total_poll_micros) /
                    static_cast<double>(kRounds);
  std::printf("\nsteady state (%zu rounds of %zu updates per commit)\n",
              kRounds, kRoundBatch);
  TablePrinter steady_table(
      {"rounds", "ship_bytes", "avg_poll_us", "max_poll_us", "lag_after"});
  steady_table.Row({Num(kRounds), Num(total_shipped / (int64_t)kRounds),
                    Micros(avg_poll), Num(max_poll_micros),
                    Num((int64_t)max_residual_lag)});
  json.Record({{"exp", Quoted("exp18_steady_state")},
               {"mode", Quoted(smoke ? "smoke" : "full")},
               {"rounds", Num(kRounds)},
               {"round_batch", Num(kRoundBatch)},
               {"avg_ship_bytes", Num(total_shipped / (int64_t)kRounds)},
               {"avg_poll_micros", Micros(avg_poll)},
               {"max_poll_micros", Num(max_poll_micros)},
               {"max_residual_lag", Num((int64_t)max_residual_lag)}});

  // ---- Promotion: fence the primary, open the follower's home as the
  // next primary's WAL, accept the first write.
  Stopwatch fence_watch;
  auto granted = follower.Promote("promoted");
  Check(granted.status());
  int64_t fence_micros = fence_watch.ElapsedMicros();

  Stopwatch takeover_watch;
  ObjectStore promoted_store;
  Warehouse promoted(&promoted_store);
  Check(promoted.ConnectSource(&source, tree->root,
                               ReportingLevel::kWithValues));
  promoted.set_deferred(true);
  Warehouse::DurabilityOptions takeover;
  takeover.dir = follower.dir();
  takeover.fsync = FsyncPolicy::kNever;
  takeover.epoch = *granted;
  takeover.owner = "promoted";
  Check(promoted.EnableDurability(takeover));
  int64_t takeover_micros = takeover_watch.ElapsedMicros();

  // The new primary starts exactly where the follower stood.
  for (const std::string& name : names) {
    if (ViewContentLines(*promoted.view(name)) !=
        ViewContentLines(*primary.view(name))) {
      std::fprintf(stderr, "promotion: %s lost state in takeover\n",
                   name.c_str());
      return 1;
    }
  }
  // The fenced old primary may never append again.
  if (!IsFencedStatus(primary.wal()->Append(WalRecord{}))) {
    std::fprintf(stderr, "promotion: old primary survived the fence\n");
    return 1;
  }

  Stopwatch write_watch;
  Check(generator.Run(1).status());
  Check(promoted.ProcessPending());
  int64_t first_write_micros = write_watch.ElapsedMicros();

  std::printf("\npromotion (epoch %llu -> %llu, fenced old primary)\n",
              1ull, static_cast<unsigned long long>(*granted));
  TablePrinter promo_table(
      {"fence_us", "takeover_us", "first_wr_us", "total_us"});
  promo_table.Row({Num(fence_micros), Num(takeover_micros),
                   Num(first_write_micros),
                   Num(fence_micros + takeover_micros + first_write_micros)});
  json.Record({{"exp", Quoted("exp18_promotion")},
               {"mode", Quoted(smoke ? "smoke" : "full")},
               {"new_epoch", Num((int64_t)*granted)},
               {"fence_micros", Num(fence_micros)},
               {"takeover_micros", Num(takeover_micros)},
               {"first_write_micros", Num(first_write_micros)},
               {"total_micros", Num(fence_micros + takeover_micros +
                                    first_write_micros)}});

  std::filesystem::remove_all(steady_dir);
  std::filesystem::remove_all(primary_dir);

  double ratio =
      clean_catchup_micros > 0
          ? static_cast<double>(recompute_micros) /
                static_cast<double>(clean_catchup_micros)
          : 0.0;
  if (ratio < kFloor) {
    std::fprintf(stderr,
                 "\nFAIL: clean catch-up is %.2fx recompute, below the "
                 "%.1fx floor\n",
                 ratio, kFloor);
    return 1;
  }
  std::printf("\nclean catch-up %.2fx cheaper than §4.4 recompute "
              "(floor %.1fx); all phases byte-matched the primary\n",
              ratio, kFloor);
  return 0;
}
