// E6 — The inverse (parent) index and ancestor() cost (§4.4).
//
// Paper claim: "if the base database has an 'inverse index' such that from
// each node we can find out its parent, then evaluating ancestor(N,p) is
// straightforward. If there does not exist such an index, evaluating the
// same function may require a traversal from ROOT to N."
//
// Our store implements both: with the index, Parents() is a hash lookup;
// without it, Parents() scans every set object (metered).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/algorithm1.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

int main() {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  const size_t kUpdates = 200;
  std::printf(
      "E6: Algorithm 1 with and without the inverse (parent) index\n"
      "source: random tree (levels=3, fanout sweep), %zu updates\n\n",
      kUpdates);

  TablePrinter table({"objects", "index", "us/update", "scanned/upd",
                      "parent lkps"});

  for (size_t fanout : {3, 6, 10}) {
    for (bool with_index : {true, false}) {
      ObjectStore::Options store_options;
      store_options.enable_parent_index = with_index;
      ObjectStore store(store_options);
      TreeGenOptions options;
      options.levels = 3;
      options.fanout = fanout;
      options.seed = 5;
      auto tree = GenerateTree(&store, options);
      bench::Check(tree.status().ok() ? Status::Ok() : tree.status());
      auto def = ViewDefinition::Parse(
          TreeViewDefinition("PV", tree->root, 2, 3, 50));
      ObjectStore view_store;
      MaterializedView view(&view_store, *def);
      bench::Check(view.Initialize(store));
      LocalAccessor accessor(&store);
      Algorithm1Maintainer maintainer(&view, &accessor, *def, tree->root);
      store.AddListener(&maintainer);

      UpdateGenOptions gen_options;
      gen_options.seed = 11;
      UpdateGenerator generator(&store, tree->root, gen_options);
      store.metrics().Reset();
      Stopwatch watch;
      bench::Check(generator.Run(kUpdates).status().ok()
                       ? Status::Ok()
                       : Status::Internal("stream failed"));
      double us = static_cast<double>(watch.ElapsedMicros()) / kUpdates;
      bench::Check(maintainer.last_status());

      table.Row({Num(store.size()), with_index ? "yes" : "no", Micros(us),
                 Num(store.metrics().objects_scanned /
                     static_cast<int64_t>(kUpdates)),
                 Num(store.metrics().parent_lookups)});
    }
  }

  std::printf(
      "\nExpected shape (paper §4.4): without the index each ancestor()\n"
      "evaluation degenerates to a store scan, and maintenance cost per\n"
      "update grows with the database size instead of staying flat.\n");
  return 0;
}
