// E11 — Ablations of this implementation's design choices (DESIGN.md):
//
//  * candidate verification (path(ROOT,Y)=sel_path probe before acting):
//    vacuous on clean trees — what does the safety cost over the paper's
//    bare Algorithm 1, and what does it prevent on grouped bases?
//  * delegate value synchronization (§3.2's "delegates have the same value
//    as the original"): maintenance overhead of keeping copies fresh;
//  * incremental edge swizzling: overhead on V_insert/V_delete.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/algorithm1.h"
#include "core/consistency.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

struct Trial {
  double us_per_update = 0;
  int64_t verify_calls = 0;
  bool consistent = false;
};

Trial Run(bool verify, bool sync, bool swizzle, size_t updates) {
  ObjectStore store;
  TreeGenOptions tree_options;
  tree_options.levels = 3;
  tree_options.fanout = 5;
  tree_options.seed = 41;
  auto tree = GenerateTree(&store, tree_options);
  bench::Check(tree.status().ok() ? Status::Ok() : tree.status());
  auto def = ViewDefinition::Parse(
      TreeViewDefinition("AV", tree->root, 2, 3, 50));

  ObjectStore view_store;
  MaterializedView::Options view_options;
  view_options.sync_values = sync;
  view_options.swizzle = swizzle;
  MaterializedView view(&view_store, *def, view_options);
  bench::Check(view.Initialize(store));

  LocalAccessor accessor(&store);
  Algorithm1Maintainer::Options algo_options;
  algo_options.verify_candidates = verify;
  Algorithm1Maintainer maintainer(&view, &accessor, *def, tree->root,
                                  algo_options);
  store.AddListener(&maintainer);

  UpdateGenOptions gen_options;
  gen_options.seed = 43;
  UpdateGenerator generator(&store, tree->root, gen_options);
  Stopwatch watch;
  bench::Check(generator.Run(updates).status().ok()
                   ? Status::Ok()
                   : Status::Internal("stream failed"));
  Trial trial;
  trial.us_per_update =
      static_cast<double>(watch.ElapsedMicros()) / static_cast<double>(updates);
  trial.verify_calls = accessor.stats().verify_calls;
  // Value-consistency can only hold with sync on; compare membership only
  // when it's off.
  if (sync) {
    trial.consistent = CheckViewConsistency(view, store).consistent;
  } else {
    auto truth = EvaluateView(store, *def);
    trial.consistent = truth.ok() && view.BaseMembers() == *truth;
  }
  return trial;
}

}  // namespace
}  // namespace gsv

int main() {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  const size_t kUpdates = 600;
  std::printf(
      "E11: implementation ablations (clean tree, %zu random updates)\n\n",
      kUpdates);

  TablePrinter table({"verify", "sync", "swizzle", "us/update",
                      "verify calls", "correct"});
  struct Config {
    bool verify, sync, swizzle;
  };
  const Config configs[] = {
      {true, true, false},   // default
      {false, true, false},  // bare Algorithm 1 (paper, clean tree only)
      {true, false, false},  // membership only, stale delegate values
      {true, true, true},    // plus incremental swizzling
  };
  for (const Config& config : configs) {
    Trial trial = Run(config.verify, config.sync, config.swizzle, kUpdates);
    table.Row({config.verify ? "on" : "off", config.sync ? "on" : "off",
               config.swizzle ? "on" : "off", Micros(trial.us_per_update),
               Num(trial.verify_calls), trial.consistent ? "yes" : "NO"});
  }

  // What verification buys: on a base with a grouping object (the paper's
  // own PERSON database gives every node a second parent), the bare
  // algorithm over-inserts.
  {
    ObjectStore store;
    bench::Check(store.PutSet(Oid("R"), "root"));
    bench::Check(store.PutAtomic(Oid("A"), "age", Value::Int(10)));
    bench::Check(store.PutSet(Oid("S"), "n1_0", {}));
    bench::Check(store.PutSet(Oid("GROUP"), "group", {Oid("S"), Oid("A")}));
    bench::Check(store.AddChildRaw(Oid("R"), Oid("S")));

    auto def = ViewDefinition::Parse(
        "define mview GV as: SELECT R.n1_0 X WHERE X.age <= 50");
    for (bool verify : {true, false}) {
      ObjectStore view_store;
      MaterializedView view(&view_store, *def);
      bench::Check(view.Initialize(store));
      LocalAccessor accessor(&store);
      Algorithm1Maintainer::Options algo_options;
      algo_options.verify_candidates = verify;
      Algorithm1Maintainer maintainer(&view, &accessor, *def, Oid("R"),
                                      algo_options);
      store.AddListener(&maintainer);
      // Insert the age leaf under S: GROUP is also an ancestor of A via
      // "age"... the candidate set contains spurious parents when the
      // grouping object also reaches S.
      bench::Check(store.Insert(Oid("S"), Oid("A")));
      auto truth = EvaluateView(store, *def);
      bool correct = truth.ok() && view.BaseMembers() == *truth;
      std::printf(
          "\ngrouped base, verification %s: view %s (members=%zu, "
          "truth=%zu)",
          verify ? "on " : "off", correct ? "correct" : "WRONG",
          view.size(), truth.ok() ? truth->size() : 0);
      bench::Check(store.Delete(Oid("S"), Oid("A")));
      store.RemoveListener(&maintainer);
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected shape: verification and value sync each cost a few\n"
      "percent per update; verification is what keeps maintenance exact\n"
      "when grouping objects give nodes extra parents (§2's database\n"
      "objects do exactly that).\n");
  return 0;
}
