// E21 — Discrimination-network maintenance vs recompute fallback.
//
// The §6 view classes (path-expression select paths, AND/OR conditions,
// DAG bases) are exactly the shapes Algorithm 1 refuses; before the GDN
// engine their only honest maintenance strategy was recomputing the view
// after every base update. This experiment prices that gap: one generated
// tree, one deterministic update stream (generated once, replayed on an
// identical twin world), and the view `SELECT <root>.* X WHERE age <= 50`
// maintained two ways —
//
//   gdn        the warehouse's discrimination network, inline mode: each
//              event propagates through the cached partial-match memos and
//              emits only the membership delta.
//   recompute  §4.4 fallback: re-evaluate the whole view after every
//              update (what "stay current" meant for these classes before
//              the network existed).
//
// Final view contents must be byte-identical between the two runs — the
// network is a speedup, never an answer change. Reported: wall time per
// variant, propagations and match-node churn from the engine counters, and
// the speedup ratio.
//
// Acceptance bar: gdn must clear 5x recompute on the full sweep. `--smoke`
// runs a scaled-down world with a loose 1.5x bar and a nonzero exit below
// it (wired into ci.sh as a perf-smoke stage).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/materialized_view.h"
#include "core/recompute.h"
#include "core/view_definition.h"
#include "ivm/gdn_network.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace {

struct Shape {
  const char* name;
  size_t levels;
  size_t fanout;
  size_t updates;
};

struct RunResult {
  int64_t maint_micros = 0;
  int64_t propagations = 0;
  int64_t matches_created = 0;
  std::vector<std::pair<gsv::Oid, std::string>> contents;
};

gsv::GeneratedTree BuildWorld(gsv::ObjectStore* store, const Shape& shape) {
  using namespace gsv;  // NOLINT(build/namespaces)
  TreeGenOptions tree_options;
  tree_options.levels = shape.levels;
  tree_options.fanout = shape.fanout;
  tree_options.label_variety = 2;
  tree_options.seed = 211;
  tree_options.oid_prefix = "e21_";
  auto tree = GenerateTree(store, tree_options);
  bench::Check(tree.status());
  return *tree;
}

// Both variants replay the same stream from identical twin worlds (same
// tree seed -> same OIDs), so the generator's choices line up step for
// step and the final stores are equal.
gsv::UpdateGenerator MakeGenerator(gsv::ObjectStore* store,
                                   const gsv::Oid& root) {
  gsv::UpdateGenOptions gen_options;
  gen_options.seed = 213;
  gen_options.oid_prefix = "e21_u";
  return gsv::UpdateGenerator(store, root, gen_options);
}

RunResult RunGdn(const Shape& shape, const std::string& definition) {
  using namespace gsv;  // NOLINT(build/namespaces)
  ObjectStore source;
  GeneratedTree tree = BuildWorld(&source, shape);

  ObjectStore store;
  Warehouse warehouse(&store);
  bench::Check(
      warehouse.ConnectSource(&source, tree.root, ReportingLevel::kOidsOnly));
  bench::Check(warehouse.DefineView(definition));
  if (warehouse.view_engine("E21") != Warehouse::EngineKind::kGdn) {
    std::fprintf(stderr, "E21 did not select the gdn engine\n");
    std::exit(1);
  }

  UpdateGenerator gen = MakeGenerator(&source, tree.root);
  RunResult result;
  Stopwatch timer;
  for (size_t i = 0; i < shape.updates; ++i) {
    bench::Check(gen.Step());
  }
  result.maint_micros = timer.ElapsedMicros();
  bench::Check(warehouse.last_status());

  const GdnEngine* engine = warehouse.gdn_engine("E21");
  result.propagations = static_cast<int64_t>(engine->stats().propagations);
  result.matches_created =
      static_cast<int64_t>(engine->stats().matches_created);
  result.contents = ViewContentLines(*warehouse.view("E21"));
  return result;
}

RunResult RunRecompute(const Shape& shape, const std::string& definition) {
  using namespace gsv;  // NOLINT(build/namespaces)
  ObjectStore source;
  GeneratedTree tree = BuildWorld(&source, shape);

  auto def = ViewDefinition::Parse(definition);
  bench::Check(def.status());
  ObjectStore view_store;
  MaterializedView view(&view_store, *def);
  bench::Check(view.Initialize(source));
  RecomputeMaintainer maintainer(&view, &source);

  UpdateGenerator gen = MakeGenerator(&source, tree.root);
  RunResult result;
  Stopwatch timer;
  for (size_t i = 0; i < shape.updates; ++i) {
    bench::Check(gen.Step());
    bench::Check(maintainer.Recompute());
  }
  result.maint_micros = timer.ElapsedMicros();
  result.contents = ViewContentLines(view);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const Shape kFull = {"full", 4, 4, 600};
  const Shape kSmoke = {"smoke", 3, 3, 150};
  const Shape& shape = smoke ? kSmoke : kFull;
  const double bar = smoke ? 1.5 : 5.0;

  std::printf("E21: discrimination-network vs per-update recompute, %s\n\n",
              shape.name);

  // A '*' select path over the whole tree: every object is a candidate,
  // which is the worst case for recompute and the bread-and-butter case
  // for the network's cached reachability memo.
  ObjectStore probe;
  GeneratedTree tree = BuildWorld(&probe, shape);
  const std::string definition = "define mview E21 as: SELECT " +
                                 tree.root.str() + ".* X WHERE X.age <= 50";

  RunResult gdn = RunGdn(shape, definition);
  RunResult recompute = RunRecompute(shape, definition);

  if (gdn.contents != recompute.contents) {
    std::fprintf(stderr,
                 "view contents diverged (gdn=%zu, recompute=%zu members)\n",
                 gdn.contents.size(), recompute.contents.size());
    return 1;
  }

  double speedup =
      gdn.maint_micros > 0
          ? static_cast<double>(recompute.maint_micros) / gdn.maint_micros
          : 0.0;

  JsonLines json(json_path, "gsv.exp21.v1", /*seed=*/211);
  TablePrinter table(
      {"variant", "maint_us", "propagations", "matches", "speedup"});
  table.Row({"recompute", Num(recompute.maint_micros), "-", "-", Ratio(1.0)});
  table.Row({"gdn", Num(gdn.maint_micros), Num(gdn.propagations),
             Num(gdn.matches_created), Ratio(speedup)});
  json.Record({{"exp", Quoted("exp21_gdn")},
               {"shape", Quoted(shape.name)},
               {"levels", Num(shape.levels)},
               {"fanout", Num(shape.fanout)},
               {"updates", Num(shape.updates)},
               {"members", Num(gdn.contents.size())},
               {"maint_micros_gdn", Num(gdn.maint_micros)},
               {"maint_micros_recompute", Num(recompute.maint_micros)},
               {"gdn_propagations", Num(gdn.propagations)},
               {"gdn_matches_created", Num(gdn.matches_created)},
               {"speedup", Micros(speedup)}});

  std::printf("\nspeedup %s (bar %.1fx), %zu members, identical contents\n",
              Ratio(speedup).c_str(), bar, gdn.contents.size());
  if (speedup < bar) {
    std::fprintf(stderr, "gdn speedup %s below the %.1fx bar\n",
                 Ratio(speedup).c_str(), bar);
    return 1;
  }
  return 0;
}
