// E19 — Beyond-RAM warehouse: the paged storage engine under a buffer
// pool far smaller than the store (§4h).
//
// Builds a source tree whose warehouse image is many times the pool
// budget, runs the warehouse's delegate store on the PagedEngine, and
// drives a drain-batched update stream. Three claims are measured:
//
//   footprint   the on-disk store is >= 4x the pool's RAM budget (the
//               warehouse genuinely holds a graph it could not pool) —
//               hard floor, exit 1 when it fails;
//   delta cost  a maintenance drain faults in pages proportional to the
//               delta it integrates, not to the store: faults per drain
//               must undercut the full page sweep a store-wide recompute
//               would pay (floor 1.5x smoke / 3x full);
//   residency   the pool ends every drain within budget (peak resident
//               pages <= pool_pages).
//
// A memory-engine twin warehouse consumes the identical stream; the run
// cross-checks byte-identical store images at the end, so the numbers
// above are measured on a provably correct execution.
//
// Emits one newline-delimited JSON record per pool configuration;
// --json=PATH redirects the records to a file.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "oem/paged_engine.h"
#include "oem/serialize.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

int main(int argc, char** argv) {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const size_t kLevels = smoke ? 5 : 6;
  const size_t kFanout = 6;
  const size_t kUpdates = smoke ? 320 : 1600;
  const size_t kDrainEvery = 32;
  const uint64_t kPageBytes = 512;
  const double kFootprintFloor = 4.0;
  const double kDeltaFloor = smoke ? 1.5 : 3.0;
  const uint64_t kTreeSeed = 307;
  const uint64_t kUpdateSeed = 311;

  // Pool budgets from starved to comfortable; the footprint floor is
  // enforced on the smallest (the headline beyond-RAM configuration).
  std::vector<uint64_t> pools = smoke ? std::vector<uint64_t>{8, 16, 32}
                                      : std::vector<uint64_t>{16, 64, 256};

  std::printf(
      "E19: beyond-RAM warehouse — paged delegate store vs pool budget "
      "(%s)\ntree levels=%zu fanout=%zu, %zu updates drained every %zu, "
      "page %llu B\nfloors: footprint >= %.1fx pool, drain faults undercut "
      "full sweep by %.1fx\n\n",
      smoke ? "smoke" : "full", kLevels, kFanout, kUpdates, kDrainEvery,
      static_cast<unsigned long long>(kPageBytes), kFootprintFloor,
      kDeltaFloor);

  JsonLines json(json_path, "gsv.exp19.v1", kTreeSeed);
  TablePrinter table({"pool_pages", "objects", "pages", "footprint",
                      "faults/drain", "sweep_ratio", "wb_kb", "drain_us"});

  bool footprint_ok = false;
  double worst_delta_ratio = 0.0;
  bool first_pool = true;

  for (uint64_t pool_pages : pools) {
    // ---- Twin sources, twin streams: memory reference vs paged subject.
    ObjectStore source_m;
    ObjectStore source_p;
    TreeGenOptions tree_options;
    tree_options.levels = kLevels;
    tree_options.fanout = kFanout;
    tree_options.seed = kTreeSeed;
    auto tree_m = GenerateTree(&source_m, tree_options);
    auto tree_p = GenerateTree(&source_p, tree_options);
    Check(tree_m.status());
    Check(tree_p.status());
    const Oid root = tree_p->root;
    // A warehouse's delegate store holds the view members, so the views
    // select whole tree levels (bound above every generated value) to
    // give the warehouse a genuinely beyond-RAM image.
    std::vector<std::string> definitions;
    for (size_t d = 2; d < kLevels; ++d) {
      definitions.push_back(TreeViewDefinition(
          "WV" + std::to_string(d), root, d, kLevels, 1000));
    }

    ObjectStore store_m;
    Warehouse warehouse_m(&store_m);
    Check(warehouse_m.ConnectSource(&source_m, root,
                                    ReportingLevel::kWithValues));
    warehouse_m.set_deferred(true);
    for (const std::string& definition : definitions) {
      Check(warehouse_m.DefineView(definition));
    }

    PagedEngineOptions engine_options;
    engine_options.dir =
        "/tmp/gsv_exp19_pool" + std::to_string(pool_pages);
    std::filesystem::remove_all(engine_options.dir);
    engine_options.page_bytes = kPageBytes;
    engine_options.pool_pages = pool_pages;
    engine_options.wipe_on_close = true;
    ObjectStore::Options store_options;
    store_options.engine_factory = MakePagedEngineFactory(engine_options);
    ObjectStore store_p(store_options);
    Warehouse warehouse_p(&store_p);
    Check(warehouse_p.ConnectSource(&source_p, root,
                                    ReportingLevel::kWithValues));
    warehouse_p.set_deferred(true);
    for (const std::string& definition : definitions) {
      Check(warehouse_p.DefineView(definition));
    }

    UpdateGenOptions gen_options;
    gen_options.seed = kUpdateSeed;
    UpdateGenerator gen_m(&source_m, root, gen_options);
    UpdateGenerator gen_p(&source_p, root, gen_options);

    // ---- Maintenance phase: drain-batched stream, faults metered.
    const int64_t faults_before =
        store_p.metrics().page_faults.load(std::memory_order_relaxed);
    size_t drains = 0;
    double drain_micros = 0.0;
    for (size_t i = 0; i < kUpdates; ++i) {
      Check(gen_m.Step());
      Check(gen_p.Step());
      if ((i + 1) % kDrainEvery == 0) {
        Check(warehouse_m.ProcessPendingBatch());
        Stopwatch timer;
        Check(warehouse_p.ProcessPendingBatch());
        drain_micros += static_cast<double>(timer.ElapsedMicros());
        ++drains;
      }
    }
    Check(warehouse_m.ProcessPendingBatch());
    Check(warehouse_p.ProcessPendingBatch());
    const int64_t faults =
        store_p.metrics().page_faults.load(std::memory_order_relaxed) -
        faults_before;

    // ---- Correctness: byte-identical with the memory twin.
    if (StoreToString(store_p) != StoreToString(store_m)) {
      std::fprintf(stderr,
                   "E19: paged store diverged from memory twin "
                   "(pool=%llu)\n",
                   static_cast<unsigned long long>(pool_pages));
      return 1;
    }

    PagedEngineStatus status;
    if (!QueryPagedEngineStatus(store_p.storage_engine(), &status)) {
      std::fprintf(stderr, "E19: engine is not paged?\n");
      return 1;
    }
    Check(status.io_error);

    const double budget_bytes =
        static_cast<double>(pool_pages * kPageBytes);
    const double footprint =
        static_cast<double>(status.disk_payload_bytes) / budget_bytes;
    const double faults_per_drain =
        drains == 0 ? 0.0
                    : static_cast<double>(faults) / static_cast<double>(drains);
    // A store-wide recompute over the warehouse image would sweep every
    // page once; a drain proportional to its delta must cost less.
    const double sweep_ratio =
        faults_per_drain == 0.0
            ? static_cast<double>(status.pages_total)
            : static_cast<double>(status.pages_total) / faults_per_drain;
    const int64_t writeback =
        warehouse_p.costs().store_writeback_bytes.load(
            std::memory_order_relaxed);

    if (first_pool) {
      footprint_ok = footprint >= kFootprintFloor;
      first_pool = false;
    }
    if (worst_delta_ratio == 0.0 || sweep_ratio < worst_delta_ratio) {
      worst_delta_ratio = sweep_ratio;
    }
    if (status.pages_resident > status.pool_pages) {
      std::fprintf(stderr,
                   "E19: pool over budget after drain (%llu > %llu)\n",
                   static_cast<unsigned long long>(status.pages_resident),
                   static_cast<unsigned long long>(status.pool_pages));
      return 1;
    }

    table.Row({Num(static_cast<int64_t>(pool_pages)),
               Num(static_cast<int64_t>(status.objects)),
               Num(static_cast<int64_t>(status.pages_total)),
               Ratio(footprint), Micros(faults_per_drain),
               Ratio(sweep_ratio), Num(writeback / 1024),
               Micros(drains == 0 ? 0.0 : drain_micros / drains)});
    json.Record({{"pool_pages", Num(static_cast<int64_t>(pool_pages))},
                 {"page_bytes", Num(static_cast<int64_t>(kPageBytes))},
                 {"objects", Num(static_cast<int64_t>(status.objects))},
                 {"pages_total", Num(static_cast<int64_t>(status.pages_total))},
                 {"disk_payload_bytes",
                  Num(static_cast<int64_t>(status.disk_payload_bytes))},
                 {"footprint_ratio", Micros(footprint)},
                 {"faults_per_drain", Micros(faults_per_drain)},
                 {"sweep_ratio", Micros(sweep_ratio)},
                 {"writeback_bytes", Num(writeback)},
                 {"drain_us",
                  Micros(drains == 0 ? 0.0 : drain_micros / drains)}});
  }

  std::printf("\n");
  if (!footprint_ok) {
    std::fprintf(stderr,
                 "E19 FAILED: smallest pool's footprint ratio is below "
                 "%.1fx — the store fits in RAM and proves nothing\n",
                 kFootprintFloor);
    return 1;
  }
  if (worst_delta_ratio < kDeltaFloor) {
    std::fprintf(stderr,
                 "E19 FAILED: drain faults came within %.2fx of a full "
                 "page sweep (floor %.1fx) — maintenance is not "
                 "delta-proportional\n",
                 worst_delta_ratio, kDeltaFloor);
    return 1;
  }
  std::printf(
      "E19 ok: beyond-RAM footprint >= %.1fx pool, drains undercut the "
      "full sweep by >= %.2fx\n",
      kFootprintFloor, worst_delta_ratio);
  return 0;
}
