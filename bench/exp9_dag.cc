// E9 — DAG bases (§6, second relaxation).
//
// Paper claim: on DAGs "there may be more than one path between two
// objects. Therefore, the actual implementation of the algorithm, e.g.,
// computing ancestor(X,p), is more difficult."
//
// Comparison: identical layer structure built as a tree (min_parents =
// max_parents = 1) vs as a DAG (1..3 parents); the general maintainer
// tracks both, and we report per-update cost plus the average number of
// derivation paths per object.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/general_maintainer.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "oem/store.h"
#include "path/navigate.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "workload/dag_gen.h"

int main() {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  const size_t kRounds = 200;
  std::printf(
      "E9: maintenance on tree vs DAG bases (general maintainer)\n"
      "layered graph, levels=3, width=24; %zu edge/value updates\n\n",
      kRounds);

  TablePrinter table({"base", "edges", "avg paths", "us/update",
                      "candidates", "correct"});

  for (bool dag : {false, true}) {
    ObjectStore store;
    DagGenOptions options;
    options.levels = 3;
    options.width = 24;
    options.min_parents = 1;
    options.max_parents = dag ? 3 : 1;
    options.seed = 21;
    auto generated = GenerateDag(&store, options);
    bench::Check(generated.status().ok() ? Status::Ok()
                                         : generated.status());

    // Average number of derivation paths of the leaves.
    double total_paths = 0;
    for (const Oid& leaf : generated->layers[2]) {
      total_paths +=
          static_cast<double>(PathsFromTo(store, generated->root, leaf, 64).size());
    }
    double avg_paths =
        total_paths / static_cast<double>(generated->layers[2].size());

    auto def = ViewDefinition::Parse(
        DagViewDefinition("DV", generated->root, 2, 3, 50));
    bench::Check(def.status().ok() ? Status::Ok() : def.status());
    ObjectStore view_store;
    MaterializedView view(&view_store, *def);
    bench::Check(view.Initialize(store));
    GeneralMaintainer maintainer(&view, &store, *def, generated->root);
    store.AddListener(&maintainer);

    Random rng(5);
    const auto& layer0 = generated->layers[0];
    const auto& layer1 = generated->layers[1];
    const auto& leaves = generated->layers[2];
    Stopwatch watch;
    for (size_t round = 0; round < kRounds; ++round) {
      if (round % 2 == 0) {
        const Oid& parent = layer0[rng.Uniform(layer0.size())];
        const Oid& child = layer1[rng.Uniform(layer1.size())];
        const Object* parent_obj = store.Get(parent);
        if (parent_obj->children().Contains(child)) {
          // Keep every node derivable: skip deleting a node's last parent.
          if (store.Parents(child).size() > 1) {
            bench::Check(store.Delete(parent, child));
          }
        } else {
          bench::Check(store.Insert(parent, child));
        }
      } else {
        const Oid& leaf = leaves[rng.Uniform(leaves.size())];
        bench::Check(store.Modify(leaf, Value::Int(rng.UniformInt(0, 99))));
      }
    }
    double us = static_cast<double>(watch.ElapsedMicros()) / kRounds;
    bench::Check(maintainer.last_status());

    auto truth = EvaluateView(store, *def);
    bool correct = truth.ok() && view.BaseMembers() == *truth;
    char avg_buffer[32];
    std::snprintf(avg_buffer, sizeof(avg_buffer), "%.2f", avg_paths);
    table.Row({dag ? "DAG" : "tree", Num(generated->edge_count), avg_buffer,
               Micros(us), Num(maintainer.stats().candidates_checked),
               correct ? "yes" : "NO"});
  }

  std::printf(
      "\nExpected shape (paper §6): the DAG carries several derivations per\n"
      "object, so candidate re-derivation examines more paths and costs\n"
      "more per update than the tree of identical layer structure.\n");
  return 0;
}
