// E16 — Recovery: restart cost from checkpoint + WAL vs full §4.4 recompute.
//
// Builds a deep source tree, runs a durable warehouse (WAL + checkpoints)
// through a modify-heavy stream, then kills it and measures how long a
// fresh warehouse takes to come back via EnableDurability — against the
// §4.4 baseline of redefining every view from scratch over the live source.
// Four restart shapes:
//
//   clean-nocache checkpoint was the last action, no §5.2 cache; recovery
//                 adopts the checkpoint image verbatim (zero source queries)
//   clean-full    same but with kFull aux caches; the corridor covers most
//                 of a deep tree, so restoring its image costs about what
//                 rebuilding it does — reported for honesty, not headline
//   committed     a drained tail follows the checkpoint; recovery redoes
//                 the logged view deltas locally (still zero source queries)
//   uncommitted   the tail was accepted but never drained; recovery replays
//                 the logged events through live maintenance
//
// Every configuration cross-checks the recovered views against the
// recompute baseline, reports the speedup, and the run fails (exit 1) when
// the best ratio drops below the floor: 5x in full mode, 1.5x with --smoke
// (smaller tree, CI-sized). Full mode also reports the logging overhead of
// each fsync policy on drain throughput.
//
// Emits one newline-delimited JSON record per configuration; --json=PATH
// redirects the records to a file.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "oem/serialize.h"
#include "oem/store.h"
#include "storage/wal.h"
#include "util/stopwatch.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

int main(int argc, char** argv) {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  // Restart cost tracks the checkpoint + log, recompute cost tracks the
  // source — the gap is the point, so full mode uses a source big enough
  // (levels=6 → ~56k objects) for the asymptote to show.
  const size_t kLevels = smoke ? 5 : 6;
  const size_t kFanout = 6;
  const size_t kViews = smoke ? 2 : 4;
  const size_t kUpdates = smoke ? 400 : 2000;
  const size_t kDrainEvery = 64;
  // Periodic checkpoints keep the replayable log short: WriteCheckpoint
  // rolls the segment and retires everything the previous checkpoint
  // already covers, so restart cost tracks the checkpoint interval, not
  // the total history. The interval must exceed the tail, or the tail's
  // last drain auto-checkpoints and the committed shape degenerates into
  // clean restart (nothing left to redo).
  const uint64_t kCheckpointInterval = smoke ? 100 : 500;
  const double kFloor = smoke ? 1.5 : 5.0;
  const uint64_t kTreeSeed = 211;
  const uint64_t kUpdateSeed = 223;
  const size_t kTail = smoke ? 32 : 256;

  // The cache dimension matters: a §5.2 kFull corridor covers most of a
  // deep tree, so restoring its image costs about what rebuilding it does —
  // the headline speedup is the uncached shape, where recovery skips the
  // whole §4.4 evaluation and recompute cannot.
  struct Shape {
    const char* label;
    size_t tail;      // updates applied after the checkpoint
    bool drain_tail;  // drained (committed deltas) or abandoned (events)
    Warehouse::CacheMode cache;
  };
  std::vector<Shape> shapes = {
      {"clean-nocache", 0, true, Warehouse::CacheMode::kNone},
      {"clean-full", 0, true, Warehouse::CacheMode::kFull},
      {"committed", kTail, true, Warehouse::CacheMode::kNone},
      {"uncommitted", kTail, false, Warehouse::CacheMode::kNone}};

  std::printf(
      "E16: recovery — checkpoint+WAL restart vs full recompute (%s)\n"
      "tree levels=%zu fanout=%zu, %zu views, %zu updates, floor %.1fx\n\n",
      smoke ? "smoke" : "full", kLevels, kFanout, kViews, kUpdates, kFloor);

  JsonLines json(json_path, "gsv.exp16.v1", kTreeSeed);
  TablePrinter table({"shape", "redo", "replay", "src_qry", "recover_us",
                      "recomp_us", "ratio"});
  double best_ratio = 0.0;

  for (const Shape& shape : shapes) {
    std::string dir = std::string("/tmp/gsv_exp16_") + shape.label;
    std::filesystem::remove_all(dir);

    ObjectStore source;
    TreeGenOptions tree_options;
    tree_options.levels = kLevels;
    tree_options.fanout = kFanout;
    tree_options.seed = kTreeSeed;
    auto tree = GenerateTree(&source, tree_options);
    Check(tree.status());

    std::vector<std::string> definitions;
    for (size_t v = 0; v < kViews; ++v) {
      definitions.push_back(TreeViewDefinition(
          "WV" + std::to_string(v), tree->root, 2, kLevels,
          static_cast<int64_t>(10 + v * 20)));
    }

    // ---- The durable run, killed after the workload.
    {
      ObjectStore store;
      Warehouse warehouse(&store);
      Check(warehouse.ConnectSource(&source, tree->root,
                                    ReportingLevel::kWithValues));
      warehouse.set_deferred(true);
      Warehouse::DurabilityOptions options;
      options.dir = dir;
      options.fsync = FsyncPolicy::kNever;  // timing the restart, not the disk
      options.checkpoint_interval_events = kCheckpointInterval;
      Check(warehouse.EnableDurability(options));
      for (const std::string& definition : definitions) {
        Check(warehouse.DefineView(definition, shape.cache));
      }

      UpdateGenOptions gen_options;
      gen_options.seed = kUpdateSeed;
      gen_options.p_modify = 0.6;
      gen_options.p_insert = 0.2;
      gen_options.p_delete = 0.2;
      UpdateGenerator generator(&source, tree->root, gen_options);

      size_t before = kUpdates - shape.tail;
      for (size_t applied = 0; applied < before; applied += kDrainEvery) {
        Check(generator.Run(std::min(kDrainEvery, before - applied)).status());
        Check(warehouse.ProcessPendingBatch());
      }
      Check(warehouse.WriteCheckpoint());
      for (size_t applied = 0; applied < shape.tail; applied += kDrainEvery) {
        Check(generator.Run(std::min(kDrainEvery, shape.tail - applied))
                  .status());
        if (shape.drain_tail) Check(warehouse.ProcessPendingBatch());
      }
      // Abandoned here: the destructor only detaches the monitor, exactly
      // what a process death leaves behind.
    }

    // Both sides are measured min-of-N: single-shot restarts on a loaded
    // box swing 2-3x, and a floor check needs the intrinsic cost, not the
    // scheduler's mood. Each restart rep recovers from a fresh copy of the
    // killed directory (recovery itself appends to the log).
    const int kReps = 3;

    // ---- §4.4 baseline: define every view from scratch by traversal.
    // The paper's full recompute walks the source graph; evaluate against
    // an index-free replica of the final source so PR4's label-path index
    // doesn't quietly subsidize the baseline.
    ObjectStore::Options plain_options;
    plain_options.enable_label_index = false;
    ObjectStore source_plain(plain_options);
    Check(StoreFromString(StoreToString(source), &source_plain));
    int64_t recompute_micros = 0;
    std::unique_ptr<ObjectStore> store_full;
    std::unique_ptr<Warehouse> full;
    for (int rep = 0; rep < kReps; ++rep) {
      store_full = std::make_unique<ObjectStore>();
      full = std::make_unique<Warehouse>(store_full.get());
      Check(full->ConnectSource(&source_plain, tree->root,
                                ReportingLevel::kWithValues));
      Stopwatch recompute;
      for (const std::string& definition : definitions) {
        Check(full->DefineView(definition, shape.cache));
      }
      int64_t micros = recompute.ElapsedMicros();
      if (rep == 0 || micros < recompute_micros) recompute_micros = micros;
    }

    // ---- Restart via checkpoint + WAL.
    int64_t recover_micros = 0;
    Warehouse::RecoveryReport report;
    int64_t recovery_queries = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      std::string rep_dir = dir + "_rep";
      std::filesystem::remove_all(rep_dir);
      std::filesystem::copy(dir, rep_dir,
                            std::filesystem::copy_options::recursive);
      ObjectStore store_recovered;
      Warehouse recovered(&store_recovered);
      Check(recovered.ConnectSource(&source, tree->root,
                                    ReportingLevel::kWithValues));
      recovered.set_deferred(true);
      Warehouse::DurabilityOptions options;
      options.dir = rep_dir;
      options.fsync = FsyncPolicy::kNever;
      Stopwatch recover;
      Check(recovered.EnableDurability(options));
      int64_t micros = recover.ElapsedMicros();
      if (rep == 0 || micros < recover_micros) recover_micros = micros;
      report = recovered.recovery_report();
      recovery_queries = recovered.costs().source_queries.load() +
                         recovered.costs().cache_maintenance_queries.load();

      // Every rep's recovered warehouse must agree with the recompute
      // baseline.
      for (size_t v = 0; v < kViews; ++v) {
        std::string name = "WV" + std::to_string(v);
        if (recovered.view(name)->BaseMembers() !=
            full->view(name)->BaseMembers()) {
          std::fprintf(stderr, "%s: recovered %s diverges from recompute\n",
                       shape.label, name.c_str());
          return 1;
        }
      }
      std::filesystem::remove_all(rep_dir);
    }

    double ratio = recover_micros > 0 ? static_cast<double>(recompute_micros) /
                                            static_cast<double>(recover_micros)
                                      : 0.0;
    if (ratio > best_ratio) best_ratio = ratio;
    table.Row({shape.label, Num(report.deltas_redone),
               Num(report.events_replayed), Num(recovery_queries),
               Num(recover_micros), Num(recompute_micros), Ratio(ratio)});
    json.Record({{"exp", Quoted("exp16_recovery")},
                 {"mode", Quoted(smoke ? "smoke" : "full")},
                 {"shape", Quoted(shape.label)},
                 {"levels", Num(kLevels)},
                 {"fanout", Num(kFanout)},
                 {"views", Num(kViews)},
                 {"updates", Num(kUpdates)},
                 {"tail", Num(shape.tail)},
                 {"views_restored", Num(report.views_restored)},
                 {"deltas_redone", Num(report.deltas_redone)},
                 {"events_replayed", Num(report.events_replayed)},
                 {"recovery_source_queries", Num(recovery_queries)},
                 {"recover_micros", Num(recover_micros)},
                 {"recompute_micros", Num(recompute_micros)},
                 {"speedup", Micros(ratio)}});
    std::filesystem::remove_all(dir);
  }

  // ---- Logging overhead: drain throughput per fsync policy (full mode).
  if (!smoke) {
    std::printf("\nlogging overhead (500 updates, batched drains)\n");
    TablePrinter overhead({"policy", "drain_us", "upd/sec"});
    struct PolicyRow {
      const char* label;
      bool durable;
      FsyncPolicy fsync;
    };
    std::vector<PolicyRow> policies = {{"off", false, FsyncPolicy::kNever},
                                       {"never", true, FsyncPolicy::kNever},
                                       {"commit", true, FsyncPolicy::kCommit},
                                       {"always", true, FsyncPolicy::kAlways}};
    for (const PolicyRow& policy : policies) {
      std::string dir = std::string("/tmp/gsv_exp16_fsync_") + policy.label;
      std::filesystem::remove_all(dir);
      ObjectStore source;
      TreeGenOptions tree_options;
      tree_options.levels = 4;
      tree_options.fanout = 4;
      tree_options.seed = kTreeSeed;
      auto tree = GenerateTree(&source, tree_options);
      Check(tree.status());
      ObjectStore store;
      Warehouse warehouse(&store);
      Check(warehouse.ConnectSource(&source, tree->root,
                                    ReportingLevel::kWithValues));
      warehouse.set_deferred(true);
      if (policy.durable) {
        Warehouse::DurabilityOptions options;
        options.dir = dir;
        options.fsync = policy.fsync;
        Check(warehouse.EnableDurability(options));
      }
      Check(warehouse.DefineView(
          TreeViewDefinition("WV", tree->root, 2, 4, 50),
          Warehouse::CacheMode::kFull));
      UpdateGenOptions gen_options;
      gen_options.seed = kUpdateSeed;
      UpdateGenerator generator(&source, tree->root, gen_options);
      const size_t kOverheadUpdates = 500;
      Stopwatch drain;
      for (size_t applied = 0; applied < kOverheadUpdates;
           applied += kDrainEvery) {
        Check(generator
                  .Run(std::min(kDrainEvery, kOverheadUpdates - applied))
                  .status());
        Check(warehouse.ProcessPendingBatch());
      }
      int64_t drain_micros = drain.ElapsedMicros();
      double rate = drain_micros > 0 ? kOverheadUpdates * 1e6 /
                                           static_cast<double>(drain_micros)
                                     : 0.0;
      overhead.Row({policy.label, Num(drain_micros),
                    Num(static_cast<int64_t>(rate))});
      json.Record({{"exp", Quoted("exp16_recovery_overhead")},
                   {"policy", Quoted(policy.label)},
                   {"updates", Num(kOverheadUpdates)},
                   {"drain_micros", Num(drain_micros)},
                   {"updates_per_sec", Micros(rate)}});
      std::filesystem::remove_all(dir);
    }
  }

  if (best_ratio < kFloor) {
    std::fprintf(stderr,
                 "\nFAIL: best recovery speedup %.2fx is below the %.1fx "
                 "floor\n",
                 best_ratio, kFloor);
    return 1;
  }
  std::printf("\nbest recovery speedup %.2fx (floor %.1fx); all shapes "
              "matched the recompute baseline\n",
              best_ratio, kFloor);
  return 0;
}
