// E15 — Label/path index speedup on navigation-heavy maintenance.
//
// Sweeps two tree shapes — deep (levels=9, the ancestor/eval-heavy regime
// the index targets) and high-fanout (wide frontiers, many siblings per
// label) — and runs the identical pre-generated update stream through an
// Algorithm 1 maintainer twice: once with the label index enabled (postings
// probes) and once disabled (pure graph traversal). The stream removes and
// restores condition witnesses (bound-crossing modifies, leaf-edge
// delete/insert churn), so every event triggers the §4.3 primitives:
// ancestor() climbs from the touched leaf and eval() re-checks the WHERE
// subtree of each candidate.
//
// Reported per shape: maintenance wall time, query (full re-evaluation)
// latency, and the traversal/probe counter split. The final view members
// must be identical between the two runs — the index is only a speedup,
// never an answer change.
//
// Acceptance bar: on the deep shape, index-on maintenance must clear 5x
// index-off. `--smoke` runs a scaled-down sweep with a loose 1.5x bar and a
// nonzero exit below it (wired into ci.sh as the perf-smoke stage).

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/algorithm1.h"
#include "core/base_accessor.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "workload/tree_gen.h"

namespace {

struct Shape {
  const char* name;
  size_t levels;
  size_t fanout;
  size_t label_variety;
  size_t sel_levels;
  int64_t bound;
  size_t updates;
  size_t query_reps;
};

struct RunResult {
  int64_t maint_micros = 0;
  int64_t query_micros = 0;
  int64_t edges_traversed = 0;
  int64_t index_probes = 0;
  int64_t index_fallbacks = 0;
  std::vector<std::string> members;
};

// Pre-generates a replayable stream against the scratch tree: pairs of
// events on a currently-satisfying "age" leaf — either a modify that flips
// it across the condition bound and a modify that flips it back, or a
// delete of its edge followed by the re-insert. The first event of every
// pair is a satisfying -> violating (or witness-removing) transition, the
// case where Algorithm 1 must re-evaluate the candidate's whole condition
// subtree; the second restores the scratch state so the stream replays
// identically on any store built from the same seed.
std::vector<gsv::Update> MakeStream(gsv::ObjectStore* scratch,
                                    const gsv::GeneratedTree& tree,
                                    size_t updates, int64_t bound,
                                    uint64_t seed) {
  using namespace gsv;  // NOLINT(build/namespaces)
  std::mt19937_64 rng(seed);
  std::vector<Update> stream;
  stream.reserve(updates);
  while (stream.size() + 1 < updates) {
    const Oid& leaf = tree.leaves[rng() % tree.leaves.size()];
    const Object* object = scratch->Get(leaf);
    if (object == nullptr || !object->IsAtomic()) continue;
    if (object->value().AsInt() > bound) continue;  // want a current witness
    if (rng() % 10 < 7) {
      Value out = Value::Int(bound + 1 + static_cast<int64_t>(rng() % 10));
      Value back = Value::Int(static_cast<int64_t>(rng() % (bound + 1)));
      stream.push_back(Update::Modify(leaf, object->value(), out));
      bench::Check(scratch->Apply(stream.back()));
      stream.push_back(Update::Modify(leaf, out, back));
      bench::Check(scratch->Apply(stream.back()));
    } else {
      std::vector<Oid> parents = scratch->Parents(leaf);
      if (parents.empty()) continue;
      const Oid& parent = parents[rng() % parents.size()];
      stream.push_back(Update::Delete(parent, leaf));
      bench::Check(scratch->Apply(stream.back()));
      stream.push_back(Update::Insert(parent, leaf));
      bench::Check(scratch->Apply(stream.back()));
    }
  }
  return stream;
}

RunResult RunVariant(const Shape& shape, bool enable_index,
                     const std::vector<gsv::Update>& stream) {
  using namespace gsv;  // NOLINT(build/namespaces)
  ObjectStore::Options options;
  options.enable_label_index = enable_index;
  ObjectStore base(options);
  TreeGenOptions tree_options;
  tree_options.levels = shape.levels;
  tree_options.fanout = shape.fanout;
  tree_options.label_variety = shape.label_variety;
  tree_options.seed = 151;
  auto tree = GenerateTree(&base, tree_options);
  bench::Check(tree.status());

  std::string definition = TreeViewDefinition(
      "E15", tree->root, shape.sel_levels, shape.levels, shape.bound);
  auto def = ViewDefinition::Parse(definition);
  bench::Check(def.status());

  ObjectStore view_store;
  MaterializedView view(&view_store, *def);
  bench::Check(view.Initialize(base));
  LocalAccessor accessor(&base);
  Algorithm1Maintainer maintainer(&view, &accessor, *def, tree->root);
  base.AddListener(&maintainer);

  base.metrics().Reset();
  RunResult result;
  Stopwatch maint;
  for (const Update& update : stream) {
    bench::Check(base.Apply(update));
  }
  result.maint_micros = maint.ElapsedMicros();
  bench::Check(maintainer.last_status());

  Stopwatch query;
  for (size_t i = 0; i < shape.query_reps; ++i) {
    auto members = EvaluateView(base, *def);
    bench::Check(members.status());
  }
  result.query_micros = query.ElapsedMicros();

  result.edges_traversed = base.metrics().edges_traversed.load();
  result.index_probes = base.metrics().index_probes.load();
  result.index_fallbacks = base.metrics().index_fallbacks.load();
  for (const Oid& member : view.BaseMembers()) {
    result.members.push_back(member.str());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // The deep shape is the acceptance target: condition paths of length 8
  // over ~2k-leaf condition subtrees make every witness-removing event an
  // ancestor climb plus a full subtree re-evaluation.
  const Shape kFull[] = {
      {"deep", 9, 3, 1, 1, 50, 1200, 100},
      {"fanout", 3, 24, 1, 1, 50, 800, 100},
  };
  const Shape kSmoke[] = {
      {"deep", 8, 2, 1, 1, 50, 300, 20},
      {"fanout", 3, 12, 1, 1, 50, 300, 20},
  };
  const Shape* shapes = smoke ? kSmoke : kFull;
  const double bar = smoke ? 1.5 : 5.0;

  std::printf(
      "E15: label/path index speedup (maintenance + query), %s sweep\n\n",
      smoke ? "smoke" : "full");

  JsonLines json(json_path, "gsv.exp15.v1", /*seed=*/151);
  TablePrinter table({"shape", "index", "maint_us", "query_us", "edges",
                      "probes", "fallbacks", "speedup"});

  bool ok = true;
  for (int s = 0; s < 2; ++s) {
    const Shape& shape = shapes[s];
    // One scratch world generates the stream both variants replay.
    ObjectStore scratch;
    TreeGenOptions tree_options;
    tree_options.levels = shape.levels;
    tree_options.fanout = shape.fanout;
    tree_options.label_variety = shape.label_variety;
    tree_options.seed = 151;
    auto tree = GenerateTree(&scratch, tree_options);
    Check(tree.status());
    std::vector<Update> stream =
        MakeStream(&scratch, *tree, shape.updates, shape.bound, 157);

    RunResult off = RunVariant(shape, /*enable_index=*/false, stream);
    RunResult on = RunVariant(shape, /*enable_index=*/true, stream);

    if (on.members != off.members) {
      std::fprintf(stderr, "%s: view members diverged (on=%zu, off=%zu)\n",
                   shape.name, on.members.size(), off.members.size());
      return 1;
    }

    double maint_speedup =
        on.maint_micros > 0
            ? static_cast<double>(off.maint_micros) / on.maint_micros
            : 0.0;
    double query_speedup =
        on.query_micros > 0
            ? static_cast<double>(off.query_micros) / on.query_micros
            : 0.0;

    table.Row({shape.name, "off", Num(off.maint_micros), Num(off.query_micros),
               Num(off.edges_traversed), Num(off.index_probes),
               Num(off.index_fallbacks), Ratio(1.0)});
    table.Row({shape.name, "on", Num(on.maint_micros), Num(on.query_micros),
               Num(on.edges_traversed), Num(on.index_probes),
               Num(on.index_fallbacks), Ratio(maint_speedup)});
    json.Record({{"exp", Quoted("exp15_index_speedup")},
                 {"shape", Quoted(shape.name)},
                 {"levels", Num(shape.levels)},
                 {"fanout", Num(shape.fanout)},
                 {"updates", Num(stream.size())},
                 {"maint_micros_off", Num(off.maint_micros)},
                 {"maint_micros_on", Num(on.maint_micros)},
                 {"query_micros_off", Num(off.query_micros)},
                 {"query_micros_on", Num(on.query_micros)},
                 {"edges_off", Num(off.edges_traversed)},
                 {"edges_on", Num(on.edges_traversed)},
                 {"index_probes_on", Num(on.index_probes)},
                 {"maint_speedup", Micros(maint_speedup)},
                 {"query_speedup", Micros(query_speedup)}});

    std::printf("%s: maintenance %s, query %s (bar %.1fx on deep)\n",
                shape.name, Ratio(maint_speedup).c_str(),
                Ratio(query_speedup).c_str(), bar);
    if (std::strcmp(shape.name, "deep") == 0 && maint_speedup < bar) {
      std::fprintf(stderr, "deep maintenance speedup %s below the %.1fx bar\n",
                   Ratio(maint_speedup).c_str(), bar);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
