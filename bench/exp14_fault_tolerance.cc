// E14 — Fault tolerance: maintenance throughput and resync cost vs the
// channel fault rate.
//
// Sweeps the injected fault rate (applied equally to delivery drops,
// delivery duplicates and query-back failures) over a modify-heavy tree
// stream drained per event and in batches. Reports maintenance throughput,
// how often views quarantined and resynced, and the terminal recovery cost
// (heal + ResyncStaleViews). Every run ends with a consistency self-check:
// after recovery, each view must match a from-scratch evaluation of the
// final source — the convergence guarantee the fault-tolerance layer makes.
//
// Emits one newline-delimited JSON record per configuration; --json=PATH
// redirects the records to a file.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "warehouse/fault_injector.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

int main(int argc, char** argv) {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const size_t kTotalUpdates = 4096;
  const size_t kViews = 4;
  const double kFaultRates[] = {0.0, 0.02, 0.05, 0.10, 0.20};
  const size_t kBatchSizes[] = {1, 256};  // per-event vs batched drains

  std::printf(
      "E14: fault tolerance — throughput and resync cost vs fault rate\n"
      "%zu updates, %zu views, level-2 events; fault rate applies to event\n"
      "drops, event duplicates and wrapper call failures alike\n\n",
      kTotalUpdates, kViews);

  JsonLines json(json_path, "gsv.exp14.v1", /*seed=*/131);
  TablePrinter table({"fault%", "batch", "drain_us", "upd/sec", "quarant",
                      "resyncs", "retries", "recover_us"});

  for (double fault_rate : kFaultRates) {
    for (size_t batch_size : kBatchSizes) {
      // Fresh, identically-seeded world per configuration.
      ObjectStore source;
      TreeGenOptions tree_options;
      tree_options.levels = 4;
      tree_options.fanout = 5;
      tree_options.seed = 131;
      auto tree = GenerateTree(&source, tree_options);
      Check(tree.status());

      ObjectStore warehouse_store;
      Warehouse warehouse(&warehouse_store);
      Check(warehouse.ConnectSource(&source, tree->root,
                                    ReportingLevel::kWithValues));
      for (size_t v = 0; v < kViews; ++v) {
        Check(warehouse.DefineView(TreeViewDefinition(
            "WV" + std::to_string(v), tree->root, 2, 4,
            static_cast<int64_t>(10 + v * 20))));
      }
      warehouse.costs().Reset();

      FaultProfile profile;
      profile.seed = 197;
      profile.wrapper_fail_rate = fault_rate;
      profile.wrapper_fail_burst = 6;  // outlasts the retry budget
      profile.event_drop_rate = fault_rate;
      profile.event_duplicate_rate = fault_rate;
      FaultInjector injector(profile);
      Check(warehouse.SetFaultInjector("source1", &injector));

      const bool batched = batch_size > 1;
      if (batched) warehouse.set_deferred(true);

      UpdateGenOptions gen_options;
      gen_options.seed = 137;
      gen_options.p_modify = 0.6;
      gen_options.p_insert = 0.2;
      gen_options.p_delete = 0.2;
      UpdateGenerator generator(&source, tree->root, gen_options);

      int64_t drain_micros = 0;
      for (size_t applied = 0; applied < kTotalUpdates;
           applied += batch_size) {
        size_t burst = std::min(batch_size, kTotalUpdates - applied);
        Stopwatch drain;  // per-event mode maintains inside Run()
        Check(generator.Run(burst).status());
        if (batched) Check(warehouse.ProcessPendingBatch());
        drain_micros += drain.ElapsedMicros();
      }

      // Terminal recovery: heal the channel and resync quarantined views.
      Stopwatch recover;
      injector.Heal();
      Check(warehouse.ResyncStaleViews());
      int64_t recover_micros = recover.ElapsedMicros();

      // Convergence self-check: recovered views must match ground truth.
      if (warehouse.stale_view_count() != 0) {
        std::fprintf(stderr, "views still stale after heal+resync\n");
        return 1;
      }
      for (size_t v = 0; v < kViews; ++v) {
        ConsistencyReport report = CheckViewConsistency(
            *warehouse.view("WV" + std::to_string(v)), source);
        if (!report.consistent) {
          std::fprintf(stderr, "WV%zu inconsistent: %s\n", v,
                       report.ToString().c_str());
          return 1;
        }
      }

      double rate = drain_micros > 0
                        ? kTotalUpdates * 1e6 / static_cast<double>(drain_micros)
                        : 0.0;
      const WarehouseCosts& costs = warehouse.costs();
      table.Row({Num(static_cast<int64_t>(fault_rate * 100)), Num(batch_size),
                 Num(drain_micros), Num(static_cast<int64_t>(rate)),
                 Num(costs.views_quarantined), Num(costs.view_resyncs),
                 Num(costs.wrapper_retries), Num(recover_micros)});
      json.Record({{"exp", Quoted("exp14_fault_tolerance")},
                   {"fault_rate", Micros(fault_rate)},
                   {"batch", Num(batch_size)},
                   {"updates", Num(kTotalUpdates)},
                   {"views", Num(kViews)},
                   {"drain_micros", Num(drain_micros)},
                   {"updates_per_sec", Micros(rate)},
                   {"events_duplicate_dropped",
                    Num(costs.events_duplicate_dropped)},
                   {"events_gap_detected", Num(costs.events_gap_detected)},
                   {"events_buffered_stale", Num(costs.events_buffered_stale)},
                   {"wrapper_retries", Num(costs.wrapper_retries)},
                   {"wrapper_failures", Num(costs.wrapper_failures)},
                   {"breaker_trips", Num(costs.breaker_trips)},
                   {"views_quarantined", Num(costs.views_quarantined)},
                   {"view_resyncs", Num(costs.view_resyncs)},
                   {"recover_micros", Num(recover_micros)}});
    }
  }

  std::printf(
      "\nall configurations converged to ground truth after heal+resync\n");
  return 0;
}
