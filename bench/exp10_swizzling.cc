// E10 — Edge swizzling and view-local query performance (§3.2).
//
// Paper claim: "when the materialized view is stored at a site different
// from the base databases ... edge swizzling may enhance query performance
// by allowing local access to the referenced objects", and it "makes it
// easier to enforce the WITHIN MV clause".
//
// Setup: a two-level view (professors plus their students, via a cluster of
// two views sharing delegates is overkill here — we use one view over a
// two-level select) stored at a remote site. A path query over the view is
// driven by a walker that follows delegate-local edges for free and pays a
// metered remote fetch for every base OID it must resolve.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/materialized_view.h"
#include "core/swizzle.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "workload/tree_gen.h"

namespace gsv {
namespace {

// Walks `path` from `start` over the view store, falling back to the base
// store for objects that are not local; counts remote fetches.
size_t WalkCountingRemote(const ObjectStore& view_store,
                          const ObjectStore& base, const Oid& start,
                          const Path& path, int64_t* remote_fetches) {
  OidSet frontier;
  frontier.Insert(start);
  for (size_t i = 0; i < path.size(); ++i) {
    OidSet next;
    for (const Oid& oid : frontier) {
      const Object* object = view_store.Get(oid);
      if (object == nullptr) {
        ++*remote_fetches;
        object = base.Get(oid);
      }
      if (object == nullptr || !object->IsSet()) continue;
      for (const Oid& child : object->children()) {
        const Object* child_object = view_store.Get(child);
        if (child_object == nullptr) {
          ++*remote_fetches;
          child_object = base.Get(child);
        }
        if (child_object != nullptr &&
            child_object->label() == path.label(i)) {
          next.Insert(child);
        }
      }
    }
    frontier = std::move(next);
  }
  return frontier.size();
}

}  // namespace
}  // namespace gsv

int main() {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  std::printf(
      "E10: swizzled vs unswizzled materialized views at a remote site\n"
      "view: all depth-1 nodes; query: traverse two levels inside the "
      "view\n\n");

  TablePrinter table({"fanout", "swizzled", "results", "remote/query",
                      "us/query"});

  for (size_t fanout : {4, 8, 16}) {
    for (bool swizzled : {false, true}) {
      ObjectStore base;
      TreeGenOptions options;
      options.levels = 3;
      options.fanout = fanout;
      options.seed = 3;
      auto tree = GenerateTree(&base, options);
      bench::Check(tree.status().ok() ? Status::Ok() : tree.status());

      // Materialize depth-1 AND depth-2 nodes into one remote store so a
      // two-level traversal can stay local when swizzled. Two views would
      // normally share a cluster; a single view per level suffices here.
      ObjectStore remote;
      MaterializedView::Options view_options;
      view_options.swizzle = swizzled;
      auto def1 = ViewDefinition::Parse(
          "define mview L1 as: SELECT " + tree->root.str() + ".n1_0 X");
      MaterializedView level1(&remote, *def1, view_options);
      bench::Check(level1.Initialize(base));
      // Expand level 2 into the same view via direct V_inserts (delegates
      // of the level-2 nodes, swizzle-aware because they share the view).
      const OidSet members = level1.BaseMembers();
      for (const Oid& member : members) {
        const Object* object = base.Get(member);
        for (const Oid& child : object->children()) {
          const Object* child_object = base.Get(child);
          if (child_object != nullptr) {
            bench::Check(level1.VInsert(*child_object));
          }
        }
      }

      const Path query_path = *Path::Parse("n1_0.n2_0");
      int64_t remote_fetches = 0;
      size_t results = 0;
      const int kIters = 200;
      Stopwatch watch;
      for (int i = 0; i < kIters; ++i) {
        results = WalkCountingRemote(remote, base, level1.view_oid(),
                                     query_path, &remote_fetches);
      }
      double us = static_cast<double>(watch.ElapsedMicros()) / kIters;

      table.Row({Num(fanout), swizzled ? "yes" : "no", Num(results),
                 Num(remote_fetches / kIters), Micros(us)});
    }
  }

  std::printf(
      "\nExpected shape (paper §3.2): with swizzling the traversal resolves\n"
      "view-internal edges locally and pays no remote fetches for them;\n"
      "unswizzled views pay one remote access per crossed edge.\n");
  return 0;
}
