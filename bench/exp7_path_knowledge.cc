// E7 — Path knowledge ("schema") screening (§5.2 closing remark).
//
// Paper claim: knowing that certain label chains can never occur at the
// source lets the warehouse skip updates without any query — e.g. if
// student objects never have salary children, a view over students is
// unaffected by all salary updates.
//
// Workload: a personnel tree where most churn happens on salary fields
// below secretaries; the maintained view watches students. Without
// knowledge the salary events pass label screening (salary is on the
// view's corridor); with knowledge they are dropped immediately.

#include <cstdio>

#include "bench/bench_util.h"
#include "oem/store.h"
#include "util/random.h"
#include "warehouse/warehouse.h"

namespace gsv {
namespace {

// people: half students (name, age, major), half secretaries (name, age,
// salary). View: students with small salaries — never satisfiable, but the
// warehouse cannot know that without schema knowledge.
Result<Oid> BuildPersonnel(ObjectStore* store, size_t people,
                           std::vector<Oid>* salaries) {
  Oid root("ROOT");
  GSV_RETURN_IF_ERROR(store->PutSet(root, "person"));
  Random rng(3);
  for (size_t i = 0; i < people; ++i) {
    std::string id = std::to_string(i);
    bool student = i % 2 == 0;
    Oid person(std::string(student ? "st" : "se") + id);
    Oid name("n" + id);
    Oid age("a" + id);
    GSV_RETURN_IF_ERROR(
        store->PutAtomic(name, "name", Value::Str("p" + id)));
    GSV_RETURN_IF_ERROR(
        store->PutAtomic(age, "age", Value::Int(rng.UniformInt(20, 60))));
    std::vector<Oid> children{name, age};
    if (!student) {
      Oid salary("s" + id);
      GSV_RETURN_IF_ERROR(store->PutAtomic(
          salary, "salary", Value::Int(rng.UniformInt(1000, 9000))));
      children.push_back(salary);
      salaries->push_back(salary);
    } else {
      Oid major("m" + id);
      GSV_RETURN_IF_ERROR(
          store->PutAtomic(major, "major", Value::Str("cs")));
      children.push_back(major);
    }
    GSV_RETURN_IF_ERROR(
        store->PutSet(person, student ? "student" : "secretary", children));
    GSV_RETURN_IF_ERROR(store->AddChildRaw(root, person));
  }
  return root;
}

}  // namespace
}  // namespace gsv

int main() {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  const size_t kPeople = 200;
  const size_t kUpdates = 1000;
  std::printf(
      "E7: path-knowledge screening (view over students, churn on\n"
      "secretary salaries); %zu salary modifies\n\n",
      kUpdates);

  TablePrinter table(
      {"knowledge", "queries", "screened", "local evts", "q/update"});

  for (bool with_knowledge : {false, true}) {
    ObjectStore source;
    std::vector<Oid> salaries;
    auto root = BuildPersonnel(&source, kPeople, &salaries);
    bench::Check(root.status().ok() ? Status::Ok() : root.status());

    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    bench::Check(warehouse.ConnectSource(&source, *root,
                                         ReportingLevel::kWithValues));
    bench::Check(warehouse.DefineView(
        "define mview ST as: SELECT ROOT.student X WHERE X.salary > 0"));
    if (with_knowledge) {
      PathKnowledge knowledge;
      knowledge.SetChildLabels("person", {"student", "secretary"});
      knowledge.SetChildLabels("student", {"name", "age", "major"});
      knowledge.SetChildLabels("secretary", {"name", "age", "salary"});
      warehouse.SetPathKnowledge(knowledge);
    }
    warehouse.costs().Reset();

    Random rng(17);
    for (size_t i = 0; i < kUpdates; ++i) {
      const Oid& salary = salaries[rng.Uniform(salaries.size())];
      bench::Check(
          source.Modify(salary, Value::Int(rng.UniformInt(1000, 9000))));
    }
    bench::Check(warehouse.last_status());

    const WarehouseCosts& costs = warehouse.costs();
    table.Row({with_knowledge ? "yes" : "no", Num(costs.source_queries),
               Num(costs.events_screened_out), Num(costs.events_local_only),
               Micros(static_cast<double>(costs.source_queries) /
                      static_cast<double>(kUpdates))});
  }

  std::printf(
      "\nExpected shape (paper §5.2): with the schema knowledge every\n"
      "salary event is screened without a query; without it, each one\n"
      "costs query-backs because 'salary' lies on the view's corridor.\n");
  return 0;
}
