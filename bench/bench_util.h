#ifndef GSV_BENCH_BENCH_UTIL_H_
#define GSV_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harnesses: fixed-width table printing
// in the style of the tables EXPERIMENTS.md records, and a tiny timing
// helper. (The micro-benchmarks use google-benchmark; the experiment
// binaries print domain-specific cost tables instead.)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/stopwatch.h"

namespace gsv::bench {

inline void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
void Check(const Result<T>& result) {
  if (!result.ok()) Check(result.status());
}

// Prints a header and rows with '|' separators, each column 12 wide.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    for (const std::string& column : columns_) {
      std::printf("| %12s ", column.c_str());
    }
    std::printf("|\n");
    for (size_t i = 0; i < columns_.size(); ++i) std::printf("|%s", "-------------:");
    std::printf("|\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (const std::string& cell : cells) {
      std::printf("| %12s ", cell.c_str());
    }
    std::printf("|\n");
  }

 private:
  std::vector<std::string> columns_;
};

// Newline-delimited JSON records for downstream plotting: one object per
// Record() call. Field values are pre-formatted — pass Num()/Micros() output
// for numbers and Quoted() output for strings. Every record leads with a
// `schema` tag (record-shape version, so mixed .jsonl files stay
// self-describing) and the workload `seed` (so any row can be re-run).
class JsonLines {
 public:
  // `path` empty: records go to stdout. Otherwise they append to the file.
  explicit JsonLines(const std::string& path = "",
                     std::string schema = "gsv.bench.v1", uint64_t seed = 0)
      : schema_(std::move(schema)), seed_(seed) {
    if (!path.empty()) {
      file_ = std::fopen(path.c_str(), "w");
      if (file_ == nullptr) {
        std::fprintf(stderr, "bench error: cannot open %s\n", path.c_str());
        std::exit(1);
      }
    }
  }
  ~JsonLines() {
    if (file_ != nullptr) std::fclose(file_);
  }
  JsonLines(const JsonLines&) = delete;
  JsonLines& operator=(const JsonLines&) = delete;

  void Record(
      const std::vector<std::pair<std::string, std::string>>& fields) {
    FILE* out = file_ != nullptr ? file_ : stdout;
    std::fprintf(out, "{\"schema\": \"%s\", \"seed\": %llu", schema_.c_str(),
                 static_cast<unsigned long long>(seed_));
    for (const auto& [name, value] : fields) {
      std::fprintf(out, ", \"%s\": %s", name.c_str(), value.c_str());
    }
    std::fputs("}\n", out);
  }

 private:
  std::string schema_;
  uint64_t seed_ = 0;
  std::FILE* file_ = nullptr;
};

// Escapes and quotes a string for a JsonLines field value.
inline std::string Quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

inline std::string Num(int64_t v) { return std::to_string(v); }
inline std::string Num(size_t v) { return std::to_string(v); }
inline std::string Micros(double us) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", us);
  return buffer;
}
inline std::string Ratio(double r) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2fx", r);
  return buffer;
}

}  // namespace gsv::bench

#endif  // GSV_BENCH_BENCH_UTIL_H_
