// E17 — Sharded multi-writer maintenance scaling.
//
// Replays one fixed, seeded event stream through K-shard warehouses for
// K in {1, 2, 4, 8} and reports maintenance throughput two ways: measured
// wall clock, and the drain's critical-path bound (serial + max per-shard
// eval + max per-shard sweep, from DrainTiming). On an N-core machine the
// wall clock approaches the critical path; on the single-core CI runner
// wall clock cannot scale, so the critical path is the honest scaling
// signal — it is what the fan-out actually shortened.
//
// Each K runs twice: a concurrent pass (threads = K) that exercises the
// thread-pool drain path and provides the wall-clock number, and a
// serialized timing pass (threads = 1) that provides the per-shard phase
// times. The serialized pass exists for measurement hygiene: with K
// workers time-slicing one core, each worker's CPU time absorbs the cache
// pollution of its siblings' context switches, which inflates max(eval)
// with scheduler noise. Per-shard work is identical either way (the twin
// tests pin thread-count invariance), so timing the shards one at a time
// measures the same work without the interference.
//
// Every configuration must stay byte-identical to the K=1 run (and K=1 to
// a plain unsharded warehouse): same members, same delegate content lines
// — checked across both passes of every K.
//
// Emits one JSON record per K; --json=PATH redirects them to a file.
// --smoke runs a scaled-down stream and exits nonzero when the K=4
// critical-path speedup over K=1 falls below 1.5x (wired into ci.sh).
// The full sweep's acceptance bar is 3x at K=4.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "warehouse/sharded_warehouse.h"
#include "warehouse/sharding.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace {

struct RunResult {
  int64_t wall_micros = 0;
  int64_t crit_micros = 0;
  int64_t serial_micros = 0;
  int64_t eval_micros = 0;   // sum of per-drain max(eval)
  int64_t sweep_micros = 0;  // sum of per-drain max(sweep)
  gsv::WarehouseCosts costs;
  std::vector<int64_t> shard_events;
  std::vector<std::vector<std::pair<gsv::Oid, std::string>>> contents;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const size_t kUpdates = smoke ? 1024 : 8192;
  const size_t kBatch = smoke ? 128 : 256;
  const size_t kViews = smoke ? 4 : 8;
  const uint32_t kShardCounts[] = {1, 2, 4, 8};
  const double bar = smoke ? 1.5 : 3.0;

  TreeGenOptions tree_options;
  tree_options.levels = 4;
  tree_options.fanout = smoke ? 4 : 5;
  tree_options.seed = 171;

  std::printf(
      "E17: sharded multi-writer maintenance scaling, %s sweep\n"
      "%zu updates, %zu views, drain every %zu, threads = K\n\n",
      smoke ? "smoke" : "full", kUpdates, kViews, kBatch);

  JsonLines json(json_path, "gsv.exp17.v1", /*seed=*/171);
  TablePrinter table({"shards", "wall_us", "crit_us", "wall_x", "crit_x",
                      "exports", "applies", "probes", "balance"});

  // One run per (K, threads) over a fresh, identically-seeded world: the
  // generator seed fixes the stream, and OID interning is stable across
  // runs, so every K replays byte-identical events over the same split.
  auto run = [&](uint32_t shards, size_t threads) -> RunResult {
    RunResult result;
    ObjectStore source;
    auto tree = GenerateTree(&source, tree_options);
    Check(tree.status());

    ShardedWarehouse warehouse(shards);
    Check(warehouse.init_status());
    Check(warehouse.ConnectSource(&source, tree->root,
                                  ReportingLevel::kWithValues));
    for (size_t v = 0; v < kViews; ++v) {
      Check(warehouse.DefineView(TreeViewDefinition(
          "WV" + std::to_string(v), tree->root, 2, 4,
          static_cast<int64_t>(10 + v * 10))));
    }
    warehouse.set_deferred(true);

    UpdateGenOptions gen_options;
    gen_options.seed = 173;
    gen_options.p_modify = 0.8;
    gen_options.p_insert = 0.1;
    gen_options.p_delete = 0.1;
    UpdateGenerator generator(&source, tree->root, gen_options);

    for (size_t applied = 0; applied < kUpdates; applied += kBatch) {
      size_t burst = std::min(kBatch, kUpdates - applied);
      Check(generator.Run(burst).status());
      Stopwatch drain;
      Check(warehouse.ProcessPendingBatch(threads));
      result.wall_micros += drain.ElapsedMicros();
    }

    for (const ShardedWarehouse::DrainTiming& timing :
         warehouse.drain_timings()) {
      int64_t eval = 0;
      int64_t sweep = 0;
      for (int64_t us : timing.eval_micros) eval = std::max(eval, us);
      for (int64_t us : timing.sweep_micros) sweep = std::max(sweep, us);
      result.serial_micros += timing.serial_micros;
      result.eval_micros += eval;
      result.sweep_micros += sweep;
      result.crit_micros += timing.serial_micros + eval + sweep;
    }
    result.costs = warehouse.MergedCosts();
    for (uint32_t i = 0; i < shards; ++i) {
      result.shard_events.push_back(
          warehouse.shard(i).costs().events_received.load());
    }
    for (size_t v = 0; v < kViews; ++v) {
      result.contents.push_back(
          warehouse.ViewContents("WV" + std::to_string(v)));
    }
    return result;
  };

  // Unsharded reference: the K=1 coordinator must match a plain warehouse.
  std::vector<std::vector<std::pair<Oid, std::string>>> plain_contents;
  {
    ObjectStore source;
    auto tree = GenerateTree(&source, tree_options);
    Check(tree.status());
    ObjectStore store;
    Warehouse plain(&store);
    Check(plain.ConnectSource(&source, tree->root,
                              ReportingLevel::kWithValues));
    for (size_t v = 0; v < kViews; ++v) {
      Check(plain.DefineView(TreeViewDefinition(
          "WV" + std::to_string(v), tree->root, 2, 4,
          static_cast<int64_t>(10 + v * 10))));
    }
    plain.set_deferred(true);
    UpdateGenOptions gen_options;
    gen_options.seed = 173;
    gen_options.p_modify = 0.8;
    gen_options.p_insert = 0.1;
    gen_options.p_delete = 0.1;
    UpdateGenerator generator(&source, tree->root, gen_options);
    for (size_t applied = 0; applied < kUpdates; applied += kBatch) {
      size_t burst = std::min(kBatch, kUpdates - applied);
      Check(generator.Run(burst).status());
      Check(plain.ProcessPendingBatch());
    }
    for (size_t v = 0; v < kViews; ++v) {
      plain_contents.push_back(
          ViewContentLines(*plain.view("WV" + std::to_string(v))));
    }
  }

  // The full sweep interleaves repetitions — each pass runs K=1,2,4,8
  // back to back, then the whole pass repeats. Speedups are computed per
  // pass, each K against the K=1 measured seconds earlier in the same pass
  // (CPU-frequency and steal drift moves on the scale of many seconds, so
  // members of one pass see the same machine), and the reported speedup is
  // the median across passes, which sheds the passes a noise burst hit.
  // Absolute times come from each K's fastest repetition. Each repetition
  // is a concurrent pass (wall clock) plus a serialized timing pass
  // (critical-path components); see the header comment.
  const int kReps = smoke ? 1 : 4;
  const size_t kCount = sizeof(kShardCounts) / sizeof(kShardCounts[0]);
  bool identical = true;
  std::vector<RunResult> best;
  std::vector<std::vector<double>> crit_ratios(kCount);
  std::vector<std::vector<double>> wall_ratios(kCount);
  for (int rep = 0; rep < kReps; ++rep) {
    size_t slot = 0;
    int64_t pass_crit_base = 0;
    int64_t pass_wall_base = 0;
    for (uint32_t shards : kShardCounts) {
      RunResult concurrent = run(shards, shards);
      RunResult result = shards == 1 ? std::move(concurrent)
                                     : run(shards, /*threads=*/1);
      if (shards != 1) {
        if (result.contents != concurrent.contents) {
          std::fprintf(stderr, "E17: K=%u thread counts diverged\n", shards);
          identical = false;
        }
        result.wall_micros = concurrent.wall_micros;
      } else {
        pass_crit_base = result.crit_micros;
        pass_wall_base = result.wall_micros;
      }
      crit_ratios[slot].push_back(
          result.crit_micros > 0
              ? static_cast<double>(pass_crit_base) / result.crit_micros
              : 0.0);
      wall_ratios[slot].push_back(
          result.wall_micros > 0
              ? static_cast<double>(pass_wall_base) / result.wall_micros
              : 0.0);
      if (rep == 0) {
        best.push_back(std::move(result));
      } else {
        if (result.contents != best[slot].contents) {
          std::fprintf(stderr, "E17: K=%u repetitions diverged\n", shards);
          identical = false;
        }
        if (result.crit_micros < best[slot].crit_micros) {
          result.wall_micros =
              std::min(result.wall_micros, best[slot].wall_micros);
          best[slot] = std::move(result);
        } else if (result.wall_micros < best[slot].wall_micros) {
          best[slot].wall_micros = result.wall_micros;
        }
      }
      ++slot;
    }
  }
  auto median = [](std::vector<double> samples) -> double {
    std::sort(samples.begin(), samples.end());
    size_t n = samples.size();
    return n % 2 == 1 ? samples[n / 2]
                      : (samples[n / 2 - 1] + samples[n / 2]) / 2.0;
  };

  RunResult baseline;
  double crit_at_4 = 0.0;
  size_t slot = 0;
  for (uint32_t shards : kShardCounts) {
    RunResult result = std::move(best[slot]);
    if (shards == 1) {
      baseline = result;
      if (result.contents != plain_contents) {
        std::fprintf(stderr, "E17: K=1 diverged from the plain warehouse\n");
        identical = false;
      }
    } else if (result.contents != baseline.contents) {
      std::fprintf(stderr, "E17: K=%u diverged from K=1\n", shards);
      identical = false;
    }

    double wall_x = median(wall_ratios[slot]);
    double crit_x = median(crit_ratios[slot]);
    ++slot;
    if (shards == 4) crit_at_4 = crit_x;

    int64_t min_events = result.shard_events[0];
    int64_t max_events = result.shard_events[0];
    for (int64_t events : result.shard_events) {
      min_events = std::min(min_events, events);
      max_events = std::max(max_events, events);
    }
    std::string balance = Num(min_events) + "/" + Num(max_events);

    table.Row({Num(static_cast<size_t>(shards)), Num(result.wall_micros),
               Num(result.crit_micros), Ratio(wall_x), Ratio(crit_x),
               Num(result.costs.cross_shard_exports.load()),
               Num(result.costs.cross_shard_applies.load()),
               Num(result.costs.cross_shard_probes.load()), balance});
    json.Record({{"exp", Quoted("exp17_shard_scaling")},
                 {"shards", Num(static_cast<size_t>(shards))},
                 {"threads", Num(static_cast<size_t>(shards))},
                 {"updates", Num(kUpdates)},
                 {"views", Num(kViews)},
                 {"wall_micros", Num(result.wall_micros)},
                 {"crit_micros", Num(result.crit_micros)},
                 {"serial_micros", Num(result.serial_micros)},
                 {"eval_max_micros", Num(result.eval_micros)},
                 {"sweep_max_micros", Num(result.sweep_micros)},
                 {"wall_speedup", Micros(wall_x)},
                 {"crit_speedup", Micros(crit_x)},
                 {"cross_shard_exports",
                  Num(result.costs.cross_shard_exports.load())},
                 {"cross_shard_applies",
                  Num(result.costs.cross_shard_applies.load())},
                 {"cross_shard_probes",
                  Num(result.costs.cross_shard_probes.load())},
                 {"shard_events_min", Num(min_events)},
                 {"shard_events_max", Num(max_events)},
                 {"byte_identical", identical ? "true" : "false"}});
  }

  std::printf("\ncritical-path speedup at K=4: %s (bar %.1fx)\n",
              Ratio(crit_at_4).c_str(), bar);
  if (!identical) {
    std::fprintf(stderr, "E17: sharded runs were not byte-identical\n");
    return 1;
  }
  if (crit_at_4 < bar) {
    std::fprintf(stderr,
                 "E17: K=4 critical-path speedup %.2fx below the %.1fx bar\n",
                 crit_at_4, bar);
    return 1;
  }
  return 0;
}
