// E20 — Paged-engine hot path: background writeback, pointer swizzling,
// compressed pages (§4i).
//
// Three arms, each isolating one layer of the hot-path overhaul against
// a control engine that differs only in that layer:
//
//   writeback   foreground cost of a churn stream (modifies + safe-point
//               eviction bursts) with the background writeback thread vs
//               the synchronous inline engine. The thread moves
//               serialize/compress/pwrite off the caller's critical
//               path, so the foreground must speed up by >= 2x full
//               (1.2x smoke) at a starved pool;
//   swizzle     random point reads over a fully resident store with the
//               OID->Object* swizzle table vs the unswizzled route
//               (key-range map + page + objects map per Get). Floor
//               1.5x full (1.1x smoke);
//   codec       stored bytes under the gsvz codec vs the raw text
//               encoding of the same pages: footprint <= 0.6x full
//               (0.8x smoke), with the cold file passing the same
//               CRC + decode audit `wal_inspect pages` runs.
//
// The writeback arm replays its stream into a memory-engine twin and
// requires byte-identical stores at the end, so the speedup is measured
// on a provably correct execution. Emits one newline-delimited JSON
// record per arm; --json=PATH redirects the records to a file.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "oem/paged_engine.h"
#include "oem/serialize.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace {

std::string EngineDir(const std::string& tag) {
  std::string dir = "/tmp/gsv_exp20_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const uint64_t kPageBytes = 4096;
  const uint64_t kSeed = 509;
  // Floors: smoke keeps the stream short, so the bars are lenient; the
  // full run enforces the headline claims.
  const double kWritebackFloor = smoke ? 1.2 : 2.0;
  const double kSwizzleFloor = smoke ? 1.1 : 1.5;
  const double kCodecCeiling = smoke ? 0.8 : 0.6;

  std::printf(
      "E20: paged-engine hot path — writeback / swizzle / codec (%s)\n"
      "floors: foreground churn >= %.1fx vs synchronous, point reads "
      ">= %.1fx vs unswizzled, stored bytes <= %.1fx raw\n\n",
      smoke ? "smoke" : "full", kWritebackFloor, kSwizzleFloor,
      kCodecCeiling);

  JsonLines json(json_path, "gsv.exp20.v1", kSeed);
  TablePrinter table({"arm", "control_us", "subject_us", "ratio",
                      "queue_peak", "steals", "sync_fb"});

  // ---- Arm 1: background writeback vs synchronous inline writes. ----
  // A starved pool over a churn stream: every safe point evicts dirty
  // pages, so the write path runs constantly. Both engines compress, so
  // the only difference is where serialize/encode/pwrite happen.
  // The churn working set stays a small multiple of the pool: the claim
  // is about the eviction-heavy hot path (every safe point spills dirty
  // pages, every sweep faults them back), not store size — E19 owns the
  // beyond-RAM scaling story. Growing the set much past the queue's
  // drain rate just converts steals into disk faults both arms pay.
  const int kChurnObjects = 600;
  const int kChurnRounds = smoke ? 6 : 24;
  const int kChurnTrials = smoke ? 2 : 3;
  const int kChurnStride = 3;
  double arm_us[2] = {0.0, 0.0};
  PagedEngineStatus churn_status;
  std::string churn_image;
  for (int arm = 0; arm < 2; ++arm) {
    const bool background = arm == 1;
    PagedEngineOptions options;
    options.dir = EngineDir(background ? "wb_bg" : "wb_sync");
    options.page_bytes = kPageBytes;
    options.pool_pages = 8;
    options.codec = "compressed";
    options.background_writeback = background;
    // Sized for the burst: a safe point can evict far more pages than
    // the thread drains before the next round of modifies faults them
    // back, and every fault against a queued job is a zero-I/O steal.
    // A starved queue would collapse into the inline fallback and
    // measure the synchronous engine against itself.
    options.writeback_queue = 4096;
    options.wipe_on_close = true;
    ObjectStore::Options store_options;
    store_options.engine_factory = MakePagedEngineFactory(options);
    ObjectStore store(store_options);
    for (int i = 0; i < kChurnObjects; ++i) {
      Check(store.PutAtomic(Oid("c" + std::to_string(i)), "payload",
                            Value::Str("record " + std::to_string(i) +
                                       " status=active owner=warehouse "
                                       "shard=0 class=member")));
    }
    store.StorageSafePoint();
    // Best-of-N trials: the background arm's win depends on how many
    // faults catch their page still queued (a zero-I/O steal), which
    // varies with thread scheduling — the best trial is the stable
    // measure of what the engine delivers.
    double best_us = 0.0;
    for (int trial = 0; trial < kChurnTrials; ++trial) {
      Stopwatch timer;
      for (int round = 0; round < kChurnRounds; ++round) {
        const int rev = trial * kChurnRounds + round;
        for (int i = rev % kChurnStride; i < kChurnObjects;
             i += kChurnStride) {
          Check(store.Modify(Oid("c" + std::to_string(i)),
                             Value::Str("record " + std::to_string(i) +
                                        " status=active owner=warehouse "
                                        "shard=0 class=member rev=" +
                                        std::to_string(rev))));
        }
        store.StorageSafePoint();
      }
      const double trial_us = static_cast<double>(timer.ElapsedMicros());
      if (trial == 0 || trial_us < best_us) best_us = trial_us;
    }
    arm_us[arm] = best_us;
    Check(store.FlushStorage());
    if (background) {
      Check(QueryPagedEngineStatus(store.storage_engine(), &churn_status)
                ? Status::Ok()
                : Status::Internal("engine is not paged?"));
      Check(churn_status.io_error);
      churn_image = StoreToString(store);
    }
  }
  // Correctness twin: the same stream on the memory engine must produce
  // a byte-identical store image.
  {
    ObjectStore twin;
    for (int i = 0; i < kChurnObjects; ++i) {
      Check(twin.PutAtomic(Oid("c" + std::to_string(i)), "payload",
                           Value::Str("record " + std::to_string(i) +
                                      " status=active owner=warehouse "
                                      "shard=0 class=member")));
    }
    for (int rev = 0; rev < kChurnTrials * kChurnRounds; ++rev) {
      for (int i = rev % kChurnStride; i < kChurnObjects;
           i += kChurnStride) {
        Check(twin.Modify(Oid("c" + std::to_string(i)),
                          Value::Str("record " + std::to_string(i) +
                                     " status=active owner=warehouse "
                                     "shard=0 class=member rev=" +
                                     std::to_string(rev))));
      }
    }
    if (churn_image != StoreToString(twin)) {
      std::fprintf(stderr,
                   "E20: background-writeback store diverged from the "
                   "memory twin\n");
      return 1;
    }
  }
  const double writeback_ratio =
      arm_us[1] == 0.0 ? 0.0 : arm_us[0] / arm_us[1];
  table.Row({"writeback", Micros(arm_us[0]), Micros(arm_us[1]),
             Ratio(writeback_ratio),
             Num(static_cast<int64_t>(churn_status.writeback_queue_peak)),
             Num(static_cast<int64_t>(churn_status.writeback_steals)),
             Num(static_cast<int64_t>(
                 churn_status.writeback_sync_fallbacks))});
  json.Record(
      {{"arm", "\"writeback\""},
       {"sync_us", Micros(arm_us[0])},
       {"background_us", Micros(arm_us[1])},
       {"ratio", Micros(writeback_ratio)},
       {"queue_peak",
        Num(static_cast<int64_t>(churn_status.writeback_queue_peak))},
       {"steals",
        Num(static_cast<int64_t>(churn_status.writeback_steals))},
       {"sync_fallbacks", Num(static_cast<int64_t>(
                              churn_status.writeback_sync_fallbacks))}});

  // ---- Arm 2: swizzled vs unswizzled point reads, fully resident. ----
  const int kReadObjects = smoke ? 500 : 2000;
  const long kReads = smoke ? 40000 : 400000;
  double read_us[2] = {0.0, 0.0};
  int64_t swizzle_hits = 0;
  uint64_t swizzle_entries = 0;
  for (int arm = 0; arm < 2; ++arm) {
    const bool swizzle = arm == 1;
    PagedEngineOptions options;
    options.dir = EngineDir(swizzle ? "sw_on" : "sw_off");
    options.page_bytes = kPageBytes;
    options.pool_pages = 4096;  // everything stays resident
    options.enable_swizzle = swizzle;
    options.wipe_on_close = true;
    ObjectStore::Options store_options;
    store_options.engine_factory = MakePagedEngineFactory(options);
    ObjectStore store(store_options);
    for (int i = 0; i < kReadObjects; ++i) {
      Check(store.PutAtomic(Oid("r" + std::to_string(i)), "age",
                            Value::Int(i)));
    }
    // Evict + fault everything once so reads start from the slow path's
    // steady state (and, with swizzling, a populated table).
    store.StorageSafePoint();
    Check(store.FlushStorage());
    for (int i = 0; i < kReadObjects; ++i) {
      if (store.Get(Oid("r" + std::to_string(i))) == nullptr) {
        std::fprintf(stderr, "E20: lost r%d after safepoint\n", i);
        return 1;
      }
    }
    // Pre-build the OID list so the timed loop measures Get(), not
    // string formatting.
    std::vector<Oid> oids;
    oids.reserve(kReadObjects);
    for (int i = 0; i < kReadObjects; ++i) {
      oids.push_back(Oid("r" + std::to_string(i)));
    }
    uint64_t lcg = kSeed;
    int64_t checksum = 0;
    Stopwatch timer;
    for (long i = 0; i < kReads; ++i) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      const Object* object =
          store.Get(oids[(lcg >> 33) % oids.size()]);
      if (object == nullptr) {
        std::fprintf(stderr, "E20: point read missed\n");
        return 1;
      }
      checksum += object->value().AsInt();
    }
    read_us[arm] = static_cast<double>(timer.ElapsedMicros());
    if (checksum < 0) std::printf("impossible %lld\n", (long long)checksum);
    if (swizzle) {
      swizzle_hits =
          store.metrics().swizzle_hits.load(std::memory_order_relaxed);
      PagedEngineStatus status;
      if (QueryPagedEngineStatus(store.storage_engine(), &status)) {
        swizzle_entries = status.swizzle_entries;
      }
    }
  }
  const double swizzle_ratio =
      read_us[1] == 0.0 ? 0.0 : read_us[0] / read_us[1];
  table.Row({"swizzle", Micros(read_us[0]), Micros(read_us[1]),
             Ratio(swizzle_ratio), Num(swizzle_entries),
             Num(swizzle_hits), Num(static_cast<int64_t>(0))});
  json.Record({{"arm", "\"swizzle\""},
               {"unswizzled_us", Micros(read_us[0])},
               {"swizzled_us", Micros(read_us[1])},
               {"ratio", Micros(swizzle_ratio)},
               {"reads", Num(static_cast<int64_t>(kReads))},
               {"swizzle_hits", Num(swizzle_hits)},
               {"swizzle_entries",
                Num(static_cast<int64_t>(swizzle_entries))}});

  // ---- Arm 3: gsvz codec footprint vs the raw text encoding. ----
  // A tree workload's checkpoint-style page text (labels, OIDs, repeated
  // attribute names) is what the codec was tuned for.
  double codec_ratio = 1.0;
  {
    PagedEngineOptions options;
    options.dir = EngineDir("codec");
    options.page_bytes = kPageBytes;
    options.pool_pages = 8;
    options.codec = "compressed";
    options.wipe_on_close = true;
    ObjectStore::Options store_options;
    store_options.engine_factory = MakePagedEngineFactory(options);
    ObjectStore store(store_options);
    TreeGenOptions tree_options;
    tree_options.levels = smoke ? 5 : 6;
    tree_options.fanout = 5;
    tree_options.seed = kSeed;
    auto tree = GenerateTree(&store, tree_options);
    Check(tree.status());
    store.StorageSafePoint();
    Check(store.FlushStorage());
    PagedEngineStatus status;
    if (!QueryPagedEngineStatus(store.storage_engine(), &status)) {
      std::fprintf(stderr, "E20: engine is not paged?\n");
      return 1;
    }
    Check(status.io_error);
    if (status.disk_raw_bytes == 0) {
      std::fprintf(stderr, "E20: codec arm flushed no pages\n");
      return 1;
    }
    codec_ratio = static_cast<double>(status.disk_payload_bytes) /
                  static_cast<double>(status.disk_raw_bytes);
    // The cold file must survive the same audit `wal_inspect pages`
    // runs: per-page CRC over stored bytes plus a decode check.
    Status audit = VerifyPagedImage(status.dir, nullptr);
    if (!audit.ok()) {
      std::fprintf(stderr, "E20: compressed image failed audit: %s\n",
                   audit.ToString().c_str());
      return 1;
    }
    table.Row({"codec",
               Num(static_cast<int64_t>(status.disk_raw_bytes)),
               Num(static_cast<int64_t>(status.disk_payload_bytes)),
               Ratio(codec_ratio),
               Num(static_cast<int64_t>(status.pages_total)), "-", "-"});
    json.Record(
        {{"arm", "\"codec\""},
         {"raw_bytes", Num(static_cast<int64_t>(status.disk_raw_bytes))},
         {"stored_bytes",
          Num(static_cast<int64_t>(status.disk_payload_bytes))},
         {"ratio", Micros(codec_ratio)},
         {"pages", Num(static_cast<int64_t>(status.pages_total))}});
  }

  std::printf("\n");
  bool failed = false;
  if (writeback_ratio < kWritebackFloor) {
    std::fprintf(stderr,
                 "E20 FAILED: background writeback sped the foreground "
                 "up %.2fx (floor %.1fx) — the thread is not moving "
                 "I/O off the critical path\n",
                 writeback_ratio, kWritebackFloor);
    failed = true;
  }
  if (swizzle_ratio < kSwizzleFloor) {
    std::fprintf(stderr,
                 "E20 FAILED: swizzled point reads won %.2fx (floor "
                 "%.1fx) — the OID->pointer table is not paying for "
                 "itself\n",
                 swizzle_ratio, kSwizzleFloor);
    failed = true;
  }
  if (codec_ratio > kCodecCeiling) {
    std::fprintf(stderr,
                 "E20 FAILED: gsvz stored %.2fx of the raw text "
                 "(ceiling %.1fx) — the codec is not compressing "
                 "checkpoint-style pages\n",
                 codec_ratio, kCodecCeiling);
    failed = true;
  }
  if (failed) return 1;
  std::printf(
      "E20 ok: writeback %.2fx (floor %.1fx), swizzle %.2fx (floor "
      "%.1fx), codec %.2fx raw (ceiling %.1fx)\n",
      writeback_ratio, kWritebackFloor, swizzle_ratio, kSwizzleFloor,
      codec_ratio, kCodecCeiling);
  return 0;
}
