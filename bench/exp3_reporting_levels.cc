// E3 — Source reporting levels and query-back cost (§5.1).
//
// Paper claim: the richer the update reports (1: OIDs only; 2: +values,
// enabling local screening; 3: +root path, making modify maintenance
// local), the fewer queries the warehouse must send back to the source.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "oem/store.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

int main() {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  const size_t kUpdates = 1000;
  std::printf(
      "E3: warehouse maintenance cost by reporting level (no cache)\n"
      "source: random tree (levels=3, fanout=5), view: depth-2 selection,\n"
      "%zu random updates\n\n",
      kUpdates);

  TablePrinter table({"level", "queries", "objects", "values", "screened",
                      "local evts", "q/update"});

  for (int level = 1; level <= 3; ++level) {
    ObjectStore source;
    TreeGenOptions tree_options;
    tree_options.levels = 3;
    tree_options.fanout = 5;
    tree_options.seed = 31;
    auto tree = GenerateTree(&source, tree_options);
    bench::Check(tree.status().ok() ? Status::Ok() : tree.status());

    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    bench::Check(warehouse.ConnectSource(&source, tree->root,
                                         static_cast<ReportingLevel>(level)));
    bench::Check(warehouse.DefineView(
        TreeViewDefinition("WV", tree->root, 2, 3, 50)));
    warehouse.costs().Reset();

    UpdateGenOptions gen_options;
    gen_options.seed = 77;
    UpdateGenerator generator(&source, tree->root, gen_options);
    bench::Check(generator.Run(kUpdates).status().ok()
                     ? Status::Ok()
                     : Status::Internal("update stream failed"));
    bench::Check(warehouse.last_status());

    ConsistencyReport report =
        CheckViewConsistency(*warehouse.view("WV"), source);
    if (!report.consistent) {
      std::fprintf(stderr, "INCONSISTENT at level %d: %s\n", level,
                   report.ToString().c_str());
      return 1;
    }

    const WarehouseCosts& costs = warehouse.costs();
    table.Row({Num(static_cast<int64_t>(level)), Num(costs.source_queries),
               Num(costs.objects_shipped), Num(costs.values_shipped),
               Num(costs.events_screened_out), Num(costs.events_local_only),
               Micros(static_cast<double>(costs.source_queries) /
                      static_cast<double>(kUpdates))});
  }

  std::printf(
      "\nExpected shape (paper §5.1): queries drop monotonically from level\n"
      "1 to level 3; level 2's drop comes from screening, level 3's from\n"
      "free path(ROOT,N) answers.\n");
  return 0;
}
