// M0 — micro-benchmarks of the substrates (google-benchmark): store
// operations, path evaluation, query parsing/evaluation, and a single
// Algorithm 1 maintenance step.

#include <benchmark/benchmark.h>

#include "core/algorithm1.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "path/navigate.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "workload/person_db.h"
#include "workload/tree_gen.h"

namespace gsv {
namespace {

void BM_StorePutGet(benchmark::State& state) {
  ObjectStore store;
  int64_t i = 0;
  for (auto _ : state) {
    Oid oid("o" + std::to_string(i++));
    benchmark::DoNotOptimize(store.PutAtomic(oid, "age", Value::Int(i)));
    benchmark::DoNotOptimize(store.Get(oid));
  }
}
BENCHMARK(BM_StorePutGet);

void BM_StoreInsertDelete(benchmark::State& state) {
  ObjectStore store;
  (void)store.PutSet(Oid("P"), "parent");
  (void)store.PutAtomic(Oid("C"), "child", Value::Int(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Insert(Oid("P"), Oid("C")));
    benchmark::DoNotOptimize(store.Delete(Oid("P"), Oid("C")));
  }
}
BENCHMARK(BM_StoreInsertDelete);

void BM_OidSetInsertContains(benchmark::State& state) {
  OidSet set;
  for (int i = 0; i < 1000; ++i) set.Insert(Oid("o" + std::to_string(i)));
  Oid probe("o500");
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Contains(probe));
  }
}
BENCHMARK(BM_OidSetInsertContains);

void BM_EvalPathByDepth(benchmark::State& state) {
  ObjectStore store;
  TreeGenOptions options;
  options.levels = static_cast<size_t>(state.range(0));
  options.fanout = 3;
  auto tree = GenerateTree(&store, options);
  std::string text;
  for (int64_t d = 1; d < state.range(0); ++d) {
    if (!text.empty()) text += ".";
    text += "n" + std::to_string(d) + "_0";
  }
  text += text.empty() ? "age" : ".age";
  Path path = *Path::Parse(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPath(store, tree->root, path));
  }
}
BENCHMARK(BM_EvalPathByDepth)->Arg(2)->Arg(4)->Arg(6);

void BM_EvalExpressionStar(benchmark::State& state) {
  ObjectStore store;
  TreeGenOptions options;
  options.levels = 4;
  options.fanout = 3;
  auto tree = GenerateTree(&store, options);
  PathExpression star = *PathExpression::Parse("*");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalExpression(store, tree->root, star));
  }
}
BENCHMARK(BM_EvalExpressionStar);

void BM_ParseQuery(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseQuery(
        "SELECT ROOT.professor X WHERE X.age > 40 AND X.name = 'John' "
        "WITHIN PERSON ANS INT D1"));
  }
}
BENCHMARK(BM_ParseQuery);

void BM_EvaluateQuery(benchmark::State& state) {
  ObjectStore store;
  (void)BuildPersonDb(&store);
  Query query = *ParseQuery("SELECT ROOT.professor X WHERE X.age > 40");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateQuery(store, query));
  }
}
BENCHMARK(BM_EvaluateQuery);

void BM_Algorithm1ModifyFlip(benchmark::State& state) {
  ObjectStore store;
  (void)BuildPersonDb(&store);
  auto def = ViewDefinition::Parse(
      "define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45");
  ObjectStore view_store;
  MaterializedView view(&view_store, *def);
  (void)view.Initialize(store);
  LocalAccessor accessor(&store);
  Algorithm1Maintainer maintainer(&view, &accessor, *def,
                                  person_db::Root());
  store.AddListener(&maintainer);
  int64_t i = 0;
  for (auto _ : state) {
    // Alternates P1 in and out of the view: a full maintenance round trip.
    benchmark::DoNotOptimize(
        store.Modify(person_db::A1(), Value::Int(i++ % 2 == 0 ? 50 : 40)));
  }
}
BENCHMARK(BM_Algorithm1ModifyFlip);

void BM_PathExpressionContains(benchmark::State& state) {
  auto lhs = *PathExpression::Parse("a.*.b.?");
  auto rhs = *PathExpression::Parse("a.x.*.y.b.c");
  for (auto _ : state) {
    benchmark::DoNotOptimize(lhs.Contains(rhs));
  }
}
BENCHMARK(BM_PathExpressionContains);

}  // namespace
}  // namespace gsv

BENCHMARK_MAIN();
