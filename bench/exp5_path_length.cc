// E5 — Sensitivity to sel/cond path length (§4.4).
//
// Paper claim: "incremental maintenance will probably be superior if the
// selection and condition paths are relatively short ... If, on the other
// hand, paths are long, then handling of an update could easily require
// access to very large portions of the base databases."
//
// Workload: binary trees of increasing depth; the view always selects at
// half depth with the condition spanning the rest, so the full path length
// equals the tree depth. The same relative update mix runs at every depth.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/algorithm1.h"
#include "core/materialized_view.h"
#include "core/recompute.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

namespace gsv {
namespace {

int64_t StoreOps(const ObjectStore& store) {
  const StoreMetrics& m = store.metrics();
  return m.edges_traversed + m.parent_lookups + m.lookups + m.objects_scanned;
}

}  // namespace
}  // namespace gsv

int main() {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  const size_t kUpdates = 300;
  std::printf(
      "E5: maintenance cost vs sel/cond path length (binary trees)\n"
      "%zu random updates per depth; view selects at half depth\n\n",
      kUpdates);

  TablePrinter table({"depth", "objects", "inc us/upd", "inc ops/upd",
                      "rec us/upd", "speedup"});

  for (size_t depth : {2, 4, 6, 8, 10}) {
    auto run = [&](bool incremental) {
      ObjectStore store;
      TreeGenOptions options;
      options.levels = depth;
      options.fanout = 2;
      options.seed = 5;
      auto tree = GenerateTree(&store, options);
      bench::Check(tree.status().ok() ? Status::Ok() : tree.status());
      size_t sel_levels = depth > 1 ? depth / 2 : 1;
      auto def = ViewDefinition::Parse(
          TreeViewDefinition("PV", tree->root, sel_levels, depth, 50));
      ObjectStore view_store;
      MaterializedView view(&view_store, *def);
      bench::Check(view.Initialize(store));

      LocalAccessor accessor(&store);
      Algorithm1Maintainer algo(&view, &accessor, *def, tree->root);
      RecomputeMaintainer recompute(&view, &store);
      if (incremental) {
        store.AddListener(&algo);
      } else {
        store.AddListener(&recompute);
      }

      UpdateGenOptions gen_options;
      gen_options.seed = 11;
      UpdateGenerator generator(&store, tree->root, gen_options);
      store.metrics().Reset();
      Stopwatch watch;
      bench::Check(generator.Run(kUpdates).status().ok()
                       ? Status::Ok()
                       : Status::Internal("stream failed"));
      double us = static_cast<double>(watch.ElapsedMicros()) / kUpdates;
      int64_t ops = StoreOps(store) / static_cast<int64_t>(kUpdates);
      size_t objects = store.size();
      return std::tuple<double, int64_t, size_t>(us, ops, objects);
    };

    auto [inc_us, inc_ops, objects] = run(true);
    auto [rec_us, rec_ops, objects2] = run(false);
    (void)rec_ops;
    (void)objects2;
    table.Row({Num(depth), Num(objects), Micros(inc_us), Num(inc_ops),
               Micros(rec_us), Ratio(rec_us / inc_us)});
  }

  std::printf(
      "\nExpected shape (paper §4.4): incremental cost per update grows\n"
      "with the path length while staying far below recomputation; the\n"
      "advantage narrows as paths lengthen relative to the data size.\n");
  return 0;
}
