// E12 — Deferred event processing and queue compaction.
//
// Sources are autonomous (§5.1): events arrive asynchronously while the
// source keeps changing. This experiment measures (a) that a deferred
// warehouse converges to the same view as an inline one, and (b) what
// compacting the pending queue (merging modify chains, cancelling
// insert/delete pairs) saves in events processed and query-backs.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "oem/store.h"
#include "util/stopwatch.h"
#include "warehouse/warehouse.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

int main() {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  const size_t kBatches = 20;
  const size_t kBatchSize = 100;
  std::printf(
      "E12: deferred drains with and without queue compaction\n"
      "modify-heavy stream, %zu batches of %zu updates, level-2 events\n\n",
      kBatches, kBatchSize);

  TablePrinter table({"mode", "events", "compacted", "queries", "us/batch",
                      "correct"});

  for (int mode = 0; mode < 4; ++mode) {
    const char* name = mode == 0   ? "inline"
                       : mode == 1 ? "deferred"
                       : mode == 2 ? "defer+compact"
                                   : "defer+cmp+cache";
    ObjectStore source;
    TreeGenOptions tree_options;
    tree_options.levels = 3;
    tree_options.fanout = 5;
    tree_options.seed = 61;
    auto tree = GenerateTree(&source, tree_options);
    bench::Check(tree.status().ok() ? Status::Ok() : tree.status());

    ObjectStore warehouse_store;
    Warehouse warehouse(&warehouse_store);
    bench::Check(warehouse.ConnectSource(&source, tree->root,
                                         ReportingLevel::kWithValues));
    bench::Check(warehouse.DefineView(
        TreeViewDefinition("WV", tree->root, 2, 3, 50),
        mode == 3 ? Warehouse::CacheMode::kFull : Warehouse::CacheMode::kNone));
    warehouse.costs().Reset();
    warehouse.set_deferred(mode > 0);

    UpdateGenOptions gen_options;
    gen_options.seed = 67;
    gen_options.p_modify = 0.7;
    gen_options.p_insert = 0.15;
    gen_options.p_delete = 0.15;
    UpdateGenerator generator(&source, tree->root, gen_options);

    size_t compacted = 0;
    Stopwatch watch;
    for (size_t batch = 0; batch < kBatches; ++batch) {
      bench::Check(generator.Run(kBatchSize).status().ok()
                       ? Status::Ok()
                       : Status::Internal("stream failed"));
      if (mode >= 2) compacted += warehouse.CompactPending();
      if (mode > 0) bench::Check(warehouse.ProcessPending());
    }
    double us_per_batch =
        static_cast<double>(watch.ElapsedMicros()) / kBatches;
    bench::Check(warehouse.last_status());

    ConsistencyReport report =
        CheckViewConsistency(*warehouse.view("WV"), source);
    table.Row({name, Num(warehouse.costs().events_received), Num(compacted),
               Num(warehouse.costs().source_queries), Micros(us_per_batch),
               report.consistent ? "yes" : "NO"});
  }

  std::printf(
      "\nExpected shape: every mode converges to the correct view. The\n"
      "drain's member-verification sweep makes uncached deferral cost about\n"
      "as many query-backs as inline processing; compaction trims events,\n"
      "and the full auxiliary cache answers both events and the sweep\n"
      "locally — deferral is effectively free with it.\n");
  return 0;
}
