// E8 — Path-expression views (§6, first relaxation).
//
// Paper claim: allowing wildcards in sel/cond paths requires testing "path
// containment for general path expressions" and makes maintenance costlier
// — e.g. under SELECT ROOT.*, "any insertion of a ROOT's descendant node
// will cause delegate objects to be inserted into the view."
//
// Comparison: the same base and update stream maintained under
//   (a) a constant-path view by Algorithm 1, and
//   (b) a wildcard view ("ROOT.*" select) by the general candidate-recheck
//       maintainer.
// Also reports the path-containment decision cost itself.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/algorithm1.h"
#include "core/general_maintainer.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "core/virtual_view.h"
#include "oem/store.h"
#include "path/path_expression.h"
#include "util/stopwatch.h"
#include "workload/tree_gen.h"
#include "workload/update_gen.h"

int main() {
  using namespace gsv;         // NOLINT(build/namespaces)
  using namespace gsv::bench;  // NOLINT(build/namespaces)

  const size_t kUpdates = 300;
  std::printf(
      "E8: simple views (Algorithm 1) vs path-expression views (general\n"
      "maintainer); same tree and update stream, %zu updates\n\n",
      kUpdates);

  TablePrinter table(
      {"view", "us/update", "candidates", "view size", "correct"});

  for (int variant = 0; variant < 2; ++variant) {
    ObjectStore store;
    TreeGenOptions options;
    options.levels = 3;
    options.fanout = 4;
    options.seed = 9;
    auto tree = GenerateTree(&store, options);
    bench::Check(tree.status().ok() ? Status::Ok() : tree.status());

    std::string definition =
        variant == 0
            ? TreeViewDefinition("PV", tree->root, 2, 3, 50)
            : "define mview PV as: SELECT " + tree->root.str() +
                  ".* X WHERE X.age <= 50";
    auto def = ViewDefinition::Parse(definition);
    bench::Check(def.status().ok() ? Status::Ok() : def.status());

    ObjectStore view_store;
    MaterializedView view(&view_store, *def);
    bench::Check(view.Initialize(store));

    LocalAccessor accessor(&store);
    std::unique_ptr<Algorithm1Maintainer> algo;
    std::unique_ptr<GeneralMaintainer> general;
    if (variant == 0) {
      algo = std::make_unique<Algorithm1Maintainer>(&view, &accessor, *def,
                                                    tree->root);
      store.AddListener(algo.get());
    } else {
      general = std::make_unique<GeneralMaintainer>(&view, &store, *def,
                                                    tree->root);
      store.AddListener(general.get());
    }

    UpdateGenOptions gen_options;
    gen_options.seed = 13;
    UpdateGenerator generator(&store, tree->root, gen_options);
    Stopwatch watch;
    bench::Check(generator.Run(kUpdates).status().ok()
                     ? Status::Ok()
                     : Status::Internal("stream failed"));
    double us = static_cast<double>(watch.ElapsedMicros()) / kUpdates;

    auto truth = EvaluateView(store, *def);
    bool correct = truth.ok() && view.BaseMembers() == *truth;
    int64_t candidates =
        general != nullptr ? general->stats().candidates_checked : 0;
    table.Row({variant == 0 ? "constant path" : "ROOT.* wildcard",
               Micros(us), Num(candidates), Num(view.size()),
               correct ? "yes" : "NO"});
  }

  // The §6 containment test in isolation.
  {
    auto star = *PathExpression::Parse("*");
    auto mid = *PathExpression::Parse("a.*.b.?");
    auto concrete = *PathExpression::Parse("a.x.y.b.c");
    Stopwatch watch;
    const int kIters = 20000;
    int truths = 0;
    for (int i = 0; i < kIters; ++i) {
      truths += star.Contains(mid) ? 1 : 0;
      truths += mid.Contains(concrete) ? 1 : 0;
      truths += concrete.Contains(mid) ? 0 : 1;
    }
    std::printf(
        "\npath containment (§6's required test): %.3f us per decision "
        "(%d decisions, %d expected truths)\n",
        static_cast<double>(watch.ElapsedMicros()) / (kIters * 3.0),
        kIters * 3, truths);
  }

  std::printf(
      "\nExpected shape (paper §6): the wildcard view selects far more\n"
      "objects and every update spawns a candidate set to re-derive, so\n"
      "per-update cost is substantially higher than Algorithm 1's.\n");
  return 0;
}
