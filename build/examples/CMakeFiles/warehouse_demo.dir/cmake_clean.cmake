file(REMOVE_RECURSE
  "CMakeFiles/warehouse_demo.dir/warehouse_demo.cpp.o"
  "CMakeFiles/warehouse_demo.dir/warehouse_demo.cpp.o.d"
  "warehouse_demo"
  "warehouse_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
