# Empty compiler generated dependencies file for warehouse_demo.
# This may be replaced when dependencies are built.
