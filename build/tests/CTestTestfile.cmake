# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gsv_util_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_oem_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_path_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_query_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_core_view_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_algorithm1_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_workload_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_relational_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_warehouse_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_property_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_serialize_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_shell_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_integration_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_transaction_test[1]_include.cmake")
include("/root/repo/build/tests/gsv_robustness_test[1]_include.cmake")
