# Empty dependencies file for gsv_algorithm1_test.
# This may be replaced when dependencies are built.
