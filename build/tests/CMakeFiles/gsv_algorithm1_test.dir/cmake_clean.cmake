file(REMOVE_RECURSE
  "CMakeFiles/gsv_algorithm1_test.dir/algorithm1_test.cc.o"
  "CMakeFiles/gsv_algorithm1_test.dir/algorithm1_test.cc.o.d"
  "gsv_algorithm1_test"
  "gsv_algorithm1_test.pdb"
  "gsv_algorithm1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_algorithm1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
