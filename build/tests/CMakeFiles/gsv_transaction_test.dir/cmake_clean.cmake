file(REMOVE_RECURSE
  "CMakeFiles/gsv_transaction_test.dir/transaction_test.cc.o"
  "CMakeFiles/gsv_transaction_test.dir/transaction_test.cc.o.d"
  "gsv_transaction_test"
  "gsv_transaction_test.pdb"
  "gsv_transaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_transaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
