# Empty compiler generated dependencies file for gsv_transaction_test.
# This may be replaced when dependencies are built.
