# Empty compiler generated dependencies file for gsv_warehouse_test.
# This may be replaced when dependencies are built.
