file(REMOVE_RECURSE
  "CMakeFiles/gsv_warehouse_test.dir/warehouse_test.cc.o"
  "CMakeFiles/gsv_warehouse_test.dir/warehouse_test.cc.o.d"
  "gsv_warehouse_test"
  "gsv_warehouse_test.pdb"
  "gsv_warehouse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_warehouse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
