# Empty dependencies file for gsv_path_test.
# This may be replaced when dependencies are built.
