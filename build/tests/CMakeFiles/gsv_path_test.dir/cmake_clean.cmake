file(REMOVE_RECURSE
  "CMakeFiles/gsv_path_test.dir/path_test.cc.o"
  "CMakeFiles/gsv_path_test.dir/path_test.cc.o.d"
  "gsv_path_test"
  "gsv_path_test.pdb"
  "gsv_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
