# Empty dependencies file for gsv_relational_test.
# This may be replaced when dependencies are built.
