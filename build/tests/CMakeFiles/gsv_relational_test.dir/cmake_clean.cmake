file(REMOVE_RECURSE
  "CMakeFiles/gsv_relational_test.dir/relational_test.cc.o"
  "CMakeFiles/gsv_relational_test.dir/relational_test.cc.o.d"
  "gsv_relational_test"
  "gsv_relational_test.pdb"
  "gsv_relational_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_relational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
