file(REMOVE_RECURSE
  "CMakeFiles/gsv_query_test.dir/query_test.cc.o"
  "CMakeFiles/gsv_query_test.dir/query_test.cc.o.d"
  "gsv_query_test"
  "gsv_query_test.pdb"
  "gsv_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
