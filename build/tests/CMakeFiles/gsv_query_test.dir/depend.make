# Empty dependencies file for gsv_query_test.
# This may be replaced when dependencies are built.
