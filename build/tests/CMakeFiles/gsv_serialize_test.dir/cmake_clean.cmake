file(REMOVE_RECURSE
  "CMakeFiles/gsv_serialize_test.dir/serialize_test.cc.o"
  "CMakeFiles/gsv_serialize_test.dir/serialize_test.cc.o.d"
  "gsv_serialize_test"
  "gsv_serialize_test.pdb"
  "gsv_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
