# Empty dependencies file for gsv_serialize_test.
# This may be replaced when dependencies are built.
