file(REMOVE_RECURSE
  "CMakeFiles/gsv_extensions_test.dir/extensions_test.cc.o"
  "CMakeFiles/gsv_extensions_test.dir/extensions_test.cc.o.d"
  "gsv_extensions_test"
  "gsv_extensions_test.pdb"
  "gsv_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
