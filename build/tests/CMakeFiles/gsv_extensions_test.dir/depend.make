# Empty dependencies file for gsv_extensions_test.
# This may be replaced when dependencies are built.
