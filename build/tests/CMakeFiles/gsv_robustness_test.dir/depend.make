# Empty dependencies file for gsv_robustness_test.
# This may be replaced when dependencies are built.
