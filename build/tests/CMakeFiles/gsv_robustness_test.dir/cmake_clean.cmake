file(REMOVE_RECURSE
  "CMakeFiles/gsv_robustness_test.dir/robustness_test.cc.o"
  "CMakeFiles/gsv_robustness_test.dir/robustness_test.cc.o.d"
  "gsv_robustness_test"
  "gsv_robustness_test.pdb"
  "gsv_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
