# Empty compiler generated dependencies file for gsv_workload_test.
# This may be replaced when dependencies are built.
