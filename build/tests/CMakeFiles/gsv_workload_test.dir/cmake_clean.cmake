file(REMOVE_RECURSE
  "CMakeFiles/gsv_workload_test.dir/workload_test.cc.o"
  "CMakeFiles/gsv_workload_test.dir/workload_test.cc.o.d"
  "gsv_workload_test"
  "gsv_workload_test.pdb"
  "gsv_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
