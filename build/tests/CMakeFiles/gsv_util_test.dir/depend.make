# Empty dependencies file for gsv_util_test.
# This may be replaced when dependencies are built.
