file(REMOVE_RECURSE
  "CMakeFiles/gsv_util_test.dir/util_test.cc.o"
  "CMakeFiles/gsv_util_test.dir/util_test.cc.o.d"
  "gsv_util_test"
  "gsv_util_test.pdb"
  "gsv_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
