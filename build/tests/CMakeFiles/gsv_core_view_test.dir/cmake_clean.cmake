file(REMOVE_RECURSE
  "CMakeFiles/gsv_core_view_test.dir/core_view_test.cc.o"
  "CMakeFiles/gsv_core_view_test.dir/core_view_test.cc.o.d"
  "gsv_core_view_test"
  "gsv_core_view_test.pdb"
  "gsv_core_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_core_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
