# Empty compiler generated dependencies file for gsv_core_view_test.
# This may be replaced when dependencies are built.
