file(REMOVE_RECURSE
  "CMakeFiles/gsv_property_test.dir/property_test.cc.o"
  "CMakeFiles/gsv_property_test.dir/property_test.cc.o.d"
  "gsv_property_test"
  "gsv_property_test.pdb"
  "gsv_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
