# Empty dependencies file for gsv_property_test.
# This may be replaced when dependencies are built.
