# Empty dependencies file for gsv_oem_test.
# This may be replaced when dependencies are built.
