file(REMOVE_RECURSE
  "CMakeFiles/gsv_oem_test.dir/oem_test.cc.o"
  "CMakeFiles/gsv_oem_test.dir/oem_test.cc.o.d"
  "gsv_oem_test"
  "gsv_oem_test.pdb"
  "gsv_oem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_oem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
