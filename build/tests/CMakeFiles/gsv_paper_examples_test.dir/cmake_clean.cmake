file(REMOVE_RECURSE
  "CMakeFiles/gsv_paper_examples_test.dir/paper_examples_test.cc.o"
  "CMakeFiles/gsv_paper_examples_test.dir/paper_examples_test.cc.o.d"
  "gsv_paper_examples_test"
  "gsv_paper_examples_test.pdb"
  "gsv_paper_examples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_paper_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
