# Empty compiler generated dependencies file for gsv_integration_test.
# This may be replaced when dependencies are built.
