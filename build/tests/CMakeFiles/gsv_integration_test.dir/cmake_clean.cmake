file(REMOVE_RECURSE
  "CMakeFiles/gsv_integration_test.dir/integration_test.cc.o"
  "CMakeFiles/gsv_integration_test.dir/integration_test.cc.o.d"
  "gsv_integration_test"
  "gsv_integration_test.pdb"
  "gsv_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
