file(REMOVE_RECURSE
  "CMakeFiles/gsv_shell_test.dir/shell_test.cc.o"
  "CMakeFiles/gsv_shell_test.dir/shell_test.cc.o.d"
  "gsv_shell_test"
  "gsv_shell_test.pdb"
  "gsv_shell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsv_shell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
