# Empty dependencies file for gsv_shell_test.
# This may be replaced when dependencies are built.
