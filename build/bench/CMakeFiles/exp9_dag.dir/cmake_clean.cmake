file(REMOVE_RECURSE
  "CMakeFiles/exp9_dag.dir/exp9_dag.cc.o"
  "CMakeFiles/exp9_dag.dir/exp9_dag.cc.o.d"
  "exp9_dag"
  "exp9_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp9_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
