# Empty dependencies file for exp9_dag.
# This may be replaced when dependencies are built.
