# Empty dependencies file for bm_micro.
# This may be replaced when dependencies are built.
