file(REMOVE_RECURSE
  "CMakeFiles/bm_micro.dir/bm_micro.cc.o"
  "CMakeFiles/bm_micro.dir/bm_micro.cc.o.d"
  "bm_micro"
  "bm_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
