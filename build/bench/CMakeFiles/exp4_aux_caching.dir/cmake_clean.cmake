file(REMOVE_RECURSE
  "CMakeFiles/exp4_aux_caching.dir/exp4_aux_caching.cc.o"
  "CMakeFiles/exp4_aux_caching.dir/exp4_aux_caching.cc.o.d"
  "exp4_aux_caching"
  "exp4_aux_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp4_aux_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
