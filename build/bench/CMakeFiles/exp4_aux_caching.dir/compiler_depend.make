# Empty compiler generated dependencies file for exp4_aux_caching.
# This may be replaced when dependencies are built.
