file(REMOVE_RECURSE
  "CMakeFiles/exp6_inverse_index.dir/exp6_inverse_index.cc.o"
  "CMakeFiles/exp6_inverse_index.dir/exp6_inverse_index.cc.o.d"
  "exp6_inverse_index"
  "exp6_inverse_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp6_inverse_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
