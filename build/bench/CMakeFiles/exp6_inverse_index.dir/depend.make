# Empty dependencies file for exp6_inverse_index.
# This may be replaced when dependencies are built.
