file(REMOVE_RECURSE
  "CMakeFiles/exp7_path_knowledge.dir/exp7_path_knowledge.cc.o"
  "CMakeFiles/exp7_path_knowledge.dir/exp7_path_knowledge.cc.o.d"
  "exp7_path_knowledge"
  "exp7_path_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp7_path_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
