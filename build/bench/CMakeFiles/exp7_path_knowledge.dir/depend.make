# Empty dependencies file for exp7_path_knowledge.
# This may be replaced when dependencies are built.
