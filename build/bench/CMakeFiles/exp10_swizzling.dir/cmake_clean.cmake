file(REMOVE_RECURSE
  "CMakeFiles/exp10_swizzling.dir/exp10_swizzling.cc.o"
  "CMakeFiles/exp10_swizzling.dir/exp10_swizzling.cc.o.d"
  "exp10_swizzling"
  "exp10_swizzling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp10_swizzling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
