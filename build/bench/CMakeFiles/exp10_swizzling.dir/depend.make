# Empty dependencies file for exp10_swizzling.
# This may be replaced when dependencies are built.
