file(REMOVE_RECURSE
  "CMakeFiles/exp8_path_expressions.dir/exp8_path_expressions.cc.o"
  "CMakeFiles/exp8_path_expressions.dir/exp8_path_expressions.cc.o.d"
  "exp8_path_expressions"
  "exp8_path_expressions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp8_path_expressions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
