# Empty compiler generated dependencies file for exp8_path_expressions.
# This may be replaced when dependencies are built.
