# Empty dependencies file for exp5_path_length.
# This may be replaced when dependencies are built.
