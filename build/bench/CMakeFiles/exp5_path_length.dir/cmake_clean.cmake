file(REMOVE_RECURSE
  "CMakeFiles/exp5_path_length.dir/exp5_path_length.cc.o"
  "CMakeFiles/exp5_path_length.dir/exp5_path_length.cc.o.d"
  "exp5_path_length"
  "exp5_path_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp5_path_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
