# Empty dependencies file for exp12_deferred_compaction.
# This may be replaced when dependencies are built.
