file(REMOVE_RECURSE
  "CMakeFiles/exp12_deferred_compaction.dir/exp12_deferred_compaction.cc.o"
  "CMakeFiles/exp12_deferred_compaction.dir/exp12_deferred_compaction.cc.o.d"
  "exp12_deferred_compaction"
  "exp12_deferred_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp12_deferred_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
