file(REMOVE_RECURSE
  "CMakeFiles/exp1_incremental_vs_recompute.dir/exp1_incremental_vs_recompute.cc.o"
  "CMakeFiles/exp1_incremental_vs_recompute.dir/exp1_incremental_vs_recompute.cc.o.d"
  "exp1_incremental_vs_recompute"
  "exp1_incremental_vs_recompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp1_incremental_vs_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
