# Empty compiler generated dependencies file for exp1_incremental_vs_recompute.
# This may be replaced when dependencies are built.
