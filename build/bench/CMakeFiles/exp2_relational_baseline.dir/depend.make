# Empty dependencies file for exp2_relational_baseline.
# This may be replaced when dependencies are built.
