file(REMOVE_RECURSE
  "CMakeFiles/exp2_relational_baseline.dir/exp2_relational_baseline.cc.o"
  "CMakeFiles/exp2_relational_baseline.dir/exp2_relational_baseline.cc.o.d"
  "exp2_relational_baseline"
  "exp2_relational_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp2_relational_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
