# Empty dependencies file for exp3_reporting_levels.
# This may be replaced when dependencies are built.
