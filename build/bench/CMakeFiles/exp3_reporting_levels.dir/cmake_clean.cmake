file(REMOVE_RECURSE
  "CMakeFiles/exp3_reporting_levels.dir/exp3_reporting_levels.cc.o"
  "CMakeFiles/exp3_reporting_levels.dir/exp3_reporting_levels.cc.o.d"
  "exp3_reporting_levels"
  "exp3_reporting_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp3_reporting_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
