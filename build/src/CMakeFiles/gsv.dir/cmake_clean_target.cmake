file(REMOVE_RECURSE
  "libgsv.a"
)
