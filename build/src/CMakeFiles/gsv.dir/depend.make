# Empty dependencies file for gsv.
# This may be replaced when dependencies are built.
