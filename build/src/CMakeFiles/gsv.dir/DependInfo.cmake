
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate_view.cc" "src/CMakeFiles/gsv.dir/core/aggregate_view.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/aggregate_view.cc.o.d"
  "/root/repo/src/core/algorithm1.cc" "src/CMakeFiles/gsv.dir/core/algorithm1.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/algorithm1.cc.o.d"
  "/root/repo/src/core/base_accessor.cc" "src/CMakeFiles/gsv.dir/core/base_accessor.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/base_accessor.cc.o.d"
  "/root/repo/src/core/consistency.cc" "src/CMakeFiles/gsv.dir/core/consistency.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/consistency.cc.o.d"
  "/root/repo/src/core/general_maintainer.cc" "src/CMakeFiles/gsv.dir/core/general_maintainer.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/general_maintainer.cc.o.d"
  "/root/repo/src/core/local_accessor.cc" "src/CMakeFiles/gsv.dir/core/local_accessor.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/local_accessor.cc.o.d"
  "/root/repo/src/core/materialized_view.cc" "src/CMakeFiles/gsv.dir/core/materialized_view.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/materialized_view.cc.o.d"
  "/root/repo/src/core/partial_materialization.cc" "src/CMakeFiles/gsv.dir/core/partial_materialization.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/partial_materialization.cc.o.d"
  "/root/repo/src/core/recompute.cc" "src/CMakeFiles/gsv.dir/core/recompute.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/recompute.cc.o.d"
  "/root/repo/src/core/swizzle.cc" "src/CMakeFiles/gsv.dir/core/swizzle.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/swizzle.cc.o.d"
  "/root/repo/src/core/union_view.cc" "src/CMakeFiles/gsv.dir/core/union_view.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/union_view.cc.o.d"
  "/root/repo/src/core/view_cluster.cc" "src/CMakeFiles/gsv.dir/core/view_cluster.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/view_cluster.cc.o.d"
  "/root/repo/src/core/view_definition.cc" "src/CMakeFiles/gsv.dir/core/view_definition.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/view_definition.cc.o.d"
  "/root/repo/src/core/virtual_view.cc" "src/CMakeFiles/gsv.dir/core/virtual_view.cc.o" "gcc" "src/CMakeFiles/gsv.dir/core/virtual_view.cc.o.d"
  "/root/repo/src/oem/object.cc" "src/CMakeFiles/gsv.dir/oem/object.cc.o" "gcc" "src/CMakeFiles/gsv.dir/oem/object.cc.o.d"
  "/root/repo/src/oem/oid.cc" "src/CMakeFiles/gsv.dir/oem/oid.cc.o" "gcc" "src/CMakeFiles/gsv.dir/oem/oid.cc.o.d"
  "/root/repo/src/oem/serialize.cc" "src/CMakeFiles/gsv.dir/oem/serialize.cc.o" "gcc" "src/CMakeFiles/gsv.dir/oem/serialize.cc.o.d"
  "/root/repo/src/oem/set_ops.cc" "src/CMakeFiles/gsv.dir/oem/set_ops.cc.o" "gcc" "src/CMakeFiles/gsv.dir/oem/set_ops.cc.o.d"
  "/root/repo/src/oem/store.cc" "src/CMakeFiles/gsv.dir/oem/store.cc.o" "gcc" "src/CMakeFiles/gsv.dir/oem/store.cc.o.d"
  "/root/repo/src/oem/transaction.cc" "src/CMakeFiles/gsv.dir/oem/transaction.cc.o" "gcc" "src/CMakeFiles/gsv.dir/oem/transaction.cc.o.d"
  "/root/repo/src/oem/value.cc" "src/CMakeFiles/gsv.dir/oem/value.cc.o" "gcc" "src/CMakeFiles/gsv.dir/oem/value.cc.o.d"
  "/root/repo/src/path/navigate.cc" "src/CMakeFiles/gsv.dir/path/navigate.cc.o" "gcc" "src/CMakeFiles/gsv.dir/path/navigate.cc.o.d"
  "/root/repo/src/path/path.cc" "src/CMakeFiles/gsv.dir/path/path.cc.o" "gcc" "src/CMakeFiles/gsv.dir/path/path.cc.o.d"
  "/root/repo/src/path/path_expression.cc" "src/CMakeFiles/gsv.dir/path/path_expression.cc.o" "gcc" "src/CMakeFiles/gsv.dir/path/path_expression.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/gsv.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/gsv.dir/query/ast.cc.o.d"
  "/root/repo/src/query/condition.cc" "src/CMakeFiles/gsv.dir/query/condition.cc.o" "gcc" "src/CMakeFiles/gsv.dir/query/condition.cc.o.d"
  "/root/repo/src/query/evaluator.cc" "src/CMakeFiles/gsv.dir/query/evaluator.cc.o" "gcc" "src/CMakeFiles/gsv.dir/query/evaluator.cc.o.d"
  "/root/repo/src/query/explain.cc" "src/CMakeFiles/gsv.dir/query/explain.cc.o" "gcc" "src/CMakeFiles/gsv.dir/query/explain.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/gsv.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/gsv.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/gsv.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/gsv.dir/query/parser.cc.o.d"
  "/root/repo/src/relational/counting.cc" "src/CMakeFiles/gsv.dir/relational/counting.cc.o" "gcc" "src/CMakeFiles/gsv.dir/relational/counting.cc.o.d"
  "/root/repo/src/relational/flatten.cc" "src/CMakeFiles/gsv.dir/relational/flatten.cc.o" "gcc" "src/CMakeFiles/gsv.dir/relational/flatten.cc.o.d"
  "/root/repo/src/relational/spj_view.cc" "src/CMakeFiles/gsv.dir/relational/spj_view.cc.o" "gcc" "src/CMakeFiles/gsv.dir/relational/spj_view.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/CMakeFiles/gsv.dir/relational/table.cc.o" "gcc" "src/CMakeFiles/gsv.dir/relational/table.cc.o.d"
  "/root/repo/src/shell/shell.cc" "src/CMakeFiles/gsv.dir/shell/shell.cc.o" "gcc" "src/CMakeFiles/gsv.dir/shell/shell.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/gsv.dir/util/status.cc.o" "gcc" "src/CMakeFiles/gsv.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/gsv.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/gsv.dir/util/string_util.cc.o.d"
  "/root/repo/src/warehouse/aux_cache.cc" "src/CMakeFiles/gsv.dir/warehouse/aux_cache.cc.o" "gcc" "src/CMakeFiles/gsv.dir/warehouse/aux_cache.cc.o.d"
  "/root/repo/src/warehouse/cost_model.cc" "src/CMakeFiles/gsv.dir/warehouse/cost_model.cc.o" "gcc" "src/CMakeFiles/gsv.dir/warehouse/cost_model.cc.o.d"
  "/root/repo/src/warehouse/monitor.cc" "src/CMakeFiles/gsv.dir/warehouse/monitor.cc.o" "gcc" "src/CMakeFiles/gsv.dir/warehouse/monitor.cc.o.d"
  "/root/repo/src/warehouse/path_knowledge.cc" "src/CMakeFiles/gsv.dir/warehouse/path_knowledge.cc.o" "gcc" "src/CMakeFiles/gsv.dir/warehouse/path_knowledge.cc.o.d"
  "/root/repo/src/warehouse/remote_accessor.cc" "src/CMakeFiles/gsv.dir/warehouse/remote_accessor.cc.o" "gcc" "src/CMakeFiles/gsv.dir/warehouse/remote_accessor.cc.o.d"
  "/root/repo/src/warehouse/source_wrapper_gsdb.cc" "src/CMakeFiles/gsv.dir/warehouse/source_wrapper_gsdb.cc.o" "gcc" "src/CMakeFiles/gsv.dir/warehouse/source_wrapper_gsdb.cc.o.d"
  "/root/repo/src/warehouse/update_event.cc" "src/CMakeFiles/gsv.dir/warehouse/update_event.cc.o" "gcc" "src/CMakeFiles/gsv.dir/warehouse/update_event.cc.o.d"
  "/root/repo/src/warehouse/warehouse.cc" "src/CMakeFiles/gsv.dir/warehouse/warehouse.cc.o" "gcc" "src/CMakeFiles/gsv.dir/warehouse/warehouse.cc.o.d"
  "/root/repo/src/warehouse/wrapper.cc" "src/CMakeFiles/gsv.dir/warehouse/wrapper.cc.o" "gcc" "src/CMakeFiles/gsv.dir/warehouse/wrapper.cc.o.d"
  "/root/repo/src/workload/dag_gen.cc" "src/CMakeFiles/gsv.dir/workload/dag_gen.cc.o" "gcc" "src/CMakeFiles/gsv.dir/workload/dag_gen.cc.o.d"
  "/root/repo/src/workload/person_db.cc" "src/CMakeFiles/gsv.dir/workload/person_db.cc.o" "gcc" "src/CMakeFiles/gsv.dir/workload/person_db.cc.o.d"
  "/root/repo/src/workload/relational_gen.cc" "src/CMakeFiles/gsv.dir/workload/relational_gen.cc.o" "gcc" "src/CMakeFiles/gsv.dir/workload/relational_gen.cc.o.d"
  "/root/repo/src/workload/tree_gen.cc" "src/CMakeFiles/gsv.dir/workload/tree_gen.cc.o" "gcc" "src/CMakeFiles/gsv.dir/workload/tree_gen.cc.o.d"
  "/root/repo/src/workload/update_gen.cc" "src/CMakeFiles/gsv.dir/workload/update_gen.cc.o" "gcc" "src/CMakeFiles/gsv.dir/workload/update_gen.cc.o.d"
  "/root/repo/src/workload/web_gen.cc" "src/CMakeFiles/gsv.dir/workload/web_gen.cc.o" "gcc" "src/CMakeFiles/gsv.dir/workload/web_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
