file(REMOVE_RECURSE
  "CMakeFiles/gsvsh.dir/gsvsh.cc.o"
  "CMakeFiles/gsvsh.dir/gsvsh.cc.o.d"
  "gsvsh"
  "gsvsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsvsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
