# Empty dependencies file for gsvsh.
# This may be replaced when dependencies are built.
