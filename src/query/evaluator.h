#ifndef GSV_QUERY_EVALUATOR_H_
#define GSV_QUERY_EVALUATOR_H_

#include <string_view>

#include "oem/store.h"
#include "query/ast.h"
#include "util/status.h"

namespace gsv {

// Evaluates `query` against `store` and returns the answer OID set
// (paper §2): all objects X in entry.sel_path for which the condition
// holds, scoped by WITHIN and intersected per ANS INT.
//
// Entry resolution: a registered database name resolves to its database
// object; otherwise the entry is taken as an OID. An unknown entry is an
// error (the paper requires the user to provide a valid entry point).
// WITHIN/ANS INT naming an unregistered database is an error.
//
// How one query evaluation was answered. The select stage is an index
// probe when the store's label index is enabled and the select path is a
// constant label sequence; otherwise it is a traversal. Condition paths
// route through the same machinery per candidate, so the probe/fallback
// deltas cover them too.
struct QueryPlan {
  enum class Select { kIndexProbe, kTraversal };
  Select select = Select::kTraversal;
  int64_t index_probes = 0;     // StoreMetrics delta during this query
  int64_t index_fallbacks = 0;  // primitives that had to traverse

  const char* SelectName() const {
    return select == Select::kIndexProbe ? "index-probe" : "traversal";
  }
};

// The WITHIN filter hides out-of-database objects from both the select
// traversal and condition traversals; the entry object itself is exempt
// (it is the explicitly supplied starting point).
// When `plan` is non-null it receives the chosen plan and the per-query
// index counter deltas.
Result<OidSet> EvaluateQuery(const ObjectStore& store, const Query& query,
                             QueryPlan* plan = nullptr);

// Parses and evaluates in one step.
Result<OidSet> EvaluateQueryText(const ObjectStore& store,
                                 std::string_view text);

// K-way merge of individually sorted (lexicographic, duplicate-free) OID
// runs into one sorted, duplicate-free answer — the merge half of a
// sharded view read, where each shard contributes the slice of members it
// owns. Slices of a partitioned view are disjoint, so the merge of K runs
// is byte-identical to the single run a 1-shard warehouse produces.
std::vector<Oid> MergeSortedOidRuns(std::vector<std::vector<Oid>> runs);

// Wraps an answer set as the paper's answer object
// <ans_oid, answer, set, value(ANS)> (§2). Does not insert it anywhere.
Object MakeAnswerObject(const Oid& ans_oid, const OidSet& answer);

// Convenience for the common pattern of storing a query answer: builds the
// answer object, puts it in the store, and registers it as a database under
// `name` so follow-on queries can use it as an entry point or in
// WITHIN / ANS INT clauses (§3.1: views are query answers usable this way).
Status StoreAnswerAs(ObjectStore& store, const std::string& name,
                     const Oid& ans_oid, const OidSet& answer);

}  // namespace gsv

#endif  // GSV_QUERY_EVALUATOR_H_
