#ifndef GSV_QUERY_PARSER_H_
#define GSV_QUERY_PARSER_H_

#include <string_view>

#include "query/ast.h"
#include "util/status.h"

namespace gsv {

// Parses a query in the paper's syntax (2.1), e.g.
//   "SELECT ROOT.professor X WHERE X.age > 40 WITHIN PERSON ANS INT D1"
// Conditions may combine predicates with AND/OR and parentheses (§6
// extension). The condition's bound variable must match the SELECT binder.
Result<Query> ParseQuery(std::string_view text);

// Parses "define view NAME as: SELECT ..." / "define mview NAME as: ..."
// (§3.1, §3.2; the colon after `as` is optional).
Result<DefineStatement> ParseDefine(std::string_view text);

}  // namespace gsv

#endif  // GSV_QUERY_PARSER_H_
