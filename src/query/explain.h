#ifndef GSV_QUERY_EXPLAIN_H_
#define GSV_QUERY_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "oem/store.h"
#include "query/ast.h"
#include "query/evaluator.h"
#include "util/status.h"

namespace gsv {

// A step-by-step account of one query evaluation: how the entry resolved,
// how the frontier evolved along the select path, what the condition
// filtered, and what the scoping clauses did. Debugging/tooling aid — the
// shell's `explain` command prints it.
struct QueryExplanation {
  struct SelectStep {
    std::string atom;          // the path component ("professor", "*", "?")
    size_t frontier_before = 0;
    size_t frontier_after = 0;
    int64_t edges_examined = 0;
    int64_t probes_examined = 0;  // index posting scans for this wave
  };

  std::string entry;           // as written
  Oid entry_oid;               // what it resolved to
  bool entry_was_database = false;
  bool scoped = false;         // WITHIN present
  std::vector<SelectStep> steps;
  size_t candidates = 0;       // objects reaching the end of the select path
  size_t passed_condition = 0;
  size_t after_ans_int = 0;    // == passed_condition when no ANS INT
  OidSet answer;
  QueryPlan plan;              // chosen select plan + index counter deltas
  int64_t total_edges = 0;
  int64_t total_lookups = 0;
  // Buffer-pool faults this evaluation caused (paged storage engine only;
  // always 0 on the memory engine, and then omitted from ToString).
  int64_t total_page_faults = 0;
  // Point reads served straight from the swizzle table vs the routed slow
  // path (paged engine only; both 0 — and omitted — on the memory engine).
  int64_t total_swizzle_hits = 0;
  int64_t total_swizzle_misses = 0;

  std::string ToString() const;
};

// Evaluates `query` while recording the explanation. The answer equals
// EvaluateQuery's for the same store and query.
Result<QueryExplanation> ExplainQuery(const ObjectStore& store,
                                      const Query& query);
Result<QueryExplanation> ExplainQueryText(const ObjectStore& store,
                                          std::string_view text);

// Fan-out account of one sharded view read: how many members each shard's
// slice contributed to the k-way merge, plus the warehouse's cumulative
// cross-shard traffic. ShardedWarehouse::ExplainView fills it; the bench
// and the shell print it.
struct ShardedViewExplanation {
  std::string view;
  uint32_t shards = 0;
  size_t total_members = 0;
  std::vector<size_t> members_per_shard;
  // Cumulative cross-shard maintenance traffic (merged WarehouseCosts).
  int64_t cross_shard_exports = 0;
  int64_t cross_shard_applies = 0;
  int64_t cross_shard_probes = 0;

  // Maintenance engine ("algorithm1", "general", or "gdn"; empty when the
  // warehouse predates engine selection or the view is unknown). The GDN
  // counters describe the view's discrimination network; general_caps_hit
  // counts truncated general-engine candidate searches.
  std::string engine;
  size_t gdn_nodes = 0;        // memo nodes (reach + one per predicate)
  size_t gdn_matches = 0;      // live partial matches across the network
  int64_t gdn_propagations = 0;
  int64_t gdn_rebuilds = 0;
  int64_t general_caps_hit = 0;

  std::string ToString() const;
};

}  // namespace gsv

#endif  // GSV_QUERY_EXPLAIN_H_
