#ifndef GSV_QUERY_LEXER_H_
#define GSV_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gsv {

// Token kinds of the view/query language (paper §2 syntax 2.1, plus the
// `define [m]view NAME as:` form of §3 and the AND/OR condition extension
// that §6 calls straightforward).
enum class TokenKind {
  // Keywords (case-insensitive in the input).
  kSelect,
  kWhere,
  kWithin,
  kAns,
  kInt,    // the INT of "ANS INT"
  kAnd,
  kOr,
  kTrue,
  kFalse,
  kDefine,
  kView,
  kMview,
  kAs,
  // Literals and names.
  kIdent,      // OIDs, database names, labels, binder variables
  kIntLit,
  kRealLit,
  kStringLit,  // 'text' or "text"
  // Punctuation.
  kDot,
  kStar,
  kQuestion,
  kColon,
  kLParen,
  kRParen,
  // Comparison operators.
  kEq,   // =  (also accepts ==)
  kNe,   // != (also accepts <>)
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // raw text (string literals: unquoted content)
  int64_t int_value = 0;  // kIntLit
  double real_value = 0;  // kRealLit
  size_t position = 0;    // byte offset in the input, for error messages
};

// Tokenizes `text`. The trailing kEnd token is always present on success.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace gsv

#endif  // GSV_QUERY_LEXER_H_
