#ifndef GSV_QUERY_CONDITION_H_
#define GSV_QUERY_CONDITION_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "oem/store.h"
#include "oem/value.h"
#include "path/navigate.h"
#include "path/path_expression.h"

namespace gsv {

// Comparison operators of the WHERE clause.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CompareOpName(CompareOp op);

// True iff `lhs op rhs` for atomic values. Incomparable values (type
// mismatch, any set) make every operator except != return false; != returns
// true for values of different atomic types.
bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs);

// One `X.cond_path op literal` predicate. The paper's cond() accepts the
// set of objects X.cond_path and is true if *any* of their values satisfies
// the comparison (§2: "returns true if one of those object values satisfy
// the condition"). Only atomic objects participate.
struct Predicate {
  PathExpression path;  // relative to the bound object X; may be empty
  CompareOp op = CompareOp::kEq;
  Value literal;        // atomic

  // cond(v) of Algorithm 1: the comparison applied to one bare value.
  bool Holds(const Value& value) const {
    return CompareValues(value, op, literal);
  }

  std::string ToString(const std::string& binder = "X") const;
};

// The WHERE clause: a predicate, or an AND/OR tree of predicates (§6 lists
// multiple conditions as a straightforward extension; Algorithm 1 proper
// requires a single predicate with a constant path — see IsSimple()).
// Immutable and cheaply copyable (shared structure).
class Condition {
 public:
  // An always-true condition (a query with no WHERE clause).
  Condition() = default;

  static Condition MakePredicate(Predicate predicate);
  static Condition And(Condition lhs, Condition rhs);
  static Condition Or(Condition lhs, Condition rhs);

  // True for the no-WHERE-clause condition.
  bool IsTrivial() const { return root_ == nullptr; }

  // True if this is a single predicate over a constant (wildcard-free)
  // path — the "simple view" shape of §4.2.
  bool IsSimple() const;
  // Requires IsSimple().
  const Predicate& simple_predicate() const;

  // All predicates appearing in the condition tree, left to right.
  std::vector<const Predicate*> Predicates() const;

  // Evaluates the condition on object `x`: each predicate traverses
  // x.cond_path (honoring `filter` for WITHIN scoping) and is true if any
  // reached atomic object's value satisfies the comparison.
  bool Evaluate(const ObjectStore& store, const Oid& x,
                const OidFilter& filter = nullptr) const;

  // Evaluates the AND/OR tree with `holds` deciding each leaf predicate —
  // the hook a memoizing maintainer uses to answer predicates from cached
  // partial matches instead of traversals. Trivial conditions are true.
  bool EvaluateWith(
      const std::function<bool(const Predicate&)>& holds) const;

  std::string ToString(const std::string& binder = "X") const;

 private:
  struct Node {
    enum class Kind { kPredicate, kAnd, kOr };
    Kind kind = Kind::kPredicate;
    std::optional<Predicate> predicate;
    std::shared_ptr<const Node> lhs;
    std::shared_ptr<const Node> rhs;
  };

  explicit Condition(std::shared_ptr<const Node> root)
      : root_(std::move(root)) {}

  static bool EvaluateNode(const Node& node, const ObjectStore& store,
                           const Oid& x, const OidFilter& filter);
  static bool EvaluateNodeWith(
      const Node& node, const std::function<bool(const Predicate&)>& holds);
  static void CollectPredicates(const Node& node,
                                std::vector<const Predicate*>* out);
  static std::string NodeToString(const Node& node, const std::string& binder);

  std::shared_ptr<const Node> root_;  // nullptr = trivially true
};

}  // namespace gsv

#endif  // GSV_QUERY_CONDITION_H_
