#include "query/evaluator.h"

#include "path/navigate.h"
#include "query/parser.h"

namespace gsv {

Result<OidSet> EvaluateQuery(const ObjectStore& store, const Query& query,
                             QueryPlan* plan) {
  const StoreMetrics& metrics = store.metrics();
  const int64_t probes_base = metrics.index_probes;
  const int64_t fallbacks_base = metrics.index_fallbacks;
  if (plan != nullptr) {
    plan->select = store.options().enable_label_index &&
                           query.select_path.IsConstant()
                       ? QueryPlan::Select::kIndexProbe
                       : QueryPlan::Select::kTraversal;
  }

  // Resolve the entry point: database name first, then literal OID.
  Oid entry = store.DatabaseOid(query.entry);
  if (!entry.valid()) entry = Oid(query.entry);
  if (!store.Contains(entry)) {
    return Status::NotFound("query entry point '" + query.entry +
                            "' is neither a database nor an object");
  }

  OidFilter filter;
  if (query.within_db.has_value()) {
    const std::string& within = *query.within_db;
    if (!store.DatabaseOid(within).valid()) {
      return Status::NotFound("WITHIN database '" + within +
                              "' is not registered");
    }
    filter = [&store, &within, &entry](const Oid& oid) {
      return oid == entry || store.InDatabase(within, oid);
    };
  }

  OidSet candidates =
      query.select_path.IsConstant()
          ? EvalPath(store, entry, query.select_path.ToPath(), filter)
          : EvalExpression(store, entry, query.select_path, filter);

  OidSet answer;
  for (const Oid& x : candidates) {
    if (query.where.Evaluate(store, x, filter)) answer.Insert(x);
  }

  if (query.ans_int_db.has_value()) {
    Oid db_oid = store.DatabaseOid(*query.ans_int_db);
    if (!db_oid.valid()) {
      return Status::NotFound("ANS INT database '" + *query.ans_int_db +
                              "' is not registered");
    }
    const Object* db = store.Get(db_oid);
    if (db == nullptr || !db->IsSet()) {
      return Status::FailedPrecondition("ANS INT database object " +
                                        db_oid.str() + " is not a set object");
    }
    answer = OidSet::Intersect(answer, db->children());
  }
  if (plan != nullptr) {
    plan->index_probes = metrics.index_probes - probes_base;
    plan->index_fallbacks = metrics.index_fallbacks - fallbacks_base;
  }
  return answer;
}

Result<OidSet> EvaluateQueryText(const ObjectStore& store,
                                 std::string_view text) {
  GSV_ASSIGN_OR_RETURN(Query query, ParseQuery(text));
  return EvaluateQuery(store, query);
}

std::vector<Oid> MergeSortedOidRuns(std::vector<std::vector<Oid>> runs) {
  std::vector<Oid> merged;
  size_t total = 0;
  for (const std::vector<Oid>& run : runs) total += run.size();
  merged.reserve(total);
  // K stays tiny (shard counts), so a linear scan over the run heads beats
  // a heap and keeps the merge allocation-free past the reserve.
  std::vector<size_t> heads(runs.size(), 0);
  for (;;) {
    size_t best = runs.size();
    for (size_t i = 0; i < runs.size(); ++i) {
      if (heads[i] >= runs[i].size()) continue;
      if (best == runs.size() || runs[i][heads[i]] < runs[best][heads[best]]) {
        best = i;
      }
    }
    if (best == runs.size()) break;
    const Oid& next = runs[best][heads[best]++];
    if (merged.empty() || merged.back() != next) merged.push_back(next);
  }
  return merged;
}

Object MakeAnswerObject(const Oid& ans_oid, const OidSet& answer) {
  return Object(ans_oid, "answer", Value::Set(answer));
}

Status StoreAnswerAs(ObjectStore& store, const std::string& name,
                     const Oid& ans_oid, const OidSet& answer) {
  GSV_RETURN_IF_ERROR(store.Put(MakeAnswerObject(ans_oid, answer)));
  return store.RegisterDatabase(name, ans_oid);
}

}  // namespace gsv
