#include "query/explain.h"

#include <sstream>

#include "path/navigate.h"
#include "query/parser.h"

namespace gsv {

std::string QueryExplanation::ToString() const {
  std::ostringstream out;
  out << "entry " << entry << " -> " << entry_oid.str()
      << (entry_was_database ? " (database)" : " (object)")
      << (scoped ? ", WITHIN scope active" : "") << "\n";
  out << "plan: " << plan.SelectName() << "\n";
  for (const SelectStep& step : steps) {
    out << "  ." << step.atom << ": " << step.frontier_before << " -> "
        << step.frontier_after << " objects (" << step.edges_examined
        << " edges, " << step.probes_examined << " probes)\n";
  }
  out << "  candidates: " << candidates
      << ", passed condition: " << passed_condition;
  if (after_ans_int != passed_condition) {
    out << ", after ANS INT: " << after_ans_int;
  }
  out << "\n  answer size " << answer.size() << "; " << total_edges
      << " edges, " << total_lookups << " lookups, " << plan.index_probes
      << " index probes, " << plan.index_fallbacks << " fallbacks";
  // Paging appears only when the store's engine actually faulted, so the
  // memory-engine output (and its golden tests) is unchanged.
  if (total_page_faults > 0) {
    out << ", " << total_page_faults << " page faults";
  }
  if (total_swizzle_hits > 0 || total_swizzle_misses > 0) {
    out << ", swizzle " << total_swizzle_hits << "/"
        << (total_swizzle_hits + total_swizzle_misses) << " hits";
  }
  return out.str();
}

Result<QueryExplanation> ExplainQuery(const ObjectStore& store,
                                      const Query& query) {
  QueryExplanation explanation;
  explanation.entry = query.entry;

  Oid entry_oid = store.DatabaseOid(query.entry);
  explanation.entry_was_database = entry_oid.valid();
  if (!entry_oid.valid()) entry_oid = Oid(query.entry);
  if (!store.Contains(entry_oid)) {
    return Status::NotFound("query entry point '" + query.entry +
                            "' is neither a database nor an object");
  }
  explanation.entry_oid = entry_oid;

  OidFilter filter;
  if (query.within_db.has_value()) {
    const std::string& within = *query.within_db;
    if (!store.DatabaseOid(within).valid()) {
      return Status::NotFound("WITHIN database '" + within +
                              "' is not registered");
    }
    explanation.scoped = true;
    filter = [&store, &within, &entry_oid](const Oid& oid) {
      return oid == entry_oid || store.InDatabase(within, oid);
    };
  }

  const StoreMetrics& metrics = store.metrics();
  int64_t edges_base = metrics.edges_traversed;
  int64_t lookups_base = metrics.lookups;
  int64_t probes_base = metrics.index_probes;
  int64_t fallbacks_base = metrics.index_fallbacks;
  int64_t faults_base = metrics.page_faults;
  int64_t swizzle_hits_base = metrics.swizzle_hits;
  int64_t swizzle_misses_base = metrics.swizzle_misses;
  explanation.plan.select =
      store.options().enable_label_index && query.select_path.IsConstant()
          ? QueryPlan::Select::kIndexProbe
          : QueryPlan::Select::kTraversal;

  OidSet frontier;
  frontier.Insert(entry_oid);
  if (query.select_path.IsConstant()) {
    // Step the frontier one label at a time, recording each wave.
    const Path path = query.select_path.ToPath();
    for (size_t i = 0; i < path.size(); ++i) {
      QueryExplanation::SelectStep step;
      step.atom = path.label(i);
      step.frontier_before = frontier.size();
      int64_t edges_before = metrics.edges_traversed;
      int64_t probes_before = metrics.index_probes;
      OidSet next;
      Path single(std::vector<std::string>{path.label(i)});
      for (const Oid& oid : frontier) {
        next = OidSet::Union(next, EvalPath(store, oid, single, filter));
      }
      frontier = std::move(next);
      step.frontier_after = frontier.size();
      step.edges_examined = metrics.edges_traversed - edges_before;
      step.probes_examined = metrics.index_probes - probes_before;
      explanation.steps.push_back(std::move(step));
    }
  } else {
    // Wildcard expressions run the NFA in one wave; report it as a single
    // step over the whole expression.
    QueryExplanation::SelectStep step;
    step.atom = query.select_path.ToString();
    step.frontier_before = frontier.size();
    int64_t edges_before = metrics.edges_traversed;
    int64_t probes_before = metrics.index_probes;
    frontier = EvalExpression(store, entry_oid, query.select_path, filter);
    step.frontier_after = frontier.size();
    step.edges_examined = metrics.edges_traversed - edges_before;
    step.probes_examined = metrics.index_probes - probes_before;
    explanation.steps.push_back(std::move(step));
  }
  explanation.candidates = frontier.size();

  for (const Oid& x : frontier) {
    if (query.where.Evaluate(store, x, filter)) {
      explanation.answer.Insert(x);
    }
  }
  explanation.passed_condition = explanation.answer.size();
  explanation.after_ans_int = explanation.passed_condition;

  if (query.ans_int_db.has_value()) {
    Oid db_oid = store.DatabaseOid(*query.ans_int_db);
    if (!db_oid.valid()) {
      return Status::NotFound("ANS INT database '" + *query.ans_int_db +
                              "' is not registered");
    }
    const Object* db = store.Get(db_oid);
    if (db == nullptr || !db->IsSet()) {
      return Status::FailedPrecondition("ANS INT database object " +
                                        db_oid.str() + " is not a set object");
    }
    explanation.answer = OidSet::Intersect(explanation.answer, db->children());
    explanation.after_ans_int = explanation.answer.size();
  }

  explanation.total_edges = metrics.edges_traversed - edges_base;
  explanation.total_lookups = metrics.lookups - lookups_base;
  explanation.plan.index_probes = metrics.index_probes - probes_base;
  explanation.plan.index_fallbacks = metrics.index_fallbacks - fallbacks_base;
  explanation.total_page_faults = metrics.page_faults - faults_base;
  explanation.total_swizzle_hits = metrics.swizzle_hits - swizzle_hits_base;
  explanation.total_swizzle_misses =
      metrics.swizzle_misses - swizzle_misses_base;
  return explanation;
}

Result<QueryExplanation> ExplainQueryText(const ObjectStore& store,
                                          std::string_view text) {
  GSV_ASSIGN_OR_RETURN(Query query, ParseQuery(text));
  return ExplainQuery(store, query);
}

std::string ShardedViewExplanation::ToString() const {
  std::ostringstream out;
  out << "sharded view '" << view << "': " << total_members << " member"
      << (total_members == 1 ? "" : "s") << " across " << shards << " shard"
      << (shards == 1 ? "" : "s") << "\n";
  out << "  fan-out: per-shard slices [";
  for (size_t i = 0; i < members_per_shard.size(); ++i) {
    if (i != 0) out << ", ";
    out << members_per_shard[i];
  }
  out << "], k-way merged in lexicographic OID order\n";
  out << "  cross-shard traffic: " << cross_shard_exports << " exported, "
      << cross_shard_applies << " applied, " << cross_shard_probes
      << " membership probes\n";
  if (!engine.empty()) {
    out << "  engine: " << engine;
    if (engine == "gdn") {
      out << " (" << gdn_nodes << " memo node" << (gdn_nodes == 1 ? "" : "s")
          << ", " << gdn_matches << " partial match"
          << (gdn_matches == 1 ? "" : "es") << ", " << gdn_propagations
          << " propagations, " << gdn_rebuilds << " rebuild"
          << (gdn_rebuilds == 1 ? "" : "s") << ")";
    } else if (engine == "general") {
      out << " (" << general_caps_hit << " caps hit)";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace gsv
