#include "query/ast.h"

namespace gsv {

std::string Query::ToString() const {
  std::string out = "SELECT " + entry;
  if (select_path.size() > 0) out += "." + select_path.ToString();
  out += " " + binder;
  if (!where.IsTrivial()) out += " WHERE " + where.ToString(binder);
  if (within_db.has_value()) out += " WITHIN " + *within_db;
  if (ans_int_db.has_value()) out += " ANS INT " + *ans_int_db;
  return out;
}

std::string DefineStatement::ToString() const {
  return std::string("define ") + (materialized ? "mview " : "view ") + name +
         " as: " + query.ToString();
}

}  // namespace gsv
