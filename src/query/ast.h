#ifndef GSV_QUERY_AST_H_
#define GSV_QUERY_AST_H_

#include <optional>
#include <string>

#include "path/path_expression.h"
#include "query/condition.h"

namespace gsv {

// A parsed query (paper syntax 2.1):
//
//   SELECT OBJ.sel_path_exp X
//   WHERE cond(X.cond_path_exp)
//   [WITHIN DB1]
//   [ANS INT DB2]
//
// `entry` is an OID or a database name; the evaluator resolves database
// names first (paper: "A database name DB can also be used as the entry
// point"), so `DB.?` starts at all objects in DB.
struct Query {
  std::string entry;
  PathExpression select_path;
  std::string binder = "X";
  Condition where;                       // trivial when no WHERE clause
  std::optional<std::string> within_db;  // WITHIN DB1
  std::optional<std::string> ans_int_db; // ANS INT DB2

  // True if the query has the "simple view" shape that Algorithm 1
  // maintains (§4.2): constant select path, a WHERE that is a single
  // predicate over a constant path (or absent), and no scoping clause —
  // WITHIN/ANS INT are §6 relaxations Algorithm 1 never consults, so a
  // scoped view must take a general maintainer or stay virtual.
  bool IsSimple() const {
    return select_path.IsConstant() &&
           (where.IsTrivial() || where.IsSimple()) &&
           !within_db.has_value() && !ans_int_db.has_value();
  }

  std::string ToString() const;
};

// A parsed `define view NAME as: <query>` / `define mview NAME as: <query>`
// statement (paper §3.1–3.2).
struct DefineStatement {
  std::string name;
  bool materialized = false;
  Query query;

  std::string ToString() const;
};

}  // namespace gsv

#endif  // GSV_QUERY_AST_H_
