#include "query/lexer.h"

#include <cctype>
#include <unordered_map>

#include "util/string_util.h"

namespace gsv {
namespace {

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

const std::unordered_map<std::string, TokenKind>& KeywordTable() {
  static const auto* table = new std::unordered_map<std::string, TokenKind>{
      {"select", TokenKind::kSelect}, {"where", TokenKind::kWhere},
      {"within", TokenKind::kWithin}, {"ans", TokenKind::kAns},
      {"int", TokenKind::kInt},       {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},         {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},   {"define", TokenKind::kDefine},
      {"view", TokenKind::kView},     {"mview", TokenKind::kMview},
      {"as", TokenKind::kAs},
  };
  return *table;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kSelect: return "SELECT";
    case TokenKind::kWhere: return "WHERE";
    case TokenKind::kWithin: return "WITHIN";
    case TokenKind::kAns: return "ANS";
    case TokenKind::kInt: return "INT";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kTrue: return "TRUE";
    case TokenKind::kFalse: return "FALSE";
    case TokenKind::kDefine: return "DEFINE";
    case TokenKind::kView: return "VIEW";
    case TokenKind::kMview: return "MVIEW";
    case TokenKind::kAs: return "AS";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kRealLit: return "real literal";
    case TokenKind::kStringLit: return "string literal";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEnd: return "end of input";
  }
  return "unknown";
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();

  auto push = [&](TokenKind kind, std::string tok_text, size_t pos) {
    Token t;
    t.kind = kind;
    t.text = std::move(tok_text);
    t.position = pos;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(text[i])) ++i;
      std::string word(text.substr(start, i - start));
      auto it = KeywordTable().find(ToLower(word));
      push(it != KeywordTable().end() ? it->second : TokenKind::kIdent,
           std::move(word), start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      ++i;  // sign or first digit
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      bool is_real = false;
      if (i + 1 < n && text[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        is_real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      std::string num(text.substr(start, i - start));
      Token t;
      t.text = num;
      t.position = start;
      if (is_real) {
        std::optional<double> value = ParseDouble(num);
        if (!value.has_value()) {
          return Status::InvalidArgument("real literal out of range: " + num);
        }
        t.kind = TokenKind::kRealLit;
        t.real_value = *value;
      } else {
        std::optional<int64_t> value = ParseInt64(num);
        if (!value.has_value()) {
          return Status::InvalidArgument("integer literal out of range: " +
                                         num);
        }
        t.kind = TokenKind::kIntLit;
        t.int_value = *value;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"' || c == '`') {
      // The paper prints strings as `John'; accept ` as an opening quote
      // closed by '.
      char close = (c == '`') ? '\'' : c;
      ++i;
      size_t content_start = i;
      while (i < n && text[i] != close) ++i;
      if (i >= n) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      Token t;
      t.kind = TokenKind::kStringLit;
      t.text = std::string(text.substr(content_start, i - content_start));
      t.position = start;
      tokens.push_back(std::move(t));
      ++i;  // closing quote
      continue;
    }
    switch (c) {
      case '.': push(TokenKind::kDot, ".", start); ++i; continue;
      case '*': push(TokenKind::kStar, "*", start); ++i; continue;
      case '?': push(TokenKind::kQuestion, "?", start); ++i; continue;
      case ':': push(TokenKind::kColon, ":", start); ++i; continue;
      case '(': push(TokenKind::kLParen, "(", start); ++i; continue;
      case ')': push(TokenKind::kRParen, ")", start); ++i; continue;
      case '=':
        ++i;
        if (i < n && text[i] == '=') ++i;
        push(TokenKind::kEq, "=", start);
        continue;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          i += 2;
          push(TokenKind::kNe, "!=", start);
          continue;
        }
        return Status::InvalidArgument("unexpected '!' at offset " +
                                       std::to_string(start));
      case '<':
        ++i;
        if (i < n && text[i] == '=') {
          ++i;
          push(TokenKind::kLe, "<=", start);
        } else if (i < n && text[i] == '>') {
          ++i;
          push(TokenKind::kNe, "<>", start);
        } else {
          push(TokenKind::kLt, "<", start);
        }
        continue;
      case '>':
        ++i;
        if (i < n && text[i] == '=') {
          ++i;
          push(TokenKind::kGe, ">=", start);
        } else {
          push(TokenKind::kGt, ">", start);
        }
        continue;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " +
                                       std::to_string(start));
    }
  }
  push(TokenKind::kEnd, "", n);
  return tokens;
}

}  // namespace gsv
