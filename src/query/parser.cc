#include "query/parser.h"

#include <vector>

#include "query/lexer.h"

namespace gsv {
namespace {

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    GSV_ASSIGN_OR_RETURN(Query query, ParseQueryBody());
    GSV_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return query;
  }

  Result<DefineStatement> ParseDefine() {
    GSV_RETURN_IF_ERROR(Expect(TokenKind::kDefine));
    DefineStatement stmt;
    if (Peek().kind == TokenKind::kMview) {
      stmt.materialized = true;
      Advance();
    } else {
      GSV_RETURN_IF_ERROR(Expect(TokenKind::kView));
      stmt.materialized = false;
    }
    GSV_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("view name"));
    GSV_RETURN_IF_ERROR(Expect(TokenKind::kAs));
    if (Peek().kind == TokenKind::kColon) Advance();
    GSV_ASSIGN_OR_RETURN(stmt.query, ParseQueryBody());
    GSV_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t index = pos_ + ahead;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument(
          std::string("expected ") + TokenKindName(kind) + " but found " +
          TokenKindName(Peek().kind) + " at offset " +
          std::to_string(Peek().position));
    }
    Advance();
    return Status::Ok();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument(
          std::string("expected ") + what + " but found " +
          TokenKindName(Peek().kind) + " at offset " +
          std::to_string(Peek().position));
    }
    return Advance().text;
  }

  Result<Query> ParseQueryBody() {
    GSV_RETURN_IF_ERROR(Expect(TokenKind::kSelect));
    Query query;
    GSV_ASSIGN_OR_RETURN(query.entry, ExpectIdent("entry point"));
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      GSV_ASSIGN_OR_RETURN(query.select_path, ParsePathExpression());
    }
    // The binder is optional when there is no WHERE clause (the paper's
    // follow-on query "SELECT VJ.?.age" has none); it defaults to X.
    if (Peek().kind == TokenKind::kIdent) {
      query.binder = Advance().text;
    }
    if (Peek().kind == TokenKind::kWhere) {
      Advance();
      GSV_ASSIGN_OR_RETURN(query.where, ParseOr(query.binder));
    }
    if (Peek().kind == TokenKind::kWithin) {
      Advance();
      GSV_ASSIGN_OR_RETURN(query.within_db, ExpectIdent("database name"));
    }
    if (Peek().kind == TokenKind::kAns) {
      Advance();
      GSV_RETURN_IF_ERROR(Expect(TokenKind::kInt));
      GSV_ASSIGN_OR_RETURN(query.ans_int_db, ExpectIdent("database name"));
    }
    return query;
  }

  Result<PathExpression> ParsePathExpression() {
    std::vector<PathAtom> atoms;
    while (true) {
      switch (Peek().kind) {
        case TokenKind::kIdent:
          atoms.push_back(PathAtom::Label(Advance().text));
          break;
        case TokenKind::kStar:
          Advance();
          atoms.push_back(PathAtom::AnyPath());
          break;
        case TokenKind::kQuestion:
          Advance();
          atoms.push_back(PathAtom::AnyLabel());
          break;
        default:
          return Status::InvalidArgument(
              "expected path component but found " +
              std::string(TokenKindName(Peek().kind)) + " at offset " +
              std::to_string(Peek().position));
      }
      if (Peek().kind != TokenKind::kDot) break;
      Advance();
    }
    return PathExpression(std::move(atoms));
  }

  Result<Condition> ParseOr(const std::string& binder) {
    GSV_ASSIGN_OR_RETURN(Condition lhs, ParseAnd(binder));
    while (Peek().kind == TokenKind::kOr) {
      Advance();
      GSV_ASSIGN_OR_RETURN(Condition rhs, ParseAnd(binder));
      lhs = Condition::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Condition> ParseAnd(const std::string& binder) {
    GSV_ASSIGN_OR_RETURN(Condition lhs, ParsePrimary(binder));
    while (Peek().kind == TokenKind::kAnd) {
      Advance();
      GSV_ASSIGN_OR_RETURN(Condition rhs, ParsePrimary(binder));
      lhs = Condition::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Condition> ParsePrimary(const std::string& binder) {
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      GSV_ASSIGN_OR_RETURN(Condition inner, ParseOr(binder));
      GSV_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    return ParsePredicate(binder);
  }

  Result<Condition> ParsePredicate(const std::string& binder) {
    GSV_ASSIGN_OR_RETURN(std::string var, ExpectIdent("condition variable"));
    if (var != binder) {
      return Status::InvalidArgument("condition variable '" + var +
                                     "' does not match the SELECT binder '" +
                                     binder + "'");
    }
    Predicate predicate;
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      GSV_ASSIGN_OR_RETURN(predicate.path, ParsePathExpression());
    }
    GSV_ASSIGN_OR_RETURN(predicate.op, ParseCompareOp());
    GSV_ASSIGN_OR_RETURN(predicate.literal, ParseLiteral());
    return Condition::MakePredicate(std::move(predicate));
  }

  Result<CompareOp> ParseCompareOp() {
    switch (Peek().kind) {
      case TokenKind::kEq: Advance(); return CompareOp::kEq;
      case TokenKind::kNe: Advance(); return CompareOp::kNe;
      case TokenKind::kLt: Advance(); return CompareOp::kLt;
      case TokenKind::kLe: Advance(); return CompareOp::kLe;
      case TokenKind::kGt: Advance(); return CompareOp::kGt;
      case TokenKind::kGe: Advance(); return CompareOp::kGe;
      default:
        return Status::InvalidArgument(
            "expected comparison operator but found " +
            std::string(TokenKindName(Peek().kind)) + " at offset " +
            std::to_string(Peek().position));
    }
  }

  Result<Value> ParseLiteral() {
    switch (Peek().kind) {
      case TokenKind::kIntLit:
        return Value::Int(Advance().int_value);
      case TokenKind::kRealLit:
        return Value::Real(Advance().real_value);
      case TokenKind::kStringLit:
        return Value::Str(Advance().text);
      case TokenKind::kTrue:
        Advance();
        return Value::Bool(true);
      case TokenKind::kFalse:
        Advance();
        return Value::Bool(false);
      default:
        return Status::InvalidArgument(
            "expected literal but found " +
            std::string(TokenKindName(Peek().kind)) + " at offset " +
            std::to_string(Peek().position));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  GSV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<DefineStatement> ParseDefine(std::string_view text) {
  GSV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseDefine();
}

}  // namespace gsv
