#include "query/condition.h"

#include <cassert>

namespace gsv {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs) {
  Value::CompareResult cmp = lhs.Compare(rhs);
  if (!cmp.comparable) return op == CompareOp::kNe && !lhs.IsSet() && !rhs.IsSet();
  switch (op) {
    case CompareOp::kEq: return cmp.order == 0;
    case CompareOp::kNe: return cmp.order != 0;
    case CompareOp::kLt: return cmp.order < 0;
    case CompareOp::kLe: return cmp.order <= 0;
    case CompareOp::kGt: return cmp.order > 0;
    case CompareOp::kGe: return cmp.order >= 0;
  }
  return false;
}

std::string Predicate::ToString(const std::string& binder) const {
  std::string lhs = binder;
  if (path.size() > 0) lhs += "." + path.ToString();
  return lhs + " " + CompareOpName(op) + " " + literal.ToString();
}

Condition Condition::MakePredicate(Predicate predicate) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kPredicate;
  node->predicate = std::move(predicate);
  return Condition(std::move(node));
}

Condition Condition::And(Condition lhs, Condition rhs) {
  if (lhs.IsTrivial()) return rhs;
  if (rhs.IsTrivial()) return lhs;
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAnd;
  node->lhs = std::move(lhs.root_);
  node->rhs = std::move(rhs.root_);
  return Condition(std::move(node));
}

Condition Condition::Or(Condition lhs, Condition rhs) {
  if (lhs.IsTrivial() || rhs.IsTrivial()) return Condition();  // true OR x
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kOr;
  node->lhs = std::move(lhs.root_);
  node->rhs = std::move(rhs.root_);
  return Condition(std::move(node));
}

bool Condition::IsSimple() const {
  return root_ != nullptr && root_->kind == Node::Kind::kPredicate &&
         root_->predicate->path.IsConstant();
}

const Predicate& Condition::simple_predicate() const {
  assert(IsSimple());
  return *root_->predicate;
}

std::vector<const Predicate*> Condition::Predicates() const {
  std::vector<const Predicate*> out;
  if (root_ != nullptr) CollectPredicates(*root_, &out);
  return out;
}

void Condition::CollectPredicates(const Node& node,
                                  std::vector<const Predicate*>* out) {
  switch (node.kind) {
    case Node::Kind::kPredicate:
      out->push_back(&*node.predicate);
      return;
    case Node::Kind::kAnd:
    case Node::Kind::kOr:
      CollectPredicates(*node.lhs, out);
      CollectPredicates(*node.rhs, out);
      return;
  }
}

bool Condition::Evaluate(const ObjectStore& store, const Oid& x,
                         const OidFilter& filter) const {
  if (root_ == nullptr) return true;
  return EvaluateNode(*root_, store, x, filter);
}

bool Condition::EvaluateNode(const Node& node, const ObjectStore& store,
                             const Oid& x, const OidFilter& filter) {
  switch (node.kind) {
    case Node::Kind::kPredicate: {
      const Predicate& pred = *node.predicate;
      OidSet reached = pred.path.IsConstant()
                           ? EvalPath(store, x, pred.path.ToPath(), filter)
                           : EvalExpression(store, x, pred.path, filter);
      for (const Oid& oid : reached) {
        const Object* object = store.Get(oid);
        if (object != nullptr && object->IsAtomic() &&
            pred.Holds(object->value())) {
          return true;
        }
      }
      return false;
    }
    case Node::Kind::kAnd:
      return EvaluateNode(*node.lhs, store, x, filter) &&
             EvaluateNode(*node.rhs, store, x, filter);
    case Node::Kind::kOr:
      return EvaluateNode(*node.lhs, store, x, filter) ||
             EvaluateNode(*node.rhs, store, x, filter);
  }
  return false;
}

bool Condition::EvaluateWith(
    const std::function<bool(const Predicate&)>& holds) const {
  if (root_ == nullptr) return true;
  return EvaluateNodeWith(*root_, holds);
}

bool Condition::EvaluateNodeWith(
    const Node& node, const std::function<bool(const Predicate&)>& holds) {
  switch (node.kind) {
    case Node::Kind::kPredicate:
      return holds(*node.predicate);
    case Node::Kind::kAnd:
      return EvaluateNodeWith(*node.lhs, holds) &&
             EvaluateNodeWith(*node.rhs, holds);
    case Node::Kind::kOr:
      return EvaluateNodeWith(*node.lhs, holds) ||
             EvaluateNodeWith(*node.rhs, holds);
  }
  return false;
}

std::string Condition::NodeToString(const Node& node,
                                    const std::string& binder) {
  switch (node.kind) {
    case Node::Kind::kPredicate:
      return node.predicate->ToString(binder);
    case Node::Kind::kAnd:
      return "(" + NodeToString(*node.lhs, binder) + " AND " +
             NodeToString(*node.rhs, binder) + ")";
    case Node::Kind::kOr:
      return "(" + NodeToString(*node.lhs, binder) + " OR " +
             NodeToString(*node.rhs, binder) + ")";
  }
  return "";
}

std::string Condition::ToString(const std::string& binder) const {
  if (root_ == nullptr) return "true";
  return NodeToString(*root_, binder);
}

}  // namespace gsv
