#ifndef GSV_STORAGE_CHECKPOINT_H_
#define GSV_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/wal.h"
#include "util/status.h"

namespace gsv {

class ObjectStore;

// View checkpoints: durable snapshots of the warehouse's maintained state —
// the delegate store (every materialized view's objects plus database
// registrations), each view's §5.2 auxiliary cache, the per-source sequence
// watermarks, and the WAL position they correspond to. A checkpoint bounds
// recovery work: records at or below its wal_lsn never replay again, and
// segments older than the *previous* retained checkpoint are retired.
//
// On-disk layout under the durability directory:
//
//   checkpoint-<id, 6 digits>/
//     MANIFEST         text: id, wal_lsn, watermarks, view states, file CRCs
//     store.gsv        delegate store (oem/serialize text format)
//     cache-<view>.gsv auxiliary cache state, one per cached view
//     gdn-<view>.gsv   discrimination-network memo image, one per GDN view
//   CURRENT            name of the newest durable checkpoint directory
//
// Writing is capture-then-persist: the warehouse captures everything into
// in-memory strings at a quiescent point (readers keep using the published
// epoch-versioned index snapshots — capture never locks them out), then
// PersistCheckpoint does all file IO into a temp directory and atomically
// renames it into place before flipping CURRENT. A crash anywhere leaves
// either the old checkpoint or the new one — never a half state. The two
// newest checkpoints are retained (the newest could be the one a crash
// interrupted CURRENT for; the previous one backstops a corrupt newest),
// older ones are deleted.

// Per-view definition state recorded in the manifest; enough to rebuild the
// ViewEntry without re-parsing WAL history.
struct CheckpointViewState {
  std::string name;
  std::string source;  // source name the view is bound to
  int cache_mode = 0;  // Warehouse::CacheMode as int (0 none / 1 labels / 2 full)
  bool stale = false;  // quarantined at capture time (re-quarantine on recovery)
  std::string definition;  // the original "define mview ..." text
};

struct CheckpointManifest {
  uint64_t id = 0;       // monotone checkpoint number
  uint64_t wal_lsn = 0;  // last WAL lsn reflected in this snapshot
  std::vector<WalWatermark> watermarks;
  std::vector<CheckpointViewState> views;
};

// An in-memory capture ready to persist.
struct CheckpointCapture {
  CheckpointManifest manifest;
  std::string store_text;  // serialized delegate store
  // (view name, serialized AuxiliaryCache) for every cached view.
  std::vector<std::pair<std::string, std::string>> cache_texts;
  // (view name, GdnEngine memo image) for every GDN-maintained view.
  std::vector<std::pair<std::string, std::string>> gdn_texts;
};

// A checkpoint read back from disk, fully validated (manifest complete,
// every data file present with matching CRC and size).
struct LoadedCheckpoint {
  CheckpointManifest manifest;
  std::string store_text;
  std::unordered_map<std::string, std::string> cache_texts;  // by view name
  std::unordered_map<std::string, std::string> gdn_texts;    // by view name
  std::string dir_name;  // "checkpoint-<id>"
};

struct CheckpointInfo {
  std::string path;  // full path
  std::string name;  // directory name
  uint64_t id = 0;
};

// Writes `capture` under `dir` (created if missing) with the atomic
// tmp-dir + rename + CURRENT protocol, then deletes all but the two newest
// checkpoints.
Status PersistCheckpoint(const std::string& dir,
                         const CheckpointCapture& capture);

// Loads the newest valid checkpoint: the one CURRENT names when it
// validates, otherwise the highest-id directory that does. kNotFound when
// the directory holds no usable checkpoint at all.
Result<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& dir);

// All checkpoint directories under `dir`, sorted by id ascending. Does not
// validate their contents.
Result<std::vector<CheckpointInfo>> ListCheckpoints(const std::string& dir);

// Parses just the manifest of one checkpoint directory (no data-file
// validation; used for retention decisions).
Result<CheckpointManifest> ReadCheckpointManifest(
    const std::string& checkpoint_path);

// ---- Store page images (storage-engine seam, DESIGN.md §4h) ----

// Captures `store` as checkpoint text, streamed in OID order, after
// flushing the storage engine's dirty pages — so a paged beyond-RAM store
// is exported within its buffer-pool budget and its on-disk page image is
// complete (CRC-verifiable) at every checkpoint.
Result<std::string> ExportStoreImage(ObjectStore* store);

// Bulk-loads checkpoint text into `store` through the engine seam, with
// periodic storage safe points bounding resident memory — recovery and
// replica seeding never materialize the full store in RAM on a paged
// engine.
Status ImportStoreImage(const std::string& text, ObjectStore* store);

// Manifest text codec (exposed for tests and wal_inspect).
std::string EncodeCheckpointManifest(
    const CheckpointManifest& manifest,
    const std::vector<std::pair<std::string, std::string>>& files);
Result<CheckpointManifest> DecodeCheckpointManifest(
    const std::string& text,
    std::vector<std::pair<std::string, std::pair<uint32_t, uint64_t>>>*
        files);  // name -> (crc, size); optional

}  // namespace gsv

#endif  // GSV_STORAGE_CHECKPOINT_H_
