#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace gsv {

namespace fs = std::filesystem;

namespace {

// Frame = [u32 payload_len][u32 crc32(payload)]; sanity bound for the
// length word so a corrupt frame cannot ask for gigabytes.
constexpr size_t kFrameHeaderSize = 8;
constexpr uint32_t kMaxPayloadSize = 1u << 30;

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";
constexpr int kSegmentLsnDigits = 12;

std::string SegmentName(uint64_t first_lsn) {
  std::string digits = std::to_string(first_lsn);
  std::string name = kSegmentPrefix;
  name.append(kSegmentLsnDigits - std::min<size_t>(digits.size(),
                                                   kSegmentLsnDigits),
              '0');
  name += digits;
  name += kSegmentSuffix;
  return name;
}

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// ---- Little-endian encoder ----

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// OIDs travel as their strings: interned ids are process-local.
void PutOid(std::string* out, const Oid& oid) {
  PutString(out, oid.valid() ? oid.str() : std::string());
}

void PutValue(std::string* out, const Value& value) {
  PutU8(out, static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case ValueType::kInt:
      PutU64(out, static_cast<uint64_t>(value.AsInt()));
      break;
    case ValueType::kReal: {
      double d = value.AsReal();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case ValueType::kString:
      PutString(out, value.AsString());
      break;
    case ValueType::kBool:
      PutU8(out, value.AsBool() ? 1 : 0);
      break;
    case ValueType::kSet: {
      const OidSet& set = value.AsSet();
      PutU32(out, static_cast<uint32_t>(set.size()));
      for (const Oid& oid : set) PutOid(out, oid);
      break;
    }
  }
}

void PutObject(std::string* out, const Object& object) {
  PutOid(out, object.oid());
  PutString(out, object.label());
  PutValue(out, object.value());
}

void PutUpdate(std::string* out, const Update& update) {
  PutU8(out, static_cast<uint8_t>(update.kind));
  PutOid(out, update.parent);
  PutOid(out, update.child);
  PutValue(out, update.old_value);
  PutValue(out, update.new_value);
}

void PutEvent(std::string* out, const UpdateEvent& event) {
  PutU8(out, static_cast<uint8_t>(event.kind));
  PutOid(out, event.parent);
  PutOid(out, event.child);
  PutU8(out, static_cast<uint8_t>(event.level));
  PutU64(out, event.sequence);
  uint8_t flags = 0;
  if (event.parent_object.has_value()) flags |= 1u << 0;
  if (event.child_object.has_value()) flags |= 1u << 1;
  if (event.old_value.has_value()) flags |= 1u << 2;
  if (event.new_value.has_value()) flags |= 1u << 3;
  if (event.root_path.has_value()) flags |= 1u << 4;
  PutU8(out, flags);
  if (event.parent_object.has_value()) PutObject(out, *event.parent_object);
  if (event.child_object.has_value()) PutObject(out, *event.child_object);
  if (event.old_value.has_value()) PutValue(out, *event.old_value);
  if (event.new_value.has_value()) PutValue(out, *event.new_value);
  if (event.root_path.has_value()) {
    PutU32(out, static_cast<uint32_t>(event.root_path->oids.size()));
    for (const Oid& oid : event.root_path->oids) PutOid(out, oid);
    PutU32(out, static_cast<uint32_t>(event.root_path->labels.size()));
    for (const std::string& label : event.root_path->labels.labels()) {
      PutString(out, label);
    }
  }
}

// ---- Bounds-checked decoder ----

class Decoder {
 public:
  explicit Decoder(const std::string& data) : data_(data) {}

  bool ok() const { return ok_; }
  bool done() const { return pos_ == data_.size(); }
  Status Error(const std::string& what) const {
    return Status::DataLoss("wal payload: " + what);
  }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::string String() {
    uint32_t n = U32();
    if (!ok_ || !Need(n)) return {};
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  Oid DecodeOid() {
    std::string s = String();
    if (!ok_ || s.empty()) return Oid();
    return Oid(s);
  }
  Value DecodeValue() {
    switch (static_cast<ValueType>(U8())) {
      case ValueType::kInt:
        return Value::Int(static_cast<int64_t>(U64()));
      case ValueType::kReal: {
        uint64_t bits = U64();
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        return Value::Real(d);
      }
      case ValueType::kString:
        return Value::Str(String());
      case ValueType::kBool:
        return Value::Bool(U8() != 0);
      case ValueType::kSet: {
        uint32_t n = U32();
        OidSet set;
        for (uint32_t i = 0; i < n && ok_; ++i) set.Insert(DecodeOid());
        return Value::Set(std::move(set));
      }
    }
    ok_ = false;
    return Value();
  }
  Object DecodeObject() {
    Oid oid = DecodeOid();
    std::string label = String();
    Value value = DecodeValue();
    return Object(oid, std::move(label), std::move(value));
  }
  Update DecodeUpdate() {
    Update update;
    update.kind = static_cast<UpdateKind>(U8());
    update.parent = DecodeOid();
    update.child = DecodeOid();
    update.old_value = DecodeValue();
    update.new_value = DecodeValue();
    return update;
  }
  UpdateEvent DecodeEvent() {
    UpdateEvent event;
    event.kind = static_cast<UpdateKind>(U8());
    event.parent = DecodeOid();
    event.child = DecodeOid();
    event.level = static_cast<ReportingLevel>(U8());
    event.sequence = U64();
    uint8_t flags = U8();
    if (!ok_) return event;
    if (flags & (1u << 0)) event.parent_object = DecodeObject();
    if (flags & (1u << 1)) event.child_object = DecodeObject();
    if (flags & (1u << 2)) event.old_value = DecodeValue();
    if (flags & (1u << 3)) event.new_value = DecodeValue();
    if (flags & (1u << 4)) {
      RootPathInfo info;
      uint32_t n_oids = U32();
      for (uint32_t i = 0; i < n_oids && ok_; ++i) {
        info.oids.push_back(DecodeOid());
      }
      std::vector<std::string> labels;
      uint32_t n_labels = U32();
      for (uint32_t i = 0; i < n_labels && ok_; ++i) {
        labels.push_back(String());
      }
      info.labels = Path(std::move(labels));
      event.root_path = std::move(info);
    }
    return event;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kCommit:
      return "commit";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

// ---- Record builders ----

WalRecord WalRecord::Event(std::string source, UpdateEvent event) {
  WalRecord record;
  record.type = WalRecordType::kEvent;
  record.source = std::move(source);
  record.event = std::move(event);
  return record;
}

WalRecord WalRecord::Epoch(uint64_t epoch, std::string owner) {
  WalRecord record;
  record.type = WalRecordType::kEpoch;
  record.epoch = epoch;
  record.owner = std::move(owner);
  return record;
}

WalRecord WalRecord::VInsert(std::string view, Object base_object) {
  WalRecord record;
  record.type = WalRecordType::kViewDelta;
  record.view = std::move(view);
  record.op = ViewDeltaOp::kVInsert;
  record.object = std::move(base_object);
  return record;
}

WalRecord WalRecord::VDelete(std::string view, Oid base_oid) {
  WalRecord record;
  record.type = WalRecordType::kViewDelta;
  record.view = std::move(view);
  record.op = ViewDeltaOp::kVDelete;
  record.base_oid = std::move(base_oid);
  return record;
}

WalRecord WalRecord::Sync(std::string view, Update update) {
  WalRecord record;
  record.type = WalRecordType::kViewDelta;
  record.view = std::move(view);
  record.op = ViewDeltaOp::kSync;
  record.update = std::move(update);
  return record;
}

WalRecord WalRecord::Refresh(std::string view, Object base_object) {
  WalRecord record;
  record.type = WalRecordType::kViewDelta;
  record.view = std::move(view);
  record.op = ViewDeltaOp::kRefresh;
  record.object = std::move(base_object);
  return record;
}

WalRecord WalRecord::Commit(std::vector<WalWatermark> watermarks) {
  WalRecord record;
  record.type = WalRecordType::kCommit;
  record.watermarks = std::move(watermarks);
  return record;
}

WalRecord WalRecord::ViewDef(std::string definition, int cache_mode,
                             std::string source) {
  WalRecord record;
  record.type = WalRecordType::kViewDef;
  record.definition = std::move(definition);
  record.cache_mode = cache_mode;
  record.source = std::move(source);
  return record;
}

// ---- Payload codec ----

std::string EncodeWalPayload(const WalRecord& record) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(record.type));
  PutU64(&payload, record.lsn);
  switch (record.type) {
    case WalRecordType::kEvent:
      PutString(&payload, record.source);
      PutEvent(&payload, record.event);
      break;
    case WalRecordType::kViewDelta:
      PutString(&payload, record.view);
      PutU8(&payload, static_cast<uint8_t>(record.op));
      switch (record.op) {
        case ViewDeltaOp::kVInsert:
        case ViewDeltaOp::kRefresh:
          PutObject(&payload, *record.object);
          break;
        case ViewDeltaOp::kVDelete:
          PutOid(&payload, record.base_oid);
          break;
        case ViewDeltaOp::kSync:
          PutUpdate(&payload, record.update);
          break;
      }
      break;
    case WalRecordType::kCommit:
      PutU32(&payload, static_cast<uint32_t>(record.watermarks.size()));
      for (const WalWatermark& mark : record.watermarks) {
        PutString(&payload, mark.source);
        PutU64(&payload, mark.last_sequence);
      }
      break;
    case WalRecordType::kViewDef:
      PutString(&payload, record.definition);
      PutU8(&payload, static_cast<uint8_t>(record.cache_mode));
      PutString(&payload, record.source);
      break;
    case WalRecordType::kEpoch:
      PutU64(&payload, record.epoch);
      PutString(&payload, record.owner);
      break;
  }
  return payload;
}

Result<WalRecord> DecodeWalPayload(const std::string& payload) {
  Decoder in(payload);
  WalRecord record;
  record.type = static_cast<WalRecordType>(in.U8());
  record.lsn = in.U64();
  switch (record.type) {
    case WalRecordType::kEvent:
      record.source = in.String();
      record.event = in.DecodeEvent();
      break;
    case WalRecordType::kViewDelta:
      record.view = in.String();
      record.op = static_cast<ViewDeltaOp>(in.U8());
      switch (record.op) {
        case ViewDeltaOp::kVInsert:
        case ViewDeltaOp::kRefresh:
          record.object = in.DecodeObject();
          break;
        case ViewDeltaOp::kVDelete:
          record.base_oid = in.DecodeOid();
          break;
        case ViewDeltaOp::kSync:
          record.update = in.DecodeUpdate();
          break;
        default:
          return in.Error("unknown view delta op");
      }
      break;
    case WalRecordType::kCommit: {
      uint32_t n = in.U32();
      for (uint32_t i = 0; i < n && in.ok(); ++i) {
        WalWatermark mark;
        mark.source = in.String();
        mark.last_sequence = in.U64();
        record.watermarks.push_back(std::move(mark));
      }
      break;
    }
    case WalRecordType::kViewDef:
      record.definition = in.String();
      record.cache_mode = static_cast<int>(in.U8());
      record.source = in.String();
      break;
    case WalRecordType::kEpoch:
      record.epoch = in.U64();
      record.owner = in.String();
      break;
    default:
      return in.Error("unknown record type");
  }
  if (!in.ok()) return in.Error("truncated body");
  if (!in.done()) return in.Error("trailing bytes");
  return record;
}

std::string WalRecordToString(const WalRecord& record) {
  std::ostringstream out;
  out << "lsn=" << record.lsn << ' ';
  switch (record.type) {
    case WalRecordType::kEvent:
      out << "event source=" << record.source << ' '
          << record.event.ToString();
      break;
    case WalRecordType::kViewDelta:
      out << "delta view=" << record.view << ' ';
      switch (record.op) {
        case ViewDeltaOp::kVInsert:
          out << "vinsert " << record.object->oid().str();
          break;
        case ViewDeltaOp::kVDelete:
          out << "vdelete " << record.base_oid.str();
          break;
        case ViewDeltaOp::kSync:
          out << "sync " << record.update.ToString();
          break;
        case ViewDeltaOp::kRefresh:
          out << "refresh " << record.object->oid().str();
          break;
      }
      break;
    case WalRecordType::kCommit:
      out << "commit";
      for (const WalWatermark& mark : record.watermarks) {
        out << ' ' << mark.source << '=' << mark.last_sequence;
      }
      break;
    case WalRecordType::kViewDef:
      out << "viewdef source=" << record.source
          << " cache=" << record.cache_mode << " '" << record.definition
          << '\'';
      break;
    case WalRecordType::kEpoch:
      out << "epoch " << record.epoch << " owner=" << record.owner;
      break;
  }
  return out.str();
}

// ---- Epoch fence ----

namespace {
constexpr char kFenceFileName[] = "FENCE";
constexpr char kFencedPrefix[] = "wal: fenced:";
}  // namespace

Result<FenceInfo> ReadFence(const std::string& dir) {
  std::ifstream in(dir + "/" + kFenceFileName);
  if (!in) return FenceInfo{};  // no fence file: unfenced
  FenceInfo fence;
  std::string key;
  if (!(in >> key >> fence.epoch) || key != "epoch") {
    return Status::DataLoss("wal: malformed FENCE file in " + dir);
  }
  if (in >> key && key == "owner") {
    std::getline(in, fence.owner);
    if (!fence.owner.empty() && fence.owner.front() == ' ') {
      fence.owner.erase(0, 1);
    }
  }
  return fence;
}

Status WriteFence(const std::string& dir, uint64_t epoch,
                  const std::string& owner) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("wal: cannot create " + dir + ": " + ec.message());
  }
  const std::string tmp = dir + "/" + kFenceFileName + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::Internal("wal: cannot write " + tmp);
    out << "epoch " << epoch << "\nowner " << owner << "\n";
    out.flush();
    if (!out) return Status::Internal("wal: cannot write " + tmp);
  }
  fs::rename(tmp, dir + "/" + kFenceFileName, ec);
  if (ec) {
    return Status::Internal("wal: cannot publish fence in " + dir + ": " +
                            ec.message());
  }
  return Status::Ok();
}

bool IsFencedStatus(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message().rfind(kFencedPrefix, 0) == 0;
}

// ---- Append side ----

Status Wal::CheckFence() const {
  if (options_.writer_epoch == 0) return Status::Ok();
  GSV_ASSIGN_OR_RETURN(FenceInfo fence, ReadFence(dir_));
  if (fence.epoch > options_.writer_epoch) {
    return Status::FailedPrecondition(
        std::string(kFencedPrefix) + " writer epoch " +
        std::to_string(options_.writer_epoch) + " superseded by fence epoch " +
        std::to_string(fence.epoch) +
        (fence.owner.empty() ? std::string() : " held by " + fence.owner));
  }
  return Status::Ok();
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                       const Options& options,
                                       uint64_t next_lsn) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("wal: cannot create " + dir + ": " +
                            ec.message());
  }
  GSV_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> segments,
                       ListWalSegments(dir));
  std::unique_ptr<Wal> wal(new Wal(dir, options, next_lsn));
  if (options.writer_epoch > 0) {
    // Claim the fence: refuse to open under a higher fence, raise a lower
    // one to this writer's epoch so any stale co-writer gets cut off.
    GSV_RETURN_IF_ERROR(wal->CheckFence());
    GSV_ASSIGN_OR_RETURN(FenceInfo fence, ReadFence(dir));
    if (fence.epoch < options.writer_epoch) {
      GSV_RETURN_IF_ERROR(
          WriteFence(dir, options.writer_epoch, options.owner));
    }
  }
  std::string path = segments.empty()
                         ? dir + "/" + SegmentName(next_lsn)
                         : segments.back().path;
  GSV_RETURN_IF_ERROR(wal->OpenSegment(path));
  if (options.writer_epoch > 0) {
    // Stamp the writer's generation so readers can attribute every byte
    // that follows (a new header per writer session, even mid-segment).
    GSV_RETURN_IF_ERROR(wal->Append(
        WalRecord::Epoch(options.writer_epoch, options.owner)));
  }
  return wal;
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Status Wal::OpenSegment(const std::string& path) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return ErrnoStatus("wal: open " + path);
  active_segment_ = path;
  return Status::Ok();
}

Status Wal::WriteFrame(const std::string& payload) {
  if (crashed_) return Status::DataLoss("wal: crashed (injected)");
  if (payload.size() > kMaxPayloadSize) {
    return Status::InvalidArgument("wal: payload too large");
  }
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);

  size_t to_write = frame.size();
  if (crash_budget_ >= 0 && static_cast<int64_t>(to_write) > crash_budget_) {
    // Simulated power loss: part of the frame reaches the disk, then the
    // process is gone. Later appends fail so the torn tail stays torn. At
    // least one byte always lands: an interrupted append must leave a
    // physical tear, because recovery relies on the dichotomy "clean log =
    // every accepted record fully present / torn log = fall back to
    // quarantine + resync". A zero-byte cut would silently lose a record
    // the warehouse already accepted.
    to_write = static_cast<size_t>(crash_budget_ > 0 ? crash_budget_ : 1);
    crashed_ = true;
  } else if (crash_budget_ >= 0) {
    crash_budget_ -= static_cast<int64_t>(to_write);
  }

  size_t written = 0;
  while (written < to_write) {
    ssize_t n = ::write(fd_, frame.data() + written, to_write - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("wal: write " + active_segment_);
    }
    written += static_cast<size_t>(n);
  }
  bytes_written_ += static_cast<int64_t>(written);
  if (crashed_) return Status::DataLoss("wal: crashed (injected)");
  return Status::Ok();
}

Status Wal::Append(WalRecord record) {
  GSV_RETURN_IF_ERROR(CheckFence());
  record.lsn = next_lsn_;
  std::string payload = EncodeWalPayload(record);
  GSV_RETURN_IF_ERROR(WriteFrame(payload));
  ++next_lsn_;
  ++records_appended_;
  if (options_.fsync == FsyncPolicy::kAlways ||
      (options_.fsync == FsyncPolicy::kCommit &&
       record.type == WalRecordType::kCommit)) {
    return Sync();
  }
  return Status::Ok();
}

Status Wal::Sync() {
  if (crashed_) return Status::DataLoss("wal: crashed (injected)");
  if (fd_ < 0) return Status::FailedPrecondition("wal: no active segment");
  if (::fsync(fd_) != 0) return ErrnoStatus("wal: fsync " + active_segment_);
  return Status::Ok();
}

Status Wal::Roll() {
  if (crashed_) return Status::DataLoss("wal: crashed (injected)");
  GSV_RETURN_IF_ERROR(CheckFence());
  GSV_RETURN_IF_ERROR(Sync());
  GSV_RETURN_IF_ERROR(OpenSegment(dir_ + "/" + SegmentName(next_lsn_)));
  if (options_.writer_epoch > 0) {
    // Fresh segment, fresh header: every segment leads with its writer's
    // epoch so a shipped segment carries its provenance stand-alone.
    return Append(WalRecord::Epoch(options_.writer_epoch, options_.owner));
  }
  return Status::Ok();
}

// ---- Scan side ----

Result<std::vector<WalSegmentInfo>> ListWalSegments(
    const std::string& dir, std::vector<std::string>* warnings) {
  std::vector<WalSegmentInfo> segments;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return segments;  // missing directory = empty log
  auto warn = [&](const std::string& name, const char* why) {
    if (warnings != nullptr) {
      warnings->push_back("wal: skipping " + dir + "/" + name + ": " + why);
    }
  };
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSegmentPrefix, 0) != 0) continue;
    if (!entry.is_regular_file(ec) || ec) {
      warn(name, "segment-like name but not a regular file");
      continue;
    }
    if (name.size() <=
            std::strlen(kSegmentPrefix) + std::strlen(kSegmentSuffix) ||
        name.substr(name.size() - std::strlen(kSegmentSuffix)) !=
            kSegmentSuffix) {
      warn(name, "segment-like name without the .log suffix");
      continue;
    }
    const std::string digits = name.substr(
        std::strlen(kSegmentPrefix),
        name.size() - std::strlen(kSegmentPrefix) - std::strlen(kSegmentSuffix));
    uint64_t first_lsn = 0;
    bool numeric = !digits.empty();
    for (char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      first_lsn = first_lsn * 10 + static_cast<uint64_t>(c - '0');
    }
    if (!numeric) {
      warn(name, "segment-like name with non-numeric LSN");
      continue;
    }
    segments.push_back(WalSegmentInfo{entry.path().string(), name, first_lsn});
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              return a.first_lsn < b.first_lsn;
            });
  return segments;
}

Result<WalScan> ScanWal(const std::string& dir) {
  WalScan scan;
  GSV_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> segments,
                       ListWalSegments(dir));
  uint64_t expected_lsn = 0;  // 0 = take the first record's lsn
  for (size_t seg = 0; seg < segments.size(); ++seg) {
    const WalSegmentInfo& info = segments[seg];
    std::ifstream in(info.path, std::ios::binary);
    if (!in) return Status::Internal("wal: cannot read " + info.path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string data = buffer.str();

    size_t pos = 0;
    bool torn_here = false;
    while (pos < data.size()) {
      if (data.size() - pos < kFrameHeaderSize) {
        torn_here = true;
        break;
      }
      auto u32at = [&](size_t at) {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
          v |= static_cast<uint32_t>(
                   static_cast<uint8_t>(data[at + i]))
               << (8 * i);
        }
        return v;
      };
      const uint32_t length = u32at(pos);
      const uint32_t crc = u32at(pos + 4);
      if (length > kMaxPayloadSize ||
          data.size() - pos - kFrameHeaderSize < length) {
        torn_here = true;
        break;
      }
      const std::string payload =
          data.substr(pos + kFrameHeaderSize, length);
      if (Crc32(payload.data(), payload.size()) != crc) {
        torn_here = true;
        break;
      }
      Result<WalRecord> decoded = DecodeWalPayload(payload);
      if (!decoded.ok()) {
        torn_here = true;
        break;
      }
      WalRecord record = std::move(decoded).value();
      if (expected_lsn != 0 && record.lsn != expected_lsn) {
        torn_here = true;  // LSN discontinuity: treat like corruption
        break;
      }
      expected_lsn = record.lsn + 1;
      record.segment = info.name;
      record.offset = pos;
      record.end_offset = pos + kFrameHeaderSize + length;
      scan.records.push_back(std::move(record));
      pos += kFrameHeaderSize + length;
    }

    if (torn_here) {
      if (seg + 1 < segments.size()) {
        // A crash can only tear the active tail. Damage in an interior
        // segment is corrupted *committed* history — truncating here would
        // silently drop records later segments still reference, so refuse.
        return Status::DataLoss(
            "wal: corrupt record at " + info.name + " offset " +
            std::to_string(pos) +
            " in a non-final segment (committed history damaged; " +
            "truncation would lose acknowledged records)");
      }
      scan.torn = true;
      scan.torn_segment = info.name;
      scan.torn_offset = pos;
      scan.torn_bytes += data.size() - pos;
      break;  // everything after the tear is suspect
    }
  }
  scan.next_lsn = expected_lsn == 0
                      ? (segments.empty() ? 1 : segments.front().first_lsn)
                      : expected_lsn;
  if (scan.next_lsn == 0) scan.next_lsn = 1;
  return scan;
}

Status TruncateWal(const std::string& dir, const std::string& segment,
                   uint64_t offset) {
  GSV_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> segments,
                       ListWalSegments(dir));
  bool found = false;
  for (const WalSegmentInfo& info : segments) {
    if (info.name == segment) {
      found = true;
      if (::truncate(info.path.c_str(), static_cast<off_t>(offset)) != 0) {
        return ErrnoStatus("wal: truncate " + info.path);
      }
      continue;
    }
    if (found) {
      std::error_code ec;
      fs::remove(info.path, ec);
      if (ec) {
        return Status::Internal("wal: remove " + info.path + ": " +
                                ec.message());
      }
    }
  }
  if (!found) {
    return Status::NotFound("wal: no segment named " + segment + " in " +
                            dir);
  }
  return Status::Ok();
}

}  // namespace gsv
