#ifndef GSV_STORAGE_WAL_H_
#define GSV_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "oem/object.h"
#include "oem/oid.h"
#include "oem/update.h"
#include "util/status.h"
#include "warehouse/update_event.h"

namespace gsv {

// Binary write-ahead log for the warehouse durability subsystem.
//
// The log records, in integration order:
//
//   * every UpdateEvent the warehouse accepted from a source channel
//     (after duplicate dropping), tagged with the source name — enough to
//     re-run maintenance from scratch;
//   * every view-maintenance delta actually applied to a materialized view
//     (V_insert / V_delete / value sync / delegate refresh) — enough to
//     redo maintenance *without* re-running Algorithm 1 or querying any
//     source;
//   * commit records marking group boundaries. The warehouse appends one
//     per drain (ProcessPending / ProcessPendingBatch slice) and per
//     inline dispatch, carrying the per-source sequence watermarks as of
//     that instant. Everything between two commits is one group: either
//     all of a group's deltas are redone on recovery, or (for the
//     uncommitted tail) the events are replayed through live maintenance
//     instead;
//   * view-definition records, so recovery knows which views existed even
//     without a checkpoint.
//
// On-disk format. A log is a directory of segment files named
// `wal-<first-lsn, 12 digits>.log`; LSNs increase by exactly 1 per record,
// so segment boundaries are recoverable from the names alone. Each record
// is framed as
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//   payload = [u8 type][u64 lsn][type-specific body]
//
// with all integers little-endian and every OID written as its string (the
// dense interned ids are process-local and do not survive a restart). A
// record is written with a single write(2) call, so a crash tears at most
// the final record; ScanWal detects the torn tail by length/CRC and reports
// the byte offset to truncate back to.
//
// Fsync policy trade-offs (see DESIGN.md §4e): kAlways makes every record
// durable before Append returns (one fsync per record — safest, slowest);
// kCommit syncs once per commit record, i.e. once per drained batch, so a
// crash can lose at most the uncommitted tail of the current group (which
// recovery re-derives from the sources' current state anyway — the
// convergence argument of the deferred drain); kNever leaves syncing to the
// OS (benchmarks, bulk loads).

// CRC-32 (IEEE 802.3 polynomial, reflected). `seed` chains incremental
// computations: pass the previous return value to continue a running CRC.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

enum class FsyncPolicy {
  kNever = 0,   // never fsync (OS decides)
  kCommit = 1,  // fsync on commit records (group commit)
  kAlways = 2,  // fsync after every record
};
const char* FsyncPolicyName(FsyncPolicy policy);

enum class WalRecordType : uint8_t {
  kEvent = 1,      // accepted source UpdateEvent
  kViewDelta = 2,  // applied view-maintenance delta
  kCommit = 3,     // group boundary + source watermarks
  kViewDef = 4,    // DefineView
  kEpoch = 5,      // writer-epoch segment header (replication fencing)
};

enum class ViewDeltaOp : uint8_t {
  kVInsert = 1,  // delegate created (payload: base object)
  kVDelete = 2,  // delegate removed (payload: base OID)
  kSync = 3,     // delegate value synced (payload: the base update)
  kRefresh = 4,  // delegate value recopied (payload: base object)
};

// Per-source sequence watermark carried by commit records: the sequence of
// the last event integrated from that source (SourceMonitor numbering).
struct WalWatermark {
  std::string source;
  uint64_t last_sequence = 0;
  bool operator==(const WalWatermark& other) const {
    return source == other.source && last_sequence == other.last_sequence;
  }
};

// One decoded log record. Which fields are meaningful depends on `type`;
// unused fields keep their defaults. The builders below fill exactly the
// fields their record type owns.
struct WalRecord {
  WalRecordType type = WalRecordType::kCommit;
  uint64_t lsn = 0;  // assigned by Wal::Append

  // kEvent
  std::string source;
  UpdateEvent event;

  // kViewDelta
  std::string view;
  ViewDeltaOp op = ViewDeltaOp::kVInsert;
  std::optional<Object> object;  // kVInsert / kRefresh
  Oid base_oid;                  // kVDelete
  Update update;                 // kSync

  // kCommit
  std::vector<WalWatermark> watermarks;

  // kViewDef
  std::string definition;
  int cache_mode = 0;  // Warehouse::CacheMode as int
  bool deferred = false;

  // kEpoch: the writer's fencing epoch and an informational owner id. A
  // writer opening or rolling a segment stamps one of these first, so a
  // reader (crash recovery, a replication follower) can tell which primary
  // generation produced every byte that follows — the segment-header half
  // of the split-brain fence.
  uint64_t epoch = 0;
  std::string owner;

  // Reader-side provenance (not serialized): where the record starts and
  // ends inside its segment file. Recovery truncates at these offsets.
  std::string segment;
  uint64_t offset = 0;
  uint64_t end_offset = 0;

  static WalRecord Event(std::string source, UpdateEvent event);
  static WalRecord Epoch(uint64_t epoch, std::string owner);
  static WalRecord VInsert(std::string view, Object base_object);
  static WalRecord VDelete(std::string view, Oid base_oid);
  static WalRecord Sync(std::string view, Update update);
  static WalRecord Refresh(std::string view, Object base_object);
  static WalRecord Commit(std::vector<WalWatermark> watermarks);
  static WalRecord ViewDef(std::string definition, int cache_mode,
                           std::string source);
};

// ---- Epoch fence (replication failover) ----
//
// A durability directory may carry a FENCE file naming the minimum writer
// epoch allowed to append. Promotion of a read replica bumps the fence in
// the old primary's home; the old primary's next append observes the higher
// fence and is rejected (kFailedPrecondition), so two writers can never
// both commit into one log — the no-split-brain guarantee. Writers that
// never set a writer_epoch (plain single-node durability) skip the check
// entirely and behave exactly as before.
struct FenceInfo {
  uint64_t epoch = 0;   // minimum epoch allowed to write; 0 = unfenced
  std::string owner;    // informational: who holds the fence
};

// Reads <dir>/FENCE. A missing file yields epoch 0 (unfenced); a malformed
// file is a corruption error.
Result<FenceInfo> ReadFence(const std::string& dir);
// Atomically (tmp + rename) writes <dir>/FENCE.
Status WriteFence(const std::string& dir, uint64_t epoch,
                  const std::string& owner);
// True when `status` is a fence rejection from Wal::Append/Roll.
bool IsFencedStatus(const Status& status);

// Append side. Thread-compatible: callers hold the warehouse's external
// synchronization (the same discipline as every other mutation).
class Wal {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kCommit;
    // Fencing: when writer_epoch > 0 the writer claims the directory's
    // fence on open (rejected if the standing fence is higher), stamps a
    // kEpoch header record into every segment it opens or rolls, and
    // re-checks the fence before every append so a concurrent promotion
    // cuts it off at the next write.
    uint64_t writer_epoch = 0;
    std::string owner;  // informational fence holder / epoch-record id
  };

  // Opens `dir` (created if missing) for appending. New records continue
  // the newest existing segment; when the directory has none, the first
  // segment is created as wal-<next_lsn>.log. `next_lsn` must be one past
  // the last valid record on disk (ScanWal().next_lsn after truncation).
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           const Options& options,
                                           uint64_t next_lsn);
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Stamps record.lsn, frames and appends it. Fsyncs under kAlways, and for
  // kCommit records also under kCommit (group commit).
  Status Append(WalRecord record);

  // Flushes the active segment to stable storage now.
  Status Sync();

  // Closes the active segment and starts a fresh one named after the next
  // LSN. Called by the checkpoint writer so a durable checkpoint can retire
  // all earlier segments wholesale.
  Status Roll();

  uint64_t next_lsn() const { return next_lsn_; }
  const std::string& dir() const { return dir_; }
  int64_t bytes_written() const { return bytes_written_; }
  int64_t records_appended() const { return records_appended_; }

  // ---- Crash injection (tests) ----
  //
  // After `budget` more payload bytes, the next write is cut short mid-
  // record (a torn tail, exactly as a power loss would leave) and the Wal
  // enters a permanently failed state: every later Append/Sync returns
  // kDataLoss. Negative budget disables injection.
  void set_crash_after_bytes(int64_t budget) { crash_budget_ = budget; }
  bool crashed() const { return crashed_; }

 private:
  Wal(std::string dir, Options options, uint64_t next_lsn)
      : dir_(std::move(dir)), options_(options), next_lsn_(next_lsn) {}

  Status OpenSegment(const std::string& path);
  Status WriteFrame(const std::string& payload);
  // kFailedPrecondition when the directory's fence exceeds writer_epoch.
  Status CheckFence() const;

  std::string dir_;
  Options options_;
  uint64_t next_lsn_ = 1;
  int fd_ = -1;
  std::string active_segment_;
  int64_t bytes_written_ = 0;
  int64_t records_appended_ = 0;
  int64_t crash_budget_ = -1;
  bool crashed_ = false;
};

// One segment file, in LSN order.
struct WalSegmentInfo {
  std::string path;        // full path
  std::string name;        // file name
  uint64_t first_lsn = 0;  // from the name
};

// Lists the segment files of `dir`, sorted by first LSN. An empty or
// missing directory yields an empty list. Unrelated files (checkpoints,
// CURRENT, FENCE, editor droppings) never fail the enumeration: anything
// that is not a well-formed `wal-<digits>.log` regular file is skipped,
// and names that *look* like segments but are malformed (bad digits, a
// directory, a stray suffix) are reported through `warnings` when given.
Result<std::vector<WalSegmentInfo>> ListWalSegments(
    const std::string& dir, std::vector<std::string>* warnings = nullptr);

// Result of scanning a whole log directory.
struct WalScan {
  std::vector<WalRecord> records;  // every valid record, in LSN order
  uint64_t next_lsn = 1;           // one past the last valid record
  // A record failed framing/CRC/LSN validation. Everything from
  // (torn_segment, torn_offset) on is invalid; valid_records holds only the
  // prefix. TruncateWal cuts the log back to this point.
  bool torn = false;
  std::string torn_segment;  // file name within dir
  uint64_t torn_offset = 0;  // keep [0, torn_offset) of that segment
  uint64_t torn_bytes = 0;   // bytes past the valid prefix, all segments
};

// Reads and validates every segment of `dir`. Never modifies the files.
//
// A torn or corrupt record is only survivable where a crash can produce
// one: in the *final* segment (the active tail a power loss tears). There
// the scan reports `torn` and the valid prefix, and recovery truncates.
// The same damage in a non-final segment means committed history was
// corrupted after the fact (bit rot, tampering, a mis-shipped replica
// segment) — no truncation can honestly repair that, so the scan fails
// loudly with kDataLoss instead of silently dropping the suffix.
Result<WalScan> ScanWal(const std::string& dir);

// Truncates `segment` (a file name within `dir`) to `offset` bytes and
// deletes every later segment — the mutation matching a torn WalScan.
Status TruncateWal(const std::string& dir, const std::string& segment,
                   uint64_t offset);

// ---- Record codec (exposed for wal_inspect and tests) ----

// Serializes the payload (type + lsn + body, no frame).
std::string EncodeWalPayload(const WalRecord& record);
// Parses a payload produced by EncodeWalPayload.
Result<WalRecord> DecodeWalPayload(const std::string& payload);
// Human-readable one-line form (wal_inspect).
std::string WalRecordToString(const WalRecord& record);

}  // namespace gsv

#endif  // GSV_STORAGE_WAL_H_
