#include "storage/recovery.h"

#include <algorithm>

namespace gsv {

Result<RecoveryPlan> PlanRecovery(const std::string& dir) {
  RecoveryPlan plan;

  Result<LoadedCheckpoint> checkpoint = LoadLatestCheckpoint(dir);
  if (checkpoint.ok()) {
    plan.have_checkpoint = true;
    plan.checkpoint = std::move(checkpoint).value();
    plan.watermarks = plan.checkpoint.manifest.watermarks;
  } else if (checkpoint.status().code() != StatusCode::kNotFound) {
    return checkpoint.status();
  }

  GSV_ASSIGN_OR_RETURN(WalScan scan, ScanWal(dir));
  plan.log_torn = scan.torn;
  plan.torn_bytes = scan.torn_bytes;
  if (scan.torn) {
    plan.need_truncate = true;
    plan.truncate_segment = scan.torn_segment;
    plan.truncate_offset = scan.torn_offset;
  }

  const uint64_t base_lsn =
      plan.have_checkpoint ? plan.checkpoint.manifest.wal_lsn : 0;

  // Locate the last commit above the checkpoint; everything at or below it
  // is the committed zone.
  size_t last_commit = scan.records.size();  // npos
  for (size_t i = scan.records.size(); i-- > 0;) {
    const WalRecord& record = scan.records[i];
    if (record.lsn <= base_lsn) break;
    if (record.type == WalRecordType::kCommit) {
      last_commit = i;
      break;
    }
  }

  plan.next_lsn = base_lsn + 1;
  bool tail_started = false;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    WalRecord& record = scan.records[i];
    if (record.lsn <= base_lsn) continue;
    const bool committed = last_commit != scan.records.size() &&
                           i <= last_commit;
    if (committed) {
      if (record.type == WalRecordType::kCommit) {
        plan.watermarks = record.watermarks;
      }
      plan.next_lsn = record.lsn + 1;
      plan.committed.push_back(std::move(record));
      continue;
    }
    // The interrupted group. The physical log is cut back to its first
    // record — a tear, if any, lies strictly after every valid record, so
    // this truncation subsumes the tear's. The surviving events re-log
    // with fresh LSNs during the live replay.
    if (!tail_started) {
      tail_started = true;
      plan.need_truncate = true;
      plan.truncate_segment = record.segment;
      plan.truncate_offset = record.offset;
    }
    if (record.type == WalRecordType::kViewDelta) {
      ++plan.tail_deltas_dropped;
      continue;
    }
    if (record.type == WalRecordType::kEpoch) {
      // Writer-session header, not replayable state; the next writer
      // stamps its own on open.
      continue;
    }
    plan.tail.push_back(std::move(record));
  }
  return plan;
}

Status ApplyLogTruncation(const std::string& dir, const RecoveryPlan& plan) {
  if (!plan.need_truncate) return Status::Ok();
  return TruncateWal(dir, plan.truncate_segment, plan.truncate_offset);
}

Result<size_t> ReplayEventsInto(const std::vector<WalRecord>& records,
                                ObjectStore* store) {
  size_t applied = 0;
  for (const WalRecord& record : records) {
    if (record.type != WalRecordType::kEvent) continue;
    GSV_ASSIGN_OR_RETURN(bool did_apply,
                         store->ApplyFromLog(record.event.ToUpdate()));
    if (did_apply) ++applied;
  }
  return applied;
}

}  // namespace gsv
