#include "storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "oem/serialize.h"
#include "oem/store.h"
#include "util/string_util.h"

namespace gsv {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestMagic[] = "gsv-checkpoint 1";
constexpr char kCurrentName[] = "CURRENT";
constexpr char kManifestName[] = "MANIFEST";
constexpr char kStoreName[] = "store.gsv";
constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr int kCheckpointIdDigits = 6;

std::string CheckpointDirName(uint64_t id) {
  std::string digits = std::to_string(id);
  std::string name = kCheckpointPrefix;
  name.append(
      kCheckpointIdDigits - std::min<size_t>(digits.size(), kCheckpointIdDigits),
      '0');
  name += digits;
  return name;
}

std::string CacheFileName(const std::string& view) {
  return "cache-" + view + ".gsv";
}

std::string GdnFileName(const std::string& view) {
  return "gdn-" + view + ".gsv";
}

// Writes `content` to `path` and fsyncs it before closing — a checkpoint
// file must be on disk before the manifest (and the manifest before the
// rename) for the atomicity argument to hold.
Status WriteFileDurable(const std::string& path, const std::string& content) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("checkpoint: open " + path + ": " +
                            std::strerror(errno));
  }
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n = ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::Internal("checkpoint: write " + path + ": " +
                                       std::strerror(errno));
      ::close(fd);
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = Status::Internal("checkpoint: fsync " + path + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::Ok();
}

// Fsyncs a directory so a just-created/renamed entry survives power loss.
Status SyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("checkpoint: open dir " + path + ": " +
                            std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    Status status = Status::Internal("checkpoint: fsync dir " + path + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::Ok();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("checkpoint: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Validates one checkpoint directory end to end and loads its contents.
Result<LoadedCheckpoint> LoadCheckpointDir(const std::string& path,
                                           const std::string& name) {
  GSV_ASSIGN_OR_RETURN(std::string manifest_text,
                       ReadFileToString(path + "/" + kManifestName));
  std::vector<std::pair<std::string, std::pair<uint32_t, uint64_t>>> files;
  GSV_ASSIGN_OR_RETURN(CheckpointManifest manifest,
                       DecodeCheckpointManifest(manifest_text, &files));
  LoadedCheckpoint loaded;
  loaded.manifest = std::move(manifest);
  loaded.dir_name = name;
  for (const auto& [file_name, crc_size] : files) {
    GSV_ASSIGN_OR_RETURN(std::string content,
                         ReadFileToString(path + "/" + file_name));
    if (content.size() != crc_size.second ||
        Crc32(content.data(), content.size()) != crc_size.first) {
      return Status::DataLoss("checkpoint: " + path + "/" + file_name +
                              " fails CRC/size validation");
    }
    if (file_name == kStoreName) {
      loaded.store_text = std::move(content);
    } else if (StartsWith(file_name, "cache-") &&
               EndsWith(file_name, ".gsv")) {
      std::string view =
          file_name.substr(6, file_name.size() - 6 - 4);  // "cache-"..".gsv"
      loaded.cache_texts[view] = std::move(content);
    } else if (StartsWith(file_name, "gdn-") && EndsWith(file_name, ".gsv")) {
      std::string view =
          file_name.substr(4, file_name.size() - 4 - 4);  // "gdn-"..".gsv"
      loaded.gdn_texts[view] = std::move(content);
    }
  }
  if (loaded.store_text.empty() &&
      std::none_of(files.begin(), files.end(),
                   [](const auto& f) { return f.first == kStoreName; })) {
    return Status::DataLoss("checkpoint: " + path + " has no store image");
  }
  return loaded;
}

}  // namespace

std::string EncodeCheckpointManifest(
    const CheckpointManifest& manifest,
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::ostringstream out;
  out << kManifestMagic << '\n';
  out << "id " << manifest.id << '\n';
  out << "wal_lsn " << manifest.wal_lsn << '\n';
  for (const WalWatermark& mark : manifest.watermarks) {
    out << "source " << mark.source << ' ' << mark.last_sequence << '\n';
  }
  for (const CheckpointViewState& view : manifest.views) {
    // The free-form definition text goes last: rest-of-line on decode.
    out << "view " << view.name << ' ' << view.source << ' '
        << view.cache_mode << ' ' << (view.stale ? 1 : 0) << ' '
        << view.definition << '\n';
  }
  for (const auto& [name, content] : files) {
    out << "file " << name << ' ' << Crc32(content.data(), content.size())
        << ' ' << content.size() << '\n';
  }
  out << "end\n";
  return out.str();
}

Result<CheckpointManifest> DecodeCheckpointManifest(
    const std::string& text,
    std::vector<std::pair<std::string, std::pair<uint32_t, uint64_t>>>*
        files) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    return Status::DataLoss("checkpoint manifest: bad magic");
  }
  CheckpointManifest manifest;
  bool complete = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == "end") {
      complete = true;
      break;
    }
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "id") {
      fields >> manifest.id;
    } else if (keyword == "wal_lsn") {
      fields >> manifest.wal_lsn;
    } else if (keyword == "source") {
      WalWatermark mark;
      fields >> mark.source >> mark.last_sequence;
      manifest.watermarks.push_back(std::move(mark));
    } else if (keyword == "view") {
      CheckpointViewState view;
      int stale = 0;
      fields >> view.name >> view.source >> view.cache_mode >> stale;
      view.stale = stale != 0;
      std::getline(fields, view.definition);
      // Trim the single separating space left by >>.
      if (!view.definition.empty() && view.definition.front() == ' ') {
        view.definition.erase(0, 1);
      }
      manifest.views.push_back(std::move(view));
    } else if (keyword == "file") {
      std::string name;
      uint32_t crc = 0;
      uint64_t size = 0;
      fields >> name >> crc >> size;
      if (files != nullptr) files->emplace_back(name, std::make_pair(crc, size));
    } else {
      return Status::DataLoss("checkpoint manifest: unknown keyword '" +
                              keyword + "'");
    }
    if (fields.fail()) {
      return Status::DataLoss("checkpoint manifest: malformed line '" + line +
                              "'");
    }
  }
  if (!complete) {
    // A manifest without its "end" sentinel was cut short mid-write.
    return Status::DataLoss("checkpoint manifest: truncated (no end marker)");
  }
  return manifest;
}

Result<std::vector<CheckpointInfo>> ListCheckpoints(const std::string& dir) {
  std::vector<CheckpointInfo> checkpoints;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return checkpoints;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, kCheckpointPrefix) || EndsWith(name, ".tmp")) {
      continue;
    }
    std::optional<int64_t> id =
        ParseInt64(name.substr(std::strlen(kCheckpointPrefix)));
    if (!id.has_value() || *id < 0) continue;
    checkpoints.push_back(CheckpointInfo{entry.path().string(), name,
                                         static_cast<uint64_t>(*id)});
  }
  std::sort(checkpoints.begin(), checkpoints.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) {
              return a.id < b.id;
            });
  return checkpoints;
}

Result<CheckpointManifest> ReadCheckpointManifest(
    const std::string& checkpoint_path) {
  GSV_ASSIGN_OR_RETURN(std::string text,
                       ReadFileToString(checkpoint_path + "/" + kManifestName));
  return DecodeCheckpointManifest(text, nullptr);
}

Status PersistCheckpoint(const std::string& dir,
                         const CheckpointCapture& capture) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("checkpoint: cannot create " + dir + ": " +
                            ec.message());
  }
  const std::string name = CheckpointDirName(capture.manifest.id);
  const std::string final_path = dir + "/" + name;
  const std::string tmp_path = final_path + ".tmp";
  fs::remove_all(tmp_path, ec);
  fs::remove_all(final_path, ec);  // re-persisting the same id starts over
  fs::create_directories(tmp_path, ec);
  if (ec) {
    return Status::Internal("checkpoint: cannot create " + tmp_path + ": " +
                            ec.message());
  }

  std::vector<std::pair<std::string, std::string>> files;
  files.emplace_back(kStoreName, capture.store_text);
  for (const auto& [view, text] : capture.cache_texts) {
    files.emplace_back(CacheFileName(view), text);
  }
  for (const auto& [view, text] : capture.gdn_texts) {
    files.emplace_back(GdnFileName(view), text);
  }
  for (const auto& [file_name, content] : files) {
    GSV_RETURN_IF_ERROR(
        WriteFileDurable(tmp_path + "/" + file_name, content));
  }
  // Manifest last: its presence certifies the data files are complete.
  GSV_RETURN_IF_ERROR(
      WriteFileDurable(tmp_path + "/" + kManifestName,
                       EncodeCheckpointManifest(capture.manifest, files)));
  GSV_RETURN_IF_ERROR(SyncDir(tmp_path));

  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::Internal("checkpoint: rename " + tmp_path + ": " +
                            ec.message());
  }
  GSV_RETURN_IF_ERROR(SyncDir(dir));

  // Flip CURRENT via the same write-then-rename dance.
  const std::string current_tmp = dir + "/" + kCurrentName + ".tmp";
  GSV_RETURN_IF_ERROR(WriteFileDurable(current_tmp, name + "\n"));
  fs::rename(current_tmp, dir + "/" + kCurrentName, ec);
  if (ec) {
    return Status::Internal("checkpoint: rename CURRENT: " + ec.message());
  }
  GSV_RETURN_IF_ERROR(SyncDir(dir));

  // Retention: the newest two checkpoints stay (this one plus the previous
  // as a fallback for a corrupt newest); anything older goes.
  GSV_ASSIGN_OR_RETURN(std::vector<CheckpointInfo> checkpoints,
                       ListCheckpoints(dir));
  for (size_t i = 0; i + 2 < checkpoints.size(); ++i) {
    fs::remove_all(checkpoints[i].path, ec);
  }
  return Status::Ok();
}

Result<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& dir) {
  // Prefer the checkpoint CURRENT names.
  Result<std::string> current = ReadFileToString(dir + "/" + kCurrentName);
  std::string current_name;
  if (current.ok()) {
    current_name = std::move(current).value();
    while (!current_name.empty() &&
           (current_name.back() == '\n' || current_name.back() == '\r')) {
      current_name.pop_back();
    }
    Result<LoadedCheckpoint> loaded =
        LoadCheckpointDir(dir + "/" + current_name, current_name);
    if (loaded.ok()) return loaded;
  }
  // CURRENT missing or its target invalid: fall back to the newest
  // directory that validates.
  GSV_ASSIGN_OR_RETURN(std::vector<CheckpointInfo> checkpoints,
                       ListCheckpoints(dir));
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    if (it->name == current_name) continue;  // already tried
    Result<LoadedCheckpoint> loaded = LoadCheckpointDir(it->path, it->name);
    if (loaded.ok()) return loaded;
  }
  return Status::NotFound("no usable checkpoint under " + dir);
}

Result<std::string> ExportStoreImage(ObjectStore* store) {
  GSV_RETURN_IF_ERROR(store->FlushStorage());
  std::string text = StoreToString(*store);
  // The in-order capture scan released the pages it faulted as it went;
  // one safe point afterwards settles the pool back to budget.
  store->StorageSafePoint();
  return text;
}

Status ImportStoreImage(const std::string& text, ObjectStore* store) {
  // ReadStore safe-points every load stride; one more here bounds the tail.
  GSV_RETURN_IF_ERROR(StoreFromString(text, store));
  store->StorageSafePoint();
  return Status::Ok();
}

}  // namespace gsv
