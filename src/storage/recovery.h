#ifndef GSV_STORAGE_RECOVERY_H_
#define GSV_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "oem/store.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "util/status.h"

namespace gsv {

// Crash-recovery planning: turns the on-disk durability state (checkpoints
// + WAL segments) into an executable plan. The planner only reads; the
// warehouse applies the plan (truncation, state restore, redo, replay) via
// Warehouse::EnableDurability.
//
// The plan's shape follows the commit-group invariant the logger maintains:
// every commit record certifies that all preceding records are fully
// applied and that the warehouse was quiescent (no pending events) at that
// instant. Hence three zones:
//
//   lsn <= checkpoint.wal_lsn   already inside the checkpoint image — skip;
//   up to the last commit       `committed`: redo the view deltas locally,
//                               no Algorithm 1, no source queries;
//   after the last commit       `tail`: the group a crash interrupted. Its
//                               delta records are dropped (a partial redo
//                               could apply half a maintenance step); its
//                               event records replay through *live*
//                               maintenance instead, which is convergent
//                               exactly like an at-least-once redelivery.
//
// A torn physical tail (power loss mid-write) is cut at the first invalid
// byte; an interrupted logical tail is cut at its first record and
// re-appended by the live replay, so the log never carries uncommitted
// deltas across a restart.
struct RecoveryPlan {
  bool have_checkpoint = false;
  LoadedCheckpoint checkpoint;  // meaningful when have_checkpoint

  // Committed zone (in LSN order): kEvent / kViewDelta / kViewDef / kCommit
  // records above the checkpoint and at or below the last commit.
  std::vector<WalRecord> committed;
  // Watermarks as of the last commit (falling back to the checkpoint's).
  std::vector<WalWatermark> watermarks;

  // Uncommitted zone: events and view definitions to replay through live
  // maintenance. Delta records of the interrupted group are not here.
  std::vector<WalRecord> tail;
  size_t tail_deltas_dropped = 0;

  // Physical log repair to apply before reopening the Wal for append.
  bool need_truncate = false;
  std::string truncate_segment;  // file name within the durability dir
  uint64_t truncate_offset = 0;
  bool log_torn = false;       // the scan hit a torn/corrupt record
  uint64_t torn_bytes = 0;     // bytes dropped by the physical tear

  // One past the last surviving committed record; the LSN the reopened Wal
  // continues from (tail records re-log with fresh LSNs from here).
  uint64_t next_lsn = 1;
};

// Reads checkpoints and WAL under `dir` and computes the plan. Read-only.
Result<RecoveryPlan> PlanRecovery(const std::string& dir);

// Applies the plan's physical log repair (torn-tail / uncommitted-group
// truncation). No-op when the plan needs none.
Status ApplyLogTruncation(const std::string& dir, const RecoveryPlan& plan);

// Standalone event redo into a plain store (wal_inspect --apply, tests):
// applies every kEvent record's base update to `store` through the
// idempotent ObjectStore::ApplyFromLog entry point, skipping records whose
// preconditions no longer hold (at-least-once semantics). Returns the
// number of updates applied.
Result<size_t> ReplayEventsInto(const std::vector<WalRecord>& records,
                                ObjectStore* store);

}  // namespace gsv

#endif  // GSV_STORAGE_RECOVERY_H_
