#include "warehouse/aux_cache.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "oem/serialize.h"
#include "path/navigate.h"
#include "path/path_index.h"

namespace gsv {

namespace {
// Separates the known-value preamble from the serialized corridor store.
constexpr char kCacheHeader[] = "# gsv-aux-cache v1";
constexpr char kStoreMarker[] = "%%store";

ObjectStore::Options CacheStoreOptions(StorageEngineFactory engine_factory) {
  ObjectStore::Options options;
  options.engine_factory = std::move(engine_factory);
  return options;
}
}  // namespace

AuxiliaryCache::AuxiliaryCache(Mode mode, Oid root, Path corridor,
                               StorageEngineFactory engine_factory)
    : mode_(mode),
      root_(std::move(root)),
      corridor_(std::move(corridor)),
      store_(CacheStoreOptions(std::move(engine_factory))) {}

bool AuxiliaryCache::ValueKnown(const Oid& oid) const {
  const Object* object = store_.Get(oid);
  if (object == nullptr) return false;
  if (object->IsSet()) return true;  // children are tracked via events
  return values_known_.Contains(oid);
}

Status AuxiliaryCache::AddToCorridor(const Object& object, size_t depth,
                                     SourceWrapper* wrapper) {
  const Oid& oid = object.oid();
  bool fresh_at_depth = depths_[oid.str()].insert(depth).second;
  if (!store_.Contains(oid)) {
    Value stored = object.value();
    if (object.IsAtomic()) {
      if (mode_ == Mode::kFull) {
        values_known_.Insert(oid);
      } else {
        stored = Value::Int(0);  // placeholder; value intentionally unknown
      }
    }
    GSV_RETURN_IF_ERROR(store_.Put(Object(oid, object.label(), stored)));
  }
  if (!fresh_at_depth) return Status::Ok();
  if (depth >= corridor_.size() || object.IsAtomic()) return Status::Ok();

  // Pull the children that continue the corridor (Example 10's "direct
  // subobjects" query).
  Path next_label(std::vector<std::string>{corridor_.label(depth)});
  ++wrapper->costs()->cache_maintenance_queries;
  GSV_ASSIGN_OR_RETURN(std::vector<Object> children,
                       wrapper->FetchPathObjects(oid, next_label));
  for (const Object& child : children) {
    GSV_RETURN_IF_ERROR(AddToCorridor(child, depth + 1, wrapper));
  }
  return Status::Ok();
}

void AuxiliaryCache::Reset() {
  std::vector<Oid> all;
  store_.ForEach([&](const Object& object) { all.push_back(object.oid()); });
  for (const Oid& oid : all) {
    store_.Remove(oid);
    values_known_.Erase(oid);
  }
  depths_.clear();
}

Status AuxiliaryCache::Initialize(SourceWrapper* wrapper) {
  ++wrapper->costs()->cache_maintenance_queries;
  GSV_ASSIGN_OR_RETURN(Object root_object, wrapper->FetchObject(root_));
  return AddToCorridor(root_object, 0, wrapper);
}

void AuxiliaryCache::RecomputeMembership() {
  std::unordered_map<std::string, std::set<size_t>> new_depths;
  new_depths[root_.str()].insert(0);

  // Warm from the cache store's label index: each corridor level is one
  // posting wave instead of a per-child Get + label check.
  if (LabelIndexSnapshotPtr snapshot = store_.AcquireIndexSnapshot()) {
    const Object* root_object = store_.Get(root_);
    if (root_object != nullptr) {
      std::vector<uint32_t> frontier{root_.id()};
      const std::string* prev_label = &root_object->label();
      for (size_t depth = 0; depth < corridor_.size() && !frontier.empty();
           ++depth) {
        frontier = IndexStepDownIds(*snapshot, *prev_label,
                                    corridor_.label(depth), frontier,
                                    &store_.metrics());
        for (uint32_t id : frontier) {
          new_depths[Oid::FromId(id).str()].insert(depth + 1);
        }
        prev_label = &corridor_.label(depth);
      }
    }
    depths_ = std::move(new_depths);
    return;
  }

  std::vector<Oid> frontier{root_};
  for (size_t depth = 0; depth < corridor_.size() && !frontier.empty();
       ++depth) {
    std::vector<Oid> next;
    for (const Oid& oid : frontier) {
      const Object* object = store_.Get(oid);
      if (object == nullptr || !object->IsSet()) continue;
      for (const Oid& child_oid : object->children()) {
        const Object* child = store_.Get(child_oid);
        if (child == nullptr || child->label() != corridor_.label(depth)) {
          continue;
        }
        if (new_depths[child_oid.str()].insert(depth + 1).second) {
          next.push_back(child_oid);
        }
      }
    }
    frontier = std::move(next);
  }

  depths_ = std::move(new_depths);
}

void AuxiliaryCache::FlushIndexCounters(WarehouseCosts* costs) {
  int64_t probes =
      store_.metrics().index_probes.load(std::memory_order_relaxed);
  int64_t fallbacks =
      store_.metrics().index_fallbacks.load(std::memory_order_relaxed);
  costs->index_probes.fetch_add(probes - flushed_index_probes_,
                                std::memory_order_relaxed);
  costs->index_fallbacks.fetch_add(fallbacks - flushed_index_fallbacks_,
                                   std::memory_order_relaxed);
  flushed_index_probes_ = probes;
  flushed_index_fallbacks_ = fallbacks;
}

void AuxiliaryCache::Prune() {
  std::vector<Oid> orphans;
  store_.ForEach([&](const Object& object) {
    if (depths_.find(object.oid().str()) == depths_.end()) {
      orphans.push_back(object.oid());
    }
  });
  for (const Oid& oid : orphans) {
    store_.Remove(oid);
    values_known_.Erase(oid);
  }
}

Status AuxiliaryCache::OnEvent(const UpdateEvent& event,
                               SourceWrapper* wrapper) {
  switch (event.kind) {
    case UpdateKind::kInsert: {
      if (!OnCorridor(event.parent)) return Status::Ok();
      GSV_RETURN_IF_ERROR(store_.AddChildRaw(event.parent, event.child));
      // Does the child continue the corridor from any of the parent's
      // depths? We need its label: from the event (level >= 2) or by
      // asking the source (level 1).
      std::set<size_t> parent_depths = depths_.at(event.parent.str());
      bool label_needed = false;
      for (size_t depth : parent_depths) {
        if (depth < corridor_.size()) label_needed = true;
      }
      if (!label_needed) return Status::Ok();
      Object child_object;
      if (event.child_object.has_value()) {
        child_object = *event.child_object;
      } else {
        ++wrapper->costs()->cache_maintenance_queries;
        GSV_ASSIGN_OR_RETURN(child_object,
                             wrapper->FetchObject(event.child));
      }
      for (size_t depth : parent_depths) {
        if (depth < corridor_.size() &&
            child_object.label() == corridor_.label(depth)) {
          GSV_RETURN_IF_ERROR(
              AddToCorridor(child_object, depth + 1, wrapper));
        }
      }
      return Status::Ok();
    }
    case UpdateKind::kDelete: {
      if (!OnCorridor(event.parent)) return Status::Ok();
      GSV_RETURN_IF_ERROR(store_.RemoveChildRaw(event.parent, event.child));
      if (OnCorridor(event.child)) RecomputeMembership();
      return Status::Ok();
    }
    case UpdateKind::kModify: {
      if (!OnCorridor(event.parent) || mode_ != Mode::kFull) {
        return Status::Ok();
      }
      Value new_value;
      if (event.new_value.has_value()) {
        new_value = *event.new_value;
      } else {
        ++wrapper->costs()->cache_maintenance_queries;
        GSV_ASSIGN_OR_RETURN(Object object,
                             wrapper->FetchObject(event.parent));
        new_value = object.value();
      }
      GSV_RETURN_IF_ERROR(store_.SetValueRaw(event.parent, new_value));
      values_known_.Insert(event.parent);
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown update kind");
}

Status AuxiliaryCache::SaveTo(std::ostream& out) const {
  out << kCacheHeader << '\n';
  for (const Oid& oid : values_known_) {
    out << "known " << oid.str() << '\n';
  }
  out << kStoreMarker << '\n';
  return WriteStore(store_, out);
}

Status AuxiliaryCache::LoadFrom(std::istream& in) {
  if (store_.size() != 0 || !depths_.empty()) {
    return Status::FailedPrecondition(
        "AuxiliaryCache::LoadFrom requires an empty cache");
  }
  std::string line;
  if (!std::getline(in, line) || line != kCacheHeader) {
    return Status::DataLoss("aux cache image: bad header");
  }
  bool store_section = false;
  while (std::getline(in, line)) {
    if (line == kStoreMarker) {
      store_section = true;
      break;
    }
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("known ", 0) != 0) {
      return Status::DataLoss("aux cache image: unexpected line '" + line +
                              "'");
    }
    values_known_.Insert(Oid(line.substr(6)));
  }
  if (!store_section) {
    return Status::DataLoss("aux cache image: missing store section");
  }
  GSV_RETURN_IF_ERROR(ReadStore(in, &store_));
  RecomputeMembership();
  return Status::Ok();
}

std::vector<Path> AuxiliaryCache::CorridorPathsFromRoot(const Oid& n) const {
  std::vector<Path> paths;
  auto it = depths_.find(n.str());
  if (it == depths_.end()) return paths;
  for (size_t depth : it->second) {
    paths.push_back(corridor_.Prefix(depth));
  }
  return paths;
}

std::vector<Oid> AuxiliaryCache::Ancestors(const Oid& n,
                                           const Path& p) const {
  return AncestorsByPath(store_, n, p);
}

bool AuxiliaryCache::VerifyPath(const Oid& y, const Path& p) const {
  auto it = depths_.find(y.str());
  if (it == depths_.end()) return false;
  return it->second.count(p.size()) > 0 && corridor_.Prefix(p.size()) == p;
}

std::optional<std::vector<Object>> AuxiliaryCache::EvalObjects(
    const Oid& n, const Path& p) const {
  std::vector<Object> objects;
  for (const Oid& oid : EvalPath(store_, n, p)) {
    const Object* object = store_.Get(oid);
    if (object == nullptr) continue;
    if (object->IsAtomic() && !ValueKnown(oid)) {
      return std::nullopt;  // partial cache: value must come from the source
    }
    objects.push_back(*object);
  }
  return objects;
}

Result<Object> AuxiliaryCache::Fetch(const Oid& oid) const {
  const Object* object = store_.Get(oid);
  if (object == nullptr) {
    return Status::NotFound("not cached: " + oid.str());
  }
  if (object->IsAtomic() && !ValueKnown(oid)) {
    return Status::FailedPrecondition("value not cached for " + oid.str());
  }
  return *object;
}

}  // namespace gsv
