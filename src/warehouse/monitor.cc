#include "warehouse/monitor.h"

#include "path/navigate.h"

namespace gsv {

void SourceMonitor::OnUpdate(const ObjectStore& store, const Update& update) {
  UpdateEvent event;
  event.kind = update.kind;
  event.parent = update.parent;
  event.child = update.child;
  event.level = level_;
  event.sequence = ++sequence_;

  if (level_ >= ReportingLevel::kWithValues) {
    const Object* parent_object = store.Get(update.parent);
    if (parent_object != nullptr) event.parent_object = *parent_object;
    if (update.kind != UpdateKind::kModify) {
      const Object* child_object = store.Get(update.child);
      if (child_object != nullptr) event.child_object = *child_object;
    } else {
      event.old_value = update.old_value;
      event.new_value = update.new_value;
    }
  }

  if (level_ >= ReportingLevel::kWithRootPath) {
    // The source applied the update, so it knows the path it traversed to
    // reach the affected object (§5.1 scenario 3). We reconstruct one
    // root-path (with its OIDs) from the source's own indexes; this costs
    // the source, not the warehouse.
    std::vector<Path> paths = PathsFromTo(store, root_, update.parent, 1);
    if (!paths.empty()) {
      RootPathInfo info;
      info.labels = paths[0];
      // Recover the OIDs along the path by walking it down from the root.
      info.oids.push_back(root_);
      Oid current = root_;
      for (size_t i = 0; i < info.labels.size(); ++i) {
        const Object* object = store.Get(current);
        if (object == nullptr || !object->IsSet()) break;
        // Follow the child that continues toward update.parent.
        Oid next;
        for (const Oid& child : object->children()) {
          const Object* child_object = store.Get(child);
          if (child_object == nullptr ||
              child_object->label() != info.labels.label(i)) {
            continue;
          }
          if (i + 1 == info.labels.size()) {
            if (child == update.parent) {
              next = child;
              break;
            }
          } else if (HasPathFromTo(store, child, update.parent,
                                   info.labels.Suffix(i + 1))) {
            next = child;
            break;
          }
        }
        if (!next.valid()) break;
        info.oids.push_back(next);
        current = next;
      }
      if (info.oids.size() == info.labels.size() + 1) {
        event.root_path = std::move(info);
      }
    }
  }
  sink_(event);
}

}  // namespace gsv
