#include "warehouse/cost_model.h"

#include <sstream>

namespace gsv {

std::string WarehouseCosts::ToString() const {
  std::ostringstream out;
  out << "events=" << events_received
      << " screened=" << events_screened_out
      << " local_only=" << events_local_only
      << " coalesced=" << events_coalesced
      << " queries=" << source_queries
      << " objects_shipped=" << objects_shipped
      << " values_shipped=" << values_shipped
      << " cache_queries=" << cache_maintenance_queries
      << " cache_hits=" << cache_hits
      << " cache_misses=" << cache_misses
      << " index_probes=" << index_probes
      << " index_fallbacks=" << index_fallbacks;
  // Health counters only appear once the fault-tolerance layer engaged, so
  // the common fault-free string stays short.
  if (events_duplicate_dropped > 0 || events_gap_detected > 0 ||
      events_buffered_stale > 0 || wrapper_failures > 0 ||
      wrapper_retries > 0 || breaker_trips > 0 || breaker_rejections > 0 ||
      views_quarantined > 0 || view_resyncs > 0 || resync_failures > 0) {
    out << " dup_dropped=" << events_duplicate_dropped
        << " gaps=" << events_gap_detected
        << " buffered_stale=" << events_buffered_stale
        << " retries=" << wrapper_retries
        << " wrapper_failures=" << wrapper_failures
        << " breaker_trips=" << breaker_trips
        << " breaker_rejections=" << breaker_rejections
        << " quarantined=" << views_quarantined
        << " resyncs=" << view_resyncs
        << " resync_failures=" << resync_failures;
  }
  return out.str();
}

}  // namespace gsv
