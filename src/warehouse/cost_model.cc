#include "warehouse/cost_model.h"

#include <sstream>

namespace gsv {

std::string WarehouseCosts::ToString() const {
  std::ostringstream out;
  out << "events=" << events_received
      << " screened=" << events_screened_out
      << " local_only=" << events_local_only
      << " coalesced=" << events_coalesced
      << " queries=" << source_queries
      << " objects_shipped=" << objects_shipped
      << " values_shipped=" << values_shipped
      << " cache_queries=" << cache_maintenance_queries
      << " cache_hits=" << cache_hits
      << " cache_misses=" << cache_misses;
  return out.str();
}

}  // namespace gsv
