#include "warehouse/cost_model.h"

#include <sstream>

namespace gsv {

namespace {
void Accumulate(std::atomic<int64_t>* into, const std::atomic<int64_t>& from) {
  into->fetch_add(from.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
}
}  // namespace

WarehouseCosts& WarehouseCosts::Merge(const WarehouseCosts& other) {
  Accumulate(&events_received, other.events_received);
  Accumulate(&events_screened_out, other.events_screened_out);
  Accumulate(&events_local_only, other.events_local_only);
  Accumulate(&events_coalesced, other.events_coalesced);
  Accumulate(&source_queries, other.source_queries);
  Accumulate(&objects_shipped, other.objects_shipped);
  Accumulate(&values_shipped, other.values_shipped);
  Accumulate(&cache_maintenance_queries, other.cache_maintenance_queries);
  Accumulate(&cache_hits, other.cache_hits);
  Accumulate(&cache_misses, other.cache_misses);
  Accumulate(&index_probes, other.index_probes);
  Accumulate(&index_fallbacks, other.index_fallbacks);
  Accumulate(&events_duplicate_dropped, other.events_duplicate_dropped);
  Accumulate(&events_gap_detected, other.events_gap_detected);
  Accumulate(&events_buffered_stale, other.events_buffered_stale);
  Accumulate(&wrapper_retries, other.wrapper_retries);
  Accumulate(&wrapper_failures, other.wrapper_failures);
  Accumulate(&breaker_trips, other.breaker_trips);
  Accumulate(&breaker_rejections, other.breaker_rejections);
  Accumulate(&views_quarantined, other.views_quarantined);
  Accumulate(&view_resyncs, other.view_resyncs);
  Accumulate(&resync_failures, other.resync_failures);
  Accumulate(&cross_shard_exports, other.cross_shard_exports);
  Accumulate(&cross_shard_applies, other.cross_shard_applies);
  Accumulate(&cross_shard_probes, other.cross_shard_probes);
  Accumulate(&gdn_propagations, other.gdn_propagations);
  Accumulate(&gdn_matches_created, other.gdn_matches_created);
  Accumulate(&gdn_matches_freed, other.gdn_matches_freed);
  Accumulate(&gdn_rebuilds, other.gdn_rebuilds);
  Accumulate(&general_caps_hit, other.general_caps_hit);
  Accumulate(&store_page_faults, other.store_page_faults);
  Accumulate(&store_page_evictions, other.store_page_evictions);
  Accumulate(&store_writeback_bytes, other.store_writeback_bytes);
  Accumulate(&store_swizzle_hits, other.store_swizzle_hits);
  Accumulate(&store_swizzle_misses, other.store_swizzle_misses);
  return *this;
}

std::string WarehouseCosts::ToString() const {
  std::ostringstream out;
  out << "events=" << events_received
      << " screened=" << events_screened_out
      << " local_only=" << events_local_only
      << " coalesced=" << events_coalesced
      << " queries=" << source_queries
      << " objects_shipped=" << objects_shipped
      << " values_shipped=" << values_shipped
      << " cache_queries=" << cache_maintenance_queries
      << " cache_hits=" << cache_hits
      << " cache_misses=" << cache_misses
      << " index_probes=" << index_probes
      << " index_fallbacks=" << index_fallbacks;
  // Health counters only appear once the fault-tolerance layer engaged, so
  // the common fault-free string stays short.
  if (events_duplicate_dropped > 0 || events_gap_detected > 0 ||
      events_buffered_stale > 0 || wrapper_failures > 0 ||
      wrapper_retries > 0 || breaker_trips > 0 || breaker_rejections > 0 ||
      views_quarantined > 0 || view_resyncs > 0 || resync_failures > 0) {
    out << " dup_dropped=" << events_duplicate_dropped
        << " gaps=" << events_gap_detected
        << " buffered_stale=" << events_buffered_stale
        << " retries=" << wrapper_retries
        << " wrapper_failures=" << wrapper_failures
        << " breaker_trips=" << breaker_trips
        << " breaker_rejections=" << breaker_rejections
        << " quarantined=" << views_quarantined
        << " resyncs=" << view_resyncs
        << " resync_failures=" << resync_failures;
  }
  if (cross_shard_exports > 0 || cross_shard_applies > 0 ||
      cross_shard_probes > 0) {
    out << " xshard_exports=" << cross_shard_exports
        << " xshard_applies=" << cross_shard_applies
        << " xshard_probes=" << cross_shard_probes;
  }
  // Engine counters only appear when a generalized engine ran, so simple
  // Algorithm 1 deployments (and every golden output) are unchanged.
  if (gdn_propagations > 0 || gdn_matches_created > 0 ||
      gdn_matches_freed > 0 || gdn_rebuilds > 0 || general_caps_hit > 0) {
    out << " gdn_propagations=" << gdn_propagations
        << " gdn_matches_created=" << gdn_matches_created
        << " gdn_matches_freed=" << gdn_matches_freed
        << " gdn_rebuilds=" << gdn_rebuilds
        << " general_caps_hit=" << general_caps_hit;
  }
  // Paging counters only appear when a paged engine actually paged, so the
  // memory-engine string (and every golden output) is unchanged.
  if (store_page_faults > 0 || store_page_evictions > 0 ||
      store_writeback_bytes > 0) {
    out << " page_faults=" << store_page_faults
        << " page_evictions=" << store_page_evictions
        << " writeback_bytes=" << store_writeback_bytes;
  }
  if (store_swizzle_hits > 0 || store_swizzle_misses > 0) {
    out << " swizzle_hits=" << store_swizzle_hits
        << " swizzle_misses=" << store_swizzle_misses;
  }
  return out.str();
}

}  // namespace gsv
