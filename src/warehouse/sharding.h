#ifndef GSV_WAREHOUSE_SHARDING_H_
#define GSV_WAREHOUSE_SHARDING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/materialized_view.h"
#include "core/view_storage.h"
#include "oem/object.h"
#include "oem/oid.h"
#include "oem/update.h"
#include "warehouse/cost_model.h"
#include "warehouse/update_event.h"

namespace gsv {

// Shard participation for a partitioned warehouse.
//
// The interned 4-byte OID space makes ownership a mask: shard
// `mix(oid.id()) & (K-1)` owns the object, for K a power of two. Interned
// ids are dense (allocation order), which follows graph construction order
// — siblings and cousins sit at *regular strides*, so masking raw ids
// clusters structurally-related objects (e.g. every leaf-level parent of a
// uniform tree) onto a couple of residues and starves the other shards. A
// Fibonacci multiply plus an xor-fold decorrelates the stride before the
// mask, keeping the split near-uniform for any population. Every shard
// warehouse materializes exactly the members it owns; the union over
// shards — disjoint by construction — is the full view, and merging
// per-shard members in canonical lexicographic OID order reproduces the
// 1-shard answer byte-for-byte.

inline uint32_t ShardOfOid(const Oid& oid, uint32_t shard_mask) {
  uint32_t h = oid.id() * 2654435761u;  // 2^32 / golden ratio
  h ^= h >> 16;                         // fold entropy into the masked bits
  return h & shard_mask;
}

// Routing anchor of an update event. Modifies route by the modified
// object. Inserts and deletes route by the *child*: a long update stream
// concentrates structural changes on a few hub parents (the root of an
// eroding tree ends up absorbing a large share of attach/detach traffic),
// and parent-routing would serialize that share onto one shard; children
// are diverse (fresh objects, detached subtree roots), so child-routing
// keeps the load near-uniform. Ordering stays safe: every event on the
// same edge (N1, N2) shares its anchor, so edge-level insert/delete pairs
// stay in one per-shard sequence domain, and the evaluating shard exports
// whatever it derives for members it does not own.
inline uint32_t RouteShardOf(const UpdateEvent& event, uint32_t shard_mask) {
  const Oid& anchor = event.child.valid() ? event.child : event.parent;
  return ShardOfOid(anchor, shard_mask);
}

// A view operation produced at one shard for a member another shard owns.
// Maintenance evaluates against the frozen final source state, so the op is
// correct wherever it lands; the coordinator redistributes outboxes to the
// owning shards between the evaluation barrier and the verification sweep.
struct ForeignViewOp {
  enum class Kind { kVInsert, kVDelete, kSync };
  Kind kind = Kind::kVInsert;
  std::string view;  // view (definition) name, identical across shards
  Object object;     // kVInsert: the base object to delegate
  Oid base_oid;      // kVDelete: the member to drop
  Update update;     // kSync: the base update to propagate into values
};

// The shard that must apply a foreign op: the owner of the member (or, for
// syncs, of the updated base object) it targets.
inline uint32_t OwnerOfOp(const ForeignViewOp& op, uint32_t mask) {
  switch (op.kind) {
    case ForeignViewOp::Kind::kVInsert:
      return ShardOfOid(op.object.oid(), mask);
    case ForeignViewOp::Kind::kVDelete:
      return ShardOfOid(op.base_oid, mask);
    case ForeignViewOp::Kind::kSync:
      return ShardOfOid(op.update.parent, mask);
  }
  return 0;
}

// Answers cross-shard membership questions. Algorithm 1's delete cases
// consult ContainsBase on members the evaluating shard may not own ("if Y
// in MV"); the resolver is the cross-shard accessor stub that answers for
// the whole warehouse. During a batch drain the coordinator freezes a
// membership snapshot (evaluation reads a consistent pre-drain state, like
// any two parallel batch workers); inline dispatch probes the owning shard
// live.
class CrossShardResolver {
 public:
  virtual ~CrossShardResolver() = default;
  // True when `base` is currently a member of `view` in any shard.
  virtual bool ViewContains(const std::string& view, const Oid& base) const = 0;
};

// ViewStorage decorator that scopes one shard's slice of a view: owned
// operations go to the wrapped MaterializedView, foreign ones are exported
// to the shard's outbox, and foreign membership reads go through the
// resolver. The maintenance stack (Algorithm 1, batch buffers, level-1
// rechecks) runs unchanged on top of it.
class ShardScopedStorage : public ViewStorage {
 public:
  ShardScopedStorage(MaterializedView* inner, uint32_t shard_index,
                     uint32_t shard_mask, const CrossShardResolver* resolver,
                     std::vector<ForeignViewOp>* outbox, WarehouseCosts* costs)
      : inner_(inner),
        shard_index_(shard_index),
        shard_mask_(shard_mask),
        resolver_(resolver),
        outbox_(outbox),
        costs_(costs) {}

  bool Owns(const Oid& base_oid) const {
    return ShardOfOid(base_oid, shard_mask_) == shard_index_;
  }

  // ---- ViewStorage ----
  const Oid& view_oid() const override { return inner_->view_oid(); }

  bool ContainsBase(const Oid& base_oid) const override {
    if (Owns(base_oid)) return inner_->ContainsBase(base_oid);
    ++costs_->cross_shard_probes;
    return resolver_ != nullptr &&
           resolver_->ViewContains(inner_->def().name(), base_oid);
  }

  Status VInsert(const Object& base_object) override {
    if (Owns(base_object.oid())) return inner_->VInsert(base_object);
    Export(ForeignViewOp::Kind::kVInsert).object = base_object;
    return Status::Ok();
  }

  Status VDelete(const Oid& base_oid) override {
    if (Owns(base_oid)) return inner_->VDelete(base_oid);
    Export(ForeignViewOp::Kind::kVDelete).base_oid = base_oid;
    return Status::Ok();
  }

  OidSet BaseMembers() const override { return inner_->BaseMembers(); }

  Status SyncUpdate(const Update& update) override {
    if (Owns(update.parent)) return inner_->SyncUpdate(update);
    Export(ForeignViewOp::Kind::kSync).update = update;
    return Status::Ok();
  }

  MaterializedView* inner() { return inner_; }

 private:
  ForeignViewOp& Export(ForeignViewOp::Kind kind) {
    ++costs_->cross_shard_exports;
    ForeignViewOp op;
    op.kind = kind;
    op.view = inner_->def().name();
    outbox_->push_back(std::move(op));
    return outbox_->back();
  }

  MaterializedView* inner_;
  uint32_t shard_index_;
  uint32_t shard_mask_;
  const CrossShardResolver* resolver_;
  std::vector<ForeignViewOp>* outbox_;
  WarehouseCosts* costs_;
};

// Canonical per-member content lines of one view slice: (base OID, "label
// value") in lexicographic base-OID order. The sharded coordinator merges
// the slices of all shards; a 1-shard warehouse's single slice produces the
// byte-identical result — the twin tests compare exactly these strings.
std::vector<std::pair<Oid, std::string>> ViewContentLines(
    const MaterializedView& view);

}  // namespace gsv

#endif  // GSV_WAREHOUSE_SHARDING_H_
