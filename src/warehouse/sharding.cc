#include "warehouse/sharding.h"

#include <utility>

namespace gsv {

std::vector<std::pair<Oid, std::string>> ViewContentLines(
    const MaterializedView& view) {
  std::vector<std::pair<Oid, std::string>> lines;
  const OidSet members = view.BaseMembers();
  lines.reserve(members.size());
  // OidSet iterates in lexicographic OID order, so the slice comes out
  // pre-sorted for the k-way merge.
  for (const Oid& base : members) {
    const Object* delegate = view.store().Get(view.DelegateOid(base));
    std::string text = delegate == nullptr
                           ? std::string("<missing delegate>")
                           : delegate->label() + " " +
                                 delegate->value().ToString();
    lines.emplace_back(base, std::move(text));
  }
  return lines;
}

}  // namespace gsv
