#ifndef GSV_WAREHOUSE_WRAPPER_H_
#define GSV_WAREHOUSE_WRAPPER_H_

#include <mutex>
#include <vector>

#include "oem/store.h"
#include "path/path.h"
#include "util/retry.h"
#include "util/status.h"
#include "warehouse/cost_model.h"
#include "warehouse/fault_injector.h"

namespace gsv {

// The source wrapper of Figure 6: "the wrapper also translates queries from
// the warehouse to the native queries of the data source and sends the
// results back." Every method is one round trip; results are metered into
// WarehouseCosts (§5.1's fetch-style interface of Example 9).
//
// Round trips are fallible: a FaultInjector (when installed) models the
// unreliable channel / unavailable source, every call is admitted through a
// bounded-exponential-backoff retry policy, and consecutive failures trip a
// per-source circuit breaker that fails fast until the source proves healthy
// again (Probe). Without an injector the admission path is a single branch.
class SourceWrapper {
 public:
  // `source` is the wrapped source store; `costs` is the warehouse's cost
  // sheet. Both must outlive the wrapper.
  SourceWrapper(const ObjectStore* source, WarehouseCosts* costs)
      : source_(source), costs_(costs) {}

  // fetch X where oid(X) = oid — one object with label and value.
  Result<Object> FetchObject(const Oid& oid);

  // fetch X where path(X, y) = p (Example 9's ancestor query).
  Result<std::vector<Oid>> FetchAncestors(const Oid& y, const Path& p);

  // fetch X where path(n, X) = p — all objects in n.p, with values
  // (Example 9: "obtain all objects in N.p, then test cond() locally").
  Result<std::vector<Object>> FetchPathObjects(const Oid& n, const Path& p);

  // fetch path(root, n) — the derivation paths of n.
  Result<std::vector<Path>> FetchPathsFromRoot(const Oid& root, const Oid& n);

  // Boolean probe: does path(root, y) include exactly p?
  Result<bool> VerifyPath(const Oid& root, const Oid& y, const Path& p);

  // Health check: one admitted no-op round trip. Ok => the source answered.
  // With `force`, bypasses the open-breaker fail-fast (used by explicit
  // resync requests) but still consults the injector, so a genuinely down
  // source stays down; success closes the breaker.
  Status Probe(bool force = false);

  // Install (or remove, with nullptr) the deterministic fault model for
  // this source's channel. The injector must outlive the wrapper or be
  // detached before destruction.
  void set_fault_injector(FaultInjector* injector);
  FaultInjector* fault_injector() const { return injector_; }

  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  void set_breaker_options(const CircuitBreaker::Options& options);
  CircuitBreaker::State breaker_state() const;

  const ObjectStore& source() const { return *source_; }
  WarehouseCosts* costs() const { return costs_; }

 private:
  // Admission control for one round trip: breaker fail-fast, injected
  // faults, retry with backoff, breaker bookkeeping. Returns Ok when the
  // call may proceed against the source store.
  Status Admit(const char* op, bool force = false);

  void MeterShipment(size_t objects, size_t values);

  const ObjectStore* source_;
  WarehouseCosts* costs_;

  // Batch workers share one wrapper across threads; the fault machinery is
  // serialized. The common injector-free path never takes the lock.
  mutable std::mutex fault_mutex_;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_policy_;
  CircuitBreaker breaker_;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_WRAPPER_H_
