#ifndef GSV_WAREHOUSE_WRAPPER_H_
#define GSV_WAREHOUSE_WRAPPER_H_

#include <vector>

#include "oem/store.h"
#include "path/path.h"
#include "util/status.h"
#include "warehouse/cost_model.h"

namespace gsv {

// The source wrapper of Figure 6: "the wrapper also translates queries from
// the warehouse to the native queries of the data source and sends the
// results back." Every method is one round trip; results are metered into
// WarehouseCosts (§5.1's fetch-style interface of Example 9).
class SourceWrapper {
 public:
  // `source` is the wrapped source store; `costs` is the warehouse's cost
  // sheet. Both must outlive the wrapper.
  SourceWrapper(const ObjectStore* source, WarehouseCosts* costs)
      : source_(source), costs_(costs) {}

  // fetch X where oid(X) = oid — one object with label and value.
  Result<Object> FetchObject(const Oid& oid);

  // fetch X where path(X, y) = p (Example 9's ancestor query).
  std::vector<Oid> FetchAncestors(const Oid& y, const Path& p);

  // fetch X where path(n, X) = p — all objects in n.p, with values
  // (Example 9: "obtain all objects in N.p, then test cond() locally").
  std::vector<Object> FetchPathObjects(const Oid& n, const Path& p);

  // fetch path(root, n) — the derivation paths of n.
  std::vector<Path> FetchPathsFromRoot(const Oid& root, const Oid& n);

  // Boolean probe: does path(root, y) include exactly p?
  bool VerifyPath(const Oid& root, const Oid& y, const Path& p);

  const ObjectStore& source() const { return *source_; }
  WarehouseCosts* costs() const { return costs_; }

 private:
  void MeterShipment(size_t objects, size_t values);

  const ObjectStore* source_;
  WarehouseCosts* costs_;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_WRAPPER_H_
