#include "warehouse/update_batch.h"

#include <cstdint>
#include <unordered_map>

namespace gsv {

namespace {

// One map key per (source, edge) / (source, modify target). Interned OID
// ids are dense uint32s, so an edge packs into one uint64; the source index
// is folded in by keeping one map per source.
uint64_t EdgeKey(const UpdateEvent& event) {
  return (static_cast<uint64_t>(event.parent.id()) << 32) | event.child.id();
}

}  // namespace

void UpdateBatch::Add(std::vector<std::pair<size_t, UpdateEvent>> events) {
  if (events_.empty()) {
    events_ = std::move(events);
    return;
  }
  events_.reserve(events_.size() + events.size());
  for (auto& item : events) events_.push_back(std::move(item));
}

size_t UpdateBatch::Coalesce() {
  // index into events_ of the last surviving event for a key, per source.
  std::unordered_map<size_t, std::unordered_map<uint64_t, size_t>> last_edge;
  std::unordered_map<size_t, std::unordered_map<uint32_t, size_t>> last_modify;
  std::vector<bool> dead(events_.size(), false);
  size_t removed = 0;

  for (size_t i = 0; i < events_.size(); ++i) {
    const auto& [source, event] = events_[i];
    if (event.kind == UpdateKind::kModify) {
      auto& per_source = last_modify[source];
      auto [it, inserted] = per_source.emplace(event.parent.id(), i);
      if (!inserted) {
        // Merge into this (later) slot: newest snapshot and new value win;
        // the net transition starts from the earliest old value.
        UpdateEvent& survivor = events_[i].second;
        const UpdateEvent& earlier = events_[it->second].second;
        if (earlier.old_value.has_value()) {
          survivor.old_value = earlier.old_value;
        }
        dead[it->second] = true;
        ++removed;
        it->second = i;
      }
      continue;
    }
    auto& per_source = last_edge[source];
    const uint64_t key = EdgeKey(event);
    auto it = per_source.find(key);
    if (it != per_source.end() &&
        events_[it->second].second.kind != event.kind) {
      // insert/delete (or delete/insert) of the same edge: net nil.
      dead[it->second] = true;
      dead[i] = true;
      removed += 2;
      per_source.erase(it);
      continue;
    }
    per_source[key] = i;
  }

  if (removed == 0) return 0;
  std::vector<std::pair<size_t, UpdateEvent>> survivors;
  survivors.reserve(events_.size() - removed);
  for (size_t i = 0; i < events_.size(); ++i) {
    if (!dead[i]) survivors.push_back(std::move(events_[i]));
  }
  events_ = std::move(survivors);
  return removed;
}

}  // namespace gsv
