#ifndef GSV_WAREHOUSE_SHARDED_WAREHOUSE_H_
#define GSV_WAREHOUSE_SHARDED_WAREHOUSE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/view_storage.h"
#include "query/explain.h"
#include "warehouse/sharding.h"
#include "warehouse/warehouse.h"

namespace gsv {

// A multi-writer warehouse over a partitioned OID space (perf companion to
// §5's single warehouse): K shard warehouses — each with its own delegate
// store, label/path indexes, WAL directory and cost sheet — maintain
// disjoint slices of every view, split by `oid.id() & (K-1)` over the
// interned 4-byte OID space. A router re-stamps each source's events into
// per-shard sequence domains (duplicate-drop and gap-detection intact per
// shard) and delivers them to the owning shard; drains run Algorithm 1 on
// all shards concurrently. Cross-shard edges are first class: a shard that
// derives a member it doesn't own exports the op to the owner, and
// membership questions about foreign members resolve through a coordinator
// directory (frozen per batch so every shard evaluates one consistent
// pre-drain state — the §6 DAG-delivery discipline generalized across
// shards). Reads fan out and K-way merge in lexicographic OID order, so
// results are byte-identical to a 1-shard warehouse over the same events.
class ShardedWarehouse {
 public:
  // Wall-clock decomposition of one coordinated drain. `eval_micros` /
  // `sweep_micros` are the per-shard parallel phases; `serial_micros` is
  // everything that must run on the coordinator thread (freeze, foreign-op
  // redistribution, commits). On an N-core machine the drain's critical
  // path is serial + max(eval) + max(sweep); exp17 reports both this bound
  // and the measured wall clock.
  struct DrainTiming {
    int64_t serial_micros = 0;
    std::vector<int64_t> eval_micros;
    std::vector<int64_t> sweep_micros;
  };

  struct DurabilityOptions {
    std::string dir;  // per-shard state lands in <dir>/shard-<i>
    FsyncPolicy fsync = FsyncPolicy::kCommit;
    uint64_t checkpoint_interval_events = 0;
    // Fencing epoch applied to every shard's WAL (see Warehouse::
    // DurabilityOptions::epoch). One fence per shard home.
    uint64_t epoch = 0;
    std::string owner;
  };

  struct Options {
    // Builds each shard's delegate-store engine (called once per shard —
    // the factory must hand out a fresh engine, and for a paged engine a
    // fresh scratch directory, per call; see MakePagedEngineFactory). Null
    // selects the memory default.
    StorageEngineFactory engine_factory;
  };

  // `shards` must be a power of two >= 1.
  explicit ShardedWarehouse(uint32_t shards)
      : ShardedWarehouse(shards, Options()) {}
  ShardedWarehouse(uint32_t shards, Options options);
  ~ShardedWarehouse();

  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  Warehouse& shard(size_t index) { return *shards_[index]; }
  ObjectStore& shard_store(size_t index) { return *stores_[index]; }
  const Status& init_status() const { return init_status_; }

  // Connects `source` to every shard (monitor-less) and installs the
  // coordinator's routing monitor on it. Mirrors Warehouse::ConnectSource.
  Status ConnectSource(ObjectStore* source, Oid source_root,
                       ReportingLevel level, std::string name = "");

  // Defines the view on every shard; each initializes from current source
  // state and keeps only its owned slice. Sharded warehouses are cache-less
  // (CacheMode::kNone) — the §5.2 corridor cuts across the partition.
  Status DefineView(std::string_view definition,
                    const std::string& source_name = "");

  void SetPathKnowledge(PathKnowledge knowledge);

  // Deferred mode queues routed events at their owning shards; a drain
  // processes all shards concurrently. Inline mode dispatches on arrival
  // and redistributes cross-shard ops after every event.
  void set_deferred(bool deferred);
  bool deferred() const { return deferred_; }
  size_t pending_events() const;

  // Coordinated drain: freeze the membership directory; run each
  // participating shard's batch drain (Algorithm 1, threads=1 inside the
  // shard — concurrency comes from the shard fan-out) in parallel;
  // redistribute the foreign-op outboxes in deterministic shard order;
  // sweep; commit per-shard durability. Appends one DrainTiming.
  Status ProcessPendingBatch(size_t threads);
  Status ProcessPending() { return ProcessPendingBatch(1); }

  const std::vector<DrainTiming>& drain_timings() const { return timings_; }
  void clear_drain_timings() { timings_.clear(); }

  // ---- Fault tolerance ----
  // Installs a fault model on the router→shard channel (and wrapper) of
  // `source_name` at one shard; other shards' deliveries are unaffected.
  Status SetFaultInjector(const std::string& source_name, uint32_t shard_index,
                          FaultInjector* injector);
  size_t stale_view_count() const;
  // Forces resync at every shard, redistributes the recompute exports, and
  // sweeps all shards so peers drop what the lost events should have
  // deleted. Returns Ok when no views remain stale.
  Status ResyncStaleViews();

  // ---- Durability ----
  // Enables (or recovers) per-shard WAL + checkpoints under
  // options.dir/shard-<i>, then restores the router's per-shard sequence
  // counters from the recovered watermarks and settles cross-shard effects
  // of the replay. Call after ConnectSource, before DefineView when
  // recovering.
  Status EnableDurability(const DurabilityOptions& options);
  Status WriteCheckpoint();

  // ---- Queries (fan out + merge) ----
  // Members of `name` across all shards, K-way merged in canonical
  // lexicographic OID order (byte-identical to a 1-shard warehouse).
  std::vector<Oid> ViewMembers(const std::string& name);
  // (base OID, "label value") per member, same order.
  std::vector<std::pair<Oid, std::string>> ViewContents(
      const std::string& name);
  ShardedViewExplanation ExplainView(const std::string& name);

  // Cross-shard totals (per-shard sheets summed).
  WarehouseCosts MergedCosts() const;
  StoreMetrics MergedDelegateMetrics() const;

 private:
  // The coordinator's cross-shard membership directory. Inline dispatch
  // probes the owning shard live; a coordinated drain freezes a snapshot so
  // every shard evaluates against the same pre-drain membership (workers on
  // different shards must not observe each other's mid-batch writes).
  class Directory : public CrossShardResolver {
   public:
    explicit Directory(ShardedWarehouse* owner) : owner_(owner) {}
    bool ViewContains(const std::string& view, const Oid& base) const override;
    void Freeze();
    void Thaw() { frozen_ = false; }

   private:
    ShardedWarehouse* owner_;
    bool frozen_ = false;
    // Per-(view, shard) slice snapshots, indexed by owning shard. Kept as
    // slices rather than one unioned set: the owner's slice alone answers
    // any membership probe, and copying K sorted vectors is far cheaper
    // than K ordered merges on the serial coordinator path.
    std::unordered_map<std::string, std::vector<OidSet>> snapshot_;
  };

  struct SourceRoute {
    std::string name;
    ObjectStore* store = nullptr;
    Oid root;  // resolved entry object; coordinator engines anchor here
    std::unique_ptr<SourceMonitor> monitor;
    // Next sequence to hand out per shard (the router owns the per-shard
    // sequence domains; shard i's events are numbered 1.. independently).
    std::vector<uint64_t> next_out;
  };

  // ViewStorage adapter the coordinator-owned engines emit into: membership
  // deltas become foreign-view ops in the coordinator outbox (delivered to
  // their owning shards through the existing ApplyForeignOps channel, which
  // filters by owner), and membership probes resolve against the owning
  // shard's live slice. Value sync is a no-op here — each shard's external
  // entry syncs its own delegates from the routed events it owns.
  class CoordStorage : public ViewStorage {
   public:
    CoordStorage(ShardedWarehouse* owner, std::string view, Oid view_oid)
        : owner_(owner), view_(std::move(view)), view_oid_(view_oid) {}
    const Oid& view_oid() const override { return view_oid_; }
    bool ContainsBase(const Oid& base_oid) const override;
    Status VInsert(const Object& base_object) override;
    Status VDelete(const Oid& base_oid) override;
    OidSet BaseMembers() const override;

   private:
    ShardedWarehouse* owner_;
    std::string view_;
    Oid view_oid_;
  };

  // One coordinator-owned general engine per non-simple view (DESIGN.md
  // §4j). The shards keep "external" entries for these views (delegate
  // slices + value sync only); the coordinator runs the single network over
  // the shared source store — it sees every routed event before the
  // per-shard fault injectors, so engine state never diverges on a dropped
  // delivery — and its deltas fan out through the foreign-op channel.
  struct CoordView {
    std::string name;
    size_t source_index = 0;
    // Engines hold references into this copy; unique_ptr keeps it stable.
    std::unique_ptr<ViewDefinition> def;
    Warehouse::EngineKind engine = Warehouse::EngineKind::kGdn;
    std::unique_ptr<CoordStorage> storage;
    std::unique_ptr<GdnEngine> gdn;
    std::unique_ptr<GeneralMaintainer> general;
  };

  void RouteEvent(size_t source_index, const UpdateEvent& event);
  // Drains the coordinator outbox and every shard's outbox, applying each
  // op at its owner in deterministic (producer, op) order. With
  // `commit_targets`, closes the durability group of every shard that
  // applied something; `applied_out` (when non-null) is marked true for
  // those shards instead.
  Status FlushForeignOps(bool commit_targets,
                         std::vector<bool>* applied_out = nullptr);
  // Builds the coordinator engine for a non-simple view (no-op when one
  // already exists, or when shard 0 maintains the view with Algorithm 1).
  Status EnsureCoordView(const std::string& name);
  // Runs every coordinator engine bound to `source_index` over one routed
  // event (re-stamping modify values from the source — the engines re-read
  // store truth, so level 1 suffices). A poisoned network self-heals in
  // place: Rebuild + Reconcile, whose duplicate deltas are §4.3 no-ops.
  void ApplyCoordEvent(size_t source_index, const UpdateEvent& event);
  // Drains the deferred coordinator event queue (deferred-mode Phase B2).
  Status ApplyCoordPending();
  // Recovery: re-derives the engine's member set from the current source
  // and emits whatever deltas the recovered shard slices are missing.
  Status ReconcileCoordView(CoordView& view);
  ThreadPool* Pool(size_t threads);

  uint32_t mask_ = 0;
  bool deferred_ = false;
  Status init_status_;
  std::vector<std::unique_ptr<ObjectStore>> stores_;
  std::vector<std::unique_ptr<Warehouse>> shards_;
  std::vector<std::unique_ptr<SourceRoute>> sources_;
  std::vector<std::string> view_names_;
  std::vector<std::unique_ptr<CoordView>> coord_views_;
  // Coordinator engine deltas awaiting delivery to their owning shards.
  std::vector<ForeignViewOp> coord_outbox_;
  // Deferred mode queues (source, event) here; a drain's Phase B2 applies
  // them against the final source state.
  std::vector<std::pair<size_t, UpdateEvent>> coord_pending_;
  // First engine failure not yet surfaced through a drain/resync return.
  Status coord_error_;
  Directory directory_{this};
  std::vector<DrainTiming> timings_;
  std::unique_ptr<ThreadPool> pool_;
  size_t pool_threads_ = 0;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_SHARDED_WAREHOUSE_H_
