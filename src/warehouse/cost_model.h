#ifndef GSV_WAREHOUSE_COST_MODEL_H_
#define GSV_WAREHOUSE_COST_MODEL_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace gsv {

// Warehouse-side cost accounting (§5.1: "querying the sources ... is
// expensive. Sending queries and answers consumes time and network
// bandwidth"). Every interaction between the warehouse and a source passes
// through SourceWrapper, which meters it here; the reporting-level and
// caching experiments (E3, E4, E7) read these counters.
//
// Relaxed atomics: one cost sheet is shared by every view of a warehouse,
// and the batch engine meters from several workers concurrently. Totals
// stay exact; cross-counter ordering is not guaranteed mid-batch.
struct WarehouseCosts {
  // Event traffic.
  std::atomic<int64_t> events_received{0};
  std::atomic<int64_t> events_screened_out{0};  // dropped by screening (§5.1)
  std::atomic<int64_t> events_local_only{0};  // served without source queries
  std::atomic<int64_t> events_coalesced{0};   // cancelled/merged by batching

  // Query-backs to sources.
  std::atomic<int64_t> source_queries{0};   // round trips
  std::atomic<int64_t> objects_shipped{0};  // objects in answers
  std::atomic<int64_t> values_shipped{0};   // atomic values (bytes proxy)

  // Auxiliary-structure upkeep (§5.2).
  std::atomic<int64_t> cache_maintenance_queries{0};
  std::atomic<int64_t> cache_hits{0};    // answered from cache/event
  std::atomic<int64_t> cache_misses{0};  // had to query the source

  WarehouseCosts() = default;
  WarehouseCosts(const WarehouseCosts& other) { *this = other; }
  WarehouseCosts& operator=(const WarehouseCosts& other) {
    events_received = other.events_received.load(std::memory_order_relaxed);
    events_screened_out =
        other.events_screened_out.load(std::memory_order_relaxed);
    events_local_only =
        other.events_local_only.load(std::memory_order_relaxed);
    events_coalesced =
        other.events_coalesced.load(std::memory_order_relaxed);
    source_queries = other.source_queries.load(std::memory_order_relaxed);
    objects_shipped = other.objects_shipped.load(std::memory_order_relaxed);
    values_shipped = other.values_shipped.load(std::memory_order_relaxed);
    cache_maintenance_queries =
        other.cache_maintenance_queries.load(std::memory_order_relaxed);
    cache_hits = other.cache_hits.load(std::memory_order_relaxed);
    cache_misses = other.cache_misses.load(std::memory_order_relaxed);
    return *this;
  }

  void Reset() { *this = WarehouseCosts(); }
  std::string ToString() const;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_COST_MODEL_H_
