#ifndef GSV_WAREHOUSE_COST_MODEL_H_
#define GSV_WAREHOUSE_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace gsv {

// Warehouse-side cost accounting (§5.1: "querying the sources ... is
// expensive. Sending queries and answers consumes time and network
// bandwidth"). Every interaction between the warehouse and a source passes
// through SourceWrapper, which meters it here; the reporting-level and
// caching experiments (E3, E4, E7) read these counters.
struct WarehouseCosts {
  // Event traffic.
  int64_t events_received = 0;
  int64_t events_screened_out = 0;  // dropped by local screening (§5.1)
  int64_t events_local_only = 0;    // maintained without any source query

  // Query-backs to sources.
  int64_t source_queries = 0;   // round trips
  int64_t objects_shipped = 0;  // objects in answers
  int64_t values_shipped = 0;   // atomic values in answers (bytes proxy)

  // Auxiliary-structure upkeep (§5.2).
  int64_t cache_maintenance_queries = 0;
  int64_t cache_hits = 0;    // accessor calls answered from cache/event
  int64_t cache_misses = 0;  // accessor calls that had to query the source

  void Reset() { *this = WarehouseCosts(); }
  std::string ToString() const;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_COST_MODEL_H_
