#ifndef GSV_WAREHOUSE_COST_MODEL_H_
#define GSV_WAREHOUSE_COST_MODEL_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace gsv {

// Warehouse-side cost accounting (§5.1: "querying the sources ... is
// expensive. Sending queries and answers consumes time and network
// bandwidth"). Every interaction between the warehouse and a source passes
// through SourceWrapper, which meters it here; the reporting-level and
// caching experiments (E3, E4, E7) read these counters.
//
// Relaxed atomics: one cost sheet is shared by every view of a warehouse,
// and the batch engine meters from several workers concurrently. Totals
// stay exact; cross-counter ordering is not guaranteed mid-batch.
struct WarehouseCosts {
  // Event traffic.
  std::atomic<int64_t> events_received{0};
  std::atomic<int64_t> events_screened_out{0};  // dropped by screening (§5.1)
  std::atomic<int64_t> events_local_only{0};  // served without source queries
  std::atomic<int64_t> events_coalesced{0};   // cancelled/merged by batching

  // Query-backs to sources.
  std::atomic<int64_t> source_queries{0};   // round trips
  std::atomic<int64_t> objects_shipped{0};  // objects in answers
  std::atomic<int64_t> values_shipped{0};   // atomic values (bytes proxy)

  // Auxiliary-structure upkeep (§5.2).
  std::atomic<int64_t> cache_maintenance_queries{0};
  std::atomic<int64_t> cache_hits{0};    // answered from cache/event
  std::atomic<int64_t> cache_misses{0};  // had to query the source
  std::atomic<int64_t> index_probes{0};      // corridor posting scans
  std::atomic<int64_t> index_fallbacks{0};   // corridor traversal fallbacks

  // Fault tolerance: sequenced delivery, retries, quarantine health.
  std::atomic<int64_t> events_duplicate_dropped{0};  // redelivery, idempotent
  std::atomic<int64_t> events_gap_detected{0};   // lost deliveries observed
  std::atomic<int64_t> events_buffered_stale{0}; // held for post-resync replay
  std::atomic<int64_t> wrapper_retries{0};       // extra attempts after faults
  std::atomic<int64_t> wrapper_failures{0};      // calls failed after retries
  std::atomic<int64_t> breaker_trips{0};         // closed/half-open -> open
  std::atomic<int64_t> breaker_rejections{0};    // fail-fast while open
  std::atomic<int64_t> views_quarantined{0};     // fresh -> stale transitions
  std::atomic<int64_t> view_resyncs{0};          // successful resyncs
  std::atomic<int64_t> resync_failures{0};       // resync attempts that died

  // Cross-shard maintenance (sharded warehouse only; zero otherwise).
  std::atomic<int64_t> cross_shard_exports{0};  // view ops routed to peers
  std::atomic<int64_t> cross_shard_applies{0};  // peer ops applied here
  std::atomic<int64_t> cross_shard_probes{0};   // foreign membership lookups

  // Generalized maintenance engines (§6 view classes; zero when every view
  // is simple). GDN counters flush from the network's stats at storage
  // quiescent points; caps_hit counts truncated general-engine searches.
  std::atomic<int64_t> gdn_propagations{0};     // support edges added/removed
  std::atomic<int64_t> gdn_matches_created{0};  // partial matches born
  std::atomic<int64_t> gdn_matches_freed{0};    // partial matches killed
  std::atomic<int64_t> gdn_rebuilds{0};         // full network (re)builds
  std::atomic<int64_t> general_caps_hit{0};     // truncated candidate scans

  // Delegate/cache store buffer pool (paged storage engine; zero on the
  // memory engine). Flushed from StoreMetrics at storage quiescent points
  // so maintenance cost sheets show the paging a drain actually caused.
  std::atomic<int64_t> store_page_faults{0};
  std::atomic<int64_t> store_page_evictions{0};
  std::atomic<int64_t> store_writeback_bytes{0};
  std::atomic<int64_t> store_swizzle_hits{0};    // reads via direct pointer
  std::atomic<int64_t> store_swizzle_misses{0};  // reads via route+probe

  WarehouseCosts() = default;
  WarehouseCosts(const WarehouseCosts& other) { *this = other; }
  WarehouseCosts& operator=(const WarehouseCosts& other) {
    events_received = other.events_received.load(std::memory_order_relaxed);
    events_screened_out =
        other.events_screened_out.load(std::memory_order_relaxed);
    events_local_only =
        other.events_local_only.load(std::memory_order_relaxed);
    events_coalesced =
        other.events_coalesced.load(std::memory_order_relaxed);
    source_queries = other.source_queries.load(std::memory_order_relaxed);
    objects_shipped = other.objects_shipped.load(std::memory_order_relaxed);
    values_shipped = other.values_shipped.load(std::memory_order_relaxed);
    cache_maintenance_queries =
        other.cache_maintenance_queries.load(std::memory_order_relaxed);
    cache_hits = other.cache_hits.load(std::memory_order_relaxed);
    cache_misses = other.cache_misses.load(std::memory_order_relaxed);
    index_probes = other.index_probes.load(std::memory_order_relaxed);
    index_fallbacks =
        other.index_fallbacks.load(std::memory_order_relaxed);
    events_duplicate_dropped =
        other.events_duplicate_dropped.load(std::memory_order_relaxed);
    events_gap_detected =
        other.events_gap_detected.load(std::memory_order_relaxed);
    events_buffered_stale =
        other.events_buffered_stale.load(std::memory_order_relaxed);
    wrapper_retries = other.wrapper_retries.load(std::memory_order_relaxed);
    wrapper_failures = other.wrapper_failures.load(std::memory_order_relaxed);
    breaker_trips = other.breaker_trips.load(std::memory_order_relaxed);
    breaker_rejections =
        other.breaker_rejections.load(std::memory_order_relaxed);
    views_quarantined =
        other.views_quarantined.load(std::memory_order_relaxed);
    view_resyncs = other.view_resyncs.load(std::memory_order_relaxed);
    resync_failures = other.resync_failures.load(std::memory_order_relaxed);
    cross_shard_exports =
        other.cross_shard_exports.load(std::memory_order_relaxed);
    cross_shard_applies =
        other.cross_shard_applies.load(std::memory_order_relaxed);
    cross_shard_probes =
        other.cross_shard_probes.load(std::memory_order_relaxed);
    gdn_propagations =
        other.gdn_propagations.load(std::memory_order_relaxed);
    gdn_matches_created =
        other.gdn_matches_created.load(std::memory_order_relaxed);
    gdn_matches_freed =
        other.gdn_matches_freed.load(std::memory_order_relaxed);
    gdn_rebuilds = other.gdn_rebuilds.load(std::memory_order_relaxed);
    general_caps_hit =
        other.general_caps_hit.load(std::memory_order_relaxed);
    store_page_faults =
        other.store_page_faults.load(std::memory_order_relaxed);
    store_page_evictions =
        other.store_page_evictions.load(std::memory_order_relaxed);
    store_writeback_bytes =
        other.store_writeback_bytes.load(std::memory_order_relaxed);
    store_swizzle_hits =
        other.store_swizzle_hits.load(std::memory_order_relaxed);
    store_swizzle_misses =
        other.store_swizzle_misses.load(std::memory_order_relaxed);
    return *this;
  }

  void Reset() { *this = WarehouseCosts(); }

  // Adds `other`'s counters into this sheet (relaxed loads and adds). A
  // sharded warehouse keeps one sheet per shard; explain and the benches
  // merge them so reported totals cover the whole warehouse, not shard 0.
  WarehouseCosts& Merge(const WarehouseCosts& other);

  std::string ToString() const;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_COST_MODEL_H_
