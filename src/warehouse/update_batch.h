#ifndef GSV_WAREHOUSE_UPDATE_BATCH_H_
#define GSV_WAREHOUSE_UPDATE_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "warehouse/update_event.h"

namespace gsv {

// A batch of source update events awaiting maintenance. The warehouse
// coalesces the batch before fanning it out to the views, so redundant
// traffic from a bursty source is paid once instead of once per view:
//
//  * an insert(P,C) and a later delete(P,C) of the same edge at the same
//    source cancel (and symmetrically delete-then-insert) — the net effect
//    on the final source state is nil, and batch maintenance evaluates
//    against that final state;
//  * consecutive-in-batch modifies of the same object merge last-writer-
//    wins: the survivor keeps the newest snapshot and new value, and the
//    oldest old value, preserving the net transition.
//
// Events of different sources never interact. The relative order of
// surviving events is preserved.
class UpdateBatch {
 public:
  UpdateBatch() = default;

  void Add(size_t source_index, UpdateEvent event) {
    events_.emplace_back(source_index, std::move(event));
  }

  // Bulk-load (e.g. a drained pending queue).
  void Add(std::vector<std::pair<size_t, UpdateEvent>> events);

  // Applies the cancellation/merge rules above; returns the number of
  // events eliminated.
  size_t Coalesce();

  const std::vector<std::pair<size_t, UpdateEvent>>& events() const {
    return events_;
  }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<std::pair<size_t, UpdateEvent>> events_;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_UPDATE_BATCH_H_
