#ifndef GSV_WAREHOUSE_FAULT_INJECTOR_H_
#define GSV_WAREHOUSE_FAULT_INJECTOR_H_

#include <cstdint>

#include "util/random.h"
#include "util/status.h"

namespace gsv {

// What fraction of the warehouse–source channel misbehaves. All faults are
// drawn from one seeded PRNG, so a given profile produces the same fault
// schedule on every run — the fault-injection tests rely on this.
struct FaultProfile {
  uint64_t seed = 1;
  // Per wrapper-call-attempt probability of a transient kUnavailable.
  double wrapper_fail_rate = 0.0;
  // Once a wrapper fault triggers, this many consecutive attempts fail
  // (models an outage window rather than isolated blips; bursts longer
  // than the retry budget are what trip circuit breakers).
  int wrapper_fail_burst = 1;
  // Per-event probability that a monitor→warehouse delivery is lost
  // (creates a sequence gap at the integrator).
  double event_drop_rate = 0.0;
  // Per-event probability that a delivery arrives twice (duplicate).
  double event_duplicate_rate = 0.0;
};

// Deterministic fault source for the warehouse–source channel. Installed
// on a Warehouse source (Warehouse::SetFaultInjector) it sits in two
// places: SourceWrapper consults OnWrapperCall() before answering each
// query-back attempt, and the warehouse integrator consults DropEvent() /
// DuplicateEvent() on each monitor delivery. Scripted controls (set_down,
// FailNextCalls, DropNextEvents) override the probabilistic profile for
// targeted tests.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultProfile& profile)
      : profile_(profile), rng_(profile.seed) {}

  // ---- Channel faults (monitor → warehouse delivery) ----

  // True when this delivery should be lost.
  bool DropEvent();
  // True when this delivery should arrive twice.
  bool DuplicateEvent();

  // ---- Wrapper faults (warehouse → source query-backs) ----

  // Status of this call attempt: OK, or kUnavailable while faulted.
  Status OnWrapperCall(const char* op);

  // ---- Scripted controls ----

  // Hard outage: every wrapper call fails until set_down(false).
  void set_down(bool down) { down_ = down; }
  bool down() const { return down_; }
  // The next `n` wrapper call attempts fail regardless of the profile.
  void FailNextCalls(int n) { forced_call_failures_ += n; }
  // The next `n` monitor deliveries are dropped regardless of the profile.
  void DropNextEvents(int n) { forced_event_drops_ += n; }
  // The next `n` monitor deliveries arrive twice regardless of the profile.
  void DuplicateNextEvents(int n) { forced_event_duplicates_ += n; }
  // Clears scripted faults and zeroes the probabilistic rates: the channel
  // is perfect from here on (the recovery half of fault tests).
  void Heal();

  // ---- Introspection ----

  int64_t wrapper_faults() const { return wrapper_faults_; }
  int64_t events_dropped() const { return events_dropped_; }
  int64_t events_duplicated() const { return events_duplicated_; }

 private:
  FaultProfile profile_;
  Random rng_;
  bool down_ = false;
  int forced_call_failures_ = 0;
  int forced_event_drops_ = 0;
  int forced_event_duplicates_ = 0;
  int burst_remaining_ = 0;
  int64_t wrapper_faults_ = 0;
  int64_t events_dropped_ = 0;
  int64_t events_duplicated_ = 0;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_FAULT_INJECTOR_H_
