#include "warehouse/source_wrapper_gsdb.h"

#include <algorithm>

namespace gsv {

Status RelationalSource::CreateTable(const std::string& table,
                                     std::vector<std::string> columns) {
  if (table.empty() || table.find('.') != std::string::npos ||
      table.find('#') != std::string::npos) {
    return Status::InvalidArgument("table name '" + table +
                                   "' must be non-empty without '.'/'#'");
  }
  for (const std::string& column : columns) {
    if (column.empty() || column.find('.') != std::string::npos) {
      return Status::InvalidArgument("bad column name '" + column + "'");
    }
    if (std::count(columns.begin(), columns.end(), column) != 1) {
      return Status::InvalidArgument("duplicate column '" + column + "'");
    }
  }
  TableDef def;
  def.columns = std::move(columns);
  auto [it, inserted] = tables_.emplace(table, std::move(def));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("table '" + table + "' exists");
  }
  return Status::Ok();
}

Result<int64_t> RelationalSource::InsertRow(const std::string& table,
                                            std::vector<Value> values) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + table + "'");
  }
  TableDef& def = it->second;
  if (values.size() != def.columns.size()) {
    return Status::InvalidArgument("row arity " +
                                   std::to_string(values.size()) +
                                   " != table arity");
  }
  for (const Value& value : values) {
    if (value.IsSet()) {
      return Status::InvalidArgument("relational values must be atomic");
    }
  }
  int64_t row_id = def.next_row_id++;
  def.rows.emplace(row_id, values);
  if (observer_ != nullptr) {
    translation_status_ = observer_->OnInsertRow(table, row_id, values);
  }
  return row_id;
}

Status RelationalSource::DeleteRow(const std::string& table, int64_t row_id) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + table + "'");
  }
  if (it->second.rows.erase(row_id) == 0) {
    return Status::NotFound("no row " + std::to_string(row_id) + " in '" +
                            table + "'");
  }
  if (observer_ != nullptr) {
    translation_status_ = observer_->OnDeleteRow(table, row_id);
  }
  return Status::Ok();
}

Status RelationalSource::UpdateRow(const std::string& table, int64_t row_id,
                                   const std::string& column, Value value) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + table + "'");
  }
  TableDef& def = it->second;
  auto row = def.rows.find(row_id);
  if (row == def.rows.end()) {
    return Status::NotFound("no row " + std::to_string(row_id) + " in '" +
                            table + "'");
  }
  auto col = std::find(def.columns.begin(), def.columns.end(), column);
  if (col == def.columns.end()) {
    return Status::NotFound("no column '" + column + "' in '" + table + "'");
  }
  if (value.IsSet()) {
    return Status::InvalidArgument("relational values must be atomic");
  }
  size_t index = static_cast<size_t>(col - def.columns.begin());
  row->second[index] = value;
  if (observer_ != nullptr) {
    translation_status_ = observer_->OnUpdateRow(table, row_id, column, value);
  }
  return Status::Ok();
}

const RelationalSource::TableDef* RelationalSource::table(
    const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> RelationalSource::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, def] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

GsdbSourceAdapter::GsdbSourceAdapter(ObjectStore* store,
                                     RelationalSource* source,
                                     std::string root_oid)
    : store_(store), source_(source), root_(std::move(root_oid)) {}

Oid GsdbSourceAdapter::TableOid(const std::string& table) const {
  return Oid(root_.str() + "#" + table);
}
Oid GsdbSourceAdapter::TupleOid(const std::string& table,
                                int64_t row_id) const {
  return Oid(table + "#" + std::to_string(row_id));
}
Oid GsdbSourceAdapter::FieldOid(const std::string& table, int64_t row_id,
                                const std::string& column) const {
  return Oid(table + "#" + std::to_string(row_id) + "#" + column);
}

Status GsdbSourceAdapter::Initialize() {
  if (initialized_) {
    return Status::FailedPrecondition("adapter already initialized");
  }
  GSV_RETURN_IF_ERROR(store_->PutSet(root_, "relations"));
  for (const std::string& table : source_->TableNames()) {
    GSV_RETURN_IF_ERROR(store_->PutSet(TableOid(table), table));
    GSV_RETURN_IF_ERROR(store_->AddChildRaw(root_, TableOid(table)));
    const RelationalSource::TableDef* def = source_->table(table);
    for (const auto& [row_id, values] : def->rows) {
      GSV_RETURN_IF_ERROR(OnInsertRow(table, row_id, values));
    }
  }
  initialized_ = true;
  source_->SetObserver(this);
  return Status::Ok();
}

Status GsdbSourceAdapter::OnInsertRow(const std::string& table,
                                      int64_t row_id,
                                      const std::vector<Value>& values) {
  const RelationalSource::TableDef* def = source_->table(table);
  if (def == nullptr) return Status::NotFound("no table '" + table + "'");
  // Lazily create the table object for tables added after Initialize.
  if (!store_->Contains(TableOid(table))) {
    GSV_RETURN_IF_ERROR(store_->PutSet(TableOid(table), table));
    GSV_RETURN_IF_ERROR(store_->AddChildRaw(root_, TableOid(table)));
  }
  // Build the tuple as a detached subtree, then attach with one basic
  // insert — exactly Example 7's "now the following new tuple T is
  // inserted into object R".
  std::vector<Oid> fields;
  for (size_t i = 0; i < def->columns.size(); ++i) {
    Oid field = FieldOid(table, row_id, def->columns[i]);
    GSV_RETURN_IF_ERROR(store_->PutAtomic(field, def->columns[i], values[i]));
    fields.push_back(field);
  }
  Oid tuple = TupleOid(table, row_id);
  GSV_RETURN_IF_ERROR(store_->PutSet(tuple, "tuple", std::move(fields)));
  return store_->Insert(TableOid(table), tuple);
}

Status GsdbSourceAdapter::OnDeleteRow(const std::string& table,
                                      int64_t row_id) {
  // One basic delete detaches the tuple; the orphaned subtree is garbage
  // (collectable via ObjectStore::CollectGarbage, §4.1's GC remark).
  return store_->Delete(TableOid(table), TupleOid(table, row_id));
}

Status GsdbSourceAdapter::OnUpdateRow(const std::string& table,
                                      int64_t row_id,
                                      const std::string& column,
                                      const Value& value) {
  return store_->Modify(FieldOid(table, row_id, column), value);
}

}  // namespace gsv
