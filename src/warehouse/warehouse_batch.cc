#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/algorithm1.h"
#include "core/buffered_view.h"
#include "util/retry.h"
#include "warehouse/warehouse.h"

namespace gsv {

namespace {

// One unit of parallel evaluation: the events of one view (or of one
// independent root subtree within a view), in batch order, each tagged with
// its screening verdict.
struct EvalTask {
  size_t view_index = 0;
  uint32_t group_key = 0;
  std::vector<std::pair<const UpdateEvent*, bool>> events;  // (event, relevant)
  std::unique_ptr<BufferedViewStorage> buffer;
  Algorithm1Maintainer::Stats stats;
  Status status;
};

struct SweepTask {
  size_t view_index = 0;
  std::vector<Oid> doomed;
  Status status;
};

}  // namespace

// Keys the independent-subtree partition: the child of the source root whose
// subtree contains the event's anchor object, by a bounded first-parent climb
// over the final source state. Unreachable/detached anchors (and climbs that
// exceed the bound) fall back to the anchor itself, which conservatively
// isolates them in their own group. Modifies anchor at the modified object so
// every modify of one object lands in one group and its delegate-value syncs
// replay in batch order.
static uint32_t SubtreeGroupKey(const ObjectStore& store, const Oid& root,
                                const UpdateEvent& event) {
  Oid anchor = event.parent;
  if (event.kind != UpdateKind::kModify && anchor == root && event.child.valid()) {
    anchor = event.child;
  }
  if (anchor == root) return anchor.id();
  Oid current = anchor;
  for (int depth = 0; depth < 256; ++depth) {
    std::vector<Oid> parents = store.Parents(current);
    if (parents.empty()) break;
    if (parents.front() == root) return current.id();
    current = parents.front();
  }
  return anchor.id();
}

Status Warehouse::ProcessPendingBatch(const BatchOptions& options) {
  // Recovery prologue: resynced views take part in this batch normally.
  TryResyncStaleViews();

  Status first_error;
  UpdateBatch batch;
  {
    std::vector<std::pair<size_t, UpdateEvent>> drained;
    drained.swap(pending_);
    batch.Add(std::move(drained));
  }
  if (batch.empty()) return Status::Ok();
  if (options.coalesce) {
    costs_.events_coalesced += batch.Coalesce();
  }
  costs_.events_received += static_cast<int64_t>(batch.size());

  std::vector<bool> touched(sources_.size(), false);
  for (const auto& [source_index, event] : batch.events()) {
    touched[source_index] = true;
  }

  // ---- Phase 1: absorb the batch into the auxiliary caches and plan the
  // evaluation tasks (screening once per distinct label, grouping by
  // independent root subtree). Sequential: caches are shared mutable state.
  const bool split = options.split_subtrees && options.threads > 1;
  std::vector<EvalTask> eval_tasks;
  for (size_t view_index = 0; view_index < views_.size(); ++view_index) {
    ViewEntry& entry = *views_[view_index];
    if (!touched[entry.source_index]) continue;
    SourceEntry& source = *sources_[entry.source_index];

    // §5.1 screening memoized per distinct label. Deletes keep their
    // detached subtrees readable in the cache until the post-replay Prune().
    std::unordered_map<std::string, bool> edge_labels;
    std::unordered_map<std::string, bool> modify_labels;
    // Storage-level membership so a sharded slice answers for the whole
    // view (the root's delegate may live at a peer shard). General-engine
    // views never split: a discrimination network is one stateful engine
    // per view (and DAG subtrees are not independent anyway), so the whole
    // view is one task — engines of different views still run in parallel.
    const bool view_splittable = split &&
                                 entry.engine == EngineKind::kAlgorithm1 &&
                                 !entry.storage()->ContainsBase(source.root);
    std::map<uint32_t, size_t> group_index;  // ordered => deterministic replay
    auto* task_base = &eval_tasks;  // indices stay valid; pointers may not

    for (const auto& [source_index, event] : batch.events()) {
      if (source_index != entry.source_index) continue;

      // Quarantined views sit the batch out: their events buffer for the
      // post-resync replay. A view can also quarantine mid-batch, when the
      // cache's query-backs hit a down source — the resync rebuilds the
      // corridor, so a partially absorbed batch cannot corrupt it.
      if (entry.stale) {
        BufferStaleEvent(entry, event);
        continue;
      }
      if (entry.cache != nullptr) {
        Status status = entry.cache->OnEvent(event, source.wrapper.get());
        if (!status.ok()) {
          if (IsSourceFailure(status)) {
            Quarantine(entry, status);
            BufferStaleEvent(entry, event);
            continue;
          }
          if (first_error.ok()) first_error = status;
        }
      }

      bool relevant = true;
      // §5.1 screening applies to Algorithm 1 corridors only; a general
      // engine must see every event (its screening memo IS the network).
      if (entry.engine == EngineKind::kAlgorithm1 &&
          event.level >= ReportingLevel::kWithValues) {
        if (event.kind == UpdateKind::kModify) {
          const std::string label = event.parent_object.has_value()
                                        ? event.parent_object->label()
                                        : std::string();
          auto [it, fresh] = modify_labels.try_emplace(label, false);
          if (fresh) it->second = EventRelevant(entry, event);
          relevant = it->second;
        } else if (event.child_object.has_value()) {
          auto [it, fresh] =
              edge_labels.try_emplace(event.child_object->label(), false);
          if (fresh) it->second = EventRelevant(entry, event);
          relevant = it->second;
        }
      }
      if (!relevant) ++costs_.events_screened_out;

      uint32_t key = view_splittable
                         ? SubtreeGroupKey(*source.store, source.root, event)
                         : 0;
      auto [it, fresh] = group_index.try_emplace(key, task_base->size());
      if (fresh) {
        EvalTask task;
        task.view_index = view_index;
        task.group_key = key;
        task.buffer = std::make_unique<BufferedViewStorage>(entry.storage());
        task_base->push_back(std::move(task));
      }
      (*task_base)[it->second].events.emplace_back(&event, relevant);
    }
  }

  // ---- Phase 2: evaluate in parallel. Workers read the frozen sources and
  // caches through private accessors and buffer all view operations; the
  // shared delegate store is never touched.
  ThreadPool* pool = Pool(options.threads);
  for (EvalTask& task : eval_tasks) {
    pool->Submit([this, &task] {
      ViewEntry& entry = *views_[task.view_index];
      SourceEntry& source = *sources_[entry.source_index];
      if (entry.engine != EngineKind::kAlgorithm1) {
        // One task per general view (never subtree-split), so this worker
        // is the only one touching the view's engine; it reads the frozen
        // final source state and buffers its deltas like any other task.
        GeneralMaintainer general(task.buffer.get(), source.store, entry.def,
                                  source.root);
        for (const auto& [event, relevant] : task.events) {
          Update update = event->ToUpdate();
          if (update.kind == UpdateKind::kModify) {
            const Object* object = source.store->Get(update.parent);
            if (object != nullptr && object->IsAtomic()) {
              update = Update::Modify(update.parent, update.old_value,
                                      object->value());
            }
          }
          Status status;
          if (entry.gdn != nullptr) {
            status = entry.gdn->Apply(update, task.buffer.get());
          } else if (entry.general != nullptr) {
            status = general.Maintain(update);
          } else {
            // Shard-bound external entry: delegate values only.
            status = task.buffer->SyncUpdate(update);
          }
          if (!status.ok() && task.status.ok()) task.status = status;
        }
        if (entry.general != nullptr) {
          // The per-task maintainer dies here; bank its cap hits now.
          costs_.general_caps_hit.fetch_add(general.stats().caps_hit,
                                            std::memory_order_relaxed);
        }
        return;
      }
      RemoteAccessor accessor(source.wrapper.get(), &costs_);
      if (entry.cache != nullptr) accessor.set_cache(entry.cache.get());
      Algorithm1Maintainer maintainer(task.buffer.get(), &accessor, entry.def,
                                      source.root);
      for (const auto& [event, relevant] : task.events) {
        Status status;
        accessor.ClearError();
        if (!relevant) {
          status = task.buffer->SyncUpdate(event->ToUpdate());
        } else {
          accessor.set_current_event(event);
          if (event->kind == UpdateKind::kModify &&
              event->level == ReportingLevel::kOidsOnly) {
            status = Level1ModifyRecheck(entry, *event, task.buffer.get(),
                                         &accessor);
          } else {
            status = maintainer.Maintain(event->ToUpdate());
          }
          accessor.set_current_event(nullptr);
        }
        // A failed query-back surfaces through the accessor even when the
        // maintenance call itself reports success.
        if (status.ok()) status = accessor.last_error();
        if (!status.ok() && task.status.ok()) task.status = status;
      }
      task.stats = maintainer.stats();
    });
  }
  pool->Wait();

  // ---- Phase 3: replay single-threaded in fixed (view, subtree-key) order
  // so the resulting views, delegate store and stats are deterministic.
  //
  // All-or-nothing per view: when ANY of a view's tasks hit a down source,
  // none of its buffers replay — a half-applied batch would leave the view
  // in a state no source history ever produced. The whole batch slice
  // buffers for post-resync replay instead, and the view quarantines.
  for (EvalTask& task : eval_tasks) {
    if (task.status.ok()) continue;
    ViewEntry& entry = *views_[task.view_index];
    // A poisoned network quarantines like a down source: its buffered
    // deltas are partial and must not replay; the resync recompute +
    // Rebuild() restores the view and the network together.
    const bool gdn_poisoned = entry.gdn != nullptr && entry.gdn->poisoned();
    if (!IsSourceFailure(task.status) && !gdn_poisoned) continue;
    Quarantine(entry, task.status);
  }
  for (EvalTask& task : eval_tasks) {
    ViewEntry& entry = *views_[task.view_index];
    if (entry.stale) {
      for (const auto& [event, relevant] : task.events) {
        BufferStaleEvent(entry, *event);
      }
      continue;
    }
    if (!task.status.ok() && first_error.ok()) first_error = task.status;
    // Replay through the scoped storage when sharded: owned ops land in the
    // view, foreign ops queue in the outbox — still single-threaded here.
    Status status = task.buffer->ReplayInto(entry.storage());
    if (!status.ok() && first_error.ok()) first_error = status;
    if (entry.maintainer != nullptr) entry.maintainer->MergeStats(task.stats);
  }
  for (auto& entry : views_) {
    if (touched[entry->source_index] && !entry->stale &&
        entry->cache != nullptr) {
      entry->cache->Prune();
      entry->cache->FlushIndexCounters(&costs_);
    }
  }

  // ---- Phase 4: the deferred-drain verification sweep (see
  // ProcessPending), read-only in parallel, deletions after the barrier.
  // A sharded coordinator runs the batch with run_sweep off and sweeps
  // (RunVerificationSweep) only after every shard's foreign ops landed.
  if (options.run_sweep) {
    std::vector<SweepTask> sweep_tasks;
    for (size_t view_index = 0; view_index < views_.size(); ++view_index) {
      if (!touched[views_[view_index]->source_index]) continue;
      if (views_[view_index]->stale) continue;  // swept after resync instead
      // General engines keep membership exact against final state; only
      // Algorithm 1 views need the disclaimed-responsibility sweep.
      if (views_[view_index]->engine != EngineKind::kAlgorithm1) continue;
      SweepTask task;
      task.view_index = view_index;
      sweep_tasks.push_back(std::move(task));
    }
    for (SweepTask& task : sweep_tasks) {
      pool->Submit([this, &task] {
        ViewEntry& entry = *views_[task.view_index];
        SourceEntry& source = *sources_[entry.source_index];
        RemoteAccessor accessor(source.wrapper.get(), &costs_);
        if (entry.cache != nullptr) accessor.set_cache(entry.cache.get());
        task.status = CollectUnderivable(entry, &accessor, &task.doomed);
      });
    }
    pool->Wait();
    for (SweepTask& task : sweep_tasks) {
      ViewEntry& entry = *views_[task.view_index];
      if (!task.status.ok()) {
        if (IsSourceFailure(task.status)) {
          // The sweep could not verify membership against the source; the
          // collected deletions are unreliable. Quarantine instead of acting.
          Quarantine(entry, task.status);
          continue;
        }
        if (first_error.ok()) first_error = task.status;
      }
      for (const Oid& member : task.doomed) {
        Status status = entry.view->VDelete(member);
        if (!status.ok() && first_error.ok()) first_error = status;
      }
    }
  }

  if (!first_error.ok()) last_status_ = first_error;
  // The batch drained to quiescence: one commit record closes the group
  // (every event and view delta logged above is certified applied). The
  // sharded coordinator commits instead, after cross-shard ops delivered.
  if (options.log_commit) LogCommit();
  StorageQuiescent();
  return first_error;
}

}  // namespace gsv
