#include "warehouse/update_event.h"

#include <sstream>

namespace gsv {

const char* ReportingLevelName(ReportingLevel level) {
  switch (level) {
    case ReportingLevel::kOidsOnly:
      return "oids-only";
    case ReportingLevel::kWithValues:
      return "with-values";
    case ReportingLevel::kWithRootPath:
      return "with-root-path";
  }
  return "unknown";
}

Update UpdateEvent::ToUpdate() const {
  switch (kind) {
    case UpdateKind::kInsert:
      return Update::Insert(parent, child);
    case UpdateKind::kDelete:
      return Update::Delete(parent, child);
    case UpdateKind::kModify:
      return Update::Modify(parent, old_value.value_or(Value()),
                            new_value.value_or(Value()));
  }
  return Update();
}

std::string UpdateEvent::ToString() const {
  std::ostringstream out;
  out << UpdateKindName(kind) << "(" << parent.str();
  if (kind != UpdateKind::kModify) out << ", " << child.str();
  out << ") [" << ReportingLevelName(level) << "]";
  if (root_path.has_value()) {
    out << " path=" << root_path->labels.ToString();
  }
  return out.str();
}

}  // namespace gsv
