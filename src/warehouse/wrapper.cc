#include "warehouse/wrapper.h"

#include "path/navigate.h"

namespace gsv {

void SourceWrapper::MeterShipment(size_t objects, size_t values) {
  ++costs_->source_queries;
  costs_->objects_shipped += static_cast<int64_t>(objects);
  costs_->values_shipped += static_cast<int64_t>(values);
}

void SourceWrapper::set_fault_injector(FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  injector_ = injector;
  breaker_.Reset();
}

void SourceWrapper::set_breaker_options(
    const CircuitBreaker::Options& options) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  breaker_ = CircuitBreaker(options);
}

CircuitBreaker::State SourceWrapper::breaker_state() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return breaker_.state();
}

Status SourceWrapper::Admit(const char* op, bool force) {
  // Fast path: a reliable channel. No lock, no breaker consultation — the
  // fault layer costs one branch when it is not in use.
  if (injector_ == nullptr) return Status::Ok();

  std::lock_guard<std::mutex> lock(fault_mutex_);
  if (injector_ == nullptr) return Status::Ok();

  if (!force && !breaker_.AllowRequest()) {
    ++costs_->breaker_rejections;
    return Status::Unavailable(std::string("circuit open for ") + op);
  }

  RetryOutcome outcome;
  Status status = RetryWithBackoff(
      retry_policy_, [&] { return injector_->OnWrapperCall(op); }, &outcome);
  costs_->wrapper_retries += outcome.attempts > 0 ? outcome.attempts - 1 : 0;

  if (status.ok()) {
    breaker_.RecordSuccess();
    return status;
  }
  ++costs_->wrapper_failures;
  if (breaker_.RecordFailure()) ++costs_->breaker_trips;
  return status;
}

Status SourceWrapper::Probe(bool force) { return Admit("Probe", force); }

Result<Object> SourceWrapper::FetchObject(const Oid& oid) {
  GSV_RETURN_IF_ERROR(Admit("FetchObject"));
  const Object* object = source_->Get(oid);
  if (object == nullptr) {
    MeterShipment(0, 0);
    return Status::NotFound("source has no object " + oid.str());
  }
  MeterShipment(1, object->IsAtomic() ? 1 : 0);
  return *object;
}

Result<std::vector<Oid>> SourceWrapper::FetchAncestors(const Oid& y,
                                                       const Path& p) {
  GSV_RETURN_IF_ERROR(Admit("FetchAncestors"));
  std::vector<Oid> ancestors = AncestorsByPath(*source_, y, p);
  MeterShipment(ancestors.size(), 0);
  return ancestors;
}

Result<std::vector<Object>> SourceWrapper::FetchPathObjects(const Oid& n,
                                                            const Path& p) {
  GSV_RETURN_IF_ERROR(Admit("FetchPathObjects"));
  std::vector<Object> objects;
  size_t values = 0;
  for (const Oid& oid : EvalPath(*source_, n, p)) {
    const Object* object = source_->Get(oid);
    if (object == nullptr) continue;
    if (object->IsAtomic()) ++values;
    objects.push_back(*object);
  }
  MeterShipment(objects.size(), values);
  return objects;
}

Result<std::vector<Path>> SourceWrapper::FetchPathsFromRoot(const Oid& root,
                                                            const Oid& n) {
  GSV_RETURN_IF_ERROR(Admit("FetchPathsFromRoot"));
  std::vector<Path> paths = PathsFromTo(*source_, root, n);
  MeterShipment(paths.size(), 0);
  return paths;
}

Result<bool> SourceWrapper::VerifyPath(const Oid& root, const Oid& y,
                                       const Path& p) {
  GSV_RETURN_IF_ERROR(Admit("VerifyPath"));
  MeterShipment(1, 0);
  return HasPathFromTo(*source_, root, y, p);
}

}  // namespace gsv
