#include "warehouse/wrapper.h"

#include "path/navigate.h"

namespace gsv {

void SourceWrapper::MeterShipment(size_t objects, size_t values) {
  ++costs_->source_queries;
  costs_->objects_shipped += static_cast<int64_t>(objects);
  costs_->values_shipped += static_cast<int64_t>(values);
}

Result<Object> SourceWrapper::FetchObject(const Oid& oid) {
  const Object* object = source_->Get(oid);
  if (object == nullptr) {
    MeterShipment(0, 0);
    return Status::NotFound("source has no object " + oid.str());
  }
  MeterShipment(1, object->IsAtomic() ? 1 : 0);
  return *object;
}

std::vector<Oid> SourceWrapper::FetchAncestors(const Oid& y, const Path& p) {
  std::vector<Oid> ancestors = AncestorsByPath(*source_, y, p);
  MeterShipment(ancestors.size(), 0);
  return ancestors;
}

std::vector<Object> SourceWrapper::FetchPathObjects(const Oid& n,
                                                    const Path& p) {
  std::vector<Object> objects;
  size_t values = 0;
  for (const Oid& oid : EvalPath(*source_, n, p)) {
    const Object* object = source_->Get(oid);
    if (object == nullptr) continue;
    if (object->IsAtomic()) ++values;
    objects.push_back(*object);
  }
  MeterShipment(objects.size(), values);
  return objects;
}

std::vector<Path> SourceWrapper::FetchPathsFromRoot(const Oid& root,
                                                    const Oid& n) {
  std::vector<Path> paths = PathsFromTo(*source_, root, n);
  MeterShipment(paths.size(), 0);
  return paths;
}

bool SourceWrapper::VerifyPath(const Oid& root, const Oid& y, const Path& p) {
  MeterShipment(1, 0);
  return HasPathFromTo(*source_, root, y, p);
}

}  // namespace gsv
