#include "warehouse/fault_injector.h"

#include <string>

namespace gsv {

bool FaultInjector::DropEvent() {
  if (forced_event_drops_ > 0) {
    --forced_event_drops_;
    ++events_dropped_;
    return true;
  }
  if (profile_.event_drop_rate > 0.0 &&
      rng_.Bernoulli(profile_.event_drop_rate)) {
    ++events_dropped_;
    return true;
  }
  return false;
}

bool FaultInjector::DuplicateEvent() {
  if (forced_event_duplicates_ > 0) {
    --forced_event_duplicates_;
    ++events_duplicated_;
    return true;
  }
  if (profile_.event_duplicate_rate > 0.0 &&
      rng_.Bernoulli(profile_.event_duplicate_rate)) {
    ++events_duplicated_;
    return true;
  }
  return false;
}

Status FaultInjector::OnWrapperCall(const char* op) {
  bool fault = false;
  if (down_) {
    fault = true;
  } else if (forced_call_failures_ > 0) {
    --forced_call_failures_;
    fault = true;
  } else if (burst_remaining_ > 0) {
    --burst_remaining_;
    fault = true;
  } else if (profile_.wrapper_fail_rate > 0.0 &&
             rng_.Bernoulli(profile_.wrapper_fail_rate)) {
    burst_remaining_ = profile_.wrapper_fail_burst - 1;
    fault = true;
  }
  if (!fault) return Status::Ok();
  ++wrapper_faults_;
  return Status::Unavailable(std::string("injected fault on ") + op);
}

void FaultInjector::Heal() {
  down_ = false;
  forced_call_failures_ = 0;
  forced_event_drops_ = 0;
  forced_event_duplicates_ = 0;
  burst_remaining_ = 0;
  profile_.wrapper_fail_rate = 0.0;
  profile_.event_drop_rate = 0.0;
  profile_.event_duplicate_rate = 0.0;
}

}  // namespace gsv
