#include <filesystem>
#include <sstream>

#include "oem/serialize.h"
#include "storage/recovery.h"
#include "warehouse/warehouse.h"

namespace gsv {

// The durability side-car of one warehouse: the open WAL, the delta sink
// wired into every materialized view, and the recovery/checkpoint
// bookkeeping. Lives behind a unique_ptr in Warehouse so warehouse.h stays
// free of the implementation details.
struct WarehouseDurability : public ViewDeltaSink {
  Warehouse::DurabilityOptions options;
  std::unique_ptr<Wal> wal;
  Warehouse::RecoveryReport report;
  Warehouse::DurabilityStats stats;

  // True while recovery redoes committed deltas (they are already in the
  // log) and before EnableDurability finishes wiring; the sink and the
  // Log* hooks are silent then.
  bool logging_paused = false;
  // First WAL failure; sticky. Once the log is broken nothing more is
  // appended (a half-logged group is exactly what commit records fence).
  Status log_status;
  // Non-commit records since the last commit; empty groups log no commit.
  size_t records_in_group = 0;
  uint64_t events_since_checkpoint = 0;
  uint64_t next_checkpoint_id = 1;

  void Append(WalRecord record) {
    if (!log_status.ok()) return;
    bool is_commit = record.type == WalRecordType::kCommit;
    Status status = wal->Append(std::move(record));
    if (!status.ok()) {
      log_status = status;
      return;
    }
    if (!is_commit) ++records_in_group;
  }

  // ---- ViewDeltaSink ----
  // Fires synchronously for every delta actually applied to a view; the
  // warehouse's external synchronization makes these single-threaded (batch
  // workers write to BufferedViewStorage, which has no sink).
  void OnVInsert(const MaterializedView& view,
                 const Object& base_object) override {
    if (logging_paused) return;
    Append(WalRecord::VInsert(view.def().name(), base_object));
    ++stats.deltas_logged;
  }
  void OnVDelete(const MaterializedView& view, const Oid& base_oid) override {
    if (logging_paused) return;
    Append(WalRecord::VDelete(view.def().name(), base_oid));
    ++stats.deltas_logged;
  }
  void OnSync(const MaterializedView& view, const Update& update) override {
    if (logging_paused) return;
    Append(WalRecord::Sync(view.def().name(), update));
    ++stats.deltas_logged;
  }
  void OnRefresh(const MaterializedView& view,
                 const Object& base_object) override {
    if (logging_paused) return;
    Append(WalRecord::Refresh(view.def().name(), base_object));
    ++stats.deltas_logged;
  }
};

// Defined here (not in warehouse.cc) so unique_ptr<WarehouseDurability> has
// a complete type at construction and destruction.
Warehouse::Warehouse(ObjectStore* store, Options options)
    : store_(store), options_(std::move(options)) {}

Warehouse::~Warehouse() {
  for (auto& source : sources_) {
    if (source->store != nullptr && source->monitor != nullptr) {
      source->store->RemoveListener(source->monitor.get());
    }
  }
}

// ---- Logging hooks ----

void Warehouse::LogEvent(const SourceEntry& source, const UpdateEvent& event) {
  if (durability_ == nullptr || durability_->logging_paused) return;
  durability_->Append(WalRecord::Event(source.name, event));
  ++durability_->stats.events_logged;
  ++durability_->events_since_checkpoint;
}

void Warehouse::LogViewDef(const std::string& definition, CacheMode cache_mode,
                           const std::string& source_name) {
  if (durability_ == nullptr || durability_->logging_paused) return;
  durability_->Append(WalRecord::ViewDef(
      definition, static_cast<int>(cache_mode), source_name));
}

void Warehouse::LogCommit() {
  if (durability_ == nullptr || durability_->logging_paused) return;
  WarehouseDurability& d = *durability_;
  if (!d.log_status.ok()) {
    last_status_ = d.log_status;  // surface the broken log, once per group
    return;
  }
  // A commit certifies quiescence: every logged record before it is fully
  // applied and nothing is pending. Empty groups log nothing.
  if (!pending_.empty() || d.records_in_group == 0) return;
  std::vector<WalWatermark> marks;
  marks.reserve(sources_.size());
  for (const auto& source : sources_) {
    marks.push_back({source->name, source->next_sequence - 1});
  }
  d.Append(WalRecord::Commit(std::move(marks)));
  if (!d.log_status.ok()) {
    last_status_ = d.log_status;
    return;
  }
  ++d.stats.commits_logged;
  d.records_in_group = 0;

  if (d.options.checkpoint_interval_events > 0 &&
      d.events_since_checkpoint >= d.options.checkpoint_interval_events) {
    Status status = WriteCheckpoint();
    if (!status.ok()) last_status_ = status;
  }
}

void Warehouse::AttachSink(MaterializedView* view) {
  if (durability_ == nullptr) return;
  view->set_delta_sink(durability_.get());
}

// ---- Public API ----

Wal* Warehouse::wal() {
  return durability_ != nullptr ? durability_->wal.get() : nullptr;
}

const Warehouse::RecoveryReport& Warehouse::recovery_report() const {
  static const RecoveryReport kEmpty{};
  return durability_ != nullptr ? durability_->report : kEmpty;
}

const Warehouse::DurabilityStats& Warehouse::durability_stats() const {
  static const DurabilityStats kEmpty{};
  return durability_ != nullptr ? durability_->stats : kEmpty;
}

Status Warehouse::EnableDurability(const DurabilityOptions& options) {
  if (durability_ != nullptr) {
    return Status::FailedPrecondition("durability already enabled");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("DurabilityOptions.dir is required");
  }
  if (!pending_.empty()) {
    return Status::FailedPrecondition(
        "drain pending events before EnableDurability");
  }

  GSV_ASSIGN_OR_RETURN(RecoveryPlan plan, PlanRecovery(options.dir));
  bool has_state =
      plan.have_checkpoint || !plan.committed.empty() || !plan.tail.empty();
  if (has_state) {
    if (!views_.empty()) {
      return Status::FailedPrecondition(
          "recovering durable state requires a warehouse without views: "
          "connect the sources (same names), then EnableDurability");
    }
    if (plan.have_checkpoint && store_->size() != 0) {
      return Status::FailedPrecondition(
          "recovering a checkpoint requires an empty delegate store");
    }
  }
  GSV_RETURN_IF_ERROR(ApplyLogTruncation(options.dir, plan));

  auto d = std::make_unique<WarehouseDurability>();
  d->options = options;
  d->logging_paused = true;
  Wal::Options wal_options;
  wal_options.fsync = options.fsync;
  wal_options.writer_epoch = options.epoch;
  wal_options.owner = options.owner;
  GSV_ASSIGN_OR_RETURN(d->wal, Wal::Open(options.dir, wal_options,
                                         plan.next_lsn));
  GSV_ASSIGN_OR_RETURN(std::vector<CheckpointInfo> checkpoints,
                       ListCheckpoints(options.dir));
  if (!checkpoints.empty()) d->next_checkpoint_id = checkpoints.back().id + 1;
  durability_ = std::move(d);

  Status status = RestoreFromPlan(plan);
  if (!status.ok()) {
    // A failed recovery leaves partially restored views behind; the caller
    // must discard this warehouse (the durable state on disk is untouched
    // beyond the log truncation, so a fresh warehouse can retry).
    for (auto& entry : views_) entry->view->set_delta_sink(nullptr);
    durability_.reset();
    return status;
  }

  // A fresh directory gets a baseline checkpoint when the warehouse already
  // holds state the log alone could not rebuild (views defined before
  // durability was enabled).
  if (!has_state && !views_.empty()) {
    GSV_RETURN_IF_ERROR(WriteCheckpoint());
  }
  StorageQuiescent();
  return Status::Ok();
}

Status Warehouse::RestoreView(const CheckpointViewState& state, bool adopt) {
  GSV_ASSIGN_OR_RETURN(size_t source_index, ResolveSourceIndex(state.source));
  GSV_ASSIGN_OR_RETURN(
      std::unique_ptr<ViewEntry> entry,
      BuildViewEntry(source_index, state.definition,
                     static_cast<CacheMode>(state.cache_mode)));
  if (adopt) {
    // The checkpoint image already holds the view object and its
    // delegates; rebind instead of materializing.
    GSV_RETURN_IF_ERROR(entry->view->AdoptExisting());
  } else {
    // Re-bootstrapped from a kViewDef record: the membership arrives via
    // the committed delta records that follow it.
    GSV_RETURN_IF_ERROR(entry->view->Bootstrap());
  }
  if (state.stale) {
    Quarantine(*entry, Status::Unavailable("view '" + entry->def.name() +
                                           "' was quarantined when the "
                                           "checkpoint was taken"));
  }
  views_.push_back(std::move(entry));
  return Status::Ok();
}

Status Warehouse::RedoDelta(const WalRecord& record) {
  for (auto& entry : views_) {
    if (entry->def.name() != record.view) continue;
    switch (record.op) {
      case ViewDeltaOp::kVInsert:
        if (!record.object.has_value()) {
          return Status::DataLoss("v_insert record without an object");
        }
        return entry->view->VInsert(*record.object);
      case ViewDeltaOp::kVDelete:
        return entry->view->VDelete(record.base_oid);
      case ViewDeltaOp::kSync:
        return entry->view->SyncUpdate(record.update);
      case ViewDeltaOp::kRefresh:
        if (!record.object.has_value()) {
          return Status::DataLoss("refresh record without an object");
        }
        return entry->view->RefreshDelegate(*record.object);
    }
    return Status::DataLoss("unknown view delta op");
  }
  return Status::DataLoss("view delta for unknown view '" + record.view + "'");
}

Status Warehouse::RestoreFromPlan(const RecoveryPlan& plan) {
  WarehouseDurability& d = *durability_;
  d.report = RecoveryReport{};
  d.report.log_torn = plan.log_torn;
  d.report.torn_bytes = plan.torn_bytes;
  d.report.tail_deltas_dropped = plan.tail_deltas_dropped;

  // 1. The checkpoint image: delegate store first, then every view rebinds
  //    to its objects (AdoptExisting re-derives membership from delegates).
  if (plan.have_checkpoint) {
    d.report.recovered_checkpoint = true;
    d.report.checkpoint_id = plan.checkpoint.manifest.id;
    GSV_RETURN_IF_ERROR(ImportStoreImage(plan.checkpoint.store_text, store_));
    for (const CheckpointViewState& state : plan.checkpoint.manifest.views) {
      GSV_RETURN_IF_ERROR(RestoreView(state, /*adopt=*/true));
      ++d.report.views_restored;
    }
  }

  // 2. Committed zone: redo is purely local — the delta records replay into
  //    the views without Algorithm 1 and without a single source query.
  //    That asymmetry (redo log vs recompute) is what exp16 measures.
  for (const WalRecord& record : plan.committed) {
    switch (record.type) {
      case WalRecordType::kViewDelta:
        GSV_RETURN_IF_ERROR(RedoDelta(record));
        ++d.report.deltas_redone;
        break;
      case WalRecordType::kViewDef: {
        CheckpointViewState state;
        state.definition = record.definition;
        state.cache_mode = record.cache_mode;
        state.source = record.source;
        GSV_RETURN_IF_ERROR(RestoreView(state, /*adopt=*/false));
        ++d.report.views_redefined;
        break;
      }
      case WalRecordType::kEvent:   // base objects live at the source
      case WalRecordType::kCommit:  // watermarks come from the plan
      case WalRecordType::kEpoch:   // writer-session header, no state
        break;
    }
  }

  // 3. Watermarks: the integrator expects last_sequence + 1 next.
  for (const WalWatermark& mark : plan.watermarks) {
    bool found = false;
    for (auto& source : sources_) {
      if (source->name != mark.source) continue;
      source->next_sequence = mark.last_sequence + 1;
      found = true;
      break;
    }
    if (!found) {
      return Status::FailedPrecondition(
          "recovered watermark references unknown source '" + mark.source +
          "'; connect the same sources before EnableDurability");
    }
  }

  // 4. Corridor caches. When nothing happened after the checkpoint the
  //    saved cache bytes are exact — reload them without touching the
  //    source. Otherwise the corridor rebuilds from the live source (its
  //    current state subsumes every logged event, same as a resync).
  bool clean = plan.committed.empty() && plan.tail.empty() && !plan.log_torn;
  for (auto& entry : views_) {
    if (entry->cache == nullptr) continue;
    bool loaded = false;
    if (clean && plan.have_checkpoint) {
      auto it = plan.checkpoint.cache_texts.find(entry->def.name());
      if (it != plan.checkpoint.cache_texts.end()) {
        std::istringstream in(it->second);
        GSV_RETURN_IF_ERROR(entry->cache->LoadFrom(in));
        loaded = true;
        d.report.caches_reloaded = true;
      }
    }
    if (!loaded && !entry->stale) {
      const SourceEntry& source = *sources_[entry->source_index];
      Status status = entry->cache->Initialize(source.wrapper.get());
      if (!status.ok()) {
        if (!IsSourceFailure(status)) return status;
        Quarantine(*entry, status);  // resync rebuilds the corridor later
      }
    }
  }

  // 5. A torn log may have eaten an *accepted* event (the tear lies past
  //    every valid record, so only the group in flight is affected — but an
  //    event record in it is gone for good: the source applied the update,
  //    and no monitor will re-emit it). Incremental maintenance can no
  //    longer be trusted, so fall back to PR 2 quarantine + resync: the
  //    first drain recomputes each view from current source state.
  if (plan.log_torn) {
    Status cause = Status::DataLoss(
        "recovered from a torn log: an accepted event may be lost");
    for (size_t i = 0; i < sources_.size(); ++i) {
      QuarantineSourceViews(i, cause);
    }
  }

  // 6. Uncommitted tail: re-deliver the surviving events through live
  //    maintenance with logging ON — they re-log with fresh LSNs (the
  //    truncation dropped their old frames) and the closing drain appends
  //    the commit their interrupted group never got. Convergent like any
  //    at-least-once redelivery.
  d.logging_paused = false;
  for (auto& entry : views_) entry->view->set_delta_sink(durability_.get());
  bool saved_deferred = deferred_;
  deferred_ = true;
  Status first_error;
  // 6a. Discrimination networks. Reload the saved memo image only when the
  //     checkpoint is exactly the current durable state (the image is valid
  //     only against the base state it was captured at); any logged history
  //     or a malformed image means Rebuild() from the live base instead.
  //     Either way Reconcile afterwards — with the sinks attached, so every
  //     divergence fix is itself logged — which makes the tail replay below
  //     a convergent no-op for these views.
  for (auto& entry : views_) {
    if (entry->gdn == nullptr) continue;
    bool loaded = false;
    if (clean && plan.have_checkpoint) {
      auto it = plan.checkpoint.gdn_texts.find(entry->def.name());
      if (it != plan.checkpoint.gdn_texts.end()) {
        std::istringstream in(it->second);
        loaded = entry->gdn->LoadFrom(in).ok();
      }
    }
    if (!loaded) {
      Status status = entry->gdn->Rebuild();
      if (!status.ok() && first_error.ok()) first_error = status;
    }
    Status status = entry->gdn->Reconcile(entry->storage());
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  for (const WalRecord& record : plan.tail) {
    if (record.type == WalRecordType::kViewDef) {
      // The definition's group never committed; run the full DefineView
      // (bootstrap + initial materialization from current source state).
      Status status =
          DefineView(record.definition,
                     static_cast<CacheMode>(record.cache_mode), record.source);
      if (!status.ok() && first_error.ok()) first_error = status;
      continue;
    }
    if (record.type != WalRecordType::kEvent) continue;
    auto source_index = ResolveSourceIndex(record.source);
    if (!source_index.ok()) {
      if (first_error.ok()) first_error = source_index.status();
      continue;
    }
    Deliver(source_index.value(), record.event);
    ++d.report.events_replayed;
  }
  if (!pending_.empty()) {
    Status status = ProcessPendingBatch();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  deferred_ = saved_deferred;

  // 7. Monitor continuity: events emitted from now on must continue the
  //    numbering the integrator expects (replay may have advanced it past
  //    the committed watermark).
  for (auto& source : sources_) {
    if (source->monitor != nullptr) {
      source->monitor->set_last_sequence(source->next_sequence - 1);
    }
  }
  return first_error;
}

Status Warehouse::WriteCheckpoint() {
  if (durability_ == nullptr) {
    return Status::FailedPrecondition("durability not enabled");
  }
  WarehouseDurability& d = *durability_;
  if (!d.log_status.ok()) return d.log_status;
  if (!pending_.empty()) {
    return Status::FailedPrecondition(
        "drain pending events before WriteCheckpoint");
  }

  // Capture: in-memory strings only, at this quiescent point. Reads go
  // through the store's const surface, so concurrent readers holding
  // published index snapshots are never blocked.
  CheckpointCapture capture;
  capture.manifest.id = d.next_checkpoint_id;
  capture.manifest.wal_lsn = d.wal->next_lsn() - 1;
  capture.manifest.watermarks.reserve(sources_.size());
  for (const auto& source : sources_) {
    capture.manifest.watermarks.push_back(
        {source->name, source->next_sequence - 1});
  }
  for (const auto& entry : views_) {
    CheckpointViewState state;
    state.name = entry->def.name();
    state.source = sources_[entry->source_index]->name;
    state.cache_mode = static_cast<int>(entry->cache_mode);
    state.stale = entry->stale;
    state.definition = entry->definition_text;
    capture.manifest.views.push_back(std::move(state));
    if (entry->cache != nullptr) {
      std::ostringstream out;
      GSV_RETURN_IF_ERROR(entry->cache->SaveTo(out));
      capture.cache_texts.emplace_back(entry->def.name(), out.str());
    }
    if (entry->gdn != nullptr && !entry->gdn->poisoned()) {
      // The memo image recovers like a §5.2 aux cache: reloaded verbatim
      // when the checkpoint is the exact durable state, rebuilt otherwise.
      std::ostringstream out;
      entry->gdn->SaveTo(out);
      capture.gdn_texts.emplace_back(entry->def.name(), out.str());
    }
  }
  GSV_ASSIGN_OR_RETURN(capture.store_text, ExportStoreImage(store_));

  // Persist (all the file IO), then start a fresh segment so whole old
  // segments can retire.
  GSV_RETURN_IF_ERROR(PersistCheckpoint(d.options.dir, capture));
  ++d.next_checkpoint_id;
  ++d.stats.checkpoints_written;
  d.events_since_checkpoint = 0;
  GSV_RETURN_IF_ERROR(d.wal->Roll());

  // Retire segments no future recovery can need: LoadLatestCheckpoint falls
  // back at most to the *previous* retained checkpoint, so only records
  // above its wal_lsn must survive.
  auto checkpoints = ListCheckpoints(d.options.dir);
  if (checkpoints.ok() && checkpoints.value().size() >= 2) {
    const CheckpointInfo& previous =
        checkpoints.value()[checkpoints.value().size() - 2];
    auto manifest = ReadCheckpointManifest(previous.path);
    auto segments = ListWalSegments(d.options.dir);
    if (manifest.ok() && segments.ok()) {
      uint64_t keep_lsn = manifest.value().wal_lsn + 1;
      const std::vector<WalSegmentInfo>& segs = segments.value();
      for (size_t i = 0; i + 1 < segs.size(); ++i) {
        // Segment i spans [first_i, first_{i+1} - 1].
        if (segs[i + 1].first_lsn <= keep_lsn) {
          std::error_code ec;
          std::filesystem::remove(segs[i].path, ec);
        }
      }
    }
  }
  StorageQuiescent();
  return Status::Ok();
}

}  // namespace gsv
