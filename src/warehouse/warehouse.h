#ifndef GSV_WAREHOUSE_WAREHOUSE_H_
#define GSV_WAREHOUSE_WAREHOUSE_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/algorithm1.h"
#include "core/general_maintainer.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "ivm/gdn_network.h"
#include "oem/store.h"
#include "query/explain.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "util/thread_pool.h"
#include "warehouse/aux_cache.h"
#include "warehouse/cost_model.h"
#include "warehouse/fault_injector.h"
#include "warehouse/monitor.h"
#include "warehouse/path_knowledge.h"
#include "warehouse/remote_accessor.h"
#include "warehouse/sharding.h"
#include "warehouse/update_batch.h"
#include "warehouse/update_event.h"
#include "warehouse/wrapper.h"

namespace gsv {

struct RecoveryPlan;
struct WarehouseDurability;

// The data warehouse of §5 / Figure 6: materialized views live here; base
// objects live at one or more autonomous sources that export update events
// and answer queries through their wrappers. Only the warehouse knows the
// view definitions.
//
// Event handling per view (views are bound to the source their entry
// belongs to):
//   1. the auxiliary cache (if configured, §5.2) absorbs the update;
//   2. local screening (§5.1): with level >= 2 events the affected label is
//      checked against the view's sel/cond labels — pruned further by path
//      knowledge — and irrelevant events stop here (delegate values still
//      sync);
//   3. Algorithm 1 runs over a RemoteAccessor that prefers event info and
//      cache content and falls back to metered source queries. Level-1
//      modify events carry no values, so membership is re-derived by
//      querying (the paper's "cannot do much other than sending queries").
class Warehouse {
 public:
  enum class CacheMode {
    kNone,
    kLabelsOnly,  // §5.2 partial caching
    kFull,        // §5.2 full corridor caching
  };

  // Which maintenance engine a view runs on. DefineView picks it from the
  // definition: simple views (§4.2) run Algorithm 1; the §6 relaxations
  // (path expressions, AND/OR, WITHIN, DAG bases) run the discrimination
  // network (GDN), or the query-back GeneralMaintainer when the
  // GSV_GENERAL_ENGINE=general environment override asks for it.
  enum class EngineKind {
    kAlgorithm1,
    kGeneral,
    kGdn,
  };

  struct Options {
    // Builds the storage engine backing each §5.2 corridor cache this
    // warehouse creates in DefineView (one engine per cached view; null =
    // memory default). The delegate store's own engine is chosen by
    // whoever constructed `store` — the warehouse borrows, never owns, it.
    StorageEngineFactory aux_engine_factory;
  };

  // `store` holds this warehouse's delegates; must outlive the warehouse.
  explicit Warehouse(ObjectStore* store) : Warehouse(store, Options()) {}
  Warehouse(ObjectStore* store, Options options);
  ~Warehouse();

  // Attaches a source (Figure 6 allows several): installs a monitor at
  // `level` whose events flow into this warehouse, and a wrapper for
  // query-backs. `source_root` is the database root view entries refer to.
  // `name` identifies the source for DefineView; when empty, a name
  // "source<N>" is generated. Roots must be distinct across sources.
  Status ConnectSource(ObjectStore* source, Oid source_root,
                       ReportingLevel level, std::string name = "");

  // ---- Shard participation (partitioned OID space) ----
  //
  // A ShardedWarehouse coordinator runs K of these warehouses, each bound
  // to one slice of the interned OID space: shard `oid.id() & (K-1)` owns
  // the object. A bound warehouse materializes only the view members it
  // owns; maintenance ops for foreign members queue in the outbox for the
  // coordinator to redistribute, and foreign membership reads go through
  // the coordinator's resolver. Must be called before any DefineView;
  // `resolver` must outlive the warehouse.
  Status BindShard(uint32_t shard_index, uint32_t shard_mask,
                   const CrossShardResolver* resolver);
  bool sharded() const { return binding_.has_value(); }

  // ConnectSource without a monitor: the coordinator routes events here by
  // owning shard (re-stamped into this warehouse's per-source sequence
  // domain) through InjectRoutedEvent, which runs the normal delivery path
  // — fault injection, duplicate drop, gap detection — per shard.
  Status ConnectSourceRouted(ObjectStore* source, Oid source_root,
                             std::string name = "");
  void InjectRoutedEvent(size_t source_index, const UpdateEvent& event) {
    OnEvent(source_index, event);
  }

  // Drains the outbox (ops this shard produced for members other shards
  // own). The coordinator delivers them via the owners' ApplyForeignOps.
  std::vector<ForeignViewOp> TakeForeignOps() {
    return std::exchange(outbox_, {});
  }
  // Applies peer-produced ops for members this shard owns; ops targeting
  // other shards' members are skipped, so callers may pass whole producer
  // outboxes unfiltered. Ops naming a quarantined view are buffered into
  // its stale queue's blind spot — the post-resync recompute subsumes
  // them — and ops for unknown views fail.
  Status ApplyForeignOps(const std::vector<ForeignViewOp>& ops);

  // The deferred-drain verification sweep (see ProcessPending), standalone:
  // every fresh view re-verifies its members against current source state
  // and drops the underivable. The coordinator runs this after foreign ops
  // land, when a batch had run with BatchOptions::run_sweep = false.
  Status RunVerificationSweep();

  // Closes the current durability commit group (no-op when durability is
  // off). The coordinator commits each shard only after cross-shard ops
  // applied, so a shard's log never certifies a half-delivered batch.
  void CommitDurable() { LogCommit(); }

  // Highest event sequence integrated from `source_name` (0 when none) —
  // after recovery the coordinator restamps its router from this.
  uint64_t last_delivered_sequence(const std::string& source_name) const;

  // Parses "define mview NAME as: ...", materializes it from the current
  // source state (setup, not metered as maintenance cost), and starts
  // maintaining it. The definition must be simple (Algorithm 1's
  // precondition) and its entry must resolve to the root of `source_name`
  // (or of the sole connected source when `source_name` is empty).
  Status DefineView(std::string_view definition,
                    CacheMode cache_mode = CacheMode::kNone,
                    const std::string& source_name = "");

  // Installs §5.2 path knowledge used for screening (applies to all views).
  void SetPathKnowledge(PathKnowledge knowledge);

  // ---- Deferred (asynchronous) event processing ----
  //
  // Sources are autonomous (§5): in a real deployment events arrive and
  // are applied some time after the source committed the update, while the
  // source keeps changing. With deferral enabled, monitor events queue
  // instead of being applied inline; ProcessPending() drains the queue in
  // arrival order. Base accesses during the drain observe the source's
  // *current* state — the §4.3 "right after the update" assumption is
  // relaxed — and Algorithm 1's candidate verification plus condition
  // rechecks make the outcome convergent: once the queue is drained, the
  // view equals the view over the source's current state (asserted by the
  // deferred-processing property tests).
  void set_deferred(bool deferred) { deferred_ = deferred; }
  bool deferred() const { return deferred_; }
  size_t pending_events() const { return pending_.size(); }
  // Applies every queued event; returns the first error (processing
  // continues past errors so the queue always drains).
  //
  // Because every event is evaluated against the source's *current* state,
  // an event can disclaim responsibility that another queued event also
  // disclaims (e.g. a modify whose corridor path a later delete already
  // broke, under a delete that no longer sees the object in its subtree).
  // Such misses are always stale *extras*, never missing members — a
  // member that should appear is found by whichever queued insert restored
  // its derivation, which re-evaluates the attached subtree. The drain
  // therefore ends with a verification sweep over the current members of
  // each view whose source contributed events: members whose derivation or
  // condition no longer holds are dropped. The sweep costs
  // O(|view| · (climb + condition eval)) through the accessor — local when
  // a full auxiliary cache is configured, metered query-backs otherwise.
  Status ProcessPending();

  // Squashes the pending queue before a drain: adjacent same-source pairs
  // that cancel (insert(P,C) followed by delete(P,C), or the reverse) are
  // dropped, and adjacent modifies of the same object merge into the later
  // one (its snapshot is newer; the merged old value is the earlier
  // event's). Net effects are preserved — the convergence property tests
  // cover compacted drains. Returns the number of events eliminated.
  size_t CompactPending();

  // ---- Batched, multi-threaded drains ----
  //
  // ProcessPendingBatch drains the pending queue through the batch engine
  // instead of event-at-a-time dispatch:
  //
  //   1. the batch is coalesced (UpdateBatch: insert+delete of the same
  //      edge cancel, modifies of one object merge last-writer-wins);
  //   2. per view, label/path screening (§5.1) is resolved once per
  //      *distinct label* in the batch rather than once per event, and the
  //      auxiliary cache absorbs the whole batch;
  //   3. the relevant events are fanned out across a worker pool — one task
  //      per independent view, and (on tree bases) one per independent
  //      root subtree within a view, since subtrees of a tree cannot share
  //      affected delegates. Workers evaluate Algorithm 1 against the
  //      frozen final source state and buffer their view operations
  //      (BufferedViewStorage); after the barrier the op logs replay into
  //      the real views single-threaded, in a fixed order, and per-view
  //      stats merge — so the resulting views and counters are
  //      deterministic;
  //   4. the deferred-drain verification sweep (see ProcessPending) runs
  //      read-only in parallel per view, and its deletions apply after a
  //      second barrier.
  //
  // Sources must not change during the call (the usual external
  // synchronization for a deferred drain). The outcome is convergent
  // exactly like ProcessPending: after the drain each view equals its
  // query over the source's current state.
  struct BatchOptions {
    size_t threads = 1;   // worker pool size; <= 1 evaluates inline
    bool coalesce = true; // cancel/merge redundant events first
    // Fan out independent root subtrees within a view (sound on tree
    // bases; disabled automatically for a view whose root is a member).
    bool split_subtrees = true;
    // A sharded coordinator defers these two: the sweep must wait for the
    // foreign ops of every shard to land, and the commit must not certify
    // a batch whose cross-shard ops are still in flight.
    bool run_sweep = true;
    bool log_commit = true;
  };
  Status ProcessPendingBatch(const BatchOptions& options);
  Status ProcessPendingBatch() { return ProcessPendingBatch(BatchOptions{}); }

  // ---- Fault tolerance (sequenced delivery, quarantine, resync) ----
  //
  // The warehouse–source channel is at-least-once: monitor events carry a
  // per-source sequence number, duplicates are dropped idempotently, and a
  // gap (lost delivery) quarantines every view of that source. A view also
  // quarantines when a query-back fails after retries or hits an open
  // circuit breaker. Quarantined (kStale) views keep serving reads from
  // their last consistent state; events for them are buffered. Each drain
  // first attempts to resync stale views — probe the source, recompute the
  // view from current source state (§4.4 path), rebuild the corridor
  // cache, replay the buffered events, and run the verification sweep —
  // so recovery is automatic once the source answers again.

  // Installs a deterministic fault model on `source_name`'s channel and
  // wrapper (nullptr detaches). The injector must outlive its installation.
  Status SetFaultInjector(const std::string& source_name,
                          FaultInjector* injector);

  // The wrapper of `source_name` (the sole source when empty); nullptr when
  // unknown. Exposed so callers can tune retry/breaker policies and probe.
  SourceWrapper* wrapper(const std::string& source_name = "");

  enum class ViewHealth {
    kFresh,  // maintained incrementally, consistent with delivered events
    kStale,  // quarantined: serving last consistent state, awaiting resync
  };
  ViewHealth view_health(const std::string& name) const;
  size_t stale_view_count() const;
  // Events buffered across all quarantined views, awaiting replay.
  size_t buffered_stale_events() const;

  // Forces a resync attempt for every quarantined view now (probing past
  // an open breaker). Returns Ok when no views remain stale.
  Status ResyncStaleViews();

  // ---- Durability (write-ahead log, checkpoints, crash recovery) ----
  //
  // EnableDurability attaches a WAL + checkpoint directory to this
  // warehouse. Every accepted update event and every applied view delta is
  // logged; a commit record (carrying the per-source sequence watermarks)
  // closes each group — one per inline dispatch, one per drain — and
  // certifies that the warehouse was quiescent when it was written.
  //
  // If `dir` already holds durable state, EnableDurability *recovers* it:
  // the latest valid checkpoint is loaded (delegate store, view
  // memberships, §5.2 corridor caches, watermarks), the committed log tail
  // is redone locally from the view-delta records (no source queries), and
  // the uncommitted tail — truncated at the first record past the last
  // commit, which subsumes any torn write — is replayed through live
  // maintenance by re-delivering its events. A torn log additionally
  // quarantines every view (an accepted event may have been lost in the
  // tear), so the first drain resyncs from current source state — the PR 2
  // fallback for an unusable log. Sources must be connected (same names)
  // before calling; views must not be defined when recovering state.
  struct DurabilityOptions {
    std::string dir;  // WAL segments + checkpoints live here
    FsyncPolicy fsync = FsyncPolicy::kCommit;
    // Automatically checkpoint at the first quiescent commit after this
    // many logged events (0 = only explicit WriteCheckpoint calls).
    uint64_t checkpoint_interval_events = 0;
    // Replication fencing (see wal.h FenceInfo): when epoch > 0 the WAL
    // claims the directory fence on open, stamps kEpoch headers into its
    // segments, and every append re-checks the fence — a promoted replica
    // raising the fence cuts this writer off at its next log write.
    uint64_t epoch = 0;
    std::string owner;
  };

  struct RecoveryReport {
    bool recovered_checkpoint = false;
    uint64_t checkpoint_id = 0;     // id of the checkpoint restored
    size_t views_restored = 0;      // adopted from the checkpoint image
    size_t views_redefined = 0;     // re-bootstrapped from kViewDef records
    size_t deltas_redone = 0;       // committed-zone deltas applied locally
    size_t events_replayed = 0;     // uncommitted tail events re-delivered
    size_t tail_deltas_dropped = 0; // uncommitted deltas discarded
    bool log_torn = false;          // a torn/corrupt record was truncated
    uint64_t torn_bytes = 0;
    bool caches_reloaded = false;   // corridor caches came from the image
  };

  struct DurabilityStats {
    int64_t events_logged = 0;
    int64_t deltas_logged = 0;
    int64_t commits_logged = 0;
    int64_t checkpoints_written = 0;
  };

  Status EnableDurability(const DurabilityOptions& options);
  bool durable() const { return durability_ != nullptr; }
  // Snapshots the warehouse at the current quiescent point (pending queue
  // must be empty): delegate store, corridor caches, watermarks and view
  // definitions, then rolls the log and retires segments older than the
  // previous retained checkpoint. Never blocks concurrent readers — the
  // capture reads through the store's published index snapshots.
  Status WriteCheckpoint();
  // What EnableDurability recovered (zeroed on a fresh directory).
  const RecoveryReport& recovery_report() const;
  const DurabilityStats& durability_stats() const;
  // The live log (null when durability is off). Exposed for tests and
  // tools (crash injection, forced sync).
  Wal* wal();

  MaterializedView* view(const std::string& name);
  // Names of the defined views, in definition order.
  std::vector<std::string> view_names() const;
  const Algorithm1Maintainer* maintainer(const std::string& name) const;
  const AuxiliaryCache* cache(const std::string& name) const;
  // Engine introspection (kAlgorithm1 for unknown names).
  EngineKind view_engine(const std::string& name) const;
  const GdnEngine* gdn_engine(const std::string& name) const;
  const GeneralMaintainer* general_maintainer(const std::string& name) const;
  // Checkpoint-manifest plumbing a coordinator uses to rebuild its own
  // engines after recovery: the original definition text and source name.
  std::string view_definition_text(const std::string& name) const;
  std::string view_source(const std::string& name) const;
  // Per-view maintenance explanation (engine kind, GDN network size and
  // propagation counters, general-engine cap hits); shards = 1.
  ShardedViewExplanation ExplainView(const std::string& name) const;

  ObjectStore& store() { return *store_; }
  WarehouseCosts& costs() { return costs_; }
  const Status& last_status() const { return last_status_; }
  // The monitor of the sole source (legacy convenience; null when the
  // warehouse has several sources).
  SourceMonitor* monitor();
  size_t source_count() const { return sources_.size(); }

 private:
  struct SourceEntry {
    std::string name;
    ObjectStore* store = nullptr;
    Oid root;
    std::unique_ptr<SourceWrapper> wrapper;
    std::unique_ptr<SourceMonitor> monitor;
    // Channel fault model (not owned; also installed on the wrapper).
    FaultInjector* injector = nullptr;
    // Sequence expected from the next monitor event (events with
    // sequence 0 are unsequenced and bypass the checks).
    uint64_t next_sequence = 1;
  };

  struct ViewEntry {
    explicit ViewEntry(ViewDefinition d) : def(std::move(d)) {}
    size_t source_index = 0;
    ViewDefinition def;
    std::string definition_text;  // original text, for checkpoint manifests
    CacheMode cache_mode = CacheMode::kNone;
    Path sel_path;
    Path cond_path;
    Path full_path;
    std::set<std::string> relevant_labels;  // feasible corridor labels
    bool modify_relevant = false;           // can a modify affect membership?
    std::unique_ptr<MaterializedView> view;
    // Shard scoping decorator (bound warehouses only): owned ops hit
    // `view`, foreign ops queue in the warehouse outbox.
    std::unique_ptr<ShardScopedStorage> scoped;
    std::unique_ptr<AuxiliaryCache> cache;
    std::unique_ptr<RemoteAccessor> accessor;
    // Exactly one engine drives membership. A shard-bound warehouse keeps
    // general/gdn null even when `engine` says otherwise: the coordinator
    // owns one engine over the whole source and redistributes the deltas,
    // so the shard entry only syncs delegate values ("external" entry).
    EngineKind engine = EngineKind::kAlgorithm1;
    std::unique_ptr<Algorithm1Maintainer> maintainer;
    std::unique_ptr<GeneralMaintainer> general;
    std::unique_ptr<GdnEngine> gdn;
    // Last-flushed engine counters (StorageQuiescent cost-sheet deltas).
    GdnEngine::Stats gdn_flushed;
    int64_t general_caps_flushed = 0;
    // Where maintenance writes: the scoped storage when sharded, the view
    // itself otherwise.
    ViewStorage* storage() {
      return scoped != nullptr ? static_cast<ViewStorage*>(scoped.get())
                               : view.get();
    }
    // Quarantine state: a stale view serves its last consistent contents;
    // events arriving while stale buffer here for post-resync replay.
    bool stale = false;
    std::vector<UpdateEvent> stale_events;
    Status stale_cause;  // why the view quarantined (Ok when fresh)
  };

  void OnEvent(size_t source_index, const UpdateEvent& event);
  // Sequence accounting for one delivered event: drops duplicates, detects
  // gaps (quarantining the source's views), then queues or dispatches.
  void Deliver(size_t source_index, const UpdateEvent& event);
  void DispatchEvent(size_t source_index, const UpdateEvent& event);
  // Quarantine entry points.
  void Quarantine(ViewEntry& entry, const Status& cause);
  void BufferStaleEvent(ViewEntry& entry, const UpdateEvent& event);
  void QuarantineSourceViews(size_t source_index, const Status& cause);
  // One resync attempt; leaves the view stale when the source still fails.
  Status TryResyncView(ViewEntry& entry, bool force);
  // Opportunistic resync of every stale view (drain prologue).
  void TryResyncStaleViews();
  Status HandleEventForView(ViewEntry& entry, const UpdateEvent& event);
  // The §5.1 local screening predicate (level >= 2 events only).
  bool EventRelevant(const ViewEntry& entry, const UpdateEvent& event) const;
  // Collects current members whose derivation/condition fails on the
  // current source state; read-only (usable from a worker thread). Aborts
  // with the accessor's error when a query-back fails — an empty answer
  // from a down source is not evidence a member is underivable.
  Status CollectUnderivable(ViewEntry& entry, RemoteAccessor* accessor,
                            std::vector<Oid>* doomed);
  // Drops members whose derivation/condition fails on the current source
  // state (the deferred-drain epilogue).
  Status VerifyMembers(ViewEntry& entry);
  // Level-1 modify handling over an arbitrary storage/accessor pair (the
  // batch engine passes a BufferedViewStorage and a per-task accessor).
  Status Level1ModifyRecheck(ViewEntry& entry, const UpdateEvent& event,
                             ViewStorage* storage, BaseAccessor* accessor);
  void RecomputeRelevantLabels(ViewEntry& entry);
  // Declares a storage quiescent point: no `const Object*` from the
  // delegate store or a corridor cache is live past this call, so a paged
  // engine may evict back down to its buffer-pool budget. Runs at the end
  // of every drain / inline dispatch / resync / checkpoint, and flushes the
  // engines' buffer-pool counter deltas onto the cost sheet while there.
  void StorageQuiescent();
  // Lazily builds/resizes the worker pool for `threads` workers.
  ThreadPool* Pool(size_t threads);
  // Shared body of ConnectSource / ConnectSourceRouted.
  Status ConnectSourceInternal(ObjectStore* source, Oid source_root,
                               ReportingLevel level, std::string name,
                               bool install_monitor);
  // Drops members of `entry` that another shard owns (no-op unbound). A
  // full materialization — Initialize or a resync recompute — derives the
  // whole view; the foreign members belong to the peers. With
  // `export_members` set each pruned member is first exported as a foreign
  // V_insert so owners that missed the underlying events converge (the
  // resync path); DefineView prunes silently since every shard runs the
  // same initialization.
  void PruneForeignMembers(ViewEntry& entry, bool export_members);

  // ---- Durability internals (warehouse_durability.cc) ----
  // Resolves a source by name (the sole source when empty).
  Result<size_t> ResolveSourceIndex(const std::string& source_name) const;
  // Parses + validates a definition and builds a ViewEntry with its view,
  // cache and maintainer objects constructed but nothing initialized.
  Result<std::unique_ptr<ViewEntry>> BuildViewEntry(size_t source_index,
                                                    std::string_view definition,
                                                    CacheMode cache_mode);
  // Logging hooks; all no-ops when durability is off or paused.
  void LogEvent(const SourceEntry& source, const UpdateEvent& event);
  void LogViewDef(const std::string& definition, CacheMode cache_mode,
                  const std::string& source_name);
  void LogCommit();
  // Points the view's delta sink at the WAL (no-op when durability is off).
  void AttachSink(MaterializedView* view);
  // Recovery steps.
  Status RestoreFromPlan(const RecoveryPlan& plan);
  Status RestoreView(const CheckpointViewState& state, bool adopt);
  Status RedoDelta(const WalRecord& record);

  SourceEntry& SourceOf(const ViewEntry& entry) {
    return *sources_[entry.source_index];
  }

  struct ShardBinding {
    uint32_t shard_index = 0;
    uint32_t shard_mask = 0;
    const CrossShardResolver* resolver = nullptr;
  };

  ObjectStore* store_;
  Options options_;
  std::vector<std::unique_ptr<SourceEntry>> sources_;
  PathKnowledge knowledge_;
  WarehouseCosts costs_;
  std::vector<std::unique_ptr<ViewEntry>> views_;
  std::optional<ShardBinding> binding_;
  std::vector<ForeignViewOp> outbox_;
  bool deferred_ = false;
  std::vector<std::pair<size_t, UpdateEvent>> pending_;
  Status last_status_;
  std::unique_ptr<ThreadPool> pool_;
  size_t pool_threads_ = 0;
  // Last-flushed delegate-store paging counters (StorageQuiescent deltas).
  int64_t flushed_page_faults_ = 0;
  int64_t flushed_page_evictions_ = 0;
  int64_t flushed_writeback_bytes_ = 0;
  int64_t flushed_swizzle_hits_ = 0;
  int64_t flushed_swizzle_misses_ = 0;
  // Durability state (WAL, stats, recovery report); null when disabled.
  std::unique_ptr<WarehouseDurability> durability_;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_WAREHOUSE_H_
