#ifndef GSV_WAREHOUSE_WAREHOUSE_H_
#define GSV_WAREHOUSE_WAREHOUSE_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/algorithm1.h"
#include "core/materialized_view.h"
#include "core/view_definition.h"
#include "oem/store.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "util/thread_pool.h"
#include "warehouse/aux_cache.h"
#include "warehouse/cost_model.h"
#include "warehouse/fault_injector.h"
#include "warehouse/monitor.h"
#include "warehouse/path_knowledge.h"
#include "warehouse/remote_accessor.h"
#include "warehouse/update_batch.h"
#include "warehouse/update_event.h"
#include "warehouse/wrapper.h"

namespace gsv {

struct RecoveryPlan;
struct WarehouseDurability;

// The data warehouse of §5 / Figure 6: materialized views live here; base
// objects live at one or more autonomous sources that export update events
// and answer queries through their wrappers. Only the warehouse knows the
// view definitions.
//
// Event handling per view (views are bound to the source their entry
// belongs to):
//   1. the auxiliary cache (if configured, §5.2) absorbs the update;
//   2. local screening (§5.1): with level >= 2 events the affected label is
//      checked against the view's sel/cond labels — pruned further by path
//      knowledge — and irrelevant events stop here (delegate values still
//      sync);
//   3. Algorithm 1 runs over a RemoteAccessor that prefers event info and
//      cache content and falls back to metered source queries. Level-1
//      modify events carry no values, so membership is re-derived by
//      querying (the paper's "cannot do much other than sending queries").
class Warehouse {
 public:
  enum class CacheMode {
    kNone,
    kLabelsOnly,  // §5.2 partial caching
    kFull,        // §5.2 full corridor caching
  };

  // `store` holds this warehouse's delegates; must outlive the warehouse.
  explicit Warehouse(ObjectStore* store);
  ~Warehouse();

  // Attaches a source (Figure 6 allows several): installs a monitor at
  // `level` whose events flow into this warehouse, and a wrapper for
  // query-backs. `source_root` is the database root view entries refer to.
  // `name` identifies the source for DefineView; when empty, a name
  // "source<N>" is generated. Roots must be distinct across sources.
  Status ConnectSource(ObjectStore* source, Oid source_root,
                       ReportingLevel level, std::string name = "");

  // Parses "define mview NAME as: ...", materializes it from the current
  // source state (setup, not metered as maintenance cost), and starts
  // maintaining it. The definition must be simple (Algorithm 1's
  // precondition) and its entry must resolve to the root of `source_name`
  // (or of the sole connected source when `source_name` is empty).
  Status DefineView(std::string_view definition,
                    CacheMode cache_mode = CacheMode::kNone,
                    const std::string& source_name = "");

  // Installs §5.2 path knowledge used for screening (applies to all views).
  void SetPathKnowledge(PathKnowledge knowledge);

  // ---- Deferred (asynchronous) event processing ----
  //
  // Sources are autonomous (§5): in a real deployment events arrive and
  // are applied some time after the source committed the update, while the
  // source keeps changing. With deferral enabled, monitor events queue
  // instead of being applied inline; ProcessPending() drains the queue in
  // arrival order. Base accesses during the drain observe the source's
  // *current* state — the §4.3 "right after the update" assumption is
  // relaxed — and Algorithm 1's candidate verification plus condition
  // rechecks make the outcome convergent: once the queue is drained, the
  // view equals the view over the source's current state (asserted by the
  // deferred-processing property tests).
  void set_deferred(bool deferred) { deferred_ = deferred; }
  bool deferred() const { return deferred_; }
  size_t pending_events() const { return pending_.size(); }
  // Applies every queued event; returns the first error (processing
  // continues past errors so the queue always drains).
  //
  // Because every event is evaluated against the source's *current* state,
  // an event can disclaim responsibility that another queued event also
  // disclaims (e.g. a modify whose corridor path a later delete already
  // broke, under a delete that no longer sees the object in its subtree).
  // Such misses are always stale *extras*, never missing members — a
  // member that should appear is found by whichever queued insert restored
  // its derivation, which re-evaluates the attached subtree. The drain
  // therefore ends with a verification sweep over the current members of
  // each view whose source contributed events: members whose derivation or
  // condition no longer holds are dropped. The sweep costs
  // O(|view| · (climb + condition eval)) through the accessor — local when
  // a full auxiliary cache is configured, metered query-backs otherwise.
  Status ProcessPending();

  // Squashes the pending queue before a drain: adjacent same-source pairs
  // that cancel (insert(P,C) followed by delete(P,C), or the reverse) are
  // dropped, and adjacent modifies of the same object merge into the later
  // one (its snapshot is newer; the merged old value is the earlier
  // event's). Net effects are preserved — the convergence property tests
  // cover compacted drains. Returns the number of events eliminated.
  size_t CompactPending();

  // ---- Batched, multi-threaded drains ----
  //
  // ProcessPendingBatch drains the pending queue through the batch engine
  // instead of event-at-a-time dispatch:
  //
  //   1. the batch is coalesced (UpdateBatch: insert+delete of the same
  //      edge cancel, modifies of one object merge last-writer-wins);
  //   2. per view, label/path screening (§5.1) is resolved once per
  //      *distinct label* in the batch rather than once per event, and the
  //      auxiliary cache absorbs the whole batch;
  //   3. the relevant events are fanned out across a worker pool — one task
  //      per independent view, and (on tree bases) one per independent
  //      root subtree within a view, since subtrees of a tree cannot share
  //      affected delegates. Workers evaluate Algorithm 1 against the
  //      frozen final source state and buffer their view operations
  //      (BufferedViewStorage); after the barrier the op logs replay into
  //      the real views single-threaded, in a fixed order, and per-view
  //      stats merge — so the resulting views and counters are
  //      deterministic;
  //   4. the deferred-drain verification sweep (see ProcessPending) runs
  //      read-only in parallel per view, and its deletions apply after a
  //      second barrier.
  //
  // Sources must not change during the call (the usual external
  // synchronization for a deferred drain). The outcome is convergent
  // exactly like ProcessPending: after the drain each view equals its
  // query over the source's current state.
  struct BatchOptions {
    size_t threads = 1;   // worker pool size; <= 1 evaluates inline
    bool coalesce = true; // cancel/merge redundant events first
    // Fan out independent root subtrees within a view (sound on tree
    // bases; disabled automatically for a view whose root is a member).
    bool split_subtrees = true;
  };
  Status ProcessPendingBatch(const BatchOptions& options);
  Status ProcessPendingBatch() { return ProcessPendingBatch(BatchOptions{}); }

  // ---- Fault tolerance (sequenced delivery, quarantine, resync) ----
  //
  // The warehouse–source channel is at-least-once: monitor events carry a
  // per-source sequence number, duplicates are dropped idempotently, and a
  // gap (lost delivery) quarantines every view of that source. A view also
  // quarantines when a query-back fails after retries or hits an open
  // circuit breaker. Quarantined (kStale) views keep serving reads from
  // their last consistent state; events for them are buffered. Each drain
  // first attempts to resync stale views — probe the source, recompute the
  // view from current source state (§4.4 path), rebuild the corridor
  // cache, replay the buffered events, and run the verification sweep —
  // so recovery is automatic once the source answers again.

  // Installs a deterministic fault model on `source_name`'s channel and
  // wrapper (nullptr detaches). The injector must outlive its installation.
  Status SetFaultInjector(const std::string& source_name,
                          FaultInjector* injector);

  // The wrapper of `source_name` (the sole source when empty); nullptr when
  // unknown. Exposed so callers can tune retry/breaker policies and probe.
  SourceWrapper* wrapper(const std::string& source_name = "");

  enum class ViewHealth {
    kFresh,  // maintained incrementally, consistent with delivered events
    kStale,  // quarantined: serving last consistent state, awaiting resync
  };
  ViewHealth view_health(const std::string& name) const;
  size_t stale_view_count() const;
  // Events buffered across all quarantined views, awaiting replay.
  size_t buffered_stale_events() const;

  // Forces a resync attempt for every quarantined view now (probing past
  // an open breaker). Returns Ok when no views remain stale.
  Status ResyncStaleViews();

  // ---- Durability (write-ahead log, checkpoints, crash recovery) ----
  //
  // EnableDurability attaches a WAL + checkpoint directory to this
  // warehouse. Every accepted update event and every applied view delta is
  // logged; a commit record (carrying the per-source sequence watermarks)
  // closes each group — one per inline dispatch, one per drain — and
  // certifies that the warehouse was quiescent when it was written.
  //
  // If `dir` already holds durable state, EnableDurability *recovers* it:
  // the latest valid checkpoint is loaded (delegate store, view
  // memberships, §5.2 corridor caches, watermarks), the committed log tail
  // is redone locally from the view-delta records (no source queries), and
  // the uncommitted tail — truncated at the first record past the last
  // commit, which subsumes any torn write — is replayed through live
  // maintenance by re-delivering its events. A torn log additionally
  // quarantines every view (an accepted event may have been lost in the
  // tear), so the first drain resyncs from current source state — the PR 2
  // fallback for an unusable log. Sources must be connected (same names)
  // before calling; views must not be defined when recovering state.
  struct DurabilityOptions {
    std::string dir;  // WAL segments + checkpoints live here
    FsyncPolicy fsync = FsyncPolicy::kCommit;
    // Automatically checkpoint at the first quiescent commit after this
    // many logged events (0 = only explicit WriteCheckpoint calls).
    uint64_t checkpoint_interval_events = 0;
  };

  struct RecoveryReport {
    bool recovered_checkpoint = false;
    uint64_t checkpoint_id = 0;     // id of the checkpoint restored
    size_t views_restored = 0;      // adopted from the checkpoint image
    size_t views_redefined = 0;     // re-bootstrapped from kViewDef records
    size_t deltas_redone = 0;       // committed-zone deltas applied locally
    size_t events_replayed = 0;     // uncommitted tail events re-delivered
    size_t tail_deltas_dropped = 0; // uncommitted deltas discarded
    bool log_torn = false;          // a torn/corrupt record was truncated
    uint64_t torn_bytes = 0;
    bool caches_reloaded = false;   // corridor caches came from the image
  };

  struct DurabilityStats {
    int64_t events_logged = 0;
    int64_t deltas_logged = 0;
    int64_t commits_logged = 0;
    int64_t checkpoints_written = 0;
  };

  Status EnableDurability(const DurabilityOptions& options);
  bool durable() const { return durability_ != nullptr; }
  // Snapshots the warehouse at the current quiescent point (pending queue
  // must be empty): delegate store, corridor caches, watermarks and view
  // definitions, then rolls the log and retires segments older than the
  // previous retained checkpoint. Never blocks concurrent readers — the
  // capture reads through the store's published index snapshots.
  Status WriteCheckpoint();
  // What EnableDurability recovered (zeroed on a fresh directory).
  const RecoveryReport& recovery_report() const;
  const DurabilityStats& durability_stats() const;
  // The live log (null when durability is off). Exposed for tests and
  // tools (crash injection, forced sync).
  Wal* wal();

  MaterializedView* view(const std::string& name);
  const Algorithm1Maintainer* maintainer(const std::string& name) const;
  const AuxiliaryCache* cache(const std::string& name) const;

  ObjectStore& store() { return *store_; }
  WarehouseCosts& costs() { return costs_; }
  const Status& last_status() const { return last_status_; }
  // The monitor of the sole source (legacy convenience; null when the
  // warehouse has several sources).
  SourceMonitor* monitor();
  size_t source_count() const { return sources_.size(); }

 private:
  struct SourceEntry {
    std::string name;
    ObjectStore* store = nullptr;
    Oid root;
    std::unique_ptr<SourceWrapper> wrapper;
    std::unique_ptr<SourceMonitor> monitor;
    // Channel fault model (not owned; also installed on the wrapper).
    FaultInjector* injector = nullptr;
    // Sequence expected from the next monitor event (events with
    // sequence 0 are unsequenced and bypass the checks).
    uint64_t next_sequence = 1;
  };

  struct ViewEntry {
    explicit ViewEntry(ViewDefinition d) : def(std::move(d)) {}
    size_t source_index = 0;
    ViewDefinition def;
    std::string definition_text;  // original text, for checkpoint manifests
    CacheMode cache_mode = CacheMode::kNone;
    Path sel_path;
    Path cond_path;
    Path full_path;
    std::set<std::string> relevant_labels;  // feasible corridor labels
    bool modify_relevant = false;           // can a modify affect membership?
    std::unique_ptr<MaterializedView> view;
    std::unique_ptr<AuxiliaryCache> cache;
    std::unique_ptr<RemoteAccessor> accessor;
    std::unique_ptr<Algorithm1Maintainer> maintainer;
    // Quarantine state: a stale view serves its last consistent contents;
    // events arriving while stale buffer here for post-resync replay.
    bool stale = false;
    std::vector<UpdateEvent> stale_events;
    Status stale_cause;  // why the view quarantined (Ok when fresh)
  };

  void OnEvent(size_t source_index, const UpdateEvent& event);
  // Sequence accounting for one delivered event: drops duplicates, detects
  // gaps (quarantining the source's views), then queues or dispatches.
  void Deliver(size_t source_index, const UpdateEvent& event);
  void DispatchEvent(size_t source_index, const UpdateEvent& event);
  // Quarantine entry points.
  void Quarantine(ViewEntry& entry, const Status& cause);
  void BufferStaleEvent(ViewEntry& entry, const UpdateEvent& event);
  void QuarantineSourceViews(size_t source_index, const Status& cause);
  // One resync attempt; leaves the view stale when the source still fails.
  Status TryResyncView(ViewEntry& entry, bool force);
  // Opportunistic resync of every stale view (drain prologue).
  void TryResyncStaleViews();
  Status HandleEventForView(ViewEntry& entry, const UpdateEvent& event);
  // The §5.1 local screening predicate (level >= 2 events only).
  bool EventRelevant(const ViewEntry& entry, const UpdateEvent& event) const;
  // Collects current members whose derivation/condition fails on the
  // current source state; read-only (usable from a worker thread). Aborts
  // with the accessor's error when a query-back fails — an empty answer
  // from a down source is not evidence a member is underivable.
  Status CollectUnderivable(ViewEntry& entry, RemoteAccessor* accessor,
                            std::vector<Oid>* doomed);
  // Drops members whose derivation/condition fails on the current source
  // state (the deferred-drain epilogue).
  Status VerifyMembers(ViewEntry& entry);
  // Level-1 modify handling over an arbitrary storage/accessor pair (the
  // batch engine passes a BufferedViewStorage and a per-task accessor).
  Status Level1ModifyRecheck(ViewEntry& entry, const UpdateEvent& event,
                             ViewStorage* storage, BaseAccessor* accessor);
  void RecomputeRelevantLabels(ViewEntry& entry);
  // Lazily builds/resizes the worker pool for `threads` workers.
  ThreadPool* Pool(size_t threads);

  // ---- Durability internals (warehouse_durability.cc) ----
  // Resolves a source by name (the sole source when empty).
  Result<size_t> ResolveSourceIndex(const std::string& source_name) const;
  // Parses + validates a definition and builds a ViewEntry with its view,
  // cache and maintainer objects constructed but nothing initialized.
  Result<std::unique_ptr<ViewEntry>> BuildViewEntry(size_t source_index,
                                                    std::string_view definition,
                                                    CacheMode cache_mode);
  // Logging hooks; all no-ops when durability is off or paused.
  void LogEvent(const SourceEntry& source, const UpdateEvent& event);
  void LogViewDef(const std::string& definition, CacheMode cache_mode,
                  const std::string& source_name);
  void LogCommit();
  // Points the view's delta sink at the WAL (no-op when durability is off).
  void AttachSink(MaterializedView* view);
  // Recovery steps.
  Status RestoreFromPlan(const RecoveryPlan& plan);
  Status RestoreView(const CheckpointViewState& state, bool adopt);
  Status RedoDelta(const WalRecord& record);

  SourceEntry& SourceOf(const ViewEntry& entry) {
    return *sources_[entry.source_index];
  }

  ObjectStore* store_;
  std::vector<std::unique_ptr<SourceEntry>> sources_;
  PathKnowledge knowledge_;
  WarehouseCosts costs_;
  std::vector<std::unique_ptr<ViewEntry>> views_;
  bool deferred_ = false;
  std::vector<std::pair<size_t, UpdateEvent>> pending_;
  Status last_status_;
  std::unique_ptr<ThreadPool> pool_;
  size_t pool_threads_ = 0;
  // Durability state (WAL, stats, recovery report); null when disabled.
  std::unique_ptr<WarehouseDurability> durability_;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_WAREHOUSE_H_
