#ifndef GSV_WAREHOUSE_SOURCE_WRAPPER_GSDB_H_
#define GSV_WAREHOUSE_SOURCE_WRAPPER_GSDB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "oem/store.h"
#include "oem/value.h"
#include "util/status.h"

namespace gsv {

// Figure 6's wrapper in its *translation* role: "for each source, a wrapper
// is used to translate source data into the GSDB model if the underlying
// source database has another data format."
//
// RelationalSource is a tiny native relational store (tables of named-column
// rows) standing in for a legacy RDBMS. GsdbSourceAdapter translates it into
// the OEM shape of Example 7 / Figure 5 —
//
//   <REL, relations> -> <R_i, <table name>> -> <T, tuple> -> atomic fields
//
// — maintaining a live ObjectStore: row inserts/deletes/updates become the
// GSDB basic updates of §4.1, so the warehouse machinery (monitors, views,
// Algorithm 1) runs unchanged over a source that never spoke OEM. Field
// names become labels; tuple OIDs are "<table>#<row id>", field OIDs
// "<table>#<row id>.<column>"... (a '#' and ':' scheme, dot-free so they
// never collide with delegate OIDs).
class RelationalSource {
 public:
  // Creates a table; column names must be unique per table.
  Status CreateTable(const std::string& table,
                     std::vector<std::string> columns);

  // Inserts a row; returns its row id. `values` aligns with the columns.
  Result<int64_t> InsertRow(const std::string& table,
                            std::vector<Value> values);

  // Deletes a row by id.
  Status DeleteRow(const std::string& table, int64_t row_id);

  // Updates one column of a row.
  Status UpdateRow(const std::string& table, int64_t row_id,
                   const std::string& column, Value value);

  struct TableDef {
    std::vector<std::string> columns;
    // row id -> values (empty slot when deleted).
    std::unordered_map<int64_t, std::vector<Value>> rows;
    int64_t next_row_id = 0;
  };
  const TableDef* table(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // The adapter registers itself here to observe row operations.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual Status OnInsertRow(const std::string& table, int64_t row_id,
                               const std::vector<Value>& values) = 0;
    virtual Status OnDeleteRow(const std::string& table, int64_t row_id) = 0;
    virtual Status OnUpdateRow(const std::string& table, int64_t row_id,
                               const std::string& column,
                               const Value& value) = 0;
  };
  void SetObserver(Observer* observer) { observer_ = observer; }
  const Status& last_translation_status() const { return translation_status_; }

 private:
  std::unordered_map<std::string, TableDef> tables_;
  Observer* observer_ = nullptr;
  Status translation_status_;
};

// Maintains the OEM image of a RelationalSource inside `store`.
class GsdbSourceAdapter : public RelationalSource::Observer {
 public:
  // Builds the root object <root_oid, "relations"> plus one set object per
  // existing table, translates existing rows, and subscribes to future row
  // operations. `store` and `source` must outlive the adapter.
  GsdbSourceAdapter(ObjectStore* store, RelationalSource* source,
                    std::string root_oid);

  Status Initialize();

  const Oid& root() const { return root_; }
  // The OEM OID of a row's tuple object / of one of its fields.
  Oid TupleOid(const std::string& table, int64_t row_id) const;
  Oid FieldOid(const std::string& table, int64_t row_id,
               const std::string& column) const;

  // RelationalSource::Observer:
  Status OnInsertRow(const std::string& table, int64_t row_id,
                     const std::vector<Value>& values) override;
  Status OnDeleteRow(const std::string& table, int64_t row_id) override;
  Status OnUpdateRow(const std::string& table, int64_t row_id,
                     const std::string& column, const Value& value) override;

 private:
  Oid TableOid(const std::string& table) const;

  ObjectStore* store_;
  RelationalSource* source_;
  Oid root_;
  bool initialized_ = false;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_SOURCE_WRAPPER_GSDB_H_
