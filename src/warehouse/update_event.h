#ifndef GSV_WAREHOUSE_UPDATE_EVENT_H_
#define GSV_WAREHOUSE_UPDATE_EVENT_H_

#include <optional>
#include <string>
#include <vector>

#include "oem/object.h"
#include "oem/oid.h"
#include "oem/update.h"
#include "path/path.h"

namespace gsv {

// How much a source monitor reports with each update (§5.1's three
// scenarios).
enum class ReportingLevel {
  // 1. Only the update type and the OIDs of the directly affected objects.
  kOidsOnly = 1,
  // 2. Additionally the label, type and value of the directly affected
  //    objects (enables local screening; carries modify old/new values).
  kWithValues = 2,
  // 3. Additionally path(ROOT, N) with the OIDs along it (the source
  //    "records the path to the updated object" while applying it).
  kWithRootPath = 3,
};

const char* ReportingLevelName(ReportingLevel level);

// One root-to-object derivation: interleaved OIDs and labels.
struct RootPathInfo {
  std::vector<Oid> oids;  // root, x1, ..., N (size = labels.size() + 1)
  Path labels;            // path(ROOT, N)
};

// What a source monitor sends to the warehouse for one base update.
struct UpdateEvent {
  UpdateKind kind = UpdateKind::kInsert;
  Oid parent;  // N1; the target N for modify
  Oid child;   // N2; invalid for modify
  ReportingLevel level = ReportingLevel::kOidsOnly;

  // Per-source monotone sequence number, stamped by the SourceMonitor
  // (1-based). The warehouse integrator uses it to drop duplicate
  // deliveries idempotently and to detect gaps (lost deliveries), which
  // quarantine the affected views for resync. 0 = unsequenced: events
  // constructed directly (tests, batch helpers) bypass both checks.
  uint64_t sequence = 0;

  // Level >= 2: snapshots of the directly affected objects, taken right
  // after the update was applied at the source.
  std::optional<Object> parent_object;
  std::optional<Object> child_object;
  // Level >= 2, modify only.
  std::optional<Value> old_value;
  std::optional<Value> new_value;

  // Level 3: path(ROOT, N1) for insert/delete, path(ROOT, N) for modify.
  // Absent when the object is unreachable from the source root.
  std::optional<RootPathInfo> root_path;

  // The update as an Update struct (modify values only when level >= 2).
  Update ToUpdate() const;

  std::string ToString() const;
};

}  // namespace gsv

#endif  // GSV_WAREHOUSE_UPDATE_EVENT_H_
